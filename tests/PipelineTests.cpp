//===- tests/PipelineTests.cpp - end-to-end pipeline tests --------------------===//
//
// Part of the impact-inline project, distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "driver/Pipeline.h"

#include "driver/FunctionCache.h"
#include "ir/IrVerifier.h"
#include "TestUtil.h"

#include <gtest/gtest.h>

#include <iterator>
#include <set>

using namespace impact;

namespace {

std::vector<RunInput> singleStream(std::initializer_list<std::string> Ins) {
  std::vector<RunInput> Result;
  for (const std::string &In : Ins)
    Result.push_back(RunInput{In, ""});
  return Result;
}

TEST(Pipeline, RunsEndToEnd) {
  // Inputs long enough that the hot sites clear the weight-10 threshold.
  PipelineResult R = runPipeline(
      test::kCallHeavyProgram, "demo",
      singleStream({std::string(40, 'a'), std::string(25, 'b'),
                    std::string(33, 'c')}));
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_TRUE(R.outputsMatch());
  EXPECT_GT(R.Before.AvgCalls, 0.0);
  EXPECT_GT(R.getCallDecreasePercent(), 0.0);
  EXPECT_GE(R.getCodeIncreasePercent(), 0.0);
  EXPECT_EQ(verifyModuleText(R.FinalModule), "");
}

TEST(Pipeline, CompilationErrorsSurface) {
  PipelineResult R = runPipeline("int main() { return undefined_name; }",
                                 "bad", singleStream({""}));
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("compilation failed"), std::string::npos);
}

TEST(Pipeline, ProfilingFailureSurfaces) {
  PipelineResult R = runPipeline(
      "int main() { int z; z = 0; return 1 / z; }", "trap",
      singleStream({""}));
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("profiling failed"), std::string::npos);
}

TEST(Pipeline, MetricsAreConsistent) {
  PipelineResult R = runPipeline(test::kCallHeavyProgram, "demo",
                                 singleStream({std::string(30, 'x')}));
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_GT(R.Before.AvgInstrs, 0.0);
  EXPECT_GE(R.After.AvgInstrs, R.Before.AvgInstrs)
      << "parameter moves and jumps add instructions without post-opt";
  EXPECT_LT(R.After.AvgCalls, R.Before.AvgCalls);
  EXPECT_GT(R.After.getInstrsPerCall(), R.Before.getInstrsPerCall());
}

TEST(Pipeline, ClassSplitsCoverAllCalls) {
  PipelineResult R = runPipeline(test::kPointerCallProgram, "ptr",
                                 singleStream({std::string(40, 'a')}));
  ASSERT_TRUE(R.Ok) << R.Error;
  double Sum = R.Before.DynExternal + R.Before.DynPointer +
               R.Before.DynUnsafe + R.Before.DynSafe;
  EXPECT_NEAR(Sum, R.Before.AvgCalls, 1e-6);
}

TEST(Pipeline, PostInlineOptimizeShrinksCode) {
  PipelineOptions Plain;
  PipelineOptions WithPost;
  WithPost.Inline.PostInlineOptimize = true;
  auto Inputs = singleStream({std::string(30, 'x')});
  PipelineResult A =
      runPipeline(test::kCallHeavyProgram, "plain", Inputs, Plain);
  PipelineResult B =
      runPipeline(test::kCallHeavyProgram, "post", Inputs, WithPost);
  ASSERT_TRUE(A.Ok && B.Ok);
  EXPECT_TRUE(B.outputsMatch());
  EXPECT_LE(B.After.StaticSize, A.After.StaticSize);
  EXPECT_LE(B.After.AvgInstrs, A.After.AvgInstrs)
      << "§4.4: comprehensive post-inline optimization reduces IL's";
}

TEST(Pipeline, PreOptCanBeDisabled) {
  PipelineOptions NoPre;
  NoPre.RunPreOpt = false;
  PipelineResult R = runPipeline(test::kCallHeavyProgram, "nopre",
                                 singleStream({"abc"}), NoPre);
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_TRUE(R.outputsMatch());
}

TEST(Pipeline, CallLightProgramSeesNoChange) {
  // A tee-like program: all calls external.
  const char *Src = "extern int getchar(); extern int putchar(int c);"
                    "int main() { int c; c = getchar();"
                    "while (c != -1) { putchar(c); c = getchar(); }"
                    "return 0; }";
  PipelineResult R = runPipeline(Src, "tee-ish", singleStream({"hello"}));
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.getCallDecreasePercent(), 0.0);
  EXPECT_EQ(R.getCodeIncreasePercent(), 0.0);
  EXPECT_EQ(R.Inline.getNumExpanded(), 0u);
}

TEST(Pipeline, StackBoundPreventsHazardousExpansion) {
  PipelineOptions Tight;
  Tight.Inline.StackBound = 100;
  PipelineResult R = runPipeline(test::kRecursiveProgram, "rec",
                                 singleStream({std::string(11, 'x')}), Tight);
  ASSERT_TRUE(R.Ok) << R.Error;
  for (const PlannedSite &S : R.Inline.Plan.Sites)
    if (S.Callee == R.FinalModule.findFunction("bigframe")) {
      EXPECT_NE(S.Status, ArcStatus::Expanded);
    }
  EXPECT_TRUE(R.outputsMatch());
}

TEST(Pipeline, ModuleOverloadAcceptsCompiledModule) {
  Module M = test::compileOk(test::kCallHeavyProgram);
  PipelineResult R = runPipeline(std::move(M), singleStream({"abc"}));
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_TRUE(R.outputsMatch());
}

TEST(Pipeline, InvalidModuleRejected) {
  Module M; // no main
  PipelineResult R = runPipeline(std::move(M), singleStream({""}));
  EXPECT_FALSE(R.Ok);
}

TEST(Pipeline, CacheKeyCoversEveryOptOption) {
  // The cache-key staleness bug, pinned exhaustively: makeKey once
  // fingerprinted only a subset of OptOptions, so two configurations
  // differing in an unfingerprinted pass shared a cache slot and the
  // second silently spliced a body optimized under the first. Perturb
  // every field one at a time from the defaults; each perturbation must
  // produce a distinct key. (FunctionCache.cpp's static_assert on
  // sizeof(OptOptions) makes a *new* field a compile error until its
  // fingerprint — and a line here — exist.)
  Module M = test::compileOk(test::kCallHeavyProgram);
  const Function *Def = nullptr;
  for (const Function &F : M.Funcs)
    if (!F.IsExternal) {
      Def = &F;
      break;
    }
  ASSERT_NE(Def, nullptr);

  constexpr bool OptOptions::*Flags[] = {
      &OptOptions::ConstantFolding,
      &OptOptions::JumpOptimization,
      &OptOptions::CopyPropagation,
      &OptOptions::DeadCodeElimination,
      &OptOptions::TailRecursionElimination,
      &OptOptions::Sccp,
      &OptOptions::Peephole,
      &OptOptions::LoopInvariantCodeMotion,
      &OptOptions::Ranges,
  };
  std::set<std::string> Keys;
  Keys.insert(FunctionDefinitionCache::makeKey(*Def, OptOptions()));
  for (bool OptOptions::*Flag : Flags) {
    OptOptions Opts;
    Opts.*Flag = !(Opts.*Flag);
    Keys.insert(FunctionDefinitionCache::makeKey(*Def, Opts));
  }
  OptOptions Iters;
  Iters.MaxIterations = 7;
  Keys.insert(FunctionDefinitionCache::makeKey(*Def, Iters));

  EXPECT_EQ(Keys.size(), std::size(Flags) + 2)
      << "some OptOptions field is missing from makeKey's fingerprint";
}

} // namespace
