//===- tests/SuiteTests.cpp - benchmark suite tests ---------------------------===//
//
// Part of the impact-inline project, distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "suite/Suite.h"
#include "suite/Workloads.h"

#include "driver/Compilation.h"
#include "ir/IrVerifier.h"
#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace impact;

namespace {

TEST(Suite, HasTheTwelvePaperBenchmarks) {
  const auto &Suite = getBenchmarkSuite();
  ASSERT_EQ(Suite.size(), 12u);
  const char *Expected[] = {"cccp", "cmp",  "compress", "eqn",
                            "espresso", "grep", "lex",  "make",
                            "tar",  "tee",  "wc",   "yacc"};
  for (size_t I = 0; I != 12; ++I)
    EXPECT_EQ(Suite[I].Name, Expected[I]) << "paper order";
}

TEST(Suite, FindBenchmarkByName) {
  EXPECT_NE(findBenchmark("grep"), nullptr);
  EXPECT_EQ(findBenchmark("nonesuch"), nullptr);
}

TEST(Suite, InputsAreDeterministic) {
  const BenchmarkSpec *B = findBenchmark("cccp");
  auto A = makeBenchmarkInputs(*B, 3);
  auto C = makeBenchmarkInputs(*B, 3);
  ASSERT_EQ(A.size(), 3u);
  for (size_t I = 0; I != 3; ++I) {
    EXPECT_EQ(A[I].Input, C[I].Input);
    EXPECT_EQ(A[I].Input2, C[I].Input2);
  }
}

TEST(Suite, DefaultRunsMatchTable1Shape) {
  EXPECT_EQ(findBenchmark("cmp")->DefaultRuns, 16u);
  EXPECT_EQ(findBenchmark("lex")->DefaultRuns, 4u);
  EXPECT_EQ(findBenchmark("tar")->DefaultRuns, 14u);
  EXPECT_EQ(findBenchmark("yacc")->DefaultRuns, 8u);
}

TEST(Suite, CmpGetsTwoStreams) {
  auto Inputs = makeBenchmarkInputs(*findBenchmark("cmp"), 3);
  for (const RunInput &In : Inputs)
    EXPECT_FALSE(In.Input2.empty());
  // Run 0 is the identical pair.
  EXPECT_EQ(Inputs[0].Input, Inputs[0].Input2);
  // Run 2 is dissimilar.
  EXPECT_NE(Inputs[2].Input, Inputs[2].Input2);
}

/// Every benchmark compiles, verifies, and runs cleanly on two inputs.
class BenchmarkPrograms : public ::testing::TestWithParam<const char *> {};

TEST_P(BenchmarkPrograms, CompilesVerifiesAndRuns) {
  const BenchmarkSpec *B = findBenchmark(GetParam());
  ASSERT_NE(B, nullptr);
  CompilationResult C = compileMiniC(B->Source, B->Name);
  ASSERT_TRUE(C.Ok) << C.Errors;
  EXPECT_EQ(verifyModuleText(C.M), "");

  auto Inputs = makeBenchmarkInputs(*B, 2);
  for (const RunInput &In : Inputs) {
    RunOptions Opts;
    Opts.Input = In.Input;
    Opts.Input2 = In.Input2;
    ExecResult R = runProgram(C.M, Opts);
    EXPECT_TRUE(R.ok()) << B->Name << ": " << R.TrapMessage;
    EXPECT_FALSE(R.Output.empty()) << B->Name << " produced no output";
  }
}

INSTANTIATE_TEST_SUITE_P(All, BenchmarkPrograms,
                         ::testing::Values("cccp", "cmp", "compress", "eqn",
                                           "espresso", "grep", "lex", "make",
                                           "tar", "tee", "wc", "yacc"),
                         [](const auto &Info) {
                           return std::string(Info.param);
                         });

//===----------------------------------------------------------------------===//
// Workload generators
//===----------------------------------------------------------------------===//

TEST(Workloads, CLikeSourceHasMacrosAndComments) {
  Rng R(1);
  std::string Text = generateCLikeSource(R, 50);
  EXPECT_NE(Text.find("#define "), std::string::npos);
  EXPECT_NE(Text.find("//"), std::string::npos);
  EXPECT_NE(Text.find("/*"), std::string::npos);
}

TEST(Workloads, MutateChangesRequestedPositionsOnly) {
  Rng R(2);
  std::string Base = generateWordText(R, 100);
  std::string Mutated = mutateText(R, Base, 5);
  EXPECT_EQ(Base.size(), Mutated.size());
  size_t Diffs = 0;
  for (size_t I = 0; I != Base.size(); ++I)
    Diffs += Base[I] != Mutated[I] ? 1 : 0;
  EXPECT_LE(Diffs, 5u);
}

TEST(Workloads, TruthTableShape) {
  Rng R(3);
  std::string Text = generateTruthTable(R, 6, 10);
  // Header + 10 lines of width-6 cubes over {0,1,-}.
  ASSERT_EQ(Text.substr(0, 4), "6 10");
  size_t Lines = 0;
  for (char C : Text)
    Lines += C == '\n' ? 1 : 0;
  EXPECT_EQ(Lines, 11u);
}

TEST(Workloads, GrepInputFirstLineIsPattern) {
  Rng R(4);
  std::string Text = generateGrepInput(R, 20);
  size_t Nl = Text.find('\n');
  ASSERT_NE(Nl, std::string::npos);
  EXPECT_GE(Nl, 2u);
}

TEST(Workloads, MakefileDepsPointForward) {
  Rng R(5);
  std::string Text = generateMakefile(R, 10);
  // Every line "tK: tA tB" must have A,B > K; just check parse shape here.
  EXPECT_EQ(Text.substr(0, 2), "t0");
  size_t Lines = 0;
  for (char C : Text)
    Lines += C == '\n' ? 1 : 0;
  EXPECT_EQ(Lines, 10u);
}

TEST(Workloads, ArchiveRecordsSizedCorrectly) {
  Rng R(6);
  std::string Text = generateArchiveInput(R, 3);
  // Parse: "<name> <size>\n<size chars>\n" three times.
  size_t Pos = 0;
  for (int F = 0; F != 3; ++F) {
    size_t Space = Text.find(' ', Pos);
    ASSERT_NE(Space, std::string::npos);
    size_t Nl = Text.find('\n', Space);
    ASSERT_NE(Nl, std::string::npos);
    unsigned Size = std::stoul(Text.substr(Space + 1, Nl - Space - 1));
    ASSERT_EQ(Text[Nl + 1 + Size], '\n') << "content length must match";
    Pos = Nl + 1 + Size + 1;
  }
}

TEST(Workloads, GrammarContainsSeparatorAndSamples) {
  Rng R(7);
  std::string Text = generateGrammar(R, 2);
  EXPECT_NE(Text.find("S=aSb;"), std::string::npos);
  EXPECT_NE(Text.find("\n@\n"), std::string::npos);
}

TEST(Workloads, CompressibleTextHasRepeats) {
  Rng R(8);
  std::string Text = generateCompressibleText(R, 2000);
  EXPECT_GE(Text.size(), 2000u);
}

} // namespace
