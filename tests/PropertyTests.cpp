//===- tests/PropertyTests.cpp - randomized equivalence properties ------------===//
//
// Part of the impact-inline project, distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Property tests over randomly generated MiniC programs: the observable
/// output must be invariant under (a) the classic optimization pipeline,
/// (b) profile-guided inline expansion at several aggressiveness levels,
/// and (c) both combined — and the IL verifier must accept every
/// intermediate module. Each seed is an independent parameterized test so
/// failures name the seed.
///
//===----------------------------------------------------------------------===//

#include "core/InlinePass.h"
#include "driver/Pipeline.h"
#include "ir/IrVerifier.h"
#include "opt/PassManager.h"
#include "suite/Suite.h"

#include "RandomProgram.h"
#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace impact;
using test::compileOk;
using test::generateRandomProgram;

namespace {

/// Inputs exercising different lengths and characters per seed.
std::vector<std::string> makeInputs(uint64_t Seed) {
  return {
      "",
      "a",
      "hello world " + std::to_string(Seed),
      std::string(17, static_cast<char>('a' + Seed % 26)),
      "mixed 123 !?" + std::string(Seed % 7, 'z'),
  };
}

class RandomProgramProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomProgramProperty, GeneratedProgramCompilesAndTerminates) {
  uint64_t Seed = GetParam();
  std::string Source = generateRandomProgram(Seed);
  Module M = compileOk(Source);
  ASSERT_FALSE(M.Funcs.empty());
  EXPECT_EQ(verifyModuleText(M), "");
  for (const std::string &In : makeInputs(Seed)) {
    RunOptions Opts;
    Opts.Input = In;
    Opts.StepLimit = 20'000'000;
    ExecResult R = runProgram(M, Opts);
    EXPECT_TRUE(R.ok()) << "seed " << Seed << " input '" << In
                        << "': " << R.TrapMessage;
  }
}

TEST_P(RandomProgramProperty, OptimizationPreservesOutput) {
  uint64_t Seed = GetParam();
  std::string Source = generateRandomProgram(Seed);
  Module M = compileOk(Source);
  std::vector<std::string> Outputs;
  for (const std::string &In : makeInputs(Seed)) {
    RunOptions Opts;
    Opts.Input = In;
    Outputs.push_back(runProgram(M, Opts).Output);
  }
  runOptimizationPipeline(M);
  ASSERT_EQ(verifyModuleText(M), "") << "seed " << Seed;
  size_t Index = 0;
  for (const std::string &In : makeInputs(Seed)) {
    RunOptions Opts;
    Opts.Input = In;
    ExecResult R = runProgram(M, Opts);
    EXPECT_TRUE(R.ok()) << "seed " << Seed << ": " << R.TrapMessage;
    EXPECT_EQ(R.Output, Outputs[Index]) << "seed " << Seed << " input #"
                                        << Index;
    ++Index;
  }
}

TEST_P(RandomProgramProperty, InlineExpansionPreservesOutput) {
  uint64_t Seed = GetParam();
  std::string Source = generateRandomProgram(Seed);

  // Three aggressiveness levels, including "inline everything possible".
  for (double Growth : {1.1, 2.0, 16.0}) {
    Module M = compileOk(Source);
    std::vector<std::string> Outputs;
    std::vector<RunInput> ProfileInputs;
    for (const std::string &In : makeInputs(Seed)) {
      RunOptions Opts;
      Opts.Input = In;
      Outputs.push_back(runProgram(M, Opts).Output);
      ProfileInputs.push_back(RunInput{In, ""});
    }
    ProfileResult P = profileProgram(M, ProfileInputs);
    ASSERT_TRUE(P.allRunsOk()) << "seed " << Seed;

    InlineOptions Options;
    Options.CodeGrowthFactor = Growth;
    Options.MinArcWeight = Growth > 8 ? 1.0 : 10.0;
    InlineResult IR = runInlineExpansion(M, P.Data, Options);
    ASSERT_EQ(verifyModuleText(M), "")
        << "seed " << Seed << " growth " << Growth;
    EXPECT_LE(static_cast<double>(IR.SizeAfter),
              static_cast<double>(IR.SizeBefore) * Growth * 1.5)
        << "post-hoc growth wildly above budget; seed " << Seed;

    size_t Index = 0;
    for (const std::string &In : makeInputs(Seed)) {
      RunOptions Opts;
      Opts.Input = In;
      ExecResult R = runProgram(M, Opts);
      EXPECT_TRUE(R.ok()) << "seed " << Seed << ": " << R.TrapMessage;
      EXPECT_EQ(R.Output, Outputs[Index])
          << "seed " << Seed << " growth " << Growth << " input #" << Index;
      ++Index;
    }
  }
}

TEST_P(RandomProgramProperty, FullPipelinePreservesOutput) {
  uint64_t Seed = GetParam();
  std::string Source = generateRandomProgram(Seed);
  std::vector<RunInput> Inputs;
  for (const std::string &In : makeInputs(Seed))
    Inputs.push_back(RunInput{In, ""});
  PipelineOptions Options;
  Options.Inline.PostInlineOptimize = (Seed % 2) == 0;
  PipelineResult R =
      runPipeline(Source, "random" + std::to_string(Seed), Inputs, Options);
  ASSERT_TRUE(R.Ok) << "seed " << Seed << ": " << R.Error;
  EXPECT_TRUE(R.outputsMatch()) << "seed " << Seed;
  EXPECT_EQ(verifyModuleText(R.FinalModule), "");
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomProgramProperty,
                         ::testing::Range<uint64_t>(1, 65));

//===----------------------------------------------------------------------===//
// Generator stability
//===----------------------------------------------------------------------===//

uint64_t fnv1a(const std::string &S) {
  uint64_t H = 1469598103934665603ull;
  for (unsigned char C : S) {
    H ^= C;
    H *= 1099511628211ull;
  }
  return H;
}

// The generator draws only from support/Rng (xorshift64*), never from
// stdlib distributions, so the emitted source is byte-identical on every
// platform and toolchain. These golden hashes pin that: if one changes,
// every seed-numbered failure report in history changes meaning.
TEST(RandomProgramGolden, GeneratedSourceIsByteStable) {
  const struct {
    uint64_t Seed;
    uint64_t Hash;
  } Golden[] = {
      {1ull, 0xb5f6a16321b006edull},  {7ull, 0xe64dd9b34d50e44eull},
      {13ull, 0x28b9f8e3c9b35f92ull}, {29ull, 0x4a6e645345ccc063ull},
      {47ull, 0xc8f3e54f5efe5723ull}, {64ull, 0x9f7775a55e63809cull},
  };
  for (const auto &G : Golden)
    EXPECT_EQ(fnv1a(generateRandomProgram(G.Seed)), G.Hash)
        << "seed " << G.Seed
        << ": generator output drifted — RandomProgram must stay "
           "byte-identical across platforms (use support/Rng only)";
  // Same seed twice in one process: the generator is stateless.
  EXPECT_EQ(generateRandomProgram(5), generateRandomProgram(5));
}

//===----------------------------------------------------------------------===//
// Targeted properties on the benchmark suite
//===----------------------------------------------------------------------===//

TEST(SuiteProperty, InlineNeverChangesBenchmarkOutputs) {
  // Covered in depth by the table benches; here a fast spot check on two
  // representative benchmarks with reduced runs.
  for (const char *Name : {"grep", "make"}) {
    const BenchmarkSpec *B = findBenchmark(Name);
    ASSERT_NE(B, nullptr);
    auto Inputs = makeBenchmarkInputs(*B, 3);
    PipelineResult R = runPipeline(B->Source, B->Name, Inputs);
    ASSERT_TRUE(R.Ok) << Name << ": " << R.Error;
    EXPECT_TRUE(R.outputsMatch()) << Name;
  }
}

} // namespace
