//===- tests/RandomProgram.h - Random MiniC programs for property tests ---===//
//
// Part of the impact-inline project, distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#ifndef IMPACT_TESTS_RANDOMPROGRAM_H
#define IMPACT_TESTS_RANDOMPROGRAM_H

#include <cstdint>
#include <string>

namespace impact {
namespace test {

/// Generates a deterministic, always-terminating MiniC program from
/// \p Seed. The program defines several functions calling each other in a
/// DAG (no recursion), uses globals, arrays, loops with constant bounds,
/// and guarded division; main consumes the input stream and prints an
/// input-dependent result. Used to property-test that optimization and
/// inline expansion preserve observable output.
std::string generateRandomProgram(uint64_t Seed);

} // namespace test
} // namespace impact

#endif // IMPACT_TESTS_RANDOMPROGRAM_H
