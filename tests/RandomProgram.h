//===- tests/RandomProgram.h - Random MiniC programs for property tests ---===//
//
// Part of the impact-inline project, distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#ifndef IMPACT_TESTS_RANDOMPROGRAM_H
#define IMPACT_TESTS_RANDOMPROGRAM_H

#include <cstdint>
#include <string>

namespace impact {
namespace test {

/// Generates a deterministic, always-terminating MiniC program from
/// \p Seed. The program defines several functions calling each other in a
/// DAG (no recursion), uses globals, arrays, loops with constant bounds,
/// and guarded division; main consumes the input stream and prints an
/// input-dependent result. Used to property-test that optimization and
/// inline expansion preserve observable output.
std::string generateRandomProgram(uint64_t Seed);

/// Deterministically corrupts \p Source for the fuzz tier: applies a few
/// token-level mutations (delete / duplicate / swap / replace / insert /
/// truncate) drawn from \p Seed. Works on any line-oriented text — MiniC
/// source and printed IL alike — and is guaranteed to return a string
/// different from \p Source (for non-trivial inputs), so every fuzz case
/// actually exercises an error path or a semantics-preserving accept.
std::string mutateProgramText(const std::string &Source, uint64_t Seed);

} // namespace test
} // namespace impact

#endif // IMPACT_TESTS_RANDOMPROGRAM_H
