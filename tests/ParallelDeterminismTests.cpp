//===- tests/ParallelDeterminismTests.cpp - batch == serial, always -----------===//
//
// Part of the impact-inline project, distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The batch pipeline's determinism contract, property-tested: for 64
/// random programs, running the serial Pipeline and the BatchPipeline (at
/// one thread and at an oversubscribed four threads, with the shared
/// function-definition cache active) must produce identical PhaseMetrics,
/// identical inline decisions (linearization, plan, expansion records,
/// eliminated functions), and byte-identical printed modules. Seeds vary
/// the pipeline knobs, including tail-recursion elimination — the pass
/// whose result depends on function identity and so stresses the cache
/// key — and a dedicated regression pits a self-recursive function against
/// a byte-identical wrapper. A final test asserts the same over the full
/// 12-program benchmark suite, which is the configuration every
/// table/ablation bench runs in.
///
//===----------------------------------------------------------------------===//

#include "driver/BatchPipeline.h"
#include "driver/Pipeline.h"
#include "ir/IrPrinter.h"
#include "suite/Suite.h"

#include "RandomProgram.h"
#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace impact;
using test::generateRandomProgram;

namespace {

/// Inputs exercising different lengths and characters per seed (mirrors
/// PropertyTests so the two tiers cover the same program behaviours).
std::vector<RunInput> makeInputs(uint64_t Seed) {
  std::vector<RunInput> Inputs;
  for (const std::string &In :
       {std::string(""), std::string("a"),
        "hello world " + std::to_string(Seed),
        std::string(17, static_cast<char>('a' + Seed % 26)),
        "mixed 123 !?" + std::string(Seed % 7, 'z')})
    Inputs.push_back(RunInput{In, ""});
  return Inputs;
}

/// Asserts every observable field matches. PipelineResult::Stats (wall
/// times, cache hit/miss split) is deliberately excluded: timing is the
/// one thing parallel execution is allowed to change.
void expectBitIdentical(const PipelineResult &Serial,
                        const PipelineResult &Batch,
                        const std::string &Tag) {
  ASSERT_EQ(Serial.Ok, Batch.Ok) << Tag << ": " << Batch.Error;
  EXPECT_EQ(Serial.Error, Batch.Error) << Tag;

  // Phase metrics: every dynamic counter of both profiling phases.
  EXPECT_TRUE(Serial.Before == Batch.Before) << Tag << " (Before metrics)";
  EXPECT_TRUE(Serial.After == Batch.After) << Tag << " (After metrics)";

  // Inline decisions: the order functions were processed in, which sites
  // were selected, and what was physically expanded and eliminated.
  EXPECT_TRUE(Serial.Inline.Linear == Batch.Inline.Linear)
      << Tag << " (linearization)";
  EXPECT_TRUE(Serial.Inline.Plan == Batch.Inline.Plan) << Tag << " (plan)";
  EXPECT_TRUE(Serial.Inline.Expansions == Batch.Inline.Expansions)
      << Tag << " (expansions)";
  EXPECT_EQ(Serial.Inline.EliminatedFunctions,
            Batch.Inline.EliminatedFunctions)
      << Tag;
  EXPECT_EQ(Serial.Inline.SizeBefore, Batch.Inline.SizeBefore) << Tag;
  EXPECT_EQ(Serial.Inline.SizeAfter, Batch.Inline.SizeAfter) << Tag;

  // Observable program behaviour and the final module, byte for byte.
  EXPECT_EQ(Serial.OutputsBefore, Batch.OutputsBefore) << Tag;
  EXPECT_EQ(Serial.OutputsAfter, Batch.OutputsAfter) << Tag;
  EXPECT_EQ(printModule(Serial.FinalModule), printModule(Batch.FinalModule))
      << Tag;
}

class ParallelDeterminism : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ParallelDeterminism, BatchMatchesSerialAtAnyThreadCount) {
  uint64_t Seed = GetParam();
  std::string Source = generateRandomProgram(Seed);
  std::vector<RunInput> Inputs = makeInputs(Seed);

  PipelineOptions Options;
  Options.Inline.PostInlineOptimize = (Seed % 2) == 0;
  // Every third seed enables the one pre-opt pass whose rewrite depends on
  // the function's own identity (self-call status), not just its printed
  // body — exactly the configuration a body-keyed cache can get wrong.
  Options.PreOpt.TailRecursionElimination = (Seed % 3) == 0;
  // Odd seeds widen the pipeline with the post-inline trio, so the cache
  // key must separate eight pass combinations across the seed range, and
  // LICM's preheader splicing runs under every thread count.
  Options.PreOpt.Sccp = (Seed % 2) == 1;
  Options.PreOpt.Peephole = (Seed % 2) == 1;
  Options.PreOpt.LoopInvariantCodeMotion = (Seed % 2) == 1;
  if (Options.Inline.PostInlineOptimize)
    Options.Inline.PostOpt = Options.PreOpt;

  PipelineResult Serial = runPipeline(
      Source, "random" + std::to_string(Seed), Inputs, Options);
  ASSERT_TRUE(Serial.Ok) << "seed " << Seed << ": " << Serial.Error;

  BatchJob Job;
  Job.Name = "random" + std::to_string(Seed);
  Job.Source = Source;
  Job.Inputs = Inputs;
  Job.Options = Options;

  // One thread, then oversubscribed (more workers than cores exercises
  // interleaving even on small machines). The definition cache is on in
  // both — a cache hit must be indistinguishable from recomputation.
  for (unsigned Threads : {1u, 4u}) {
    BatchOptions Batch;
    Batch.Jobs = Threads;
    BatchResult R = runBatchPipeline({Job}, Batch);
    ASSERT_EQ(R.Results.size(), 1u);
    expectBitIdentical(Serial, R.Results[0],
                       "seed " + std::to_string(Seed) + " threads=" +
                           std::to_string(Threads));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParallelDeterminism,
                         ::testing::Range<uint64_t>(1, 65));

// Cache-key regression across two jobs sharing the batch cache. In
// RecSource, rec (f0) tail-calls itself from its module's first call
// site; in WrapSource, wrap calls helper (also f0) from *its* module's
// first call site, so wrap's body prints to the very same bytes as rec's
// (same callee id, registers, site id) — but helper computes something
// else entirely, and only rec's call is a *self*-call. With
// TailRecursionElimination on, only rec may be rewritten into a loop; a
// cache keyed on printed bytes alone splices one function's post-opt body
// into the other and diverges from the serial (uncached) pipeline in
// profiles, printed IR, and program output.
TEST(ParallelDeterminism, TreWrapperDoesNotCollideWithSelfRecursion) {
  const char *RecSource =
      "int rec(int n, int acc) { if (n == 0) return acc;"
      "return rec(n - 1, acc + n); }"
      "extern int getchar(); extern int print_int(int v);"
      "int main() { int c; int t; t = 0; c = getchar();"
      "while (c != -1) { t = t + rec(c % 8, 1);"
      "c = getchar(); } print_int(t); return 0; }";
  const char *WrapSource =
      "int helper(int n, int acc) { return acc - n; }"
      "int wrap(int n, int acc) { if (n == 0) return acc;"
      "return helper(n - 1, acc + n); }"
      "extern int getchar(); extern int print_int(int v);"
      "int main() { int c; int t; t = 0; c = getchar();"
      "while (c != -1) { t = t + wrap(c % 8, 1);"
      "c = getchar(); } print_int(t); return 0; }";

  std::vector<RunInput> Inputs;
  Inputs.push_back(RunInput{"abcdefgh", ""});
  Inputs.push_back(RunInput{"", ""});

  PipelineOptions Options;
  Options.PreOpt.TailRecursionElimination = true;

  std::vector<BatchJob> Jobs(2);
  Jobs[0].Name = "tre-rec";
  Jobs[0].Source = RecSource;
  Jobs[1].Name = "tre-wrap";
  Jobs[1].Source = WrapSource;
  std::vector<PipelineResult> Serial;
  for (BatchJob &Job : Jobs) {
    Job.Inputs = Inputs;
    Job.Options = Options;
    Serial.push_back(runPipeline(Job.Source, Job.Name, Job.Inputs,
                                 Job.Options));
    ASSERT_TRUE(Serial.back().Ok) << Job.Name << ": "
                                  << Serial.back().Error;
  }

  for (unsigned Threads : {1u, 4u}) {
    BatchOptions Batch;
    Batch.Jobs = Threads;
    BatchResult R = runBatchPipeline(Jobs, Batch);
    ASSERT_EQ(R.Results.size(), 2u);
    for (size_t I = 0; I != Jobs.size(); ++I)
      expectBitIdentical(Serial[I], R.Results[I],
                         Jobs[I].Name + " threads=" +
                             std::to_string(Threads));
  }
}

// The configurations the benches actually run: the whole 12-program suite
// as one batch, shared cache, parallel workers — once at the paper
// baseline and once with the full widened pipeline (the ablation lattice's
// "+licm" point, pre-opt and post-inline both).
TEST(ParallelDeterminism, FullSuiteBatchMatchesSerial) {
  PipelineOptions Widened;
  Widened.PreOpt.Sccp = true;
  Widened.PreOpt.Peephole = true;
  Widened.PreOpt.LoopInvariantCodeMotion = true;
  Widened.Inline.PostInlineOptimize = true;
  Widened.Inline.PostOpt = Widened.PreOpt;

  for (const PipelineOptions &Config : {PipelineOptions(), Widened}) {
    std::vector<BatchJob> Jobs;
    std::vector<PipelineResult> Serial;
    for (const BenchmarkSpec &B : getBenchmarkSuite()) {
      BatchJob Job;
      Job.Name = B.Name;
      Job.Source = B.Source;
      Job.Inputs = makeBenchmarkInputs(B, 2);
      Job.Options = Config;
      Serial.push_back(runPipeline(Job.Source, Job.Name, Job.Inputs,
                                   Job.Options));
      ASSERT_TRUE(Serial.back().Ok) << B.Name << ": "
                                    << Serial.back().Error;
      Jobs.push_back(std::move(Job));
    }

    std::string Tag = Config.PreOpt.LoopInvariantCodeMotion
                          ? std::string(" widened")
                          : std::string(" baseline");
    BatchOptions Options;
    Options.Jobs = 4;
    BatchResult R = runBatchPipeline(Jobs, Options);
    ASSERT_TRUE(R.allOk()) << "first failure: " << R.firstFailure();
    ASSERT_EQ(R.Results.size(), Jobs.size());
    for (size_t I = 0; I != Jobs.size(); ++I)
      expectBitIdentical(Serial[I], R.Results[I], Jobs[I].Name + Tag);
  }
}

} // namespace
