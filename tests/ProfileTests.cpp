//===- tests/ProfileTests.cpp - profiler tests --------------------------------===//
//
// Part of the impact-inline project, distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "profile/Profiler.h"

#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace impact;
using test::compileOk;

namespace {

TEST(Profile, AveragesOverRuns) {
  Module M = compileOk(test::kCallHeavyProgram);
  // Inputs of length 2 and 4: cube called 2 and 4 times -> node weight 3.
  ProfileResult R = test::profileInputs(M, {"ab", "abcd"});
  ASSERT_TRUE(R.allRunsOk());
  EXPECT_EQ(R.Data.getNumRuns(), 2u);
  EXPECT_DOUBLE_EQ(R.Data.getNodeWeight(M.findFunction("cube")), 3.0);
  EXPECT_DOUBLE_EQ(R.Data.getNodeWeight(M.findFunction("square")), 6.0);
}

TEST(Profile, ArcWeightsArePerRunAverages) {
  Module M = compileOk(test::kCallHeavyProgram);
  ProfileResult R = test::profileInputs(M, {"aa", "aaaa"});
  ASSERT_TRUE(R.allRunsOk());
  // Find the call site inside cube (calls square once per cube call).
  const Function &Cube = M.getFunction(M.findFunction("cube"));
  uint32_t Site = 0;
  for (const BasicBlock &B : Cube.Blocks)
    for (const Instr &I : B.Instrs)
      if (I.isCall())
        Site = I.SiteId;
  ASSERT_NE(Site, 0u);
  EXPECT_DOUBLE_EQ(R.Data.getArcWeight(Site), 3.0);
  EXPECT_EQ(R.Data.getSiteTotal(Site), 6u);
}

TEST(Profile, CollectsFailures) {
  Module M = compileOk("extern int getchar();"
                       "int main() { int z; z = 0;"
                       "if (getchar() == 'x') return 1 / z; return 0; }");
  std::vector<RunInput> Inputs = {{"a", ""}, {"x", ""}};
  ProfileResult R = profileProgram(M, Inputs);
  EXPECT_FALSE(R.allRunsOk());
  ASSERT_EQ(R.Failures.size(), 1u);
  EXPECT_NE(R.Failures[0].find("run 1"), std::string::npos);
}

TEST(Profile, OutputsRecordedPerRun) {
  Module M = compileOk("extern int getchar(); extern int putchar(int c);"
                       "int main() { int c; c = getchar();"
                       "while (c != -1) { putchar(c + 1); c = getchar(); }"
                       "return 0; }");
  ProfileResult R = test::profileInputs(M, {"ab", "z"});
  ASSERT_EQ(R.Outputs.size(), 2u);
  EXPECT_EQ(R.Outputs[0], "bc");
  EXPECT_EQ(R.Outputs[1], "{");
}

TEST(Profile, DynamicTotalsAccumulate) {
  Module M = compileOk(test::kCallHeavyProgram);
  ProfileResult R = test::profileInputs(M, {"ab", "abcd", "x"});
  EXPECT_GT(R.Data.getAvgInstrs(), 0.0);
  EXPECT_GT(R.Data.getAvgDynamicCalls(), 0.0);
  EXPECT_GT(R.Data.getAvgControlTransfers(), 0.0);
  EXPECT_GT(R.Data.getAvgExternalCalls(), 0.0);
  EXPECT_EQ(R.Data.getAvgPointerCalls(), 0.0);
}

TEST(Profile, MaxPeakStackTracked) {
  Module M = compileOk(test::kRecursiveProgram);
  ProfileResult R = test::profileInputs(M, {"xx", std::string(11, 'x')});
  ASSERT_TRUE(R.allRunsOk());
  EXPECT_GT(R.Data.getMaxPeakStackWords(), 5000);
}

TEST(Profile, EmptyInputSetYieldsZeroWeights) {
  Module M = compileOk(test::kCallHeavyProgram);
  ProfileResult R = test::profileInputs(M, {});
  EXPECT_EQ(R.Data.getNumRuns(), 0u);
  EXPECT_EQ(R.Data.getNodeWeight(0), 0.0);
  EXPECT_EQ(R.Data.getArcWeight(1), 0.0);
}

TEST(Profile, OutOfRangeQueriesAreZero) {
  ProfileData D;
  ExecStats S;
  S.SiteCounts = {0, 5};
  S.FuncEntryCounts = {2};
  D.accumulate(S);
  EXPECT_EQ(D.getArcWeight(999), 0.0);
  EXPECT_EQ(D.getNodeWeight(999), 0.0);
  EXPECT_EQ(D.getNodeWeight(-1), 0.0);
  EXPECT_DOUBLE_EQ(D.getArcWeight(1), 5.0);
}

} // namespace
