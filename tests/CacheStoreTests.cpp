//===- tests/CacheStoreTests.cpp - Persistent cache store recovery ---------===//
//
// Part of the impact-inline project, distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The crash/corruption/invalidation contract of the `impact-cache v1`
/// store (support/CacheStore.h) and of the FunctionDefinitionCache
/// persisted through it: every way a store file can be damaged —
/// truncated at any byte, any byte flipped, a garbage prefix, a stale
/// epoch or options fingerprint, a crash at any point of the save path —
/// must at worst cost recompilation. A verified record is always one the
/// writer wrote; the cumulative stats line is trusted only under the
/// whole-file checksum; a crashed save never touches the previous store.
/// The checksum itself is mutation-verified: with the per-record check
/// disabled (test hook), the corrupted record IS served, proving the
/// check is what stands between corruption and spliced bodies.
///
//===----------------------------------------------------------------------===//

#include "driver/FunctionCache.h"
#include "driver/Pipeline.h"
#include "ir/IrPrinter.h"
#include "support/CacheStore.h"
#include "support/FaultInjection.h"
#include "TestUtil.h"

#include <gtest/gtest.h>

#include <cctype>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

using namespace impact;

namespace {

std::string tempPath(const std::string &Name) {
  return ::testing::TempDir() + "impact_store_" + Name;
}

std::string readBytes(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  EXPECT_TRUE(In.good()) << Path;
  std::ostringstream Buffer;
  Buffer << In.rdbuf();
  return Buffer.str();
}

void writeBytes(const std::string &Path, const std::string &Bytes) {
  std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
  ASSERT_TRUE(Out.good()) << Path;
  Out << Bytes;
}

void removeStore(const std::string &Path) {
  std::remove(Path.c_str());
  std::remove((Path + ".tmp").c_str());
}

/// Restores the checksum-check hook even when an assertion fails.
struct ChecksumCheckGuard {
  explicit ChecksumCheckGuard(bool Disabled) {
    setCacheStoreChecksumCheckDisabledForTest(Disabled);
  }
  ~ChecksumCheckGuard() { setCacheStoreChecksumCheckDisabledForTest(false); }
};

CacheStoreHeader makeHeader() {
  CacheStoreHeader H;
  H.Epoch = 3;
  H.Fingerprint = "fp-test";
  H.Stats = {7, 11, 13, 17};
  return H;
}

std::vector<CacheStoreRecord> makeRecords() {
  // Adversarial payloads: newlines, spaces, bytes that mimic the store's
  // own framing, and an empty payload — all must round-trip because
  // payloads are length-framed, never line-parsed.
  return {
      {"a1b2", "h 3 0 5\ni 1 2 3 4 99\n"},
      {"c3d4", "end deadbeefdeadbeef\nentry x 4 0\n"},
      {"e5f6", ""},
      {"a7b8", "spaces and\ttabs \n and a trailing newline\n"},
  };
}

bool sameRecord(const CacheStoreRecord &A, const CacheStoreRecord &B) {
  return A.Key == B.Key && A.Payload == B.Payload;
}

/// Every loaded record must be byte-identical to one the writer wrote —
/// the no-spliced-garbage invariant under arbitrary damage.
void expectSubsetOfOriginals(const CacheStoreLoadResult &R,
                             const std::vector<CacheStoreRecord> &Originals,
                             const std::string &Tag) {
  for (const CacheStoreRecord &Loaded : R.Records) {
    bool Found = false;
    for (const CacheStoreRecord &O : Originals)
      Found |= sameRecord(Loaded, O);
    EXPECT_TRUE(Found) << Tag << ": fabricated record key=" << Loaded.Key;
  }
}

TEST(CacheStore, RoundTripAndDeterministicBytes) {
  std::string Path = tempPath("roundtrip");
  removeStore(Path);
  CacheStoreHeader H = makeHeader();
  std::vector<CacheStoreRecord> Records = makeRecords();
  std::string Error;
  ASSERT_TRUE(saveCacheStore(Path, H, Records, &Error)) << Error;

  CacheStoreLoadResult R = loadCacheStore(Path, H.Epoch, H.Fingerprint);
  EXPECT_EQ(R.Status, CacheStoreStatus::Loaded) << R.Error;
  EXPECT_TRUE(R.WholeFileVerified);
  EXPECT_EQ(R.CorruptRecords, 0u);
  EXPECT_EQ(R.Header.Epoch, H.Epoch);
  EXPECT_EQ(R.Header.Fingerprint, H.Fingerprint);
  EXPECT_EQ(R.Header.Stats, H.Stats);
  ASSERT_EQ(R.Records.size(), Records.size());
  for (size_t I = 0; I != Records.size(); ++I) {
    EXPECT_EQ(R.Records[I].Key, Records[I].Key);
    EXPECT_EQ(R.Records[I].Payload, Records[I].Payload);
  }

  // Identical header + records → identical bytes (the canonical-file
  // property save→load→save relies on).
  std::string Path2 = tempPath("roundtrip2");
  removeStore(Path2);
  ASSERT_TRUE(saveCacheStore(Path2, H, Records, &Error)) << Error;
  EXPECT_EQ(readBytes(Path), readBytes(Path2));
  removeStore(Path);
  removeStore(Path2);
}

TEST(CacheStore, MissingFileIsColdStart) {
  CacheStoreLoadResult R =
      loadCacheStore(tempPath("never_written"), 1, "fp");
  EXPECT_EQ(R.Status, CacheStoreStatus::NoFile);
  EXPECT_TRUE(R.Records.empty());
  EXPECT_FALSE(R.WholeFileVerified);
}

TEST(CacheStore, GarbagePrefixRejectsWholeFile) {
  std::string Path = tempPath("garbage");
  removeStore(Path);
  CacheStoreHeader H = makeHeader();
  ASSERT_TRUE(saveCacheStore(Path, H, makeRecords()));
  writeBytes(Path, "GARBAGE\n" + readBytes(Path));
  CacheStoreLoadResult R = loadCacheStore(Path, H.Epoch, H.Fingerprint);
  EXPECT_EQ(R.Status, CacheStoreStatus::BadMagic);
  EXPECT_TRUE(R.Records.empty()) << "nothing in a BadMagic file is trusted";
  removeStore(Path);
}

TEST(CacheStore, StaleEpochAndFingerprintRejectWholeFile) {
  std::string Path = tempPath("stale");
  removeStore(Path);
  CacheStoreHeader H = makeHeader();
  ASSERT_TRUE(saveCacheStore(Path, H, makeRecords()));

  CacheStoreLoadResult ByEpoch =
      loadCacheStore(Path, H.Epoch + 1, H.Fingerprint);
  EXPECT_EQ(ByEpoch.Status, CacheStoreStatus::Stale);
  EXPECT_TRUE(ByEpoch.Records.empty())
      << "stale records must be rebuilt, never spliced";

  CacheStoreLoadResult ByFp = loadCacheStore(Path, H.Epoch, "other-fp");
  EXPECT_EQ(ByFp.Status, CacheStoreStatus::Stale);
  EXPECT_TRUE(ByFp.Records.empty());
  removeStore(Path);
}

TEST(CacheStore, TruncationAtEveryByteNeverFabricatesARecord) {
  std::string Path = tempPath("trunc");
  removeStore(Path);
  CacheStoreHeader H = makeHeader();
  std::vector<CacheStoreRecord> Records = makeRecords();
  ASSERT_TRUE(saveCacheStore(Path, H, Records));
  std::string Full = readBytes(Path);

  std::string Cut = tempPath("trunc_cut");
  for (size_t Len = 0; Len < Full.size(); ++Len) {
    writeBytes(Cut, Full.substr(0, Len));
    CacheStoreLoadResult R = loadCacheStore(Cut, H.Epoch, H.Fingerprint);
    std::string Tag = "truncated to " + std::to_string(Len);
    EXPECT_FALSE(R.WholeFileVerified) << Tag;
    expectSubsetOfOriginals(R, Records, Tag);
    if (R.Status == CacheStoreStatus::Loaded) {
      for (uint64_t S : R.Header.Stats)
        EXPECT_EQ(S, 0u) << Tag << ": unverified stats must be zeroed";
    }
  }
  removeStore(Path);
  removeStore(Cut);
}

TEST(CacheStore, BitFlipAtEveryByteNeverFabricatesARecord) {
  std::string Path = tempPath("flip");
  removeStore(Path);
  CacheStoreHeader H = makeHeader();
  std::vector<CacheStoreRecord> Records = makeRecords();
  ASSERT_TRUE(saveCacheStore(Path, H, Records));
  std::string Full = readBytes(Path);

  std::string Bad = tempPath("flip_bad");
  for (size_t I = 0; I < Full.size(); ++I) {
    std::string Damaged = Full;
    Damaged[I] = static_cast<char>(Damaged[I] ^ 0x01);
    writeBytes(Bad, Damaged);
    CacheStoreLoadResult R = loadCacheStore(Bad, H.Epoch, H.Fingerprint);
    std::string Tag = "bit flip at byte " + std::to_string(I);
    // One flipped bit can never verify the whole file (it either breaks
    // the covered bytes or the trailer digits themselves).
    EXPECT_FALSE(R.WholeFileVerified) << Tag;
    expectSubsetOfOriginals(R, Records, Tag);
    if (R.Status == CacheStoreStatus::Loaded) {
      for (uint64_t S : R.Header.Stats)
        EXPECT_EQ(S, 0u) << Tag << ": unverified stats must be zeroed";
    }
  }
  removeStore(Path);
  removeStore(Bad);
}

/// Locates the first record's payload in a store file: offset and length.
void locateFirstPayload(const std::string &Text, size_t &Offset,
                        size_t &Length) {
  size_t Entry = Text.find("\nentry ");
  ASSERT_NE(Entry, std::string::npos);
  size_t LineEnd = Text.find('\n', Entry + 1);
  ASSERT_NE(LineEnd, std::string::npos);
  std::istringstream Fields(Text.substr(Entry + 1, LineEnd - Entry - 1));
  std::string Word, Key;
  uint64_t Bytes = 0;
  Fields >> Word >> Key >> Bytes;
  ASSERT_EQ(Word, "entry");
  Offset = LineEnd + 1;
  Length = Bytes;
}

TEST(CacheStore, RecordChecksumCoversTheKey) {
  // A flipped byte in the KEY field must kill the record: the payload
  // alone verifying would serve a correct body under the wrong content
  // address.
  std::string Path = tempPath("keyflip");
  removeStore(Path);
  CacheStoreHeader H = makeHeader();
  std::vector<CacheStoreRecord> Records = makeRecords();
  ASSERT_TRUE(saveCacheStore(Path, H, Records));
  std::string Text = readBytes(Path);
  size_t Entry = Text.find("\nentry ");
  ASSERT_NE(Entry, std::string::npos);
  size_t KeyPos = Entry + strlen("\nentry ");
  ASSERT_EQ(Text[KeyPos], Records[0].Key[0]);
  Text[KeyPos] = Text[KeyPos] == 'z' ? 'y' : 'z';
  writeBytes(Path, Text);

  CacheStoreLoadResult R = loadCacheStore(Path, H.Epoch, H.Fingerprint);
  EXPECT_EQ(R.Status, CacheStoreStatus::Loaded);
  EXPECT_GE(R.CorruptRecords, 1u);
  for (const CacheStoreRecord &Loaded : R.Records)
    EXPECT_NE(Loaded.Payload, Records[0].Payload)
        << "record served under a corrupted key";
  // Framing stayed intact, so every other record survives.
  EXPECT_EQ(R.Records.size(), Records.size() - 1);
  removeStore(Path);
}

TEST(CacheStore, ChecksumCheckIsLoadBearing) {
  // Mutation verification: corrupt one payload byte (framing intact).
  // With the per-record check on, the record is dropped; with the check
  // disabled — simulating its removal — the corrupted payload IS served.
  // If the checksum comparison were ever deleted, the first half of this
  // test fails.
  std::string Path = tempPath("mutation");
  removeStore(Path);
  CacheStoreHeader H = makeHeader();
  std::vector<CacheStoreRecord> Records = makeRecords();
  ASSERT_TRUE(saveCacheStore(Path, H, Records));
  std::string Text = readBytes(Path);
  size_t Offset = 0, Length = 0;
  locateFirstPayload(Text, Offset, Length);
  ASSERT_GT(Length, 0u);
  Text[Offset] = static_cast<char>(Text[Offset] ^ 0x01);
  writeBytes(Path, Text);
  std::string Corrupted = Records[0].Payload;
  Corrupted[0] = static_cast<char>(Corrupted[0] ^ 0x01);

  CacheStoreLoadResult Checked = loadCacheStore(Path, H.Epoch, H.Fingerprint);
  EXPECT_EQ(Checked.Status, CacheStoreStatus::Loaded);
  EXPECT_EQ(Checked.CorruptRecords, 1u);
  EXPECT_EQ(Checked.Records.size(), Records.size() - 1);
  for (const CacheStoreRecord &R : Checked.Records)
    EXPECT_NE(R.Payload, Corrupted);

  {
    ChecksumCheckGuard Guard(true);
    CacheStoreLoadResult Unchecked =
        loadCacheStore(Path, H.Epoch, H.Fingerprint);
    EXPECT_EQ(Unchecked.Status, CacheStoreStatus::Loaded);
    EXPECT_EQ(Unchecked.CorruptRecords, 0u);
    ASSERT_EQ(Unchecked.Records.size(), Records.size());
    EXPECT_EQ(Unchecked.Records[0].Payload, Corrupted)
        << "without the checksum the corrupted payload is served — the "
           "check is the only guard";
  }
  removeStore(Path);
}

TEST(CacheStore, CrashAtEveryPersistOccurrenceLeavesStoreIntact) {
  std::string Path = tempPath("crash");
  removeStore(Path);
  CacheStoreHeader H = makeHeader();
  std::vector<CacheStoreRecord> Old = makeRecords();
  ASSERT_TRUE(saveCacheStore(Path, H, Old));
  std::string OldBytes = readBytes(Path);

  std::vector<CacheStoreRecord> New = Old;
  New.push_back({"ffff", "new payload"});

  for (uint64_t Occurrence : {1, 2, 3}) {
    FaultPlan Plan;
    ASSERT_TRUE(parseFaultPlan(
        "cache-persist:throw@" + std::to_string(Occurrence), Plan));
    FaultSession Session(&Plan, "server");
    std::string Error;
    EXPECT_THROW(saveCacheStore(Path, H, New, &Error, &Session),
                 FaultInjectedError)
        << "occurrence " << Occurrence;
    EXPECT_EQ(readBytes(Path), OldBytes)
        << "crash at occurrence " << Occurrence << " touched the store";
    bool TempExists = std::filesystem::exists(Path + ".tmp");
    // Occurrence 1 fires before the temp is opened; 2 and 3 leave the
    // partial/complete temp behind, like a killed process would.
    EXPECT_EQ(TempExists, Occurrence != 1) << "occurrence " << Occurrence;
    std::remove((Path + ".tmp").c_str());
  }

  // Clean-failure kind: returns false, removes the temp, store intact.
  FaultPlan DiagPlan;
  ASSERT_TRUE(parseFaultPlan("cache-persist:diag@2", DiagPlan));
  FaultSession DiagSession(&DiagPlan, "server");
  std::string Error;
  EXPECT_FALSE(saveCacheStore(Path, H, New, &Error, &DiagSession));
  EXPECT_FALSE(Error.empty());
  EXPECT_EQ(readBytes(Path), OldBytes);
  EXPECT_FALSE(std::filesystem::exists(Path + ".tmp"));

  // And the recovery: the next fault-free save lands atomically.
  ASSERT_TRUE(saveCacheStore(Path, H, New, &Error)) << Error;
  EXPECT_FALSE(std::filesystem::exists(Path + ".tmp"));
  CacheStoreLoadResult R = loadCacheStore(Path, H.Epoch, H.Fingerprint);
  EXPECT_EQ(R.Status, CacheStoreStatus::Loaded);
  EXPECT_TRUE(R.WholeFileVerified);
  EXPECT_EQ(R.Records.size(), New.size());
  removeStore(Path);
}

//===----------------------------------------------------------------------===//
// FunctionDefinitionCache persistence over the store.
//===----------------------------------------------------------------------===//

std::vector<RunInput> twoRuns() { return {{"abcd", ""}, {"", ""}}; }

PipelineResult runWithCache(FunctionDefinitionCache *Cache) {
  PipelineOptions Options;
  Options.DefCache = Cache;
  return runPipeline(test::kCallHeavyProgram, "call_heavy", twoRuns(),
                     Options);
}

TEST(FunctionCachePersist, RoundTripServesPersistentHits) {
  std::string Path = tempPath("fc_roundtrip");
  removeStore(Path);

  FunctionDefinitionCache Warm;
  PipelineResult Fresh = runWithCache(&Warm);
  ASSERT_TRUE(Fresh.Ok) << Fresh.Error;
  FunctionCacheStats WarmStats = Warm.getStats();
  ASSERT_GT(WarmStats.Entries, 0u);
  std::string Error;
  ASSERT_TRUE(Warm.saveToFile(Path, &Error)) << Error;

  // A second "process": load the store cold and recompile.
  FunctionDefinitionCache Reloaded;
  ASSERT_EQ(Reloaded.loadFromFile(Path, &Error), CacheLoadStatus::Loaded)
      << Error;
  FunctionCacheStats LoadedStats = Reloaded.getStats();
  EXPECT_EQ(LoadedStats.Entries, WarmStats.Entries);
  EXPECT_EQ(LoadedStats.Hits, WarmStats.Hits)
      << "loaded counters must carry the previous process's lifetime";
  EXPECT_EQ(LoadedStats.Misses, WarmStats.Misses);

  PipelineResult Reused = runWithCache(&Reloaded);
  ASSERT_TRUE(Reused.Ok) << Reused.Error;
  EXPECT_EQ(printModule(Reused.FinalModule), printModule(Fresh.FinalModule))
      << "a persistent hit must be bit-identical to recomputation";
  EXPECT_EQ(Reused.OutputsAfter, Fresh.OutputsAfter);
  FunctionCacheStats ReusedStats = Reloaded.getStats();
  EXPECT_GT(ReusedStats.PersistentHits, 0u)
      << "cross-process reuse must be observable";
  EXPECT_EQ(ReusedStats.Misses, WarmStats.Misses)
      << "every body must be served from the store, not recomputed";
  EXPECT_GT(ReusedStats.Hits, WarmStats.Hits);
  removeStore(Path);
}

TEST(FunctionCachePersist, SaveLoadSaveProducesIdenticalBytes) {
  std::string PathA = tempPath("fc_bytes_a");
  std::string PathB = tempPath("fc_bytes_b");
  removeStore(PathA);
  removeStore(PathB);

  FunctionDefinitionCache Warm;
  ASSERT_TRUE(runWithCache(&Warm).Ok);
  ASSERT_TRUE(Warm.saveToFile(PathA));

  FunctionDefinitionCache Reloaded;
  ASSERT_EQ(Reloaded.loadFromFile(PathA), CacheLoadStatus::Loaded);
  ASSERT_TRUE(Reloaded.saveToFile(PathB));
  EXPECT_EQ(readBytes(PathA), readBytes(PathB))
      << "save→load→save must be byte-identical (sorted records, carried "
         "counters)";
  removeStore(PathA);
  removeStore(PathB);
}

TEST(FunctionCachePersist, StaleEpochAndFingerprintAreRejectedWhole) {
  std::string Path = tempPath("fc_stale");
  removeStore(Path);
  FunctionDefinitionCache Warm;
  ASSERT_TRUE(runWithCache(&Warm).Ok);
  ASSERT_TRUE(Warm.saveToFile(Path));
  std::string Good = readBytes(Path);

  // Another epoch: the whole store is rebuilt, never spliced.
  std::string Text = Good;
  size_t Epoch = Text.find("epoch ");
  ASSERT_NE(Epoch, std::string::npos);
  Text[Epoch + 6] = Text[Epoch + 6] == '9' ? '8' : '9';
  writeBytes(Path, Text);
  FunctionDefinitionCache C1;
  std::string Detail;
  EXPECT_EQ(C1.loadFromFile(Path, &Detail), CacheLoadStatus::Stale) << Detail;
  FunctionCacheStats S1 = C1.getStats();
  EXPECT_EQ(S1.Entries, 0u);
  EXPECT_EQ(S1.StaleRejected, 1u);

  // Another options fingerprint: same rejection.
  Text = Good;
  size_t Options = Text.find("options ");
  ASSERT_NE(Options, std::string::npos);
  Text.insert(Options + 8, "x");
  writeBytes(Path, Text);
  FunctionDefinitionCache C2;
  EXPECT_EQ(C2.loadFromFile(Path, &Detail), CacheLoadStatus::Stale) << Detail;
  EXPECT_EQ(C2.getStats().Entries, 0u);

  // Garbage prefix: Corrupt, counted as such.
  writeBytes(Path, "not a cache\n" + Good);
  FunctionDefinitionCache C3;
  EXPECT_EQ(C3.loadFromFile(Path, &Detail), CacheLoadStatus::Corrupt)
      << Detail;
  EXPECT_EQ(C3.getStats().CorruptRejected, 1u);
  removeStore(Path);
}

TEST(FunctionCachePersist, CorruptRecordRecompilesBitIdentically) {
  std::string Path = tempPath("fc_corrupt");
  removeStore(Path);

  FunctionDefinitionCache Warm;
  PipelineResult Fresh = runWithCache(&Warm);
  ASSERT_TRUE(Fresh.Ok);
  ASSERT_TRUE(Warm.saveToFile(Path));

  // Flip the first digit of the first record's body header ("h <NumRegs>
  // ...") — a corruption a strict payload parse alone would NOT catch,
  // so only the record checksum stands in the way.
  std::string Text = readBytes(Path);
  size_t Offset = 0, Length = 0;
  locateFirstPayload(Text, Offset, Length);
  ASSERT_GT(Length, 2u);
  ASSERT_EQ(Text[Offset], 'h');
  size_t Digit = Offset + 2;
  ASSERT_TRUE(isdigit(static_cast<unsigned char>(Text[Digit])));
  Text[Digit] = Text[Digit] == '9' ? '0' : Text[Digit] + 1;
  writeBytes(Path, Text);

  // With the checksum on: the bad record is dropped and counted, the
  // rest load, and a recompile is bit-identical to the fresh pipeline.
  FunctionDefinitionCache Recovered;
  ASSERT_EQ(Recovered.loadFromFile(Path), CacheLoadStatus::Loaded);
  FunctionCacheStats Stats = Recovered.getStats();
  EXPECT_EQ(Stats.CorruptRejected, 1u);
  EXPECT_EQ(Stats.Entries, Warm.getStats().Entries - 1);
  PipelineResult Recompiled = runWithCache(&Recovered);
  ASSERT_TRUE(Recompiled.Ok) << Recompiled.Error;
  EXPECT_EQ(printModule(Recompiled.FinalModule),
            printModule(Fresh.FinalModule))
      << "a corrupt store may cost recompilation, never correctness";
  EXPECT_EQ(Recompiled.OutputsAfter, Fresh.OutputsAfter);

  // Mutation verification: disable the checksum comparison (simulating
  // its removal) and the corrupted body is accepted — the cache now
  // holds different bytes than a clean load, proving the checksum is
  // load-bearing. If the check were deleted, CorruptRejected above
  // would read 0 and this test would fail.
  {
    ChecksumCheckGuard Guard(true);
    FunctionDefinitionCache Poisoned;
    ASSERT_EQ(Poisoned.loadFromFile(Path), CacheLoadStatus::Loaded);
    EXPECT_EQ(Poisoned.getStats().CorruptRejected, 0u);
    EXPECT_EQ(Poisoned.getStats().Entries, Warm.getStats().Entries);
    std::string CleanSave = tempPath("fc_corrupt_clean");
    std::string PoisonSave = tempPath("fc_corrupt_poison");
    removeStore(CleanSave);
    removeStore(PoisonSave);
    FunctionDefinitionCache Clean;
    {
      ChecksumCheckGuard Inner(false);
      std::string GoodPath = tempPath("fc_corrupt_good");
      removeStore(GoodPath);
      ASSERT_TRUE(Warm.saveToFile(GoodPath));
      ASSERT_EQ(Clean.loadFromFile(GoodPath), CacheLoadStatus::Loaded);
      removeStore(GoodPath);
    }
    ASSERT_TRUE(Clean.saveToFile(CleanSave));
    ASSERT_TRUE(Poisoned.saveToFile(PoisonSave));
    EXPECT_NE(readBytes(CleanSave), readBytes(PoisonSave))
        << "with the check disabled the corrupted body was served";
    removeStore(CleanSave);
    removeStore(PoisonSave);
  }
  removeStore(Path);
}

TEST(FunctionCachePersist, EvictionIsFifoAndOnlyMovesWorkBack) {
  // Three distinct bodies through a capacity-2 single-shard cache: the
  // first inserted is evicted, later ones survive.
  FunctionDefinitionCache Cache(/*ShardCount=*/1);
  Cache.setCapacity(2);
  OptOptions Opts;

  std::vector<std::string> Keys;
  for (int I = 0; I != 3; ++I) {
    std::string Source = "int f(int x) { return x + " + std::to_string(I) +
                         "; }";
    CompilationResult C =
        compileMiniC(Source, "u" + std::to_string(I), /*RequireMain=*/false);
    ASSERT_TRUE(C.Ok) << C.Errors;
    Function &F = C.M.Funcs.back();
    Keys.push_back(FunctionDefinitionCache::makeKey(F, Opts));
    Cache.insert(Keys.back(), F);
  }
  FunctionCacheStats Stats = Cache.getStats();
  EXPECT_EQ(Stats.Entries, 2u);
  EXPECT_EQ(Stats.Evictions, 1u);

  CompilationResult Probe = compileMiniC("int f(int x) { return x + 9; }",
                                         "probe", /*RequireMain=*/false);
  ASSERT_TRUE(Probe.Ok);
  Function Scratch = Probe.M.Funcs.back();
  EXPECT_FALSE(Cache.lookup(Keys[0], Scratch)) << "oldest entry evicted";
  EXPECT_TRUE(Cache.lookup(Keys[1], Scratch));
  EXPECT_TRUE(Cache.lookup(Keys[2], Scratch));
}

TEST(FunctionCachePersist, CountersAccumulateAcrossProcesses) {
  std::string Path = tempPath("fc_cumulative");
  removeStore(Path);

  FunctionDefinitionCache First;
  ASSERT_TRUE(runWithCache(&First).Ok);
  FunctionCacheStats S1 = First.getStats();
  ASSERT_TRUE(First.saveToFile(Path));

  FunctionDefinitionCache Second;
  ASSERT_EQ(Second.loadFromFile(Path), CacheLoadStatus::Loaded);
  ASSERT_TRUE(runWithCache(&Second).Ok);
  FunctionCacheStats S2 = Second.getStats();
  EXPECT_GT(S2.Hits, S1.Hits) << "second process adds on the first's base";
  EXPECT_EQ(S2.Misses, S1.Misses);
  ASSERT_TRUE(Second.saveToFile(Path));

  FunctionDefinitionCache Third;
  ASSERT_EQ(Third.loadFromFile(Path), CacheLoadStatus::Loaded);
  FunctionCacheStats S3 = Third.getStats();
  EXPECT_EQ(S3.Hits, S2.Hits)
      << "the [cache] footer reports cross-process lifetime numbers";
  EXPECT_EQ(S3.PersistentHits, S2.PersistentHits);
}

} // namespace
