//===- tests/RangePropertyTests.cpp - static facts vs dynamic truth ---------===//
//
// Part of the impact-inline project, distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The `ranges` tier: every fact the interprocedural range/purity analysis
/// emits is asserted against real executions. The 12-benchmark suite and a
/// randomized MiniC corpus run through BOTH engines (walker, VM with both
/// dispatch strategies) with a RangeFactChecker installed; any dynamic
/// violation of a statically-proven fact is a hard failure. The same
/// programs re-run after inline expansion plus the ranges-powered
/// optimizer, so the facts must stay true across every transform they
/// license. The analyzer's range-backed rules must be engine- and
/// thread-count-invariant and produce zero error findings on legal
/// programs.
///
/// Run with `ctest -L ranges`. Corpus width: IMPACT_FUZZ_SEEDS (>= 64).
///
//===----------------------------------------------------------------------===//

#include "analysis/Analyzer.h"
#include "analysis/RangeAnalysis.h"
#include "core/InlinePass.h"
#include "driver/BatchPipeline.h"
#include "ir/IrPrinter.h"
#include "ir/IrVerifier.h"
#include "suite/Suite.h"
#include "vm/Bytecode.h"
#include "vm/Vm.h"

#include "RandomProgram.h"
#include "TestUtil.h"

#include <gtest/gtest.h>

#include <cstdlib>

using namespace impact;

namespace {

/// Seed count for the random corpus: IMPACT_FUZZ_SEEDS, floored at 64 so
/// the tier never runs narrower than its contract.
unsigned corpusSeedCount() {
  const char *Env = std::getenv("IMPACT_FUZZ_SEEDS");
  if (!Env || !*Env)
    return 64;
  char *End = nullptr;
  unsigned long N = std::strtoul(Env, &End, 10);
  if (!End || *End || N == 0)
    return 64;
  return N < 64 ? 64 : static_cast<unsigned>(N);
}

/// All pipeline passes, driven by range facts.
OptOptions rangedPasses() {
  OptOptions Opts;
  Opts.Sccp = true;
  Opts.Peephole = true;
  Opts.LoopInvariantCodeMotion = true;
  Opts.Ranges = true;
  return Opts;
}

/// Computes \p M's facts, installs a checker, and runs every input
/// through the walker and both VM dispatch strategies. Zero violations
/// required; at least one check must actually fire (the tier must never
/// silently degrade into checking nothing).
void expectFactsHold(const Module &M, const std::vector<RunInput> &Inputs,
                     const std::string &Tag) {
  ModuleRangeFacts Facts = computeModuleRangeFacts(M);
  RangeFactChecker Check(M, Facts);
  VmProgram P = compileToBytecode(M);
  for (const RunInput &In : Inputs) {
    RunOptions Opts;
    Opts.Input = In.Input;
    Opts.Input2 = In.Input2;
    Opts.FactCheck = &Check;
    (void)runProgram(M, Opts);
    (void)runProgramVm(P, Opts, nullptr, VmDispatch::ComputedGoto);
    (void)runProgramVm(P, Opts, nullptr, VmDispatch::Switch);
  }
  EXPECT_GT(Check.getChecksPerformed(), 0u) << Tag;
  if (!Check.ok())
    for (const std::string &V : Check.getViolations())
      ADD_FAILURE() << Tag << ": " << V;
}

/// Inline-expands \p M (profile-driven) and runs the ranges-powered
/// post-inline optimizer over every expanded caller.
void inlineWithRanges(Module &M, const std::vector<RunInput> &Inputs) {
  ProfileResult PR = profileProgram(M, Inputs);
  ASSERT_TRUE(PR.allRunsOk());
  InlineOptions Options;
  Options.PostInlineOptimize = true;
  Options.PostOpt = rangedPasses();
  runInlineExpansion(M, PR.Data, Options);
  ASSERT_EQ(verifyModuleText(M), "");
}

//===----------------------------------------------------------------------===//
// The 12-benchmark suite
//===----------------------------------------------------------------------===//

TEST(RangeSuite, FactsHoldDynamically) {
  for (const BenchmarkSpec &Spec : getBenchmarkSuite()) {
    SCOPED_TRACE(Spec.Name);
    Module M = test::compileOk(Spec.Source);
    std::vector<RunInput> Inputs = makeBenchmarkInputs(Spec, 2);
    ASSERT_FALSE(Inputs.empty());
    expectFactsHold(M, Inputs, Spec.Name);
  }
}

TEST(RangeSuite, FactsHoldAfterRangedInlineAndOptimize) {
  // The facts are recomputed on the transformed module, so this checks
  // both that recomputation stays sound and that no ranges-licensed
  // rewrite (SCCP fold, peephole strength reduction, LICM hoist) changed
  // observable behavior enough to falsify a fact.
  for (const BenchmarkSpec &Spec : getBenchmarkSuite()) {
    SCOPED_TRACE(Spec.Name);
    Module M = test::compileOk(Spec.Source);
    std::vector<RunInput> Inputs = makeBenchmarkInputs(Spec, 2);
    inlineWithRanges(M, Inputs);
    if (::testing::Test::HasFailure())
      return;
    expectFactsHold(M, Inputs, Spec.Name + " post-inline");
  }
}

TEST(RangeSuite, RangedOptimizerPreservesOutputs) {
  // Ranges on vs off around the same inline expansion: bit-identical
  // outputs on every input (the optimizer may only go faster, never
  // differ).
  for (const BenchmarkSpec &Spec : getBenchmarkSuite()) {
    SCOPED_TRACE(Spec.Name);
    std::vector<RunInput> Inputs =
        makeBenchmarkInputs(Spec, 2);

    Module Plain = test::compileOk(Spec.Source);
    Module Ranged = test::compileOk(Spec.Source);
    ProfileResult PR = profileProgram(Plain, Inputs);
    ASSERT_TRUE(PR.allRunsOk());

    InlineOptions Options;
    Options.PostInlineOptimize = true;
    Options.PostOpt = rangedPasses();
    Options.PostOpt.Ranges = false;
    runInlineExpansion(Plain, PR.Data, Options);
    Options.PostOpt.Ranges = true;
    runInlineExpansion(Ranged, PR.Data, Options);
    ASSERT_EQ(verifyModuleText(Ranged), "");

    ProfileResult A = profileProgram(Plain, Inputs);
    ProfileResult B = profileProgram(Ranged, Inputs);
    EXPECT_EQ(A.Failures, B.Failures);
    EXPECT_EQ(A.Outputs, B.Outputs);
  }
}

//===----------------------------------------------------------------------===//
// Randomized corpus
//===----------------------------------------------------------------------===//

const char *const kCorpusInputs[] = {"", "a", "hello world",
                                     "0123456789abcdef"};

TEST(RangeCorpus, FactsHoldDynamically) {
  unsigned Seeds = corpusSeedCount();
  for (uint64_t Seed = 0; Seed != Seeds; ++Seed) {
    SCOPED_TRACE("seed " + std::to_string(Seed));
    Module M = test::compileOk(test::generateRandomProgram(Seed));
    if (::testing::Test::HasFailure())
      return; // generator contract broken; no point running the corpus
    std::vector<RunInput> Inputs;
    for (const char *In : kCorpusInputs)
      Inputs.push_back(RunInput{In, ""});
    expectFactsHold(M, Inputs, "seed " + std::to_string(Seed));
  }
}

TEST(RangeCorpus, FactsHoldAfterRangedInlineAndOptimize) {
  unsigned Seeds = corpusSeedCount();
  for (uint64_t Seed = 0; Seed != Seeds; ++Seed) {
    SCOPED_TRACE("seed " + std::to_string(Seed));
    Module M = test::compileOk(test::generateRandomProgram(Seed));
    if (::testing::Test::HasFailure())
      return;
    std::vector<RunInput> Inputs;
    for (const char *In : kCorpusInputs)
      Inputs.push_back(RunInput{In, ""});
    ProfileResult PR = profileProgram(M, Inputs);
    if (!PR.allRunsOk())
      continue; // corpus programs may trap by design; facts need clean runs
    InlineOptions Options;
    Options.PostInlineOptimize = true;
    Options.PostOpt = rangedPasses();
    runInlineExpansion(M, PR.Data, Options);
    ASSERT_EQ(verifyModuleText(M), "") << "seed " << Seed;
    expectFactsHold(M, Inputs, "seed " + std::to_string(Seed) +
                                   " post-inline");
  }
}

//===----------------------------------------------------------------------===//
// Analyzer range rules: deterministic, engine-invariant, silent on legal
// programs
//===----------------------------------------------------------------------===//

std::vector<BatchJob> makeAnalyzedSuiteJobs() {
  std::vector<BatchJob> Jobs;
  for (const BenchmarkSpec &Spec : getBenchmarkSuite()) {
    BatchJob Job;
    Job.Name = Spec.Name;
    Job.Source = Spec.Source;
    Job.Inputs = makeBenchmarkInputs(Spec, 2);
    Job.Options.Analyze = true; // default AnalysisOptions: every rule on
    Job.Options.Inline.PostInlineOptimize = true;
    Job.Options.Inline.PostOpt = rangedPasses();
    Jobs.push_back(std::move(Job));
  }
  return Jobs;
}

TEST(RangeBatch, FindingsIdenticalAcrossThreadCountsAndErrorFree) {
  BatchOptions Serial, Wide;
  Serial.Jobs = 1;
  Wide.Jobs = 4;
  BatchResult A = runBatchPipeline(makeAnalyzedSuiteJobs(), Serial);
  BatchResult B = runBatchPipeline(makeAnalyzedSuiteJobs(), Wide);
  ASSERT_TRUE(A.allOk());
  ASSERT_TRUE(B.allOk());
  ASSERT_EQ(A.Results.size(), B.Results.size());
  for (size_t I = 0; I != A.Results.size(); ++I) {
    const std::string &Name = getBenchmarkSuite()[I].Name;
    EXPECT_TRUE(A.Results[I].Analysis == B.Results[I].Analysis) << Name;
    for (const Finding &F : A.Results[I].Analysis.Findings)
      EXPECT_NE(F.Sev, Severity::Error) << Name << ": " << F.render();
  }
}

TEST(RangeCorpus, AnalyzerErrorFreeAndDeterministicOnRandomPrograms) {
  // guaranteed-trap is an error-severity rule; it must never fire on the
  // generator's legal programs, and re-analysis must be bit-identical.
  unsigned Seeds = corpusSeedCount();
  AnalysisOptions Options; // defaults: every rule enabled
  for (uint64_t Seed = 0; Seed != Seeds; ++Seed) {
    SCOPED_TRACE("seed " + std::to_string(Seed));
    Module M = test::compileOk(test::generateRandomProgram(Seed));
    if (::testing::Test::HasFailure())
      return;
    AnalysisReport First = analyzeModule(M, Options);
    AnalysisReport Second = analyzeModule(M, Options);
    EXPECT_TRUE(First == Second);
    for (const Finding &F : First.Findings)
      EXPECT_NE(F.Sev, Severity::Error) << F.render();
  }
}

//===----------------------------------------------------------------------===//
// Interval lattice units
//===----------------------------------------------------------------------===//

constexpr int64_t kMin = std::numeric_limits<int64_t>::min();
constexpr int64_t kMax = std::numeric_limits<int64_t>::max();

TEST(Interval, LatticeBasics) {
  EXPECT_TRUE(Interval::bottom().isBottom());
  EXPECT_TRUE(Interval::top().isTop());
  EXPECT_TRUE(Interval::constant(7).isConstant());
  EXPECT_FALSE(Interval::bottom().isConstant());
  EXPECT_TRUE(Interval::make(3, 1).isBottom()); // canonicalized
  EXPECT_TRUE(Interval::make(-2, 5).contains(0));
  EXPECT_TRUE(Interval::make(1, 5).excludesZero());
  EXPECT_TRUE(Interval::make(-5, -1).excludesZero());
  EXPECT_FALSE(Interval::make(-1, 1).excludesZero());
  EXPECT_FALSE(Interval::bottom().excludesZero());
  EXPECT_TRUE(Interval::make(0, 9).isNonNegative());
  EXPECT_FALSE(Interval::bottom().isNonNegative());
}

TEST(Interval, JoinMeetWiden) {
  Interval A = Interval::make(1, 5), B = Interval::make(3, 9);
  EXPECT_EQ(join(A, B), Interval::make(1, 9));
  EXPECT_EQ(meet(A, B), Interval::make(3, 5));
  EXPECT_EQ(join(Interval::bottom(), A), A);
  EXPECT_TRUE(meet(Interval::make(1, 2), Interval::make(5, 6)).isBottom());
  // Widening: a grown bound jumps to infinity, a stable one stays exact.
  EXPECT_EQ(widen(Interval::make(0, 5), Interval::make(0, 6)),
            Interval::make(0, kMax));
  EXPECT_EQ(widen(Interval::make(0, 5), Interval::make(-1, 5)),
            Interval::make(kMin, 5));
  EXPECT_EQ(widen(Interval::make(0, 5), Interval::make(0, 5)),
            Interval::make(0, 5));
}

TEST(Interval, ArithmeticOverflowGoesToTop) {
  EXPECT_EQ(rangeAdd(Interval::constant(2), Interval::constant(3)),
            Interval::constant(5));
  EXPECT_TRUE(rangeAdd(Interval::constant(kMax), Interval::constant(1))
                  .isTop());
  EXPECT_TRUE(rangeMul(Interval::constant(kMax), Interval::constant(2))
                  .isTop());
  EXPECT_EQ(rangeSub(Interval::make(1, 4), Interval::make(1, 2)),
            Interval::make(-1, 3));
  EXPECT_TRUE(rangeNeg(Interval::constant(kMin)).isTop());
}

TEST(Interval, DivRemTrapHazardsGoToTop) {
  // A singleton div/rem result implies the operation provably cannot
  // trap — SCCP's fold-to-LdImm leans on exactly this property.
  EXPECT_EQ(rangeDiv(Interval::constant(42), Interval::constant(7)),
            Interval::constant(6));
  EXPECT_TRUE(rangeDiv(Interval::constant(42), Interval::make(0, 7))
                  .isTop());
  EXPECT_TRUE(rangeDiv(Interval::constant(kMin), Interval::constant(-1))
                  .isTop());
  EXPECT_EQ(rangeRem(Interval::constant(42), Interval::constant(5)),
            Interval::constant(2));
  EXPECT_TRUE(rangeRem(Interval::constant(1), Interval::make(-1, 1))
                  .isTop());
  EXPECT_TRUE(divMayTrap(Interval::top(), Interval::top()));
  EXPECT_TRUE(divMayTrap(Interval::constant(1), Interval::make(-1, 1)));
  EXPECT_FALSE(divMayTrap(Interval::make(0, 100), Interval::make(1, 8)));
  EXPECT_TRUE(divMayTrap(Interval::constant(kMin), Interval::constant(-1)));
  // Bottom operands mean the instruction never executes.
  EXPECT_FALSE(divMayTrap(Interval::bottom(), Interval::constant(0)));
}

TEST(Interval, ComparisonsProveOnlyWhenDisjoint) {
  Interval Lo = Interval::make(0, 4), Hi = Interval::make(5, 9);
  EXPECT_EQ(rangeCmp(Opcode::CmpLt, Lo, Hi), Interval::constant(1));
  EXPECT_EQ(rangeCmp(Opcode::CmpLt, Hi, Lo), Interval::constant(0));
  EXPECT_EQ(rangeCmp(Opcode::CmpLt, Lo, Lo), Interval::make(0, 1));
  EXPECT_EQ(rangeCmp(Opcode::CmpEq, Interval::constant(3),
                     Interval::constant(3)),
            Interval::constant(1));
  EXPECT_EQ(rangeCmp(Opcode::CmpEq, Lo, Hi), Interval::constant(0));
}

} // namespace
