//===- tests/LinkerTests.cpp - link-time inlining tests (§2.1) ----------------===//
//
// Part of the impact-inline project, distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "driver/Linker.h"

#include "core/InlinePass.h"
#include "ir/IrPrinter.h"
#include "ir/IrReader.h"
#include "ir/IrVerifier.h"
#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace impact;

namespace {

/// Compiles a fragment (no main required).
Module compileUnit(const char *Source) {
  CompilationResult C = compileMiniC(Source, "unit", /*RequireMain=*/false);
  EXPECT_TRUE(C.Ok) << C.Errors;
  return std::move(C.M);
}

const char *const UnitMain = R"(
extern int getchar();
extern int print_int(int v);
extern int triple(int x);
int main() {
  int c;
  int t;
  t = 0;
  c = getchar();
  while (c != -1) {
    t = t + triple(c % 10);
    c = getchar();
  }
  print_int(t);
  return 0;
}
)";

const char *const UnitLib = R"(
int triple(int x) { return x * 3; }
)";

TEST(Linker, ResolvesExternAcrossModules) {
  std::vector<Module> Units;
  Units.push_back(compileUnit(UnitMain));
  Units.push_back(compileUnit(UnitLib));
  LinkResult R = linkModules(std::move(Units), "prog");
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(verifyModuleText(R.M), "");
  FuncId Triple = R.M.findFunction("triple");
  ASSERT_NE(Triple, kNoFunc);
  EXPECT_FALSE(R.M.getFunction(Triple).IsExternal)
      << "the definition must have replaced the extern declaration";
  ExecResult E = test::runOk(R.M, "123");
  EXPECT_EQ(E.Output, "30"); // chars 49,50,51: (9+0+1)*3
}

TEST(Linker, OrderIndependent) {
  std::vector<Module> A;
  A.push_back(compileUnit(UnitLib));
  A.push_back(compileUnit(UnitMain));
  LinkResult R = linkModules(std::move(A), "prog");
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(test::runOk(R.M, "123").Output, "30");
}

TEST(Linker, DuplicateDefinitionRejected) {
  std::vector<Module> Units;
  Units.push_back(compileUnit("int f() { return 1; }"));
  Units.push_back(compileUnit("int f() { return 2; }"));
  LinkResult R = linkModules(std::move(Units), "prog");
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("duplicate definition"), std::string::npos);
}

TEST(Linker, SignatureMismatchRejected) {
  std::vector<Module> Units;
  Units.push_back(compileUnit("extern int f(int a);"
                              "int g() { return f(1); }"));
  Units.push_back(compileUnit("int f(int a, int b) { return a + b; }"));
  LinkResult R = linkModules(std::move(Units), "prog");
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("conflicting signatures"), std::string::npos);
}

TEST(Linker, GlobalsUnifiedByName) {
  std::vector<Module> Units;
  Units.push_back(compileUnit("int shared = 5;"
                              "int get() { return shared; }"));
  Units.push_back(compileUnit("int shared;"
                              "extern int get(); extern int print_int(int v);"
                              "int main() { shared = shared + 1;"
                              "print_int(get()); return 0; }"));
  LinkResult R = linkModules(std::move(Units), "prog");
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(test::runOk(R.M).Output, "6")
      << "both units must see one 'shared' (initialized to 5, bumped once)";
}

TEST(Linker, ConflictingGlobalInitializersRejected) {
  std::vector<Module> Units;
  Units.push_back(compileUnit("int g = 1;"));
  Units.push_back(compileUnit("int g = 2;"));
  LinkResult R = linkModules(std::move(Units), "prog");
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("duplicate initializer"), std::string::npos);
}

TEST(Linker, StringLiteralsStayPrivate) {
  std::vector<Module> Units;
  Units.push_back(compileUnit("extern int putchar(int c);"
                              "int a() { int *s; s = \"aa\";"
                              "putchar(s[0]); return 0; }"));
  Units.push_back(compileUnit("extern int putchar(int c);"
                              "extern int a();"
                              "int main() { int *s; s = \"bb\"; a();"
                              "putchar(s[0]); return 0; }"));
  LinkResult R = linkModules(std::move(Units), "prog");
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(test::runOk(R.M).Output, "ab");
}

TEST(Linker, FunctionPointerInitializersRemapped) {
  // The function-address constant in the global initializer must be
  // remapped to the linked module's FuncIds.
  std::vector<Module> Units;
  Units.push_back(compileUnit("extern int print_int(int v);"
                              "int cb(int x) { return x * 7; }"
                              "int (*h)(int) = cb;"));
  Units.push_back(compileUnit("extern int print_int(int v);"
                              "int (*other)(int);"
                              "int main() { return 0; }"));
  LinkResult R = linkModules(std::move(Units), "prog");
  ASSERT_TRUE(R.Ok) << R.Error;
  FuncId Cb = R.M.findFunction("cb");
  bool Found = false;
  for (const Global &G : R.M.Globals)
    if (G.Name == "h") {
      ASSERT_EQ(G.Init.size(), 1u);
      EXPECT_EQ(G.Init[0], encodeFuncAddr(Cb));
      Found = true;
    }
  EXPECT_TRUE(Found);
}

TEST(Linker, SiteIdsStayUnique) {
  std::vector<Module> Units;
  Units.push_back(compileUnit(UnitMain));
  Units.push_back(compileUnit("extern int print_int(int v);"
                              "int triple(int x) { print_int(0);"
                              "return x * 3; }"));
  LinkResult R = linkModules(std::move(Units), "prog");
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(verifyModuleText(R.M), "") << "duplicate site ids would fail";
}

TEST(Linker, MultipleMainsRejected) {
  std::vector<Module> Units;
  Units.push_back(compileUnit("int main() { return 1; }"));
  Units.push_back(compileUnit("int main() { return 2; }"));
  LinkResult R = linkModules(std::move(Units), "prog");
  EXPECT_FALSE(R.Ok);
}

TEST(Linker, LinkTimeInliningCrossesUnitBoundaries) {
  // §2.1's whole point: at compile time main's call to triple cannot be
  // expanded (the body is in another unit); after linking it can.
  std::vector<Module> Units;
  Units.push_back(compileUnit(UnitMain));
  Units.push_back(compileUnit(UnitLib));
  LinkResult L = linkModules(std::move(Units), "prog");
  ASSERT_TRUE(L.Ok) << L.Error;

  std::string Input(40, '7');
  ProfileResult P = test::profileInputs(L.M, {Input});
  ASSERT_TRUE(P.allRunsOk());
  InlineOptions Options;
  Options.CodeGrowthFactor = 4.0;
  InlineResult R = runInlineExpansion(L.M, P.Data, Options);
  EXPECT_GE(R.getNumExpanded(), 1u)
      << "the cross-unit call must now be expandable";
  ExecResult After = test::runOk(L.M, Input);
  EXPECT_EQ(After.Stats.FuncEntryCounts[L.M.findFunction("triple")], 0u);
}

TEST(Linker, RoundTripsThroughTextFormat) {
  // Serialize units to .il text, parse them back, then link: the §2.1
  // separate-compilation workflow end to end.
  std::string TextA = printModule(compileUnit(UnitMain));
  std::string TextB = printModule(compileUnit(UnitLib));
  IrReadResult A = parseModuleText(TextA);
  IrReadResult B = parseModuleText(TextB);
  ASSERT_TRUE(A.Ok && B.Ok) << A.Error << B.Error;
  std::vector<Module> Units;
  Units.push_back(std::move(A.M));
  Units.push_back(std::move(B.M));
  LinkResult R = linkModules(std::move(Units), "prog");
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(test::runOk(R.M, "123").Output, "30");
}

} // namespace
