//===- tests/RandomProgram.cpp ----------------------------------------------===//
//
// Part of the impact-inline project, distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "RandomProgram.h"

#include "support/Rng.h"

#include <utility>
#include <vector>

using namespace impact;

namespace {

/// Builds one random program. Expressions only reference names that are in
/// scope; division is always by a strictly positive value; array indices
/// are masked to the (power-of-two) array size; loops have constant
/// bounds; function K only calls functions < K, so every program
/// terminates.
class ProgramBuilder {
public:
  explicit ProgramBuilder(uint64_t Seed) : R(Seed) {}

  std::string build() {
    Out += "extern int getchar();\n";
    Out += "extern int print_int(int v);\n";
    Out += "extern int putchar(int c);\n\n";

    NumGlobals = 2 + static_cast<unsigned>(R.nextBelow(3));
    for (unsigned G = 0; G != NumGlobals; ++G)
      Out += "int g" + std::to_string(G) + ";\n";
    Out += "int arr[8];\n";
    Out += "int fptab[4];\n\n";

    unsigned NumFuncs = 3 + static_cast<unsigned>(R.nextBelow(5));
    for (unsigned F = 0; F != NumFuncs; ++F)
      emitFunction(F);

    emitDispatch(NumFuncs);
    emitMain(NumFuncs);
    return Out;
  }

private:
  // ----- cost accounting ----------------------------------------------------
  //
  // Nested loops multiplying function calls can make a structurally tiny
  // program exponentially expensive to run. Every emitted construct is
  // charged Multiplier cost units (Multiplier is the product of enclosing
  // loop bounds); calls charge the callee's recorded cost. Callees whose
  // cost would blow the per-function budget are simply not called.

  static constexpr uint64_t kMaxCalleeCost = 4000;
  static constexpr uint64_t kMaxFuncCost = 200000;

  /// Picks a callable function that fits the remaining budget, or -1.
  int pickAffordableCallee() {
    if (CallableFuncs == 0)
      return -1;
    unsigned F = static_cast<unsigned>(R.nextBelow(CallableFuncs));
    uint64_t Charge = Multiplier * FuncCost[F];
    if (FuncCost[F] > kMaxCalleeCost || CurCost + Charge > kMaxFuncCost)
      return -1;
    CurCost += Charge;
    return static_cast<int>(F);
  }

  // ----- expressions ------------------------------------------------------

  /// A value expression of bounded depth.
  std::string expr(unsigned Depth) {
    CurCost += Multiplier;
    switch (R.nextBelow(Depth == 0 ? 4 : 8)) {
    case 0:
      return std::to_string(R.nextInRange(-20, 99));
    case 1:
      return "g" + std::to_string(R.nextBelow(NumGlobals));
    case 2:
      if (!Params.empty())
        return Params[R.nextBelow(Params.size())];
      return std::to_string(R.nextInRange(0, 9));
    case 3:
      if (!LocalVars.empty())
        return LocalVars[R.nextBelow(LocalVars.size())];
      return "g0";
    case 4:
      return "arr[" + expr(Depth - 1) + " & 7]";
    case 5: {
      // Guarded division or remainder.
      const char *Op = R.nextChance(1, 2) ? " / " : " % ";
      return "(" + expr(Depth - 1) + Op + "((" + expr(Depth - 1) +
             " & 7) + 1))";
    }
    case 6: {
      static const char *const Ops[] = {" + ", " - ", " * ", " & ",
                                        " | ", " ^ ", " < ",  " == "};
      return "(" + expr(Depth - 1) + Ops[R.nextBelow(8)] + expr(Depth - 1) +
             ")";
    }
    default: {
      int Picked = R.nextChance(1, 3) ? -1 : pickAffordableCallee();
      if (Picked < 0)
        return "(" + expr(Depth - 1) + " ? " + expr(Depth - 1) + " : " +
               expr(Depth - 1) + ")";
      unsigned F = static_cast<unsigned>(Picked);
      std::string Call = "f" + std::to_string(F) + "(";
      for (unsigned A = 0; A != Arity[F]; ++A) {
        if (A)
          Call += ", ";
        Call += expr(Depth == 0 ? 0 : Depth - 1);
      }
      return Call + ")";
    }
    }
  }

  // ----- statements -------------------------------------------------------

  void indent() { Out.append(IndentLevel * 2, ' '); }

  void stmt(unsigned Depth) {
    switch (R.nextBelow(Depth == 0 ? 3 : 6)) {
    case 0: {
      indent();
      Out += "g" + std::to_string(R.nextBelow(NumGlobals)) + " = " +
             expr(2) + ";\n";
      return;
    }
    case 1: {
      if (LocalVars.empty()) {
        indent();
        Out += "arr[" + expr(1) + " & 7] = " + expr(2) + ";\n";
        return;
      }
      indent();
      Out += LocalVars[R.nextBelow(LocalVars.size())] + " = " + expr(2) +
             ";\n";
      return;
    }
    case 2: {
      indent();
      Out += "arr[" + expr(1) + " & 7] = " + expr(2) + ";\n";
      return;
    }
    case 3: {
      indent();
      Out += "if (" + expr(2) + ") {\n";
      ++IndentLevel;
      stmt(Depth - 1);
      --IndentLevel;
      indent();
      if (R.nextChance(1, 2)) {
        Out += "} else {\n";
        ++IndentLevel;
        stmt(Depth - 1);
        --IndentLevel;
        indent();
      }
      Out += "}\n";
      return;
    }
    case 4: {
      std::string Var = "i" + std::to_string(LoopCounter++);
      uint64_t Bound = 1 + R.nextBelow(5);
      indent();
      Out += "for (int " + Var + " = 0; " + Var + " < " +
             std::to_string(Bound) + "; " + Var + " = " + Var +
             " + 1) {\n";
      // The counter joins the *read-only* pool (Params); putting it in
      // LocalVars would let the body assign it and break termination.
      Params.push_back(Var);
      Multiplier *= Bound;
      ++IndentLevel;
      stmt(Depth - 1);
      --IndentLevel;
      Multiplier /= Bound;
      Params.pop_back();
      indent();
      Out += "}\n";
      return;
    }
    default: {
      indent();
      Out += expr(2) + ";\n";
      return;
    }
    }
  }

  // ----- functions --------------------------------------------------------

  void emitFunction(unsigned Index) {
    // f0 is always unary so the function-pointer table has a guaranteed
    // candidate.
    unsigned NumParams =
        Index == 0 ? 1 : static_cast<unsigned>(R.nextBelow(4));
    Arity.push_back(NumParams);
    CallableFuncs = Index; // function Index may only call f0..f(Index-1)

    Params.clear();
    LocalVars.clear();
    CurCost = 0;
    Multiplier = 1;
    Out += "int f" + std::to_string(Index) + "(";
    for (unsigned P = 0; P != NumParams; ++P) {
      if (P)
        Out += ", ";
      std::string Name = "p" + std::to_string(P);
      Out += "int " + Name;
      Params.push_back(Name);
    }
    Out += ") {\n";
    IndentLevel = 1;

    unsigned NumLocals = 1 + static_cast<unsigned>(R.nextBelow(3));
    for (unsigned L = 0; L != NumLocals; ++L) {
      std::string Name = "v" + std::to_string(L);
      indent();
      Out += "int " + Name + " = " + expr(1) + ";\n";
      LocalVars.push_back(Name);
    }

    unsigned NumStmts = 2 + static_cast<unsigned>(R.nextBelow(6));
    for (unsigned S = 0; S != NumStmts; ++S)
      stmt(2);

    indent();
    Out += "return " + expr(2) + ";\n";
    Out += "}\n\n";
    FuncCost.push_back(CurCost + 1);
  }

  /// Emits a function-pointer table over the cheap unary functions plus a
  /// dispatcher, so every random program also exercises CallPtr, FuncAddr
  /// and the ### pseudo node.
  void emitDispatch(unsigned NumFuncs) {
    std::vector<unsigned> Unary;
    for (unsigned F = 0; F != NumFuncs; ++F)
      if (Arity[F] == 1 && FuncCost[F] <= kMaxCalleeCost)
        Unary.push_back(F);
    if (Unary.empty())
      Unary.push_back(0); // f0 is unary by construction

    DispatchCost = 4;
    Out += "int init_tab() {\n";
    for (unsigned Slot = 0; Slot != 4; ++Slot) {
      unsigned F = Unary[R.nextBelow(Unary.size())];
      if (FuncCost[F] > DispatchCost)
        DispatchCost = FuncCost[F] + 4;
      Out += "  fptab[" + std::to_string(Slot) + "] = f" +
             std::to_string(F) + ";\n";
    }
    Out += "  return 0;\n}\n\n";

    Out += "int dispatch(int which, int x) {\n";
    Out += "  int (*h)(int);\n";
    Out += "  h = fptab[which & 3];\n";
    Out += "  return h(x);\n}\n\n";
  }

  void emitMain(unsigned NumFuncs) {
    CallableFuncs = NumFuncs;
    Params.clear();
    LocalVars.clear();
    CurCost = 0;
    Multiplier = 32; // stand-in for the per-character main loop
    LocalVars.push_back("c");
    LocalVars.push_back("acc");

    Out += "int main() {\n";
    Out += "  int c = 0;\n";
    Out += "  int acc = 0;\n";
    Out += "  init_tab();\n";
    Out += "  c = getchar();\n";
    Out += "  while (c != -1) {\n";
    IndentLevel = 2;
    unsigned NumStmts = 2 + static_cast<unsigned>(R.nextBelow(4));
    for (unsigned S = 0; S != NumStmts; ++S)
      stmt(2);
    if (R.nextChance(2, 3) &&
        CurCost + Multiplier * DispatchCost < kMaxFuncCost) {
      CurCost += Multiplier * DispatchCost;
      indent();
      Out += "acc = acc + dispatch(c & 3, acc & 15);\n";
    }
    indent();
    Out += "acc = acc + " + expr(2) + " + c;\n";
    Out += "    c = getchar();\n";
    Out += "  }\n";
    Out += "  print_int(acc);\n";
    Out += "  putchar('\\n');\n";
    for (unsigned G = 0; G != NumGlobals; ++G) {
      Out += "  print_int(g" + std::to_string(G) + ");\n";
      Out += "  putchar(' ');\n";
    }
    Out += "  putchar('\\n');\n";
    Out += "  return 0;\n";
    Out += "}\n";
  }

  Rng R;
  std::string Out;
  std::vector<uint64_t> FuncCost;
  uint64_t CurCost = 0;
  uint64_t Multiplier = 1;
  uint64_t DispatchCost = 4;
  unsigned NumGlobals = 0;
  unsigned CallableFuncs = 0;
  std::vector<unsigned> Arity;
  std::vector<std::string> Params;
  std::vector<std::string> LocalVars;
  unsigned IndentLevel = 0;
  unsigned LoopCounter = 0;
};

} // namespace

std::string test::generateRandomProgram(uint64_t Seed) {
  return ProgramBuilder(Seed).build();
}

namespace {

/// Splits \p Source into tokens a mutator can permute: identifier/number
/// runs, single punctuation characters, and whitespace runs (kept so that
/// rejoining preserves line structure for diagnostics).
std::vector<std::string> tokenize(const std::string &Source) {
  std::vector<std::string> Tokens;
  size_t I = 0;
  auto IsWord = [](char C) {
    return (C >= 'a' && C <= 'z') || (C >= 'A' && C <= 'Z') ||
           (C >= '0' && C <= '9') || C == '_';
  };
  auto IsSpace = [](char C) { return C == ' ' || C == '\t' || C == '\n'; };
  while (I != Source.size()) {
    size_t Start = I;
    if (IsWord(Source[I])) {
      while (I != Source.size() && IsWord(Source[I]))
        ++I;
    } else if (IsSpace(Source[I])) {
      while (I != Source.size() && IsSpace(Source[I]))
        ++I;
    } else {
      ++I;
    }
    Tokens.push_back(Source.substr(Start, I - Start));
  }
  return Tokens;
}

bool isBlank(const std::string &Token) {
  for (char C : Token)
    if (C != ' ' && C != '\t' && C != '\n')
      return false;
  return true;
}

/// Index of a random non-whitespace token, or -1 if there is none.
int pickToken(Rng &R, const std::vector<std::string> &Tokens) {
  if (Tokens.empty())
    return -1;
  for (int Tries = 0; Tries != 16; ++Tries) {
    size_t I = R.nextBelow(Tokens.size());
    if (!isBlank(Tokens[I]))
      return static_cast<int>(I);
  }
  return -1;
}

} // namespace

std::string test::mutateProgramText(const std::string &Source,
                                    uint64_t Seed) {
  // Distinct stream from generateRandomProgram's so that mutating a
  // program built from the same seed is not correlated with its shape.
  Rng R(Seed ^ 0xf00dfacecafebeefull);
  std::vector<std::string> Tokens = tokenize(Source);

  // Every fifth seed mutates values only — one numeric literal nudged to a
  // different number — which keeps a well-formed input well-formed. This
  // guarantees the fuzz corpus also exercises the *accepted* path (the
  // compiled-garbage-must-still-verify-and-run half of the contract), not
  // just the rejection path.
  if (Seed % 5 == 0) {
    std::vector<size_t> Numeric;
    for (size_t I = 0; I != Tokens.size(); ++I) {
      const std::string &T = Tokens[I];
      bool AllDigits = !T.empty();
      for (char C : T)
        AllDigits = AllDigits && C >= '0' && C <= '9';
      if (AllDigits)
        Numeric.push_back(I);
    }
    if (!Numeric.empty()) {
      size_t I = Numeric[R.nextBelow(Numeric.size())];
      uint64_t Value = 0;
      for (char C : Tokens[I].substr(0, 6))
        Value = Value * 10 + static_cast<uint64_t>(C - '0');
      Tokens[I] = std::to_string((Value + 1) % 100);
      std::string Out;
      for (const std::string &T : Tokens)
        Out += T;
      if (Out != Source)
        return Out;
      // The nudge collapsed to the identity (e.g. "7" -> "7" via % 100
      // wraparound is impossible, but a duplicate literal elsewhere is
      // not); fall through to the aggressive mutations.
    }
  }

  // Replacement pool: structure-breaking punctuation, keywords that change
  // parse context, extreme literals, and identifiers that dodge the symbol
  // table.
  static const char *const Pool[] = {
      "{",   "}",      "(",     ")",          ";",        ",",
      "int", "return", "while", "if",         "else",     "extern",
      "0",   "1",      "-1",    "2147483647", "-2147483648",
      "x",   "zz_undeclared", "main", "=",    "*",        "/",
  };
  constexpr size_t PoolSize = sizeof(Pool) / sizeof(Pool[0]);

  unsigned NumMutations = 1 + static_cast<unsigned>(R.nextBelow(4));
  for (unsigned M = 0; M != NumMutations && !Tokens.empty(); ++M) {
    switch (R.nextBelow(6)) {
    case 0: { // delete
      int I = pickToken(R, Tokens);
      if (I >= 0)
        Tokens.erase(Tokens.begin() + I);
      break;
    }
    case 1: { // duplicate
      int I = pickToken(R, Tokens);
      if (I >= 0)
        Tokens.insert(Tokens.begin() + I, Tokens[static_cast<size_t>(I)]);
      break;
    }
    case 2: { // swap two tokens
      int A = pickToken(R, Tokens);
      int B = pickToken(R, Tokens);
      if (A >= 0 && B >= 0)
        std::swap(Tokens[static_cast<size_t>(A)],
                  Tokens[static_cast<size_t>(B)]);
      break;
    }
    case 3: { // replace from the pool
      int I = pickToken(R, Tokens);
      if (I >= 0)
        Tokens[static_cast<size_t>(I)] = Pool[R.nextBelow(PoolSize)];
      break;
    }
    case 4: { // insert from the pool (with space padding)
      size_t I = R.nextBelow(Tokens.size() + 1);
      Tokens.insert(Tokens.begin() + static_cast<long>(I),
                    std::string(" ") + Pool[R.nextBelow(PoolSize)] + " ");
      break;
    }
    default: { // truncate (drop a suffix)
      size_t Keep = 1 + R.nextBelow(Tokens.size());
      Tokens.resize(Keep);
      break;
    }
    }
  }

  std::string Out;
  for (const std::string &T : Tokens)
    Out += T;
  if (Out == Source)
    Out += "}"; // degenerate seed: force a visible corruption
  return Out;
}
