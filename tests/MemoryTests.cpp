//===- tests/MemoryTests.cpp - flat memory unit tests -------------------------===//
//
// Part of the impact-inline project, distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "interp/Memory.h"

#include <gtest/gtest.h>

using namespace impact;

namespace {

Module moduleWithGlobals() {
  Module M;
  M.addGlobal("a", 2, {11, 22});
  M.addGlobal("b", 3, {33});
  return M;
}

TEST(Memory, GlobalsInitialized) {
  Module M = moduleWithGlobals();
  Memory Mem(M, 64);
  EXPECT_EQ(Mem.load(kGlobalBase + 0), 11);
  EXPECT_EQ(Mem.load(kGlobalBase + 1), 22);
  EXPECT_EQ(Mem.load(kGlobalBase + 2), 33);
  EXPECT_EQ(Mem.load(kGlobalBase + 3), 0) << "tail zero-filled";
  EXPECT_FALSE(Mem.hasTrapped());
}

TEST(Memory, GlobalStoreRoundTrips) {
  Module M = moduleWithGlobals();
  Memory Mem(M, 64);
  Mem.store(kGlobalBase + 4, -5);
  EXPECT_EQ(Mem.load(kGlobalBase + 4), -5);
}

TEST(Memory, OutOfSegmentAccessTraps) {
  Module M = moduleWithGlobals();
  Memory Mem(M, 64);
  Mem.load(kGlobalBase + 5); // segment has 5 words (indices 0..4)
  EXPECT_TRUE(Mem.hasTrapped());
}

TEST(Memory, NullAccessTraps) {
  Module M = moduleWithGlobals();
  Memory Mem(M, 64);
  Mem.store(kNullAddr, 1);
  EXPECT_TRUE(Mem.hasTrapped());
  EXPECT_NE(Mem.getTrapMessage().find("invalid address"),
            std::string::npos);
}

TEST(Memory, FirstTrapMessageSticks) {
  Module M = moduleWithGlobals();
  Memory Mem(M, 64);
  Mem.load(1);
  std::string First = Mem.getTrapMessage();
  Mem.load(2);
  EXPECT_EQ(Mem.getTrapMessage(), First);
}

TEST(Memory, StackGrowShrinkTracksPeak) {
  Module M = moduleWithGlobals();
  Memory Mem(M, 100);
  EXPECT_TRUE(Mem.growStack(40));
  EXPECT_TRUE(Mem.growStack(30));
  EXPECT_EQ(Mem.getStackWordsInUse(), 70);
  Mem.shrinkStack(30);
  EXPECT_EQ(Mem.getStackWordsInUse(), 40);
  EXPECT_EQ(Mem.getPeakStackWords(), 70);
}

TEST(Memory, StackOverflowTrapsAndFails) {
  Module M = moduleWithGlobals();
  Memory Mem(M, 50);
  EXPECT_TRUE(Mem.growStack(50));
  EXPECT_FALSE(Mem.growStack(1));
  EXPECT_TRUE(Mem.hasTrapped());
  EXPECT_NE(Mem.getTrapMessage().find("stack overflow"),
            std::string::npos);
}

TEST(Memory, StackFramesAreZeroedOnGrow) {
  Module M = moduleWithGlobals();
  Memory Mem(M, 100);
  Mem.growStack(10);
  Mem.store(kStackBase + 5, 99);
  Mem.shrinkStack(10);
  Mem.growStack(10); // the new frame must not see the stale 99
  EXPECT_EQ(Mem.load(kStackBase + 5), 0);
}

TEST(Memory, StackAccessBeyondTopTraps) {
  Module M = moduleWithGlobals();
  Memory Mem(M, 100);
  Mem.growStack(10);
  Mem.load(kStackBase + 10);
  EXPECT_TRUE(Mem.hasTrapped());
}

TEST(Memory, HeapBumpAllocationZeroed) {
  Module M = moduleWithGlobals();
  Memory Mem(M, 64);
  int64_t A = Mem.allocateHeap(4);
  int64_t B = Mem.allocateHeap(4);
  EXPECT_EQ(A, kHeapBase);
  EXPECT_EQ(B, kHeapBase + 4);
  EXPECT_EQ(Mem.load(B + 3), 0);
  Mem.store(A + 1, 7);
  EXPECT_EQ(Mem.load(A + 1), 7);
  EXPECT_FALSE(Mem.hasTrapped());
}

TEST(Memory, NegativeHeapRequestTraps) {
  Module M = moduleWithGlobals();
  Memory Mem(M, 64);
  EXPECT_EQ(Mem.allocateHeap(-3), 0);
  EXPECT_TRUE(Mem.hasTrapped());
}

TEST(Memory, FunctionAddressesAreNotMemory) {
  Module M = moduleWithGlobals();
  Memory Mem(M, 64);
  Mem.load(encodeFuncAddr(0));
  EXPECT_TRUE(Mem.hasTrapped());
}

} // namespace
