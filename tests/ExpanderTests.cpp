//===- tests/ExpanderTests.cpp - physical inline expansion tests --------------===//
//
// Part of the impact-inline project, distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/InlineExpander.h"
#include "core/InlinePass.h"

#include "ir/IrVerifier.h"
#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace impact;
using test::compileOk;

namespace {

/// Returns the site id of the first direct call to \p Callee in \p Caller.
uint32_t findSite(const Module &M, const char *Caller, const char *Callee) {
  const Function &F = M.getFunction(M.findFunction(Caller));
  FuncId CalleeId = M.findFunction(Callee);
  for (const BasicBlock &B : F.Blocks)
    for (const Instr &I : B.Instrs)
      if (I.Op == Opcode::Call && I.Callee == CalleeId)
        return I.SiteId;
  return 0;
}

size_t countCallsTo(const Module &M, const char *Caller, const char *Callee) {
  const Function &F = M.getFunction(M.findFunction(Caller));
  FuncId CalleeId = M.findFunction(Callee);
  size_t N = 0;
  for (const BasicBlock &B : F.Blocks)
    for (const Instr &I : B.Instrs)
      N += I.Op == Opcode::Call && I.Callee == CalleeId ? 1 : 0;
  return N;
}

TEST(Expander, InlinesSimpleCall) {
  Module M = compileOk("int add(int a, int b) { return a + b; }"
                       "int main() { return add(2, 3); }");
  uint32_t Site = findSite(M, "main", "add");
  ASSERT_NE(Site, 0u);
  EXPECT_TRUE(inlineCallSite(M, Site));
  EXPECT_EQ(verifyModuleText(M), "");
  EXPECT_EQ(countCallsTo(M, "main", "add"), 0u);
  EXPECT_EQ(runProgram(M).ExitCode, 5);
}

TEST(Expander, CallBecomesJumps) {
  Module M = compileOk("int add(int a, int b) { return a + b; }"
                       "int main() { return add(2, 3); }");
  ExecResult Before = test::runOk(M);
  inlineCallSite(M, findSite(M, "main", "add"));
  ExecResult After = test::runOk(M);
  EXPECT_LT(After.Stats.DynamicCalls, Before.Stats.DynamicCalls);
  EXPECT_GT(After.Stats.ControlTransfers, Before.Stats.ControlTransfers)
      << "inlined call/return turn into unconditional jumps (§4.4)";
}

TEST(Expander, GrowsCallerResources) {
  Module M = compileOk("int f(int x) { int a[7]; a[0] = x; return a[0]; }"
                       "int main() { return f(3); }");
  const Function &FBefore = M.getFunction(M.findFunction("f"));
  Function &MainBefore = M.getFunction(M.MainId);
  uint32_t RegsBefore = MainBefore.NumRegs;
  int64_t FrameBefore = MainBefore.FrameSize;
  uint32_t CalleeRegs = FBefore.NumRegs;
  int64_t CalleeFrame = FBefore.FrameSize;

  inlineCallSite(M, findSite(M, "main", "f"));
  const Function &MainAfter = M.getFunction(M.MainId);
  EXPECT_EQ(MainAfter.NumRegs, RegsBefore + CalleeRegs);
  EXPECT_EQ(MainAfter.FrameSize, FrameBefore + CalleeFrame);
  EXPECT_EQ(runProgram(M).ExitCode, 3);
}

TEST(Expander, FrameOffsetsRebased) {
  // Both caller and callee use arrays; after inlining they must not alias.
  Module M = compileOk(
      "extern int print_int(int v);"
      "int f() { int b[4]; b[0] = 7; return b[0]; }"
      "int main() { int a[4]; a[0] = 1; print_int(f());"
      "print_int(a[0]); return 0; }");
  inlineCallSite(M, findSite(M, "main", "f"));
  EXPECT_EQ(verifyModuleText(M), "");
  ExecResult R = test::runOk(M);
  EXPECT_EQ(R.Output, "71");
}

TEST(Expander, MultipleReturnsAllJoin) {
  Module M = compileOk("int pick(int c) { if (c > 0) return 1;"
                       "if (c < 0) return -1; return 0; }"
                       "extern int print_int(int v);"
                       "int main() { print_int(pick(5)); print_int(pick(-5));"
                       "print_int(pick(0)); return 0; }");
  // Inline all three sites.
  while (true) {
    uint32_t Site = findSite(M, "main", "pick");
    if (Site == 0)
      break;
    ASSERT_TRUE(inlineCallSite(M, Site));
  }
  EXPECT_EQ(verifyModuleText(M), "");
  ExecResult R = test::runOk(M);
  EXPECT_EQ(R.Output, "1-10");
}

TEST(Expander, VoidCalleeInlines) {
  Module M = compileOk("extern int print_int(int v);"
                       "int g;"
                       "void bump() { g = g + 1; }"
                       "int main() { bump(); bump(); print_int(g);"
                       "return 0; }");
  while (uint32_t Site = findSite(M, "main", "bump"))
    ASSERT_TRUE(inlineCallSite(M, Site));
  EXPECT_EQ(verifyModuleText(M), "");
  EXPECT_EQ(test::runOk(M).Output, "2");
}

TEST(Expander, LoopsInCalleeSurvive) {
  Module M = compileOk("int sum(int n) { int t; int i; t = 0;"
                       "for (i = 1; i <= n; i++) t = t + i; return t; }"
                       "int main() { return sum(10); }");
  inlineCallSite(M, findSite(M, "main", "sum"));
  EXPECT_EQ(verifyModuleText(M), "");
  EXPECT_EQ(runProgram(M).ExitCode, 55);
}

TEST(Expander, CallInLoopInlines) {
  Module M = compileOk("int twice(int x) { return x * 2; }"
                       "int main() { int t; int i; t = 1;"
                       "for (i = 0; i < 5; i++) t = twice(t); return t; }");
  inlineCallSite(M, findSite(M, "main", "twice"));
  EXPECT_EQ(verifyModuleText(M), "");
  EXPECT_EQ(runProgram(M).ExitCode, 32);
}

TEST(Expander, NestedCloneSitesGetFreshIds) {
  Module M = compileOk("extern int putchar(int c);"
                       "int inner() { putchar('i'); return 1; }"
                       "int outer() { return inner() + 1; }"
                       "int main() { return outer(); }");
  uint32_t Site = findSite(M, "main", "outer");
  ExpansionRecord Record;
  ASSERT_TRUE(inlineCallSite(M, Site, &Record));
  EXPECT_EQ(Record.Caller, M.MainId);
  EXPECT_EQ(Record.Callee, M.findFunction("outer"));
  // outer's body contains a call to inner; its clone got a fresh id.
  ASSERT_EQ(Record.ClonedSites.size(), 1u);
  EXPECT_NE(Record.ClonedSites[0].first, Record.ClonedSites[0].second);
  EXPECT_EQ(verifyModuleText(M), "") << "fresh ids keep sites unique";
  EXPECT_EQ(countCallsTo(M, "main", "inner"), 1u);
  EXPECT_EQ(test::runOk(M).Output, "i");
}

TEST(Expander, PathQualifiedNames) {
  Module M = compileOk("int helper(int value) { int local; local = value + 1;"
                       "return local; }"
                       "int main() { return helper(1); }");
  uint32_t Site = findSite(M, "main", "helper");
  inlineCallSite(M, Site);
  const Function &Main = M.getFunction(M.MainId);
  bool FoundQualified = false;
  for (const std::string &Name : Main.RegNames)
    if (Name == "helper.local@site" + std::to_string(Site))
      FoundQualified = true;
  EXPECT_TRUE(FoundQualified)
      << "inlined names must be qualified with the path (§5)";
}

TEST(Expander, RefusesSelfRecursion) {
  Module M = compileOk("int f(int n) { return n ? f(n - 1) : 0; }"
                       "int main() { return f(3); }");
  uint32_t Site = findSite(M, "f", "f");
  ASSERT_NE(Site, 0u);
  EXPECT_FALSE(inlineCallSite(M, Site));
  EXPECT_EQ(verifyModuleText(M), "") << "module untouched";
}

TEST(Expander, RefusesUnknownSite) {
  Module M = compileOk("int main() { return 0; }");
  EXPECT_FALSE(inlineCallSite(M, 12345));
}

TEST(Expander, RefusesPointerSite) {
  Module M = compileOk(test::kPointerCallProgram);
  const Function &Apply = M.getFunction(M.findFunction("apply"));
  uint32_t PtrSite = 0;
  for (const BasicBlock &B : Apply.Blocks)
    for (const Instr &I : B.Instrs)
      if (I.Op == Opcode::CallPtr)
        PtrSite = I.SiteId;
  ASSERT_NE(PtrSite, 0u);
  EXPECT_FALSE(inlineCallSite(M, PtrSite));
}

TEST(Expander, RefusesExternalCallee) {
  Module M = compileOk("extern int getchar(); int main() { return getchar(); }");
  const Function &Main = M.getFunction(M.MainId);
  uint32_t Site = Main.Blocks[0].Instrs[0].SiteId;
  (void)Site;
  uint32_t ExtSite = 0;
  for (const BasicBlock &B : Main.Blocks)
    for (const Instr &I : B.Instrs)
      if (I.Op == Opcode::Call)
        ExtSite = I.SiteId;
  ASSERT_NE(ExtSite, 0u);
  EXPECT_FALSE(inlineCallSite(M, ExtSite));
}

TEST(Expander, RecursiveCalleeInlinesOneLevel) {
  // Inlining a call *to* a recursive function absorbs one iteration; the
  // recursive calls in the clone still target the original (§2.3).
  Module M = compileOk("int fib(int n) { if (n < 2) return n;"
                       "return fib(n - 1) + fib(n - 2); }"
                       "int main() { return fib(10); }");
  uint32_t Site = findSite(M, "main", "fib");
  ASSERT_TRUE(inlineCallSite(M, Site));
  EXPECT_EQ(verifyModuleText(M), "");
  EXPECT_EQ(runProgram(M).ExitCode, 55);
  EXPECT_EQ(countCallsTo(M, "main", "fib"), 2u)
      << "the clone's two recursive calls remain";
}

TEST(Expander, ExecutePlanMarksExpanded) {
  Module M = compileOk(test::kCallHeavyProgram);
  ProfileResult P = test::profileInputs(M, {std::string(40, 'x')});
  InlineResult R = runInlineExpansion(M, P.Data);
  for (const PlannedSite &S : R.Plan.Sites)
    EXPECT_NE(S.Status, ArcStatus::ToBeExpanded)
        << "every planned site must end Expanded";
  EXPECT_EQ(R.Plan.countStatus(ArcStatus::Expanded), R.Expansions.size());
  EXPECT_EQ(verifyModuleText(M), "");
}

TEST(Expander, ChainedInliningUsesExpandedCallee) {
  // square hottest -> first in linear order; cube absorbs square; main
  // absorbs the already-expanded cube and accumulate.
  Module M = compileOk(test::kCallHeavyProgram);
  ProfileResult P = test::profileInputs(M, {std::string(40, 'x')});
  InlineOptions Options;
  Options.CodeGrowthFactor = 10.0; // let everything through
  Options.MinArcWeight = 1.0;
  InlineResult R = runInlineExpansion(M, P.Data, Options);
  // At least cube->square, accumulate->cube, accumulate->square; the
  // main->accumulate arc depends on a weight tie in the linearization.
  EXPECT_GE(R.Expansions.size(), 3u);
  // After full expansion main should reach square's code without calls:
  ExecResult After = test::runOk(M, std::string(40, 'x'));
  EXPECT_EQ(After.Stats.FuncEntryCounts[M.findFunction("cube")], 0u);
  EXPECT_EQ(After.Stats.FuncEntryCounts[M.findFunction("square")], 0u);
}

TEST(Expander, OutputIdenticalAfterFullInlining) {
  Module M = compileOk(test::kCallHeavyProgram);
  std::string Input = "equivalence check input";
  ExecResult Before = test::runOk(M, Input);
  ProfileResult P = test::profileInputs(M, {Input});
  InlineOptions Options;
  Options.CodeGrowthFactor = 10.0;
  Options.MinArcWeight = 1.0;
  runInlineExpansion(M, P.Data, Options);
  ExecResult After = test::runOk(M, Input);
  EXPECT_EQ(Before.Output, After.Output);
  EXPECT_EQ(Before.ExitCode, After.ExitCode);
}

} // namespace
