//===- tests/FuzzTests.cpp - mutation fuzzing of the frontend and IL reader ---===//
//
// Part of the impact-inline project, distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The fuzz tier: deterministic token-level mutations of random MiniC
/// programs and of printed IL, fed to the frontend, the IL reader, and
/// the batch pipeline. The contract under corruption is narrow and
/// absolute — every input either compiles cleanly or is rejected with a
/// rendered diagnostic; nothing may crash, hang (all runs are
/// step-limited), or silently accept garbage (whatever compiles must
/// still verify and execute within limits or trap cleanly).
///
/// Seed count: IMPACT_FUZZ_SEEDS (default 64). Each seed derives both a
/// generator seed and an independent mutation seed, so raising the count
/// widens coverage without re-running old cases differently.
///
//===----------------------------------------------------------------------===//

#include "analysis/Analyzer.h"
#include "driver/BatchPipeline.h"
#include "driver/Compilation.h"
#include "driver/Pipeline.h"
#include "interp/Engine.h"
#include "interp/Interpreter.h"
#include "ir/IrPrinter.h"
#include "ir/IrReader.h"
#include "ir/IrVerifier.h"
#include "vm/Vm.h"

#include "RandomProgram.h"
#include "TestUtil.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <charconv>
#include <cstdlib>
#include <string>

using namespace impact;

namespace {

unsigned fuzzSeedCount() {
  const char *Env = std::getenv("IMPACT_FUZZ_SEEDS");
  if (!Env)
    return 64;
  unsigned Count = 0;
  const char *Last = Env + std::string_view(Env).size();
  auto [Ptr, Ec] = std::from_chars(Env, Last, Count);
  if (Ec != std::errc() || Ptr != Last || Count == 0)
    return 64;
  return Count;
}

/// Compiles a (possibly corrupted) source and enforces the no-crash /
/// no-hang / no-silent-acceptance contract. Returns true when it
/// compiled cleanly.
bool checkFrontendContract(const std::string &Source,
                           const std::string &Tag) {
  CompilationResult C =
      compileMiniC(Source, "fuzz", /*RequireMain=*/true);
  if (!C.Ok) {
    // Rejection must come with a diagnostic, never silently.
    EXPECT_FALSE(C.Errors.empty()) << Tag;
    return false;
  }
  // Whatever compiles must still be a structurally valid module...
  EXPECT_EQ(verifyModuleText(C.M), "") << Tag;
  // ...which the analyzer must take without crashing (its contract covers
  // every verifier-accepted shape, fuzz survivors included).
  analyzeModule(C.M, AnalysisOptions());
  // ...and run to a clean end state within a bounded step budget:
  // normal exit, a clean trap, or step-limit exhaustion. (The interpreter
  // cannot hang — the limit is the hang guard.)
  RunOptions Run;
  Run.StepLimit = 200000;
  ExecResult R = runProgram(C.M, Run);
  if (R.St == ExecResult::Status::Trapped) {
    EXPECT_FALSE(R.TrapMessage.empty()) << Tag;
  }
  // The bytecode VM is held to the walker's result on every fuzz
  // survivor, bit for bit — a mutant that compiles is exactly the kind of
  // weird-shape program the differential oracle must not miss.
  ExecResult VmR = runProgramVm(C.M, Run);
  EXPECT_EQ(describeResultDifference(R, VmR), "") << Tag;
  return true;
}

TEST(Fuzz, MutatedSourceNeverCrashesFrontend) {
  unsigned Accepted = 0, Rejected = 0;
  for (unsigned Seed = 0; Seed != fuzzSeedCount(); ++Seed) {
    std::string Source = test::generateRandomProgram(Seed);
    std::string Mutated = test::mutateProgramText(Source, Seed * 31 + 7);
    std::string Tag = "seed=" + std::to_string(Seed);
    if (checkFrontendContract(Mutated, Tag))
      ++Accepted;
    else
      ++Rejected;
    if (::testing::Test::HasFatalFailure())
      return;
  }
  // The mutator must produce both outcomes across the corpus; all-accept
  // would mean it never breaks anything, all-reject that it only ever
  // shreds the program into trivially invalid text.
  EXPECT_GT(Rejected, 0u);
  EXPECT_GT(Accepted, 0u);
}

TEST(Fuzz, DoublyMutatedSourceNeverCrashesFrontend) {
  // A second, independent round of corruption reaches states a single
  // mutation batch cannot (e.g. re-breaking a still-valid neighborhood).
  for (unsigned Seed = 0; Seed != fuzzSeedCount(); ++Seed) {
    std::string Source = test::generateRandomProgram(Seed);
    std::string M1 = test::mutateProgramText(Source, Seed ^ 0x5bd1e995u);
    std::string M2 = test::mutateProgramText(M1, Seed * 2654435761u + 1);
    checkFrontendContract(M2, "seed=" + std::to_string(Seed));
    if (::testing::Test::HasFatalFailure())
      return;
  }
}

TEST(Fuzz, MutatedIlNeverCrashesReader) {
  for (unsigned Seed = 0; Seed != fuzzSeedCount(); ++Seed) {
    std::string Source = test::generateRandomProgram(Seed);
    CompilationResult C = compileMiniC(Source, "fuzz");
    ASSERT_TRUE(C.Ok) << "seed=" << Seed;
    std::string Il = printModule(C.M);
    std::string Mutated = test::mutateProgramText(Il, Seed * 131 + 17);
    std::string Tag = "seed=" + std::to_string(Seed);

    IrReadResult R = parseModuleText(Mutated);
    if (!R.Ok) {
      EXPECT_FALSE(R.Error.empty()) << Tag;
      continue;
    }
    // Accepted IL must either verify or be rejected by the verifier with
    // a concrete message — silent structural corruption is the failure
    // mode this test exists to catch.
    std::string V = verifyModuleText(R.M);
    if (!V.empty())
      continue;
    // Verifier-accepted mutants must also analyze without crashing.
    analyzeModule(R.M, AnalysisOptions());
    RunOptions Run;
    Run.StepLimit = 200000;
    ExecResult E = runProgram(R.M, Run);
    if (E.St == ExecResult::Status::Trapped) {
      EXPECT_FALSE(E.TrapMessage.empty()) << Tag;
    }
    // Verifier-accepted IL mutants go through the VM too; any walker/VM
    // disagreement on a mutant is a failure of the fuzz tier.
    ExecResult VmR = runProgramVm(R.M, Run);
    EXPECT_EQ(describeResultDifference(E, VmR), "") << Tag;
  }
}

TEST(Fuzz, BatchAgreesWithSerialOnMutatedCorpus) {
  // The same mutated corpus through the full pipeline, serial vs 4 jobs:
  // per-unit success and failure classification must agree exactly, and
  // failures must be quarantined (the batch itself always completes).
  unsigned Seeds = std::min(fuzzSeedCount(), 16u); // full pipeline is pricier
  std::vector<BatchJob> Jobs;
  for (unsigned Seed = 0; Seed != Seeds; ++Seed) {
    BatchJob Job;
    Job.Name = "fuzz" + std::to_string(Seed);
    Job.Source = test::mutateProgramText(test::generateRandomProgram(Seed),
                                         Seed * 977 + 3);
    Job.Inputs = {RunInput{"ab", ""}};
    Job.Options.Run.StepLimit = 200000;
    Jobs.push_back(std::move(Job));
  }

  BatchOptions Serial, Wide;
  Serial.Jobs = 1;
  Wide.Jobs = 4;
  BatchResult A = runBatchPipeline(Jobs, Serial);
  BatchResult B = runBatchPipeline(Jobs, Wide);
  ASSERT_EQ(A.Results.size(), Jobs.size());
  ASSERT_EQ(B.Results.size(), Jobs.size());
  for (size_t I = 0; I != Jobs.size(); ++I) {
    EXPECT_EQ(A.Results[I].Ok, B.Results[I].Ok) << Jobs[I].Name;
    EXPECT_EQ(A.Results[I].Error, B.Results[I].Error) << Jobs[I].Name;
    EXPECT_EQ(A.Results[I].Failure.Stage, B.Results[I].Failure.Stage)
        << Jobs[I].Name;
    EXPECT_EQ(A.Results[I].Failure.Reason, B.Results[I].Failure.Reason)
        << Jobs[I].Name;
    if (!A.Results[I].Ok) {
      EXPECT_FALSE(A.Results[I].Error.empty()) << Jobs[I].Name;
      EXPECT_EQ(A.Results[I].Failure.Unit, Jobs[I].Name);
    }
  }
  EXPECT_EQ(A.Failures.size(), B.Failures.size());

  // The same corpus measured by the bytecode VM: per-unit outcome,
  // failure classification, and every observable result must match the
  // walker batch exactly — on mutants, not just on well-behaved programs.
  std::vector<BatchJob> VmJobs = Jobs;
  for (BatchJob &Job : VmJobs)
    Job.Options.Engine = ExecEngine::Vm;
  BatchResult V = runBatchPipeline(VmJobs, Serial);
  ASSERT_EQ(V.Results.size(), Jobs.size());
  for (size_t I = 0; I != Jobs.size(); ++I) {
    EXPECT_EQ(A.Results[I].Ok, V.Results[I].Ok) << Jobs[I].Name;
    EXPECT_EQ(A.Results[I].Error, V.Results[I].Error) << Jobs[I].Name;
    EXPECT_EQ(A.Results[I].Failure.Stage, V.Results[I].Failure.Stage)
        << Jobs[I].Name;
    EXPECT_EQ(A.Results[I].Failure.Reason, V.Results[I].Failure.Reason)
        << Jobs[I].Name;
    EXPECT_EQ(A.Results[I].OutputsBefore, V.Results[I].OutputsBefore)
        << Jobs[I].Name;
    EXPECT_EQ(A.Results[I].OutputsAfter, V.Results[I].OutputsAfter)
        << Jobs[I].Name;
    EXPECT_TRUE(A.Results[I].ProfileBefore == V.Results[I].ProfileBefore)
        << Jobs[I].Name;
  }
}

TEST(Fuzz, MutatorIsDeterministicAndProductive) {
  for (unsigned Seed = 0; Seed != 8; ++Seed) {
    std::string Source = test::generateRandomProgram(Seed);
    std::string A = test::mutateProgramText(Source, 42 + Seed);
    std::string B = test::mutateProgramText(Source, 42 + Seed);
    EXPECT_EQ(A, B) << Seed;           // same seed, same corruption
    EXPECT_NE(A, Source) << Seed;      // never the identity
    EXPECT_NE(test::mutateProgramText(Source, 43 + Seed), A) << Seed;
  }
}

} // namespace
