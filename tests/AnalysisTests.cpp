//===- tests/AnalysisTests.cpp - dataflow framework and impact-lint tests -----===//
//
// Part of the impact-inline project, distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The analysis tier: the CFG and the three dataflow analyses on
/// hand-built IL, the rule-spec parser and report rendering, one
/// seeded-defect fixture plus one clean fixture per impact-lint rule, and
/// the pipeline integration (error findings quarantine the unit; survivors
/// are bit-identical with the analyzer on or off).
///
//===----------------------------------------------------------------------===//

#include "analysis/Analyzer.h"

#include "analysis/LoopInfo.h"
#include "suite/Suite.h"

#include "core/InlinePass.h"
#include "core/WeightRedistribution.h"
#include "driver/Pipeline.h"
#include "ir/IrPrinter.h"
#include "ir/IrVerifier.h"

#include "TestUtil.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace impact;

namespace {

/// A module with one function under test ("f", \p NumParams parameters,
/// \p NumRegs registers) plus a main calling it with constant arguments.
/// Tests fill f's blocks and should verify the module before analyzing.
Module makeHarness(uint32_t NumParams, uint32_t NumRegs) {
  Module M;
  FuncId FId = M.addFunction("f", NumParams, false, false);
  M.getFunction(FId).NumRegs = NumRegs;
  FuncId MainId = M.addFunction("main", 0, false, false);
  Function &Main = M.getFunction(MainId);
  BlockId B = Main.addBlock();
  std::vector<Reg> Args;
  for (uint32_t I = 0; I != NumParams; ++I) {
    Reg R = Main.addReg();
    Main.getBlock(B).Instrs.push_back(Instr::makeLdImm(R, 1));
    Args.push_back(R);
  }
  Reg Ret = Main.addReg();
  Main.getBlock(B).Instrs.push_back(
      Instr::makeCall(Ret, FId, Args, M.allocateSiteId()));
  Main.getBlock(B).Instrs.push_back(Instr::makeRet(Ret));
  M.MainId = MainId;
  return M;
}

/// f(p0): bb0: cond_br p0 bb1 bb2; bb1: r1=1; jump bb3;
///        bb2: r1=2; jump bb3; bb3: ret r1.
Module makeDiamond() {
  Module M = makeHarness(1, 2);
  Function &F = M.getFunction(0);
  BlockId B0 = F.addBlock(), B1 = F.addBlock(), B2 = F.addBlock(),
          B3 = F.addBlock();
  F.getBlock(B0).Instrs.push_back(Instr::makeCondBr(0, B1, B2));
  F.getBlock(B1).Instrs.push_back(Instr::makeLdImm(1, 1));
  F.getBlock(B1).Instrs.push_back(Instr::makeJump(B3));
  F.getBlock(B2).Instrs.push_back(Instr::makeLdImm(1, 2));
  F.getBlock(B2).Instrs.push_back(Instr::makeJump(B3));
  F.getBlock(B3).Instrs.push_back(Instr::makeRet(1));
  return M;
}

std::vector<Finding> findingsForRule(const AnalysisReport &R,
                                     std::string_view Rule) {
  std::vector<Finding> Out;
  for (const Finding &F : R.Findings)
    if (F.Rule == Rule)
      Out.push_back(F);
  return Out;
}

AnalysisOptions onlyRules(const char *Spec) {
  AnalysisOptions O;
  std::string Error;
  EXPECT_TRUE(parseAnalysisRules(Spec, O, &Error)) << Error;
  return O;
}

//===----------------------------------------------------------------------===//
// CFG
//===----------------------------------------------------------------------===//

TEST(Cfg, DiamondEdgesAndReachability) {
  Module M = makeDiamond();
  ASSERT_EQ(verifyModuleText(M), "");
  Cfg G(M.getFunction(0));
  ASSERT_EQ(G.getNumBlocks(), 4u);
  EXPECT_EQ(G.getSuccessors(0), (std::vector<BlockId>{1, 2}));
  EXPECT_EQ(G.getSuccessors(3), std::vector<BlockId>{});
  EXPECT_EQ(G.getPredecessors(3), (std::vector<BlockId>{1, 2}));
  EXPECT_EQ(G.getPredecessors(0), std::vector<BlockId>{});
  for (BlockId B = 0; B != 4; ++B)
    EXPECT_TRUE(G.isReachable(B)) << B;
  const std::vector<BlockId> &Rpo = G.getReversePostOrder();
  ASSERT_EQ(Rpo.size(), 4u);
  EXPECT_EQ(Rpo.front(), 0);
  EXPECT_EQ(Rpo.back(), 3);
}

TEST(Cfg, UnreachableBlockExcludedFromRpo) {
  Module M = makeHarness(0, 1);
  Function &F = M.getFunction(0);
  BlockId B0 = F.addBlock(), B1 = F.addBlock();
  F.getBlock(B0).Instrs.push_back(Instr::makeLdImm(0, 0));
  F.getBlock(B0).Instrs.push_back(Instr::makeRet(0));
  F.getBlock(B1).Instrs.push_back(Instr::makeRet(0));
  ASSERT_EQ(verifyModuleText(M), "");
  Cfg G(F);
  EXPECT_TRUE(G.isReachable(0));
  EXPECT_FALSE(G.isReachable(1));
  EXPECT_EQ(G.getReversePostOrder(), std::vector<BlockId>{0});
}

TEST(Cfg, DegenerateCondBrEdgeDeduplicated) {
  // The verifier now rejects equal-target cond_br, but the CFG must still
  // be sane on such input (the analyzer sees pre-verifier fuzz shapes in
  // unit tests); the duplicate edge collapses to one so confluence never
  // double-counts a predecessor.
  Module M = makeHarness(0, 1);
  Function &F = M.getFunction(0);
  BlockId B0 = F.addBlock(), B1 = F.addBlock();
  F.getBlock(B0).Instrs.push_back(Instr::makeLdImm(0, 1));
  F.getBlock(B0).Instrs.push_back(Instr::makeCondBr(0, B1, B1));
  F.getBlock(B1).Instrs.push_back(Instr::makeRet(0));
  Cfg G(F);
  EXPECT_EQ(G.getSuccessors(0), std::vector<BlockId>{1});
  EXPECT_EQ(G.getPredecessors(1), std::vector<BlockId>{0});
}

//===----------------------------------------------------------------------===//
// Dataflow analyses
//===----------------------------------------------------------------------===//

TEST(Dataflow, DominatorsOnDiamond) {
  Module M = makeDiamond();
  Cfg G(M.getFunction(0));
  DominatorAnalysis D = computeDominators(M.getFunction(0), G);
  EXPECT_TRUE(D.dominates(0, 0));
  EXPECT_TRUE(D.dominates(0, 1));
  EXPECT_TRUE(D.dominates(0, 2));
  EXPECT_TRUE(D.dominates(0, 3));
  EXPECT_FALSE(D.dominates(1, 3)); // bb2 bypasses bb1
  EXPECT_FALSE(D.dominates(2, 3));
  EXPECT_TRUE(D.dominates(3, 3));
  EXPECT_FALSE(D.dominates(3, 0));
}

TEST(Dataflow, DominatorsOnLoop) {
  // bb0 -> bb1 (header) -> bb2 (body) -> bb1; bb1 -> bb3 (exit).
  Module M = makeHarness(1, 2);
  Function &F = M.getFunction(0);
  BlockId B0 = F.addBlock(), B1 = F.addBlock(), B2 = F.addBlock(),
          B3 = F.addBlock();
  F.getBlock(B0).Instrs.push_back(Instr::makeJump(B1));
  F.getBlock(B1).Instrs.push_back(Instr::makeCondBr(0, B2, B3));
  F.getBlock(B2).Instrs.push_back(Instr::makeLdImm(1, 1));
  F.getBlock(B2).Instrs.push_back(Instr::makeJump(B1));
  F.getBlock(B3).Instrs.push_back(Instr::makeLdImm(1, 0));
  F.getBlock(B3).Instrs.push_back(Instr::makeRet(1));
  ASSERT_EQ(verifyModuleText(M), "");
  Cfg G(F);
  DominatorAnalysis D = computeDominators(F, G);
  EXPECT_TRUE(D.dominates(B1, B2));
  EXPECT_TRUE(D.dominates(B1, B3));
  EXPECT_FALSE(D.dominates(B2, B1)); // back edge does not dominate
  EXPECT_FALSE(D.dominates(B2, B3));
}

TEST(Dataflow, LivenessOnDiamond) {
  Module M = makeDiamond();
  Function &F = M.getFunction(0);
  Cfg G(F);
  LivenessAnalysis L = computeLiveness(F, G);
  // The parameter (r0) is consumed by bb0's branch and never again.
  EXPECT_TRUE(L.LiveIn[0].test(0));
  EXPECT_FALSE(L.LiveOut[0].test(0));
  // r1 is defined in bb1/bb2 and read in bb3.
  EXPECT_TRUE(L.LiveOut[1].test(1));
  EXPECT_TRUE(L.LiveOut[2].test(1));
  EXPECT_TRUE(L.LiveIn[3].test(1));
  EXPECT_FALSE(L.LiveIn[1].test(1)); // defined before any use on this path
  EXPECT_FALSE(L.LiveOut[3].test(1));
}

TEST(Dataflow, ReachingDefsOnDiamond) {
  Module M = makeDiamond();
  Function &F = M.getFunction(0);
  Cfg G(F);
  ReachingDefsAnalysis R = computeReachingDefs(F, G);
  // The parameter pseudo-definition comes first and reaches the entry.
  ASSERT_FALSE(R.Defs.empty());
  EXPECT_EQ(R.Defs[0].Block, -1);
  EXPECT_EQ(R.Defs[0].Def, 0);
  EXPECT_TRUE(R.anyDefReaches(R.ReachIn[0], 0));
  // Both branch definitions of r1 reach the merge block.
  uint32_t FromB1 = 0, FromB2 = 0;
  bool SawB1 = false, SawB2 = false;
  for (uint32_t I = 0; I != R.Defs.size(); ++I) {
    if (R.Defs[I].Def != 1)
      continue;
    if (R.Defs[I].Block == 1) {
      FromB1 = I;
      SawB1 = true;
    }
    if (R.Defs[I].Block == 2) {
      FromB2 = I;
      SawB2 = true;
    }
  }
  ASSERT_TRUE(SawB1 && SawB2);
  EXPECT_TRUE(R.ReachIn[3].test(FromB1));
  EXPECT_TRUE(R.ReachIn[3].test(FromB2));
  // Neither definition flows backwards into the entry.
  EXPECT_FALSE(R.anyDefReaches(R.ReachIn[0], 1));
}

TEST(Dataflow, RedefinitionKillsPriorDef) {
  // bb0: r0=1; r0=2; ret r0 — only the second definition leaves the block.
  Module M = makeHarness(0, 1);
  Function &F = M.getFunction(0);
  BlockId B0 = F.addBlock();
  F.getBlock(B0).Instrs.push_back(Instr::makeLdImm(0, 1));
  F.getBlock(B0).Instrs.push_back(Instr::makeLdImm(0, 2));
  F.getBlock(B0).Instrs.push_back(Instr::makeRet(0));
  Cfg G(F);
  ReachingDefsAnalysis R = computeReachingDefs(F, G);
  for (uint32_t I = 0; I != R.Defs.size(); ++I) {
    if (R.Defs[I].Def != 0)
      continue;
    bool IsSecond = R.Defs[I].Instr == 1;
    EXPECT_EQ(R.ReachOut[0].test(I), IsSecond) << "def index " << I;
  }
}

TEST(Dataflow, UsesAndDefs) {
  std::vector<Reg> Uses;
  collectUses(Instr::makeStore(3, 4), Uses);
  EXPECT_EQ(Uses, (std::vector<Reg>{3, 4}));
  EXPECT_EQ(instrDef(Instr::makeStore(3, 4)), kNoReg);

  Uses.clear();
  collectUses(Instr::makeCall(7, 0, {1, 2}, 5), Uses);
  EXPECT_EQ(Uses, (std::vector<Reg>{1, 2}));
  EXPECT_EQ(instrDef(Instr::makeCall(7, 0, {1, 2}, 5)), 7);

  Uses.clear();
  collectUses(Instr::makeCallPtr(7, 6, {1}, 5), Uses);
  EXPECT_EQ(Uses, (std::vector<Reg>{6, 1}));

  Uses.clear();
  collectUses(Instr::makeRet(kNoReg), Uses);
  EXPECT_TRUE(Uses.empty());
  EXPECT_EQ(instrDef(Instr::makeRet(2)), kNoReg);

  Uses.clear();
  collectUses(Instr::makeLdImm(1, 42), Uses);
  EXPECT_TRUE(Uses.empty());
  EXPECT_EQ(instrDef(Instr::makeLdImm(1, 42)), 1);

  Uses.clear();
  collectUses(Instr::makeBinary(Opcode::Add, 2, 0, 1), Uses);
  EXPECT_EQ(Uses, (std::vector<Reg>{0, 1}));
}

//===----------------------------------------------------------------------===//
// Rule-spec parsing and report rendering
//===----------------------------------------------------------------------===//

TEST(AnalysisRules, EmptyAndAllEnableEverything) {
  for (const char *Spec : {"", "all", "1", "on"}) {
    AnalysisOptions O;
    O.DeadStore = false; // must be restored by the spec
    std::string Error;
    ASSERT_TRUE(parseAnalysisRules(Spec, O, &Error)) << Spec << ": " << Error;
    EXPECT_TRUE(O.UninitRead && O.UnreachableBlock && O.DeadStore &&
                O.AuditSafeExpansion && O.AuditCallGraph &&
                O.AuditWeightConservation && O.AuditLinearization)
        << Spec;
  }
}

TEST(AnalysisRules, BareNameSelectsExactlyThatRule) {
  AnalysisOptions O = onlyRules("dead-store");
  EXPECT_TRUE(O.DeadStore);
  EXPECT_FALSE(O.UninitRead || O.UnreachableBlock || O.AuditSafeExpansion ||
               O.AuditCallGraph || O.AuditWeightConservation ||
               O.AuditLinearization);
}

TEST(AnalysisRules, AllMinusDisablesOne) {
  AnalysisOptions O = onlyRules("all,-dead-store");
  EXPECT_FALSE(O.DeadStore);
  EXPECT_TRUE(O.UninitRead && O.UnreachableBlock && O.AuditSafeExpansion &&
              O.AuditCallGraph && O.AuditWeightConservation &&
              O.AuditLinearization);
}

TEST(AnalysisRules, PureNegationStartsFromAll) {
  AnalysisOptions O = onlyRules("-uninit-read");
  EXPECT_FALSE(O.UninitRead);
  EXPECT_TRUE(O.DeadStore && O.UnreachableBlock);
}

TEST(AnalysisRules, UnknownRuleRejectedWithValidList) {
  AnalysisOptions O;
  std::string Error;
  EXPECT_FALSE(parseAnalysisRules("dead-stroe", O, &Error));
  EXPECT_NE(Error.find("unknown analysis rule 'dead-stroe'"),
            std::string::npos);
  EXPECT_NE(Error.find(kRuleDeadStore), std::string::npos);
  EXPECT_NE(Error.find(kRuleAuditWeightConservation), std::string::npos);
}

TEST(AnalysisRules, UnknownRuleGetsDidYouMeanSuggestion) {
  AnalysisOptions O;
  std::string Error;
  EXPECT_FALSE(parseAnalysisRules("dead-stroe", O, &Error));
  EXPECT_NE(Error.find("did you mean 'dead-store'?"), std::string::npos)
      << Error;
  Error.clear();
  EXPECT_FALSE(parseAnalysisRules("guaranteed-trep", O, &Error));
  EXPECT_NE(Error.find("did you mean 'guaranteed-trap'?"), std::string::npos)
      << Error;
  // Nothing remotely close: the valid list, no suggestion.
  Error.clear();
  EXPECT_FALSE(parseAnalysisRules("zzzzzzzzzzzz", O, &Error));
  EXPECT_EQ(Error.find("did you mean"), std::string::npos) << Error;
  EXPECT_NE(Error.find("valid: all"), std::string::npos) << Error;
}

TEST(AnalysisRules, HelpTableListsEveryRuleWithSeverity) {
  std::string Table = renderAnalysisRuleTable();
  for (const char *Rule :
       {kRuleUninitRead, kRuleUnreachableBlock, kRuleDeadStore,
        kRuleAuditSafeExpansion, kRuleAuditCallGraph,
        kRuleAuditWeightConservation, kRuleAuditLinearization,
        kRuleGuaranteedTrap, kRuleRangeContradiction})
    EXPECT_NE(Table.find(Rule), std::string::npos) << Rule;
  EXPECT_NE(Table.find("warn"), std::string::npos);
  EXPECT_NE(Table.find("error"), std::string::npos);
  ASSERT_FALSE(Table.empty());
  EXPECT_EQ(Table.back(), '\n');
}

TEST(AnalysisRules, RangeRulesSelectable) {
  AnalysisOptions O = onlyRules("guaranteed-trap");
  EXPECT_TRUE(O.GuaranteedTrap);
  EXPECT_FALSE(O.RangeContradiction || O.DeadStore || O.UninitRead);
  AnalysisOptions All = onlyRules("all,-range-contradiction");
  EXPECT_TRUE(All.GuaranteedTrap);
  EXPECT_FALSE(All.RangeContradiction);
}

TEST(AnalysisReportTest, FindingRenderForms) {
  Finding F;
  F.Function = "main";
  F.Block = 2;
  F.Instr = 3;
  F.Sev = Severity::Warn;
  F.Rule = kRuleDeadStore;
  F.Message = "value written to register r1 is never read (dead store)";
  EXPECT_EQ(F.render(), "warn[dead-store] main bb2#3: value written to "
                        "register r1 is never read (dead store)");

  Finding ModuleLevel;
  ModuleLevel.Sev = Severity::Error;
  ModuleLevel.Rule = kRuleAuditCallGraph;
  ModuleLevel.Message = "boom";
  EXPECT_EQ(ModuleLevel.render(), "error[audit-callgraph] <module>: boom");
}

TEST(AnalysisReportTest, JsonlEscapesAndTagsProgram) {
  AnalysisReport R;
  Finding F;
  F.Function = "f";
  F.Block = 0;
  F.Instr = 1;
  F.Sev = Severity::Warn;
  F.Rule = kRuleUninitRead;
  F.Message = "register r1 ('a\"b') is suspicious";
  R.Findings.push_back(F);
  std::string Jsonl = R.renderJsonl("unit-1");
  EXPECT_NE(Jsonl.find("\"program\":\"unit-1\""), std::string::npos);
  EXPECT_NE(Jsonl.find("\"severity\":\"warn\""), std::string::npos);
  EXPECT_NE(Jsonl.find("\"rule\":\"uninit-read\""), std::string::npos);
  EXPECT_NE(Jsonl.find("\"block\":0"), std::string::npos);
  EXPECT_NE(Jsonl.find("('a\\\"b')"), std::string::npos);
  EXPECT_EQ(Jsonl.back(), '\n');
}

TEST(AnalysisReportTest, SortIsDeterministic) {
  AnalysisReport R;
  Finding A;
  A.Function = "b";
  A.Block = 0;
  A.Rule = kRuleDeadStore;
  Finding B;
  B.Function = "a";
  B.Block = 5;
  B.Rule = kRuleUninitRead;
  Finding C;
  C.Function = "a";
  C.Block = 2;
  C.Rule = kRuleUninitRead;
  R.Findings = {A, B, C};
  R.sortFindings();
  EXPECT_EQ(R.Findings[0].Function, "a");
  EXPECT_EQ(R.Findings[0].Block, 2);
  EXPECT_EQ(R.Findings[1].Block, 5);
  EXPECT_EQ(R.Findings[2].Function, "b");
}

//===----------------------------------------------------------------------===//
// Intraprocedural rules: one seeded-defect fixture and one clean fixture
// per rule.
//===----------------------------------------------------------------------===//

TEST(AnalyzeModule, UninitReadFlagged) {
  Module M = makeHarness(0, 2);
  Function &F = M.getFunction(0);
  BlockId B0 = F.addBlock();
  F.getBlock(B0).Instrs.push_back(Instr::makeMov(0, 1)); // r1 never defined
  F.getBlock(B0).Instrs.push_back(Instr::makeRet(0));
  ASSERT_EQ(verifyModuleText(M), "");
  AnalysisReport R = analyzeModule(M, AnalysisOptions());
  std::vector<Finding> Hits = findingsForRule(R, kRuleUninitRead);
  ASSERT_EQ(Hits.size(), 1u);
  EXPECT_EQ(Hits[0].Function, "f");
  EXPECT_EQ(Hits[0].Block, 0);
  EXPECT_EQ(Hits[0].Instr, 0);
  EXPECT_EQ(Hits[0].Sev, Severity::Warn);
  EXPECT_NE(Hits[0].Message.find("no definition reaches"), std::string::npos);
}

TEST(AnalyzeModule, UninitReadCleanWhenDefined) {
  Module M = makeHarness(0, 2);
  Function &F = M.getFunction(0);
  BlockId B0 = F.addBlock();
  F.getBlock(B0).Instrs.push_back(Instr::makeLdImm(1, 7));
  F.getBlock(B0).Instrs.push_back(Instr::makeMov(0, 1));
  F.getBlock(B0).Instrs.push_back(Instr::makeRet(0));
  ASSERT_EQ(verifyModuleText(M), "");
  AnalysisReport R = analyzeModule(M, AnalysisOptions());
  EXPECT_TRUE(findingsForRule(R, kRuleUninitRead).empty());
}

TEST(AnalyzeModule, ParametersCountAsDefined) {
  Module M = makeHarness(1, 2);
  Function &F = M.getFunction(0);
  BlockId B0 = F.addBlock();
  F.getBlock(B0).Instrs.push_back(Instr::makeMov(1, 0)); // reads the param
  F.getBlock(B0).Instrs.push_back(Instr::makeRet(1));
  ASSERT_EQ(verifyModuleText(M), "");
  AnalysisReport R = analyzeModule(M, AnalysisOptions());
  EXPECT_TRUE(findingsForRule(R, kRuleUninitRead).empty());
}

TEST(AnalyzeModule, OnePathDefinitionNotFlagged) {
  // The rule flags must-uninitialized reads only: a definition on one of
  // two paths suppresses the finding (may-analysis would over-report the
  // interpreter's defined zero-fill semantics).
  Module M = makeHarness(1, 2);
  Function &F = M.getFunction(0);
  BlockId B0 = F.addBlock(), B1 = F.addBlock(), B2 = F.addBlock(),
          B3 = F.addBlock();
  F.getBlock(B0).Instrs.push_back(Instr::makeCondBr(0, B1, B2));
  F.getBlock(B1).Instrs.push_back(Instr::makeLdImm(1, 1));
  F.getBlock(B1).Instrs.push_back(Instr::makeJump(B3));
  F.getBlock(B2).Instrs.push_back(Instr::makeJump(B3));
  F.getBlock(B3).Instrs.push_back(Instr::makeRet(1));
  ASSERT_EQ(verifyModuleText(M), "");
  AnalysisReport R = analyzeModule(M, AnalysisOptions());
  EXPECT_TRUE(findingsForRule(R, kRuleUninitRead).empty());
}

TEST(AnalyzeModule, UnreachableBlockFlagged) {
  Module M = makeHarness(0, 1);
  Function &F = M.getFunction(0);
  BlockId B0 = F.addBlock(), B1 = F.addBlock();
  F.getBlock(B0).Instrs.push_back(Instr::makeLdImm(0, 0));
  F.getBlock(B0).Instrs.push_back(Instr::makeRet(0));
  F.getBlock(B1).Instrs.push_back(Instr::makeRet(0));
  ASSERT_EQ(verifyModuleText(M), "");
  AnalysisReport R = analyzeModule(M, AnalysisOptions());
  std::vector<Finding> Hits = findingsForRule(R, kRuleUnreachableBlock);
  ASSERT_EQ(Hits.size(), 1u);
  EXPECT_EQ(Hits[0].Function, "f");
  EXPECT_EQ(Hits[0].Block, 1);
  EXPECT_EQ(Hits[0].Instr, -1);
  EXPECT_EQ(Hits[0].Sev, Severity::Warn);
}

TEST(AnalyzeModule, AllReachableIsClean) {
  Module M = makeDiamond();
  AnalysisReport R = analyzeModule(M, AnalysisOptions());
  EXPECT_TRUE(findingsForRule(R, kRuleUnreachableBlock).empty());
}

TEST(AnalyzeModule, DeadStoreFlagged) {
  Module M = makeHarness(0, 1);
  Function &F = M.getFunction(0);
  BlockId B0 = F.addBlock();
  F.getBlock(B0).Instrs.push_back(Instr::makeLdImm(0, 5)); // overwritten
  F.getBlock(B0).Instrs.push_back(Instr::makeLdImm(0, 6));
  F.getBlock(B0).Instrs.push_back(Instr::makeRet(0));
  ASSERT_EQ(verifyModuleText(M), "");
  AnalysisReport R = analyzeModule(M, AnalysisOptions());
  std::vector<Finding> Hits = findingsForRule(R, kRuleDeadStore);
  ASSERT_EQ(Hits.size(), 1u);
  EXPECT_EQ(Hits[0].Block, 0);
  EXPECT_EQ(Hits[0].Instr, 0);
  EXPECT_EQ(Hits[0].Sev, Severity::Warn);
  EXPECT_NE(Hits[0].Message.find("never read"), std::string::npos);
}

TEST(AnalyzeModule, LiveAcrossBranchIsClean) {
  Module M = makeDiamond();
  AnalysisReport R = analyzeModule(M, AnalysisOptions());
  EXPECT_TRUE(findingsForRule(R, kRuleDeadStore).empty());
}

TEST(AnalyzeModule, EffectfulInstructionsNeverDeadStores) {
  // An unused call result and an unused load result are not dead stores:
  // the call runs regardless, and the load's address check can trap.
  Module M = makeHarness(0, 3);
  M.addGlobal("g", 1);
  Function &F = M.getFunction(0);
  BlockId B0 = F.addBlock();
  F.getBlock(B0).Instrs.push_back(Instr::makeGlobalAddr(0, 0));
  F.getBlock(B0).Instrs.push_back(Instr::makeLoad(1, 0)); // r1 unused
  F.getBlock(B0).Instrs.push_back(Instr::makeLdImm(2, 0));
  F.getBlock(B0).Instrs.push_back(Instr::makeRet(2));
  Function &Main = M.getFunction(M.MainId);
  // main's call result feeds ret in the harness; rewrite so it is unused.
  Reg Zero = Main.addReg();
  Main.Blocks[0].Instrs.back() = Instr::makeLdImm(Zero, 0);
  Main.Blocks[0].Instrs.push_back(Instr::makeRet(Zero));
  ASSERT_EQ(verifyModuleText(M), "");
  AnalysisReport R = analyzeModule(M, AnalysisOptions());
  EXPECT_TRUE(findingsForRule(R, kRuleDeadStore).empty());
}

TEST(AnalyzeModule, RuleSelectionHonored) {
  Module M = makeHarness(0, 1);
  Function &F = M.getFunction(0);
  BlockId B0 = F.addBlock(), B1 = F.addBlock();
  F.getBlock(B0).Instrs.push_back(Instr::makeLdImm(0, 5));
  F.getBlock(B0).Instrs.push_back(Instr::makeLdImm(0, 6));
  F.getBlock(B0).Instrs.push_back(Instr::makeRet(0));
  F.getBlock(B1).Instrs.push_back(Instr::makeRet(0));
  AnalysisReport R = analyzeModule(M, onlyRules("unreachable-block"));
  EXPECT_FALSE(findingsForRule(R, kRuleUnreachableBlock).empty());
  EXPECT_TRUE(findingsForRule(R, kRuleDeadStore).empty());
}

//===----------------------------------------------------------------------===//
// Range-backed rules (guaranteed-trap, range-contradiction)
//===----------------------------------------------------------------------===//

TEST(GuaranteedTrap, DefiniteZeroDivisorIsAnError) {
  Module M = test::compileOk(R"MC(
int main() {
  int x;
  x = 0;
  return 5 / x;
}
)MC");
  ASSERT_EQ(verifyModuleText(M), "");
  AnalysisReport R = analyzeModule(M, onlyRules("guaranteed-trap"));
  std::vector<Finding> F = findingsForRule(R, kRuleGuaranteedTrap);
  ASSERT_EQ(F.size(), 1u) << R.renderText();
  EXPECT_EQ(F[0].Sev, Severity::Error);
  EXPECT_EQ(F[0].Function, "main");
  EXPECT_NE(F[0].Message.find("provably zero"), std::string::npos);
}

TEST(GuaranteedTrap, ProvablyNonzeroDivisorIsClean) {
  Module M = test::compileOk(R"MC(
extern int getchar();
int main() {
  int d;
  d = (getchar() & 7) + 1;
  return 100 / d;
}
)MC");
  ASSERT_EQ(verifyModuleText(M), "");
  AnalysisReport R = analyzeModule(M, onlyRules("guaranteed-trap"));
  EXPECT_TRUE(findingsForRule(R, kRuleGuaranteedTrap).empty())
      << R.renderText();
}

TEST(GuaranteedTrap, TrapInRangeUnreachableBlockNotReported) {
  // The division by zero sits behind a condition range propagation
  // proves false, so it never executes — the trap rule must stay quiet
  // (that block is range-contradiction's finding instead).
  Module M = test::compileOk(R"MC(
int main() {
  int x;
  int z;
  x = 3;
  z = 0;
  if (x > 5) {
    return 1 / z;
  }
  return 0;
}
)MC");
  ASSERT_EQ(verifyModuleText(M), "");
  AnalysisReport R = analyzeModule(M, onlyRules("guaranteed-trap"));
  EXPECT_TRUE(findingsForRule(R, kRuleGuaranteedTrap).empty())
      << R.renderText();
}

TEST(RangeContradiction, ContradictoryBranchIsAWarning) {
  Module M = test::compileOk(R"MC(
int main() {
  int x;
  x = 3;
  if (x > 5) {
    return 1;
  }
  return 0;
}
)MC");
  ASSERT_EQ(verifyModuleText(M), "");
  AnalysisReport R = analyzeModule(M, onlyRules("range-contradiction"));
  std::vector<Finding> F = findingsForRule(R, kRuleRangeContradiction);
  ASSERT_FALSE(F.empty()) << R.renderText();
  EXPECT_EQ(F[0].Sev, Severity::Warn);
  EXPECT_EQ(F[0].Function, "main");
}

TEST(RangeContradiction, DataDependentBranchIsClean) {
  Module M = test::compileOk(R"MC(
extern int getchar();
int main() {
  if (getchar() > 5) {
    return 1;
  }
  return 0;
}
)MC");
  ASSERT_EQ(verifyModuleText(M), "");
  AnalysisReport R = analyzeModule(M, onlyRules("range-contradiction"));
  EXPECT_TRUE(findingsForRule(R, kRuleRangeContradiction).empty())
      << R.renderText();
}

TEST(RangeContradiction, NeverCalledFunctionReportedOnceAtEntry) {
  Module M = test::compileOk(R"MC(
int orphan(int x) {
  if (x > 0) {
    return 1;
  }
  return 2;
}
int main() {
  return 0;
}
)MC");
  ASSERT_EQ(verifyModuleText(M), "");
  AnalysisReport R = analyzeModule(M, onlyRules("range-contradiction"));
  std::vector<Finding> F = findingsForRule(R, kRuleRangeContradiction);
  ASSERT_EQ(F.size(), 1u) << R.renderText();
  EXPECT_EQ(F[0].Function, "orphan");
  EXPECT_EQ(F[0].Block, 0);
  EXPECT_NE(F[0].Message.find("never entered"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Inliner-invariant audits. Clean fixtures use the real inline pass on a
// call-heavy program; defect fixtures corrupt its result in exactly one
// way.
//===----------------------------------------------------------------------===//

struct InlinedProgram {
  Module M;
  ProfileData Profile;
  InlineResult Inline;
};

InlinedProgram makeInlinedCallHeavy() {
  InlinedProgram P;
  P.M = test::compileOk(test::kCallHeavyProgram);
  ProfileResult PR = test::profileInputs(P.M, {std::string(50, 'x')});
  P.Profile = PR.Data;
  P.Inline = runInlineExpansion(P.M, P.Profile);
  return P;
}

AnalysisReport runAudits(const InlinedProgram &P, const AnalysisOptions &O) {
  AnalysisReport R;
  analyzeInlineInvariants(P.M, P.Inline, P.Profile, O, R);
  return R;
}

TEST(AnalysisAudit, RealInlineResultIsClean) {
  InlinedProgram P = makeInlinedCallHeavy();
  ASSERT_FALSE(P.Inline.Expansions.empty());
  AnalysisReport R = runAudits(P, AnalysisOptions());
  EXPECT_EQ(R.countSeverity(Severity::Error), 0u) << R.renderText();
}

TEST(AnalysisAudit, SafeExpansionFlagsMisclassifiedSite) {
  InlinedProgram P = makeInlinedCallHeavy();
  ASSERT_FALSE(P.Inline.Expansions.empty());
  uint32_t Site = P.Inline.Expansions.front().SiteId;
  bool Corrupted = false;
  for (SiteInfo &S : P.Inline.Classes.Sites)
    if (S.SiteId == Site) {
      S.Class = SiteClass::Unsafe;
      Corrupted = true;
    }
  ASSERT_TRUE(Corrupted);
  AnalysisReport R = runAudits(P, onlyRules("audit-safe-expansion"));
  std::vector<Finding> Hits = findingsForRule(R, kRuleAuditSafeExpansion);
  ASSERT_FALSE(Hits.empty());
  EXPECT_EQ(Hits[0].Sev, Severity::Error);
  EXPECT_NE(Hits[0].Message.find("not safe"), std::string::npos);
}

TEST(AnalysisAudit, SafeExpansionFlagsUnclassifiedSite) {
  InlinedProgram P = makeInlinedCallHeavy();
  ASSERT_FALSE(P.Inline.Expansions.empty());
  uint32_t Site = P.Inline.Expansions.front().SiteId;
  std::erase_if(P.Inline.Classes.Sites,
                [Site](const SiteInfo &S) { return S.SiteId == Site; });
  AnalysisReport R = runAudits(P, onlyRules("audit-safe-expansion"));
  std::vector<Finding> Hits = findingsForRule(R, kRuleAuditSafeExpansion);
  ASSERT_FALSE(Hits.empty());
  EXPECT_NE(Hits[0].Message.find("call-site classification"),
            std::string::npos);
}

/// The first remaining call instruction of \p M, or null.
Instr *findAnyCall(Module &M) {
  for (Function &F : M.Funcs)
    for (BasicBlock &B : F.Blocks)
      for (Instr &I : B.Instrs)
        if (I.isCall())
          return &I;
  return nullptr;
}

TEST(AnalysisAudit, CallGraphFlagsDanglingSiteId) {
  InlinedProgram P = makeInlinedCallHeavy();
  Instr *Call = findAnyCall(P.M);
  ASSERT_NE(Call, nullptr);
  Call->SiteId = P.M.NextSiteId + 7;
  AnalysisReport R = runAudits(P, onlyRules("audit-callgraph"));
  std::vector<Finding> Hits = findingsForRule(R, kRuleAuditCallGraph);
  ASSERT_FALSE(Hits.empty());
  EXPECT_NE(Hits[0].Message.find("dangling site id"), std::string::npos);
}

TEST(AnalysisAudit, CallGraphFlagsArityMismatch) {
  InlinedProgram P = makeInlinedCallHeavy();
  Instr *Call = findAnyCall(P.M);
  ASSERT_NE(Call, nullptr);
  Call->Args.push_back(0);
  AnalysisReport R = runAudits(P, onlyRules("audit-callgraph"));
  bool Found = false;
  for (const Finding &F : findingsForRule(R, kRuleAuditCallGraph))
    Found |= F.Message.find("arity mismatch") != std::string::npos;
  EXPECT_TRUE(Found) << R.renderText();
}

TEST(AnalysisAudit, CallGraphFlagsPhantomExpansion) {
  // The plan claims a still-present site was expanded; both halves of the
  // inconsistency must surface (call present + no expansion record).
  InlinedProgram P = makeInlinedCallHeavy();
  Instr *Call = findAnyCall(P.M);
  ASSERT_NE(Call, nullptr);
  PlannedSite Phantom;
  Phantom.SiteId = Call->SiteId;
  Phantom.Caller = 0;
  Phantom.Status = ArcStatus::Expanded;
  // Replace any real ruling on this site so findSite sees the phantom.
  std::erase_if(P.Inline.Plan.Sites, [&](const PlannedSite &S) {
    return S.SiteId == Phantom.SiteId;
  });
  P.Inline.Plan.Sites.push_back(Phantom);
  AnalysisReport R = runAudits(P, onlyRules("audit-callgraph"));
  bool StillPresent = false, NoRecord = false;
  for (const Finding &F : findingsForRule(R, kRuleAuditCallGraph)) {
    StillPresent |=
        F.Message.find("call is still present") != std::string::npos;
    NoRecord |= F.Message.find("no expansion record") != std::string::npos;
  }
  EXPECT_TRUE(StillPresent) << R.renderText();
  EXPECT_TRUE(NoRecord) << R.renderText();
}

TEST(AnalysisAudit, WeightConservationCleanOnRealResult) {
  InlinedProgram P = makeInlinedCallHeavy();
  AnalysisReport R = runAudits(P, onlyRules("audit-weight-conservation"));
  EXPECT_EQ(R.countSeverity(Severity::Error), 0u) << R.renderText();
}

TEST(AnalysisAudit, WeightConservationCatchesBrokenRedistribution) {
  // The historical bug class this audit exists for: redistribution that
  // zeroes the expanded arc but forgets to shrink the callee's node
  // weight. The test-only switch reintroduces it.
  InlinedProgram P = makeInlinedCallHeavy();
  ASSERT_FALSE(P.Inline.Expansions.empty());
  setWeightRedistributionBugForTest(true);
  AnalysisReport Broken = runAudits(P, onlyRules("audit-weight-conservation"));
  setWeightRedistributionBugForTest(false);
  std::vector<Finding> Hits =
      findingsForRule(Broken, kRuleAuditWeightConservation);
  ASSERT_FALSE(Hits.empty());
  EXPECT_EQ(Hits[0].Sev, Severity::Error);
  EXPECT_NE(Hits[0].Message.find("does not match incoming arc weight"),
            std::string::npos);
  // And the same program audits clean once the defect is gone again.
  AnalysisReport Clean = runAudits(P, onlyRules("audit-weight-conservation"));
  EXPECT_EQ(Clean.countSeverity(Severity::Error), 0u) << Clean.renderText();
}

TEST(AnalysisAudit, LinearizationCleanOnRealResult) {
  InlinedProgram P = makeInlinedCallHeavy();
  AnalysisReport R = runAudits(P, onlyRules("audit-linearization"));
  EXPECT_EQ(R.countSeverity(Severity::Error), 0u) << R.renderText();
}

TEST(AnalysisAudit, LinearizationFlagsOrderViolation) {
  InlinedProgram P = makeInlinedCallHeavy();
  ASSERT_FALSE(P.Inline.Expansions.empty());
  const ExpansionRecord &Rec = P.Inline.Expansions.front();
  std::swap(P.Inline.Linear.Position[static_cast<size_t>(Rec.Caller)],
            P.Inline.Linear.Position[static_cast<size_t>(Rec.Callee)]);
  AnalysisReport R = runAudits(P, onlyRules("audit-linearization"));
  std::vector<Finding> Hits = findingsForRule(R, kRuleAuditLinearization);
  ASSERT_FALSE(Hits.empty());
  EXPECT_EQ(Hits[0].Sev, Severity::Error);
}

TEST(AnalysisAudit, LinearizationFlagsRecordOutsideSequence) {
  InlinedProgram P = makeInlinedCallHeavy();
  ExpansionRecord Bogus;
  Bogus.SiteId = 1;
  Bogus.Caller = 9999;
  Bogus.Callee = 0;
  P.Inline.Expansions.push_back(Bogus);
  AnalysisReport R = runAudits(P, onlyRules("audit-linearization"));
  bool Found = false;
  for (const Finding &F : findingsForRule(R, kRuleAuditLinearization))
    Found |= F.Message.find("outside the linear sequence") !=
             std::string::npos;
  EXPECT_TRUE(Found) << R.renderText();
}

//===----------------------------------------------------------------------===//
// Pipeline integration
//===----------------------------------------------------------------------===//

std::vector<RunInput> pipelineInputs() {
  return {RunInput{std::string(50, 'x'), ""}};
}

TEST(AnalyzePipeline, CleanProgramSurvivesWithAnalyzeOn) {
  PipelineOptions Options;
  Options.Analyze = true;
  PipelineResult R = runPipeline(test::kCallHeavyProgram, "callheavy",
                                 pipelineInputs(), Options);
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.Analysis.countSeverity(Severity::Error), 0u)
      << R.Analysis.renderText();
  EXPECT_TRUE(R.outputsMatch());
}

TEST(AnalyzePipeline, ErrorFindingsQuarantineTheUnit) {
  PipelineOptions Options;
  Options.Analyze = true;
  setWeightRedistributionBugForTest(true);
  PipelineResult R = runPipeline(test::kCallHeavyProgram, "callheavy",
                                 pipelineInputs(), Options);
  setWeightRedistributionBugForTest(false);
  ASSERT_FALSE(R.Ok);
  EXPECT_EQ(R.Failure.Stage, "analyze");
  EXPECT_EQ(R.Failure.Reason, "finding");
  EXPECT_EQ(R.Failure.Unit, "callheavy");
  EXPECT_EQ(R.Stats.UnitsFailed, 1u);
  EXPECT_NE(R.Error.find(kRuleAuditWeightConservation), std::string::npos);
  // The full report survives quarantine for rendering.
  EXPECT_GT(R.Analysis.countSeverity(Severity::Error), 0u);
}

TEST(AnalyzePipeline, SurvivorsBitIdenticalWithAnalyzeOnOrOff) {
  PipelineOptions Off;
  PipelineOptions On;
  On.Analyze = true;
  PipelineResult A = runPipeline(test::kCallHeavyProgram, "callheavy",
                                 pipelineInputs(), Off);
  PipelineResult B = runPipeline(test::kCallHeavyProgram, "callheavy",
                                 pipelineInputs(), On);
  ASSERT_TRUE(A.Ok && B.Ok);
  EXPECT_EQ(printModule(A.FinalModule), printModule(B.FinalModule));
  EXPECT_EQ(A.OutputsAfter, B.OutputsAfter);
  EXPECT_TRUE(A.Before == B.Before);
  EXPECT_TRUE(A.After == B.After);
  EXPECT_TRUE(A.Inline.Plan == B.Inline.Plan);
  // Analysis-off runs never spend analyze time or produce findings.
  EXPECT_EQ(A.Stats.AnalyzeSeconds, 0.0);
  EXPECT_TRUE(A.Analysis.Findings.empty());
}

TEST(AnalyzePipeline, RuleSelectionReachesTheStage) {
  PipelineOptions Options;
  Options.Analyze = true;
  std::string Error;
  ASSERT_TRUE(parseAnalysisRules("audit-safe-expansion,audit-callgraph",
                                 Options.Analysis, &Error))
      << Error;
  PipelineResult R = runPipeline(test::kCallHeavyProgram, "callheavy",
                                 pipelineInputs(), Options);
  ASSERT_TRUE(R.Ok) << R.Error;
  for (const Finding &F : R.Analysis.Findings)
    EXPECT_TRUE(F.Rule == kRuleAuditSafeExpansion ||
                F.Rule == kRuleAuditCallGraph)
        << F.render();
}

//===----------------------------------------------------------------------===//
// Dead-store findings under the widened optimizer
//===----------------------------------------------------------------------===//

size_t deadStoresAfter(std::string_view Source, const OptOptions &Passes) {
  Module M = test::compileOk(Source);
  runOptimizationPipeline(M, Passes);
  EXPECT_EQ(verifyModuleText(M), "");
  AnalysisReport R = analyzeModule(M, onlyRules("dead-store"));
  return findingsForRule(R, kRuleDeadStore).size();
}

TEST(AnalyzePipeline, DeadStoresNeverIncreaseUnderWidenedPipeline) {
  // Pipeline-level form of the dead-store audit: suite-wide, turning on
  // the post-inline trio (sccp, peephole, licm) on top of the quartet
  // must never mint new dead stores. LICM in particular moves stores-to-
  // registers across blocks and DCE follows it — any liveness regression
  // in that dance shows up here as a rising count.
  OptOptions Baseline;
  OptOptions Widened;
  std::string Error;
  ASSERT_TRUE(parseOptPasses("all,-tre", Widened, &Error)) << Error;
  for (const BenchmarkSpec &Spec : getBenchmarkSuite()) {
    SCOPED_TRACE(Spec.Name);
    EXPECT_LE(deadStoresAfter(Spec.Source, Widened),
              deadStoresAfter(Spec.Source, Baseline));
  }
}

TEST(AnalyzePipeline, DeadStoreFallsOnSccpAndLicmFixture) {
  // A fixture built to separate the analyses: s = 42 is dead (both paths
  // redefine s before t = s reads it), but use-count DCE keeps it because
  // s IS used downstream. Only SCCP can act — c joins to the constant 1,
  // the else arm goes unreachable, and the liveness-based dead-store
  // check (which skips unreachable blocks) loses the finding. The loop at
  // the end gives LICM real work in the same module, so the assertion
  // exercises the full widened pipeline, not SCCP alone.
  const char *Source =
      "extern int getchar();"
      "int main() { int c; int s; int t; int i; int a; int b; int acc;"
      "if (getchar()) c = 1; else c = 1;"
      "t = 0;"
      "if (c) { t = 5; }"
      "else { s = 42; if (getchar()) s = 1; else s = 2; t = s; }"
      "a = getchar(); b = getchar(); acc = 0;"
      "for (i = 0; i < t; i++) { acc = acc + a * b; }"
      "return acc + t; }";
  OptOptions Baseline;
  OptOptions Widened;
  std::string Error;
  ASSERT_TRUE(parseOptPasses("all,-tre", Widened, &Error)) << Error;

  size_t Before = deadStoresAfter(Source, Baseline);
  size_t After = deadStoresAfter(Source, Widened);
  EXPECT_GE(Before, 1u) << "the classic quartet must leave s = 42 behind";
  EXPECT_LT(After, Before)
      << "sccp + jump optimization must retire the dead store";

  // And the loop really was LICM territory: the invariant a * b sits at
  // loop depth 0 after the widened pipeline.
  Module M = test::compileOk(Source);
  runOptimizationPipeline(M, Widened);
  const Function &Main = M.getFunction(M.MainId);
  std::vector<unsigned> Depth = computeLoopDepths(Main);
  bool FoundMul = false;
  for (size_t B = 0; B != Main.Blocks.size(); ++B)
    for (const Instr &I : Main.Blocks[B].Instrs)
      if (I.Op == Opcode::Mul) {
        EXPECT_EQ(Depth[B], 0u) << "a * b must be hoisted";
        FoundMul = true;
      }
  EXPECT_TRUE(FoundMul);
}

} // namespace
