//===- tests/IntrinsicsTests.cpp - external function tests --------------------===//
//
// Part of the impact-inline project, distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "interp/Intrinsics.h"

#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace impact;
using test::compileOk;
using test::runSource;

namespace {

TEST(Intrinsics, RegistryKnowsAllNames) {
  for (const std::string &Name : IntrinsicRegistry::getNames())
    EXPECT_GE(IntrinsicRegistry::lookup(Name), 0) << Name;
  EXPECT_EQ(IntrinsicRegistry::lookup("no_such_intrinsic"), -1);
}

TEST(Intrinsics, GetcharReadsStreamThenEof) {
  EXPECT_EQ(runSource("extern int getchar(); extern int print_int(int v);"
                      "extern int putchar(int c);"
                      "int main() { int c; c = getchar();"
                      "while (c != -1) { putchar(c); c = getchar(); }"
                      "print_int(getchar()); return 0; }",
                      "ab"),
            "ab-1");
}

TEST(Intrinsics, Getchar2IsIndependent) {
  EXPECT_EQ(runSource("extern int getchar(); extern int getchar2();"
                      "extern int putchar(int c);"
                      "int main() { putchar(getchar()); putchar(getchar2());"
                      "putchar(getchar()); return 0; }",
                      "AB", "xy"),
            "AxB");
}

TEST(Intrinsics, UngetcharPushesBack) {
  EXPECT_EQ(runSource("extern int getchar(); extern int ungetchar(int c);"
                      "extern int putchar(int c);"
                      "int main() { int c; c = getchar(); ungetchar(c);"
                      "putchar(getchar()); putchar(getchar()); return 0; }",
                      "pq"),
            "pq");
}

TEST(Intrinsics, PrintIntFormatsNegative) {
  EXPECT_EQ(runSource("extern int print_int(int v);"
                      "int main() { print_int(-12345); return 0; }"),
            "-12345");
}

TEST(Intrinsics, ExitStopsProgramWithCode) {
  Module M = compileOk("extern int exit(int code); extern int putchar(int c);"
                       "int main() { putchar('a'); exit(7); putchar('b');"
                       "return 0; }");
  ExecResult R = runProgram(M);
  EXPECT_TRUE(R.ok());
  EXPECT_EQ(R.ExitCode, 7);
  EXPECT_EQ(R.Output, "a") << "nothing after exit executes";
}

TEST(Intrinsics, MallocReturnsZeroedDisjointBlocks) {
  EXPECT_EQ(runSource("extern int malloc(int n); extern int print_int(int v);"
                      "int main() { int *a; int *b;"
                      "a = malloc(4); b = malloc(4);"
                      "a[3] = 9; print_int(b[0]); print_int(a[3]);"
                      "print_int(b != a); return 0; }"),
            "091");
}

TEST(Intrinsics, InputAvailCounts) {
  EXPECT_EQ(runSource("extern int input_avail(); extern int getchar();"
                      "extern int print_int(int v);"
                      "int main() { print_int(input_avail()); getchar();"
                      "print_int(input_avail()); return 0; }",
                      "abc"),
            "32");
}

TEST(Intrinsics, ReadBlockFillsMemory) {
  EXPECT_EQ(runSource("extern int read_block(int *buf, int max);"
                      "extern int print_int(int v); extern int putchar(int c);"
                      "int buf[16];"
                      "int main() { int n; n = read_block(&buf[0], 16);"
                      "print_int(n); putchar(buf[0]); putchar(buf[3]);"
                      "return 0; }",
                      "wxyz"),
            "4wz");
}

TEST(Intrinsics, ReadBlockRespectsMax) {
  EXPECT_EQ(runSource("extern int read_block(int *buf, int max);"
                      "extern int print_int(int v);"
                      "int buf[4];"
                      "int main() { print_int(read_block(&buf[0], 2));"
                      "print_int(read_block(&buf[0], 99)); return 0; }",
                      "abcd"),
            "22");
}

TEST(Intrinsics, WriteBlockEmitsMemory) {
  EXPECT_EQ(runSource("extern int write_block(int *buf, int n);"
                      "int buf[4];"
                      "int main() { buf[0] = 'h'; buf[1] = 'i';"
                      "write_block(&buf[0], 2); return 0; }"),
            "hi");
}

TEST(Intrinsics, UnknownExternTrapsAtCall) {
  Module M = compileOk("extern int mystery(); int main() { return mystery(); }");
  ExecResult R = runProgram(M);
  EXPECT_EQ(R.St, ExecResult::Status::Trapped);
  EXPECT_NE(R.TrapMessage.find("unknown external function"),
            std::string::npos);
}

TEST(Intrinsics, ExternalCallsCountAsDynamicCalls) {
  Module M = compileOk("extern int putchar(int c);"
                       "int main() { putchar('x'); putchar('y'); return 0; }");
  ExecResult R = test::runOk(M);
  EXPECT_EQ(R.Stats.DynamicCalls, 2u);
  EXPECT_EQ(R.Stats.ExternalCalls, 2u);
}

} // namespace
