//===- tests/OptTests.cpp - classic optimization pass tests -------------------===//
//
// Part of the impact-inline project, distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "opt/ConstantFolding.h"
#include "opt/CopyPropagation.h"
#include "opt/DeadCodeElimination.h"
#include "opt/JumpOptimization.h"
#include "opt/PassManager.h"

#include "ir/IrVerifier.h"

#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace impact;
using test::compileOk;

namespace {

size_t countOps(const Function &F, Opcode Op) {
  size_t N = 0;
  for (const BasicBlock &B : F.Blocks)
    for (const Instr &I : B.Instrs)
      N += I.Op == Op ? 1 : 0;
  return N;
}

/// Checks a pass preserves behaviour on a source program + input.
template <typename PassFn>
void expectPreserves(PassFn Pass, const char *Source,
                     const std::string &Input) {
  Module M = compileOk(Source);
  RunOptions Opts;
  Opts.Input = Input;
  ExecResult Before = runProgram(M, Opts);
  ASSERT_TRUE(Before.ok()) << Before.TrapMessage;
  Pass(M);
  ASSERT_EQ(verifyModuleText(M), "");
  ExecResult After = runProgram(M, Opts);
  ASSERT_TRUE(After.ok()) << After.TrapMessage;
  EXPECT_EQ(Before.Output, After.Output);
  EXPECT_EQ(Before.ExitCode, After.ExitCode);
  EXPECT_LE(After.Stats.InstrCount, Before.Stats.InstrCount)
      << "optimization should never execute more instructions";
}

//===----------------------------------------------------------------------===//
// Constant folding
//===----------------------------------------------------------------------===//

TEST(ConstantFolding, FoldsArithmeticChains) {
  Module M = compileOk("int main() { return 2 + 3 * 4; }");
  EXPECT_TRUE(runConstantFolding(M));
  const Function &Main = M.getFunction(M.MainId);
  EXPECT_EQ(countOps(Main, Opcode::Add), 0u);
  EXPECT_EQ(countOps(Main, Opcode::Mul), 0u);
  EXPECT_EQ(runProgram(M).ExitCode, 14);
}

TEST(ConstantFolding, FoldsUnaryAndComparisons) {
  Module M = compileOk("int main() { return -(3) < 2; }");
  runConstantFolding(M);
  EXPECT_EQ(countOps(M.getFunction(M.MainId), Opcode::CmpLt), 0u);
  EXPECT_EQ(runProgram(M).ExitCode, 1);
}

TEST(ConstantFolding, BranchOnConstantBecomesJump) {
  Module M = compileOk("int main() { if (1) return 7; return 8; }");
  runConstantFolding(M);
  EXPECT_EQ(countOps(M.getFunction(M.MainId), Opcode::CondBr), 0u);
  EXPECT_EQ(runProgram(M).ExitCode, 7);
}

TEST(ConstantFolding, PreservesDivisionByZeroTrap) {
  Module M = compileOk("int main() { return 1 / 0; }");
  runConstantFolding(M);
  ExecResult R = runProgram(M);
  EXPECT_EQ(R.St, ExecResult::Status::Trapped)
      << "the fold must not erase the runtime trap";
}

TEST(ConstantFolding, DoesNotFoldAcrossCalls) {
  // The constant tracker must reset knowledge killed by redefinition.
  Module M = compileOk("extern int getchar();"
                       "int main() { int x; x = 5; x = getchar();"
                       "return x + 0; }");
  runConstantFolding(M);
  RunOptions Opts;
  Opts.Input = "A";
  EXPECT_EQ(runProgram(M, Opts).ExitCode, 'A');
}

TEST(ConstantFolding, PreservesBehaviour) {
  expectPreserves([](Module &M) { runConstantFolding(M); },
                  test::kCallHeavyProgram, "hello world");
}

//===----------------------------------------------------------------------===//
// Jump optimization
//===----------------------------------------------------------------------===//

TEST(JumpOptimization, RemovesUnreachableBlocks) {
  Module M = compileOk("int main() { return 1; return 2; }");
  size_t Before = M.getFunction(M.MainId).Blocks.size();
  runJumpOptimization(M);
  EXPECT_LT(M.getFunction(M.MainId).Blocks.size(), Before);
  EXPECT_EQ(verifyModuleText(M), "");
  EXPECT_EQ(runProgram(M).ExitCode, 1);
}

TEST(JumpOptimization, CollapsesStraightLineChains) {
  Module M = compileOk(
      "int main() { int x; x = 1; { x = x + 1; } { x = x + 2; } return x; }");
  runJumpOptimization(M);
  // Everything is straight-line: a single block should remain.
  EXPECT_EQ(M.getFunction(M.MainId).Blocks.size(), 1u);
  EXPECT_EQ(runProgram(M).ExitCode, 4);
}

TEST(JumpOptimization, ThreadsJumpChains) {
  // Build f manually: bb0 -> bb1 -> bb2 -> ret.
  Module M;
  FuncId Id = M.addFunction("main", 0, false, false);
  Function &F = M.getFunction(Id);
  BlockId B0 = F.addBlock(), B1 = F.addBlock(), B2 = F.addBlock(),
          B3 = F.addBlock();
  Reg R = F.addReg();
  F.getBlock(B0).Instrs.push_back(Instr::makeLdImm(R, 5));
  F.getBlock(B0).Instrs.push_back(Instr::makeJump(B1));
  F.getBlock(B1).Instrs.push_back(Instr::makeJump(B2));
  F.getBlock(B2).Instrs.push_back(Instr::makeJump(B3));
  F.getBlock(B3).Instrs.push_back(Instr::makeRet(R));
  M.MainId = Id;
  ASSERT_EQ(verifyModuleText(M), "");
  runJumpOptimization(F);
  EXPECT_EQ(F.Blocks.size(), 1u);
  EXPECT_EQ(runProgram(M).ExitCode, 5);
}

TEST(JumpOptimization, CondBrSameTargetsBecomesJump) {
  Module M;
  FuncId Id = M.addFunction("main", 0, false, false);
  Function &F = M.getFunction(Id);
  BlockId B0 = F.addBlock(), B1 = F.addBlock();
  Reg R = F.addReg();
  F.getBlock(B0).Instrs.push_back(Instr::makeLdImm(R, 3));
  F.getBlock(B0).Instrs.push_back(Instr::makeCondBr(R, B1, B1));
  F.getBlock(B1).Instrs.push_back(Instr::makeRet(R));
  M.MainId = Id;
  runJumpOptimization(F);
  EXPECT_EQ(countOps(F, Opcode::CondBr), 0u);
  EXPECT_EQ(runProgram(M).ExitCode, 3);
}

TEST(JumpOptimization, InfiniteLoopSurvives) {
  Module M = compileOk("int main() { while (1) { } return 0; }");
  runConstantFolding(M);
  runJumpOptimization(M);
  EXPECT_EQ(verifyModuleText(M), "");
  RunOptions Opts;
  Opts.StepLimit = 1000;
  EXPECT_EQ(runProgram(M, Opts).St, ExecResult::Status::StepLimitExceeded);
}

TEST(JumpOptimization, PreservesBehaviour) {
  expectPreserves([](Module &M) { runJumpOptimization(M); },
                  test::kCallHeavyProgram, "jump around");
}

//===----------------------------------------------------------------------===//
// Copy propagation
//===----------------------------------------------------------------------===//

TEST(CopyPropagation, DropsSelfMoves) {
  Module M;
  FuncId Id = M.addFunction("main", 0, false, false);
  Function &F = M.getFunction(Id);
  BlockId B = F.addBlock();
  Reg R = F.addReg();
  F.getBlock(B).Instrs.push_back(Instr::makeLdImm(R, 1));
  F.getBlock(B).Instrs.push_back(Instr::makeMov(R, R));
  F.getBlock(B).Instrs.push_back(Instr::makeRet(R));
  M.MainId = Id;
  EXPECT_TRUE(runCopyPropagation(F));
  EXPECT_EQ(countOps(F, Opcode::Mov), 0u);
  EXPECT_EQ(runProgram(M).ExitCode, 1);
}

TEST(CopyPropagation, ForwardsThroughCopies) {
  Module M;
  FuncId Id = M.addFunction("main", 0, false, false);
  Function &F = M.getFunction(Id);
  BlockId B = F.addBlock();
  Reg A = F.addReg(), C = F.addReg(), D = F.addReg();
  F.getBlock(B).Instrs.push_back(Instr::makeLdImm(A, 9));
  F.getBlock(B).Instrs.push_back(Instr::makeMov(C, A));
  F.getBlock(B).Instrs.push_back(Instr::makeBinary(Opcode::Add, D, C, C));
  F.getBlock(B).Instrs.push_back(Instr::makeRet(D));
  M.MainId = Id;
  EXPECT_TRUE(runCopyPropagation(F));
  // The add now reads A directly.
  EXPECT_EQ(F.Blocks[0].Instrs[2].Src1, A);
  EXPECT_EQ(F.Blocks[0].Instrs[2].Src2, A);
  EXPECT_EQ(runProgram(M).ExitCode, 18);
}

TEST(CopyPropagation, StopsAtSourceRedefinition) {
  Module M;
  FuncId Id = M.addFunction("main", 0, false, false);
  Function &F = M.getFunction(Id);
  BlockId B = F.addBlock();
  Reg A = F.addReg(), C = F.addReg();
  F.getBlock(B).Instrs.push_back(Instr::makeLdImm(A, 1));
  F.getBlock(B).Instrs.push_back(Instr::makeMov(C, A));
  F.getBlock(B).Instrs.push_back(Instr::makeLdImm(A, 2)); // kills the copy
  F.getBlock(B).Instrs.push_back(Instr::makeRet(C));
  M.MainId = Id;
  runCopyPropagation(F);
  EXPECT_EQ(F.Blocks[0].Instrs.back().Src1, C)
      << "the use of C must NOT be rewritten to the redefined A";
  EXPECT_EQ(runProgram(M).ExitCode, 1);
}

TEST(CopyPropagation, PreservesBehaviour) {
  expectPreserves([](Module &M) { runCopyPropagation(M); },
                  test::kCallHeavyProgram, "copy cat");
}

//===----------------------------------------------------------------------===//
// Dead code elimination
//===----------------------------------------------------------------------===//

TEST(DeadCodeElimination, RemovesUnusedPureDefs) {
  Module M;
  FuncId Id = M.addFunction("main", 0, false, false);
  Function &F = M.getFunction(Id);
  BlockId B = F.addBlock();
  Reg A = F.addReg(), C = F.addReg(), D = F.addReg();
  F.getBlock(B).Instrs.push_back(Instr::makeLdImm(A, 1));
  F.getBlock(B).Instrs.push_back(Instr::makeLdImm(C, 2)); // dead
  F.getBlock(B).Instrs.push_back(Instr::makeBinary(Opcode::Add, D, A, A));
  F.getBlock(B).Instrs.push_back(Instr::makeRet(D));
  M.MainId = Id;
  EXPECT_TRUE(runDeadCodeElimination(F));
  EXPECT_EQ(F.Blocks[0].Instrs.size(), 3u);
  (void)C;
}

TEST(DeadCodeElimination, CascadesThroughChains) {
  Module M;
  FuncId Id = M.addFunction("main", 0, false, false);
  Function &F = M.getFunction(Id);
  BlockId B = F.addBlock();
  Reg A = F.addReg(), C = F.addReg(), D = F.addReg(), E = F.addReg();
  // A feeds C feeds D; none used by the ret.
  F.getBlock(B).Instrs.push_back(Instr::makeLdImm(A, 1));
  F.getBlock(B).Instrs.push_back(Instr::makeBinary(Opcode::Add, C, A, A));
  F.getBlock(B).Instrs.push_back(Instr::makeBinary(Opcode::Mul, D, C, C));
  F.getBlock(B).Instrs.push_back(Instr::makeLdImm(E, 0));
  F.getBlock(B).Instrs.push_back(Instr::makeRet(E));
  M.MainId = Id;
  runDeadCodeElimination(F);
  EXPECT_EQ(F.Blocks[0].Instrs.size(), 2u) << "whole chain removed";
}

TEST(DeadCodeElimination, KeepsCallsAndStores) {
  Module M = compileOk("extern int putchar(int c);"
                       "int g;"
                       "int main() { putchar('x'); g = 3; return 0; }");
  runDeadCodeElimination(M);
  ExecResult R = test::runOk(M);
  EXPECT_EQ(R.Output, "x");
}

TEST(DeadCodeElimination, PreservesBehaviour) {
  expectPreserves([](Module &M) { runDeadCodeElimination(M); },
                  test::kCallHeavyProgram, "dead code");
}

//===----------------------------------------------------------------------===//
// Pipeline
//===----------------------------------------------------------------------===//

TEST(PassManager, PipelineReachesFixpoint) {
  Module M = compileOk("int main() { int x; x = 2 + 3; int y; y = x;"
                       "return y * 1 + 0 * 7; }");
  EXPECT_TRUE(runOptimizationPipeline(M));
  EXPECT_EQ(verifyModuleText(M), "");
  EXPECT_EQ(runProgram(M).ExitCode, 5);
  // A second run must find nothing left to do.
  EXPECT_FALSE(runOptimizationPipeline(M));
}

TEST(PassManager, RespectsDisabledPasses) {
  Module M = compileOk("int main() { return 1 + 2; }");
  OptOptions Opts;
  Opts.ConstantFolding = false;
  Opts.CopyPropagation = false;
  Opts.DeadCodeElimination = false;
  Opts.JumpOptimization = false;
  EXPECT_FALSE(runOptimizationPipeline(M, Opts));
}

TEST(PassManager, ShrinksBenchmarkPrograms) {
  Module M = compileOk(test::kCallHeavyProgram);
  size_t Before = M.size();
  runOptimizationPipeline(M);
  EXPECT_LE(M.size(), Before);
  EXPECT_EQ(verifyModuleText(M), "");
}

TEST(PassManager, PreservesBehaviourOnPointerProgram) {
  expectPreserves([](Module &M) { runOptimizationPipeline(M); },
                  test::kPointerCallProgram, "mixed input 123");
}

TEST(PassManager, PreservesBehaviourOnRecursiveProgram) {
  expectPreserves([](Module &M) { runOptimizationPipeline(M); },
                  test::kRecursiveProgram, "abcdefgh");
}

} // namespace
