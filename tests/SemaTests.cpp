//===- tests/SemaTests.cpp - MiniC semantic analysis tests -------------------===//
//
// Part of the impact-inline project, distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "frontend/Parser.h"
#include "frontend/Sema.h"
#include "support/SourceManager.h"

#include <gtest/gtest.h>

using namespace impact;

namespace {

struct SemaRun {
  bool Ok = false;
  std::string Errors;
  std::unique_ptr<TranslationUnit> TU;
};

SemaRun analyze(std::string_view Text, bool RequireMain = false) {
  SemaRun Result;
  SourceManager SM("test", std::string(Text));
  DiagnosticEngine Diags;
  Parser P(SM.getText(), Diags);
  Result.TU = P.parseTranslationUnit();
  EXPECT_FALSE(Diags.hasErrors()) << "test inputs must parse cleanly";
  SemaOptions Opts;
  Opts.RequireMain = RequireMain;
  Sema S(Diags, Opts);
  Result.Ok = S.analyze(*Result.TU);
  Result.Errors = Diags.render(SM);
  return Result;
}

void expectError(std::string_view Text, std::string_view Needle) {
  SemaRun R = analyze(Text);
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Errors.find(Needle), std::string::npos)
      << "missing '" << Needle << "' in:\n"
      << R.Errors;
}

TEST(Sema, AcceptsValidProgram) {
  EXPECT_TRUE(analyze("int g; int f(int x) { return x + g; }").Ok);
}

TEST(Sema, UndeclaredIdentifier) {
  expectError("int f() { return nope; }", "undeclared identifier 'nope'");
}

TEST(Sema, RedefinitionSameScope) {
  expectError("int f() { int x; int x; return 0; }", "redefinition of 'x'");
}

TEST(Sema, ShadowingInNestedScopeIsAllowed) {
  EXPECT_TRUE(analyze("int f() { int x; { int x; x = 1; } return x; }").Ok);
}

TEST(Sema, GlobalRedefinition) {
  expectError("int g; int g;", "redefinition of 'g'");
}

TEST(Sema, ForwardCallWithoutPrototype) {
  EXPECT_TRUE(analyze("int f() { return g(); } int g() { return 1; }").Ok);
}

TEST(Sema, MutualRecursionResolves) {
  EXPECT_TRUE(analyze("int even(int n) { return n == 0 ? 1 : odd(n - 1); }"
                      "int odd(int n) { return n == 0 ? 0 : even(n - 1); }")
                  .Ok);
}

TEST(Sema, CallArityChecked) {
  expectError("int f(int a, int b) { return 0; } int g() { return f(1); }",
              "expects 2 arguments, got 1");
}

TEST(Sema, AssignToRValueRejected) {
  expectError("int f() { 1 = 2; return 0; }", "not an lvalue");
}

TEST(Sema, AssignToArrayNameRejected) {
  expectError("int f() { int a[4]; a = 0; return 0; }", "not an lvalue");
}

TEST(Sema, AssignThroughPointerAllowed) {
  EXPECT_TRUE(analyze("int f(int *p) { *p = 3; p[1] = 4; return 0; }").Ok);
}

TEST(Sema, IncrementNeedsLValue) {
  expectError("int f() { return (1 + 2)++; }", "not an lvalue");
}

TEST(Sema, DerefNonPointerRejected) {
  expectError("int f(int x) { return *x; }", "dereference a non-pointer");
}

TEST(Sema, IndexNonPointerRejected) {
  expectError("int f(int x) { return x[0]; }",
              "subscripted value is not a pointer or array");
}

TEST(Sema, ArrayDecaysToPointer) {
  EXPECT_TRUE(analyze("int f() { int a[4]; int *p; p = a; return p[0]; }").Ok);
}

TEST(Sema, AddressOfVariableAllowed) {
  SemaRun R = analyze("int f() { int x; int *p; p = &x; return *p; }");
  EXPECT_TRUE(R.Ok);
}

TEST(Sema, AddressOfMarksVariable) {
  SemaRun R = analyze("int f() { int x; return *(&x); }");
  ASSERT_TRUE(R.Ok);
  // Walk to the VarDecl and check the flag.
  auto *F = cast<FunctionDecl>(R.TU->Decls.at(0).get());
  auto *Body = cast<CompoundStmt>(F->getBody());
  auto *DS = cast<DeclStmt>(Body->getBody().at(0).get());
  EXPECT_TRUE(DS->getVar()->isAddressTaken());
}

TEST(Sema, AddressOfArrayRejected) {
  expectError("int f() { int a[4]; return *(&a); }", "redundant");
}

TEST(Sema, AddressOfRValueRejected) {
  expectError("int f() { return *(&(1 + 2)); }", "address of an rvalue");
}

TEST(Sema, FunctionNameAsValueMarksAddressTaken) {
  SemaRun R = analyze("int cb(int x) { return x; } int (*h)(int);"
                      "int f() { h = cb; return 0; }");
  ASSERT_TRUE(R.Ok);
  auto *Cb = R.TU->findFunction("cb");
  EXPECT_TRUE(Cb->isAddressTaken());
}

TEST(Sema, DirectCallDoesNotMarkAddressTaken) {
  SemaRun R = analyze("int cb(int x) { return x; }"
                      "int f() { return cb(1); }");
  ASSERT_TRUE(R.Ok);
  EXPECT_FALSE(R.TU->findFunction("cb")->isAddressTaken());
}

TEST(Sema, IndirectCallThroughFuncPtr) {
  EXPECT_TRUE(analyze("int cb(int x) { return x; } int (*h)(int);"
                      "int f() { h = cb; return h(3); }")
                  .Ok);
}

TEST(Sema, IndirectCallArityChecked) {
  expectError("int (*h)(int, int); int f() { return h(1); }",
              "indirect call expects 2 arguments, got 1");
}

TEST(Sema, CallingNonFunctionRejected) {
  expectError("int f(int x) { return x(1); }",
              "not a function or function pointer");
}

TEST(Sema, VoidFunctionReturnValueRejected) {
  expectError("void f() { return 3; }", "cannot return a value");
}

TEST(Sema, NonVoidReturnWithoutValueRejected) {
  expectError("int f() { return; }", "must return a value");
}

TEST(Sema, VoidCallInExpressionRejected) {
  expectError("void v() { } int f() { return v() + 1; }",
              "binary operand must have scalar type");
}

TEST(Sema, BreakOutsideLoopRejected) {
  expectError("int f() { break; return 0; }", "'break' outside a loop");
}

TEST(Sema, ContinueOutsideLoopRejected) {
  expectError("int f() { continue; return 0; }", "'continue' outside a loop");
}

TEST(Sema, BreakInsideLoopAccepted) {
  EXPECT_TRUE(
      analyze("int f() { while (1) { break; } return 0; }").Ok);
}

TEST(Sema, GlobalInitializerMustBeConstant) {
  expectError("int a; int b = a;", "must be an integer constant");
}

TEST(Sema, GlobalInitializerNegatedLiteral) {
  EXPECT_TRUE(analyze("int g = -5;").Ok);
}

TEST(Sema, GlobalInitializerFunctionAddress) {
  EXPECT_TRUE(analyze("int cb(int x) { return x; } int (*h)(int) = cb;").Ok);
}

TEST(Sema, MainRequiredWhenAsked) {
  SemaRun R = analyze("int f() { return 0; }");
  EXPECT_TRUE(R.Ok) << "no-main fragments allowed when not required";

  SourceManager SM("t", "int f() { return 0; }");
  DiagnosticEngine Diags;
  Parser P(SM.getText(), Diags);
  auto TU = P.parseTranslationUnit();
  Sema S(Diags); // RequireMain defaults to true
  EXPECT_FALSE(S.analyze(*TU));
}

TEST(Sema, MainWithParamsRejected) {
  SourceManager SM("t", "int main(int x) { return 0; }");
  DiagnosticEngine Diags;
  Parser P(SM.getText(), Diags);
  auto TU = P.parseTranslationUnit();
  Sema S(Diags);
  EXPECT_FALSE(S.analyze(*TU));
}

TEST(Sema, ForInitScopesOverLoop) {
  EXPECT_TRUE(
      analyze("int f() { for (int i = 0; i < 3; i++) { i = i; } return 0; }")
          .Ok);
  expectError("int f() { for (int i = 0; i < 3; i++) { } return i; }",
              "undeclared identifier 'i'");
}

TEST(Sema, ConditionMustBeScalar) {
  expectError("void v() { } int f() { if (v()) return 1; return 0; }",
              "if condition must have scalar type");
}

TEST(Sema, PointerArithmeticTypes) {
  SemaRun R = analyze("int f(int *p) { return *(p + 2); }");
  EXPECT_TRUE(R.Ok);
}

} // namespace
