//===- tests/TailRecursionTests.cpp - tail recursion elimination tests --------===//
//
// Part of the impact-inline project, distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "opt/TailRecursionElimination.h"

#include "callgraph/CallGraphBuilder.h"
#include "core/InlinePass.h"
#include "ir/IrVerifier.h"
#include "opt/PassManager.h"
#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace impact;
using test::compileOk;

namespace {

size_t countCalls(const Function &F) {
  size_t N = 0;
  for (const BasicBlock &B : F.Blocks)
    for (const Instr &I : B.Instrs)
      N += I.isCall() ? 1 : 0;
  return N;
}

TEST(TailRecursion, RewritesCountdownLoop) {
  Module M = compileOk("int down(int n, int acc) {"
                       "if (n == 0) return acc;"
                       "return down(n - 1, acc + n); }"
                       "int main() { return down(10, 0); }");
  Function &Down = M.getFunction(M.findFunction("down"));
  ASSERT_EQ(countCalls(Down), 1u);
  EXPECT_TRUE(runTailRecursionElimination(Down));
  EXPECT_EQ(countCalls(Down), 0u);
  EXPECT_EQ(verifyModuleText(M), "");
  EXPECT_EQ(runProgram(M).ExitCode, 55);
}

TEST(TailRecursion, SwappedArgumentsStageCorrectly) {
  // f(p1, p0) must swap, not duplicate, the parameter registers.
  Module M = compileOk("extern int print_int(int v);"
                       "int spin(int a, int b, int n) {"
                       "if (n == 0) return a * 100 + b;"
                       "return spin(b, a, n - 1); }"
                       "int main() { print_int(spin(3, 7, 5));"
                       "return 0; }");
  runTailRecursionElimination(M);
  EXPECT_EQ(verifyModuleText(M), "");
  EXPECT_EQ(test::runOk(M).Output, "703");
}

TEST(TailRecursion, NonTailCallUntouched) {
  // fib's recursive calls feed an addition: not tail position.
  Module M = compileOk("int fib(int n) { if (n < 2) return n;"
                       "return fib(n - 1) + fib(n - 2); }"
                       "int main() { return fib(10); }");
  EXPECT_FALSE(runTailRecursionElimination(M));
  EXPECT_EQ(runProgram(M).ExitCode, 55);
}

TEST(TailRecursion, SkipsFunctionsWithFrames) {
  // A reused frame would carry the previous iteration's array contents.
  Module M = compileOk("int walk(int n) { int buf[4]; buf[0] = n;"
                       "if (n == 0) return buf[0];"
                       "return walk(n - 1); }"
                       "int main() { return walk(5); }");
  EXPECT_FALSE(runTailRecursionElimination(M));
}

TEST(TailRecursion, VoidTailCall) {
  Module M = compileOk("extern int putchar(int c);"
                       "int g;"
                       "void pump(int n) { if (n == 0) return;"
                       "g = g + n; pump(n - 1); }"
                       "int main() { g = 0; pump(4); return g; }");
  EXPECT_TRUE(runTailRecursionElimination(M));
  EXPECT_EQ(verifyModuleText(M), "");
  EXPECT_EQ(runProgram(M).ExitCode, 10);
}

TEST(TailRecursion, DeepRecursionNoLongerOverflows) {
  Module M = compileOk("int down(int n) { if (n == 0) return 0;"
                       "return down(n - 1); }"
                       "extern int getchar();"
                       "int main() { int d; d = 0;"
                       "while (getchar() != -1) d = d + 1000;"
                       "return down(d); }");
  RunOptions Opts;
  Opts.Input = std::string(20, 'x'); // depth 20000
  Opts.StackWords = 4000;            // far too small for real recursion
  ExecResult Before = runProgram(M, Opts);
  EXPECT_EQ(Before.St, ExecResult::Status::Trapped);

  runTailRecursionElimination(M);
  ExecResult After = runProgram(M, Opts);
  EXPECT_TRUE(After.ok()) << After.TrapMessage;
  EXPECT_EQ(After.ExitCode, 0);
}

TEST(TailRecursion, RemovesRecursionFromCallGraph) {
  Module M = compileOk("int down(int n) { if (n == 0) return 0;"
                       "return down(n - 1); }"
                       "int main() { return down(9); }");
  CallGraph Before = buildCallGraph(M, nullptr);
  EXPECT_TRUE(Before.isRecursive(M.findFunction("down")));
  runTailRecursionElimination(M);
  CallGraph After = buildCallGraph(M, nullptr);
  EXPECT_FALSE(After.isRecursive(M.findFunction("down")))
      << "TRE must take the function off its cycle";
}

TEST(TailRecursion, UnlocksFullCallElimination) {
  // Inlining a call *to* a recursive function only absorbs its first
  // iteration (§2.3): the inlined clone still calls down recursively.
  // After TRE the function is an ordinary loop, so the same expansion
  // removes every dynamic call.
  const char *Src = "int down(int n, int acc) {"
                    "if (n == 0) return acc;"
                    "return down(n - 1, acc + n); }"
                    "extern int getchar(); extern int print_int(int v);"
                    "int main() { int c; int t; t = 0; c = getchar();"
                    "while (c != -1) { t = t + down(c % 8, 0);"
                    "c = getchar(); } print_int(t); return 0; }";

  std::string Input(40, 'g'); // 'g' % 8 == 7: seven recursion levels/call
  std::string ExpectedOutput;
  auto RemainingCalls = [&](bool Tre) {
    Module M = compileOk(Src);
    if (Tre)
      runTailRecursionElimination(M);
    ProfileResult P = test::profileInputs(M, {Input});
    InlineOptions Options;
    Options.CodeGrowthFactor = 4.0; // the program is tiny; don't let the
                                    // size budget mask the recursion story
    runInlineExpansion(M, P.Data, Options);
    EXPECT_EQ(verifyModuleText(M), "");
    ExecResult E = test::runOk(M, Input);
    if (ExpectedOutput.empty())
      ExpectedOutput = E.Output;
    EXPECT_EQ(E.Output, ExpectedOutput) << "behaviour must not change";
    // Subtract the unavoidable external calls (getchar/print_int).
    return E.Stats.DynamicCalls - E.Stats.ExternalCalls;
  };
  uint64_t Without = RemainingCalls(false);
  uint64_t With = RemainingCalls(true);
  EXPECT_GT(Without, 0u) << "recursive calls survive plain inlining";
  EXPECT_EQ(With, 0u) << "TRE + inlining removes every user-level call";
}

TEST(TailRecursion, PipelineFlagPreservesBehaviour) {
  Module M = compileOk(test::kRecursiveProgram);
  ExecResult Before = test::runOk(M, "abcdefgh");
  OptOptions Opts;
  Opts.TailRecursionElimination = true;
  runOptimizationPipeline(M, Opts);
  EXPECT_EQ(verifyModuleText(M), "");
  ExecResult After = test::runOk(M, "abcdefgh");
  EXPECT_EQ(Before.Output, After.Output);
}

} // namespace
