//===- tests/DecisionTraceTests.cpp - per-arc decision trace ------------------===//
//
// Part of the impact-inline project, distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The decision trace must explain every ruling with the numbers it was
/// decided on: unit coverage for each CostVerdict's DecisionNumbers and
/// reason line, plus byte-exact golden tables for two suite programs (tee:
/// nothing expandable; grep: acceptances, recursion, and budget
/// rejections in one plan).
///
//===----------------------------------------------------------------------===//

#include "driver/DecisionTrace.h"

#include "core/InlinePass.h"
#include "driver/Pipeline.h"
#include "suite/Suite.h"
#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace impact;
using test::compileOk;

namespace {

struct Planned {
  Module M;
  InlineResult Inline;
};

/// Profiles \p Source on \p Input and runs the full expansion procedure.
Planned planProgram(const char *Source, const std::string &Input,
                    InlineOptions Options = InlineOptions()) {
  Planned P{compileOk(Source), {}};
  ProfileResult Prof = test::profileInputs(P.M, {Input});
  EXPECT_TRUE(Prof.allRunsOk());
  P.Inline = runInlineExpansion(P.M, Prof.Data, Options);
  return P;
}

/// First planned site for the caller/callee name pair, or nullptr.
const PlannedSite *findArc(const Planned &P, const char *Caller,
                           const char *Callee) {
  FuncId CallerId = P.M.findFunction(Caller);
  FuncId CalleeId = P.M.findFunction(Callee);
  for (const PlannedSite &S : P.Inline.Plan.Sites)
    if (S.Caller == CallerId && S.Callee == CalleeId)
      return &S;
  return nullptr;
}

//===----------------------------------------------------------------------===//
// DecisionNumbers per verdict
//===----------------------------------------------------------------------===//

TEST(DecisionTrace, AcceptedArcCarriesTheComparison) {
  InlineOptions Options;
  Options.MinArcWeight = 1.0;
  Options.CodeGrowthFactor = 8.0;
  Planned P = planProgram(test::kCallHeavyProgram, std::string(30, 'x'),
                          Options);
  const PlannedSite *S = findArc(P, "cube", "square");
  ASSERT_NE(S, nullptr);
  ASSERT_EQ(S->Verdict, CostVerdict::Acceptable);
  EXPECT_DOUBLE_EQ(S->Numbers.Weight, S->Weight);
  EXPECT_DOUBLE_EQ(S->Numbers.WeightThreshold, 1.0);
  EXPECT_GT(S->Numbers.CalleeSize, 0u);
  EXPECT_LE(S->Numbers.ProgramSize + S->Numbers.CalleeSize,
            S->Numbers.ProgramSizeBudget);
  std::string Reason = formatDecisionReason(*S, P.M);
  EXPECT_NE(Reason.find(">= threshold"), std::string::npos) << Reason;
  EXPECT_NE(Reason.find("<= budget"), std::string::npos) << Reason;
}

TEST(DecisionTrace, LowWeightQuotesWeightAndThreshold) {
  InlineOptions Options;
  Options.MinArcWeight = 1e9; // reject everything on weight
  Planned P = planProgram(test::kCallHeavyProgram, std::string(30, 'x'),
                          Options);
  const PlannedSite *S = findArc(P, "cube", "square");
  ASSERT_NE(S, nullptr);
  ASSERT_EQ(S->Verdict, CostVerdict::LowWeight);
  EXPECT_EQ(S->Status, ArcStatus::Rejected);
  EXPECT_DOUBLE_EQ(S->Numbers.WeightThreshold, 1e9);
  EXPECT_LT(S->Numbers.Weight, S->Numbers.WeightThreshold);
  std::string Reason = formatDecisionReason(*S, P.M);
  EXPECT_NE(Reason.find("< threshold"), std::string::npos) << Reason;
  EXPECT_NE(Reason.find("1000000000.00"), std::string::npos)
      << "threshold value must appear verbatim: " << Reason;
}

TEST(DecisionTrace, BudgetExceededQuotesSizesAndBudget) {
  InlineOptions Options;
  Options.MinArcWeight = 1.0;
  Options.CodeGrowthFactor = 1.0; // zero headroom: nothing fits
  Planned P = planProgram(test::kCallHeavyProgram, std::string(30, 'x'),
                          Options);
  const PlannedSite *S = findArc(P, "cube", "square");
  ASSERT_NE(S, nullptr);
  ASSERT_EQ(S->Verdict, CostVerdict::BudgetExceeded);
  EXPECT_GT(S->Numbers.ProgramSize + S->Numbers.CalleeSize,
            S->Numbers.ProgramSizeBudget);
  std::string Reason = formatDecisionReason(*S, P.M);
  EXPECT_NE(Reason.find("> budget"), std::string::npos) << Reason;
  EXPECT_NE(Reason.find(std::to_string(S->Numbers.ProgramSizeBudget)),
            std::string::npos)
      << Reason;
}

TEST(DecisionTrace, StackHazardQuotesWordsAndBound) {
  // walk is recursive and bigframe's activation (5000+ words) exceeds
  // the default 2048-word bound. bigframe runs twice per walk call so
  // it precedes walk in the linear order — the stack hazard, not an
  // order violation, is what refuses the arc.
  const char *Source = R"MC(
extern int getchar();
extern int print_int(int v);
extern int putchar(int c);

int bigframe(int x) {
  int buf[5000];
  buf[0] = x;
  buf[4999] = x + 1;
  return buf[0] + buf[4999];
}

int walk(int n) {
  if (n < 1) return 0;
  return walk(n - 1) + bigframe(n) + bigframe(n);
}

int main() {
  int c;
  int n;
  n = 0;
  c = getchar();
  while (c != -1) {
    n = n + 1;
    c = getchar();
  }
  print_int(walk(n));
  putchar('\n');
  return 0;
}
)MC";
  Planned P = planProgram(Source, std::string(12, 'x'));
  const PlannedSite *S = findArc(P, "walk", "bigframe");
  ASSERT_NE(S, nullptr);
  ASSERT_EQ(S->Verdict, CostVerdict::StackHazard);
  EXPECT_TRUE(S->Numbers.CallerRecursive);
  EXPECT_GT(S->Numbers.CalleeStackWords, S->Numbers.StackBound);
  std::string Reason = formatDecisionReason(*S, P.M);
  EXPECT_NE(Reason.find("words > bound"), std::string::npos) << Reason;
  EXPECT_NE(Reason.find(std::to_string(S->Numbers.CalleeStackWords)),
            std::string::npos)
      << Reason;
}

TEST(DecisionTrace, RecursiveCycleNamesBothEnds) {
  Planned P = planProgram(test::kRecursiveProgram, std::string(9, 'x'));
  const PlannedSite *S = findArc(P, "fib", "fib");
  ASSERT_NE(S, nullptr);
  ASSERT_EQ(S->Verdict, CostVerdict::RecursiveCycle);
  std::string Reason = formatDecisionReason(*S, P.M);
  EXPECT_NE(Reason.find("'fib'"), std::string::npos) << Reason;
  EXPECT_NE(Reason.find("recursion cycle"), std::string::npos) << Reason;
}

TEST(DecisionTrace, CalleeTooLargeQuotesSizeAndCap) {
  InlineOptions Options;
  Options.MinArcWeight = 1.0;
  Options.MaxCalleeSize = 1;
  Planned P = planProgram(test::kCallHeavyProgram, std::string(30, 'x'),
                          Options);
  const PlannedSite *S = findArc(P, "cube", "square");
  ASSERT_NE(S, nullptr);
  ASSERT_EQ(S->Verdict, CostVerdict::CalleeTooLarge);
  EXPECT_EQ(S->Numbers.MaxCalleeSize, 1u);
  std::string Reason = formatDecisionReason(*S, P.M);
  EXPECT_NE(Reason.find("> max callee size 1"), std::string::npos) << Reason;
}

TEST(DecisionTrace, PointerAndExternalSitesAreExplained) {
  Planned P = planProgram(test::kPointerCallProgram, "xy");
  bool SawPointer = false, SawExternal = false;
  for (const PlannedSite &S : P.Inline.Plan.Sites) {
    if (S.Verdict != CostVerdict::NotInlinable)
      continue;
    std::string Reason = formatDecisionReason(S, P.M);
    if (S.Callee == kNoFunc) {
      EXPECT_NE(Reason.find("indirect call through pointer"),
                std::string::npos)
          << Reason;
      SawPointer = true;
    } else {
      EXPECT_NE(Reason.find("is external"), std::string::npos) << Reason;
      SawExternal = true;
    }
  }
  EXPECT_TRUE(SawPointer);
  EXPECT_TRUE(SawExternal);
}

TEST(DecisionTrace, EveryRefusedSiteHasAConcreteReason) {
  // The acceptance bar: no Rejected/NotExpandable site may render an
  // empty or number-free reason.
  for (const char *Name : {"grep", "compress"}) {
    const BenchmarkSpec *B = findBenchmark(Name);
    Module M = compileOk(B->Source);
    ProfileResult Prof = profileProgram(M, makeBenchmarkInputs(*B, 2));
    ASSERT_TRUE(Prof.allRunsOk());
    InlineResult IR = runInlineExpansion(M, Prof.Data);
    for (const PlannedSite &S : IR.Plan.Sites) {
      if (S.Status != ArcStatus::Rejected &&
          S.Status != ArcStatus::NotExpandable)
        continue;
      std::string Reason = formatDecisionReason(S, M);
      EXPECT_FALSE(Reason.empty()) << Name << " site " << S.SiteId;
      // The weight-, size-, and stack-based verdicts must quote figures.
      switch (S.Verdict) {
      case CostVerdict::LowWeight:
      case CostVerdict::StackHazard:
      case CostVerdict::CalleeTooLarge:
      case CostVerdict::BudgetExceeded:
        EXPECT_NE(Reason.find_first_of("0123456789"), std::string::npos)
            << Name << " site " << S.SiteId << ": " << Reason;
        break;
      default:
        break;
      }
    }
  }
}

//===----------------------------------------------------------------------===//
// Renderers
//===----------------------------------------------------------------------===//

TEST(DecisionTrace, JsonEmitsOneObjectPerSite) {
  Planned P = planProgram(test::kCallHeavyProgram, std::string(30, 'x'));
  std::string Json = renderDecisionTraceJson(P.Inline.Plan, P.M, "call-heavy");
  size_t Lines = 0;
  size_t Pos = 0;
  while ((Pos = Json.find('\n', Pos)) != std::string::npos) {
    ++Lines;
    ++Pos;
  }
  EXPECT_EQ(Lines, P.Inline.Plan.Sites.size());
  // Every line is one object with the program tag and a verdict field.
  size_t Start = 0;
  while (Start < Json.size()) {
    size_t End = Json.find('\n', Start);
    std::string Line = Json.substr(Start, End - Start);
    EXPECT_EQ(Line.front(), '{') << Line;
    EXPECT_EQ(Line.back(), '}') << Line;
    EXPECT_NE(Line.find("\"program\":\"call-heavy\""), std::string::npos);
    EXPECT_NE(Line.find("\"verdict\":\""), std::string::npos);
    EXPECT_NE(Line.find("\"reason\":\""), std::string::npos);
    Start = End + 1;
  }
}

TEST(DecisionTrace, PipelineEmitsTraceOnRequest) {
  const BenchmarkSpec *B = findBenchmark("tee");
  PipelineOptions WithTrace;
  WithTrace.EmitDecisionTrace = true;
  PipelineResult R = runPipeline(B->Source, B->Name,
                                 makeBenchmarkInputs(*B, 2), WithTrace);
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_FALSE(R.DecisionTrace.empty());

  PipelineResult Without = runPipeline(B->Source, B->Name,
                                       makeBenchmarkInputs(*B, 2));
  ASSERT_TRUE(Without.Ok);
  EXPECT_TRUE(Without.DecisionTrace.empty());
}

//===----------------------------------------------------------------------===//
// Golden tables
//===----------------------------------------------------------------------===//

const char *const kGoldenTee = R"GOLD(site         caller         callee   weight          status          verdict                                                                      reason
--------------------------------------------------------------------------------------------------------------------------------------------------------
1          emit_str        putchar     0.00  not-expandable    not-inlinable                                      callee 'putchar' is external (no body)
2             usage       emit_str     0.00        rejected       low-weight                                               weight 0.00 < threshold 10.00
3             usage        putchar     0.00  not-expandable    not-inlinable                                      callee 'putchar' is external (no body)
4        set_option       emit_str     0.00  not-expandable  order-violation  callee 'emit_str' does not precede caller 'set_option' in the linear order
5        set_option        putchar     0.00  not-expandable    not-inlinable                                      callee 'putchar' is external (no body)
6     flush_pending        putchar     0.00  not-expandable    not-inlinable                                      callee 'putchar' is external (no body)
7     flush_pending        putchar     0.00  not-expandable    not-inlinable                                      callee 'putchar' is external (no body)
8              main    input_avail     1.00  not-expandable    not-inlinable                                  callee 'input_avail' is external (no body)
9              main          usage     0.00  not-expandable  order-violation           callee 'usage' does not precede caller 'main' in the linear order
10             main        getchar     1.00  not-expandable    not-inlinable                                      callee 'getchar' is external (no body)
11             main        putchar  2674.50  not-expandable    not-inlinable                                      callee 'putchar' is external (no body)
12             main        putchar  2674.50  not-expandable    not-inlinable                                      callee 'putchar' is external (no body)
13             main        getchar  2674.50  not-expandable    not-inlinable                                      callee 'getchar' is external (no body)
14             main  flush_pending     0.00  not-expandable  order-violation   callee 'flush_pending' does not precede caller 'main' in the linear order
15             main      print_int     1.00  not-expandable    not-inlinable                                    callee 'print_int' is external (no body)
16             main        putchar     1.00  not-expandable    not-inlinable                                      callee 'putchar' is external (no body)
)GOLD";
const char *const kGoldenGrep = R"GOLD(site      caller       callee   weight          status          verdict                                                                    reason
-------------------------------------------------------------------------------------------------------------------------------------------------
1       emit_str      putchar     0.00  not-expandable    not-inlinable                                    callee 'putchar' is external (no body)
2          usage     emit_str     0.00        rejected       low-weight                                             weight 0.00 < threshold 10.00
3          usage      putchar     0.00  not-expandable    not-inlinable                                    callee 'putchar' is external (no body)
4     set_option     emit_str     0.00        rejected       low-weight                                             weight 0.00 < threshold 10.00
5     set_option      putchar     0.00  not-expandable    not-inlinable                                    callee 'putchar' is external (no body)
6     load_input   read_block     1.00  not-expandable    not-inlinable                                 callee 'read_block' is external (no body)
7     load_input   read_block     2.50  not-expandable    not-inlinable                                 callee 'read_block' is external (no body)
8     match_star   match_here     0.00        rejected  recursive-cycle       caller 'match_star' and callee 'match_here' share a recursion cycle
9     match_star       at_end     0.00  not-expandable  order-violation  callee 'at_end' does not precede caller 'match_star' in the linear order
10    match_star   char_match     0.00        rejected       low-weight                                             weight 0.00 < threshold 10.00
11    match_here   match_star     0.00        rejected  recursive-cycle       caller 'match_here' and callee 'match_star' share a recursion cycle
12    match_here       at_end     0.00  not-expandable  order-violation  callee 'at_end' does not precede caller 'match_here' in the linear order
13    match_here   char_match  8138.00        expanded       acceptable  weight 8138.00 >= threshold 10.00; program 393 + callee 12 <= budget 491
14    match_line   match_here     0.00        rejected       low-weight                                             weight 0.00 < threshold 10.00
15    match_line   match_here  6829.50        expanded       acceptable  weight 6829.50 >= threshold 10.00; program 405 + callee 70 <= budget 491
16     emit_line      putchar  2924.00  not-expandable    not-inlinable                                    callee 'putchar' is external (no body)
17     emit_line      putchar    83.00  not-expandable    not-inlinable                                    callee 'putchar' is external (no body)
18          main  input_avail     1.00  not-expandable    not-inlinable                                callee 'input_avail' is external (no body)
19          main        usage     0.00  not-expandable  order-violation         callee 'usage' does not precede caller 'main' in the linear order
20          main   load_input     1.00        rejected       low-weight                                             weight 1.00 < threshold 10.00
21          main    next_line     1.00        rejected       low-weight                                             weight 1.00 < threshold 10.00
22          main   set_option     0.00  not-expandable  order-violation    callee 'set_option' does not precede caller 'main' in the linear order
23          main    next_line     0.00        rejected       low-weight                                             weight 0.00 < threshold 10.00
24          main    next_line   252.00        rejected  budget-exceeded                                      program 475 + callee 61 > budget 491
25          main   match_line   251.00        rejected  budget-exceeded                                     program 475 + callee 108 > budget 491
27          main    print_int     1.00  not-expandable    not-inlinable                                  callee 'print_int' is external (no body)
28          main      putchar     1.00  not-expandable    not-inlinable                                    callee 'putchar' is external (no body)
26          main    emit_line    83.00        rejected  budget-exceeded                                      program 475 + callee 19 > budget 491
)GOLD";

struct GoldenCase {
  const char *Benchmark;
  const char *Expected;
};

class DecisionTraceGolden : public ::testing::TestWithParam<GoldenCase> {};

TEST_P(DecisionTraceGolden, TableMatchesByteForByte) {
  const GoldenCase &Golden = GetParam();
  const BenchmarkSpec *B = findBenchmark(Golden.Benchmark);
  ASSERT_NE(B, nullptr);
  PipelineOptions Options;
  Options.EmitDecisionTrace = true;
  PipelineResult R = runPipeline(B->Source, B->Name,
                                 makeBenchmarkInputs(*B, 2), Options);
  ASSERT_TRUE(R.Ok) << Golden.Benchmark << ": " << R.Error;
  EXPECT_EQ(R.DecisionTrace, Golden.Expected) << Golden.Benchmark;
}

INSTANTIATE_TEST_SUITE_P(Suite, DecisionTraceGolden,
                         ::testing::Values(GoldenCase{"tee", kGoldenTee},
                                           GoldenCase{"grep", kGoldenGrep}),
                         [](const auto &Info) {
                           return std::string(Info.param.Benchmark);
                         });

} // namespace
