//===- tests/ReportTests.cpp - table formatting tests -------------------------===//
//
// Part of the impact-inline project, distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "driver/Report.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

using namespace impact;

namespace {

TEST(Report, TableAlignsColumns) {
  TableWriter T({"benchmark", "value"});
  T.addRow({"cccp", "17%"});
  T.addRow({"compress-long", "4%"});
  std::string Text = T.render();
  // Header, separator, two rows.
  EXPECT_NE(Text.find("benchmark"), std::string::npos);
  EXPECT_NE(Text.find("cccp"), std::string::npos);
  // All lines equal length (trailing alignment).
  size_t FirstLineLen = Text.find('\n');
  EXPECT_NE(Text.find("-"), std::string::npos);
  (void)FirstLineLen;
}

TEST(Report, SeparatorRows) {
  TableWriter T({"a", "b"});
  T.addRow({"1", "2"});
  T.addSeparator();
  T.addRow({"AVG", "1.5"});
  std::string Text = T.render();
  size_t Dashes = 0;
  for (size_t Pos = Text.find("--"); Pos != std::string::npos;
       Pos = Text.find("--", Pos + 2))
    ++Dashes;
  EXPECT_GE(Dashes, 2u) << "header separator plus explicit separator";
}

TEST(Report, ShortRowsPadWithEmptyCells) {
  TableWriter T({"a", "b", "c"});
  T.addRow({"1"});
  T.addRow({"2", "3", "4"});
  std::string Text = T.render();
  // Four lines: header, separator, two rows — the short row must not
  // break rendering and the full row's cells all appear.
  size_t Lines = 0;
  for (char C : Text)
    Lines += C == '\n' ? 1 : 0;
  EXPECT_EQ(Lines, 4u);
  EXPECT_NE(Text.find("4"), std::string::npos);
}

TEST(Report, LongRowsTruncateToHeaderArity) {
  TableWriter T({"a", "b"});
  T.addRow({"1", "2", "SPILL"});
  std::string Text = T.render();
  EXPECT_EQ(Text.find("SPILL"), std::string::npos)
      << "extra cells must be dropped, not rendered:\n"
      << Text;
  EXPECT_NE(Text.find("2"), std::string::npos);
}

TEST(Report, PercentAndCountFormats) {
  EXPECT_EQ(formatPercent(16.49), "16.5%");
  EXPECT_EQ(formatPercent(0.0), "0.0%");
  EXPECT_EQ(formatCount(3653.4), "3653");
  EXPECT_EQ(formatCount(0.6), "1");
}

TEST(Report, NonFiniteCountsRenderReadably) {
  // The cost function's INFINITY verdicts reach report code; llround on
  // them is undefined, so the formatter must special-case them.
  double Inf = std::numeric_limits<double>::infinity();
  EXPECT_EQ(formatCount(Inf), "inf");
  EXPECT_EQ(formatCount(-Inf), "-inf");
  EXPECT_EQ(formatCount(std::nan("")), "nan");
}

TEST(Report, NonFinitePercentsRenderReadably) {
  double Inf = std::numeric_limits<double>::infinity();
  EXPECT_EQ(formatPercent(Inf), "inf%");
  EXPECT_EQ(formatPercent(-Inf), "-inf%");
  EXPECT_EQ(formatPercent(std::nan("")), "nan%");
}

TEST(Report, MeanAndStddev) {
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
  EXPECT_DOUBLE_EQ(mean({2.0, 4.0}), 3.0);
  EXPECT_DOUBLE_EQ(stddev({5.0}), 0.0);
  // Population stddev of {2,4} is 1.
  EXPECT_DOUBLE_EQ(stddev({2.0, 4.0}), 1.0);
}

} // namespace
