//===- tests/CacheSimTests.cpp - instruction cache simulator tests ------------===//
//
// Part of the impact-inline project, distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "cachesim/ICacheSim.h"

#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace impact;

namespace {

ICacheConfig smallCache(uint64_t Bytes, uint64_t Ways) {
  ICacheConfig C;
  C.CacheBytes = Bytes;
  C.LineBytes = 32;
  C.Ways = Ways;
  C.BytesPerInstr = 4;
  return C;
}

TEST(ICacheConfig, GeometryValidation) {
  EXPECT_TRUE(smallCache(1024, 1).isValid());
  EXPECT_TRUE(smallCache(1024, 2).isValid());
  ICacheConfig Bad = smallCache(1000, 1); // not line-divisible
  EXPECT_FALSE(Bad.isValid());
  EXPECT_EQ(smallCache(1024, 2).getNumSets(), 16u);
}

TEST(ICacheSim, FirstAccessMissesThenHits) {
  ICacheSim Cache(smallCache(1024, 1));
  Cache.access(0);
  EXPECT_EQ(Cache.getMisses(), 1u);
  Cache.access(0);
  Cache.access(1); // same 32-byte line (8 instrs/line)
  Cache.access(7);
  EXPECT_EQ(Cache.getAccesses(), 4u);
  EXPECT_EQ(Cache.getMisses(), 1u);
}

TEST(ICacheSim, SequentialMissesOncePerLine) {
  ICacheSim Cache(smallCache(4096, 1));
  for (uint64_t I = 0; I != 256; ++I)
    Cache.access(I); // 256 instrs * 4B = 1024B = 32 lines
  EXPECT_EQ(Cache.getMisses(), 32u);
}

TEST(ICacheSim, DirectMappedConflict) {
  // 1024B direct mapped = 32 sets. Lines 0 and 32 collide.
  ICacheSim Cache(smallCache(1024, 1));
  uint64_t InstrsPerLine = 8;
  uint64_t SetStride = 32 * InstrsPerLine; // one full cache of instrs
  for (int I = 0; I != 10; ++I) {
    Cache.access(0);
    Cache.access(SetStride);
  }
  EXPECT_EQ(Cache.getMisses(), 20u) << "ping-pong evicts every time";
}

TEST(ICacheSim, TwoWayAbsorbsTheSameConflict) {
  ICacheSim Cache(smallCache(1024, 2));
  uint64_t SetStride = 16 * 8; // 16 sets * 8 instrs per line
  for (int I = 0; I != 10; ++I) {
    Cache.access(0);
    Cache.access(SetStride);
  }
  EXPECT_EQ(Cache.getMisses(), 2u) << "both lines fit in one set";
}

TEST(ICacheSim, LruEvictsLeastRecent) {
  // 2-way, 16 sets; three conflicting lines A,B,C in one set.
  ICacheSim Cache(smallCache(1024, 2));
  uint64_t Stride = 16 * 8;
  uint64_t A = 0, B = Stride, C = 2 * Stride;
  Cache.access(A); // miss
  Cache.access(B); // miss
  Cache.access(A); // hit, A becomes MRU
  Cache.access(C); // miss, evicts B (LRU)
  Cache.access(A); // hit
  Cache.access(B); // miss again
  EXPECT_EQ(Cache.getMisses(), 4u);
}

TEST(ICacheSim, ResetClearsEverything) {
  ICacheSim Cache(smallCache(1024, 1));
  Cache.access(0);
  Cache.reset();
  EXPECT_EQ(Cache.getAccesses(), 0u);
  Cache.access(0);
  EXPECT_EQ(Cache.getMisses(), 1u) << "contents cleared too";
}

TEST(ICacheSim, MissRateComputation) {
  ICacheSim Cache(smallCache(1024, 1));
  EXPECT_EQ(Cache.getMissRate(), 0.0);
  Cache.access(0);
  Cache.access(0);
  Cache.access(0);
  Cache.access(0);
  EXPECT_DOUBLE_EQ(Cache.getMissRate(), 0.25);
}

TEST(InstructionLayout, FunctionsAreContiguous) {
  Module M = test::compileOk(test::kCallHeavyProgram);
  InstructionLayout Layout = InstructionLayout::compute(M);
  EXPECT_EQ(Layout.TotalInstrs, M.size());
  // Bases are nondecreasing and block bases start at the function base.
  uint64_t Prev = 0;
  for (const Function &F : M.Funcs) {
    uint64_t Base = Layout.FuncBase[static_cast<size_t>(F.Id)];
    EXPECT_GE(Base, Prev);
    Prev = Base;
    if (!F.Blocks.empty()) {
      EXPECT_EQ(Layout.BlockBase[static_cast<size_t>(F.Id)][0], Base);
    }
  }
}

TEST(InstructionLayout, AddressesAreUniquePerInstruction) {
  Module M = test::compileOk(test::kCallHeavyProgram);
  InstructionLayout Layout = InstructionLayout::compute(M);
  std::vector<bool> Seen(Layout.TotalInstrs, false);
  for (const Function &F : M.Funcs)
    for (size_t B = 0; B != F.Blocks.size(); ++B)
      for (size_t I = 0; I != F.Blocks[B].size(); ++I) {
        uint64_t Addr =
            Layout.getAddress(F.Id, static_cast<BlockId>(B), I);
        ASSERT_LT(Addr, Layout.TotalInstrs);
        EXPECT_FALSE(Seen[Addr]);
        Seen[Addr] = true;
      }
}

TEST(ICacheIntegration, InterpreterStreamsEveryInstruction) {
  Module M = test::compileOk(test::kCallHeavyProgram);
  ICacheSim Cache(smallCache(4096, 2));
  RunOptions Opts;
  Opts.Input = "abcdefgh";
  Opts.ICache = &Cache;
  ExecResult R = runProgram(M, Opts);
  ASSERT_TRUE(R.ok()) << R.TrapMessage;
  EXPECT_EQ(Cache.getAccesses(), R.Stats.InstrCount);
  EXPECT_GT(Cache.getMisses(), 0u);
  EXPECT_LT(Cache.getMissRate(), 0.5) << "loops must mostly hit";
}

TEST(ICacheIntegration, TinyCacheMissesMore) {
  Module M = test::compileOk(test::kCallHeavyProgram);
  auto MissRate = [&](uint64_t Bytes) {
    ICacheSim Cache(smallCache(Bytes, 1));
    RunOptions Opts;
    Opts.Input = std::string(50, 'x');
    Opts.ICache = &Cache;
    ExecResult R = runProgram(M, Opts);
    EXPECT_TRUE(R.ok());
    return Cache.getMissRate();
  };
  EXPECT_GE(MissRate(64), MissRate(4096));
}

} // namespace
