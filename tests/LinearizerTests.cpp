//===- tests/LinearizerTests.cpp - linearization tests ------------------------===//
//
// Part of the impact-inline project, distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/Linearizer.h"

#include "callgraph/CallGraphBuilder.h"
#include "TestUtil.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace impact;
using test::compileOk;

namespace {

struct LinearFixture {
  Module M;
  CallGraph G;
};

LinearFixture makeFixture(const std::vector<std::string> &Inputs) {
  Module M = compileOk(test::kCallHeavyProgram);
  ProfileResult P = test::profileInputs(M, Inputs);
  EXPECT_TRUE(P.allRunsOk());
  CallGraph G = buildCallGraph(M, &P.Data);
  return LinearFixture{std::move(M), std::move(G)};
}

bool isPermutationOfAllFuncs(const Module &M, const Linearization &L) {
  if (L.Sequence.size() != M.Funcs.size())
    return false;
  std::vector<FuncId> Sorted = L.Sequence;
  std::sort(Sorted.begin(), Sorted.end());
  for (size_t I = 0; I != Sorted.size(); ++I)
    if (Sorted[I] != static_cast<FuncId>(I))
      return false;
  return true;
}

TEST(Linearizer, ProfileSortedPutsHottestFirst) {
  LinearFixture Fx = makeFixture({std::string(30, 'x')});
  InlineOptions Options;
  Linearization L = linearize(Fx.M, Fx.G, Options);
  ASSERT_TRUE(isPermutationOfAllFuncs(Fx.M, L));
  // square runs most often (2 per char), so it leads the sequence.
  EXPECT_EQ(L.Sequence.front(), Fx.M.findFunction("square"));
  // cube (1 per char) precedes accumulate (once per run).
  EXPECT_TRUE(L.precedes(Fx.M.findFunction("cube"),
                         Fx.M.findFunction("accumulate")));
}

TEST(Linearizer, PositionIsInverseOfSequence) {
  LinearFixture Fx = makeFixture({"xyz"});
  Linearization L = linearize(Fx.M, Fx.G, InlineOptions());
  for (size_t I = 0; I != L.Sequence.size(); ++I)
    EXPECT_EQ(L.Position[static_cast<size_t>(L.Sequence[I])], I);
}

TEST(Linearizer, ExternalsAlwaysLast) {
  LinearFixture Fx = makeFixture({"abc"});
  for (LinearizationPolicy Policy :
       {LinearizationPolicy::ProfileSorted, LinearizationPolicy::Random,
        LinearizationPolicy::BottomUp, LinearizationPolicy::SourceOrder}) {
    InlineOptions Options;
    Options.Policy = Policy;
    Linearization L = linearize(Fx.M, Fx.G, Options);
    size_t FirstExternal = SIZE_MAX;
    for (size_t I = 0; I != L.Sequence.size(); ++I)
      if (Fx.M.getFunction(L.Sequence[I]).IsExternal) {
        FirstExternal = I;
        break;
      }
    for (size_t I = FirstExternal; I != L.Sequence.size(); ++I)
      EXPECT_TRUE(Fx.M.getFunction(L.Sequence[I]).IsExternal);
  }
}

TEST(Linearizer, RandomPolicyIsSeedDeterministic) {
  LinearFixture Fx = makeFixture({"abc"});
  InlineOptions A, B;
  A.Policy = B.Policy = LinearizationPolicy::Random;
  A.RandomSeed = B.RandomSeed = 99;
  EXPECT_EQ(linearize(Fx.M, Fx.G, A).Sequence,
            linearize(Fx.M, Fx.G, B).Sequence);
  B.RandomSeed = 100;
  // Different seeds usually permute differently; sequence is still valid.
  EXPECT_TRUE(isPermutationOfAllFuncs(Fx.M, linearize(Fx.M, Fx.G, B)));
}

TEST(Linearizer, BottomUpPutsCalleesBeforeCallers) {
  LinearFixture Fx = makeFixture({"ab"});
  InlineOptions Options;
  Options.Policy = LinearizationPolicy::BottomUp;
  Linearization L = linearize(Fx.M, Fx.G, Options);
  // square <- cube <- accumulate <- main is the call DAG.
  EXPECT_TRUE(L.precedes(Fx.M.findFunction("square"),
                         Fx.M.findFunction("cube")));
  EXPECT_TRUE(L.precedes(Fx.M.findFunction("cube"),
                         Fx.M.findFunction("accumulate")));
  EXPECT_TRUE(L.precedes(Fx.M.findFunction("accumulate"), Fx.M.MainId));
}

TEST(Linearizer, SourceOrderKeepsDeclarationOrder) {
  LinearFixture Fx = makeFixture({"ab"});
  InlineOptions Options;
  Options.Policy = LinearizationPolicy::SourceOrder;
  Linearization L = linearize(Fx.M, Fx.G, Options);
  std::vector<FuncId> NonExternal;
  for (FuncId F : L.Sequence)
    if (!Fx.M.getFunction(F).IsExternal)
      NonExternal.push_back(F);
  EXPECT_TRUE(std::is_sorted(NonExternal.begin(), NonExternal.end()));
}

TEST(Linearizer, TiedWeightsAreStablyOrdered) {
  // Two functions never executed tie at weight 0; ProfileSorted must still
  // be deterministic for a fixed seed.
  Module M = compileOk("int a() { return 1; } int b() { return 2; }"
                       "int main() { return 0; }");
  ProfileResult P = test::profileInputs(M, {""});
  CallGraph G = buildCallGraph(M, &P.Data);
  InlineOptions Options;
  Linearization L1 = linearize(M, G, Options);
  Linearization L2 = linearize(M, G, Options);
  EXPECT_EQ(L1.Sequence, L2.Sequence);
}

} // namespace
