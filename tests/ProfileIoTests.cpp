//===- tests/ProfileIoTests.cpp - profile save/load round trips ---------------===//
//
// Part of the impact-inline project, distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "profile/ProfileIO.h"

#include "TestUtil.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

using namespace impact;
using test::compileOk;

namespace {

ProfileData measuredProfile(const char *Source,
                            const std::vector<std::string> &Inputs) {
  Module M = compileOk(Source);
  ProfileResult P = test::profileInputs(M, Inputs);
  EXPECT_TRUE(P.allRunsOk());
  return P.Data;
}

TEST(ProfileIo, EmptyProfileRoundTrips) {
  ProfileData Empty;
  ProfileData Loaded;
  std::string Error;
  ASSERT_TRUE(loadProfile(saveProfile(Empty), Loaded, &Error)) << Error;
  EXPECT_EQ(Loaded, Empty);
}

TEST(ProfileIo, MeasuredProfileRoundTripsExactly) {
  ProfileData P = measuredProfile(
      test::kCallHeavyProgram,
      {std::string(30, 'x'), std::string(7, 'y'), ""});
  ASSERT_GT(P.getNumRuns(), 0u);
  ASSERT_GT(P.getNumSites(), 0u);

  ProfileData Loaded;
  std::string Error;
  ASSERT_TRUE(loadProfile(saveProfile(P), Loaded, &Error)) << Error;
  EXPECT_EQ(Loaded, P);
  // Spot-check the derived metrics too — same totals, same averages.
  EXPECT_DOUBLE_EQ(Loaded.getAvgInstrs(), P.getAvgInstrs());
  EXPECT_DOUBLE_EQ(Loaded.getAvgDynamicCalls(), P.getAvgDynamicCalls());
  for (uint32_t S = 0; S != static_cast<uint32_t>(P.getNumSites()); ++S)
    EXPECT_DOUBLE_EQ(Loaded.getArcWeight(S), P.getArcWeight(S)) << S;
}

TEST(ProfileIo, SecondSaveIsIdentical) {
  // save -> load -> save is a fixed point: the text form is canonical.
  ProfileData P = measuredProfile(test::kRecursiveProgram, {"ab"});
  std::string First = saveProfile(P);
  ProfileData Loaded;
  ASSERT_TRUE(loadProfile(First, Loaded));
  EXPECT_EQ(saveProfile(Loaded), First);
}

TEST(ProfileIo, SparseVectorsKeepTheirSize) {
  // Zero totals are omitted from the text but the vector sizes (== site
  // and function id spaces) must reload exactly.
  ProfileData P = measuredProfile(test::kPointerCallProgram, {"x"});
  ProfileData Loaded;
  ASSERT_TRUE(loadProfile(saveProfile(P), Loaded));
  EXPECT_EQ(Loaded.getNumSites(), P.getNumSites());
  EXPECT_EQ(Loaded.getNumFuncs(), P.getNumFuncs());
}

TEST(ProfileIo, RejectsMissingHeader) {
  ProfileData Out;
  std::string Error;
  EXPECT_FALSE(loadProfile("runs 3\n", Out, &Error));
  EXPECT_NE(Error.find("impact-profile"), std::string::npos) << Error;
}

TEST(ProfileIo, RejectsTruncatedInput) {
  std::string Text = saveProfile(ProfileData());
  // Drop the trailing sections.
  std::string Truncated = Text.substr(0, Text.find("calls"));
  ProfileData Out;
  std::string Error;
  EXPECT_FALSE(loadProfile(Truncated, Out, &Error));
  EXPECT_FALSE(Error.empty());
}

TEST(ProfileIo, RejectsMalformedNumbers) {
  ProfileData Out;
  std::string Error;
  EXPECT_FALSE(loadProfile("impact-profile v1\nruns 3x\n", Out, &Error));
  EXPECT_NE(Error.find("bad number"), std::string::npos) << Error;
}

TEST(ProfileIo, RejectsOutOfRangeSiteIndex) {
  ProfileData P = measuredProfile(test::kCallHeavyProgram, {"abc"});
  std::string Text = saveProfile(P);
  // Append an entry beyond the declared funcs size.
  Text += "99999 1\n";
  ProfileData Out;
  std::string Error;
  EXPECT_FALSE(loadProfile(Text, Out, &Error));
  EXPECT_NE(Error.find("out of range"), std::string::npos) << Error;
}

TEST(ProfileIo, FileRoundTrip) {
  ProfileData P = measuredProfile(test::kCallHeavyProgram, {"hello"});
  std::string Path =
      (std::filesystem::temp_directory_path() / "impact_profile_io_test.txt")
          .string();
  std::string Error;
  ASSERT_TRUE(saveProfileToFile(Path, P, &Error)) << Error;
  ProfileData Loaded;
  ASSERT_TRUE(loadProfileFromFile(Path, Loaded, &Error)) << Error;
  EXPECT_EQ(Loaded, P);
  std::remove(Path.c_str());
}

TEST(ProfileIo, MissingFileReportsError) {
  ProfileData Out;
  std::string Error;
  EXPECT_FALSE(loadProfileFromFile("/nonexistent/impact.profile", Out,
                                   &Error));
  EXPECT_NE(Error.find("cannot open"), std::string::npos) << Error;
}

} // namespace
