//===- tests/ProfileIoTests.cpp - profile save/load round trips ---------------===//
//
// Part of the impact-inline project, distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "profile/ProfileIO.h"

#include "profile/MinCover.h"

#include "TestUtil.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <filesystem>

using namespace impact;
using test::compileOk;

namespace {

ProfileData measuredProfile(const char *Source,
                            const std::vector<std::string> &Inputs) {
  Module M = compileOk(Source);
  ProfileResult P = test::profileInputs(M, Inputs);
  EXPECT_TRUE(P.allRunsOk());
  return P.Data;
}

TEST(ProfileIo, EmptyProfileRoundTrips) {
  ProfileData Empty;
  ProfileData Loaded;
  std::string Error;
  ASSERT_TRUE(loadProfile(saveProfile(Empty), Loaded, &Error)) << Error;
  EXPECT_EQ(Loaded, Empty);
}

TEST(ProfileIo, MeasuredProfileRoundTripsExactly) {
  ProfileData P = measuredProfile(
      test::kCallHeavyProgram,
      {std::string(30, 'x'), std::string(7, 'y'), ""});
  ASSERT_GT(P.getNumRuns(), 0u);
  ASSERT_GT(P.getNumSites(), 0u);

  ProfileData Loaded;
  std::string Error;
  ASSERT_TRUE(loadProfile(saveProfile(P), Loaded, &Error)) << Error;
  EXPECT_EQ(Loaded, P);
  // Spot-check the derived metrics too — same totals, same averages.
  EXPECT_DOUBLE_EQ(Loaded.getAvgInstrs(), P.getAvgInstrs());
  EXPECT_DOUBLE_EQ(Loaded.getAvgDynamicCalls(), P.getAvgDynamicCalls());
  for (uint32_t S = 0; S != static_cast<uint32_t>(P.getNumSites()); ++S)
    EXPECT_DOUBLE_EQ(Loaded.getArcWeight(S), P.getArcWeight(S)) << S;
}

TEST(ProfileIo, SecondSaveIsIdentical) {
  // save -> load -> save is a fixed point: the text form is canonical.
  ProfileData P = measuredProfile(test::kRecursiveProgram, {"ab"});
  std::string First = saveProfile(P);
  ProfileData Loaded;
  ASSERT_TRUE(loadProfile(First, Loaded));
  EXPECT_EQ(saveProfile(Loaded), First);
}

TEST(ProfileIo, SparseVectorsKeepTheirSize) {
  // Zero totals are omitted from the text but the vector sizes (== site
  // and function id spaces) must reload exactly.
  ProfileData P = measuredProfile(test::kPointerCallProgram, {"x"});
  ProfileData Loaded;
  ASSERT_TRUE(loadProfile(saveProfile(P), Loaded));
  EXPECT_EQ(Loaded.getNumSites(), P.getNumSites());
  EXPECT_EQ(Loaded.getNumFuncs(), P.getNumFuncs());
}

TEST(ProfileIo, RejectsMissingHeader) {
  ProfileData Out;
  std::string Error;
  EXPECT_FALSE(loadProfile("runs 3\n", Out, &Error));
  EXPECT_NE(Error.find("impact-profile"), std::string::npos) << Error;
}

TEST(ProfileIo, RejectsTruncatedInput) {
  std::string Text = saveProfile(ProfileData());
  // Drop the trailing sections.
  std::string Truncated = Text.substr(0, Text.find("calls"));
  ProfileData Out;
  std::string Error;
  EXPECT_FALSE(loadProfile(Truncated, Out, &Error));
  EXPECT_FALSE(Error.empty());
}

TEST(ProfileIo, RejectsMalformedNumbers) {
  ProfileData Out;
  std::string Error;
  EXPECT_FALSE(loadProfile("impact-profile v1\nruns 3x\n", Out, &Error));
  EXPECT_NE(Error.find("bad number"), std::string::npos) << Error;
}

TEST(ProfileIo, RejectsOutOfRangeSiteIndex) {
  ProfileData P = measuredProfile(test::kCallHeavyProgram, {"abc"});
  std::string Text = saveProfile(P);
  // Append an entry beyond the declared funcs size.
  Text += "99999 1\n";
  ProfileData Out;
  std::string Error;
  EXPECT_FALSE(loadProfile(Text, Out, &Error));
  EXPECT_NE(Error.find("out of range"), std::string::npos) << Error;
}

TEST(ProfileIo, FileRoundTrip) {
  ProfileData P = measuredProfile(test::kCallHeavyProgram, {"hello"});
  std::string Path =
      (std::filesystem::temp_directory_path() / "impact_profile_io_test.txt")
          .string();
  std::string Error;
  ASSERT_TRUE(saveProfileToFile(Path, P, &Error)) << Error;
  ProfileData Loaded;
  ASSERT_TRUE(loadProfileFromFile(Path, Loaded, &Error)) << Error;
  EXPECT_EQ(Loaded, P);
  std::remove(Path.c_str());
}

TEST(ProfileIo, MissingFileReportsError) {
  ProfileData Out;
  std::string Error;
  EXPECT_FALSE(loadProfileFromFile("/nonexistent/impact.profile", Out,
                                   &Error));
  EXPECT_NE(Error.find("cannot open"), std::string::npos) << Error;
}

TEST(ProfileIo, RejectsDuplicateSparseEntry) {
  // A repeated index must fail with a line-numbered diagnostic, never
  // silently last-write-wins (regression: a doubly-concatenated artifact
  // used to load cleanly with half its counts dropped).
  const char *Text = "impact-profile v1\n"
                     "runs 1\n"
                     "il 5\n"
                     "ct 1\n"
                     "calls 0\n"
                     "external 0\n"
                     "pointer 0\n"
                     "peak-stack 2\n"
                     "sites 3\n"
                     "1 4\n"
                     "1 4\n"
                     "funcs 1\n"
                     "0 1\n";
  ProfileData Out;
  std::string Error;
  EXPECT_FALSE(loadProfile(Text, Out, &Error));
  EXPECT_EQ(Error, "line 11: duplicate 'sites' entry for index 1");
}

//===----------------------------------------------------------------------===//
// Profile shards (v2)
//===----------------------------------------------------------------------===//

/// A module, its probe plan, and the raw mincover stats of one run per
/// input — the ingredients every shard test needs.
struct ShardFixture {
  Module M;
  MinCoverPlan Plan;
  std::vector<ExecStats> Raw;

  explicit ShardFixture(const std::vector<std::string> &Inputs) {
    M = compileOk(test::kCallHeavyProgram);
    Plan = buildMinCoverPlan(M);
    for (const std::string &In : Inputs) {
      RunOptions Opts;
      Opts.Input = In;
      Opts.MinCover = &Plan;
      ExecResult R = runProgram(M, Opts);
      EXPECT_TRUE(R.ok());
      Raw.push_back(std::move(R.Stats));
    }
  }

  ProfileShard shardOf(size_t Begin, size_t End, uint64_t Epoch = 0,
                       uint64_t Weight = 1) const {
    ProfileShard S = makeShard(Plan, Epoch, Weight);
    for (size_t I = Begin; I != End; ++I)
      accumulateShard(S, Raw[I]);
    return S;
  }
};

TEST(ProfileShardIo, EmptyShardRoundTrips) {
  MinCoverPlan Plan;
  ProfileShard S = makeShard(Plan, /*Epoch=*/3, /*Weight=*/2);
  ProfileShard Loaded;
  std::string Error;
  ASSERT_TRUE(loadShard(saveShard(S), Loaded, &Error)) << Error;
  EXPECT_EQ(Loaded, S);
}

TEST(ProfileShardIo, MeasuredShardRoundTripsExactly) {
  ShardFixture F({std::string(30, 'x'), "abc", ""});
  ProfileShard S = F.shardOf(0, F.Raw.size(), /*Epoch=*/7, /*Weight=*/3);
  ASSERT_EQ(S.Runs, 3u);
  ASSERT_GT(S.InstrTotal, 0u);

  std::string Text = saveShard(S);
  ProfileShard Loaded;
  std::string Error;
  ASSERT_TRUE(loadShard(Text, Loaded, &Error)) << Error;
  EXPECT_EQ(Loaded, S);
  // save -> load -> save is a fixed point, like the v1 format.
  EXPECT_EQ(saveShard(Loaded), Text);
}

TEST(ProfileShardIo, InferFromMergedShardMatchesFullProfile) {
  // The service contract end to end: raw runs split across shards, merged,
  // inferred — must equal what full instrumentation measured directly.
  std::vector<std::string> Inputs{std::string(30, 'x'), "abc", ""};
  ShardFixture F(Inputs);
  ProfileShard Acc = F.shardOf(0, 2);
  ProfileShard Late = F.shardOf(2, 3);
  std::string Error;
  ASSERT_TRUE(mergeShards(Acc, Late, &Error)) << Error;

  ProfileResult Full = test::profileInputs(F.M, Inputs);
  ASSERT_TRUE(Full.allRunsOk());
  EXPECT_TRUE(inferProfileFromShard(F.M, F.Plan, Acc) == Full.Data);
}

TEST(ProfileShardIo, MergeAppliesShardWeight) {
  ShardFixture F({"weighted"});
  ProfileShard Base = F.shardOf(0, 1);
  ProfileShard Weighted = F.shardOf(0, 1, /*Epoch=*/0, /*Weight=*/3);
  ProfileShard Acc = F.shardOf(0, 0); // empty, weight slot irrelevant
  ASSERT_TRUE(mergeShards(Acc, Weighted));
  EXPECT_EQ(Acc.Runs, 3 * Base.Runs);
  EXPECT_EQ(Acc.InstrTotal, 3 * Base.InstrTotal);
  for (size_t I = 0; I != Base.ArcTotals.size(); ++I)
    EXPECT_EQ(Acc.ArcTotals[I], 3 * Base.ArcTotals[I]) << I;
  // Peak stack is a maximum, never scaled by the weight.
  EXPECT_EQ(Acc.MaxPeakStackWords, Base.MaxPeakStackWords);
}

TEST(ProfileShardIo, MergeSaturatesInsteadOfWrapping) {
  MinCoverPlan Plan;
  Plan.NumProbes = 1;
  ProfileShard Acc = makeShard(Plan);
  ProfileShard S = makeShard(Plan);
  Acc.ArcTotals[0] = UINT64_MAX - 1;
  Acc.Runs = UINT64_MAX;
  S.ArcTotals[0] = 5;
  S.Runs = 1;
  ASSERT_TRUE(mergeShards(Acc, S));
  EXPECT_EQ(Acc.ArcTotals[0], UINT64_MAX);
  EXPECT_EQ(Acc.Runs, UINT64_MAX);
}

TEST(ProfileShardIo, MergeRejectsStaleShards) {
  // Each staleness class must fail without touching the accumulator.
  ShardFixture F({"stale"});
  const ProfileShard Acc = F.shardOf(0, 1);

  auto ExpectRejected = [&](ProfileShard Bad, const char *Needle) {
    ProfileShard A = Acc;
    std::string Error;
    EXPECT_FALSE(mergeShards(A, Bad, &Error));
    EXPECT_NE(Error.find(Needle), std::string::npos) << Error;
    EXPECT_EQ(A, Acc) << "rejected merge modified the accumulator";
  };

  ProfileShard Fp = F.shardOf(0, 1);
  Fp.Fingerprint ^= 1;
  ExpectRejected(Fp, "fingerprint");

  ProfileShard Ep = F.shardOf(0, 1);
  Ep.Epoch = Acc.Epoch + 1;
  ExpectRejected(Ep, "epoch");

  ProfileShard Md = F.shardOf(0, 1);
  Md.Mode = InstrumentMode::Full;
  ExpectRejected(Md, "mode");

  ProfileShard Layout = F.shardOf(0, 1);
  ASSERT_FALSE(Layout.ArcTotals.empty());
  Layout.ArcTotals.pop_back();
  ExpectRejected(Layout, "layout");
}

TEST(ProfileShardIo, RejectsDuplicateArcEntry) {
  const char *Text = "impact-profile-shard v2\n"
                     "fingerprint 1\n"
                     "mode mincover\n"
                     "epoch 0\n"
                     "weight 1\n"
                     "runs 1\n"
                     "il 10\n"
                     "external 0\n"
                     "peak-stack 0\n"
                     "arcs 2\n"
                     "0 5\n"
                     "0 6\n"
                     "ext-entries 0\n"
                     "halts 0\n";
  ProfileShard Out;
  std::string Error;
  EXPECT_FALSE(loadShard(Text, Out, &Error));
  EXPECT_EQ(Error, "line 12: duplicate 'arcs' entry for index 0");
}

TEST(ProfileShardIo, RejectsWrongMagicAndUnsortedHalts) {
  ProfileShard Out;
  std::string Error;
  EXPECT_FALSE(loadShard("impact-profile v1\nruns 1\n", Out, &Error));
  EXPECT_NE(Error.find("impact-profile-shard"), std::string::npos) << Error;

  const char *Unsorted = "impact-profile-shard v2\n"
                         "fingerprint 1\n"
                         "mode mincover\n"
                         "epoch 0\n"
                         "weight 1\n"
                         "runs 2\n"
                         "il 10\n"
                         "external 0\n"
                         "peak-stack 0\n"
                         "arcs 0\n"
                         "ext-entries 0\n"
                         "halts 2\n"
                         "1 0 0 1\n"
                         "0 0 0 1\n";
  EXPECT_FALSE(loadShard(Unsorted, Out, &Error));
  EXPECT_NE(Error.find("not sorted"), std::string::npos) << Error;
}

} // namespace
