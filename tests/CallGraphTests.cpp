//===- tests/CallGraphTests.cpp - weighted call graph tests -------------------===//
//
// Part of the impact-inline project, distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "callgraph/CallGraphBuilder.h"
#include "callgraph/Reachability.h"
#include "callgraph/Scc.h"

#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace impact;
using test::compileOk;

namespace {

CallGraph buildFor(const Module &M, const ProfileData *P = nullptr,
                   CallGraphOptions Opts = CallGraphOptions()) {
  return buildCallGraph(M, P, Opts);
}

//===----------------------------------------------------------------------===//
// SCC utility
//===----------------------------------------------------------------------===//

TEST(Scc, SingleNodes) {
  SccResult R = computeScc({{}, {}, {}});
  EXPECT_EQ(R.NumComponents, 3);
}

TEST(Scc, SimpleCycle) {
  // 0 -> 1 -> 2 -> 0
  SccResult R = computeScc({{1}, {2}, {0}});
  EXPECT_EQ(R.NumComponents, 1);
  EXPECT_EQ(R.ComponentSizes[0], 3u);
}

TEST(Scc, TwoComponentsTopologicalOrder) {
  // 0 -> 1; 1 and 2 form a cycle. Tarjan numbers callee components first.
  SccResult R = computeScc({{1}, {2}, {1}});
  EXPECT_EQ(R.NumComponents, 2);
  EXPECT_LT(R.ComponentIds[1], R.ComponentIds[0])
      << "successor SCC gets the lower id";
  EXPECT_EQ(R.ComponentIds[1], R.ComponentIds[2]);
}

TEST(Scc, SelfLoopIsSingletonComponent) {
  SccResult R = computeScc({{0}, {}});
  EXPECT_EQ(R.NumComponents, 2);
}

TEST(Scc, DeepChainDoesNotOverflow) {
  // 20k-node chain exercises the iterative DFS.
  std::vector<std::vector<int>> Succ(20000);
  for (int I = 0; I + 1 < 20000; ++I)
    Succ[I].push_back(I + 1);
  SccResult R = computeScc(Succ);
  EXPECT_EQ(R.NumComponents, 20000);
}

TEST(Reachability, BasicWalk) {
  auto Set = computeReachableSet({{1}, {2}, {}, {}}, 0);
  EXPECT_TRUE(Set[0]);
  EXPECT_TRUE(Set[1]);
  EXPECT_TRUE(Set[2]);
  EXPECT_FALSE(Set[3]);
}

//===----------------------------------------------------------------------===//
// Graph construction
//===----------------------------------------------------------------------===//

TEST(CallGraph, DirectArcsPerStaticSite) {
  Module M = compileOk("int f() { return 1; }"
                       "int main() { return f() + f(); }");
  CallGraph G = buildFor(M);
  // Two static sites -> two arcs with distinct site ids.
  FuncId F = M.findFunction("f");
  EXPECT_EQ(G.getInArcs(F).size(), 2u);
  uint32_t S0 = G.getArcs()[G.getInArcs(F)[0]].SiteId;
  uint32_t S1 = G.getArcs()[G.getInArcs(F)[1]].SiteId;
  EXPECT_NE(S0, S1);
}

TEST(CallGraph, ExternalCallsRouteToPseudoNode) {
  Module M = compileOk("extern int getchar();"
                       "int main() { return getchar(); }");
  CallGraph G = buildFor(M);
  NodeId Ext = G.getExternalNode();
  ASSERT_EQ(G.getOutArcs(M.MainId).size(), 1u);
  EXPECT_EQ(G.getArcs()[G.getOutArcs(M.MainId)[0]].Callee, Ext);
  EXPECT_EQ(G.getArcs()[G.getOutArcs(M.MainId)[0]].Kind,
            ArcKind::ToExternal);
}

TEST(CallGraph, ExternalNodeFansOutToEveryUserFunction) {
  Module M = compileOk("extern int getchar();"
                       "int helper() { return 2; }"
                       "int main() { return getchar() + helper(); }");
  CallGraph G = buildFor(M);
  // $$$ -> main and $$$ -> helper (worst case).
  EXPECT_EQ(G.getOutArcs(G.getExternalNode()).size(), 2u);
}

TEST(CallGraph, OptimisticModeHasNoExternalFanOut) {
  Module M = compileOk("extern int getchar();"
                       "int helper() { return 2; }"
                       "int main() { return getchar() + helper(); }");
  CallGraphOptions Opts;
  Opts.AssumeExternalsCallBack = false;
  CallGraph G = buildFor(M, nullptr, Opts);
  EXPECT_TRUE(G.getOutArcs(G.getExternalNode()).empty());
}

TEST(CallGraph, PointerCallsRouteToPointerNode) {
  Module M = compileOk(test::kPointerCallProgram);
  CallGraph G = buildFor(M);
  FuncId Apply = M.findFunction("apply");
  bool Found = false;
  for (size_t Index : G.getOutArcs(Apply))
    if (G.getArcs()[Index].Kind == ArcKind::ToPointer) {
      Found = true;
      EXPECT_EQ(G.getArcs()[Index].Callee, G.getPointerNode());
    }
  EXPECT_TRUE(Found);
}

TEST(CallGraph, PointerNodeWidensToAllWithExternals) {
  // kPointerCallProgram calls getchar, so ### reaches every user function,
  // not only the address-taken ones (§2.5 worst case).
  Module M = compileOk(test::kPointerCallProgram);
  CallGraph G = buildFor(M);
  size_t UserFuncs = 0;
  for (const Function &F : M.Funcs)
    UserFuncs += F.IsExternal ? 0 : 1;
  EXPECT_EQ(G.getOutArcs(G.getPointerNode()).size(), UserFuncs);
}

TEST(CallGraph, PointerNodeNarrowsWithoutExternals) {
  Module M = compileOk("int a(int x) { return x; }"
                       "int b(int x) { return x + 1; }"
                       "int unrelated() { return 9; }"
                       "int main() { int (*f)(int); f = a;"
                       "if (unrelated()) f = b; return f(1); }");
  CallGraphOptions Opts;
  Opts.AssumeExternalsCallBack = true; // irrelevant: no externals
  CallGraph G = buildFor(M, nullptr, Opts);
  // Only a and b are address-taken.
  EXPECT_EQ(G.getOutArcs(G.getPointerNode()).size(), 2u);
}

TEST(CallGraph, WeightsComeFromProfile) {
  Module M = compileOk(test::kCallHeavyProgram);
  ProfileResult P = test::profileInputs(M, {"abcd"});
  CallGraph G = buildFor(M, &P.Data);
  EXPECT_DOUBLE_EQ(G.getNodeWeight(M.findFunction("cube")), 4.0);
  bool CheckedArc = false;
  for (const CallArc &Arc : G.getArcs())
    if (Arc.Kind == ArcKind::Direct &&
        Arc.Callee == M.findFunction("cube")) {
      EXPECT_DOUBLE_EQ(Arc.Weight, 4.0);
      CheckedArc = true;
    }
  EXPECT_TRUE(CheckedArc);
}

//===----------------------------------------------------------------------===//
// Recursion detection
//===----------------------------------------------------------------------===//

TEST(CallGraph, SelfRecursionDetected) {
  Module M = compileOk("int f(int n) { return n ? f(n - 1) : 0; }"
                       "int main() { return f(3); }");
  CallGraph G = buildFor(M);
  EXPECT_TRUE(G.isRecursive(M.findFunction("f")));
  EXPECT_FALSE(G.isRecursive(M.MainId));
}

TEST(CallGraph, MutualRecursionDetected) {
  Module M = compileOk(
      "int even(int n) { return n == 0 ? 1 : odd(n - 1); }"
      "int odd(int n) { return n == 0 ? 0 : even(n - 1); }"
      "int main() { return even(4); }");
  CallGraph G = buildFor(M);
  FuncId Even = M.findFunction("even"), Odd = M.findFunction("odd");
  EXPECT_TRUE(G.isRecursive(Even));
  EXPECT_TRUE(G.isRecursive(Odd));
  EXPECT_EQ(G.getDirectSccId(Even), G.getDirectSccId(Odd));
  EXPECT_NE(G.getDirectSccId(Even), G.getDirectSccId(M.MainId));
}

TEST(CallGraph, ExternalCyclesDoNotPolluteDirectRecursion) {
  // Both functions do I/O, so the full graph has main <-> $$$ cycles, but
  // neither is *really* recursive.
  Module M = compileOk("extern int putchar(int c);"
                       "int emit(int c) { return putchar(c); }"
                       "int main() { return emit('x'); }");
  CallGraph G = buildFor(M);
  EXPECT_FALSE(G.isRecursive(M.MainId));
  EXPECT_FALSE(G.isRecursive(M.findFunction("emit")));
  EXPECT_TRUE(G.isOnCycle(M.MainId))
      << "the worst-case graph does have the $$$ cycle";
}

//===----------------------------------------------------------------------===//
// Reachability / dump
//===----------------------------------------------------------------------===//

TEST(CallGraph, UnreachableFunctionDetectedWithoutExternals) {
  Module M = compileOk("int used() { return 1; }"
                       "int unused() { return 2; }"
                       "int main() { return used(); }");
  CallGraph G = buildFor(M);
  EXPECT_TRUE(G.isReachable(M.findFunction("used")));
  EXPECT_FALSE(G.isReachable(M.findFunction("unused")));
}

TEST(CallGraph, ExternalsKeepEverythingReachable) {
  Module M = compileOk("extern int getchar();"
                       "int unused() { return 2; }"
                       "int main() { return getchar(); }");
  CallGraph G = buildFor(M);
  EXPECT_TRUE(G.isReachable(M.findFunction("unused")))
      << "worst case: the external may call it";
}

TEST(CallGraph, FindArcBySiteId) {
  Module M = compileOk("int f() { return 1; } int main() { return f(); }");
  CallGraph G = buildFor(M);
  // The only direct arc:
  uint32_t Site = 0;
  for (const CallArc &A : G.getArcs())
    if (A.Kind == ArcKind::Direct)
      Site = A.SiteId;
  ASSERT_NE(Site, 0u);
  EXPECT_NE(G.findArcBySite(Site), SIZE_MAX);
  EXPECT_EQ(G.findArcBySite(9999), SIZE_MAX);
  EXPECT_EQ(G.findArcBySite(0), SIZE_MAX);
}

TEST(CallGraph, DotExportIsWellFormed) {
  Module M = compileOk(test::kPointerCallProgram);
  CallGraph G = buildFor(M);
  std::vector<std::string> Names;
  for (const Function &F : M.Funcs)
    Names.push_back(F.Name);
  std::string Dot = G.dumpDot(Names);
  EXPECT_EQ(Dot.substr(0, 8), "digraph ");
  EXPECT_EQ(Dot.back(), '\n');
  EXPECT_NE(Dot.find("$$$"), std::string::npos);
  EXPECT_NE(Dot.find("shape=box"), std::string::npos)
      << "pseudo nodes render as boxes";
  EXPECT_NE(Dot.find("site#"), std::string::npos);
  EXPECT_NE(Dot.find("->"), std::string::npos);
  // Balanced braces.
  EXPECT_NE(Dot.find("}\n"), std::string::npos);
}

TEST(CallGraph, DotMarksRecursionAndUnreachable) {
  Module M = compileOk("int f(int n) { return n ? f(n - 1) : 0; }"
                       "int dead() { return 1; }"
                       "int main() { return f(3); }");
  CallGraph G = buildFor(M);
  std::vector<std::string> Names;
  for (const Function &F : M.Funcs)
    Names.push_back(F.Name);
  std::string Dot = G.dumpDot(Names);
  EXPECT_NE(Dot.find("penwidth=2"), std::string::npos) << "recursive f";
  EXPECT_NE(Dot.find("style=dashed"), std::string::npos)
      << "unreachable dead()";
}

TEST(CallGraph, DumpMentionsPseudoNodes) {
  Module M = compileOk(test::kPointerCallProgram);
  CallGraph G = buildFor(M);
  std::vector<std::string> Names;
  for (const Function &F : M.Funcs)
    Names.push_back(F.Name);
  std::string Text = G.dump(Names);
  EXPECT_NE(Text.find("$$$"), std::string::npos);
  EXPECT_NE(Text.find("###"), std::string::npos);
  EXPECT_NE(Text.find("apply"), std::string::npos);
}

} // namespace
