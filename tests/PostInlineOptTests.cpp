//===- tests/PostInlineOptTests.cpp - peephole / SCCP / LICM tests ------------===//
//
// Part of the impact-inline project, distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The post-inline cleanup trio (opt/Peephole.h, opt/Sccp.h,
/// opt/LoopInvariantCodeMotion.h) and the shared loop analysis they ride
/// on (analysis/LoopInfo.h). Positive transforms, the negative fixtures
/// each pass must refuse (trap-capable hoists, reachable branches,
/// operand arity), and the PassManager plumbing (parseOptPasses,
/// MaxIterations=0).
///
//===----------------------------------------------------------------------===//

#include "opt/JumpOptimization.h"
#include "opt/LoopInvariantCodeMotion.h"
#include "opt/PassManager.h"
#include "opt/Peephole.h"
#include "opt/Sccp.h"

#include "analysis/LoopInfo.h"
#include "ir/IrPrinter.h"
#include "ir/IrVerifier.h"

#include "TestUtil.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>

using namespace impact;
using test::compileOk;

namespace {

size_t countOps(const Function &F, Opcode Op) {
  size_t N = 0;
  for (const BasicBlock &B : F.Blocks)
    for (const Instr &I : B.Instrs)
      N += I.Op == Op ? 1 : 0;
  return N;
}

/// Loop depth of the block holding the first \p Op instruction, or -1 when
/// the function has none.
int depthOfFirst(const Function &F, Opcode Op) {
  std::vector<unsigned> Depth = computeLoopDepths(F);
  for (size_t B = 0; B != F.Blocks.size(); ++B)
    for (const Instr &I : F.Blocks[B].Instrs)
      if (I.Op == Op)
        return static_cast<int>(Depth[B]);
  return -1;
}

/// Checks a pass preserves behaviour on a source program + input, and
/// leaves a verifier-clean module (operand arity, terminator placement,
/// target validity — the structural contract every rewrite must keep).
template <typename PassFn>
void expectPreserves(PassFn Pass, const char *Source,
                     const std::string &Input) {
  Module M = compileOk(Source);
  RunOptions Opts;
  Opts.Input = Input;
  ExecResult Before = runProgram(M, Opts);
  ASSERT_TRUE(Before.ok()) << Before.TrapMessage;
  Pass(M);
  ASSERT_EQ(verifyModuleText(M), "");
  ExecResult After = runProgram(M, Opts);
  ASSERT_TRUE(After.ok()) << After.TrapMessage;
  EXPECT_EQ(Before.Output, After.Output);
  EXPECT_EQ(Before.ExitCode, After.ExitCode);
}

//===----------------------------------------------------------------------===//
// Peephole
//===----------------------------------------------------------------------===//

TEST(Peephole, FoldsAdditiveAndMultiplicativeIdentities) {
  // x is runtime input, so constant folding alone cannot touch these; the
  // peephole's algebraic identities must.
  Module M = compileOk("extern int getchar();"
                       "int main() { int x; x = getchar();"
                       "return (x + 0) * 1; }");
  EXPECT_TRUE(runPeephole(M));
  const Function &Main = M.getFunction(M.MainId);
  EXPECT_EQ(countOps(Main, Opcode::Add), 0u);
  EXPECT_EQ(countOps(Main, Opcode::Mul), 0u);
  ASSERT_EQ(verifyModuleText(M), "");
  RunOptions Opts;
  Opts.Input = "A";
  EXPECT_EQ(runProgram(M, Opts).ExitCode, 'A');
}

TEST(Peephole, StrengthReducesPowerOfTwoMultiply) {
  Module M = compileOk("extern int getchar();"
                       "int main() { int x; x = getchar();"
                       "return x * 8; }");
  EXPECT_TRUE(runPeephole(M));
  const Function &Main = M.getFunction(M.MainId);
  EXPECT_EQ(countOps(Main, Opcode::Mul), 0u);
  EXPECT_GE(countOps(Main, Opcode::Shl), 1u);
  ASSERT_EQ(verifyModuleText(M), "");
  RunOptions Opts;
  Opts.Input = "A";
  EXPECT_EQ(runProgram(M, Opts).ExitCode, 'A' * 8);
}

TEST(Peephole, LeavesNonPowerOfTwoMultiplyAlone) {
  Module M = compileOk("extern int getchar();"
                       "int main() { int x; x = getchar();"
                       "return x * 6; }");
  runPeephole(M);
  EXPECT_EQ(countOps(M.getFunction(M.MainId), Opcode::Mul), 1u);
}

TEST(Peephole, SameRegisterOperandsFold) {
  // x - x == 0 and x ^ x == 0 regardless of x's value; built by hand so
  // both operands are literally the same register.
  Module M;
  FuncId Id = M.addFunction("main", 0, false, false);
  Function &F = M.getFunction(Id);
  BlockId B = F.addBlock();
  Reg X = F.addReg(), D = F.addReg();
  F.getBlock(B).Instrs.push_back(Instr::makeLdImm(X, 7));
  F.getBlock(B).Instrs.push_back(
      Instr::makeBinary(Opcode::Sub, D, X, X));
  F.getBlock(B).Instrs.push_back(Instr::makeRet(D));
  M.MainId = Id;
  EXPECT_TRUE(runPeephole(F));
  EXPECT_EQ(countOps(F, Opcode::Sub), 0u);
  ASSERT_EQ(verifyModuleText(M), "");
  EXPECT_EQ(runProgram(M).ExitCode, 0);
}

TEST(Peephole, DoesNotFoldTrappingDivideByMinusOne) {
  // INT64_MIN / -1 traps (quotient overflow); folding it to a negate
  // would erase the trap. The peephole must leave the Div in place.
  Module M;
  FuncId Id = M.addFunction("main", 0, false, false);
  Function &F = M.getFunction(Id);
  BlockId B = F.addBlock();
  Reg A = F.addReg(), N = F.addReg(), D = F.addReg();
  F.getBlock(B).Instrs.push_back(
      Instr::makeLdImm(A, std::numeric_limits<int64_t>::min()));
  F.getBlock(B).Instrs.push_back(Instr::makeLdImm(N, -1));
  F.getBlock(B).Instrs.push_back(
      Instr::makeBinary(Opcode::Div, D, A, N));
  F.getBlock(B).Instrs.push_back(Instr::makeRet(D));
  M.MainId = Id;
  runPeephole(F);
  EXPECT_EQ(countOps(F, Opcode::Div), 1u);
  EXPECT_EQ(runProgram(M).St, ExecResult::Status::Trapped);
}

TEST(Peephole, KeepsOperandArityIntact) {
  // Strength reduction rewrites Mul into LdImm+Shl; every surviving
  // instruction must keep the operand shape the verifier demands.
  Module M = compileOk("extern int getchar();"
                       "int main() { int x; int y; x = getchar();"
                       "y = x * 16 + x * 3 - (x & x);"
                       "return y | 0; }");
  runPeephole(M);
  ASSERT_EQ(verifyModuleText(M), "");
}

TEST(Peephole, PreservesBehaviour) {
  expectPreserves([](Module &M) { runPeephole(M); },
                  test::kCallHeavyProgram, "hello world");
}

//===----------------------------------------------------------------------===//
// Sparse conditional constant propagation
//===----------------------------------------------------------------------===//

TEST(Sccp, PropagatesConstantsThroughJoins) {
  // y is 1 on both arms; only a propagation that merges flow-in states at
  // the join can prove it (block-local constant folding cannot).
  Module M = compileOk("extern int getchar();"
                       "int main() { int c; int y; c = getchar();"
                       "if (c) y = 1; else y = 1;"
                       "if (y) return 3; return 4; }");
  const Function &Main = M.getFunction(M.MainId);
  ASSERT_EQ(countOps(Main, Opcode::CondBr), 2u);
  EXPECT_TRUE(runSccp(M));
  EXPECT_EQ(countOps(Main, Opcode::CondBr), 1u)
      << "the branch on y must fold; the branch on c must stay";
  ASSERT_EQ(verifyModuleText(M), "");
  for (const char *In : {"", "x"}) {
    RunOptions Opts;
    Opts.Input = In;
    EXPECT_EQ(runProgram(M, Opts).ExitCode, 3);
  }
}

TEST(Sccp, DoesNotFoldReachableNonConstantBranch) {
  Module M = compileOk("extern int getchar();"
                       "int main() { int c; c = getchar();"
                       "if (c == 'x') return 1; return 2; }");
  runSccp(M);
  EXPECT_EQ(countOps(M.getFunction(M.MainId), Opcode::CondBr), 1u);
  RunOptions Yes, No;
  Yes.Input = "x";
  No.Input = "y";
  EXPECT_EQ(runProgram(M, Yes).ExitCode, 1);
  EXPECT_EQ(runProgram(M, No).ExitCode, 2);
}

TEST(Sccp, PreservesDivisionByZeroTrap) {
  Module M = compileOk("int main() { return 1 / 0; }");
  runSccp(M);
  EXPECT_EQ(runProgram(M).St, ExecResult::Status::Trapped)
      << "SCCP must not evaluate a trapping divide at compile time";
}

TEST(Sccp, DeadArmBecomesRemovableByJumpOptimization) {
  Module M = compileOk("extern int getchar();"
                       "int main() { int c; int y; c = getchar();"
                       "if (c) y = 1; else y = 1;"
                       "if (y) return 3; return 4; }");
  size_t BlocksBefore = M.getFunction(M.MainId).Blocks.size();
  runSccp(M);
  runJumpOptimization(M);
  EXPECT_LT(M.getFunction(M.MainId).Blocks.size(), BlocksBefore)
      << "the arm SCCP proved dead must be unlinked and removed";
  ASSERT_EQ(verifyModuleText(M), "");
  EXPECT_EQ(runProgram(M).ExitCode, 3);
}

TEST(Sccp, PreservesBehaviour) {
  expectPreserves([](Module &M) { runSccp(M); }, test::kCallHeavyProgram,
                  "hello world");
}

//===----------------------------------------------------------------------===//
// Loop-invariant code motion
//===----------------------------------------------------------------------===//

const char *const kInvariantMulLoop =
    "extern int getchar();"
    "int main() { int a; int b; int n; int i; int s;"
    "a = getchar(); b = getchar(); n = getchar(); s = 0;"
    "for (i = 0; i < n; i++) { s = s + a * b; }"
    "return s; }";

TEST(Licm, HoistsInvariantMultiplyOutOfLoop) {
  Module M = compileOk(kInvariantMulLoop);
  Function &Main = M.getFunction(M.MainId);
  ASSERT_GE(depthOfFirst(Main, Opcode::Mul), 1)
      << "fixture: the multiply starts inside the loop";
  RunOptions Opts;
  Opts.Input = "abc";
  ExecResult Before = runProgram(M, Opts);
  ASSERT_TRUE(Before.ok());

  EXPECT_TRUE(runLoopInvariantCodeMotion(Main));
  EXPECT_EQ(depthOfFirst(Main, Opcode::Mul), 0)
      << "a * b is invariant and must move to loop depth 0";
  ASSERT_EQ(verifyModuleText(M), "");
  ExecResult After = runProgram(M, Opts);
  ASSERT_TRUE(After.ok());
  EXPECT_EQ(Before.ExitCode, After.ExitCode);
  EXPECT_LT(After.Stats.InstrCount, Before.Stats.InstrCount)
      << "99 loop iterations each saved the multiply";
}

TEST(Licm, LeavesTrappingDivideInLoop) {
  // a / b traps when b is zero; the loop may run zero iterations, so
  // hoisting the divide would introduce a trap the program never had.
  Module M = compileOk("extern int getchar();"
                       "int main() { int a; int b; int n; int i; int s;"
                       "a = getchar(); b = getchar(); n = getchar(); s = 0;"
                       "for (i = 0; i < n; i++) { s = s + a / b; }"
                       "return s; }");
  Function &Main = M.getFunction(M.MainId);
  ASSERT_GE(depthOfFirst(Main, Opcode::Div), 1);
  runLoopInvariantCodeMotion(Main);
  EXPECT_GE(depthOfFirst(Main, Opcode::Div), 1)
      << "trap-capable instructions must never be hoisted";
  ASSERT_EQ(verifyModuleText(M), "");
}

TEST(Licm, LeavesLoadsInLoop) {
  // g never changes here, but LICM has no alias analysis: Load must stay
  // put. (The GlobalAddr feeding it is pure and may move.)
  Module M = compileOk("extern int getchar();"
                       "int g;"
                       "int main() { int n; int i; int s;"
                       "g = 5; n = getchar(); s = 0;"
                       "for (i = 0; i < n; i++) { s = s + g; }"
                       "return s; }");
  Function &Main = M.getFunction(M.MainId);
  ASSERT_GE(depthOfFirst(Main, Opcode::Load), 1);
  runLoopInvariantCodeMotion(Main);
  EXPECT_GE(depthOfFirst(Main, Opcode::Load), 1)
      << "memory reads must never be hoisted";
  ASSERT_EQ(verifyModuleText(M), "");
  RunOptions Opts;
  Opts.Input = "\x03";
  EXPECT_EQ(runProgram(M, Opts).ExitCode, 15);
}

TEST(Licm, ZeroTripLoopStaysCorrect) {
  // n == 0: the hoisted multiply executes once in the preheader even
  // though the body never ran — legal only because it cannot trap.
  Module M = compileOk(kInvariantMulLoop);
  runLoopInvariantCodeMotion(M);
  ASSERT_EQ(verifyModuleText(M), "");
  RunOptions Opts;
  Opts.Input = ""; // getchar() yields EOF: n = -1, zero iterations
  ExecResult R = runProgram(M, Opts);
  ASSERT_TRUE(R.ok()) << R.TrapMessage;
  EXPECT_EQ(R.ExitCode, 0);
}

TEST(Licm, IrreducibleLoopIsLeftAlone) {
  // Two-entry loop {B1, B2}: B0 branches into the middle of the cycle, so
  // no preheader placement is sound and the pass must refuse.
  Module M;
  FuncId Id = M.addFunction("main", 0, false, false);
  Function &F = M.getFunction(Id);
  BlockId B0 = F.addBlock(), B1 = F.addBlock(), B2 = F.addBlock(),
          B3 = F.addBlock();
  Reg C = F.addReg(), A = F.addReg(), T = F.addReg();
  F.getBlock(B0).Instrs.push_back(Instr::makeLdImm(C, 0));
  F.getBlock(B0).Instrs.push_back(Instr::makeLdImm(A, 9));
  F.getBlock(B0).Instrs.push_back(Instr::makeCondBr(C, B1, B2));
  F.getBlock(B1).Instrs.push_back(
      Instr::makeBinary(Opcode::Add, T, A, A)); // invariant, but stuck
  F.getBlock(B1).Instrs.push_back(Instr::makeCondBr(C, B2, B3));
  F.getBlock(B2).Instrs.push_back(Instr::makeJump(B1));
  F.getBlock(B3).Instrs.push_back(Instr::makeRet(A));
  M.MainId = Id;
  ASSERT_EQ(verifyModuleText(M), "");

  LoopInfo Info = computeLoopInfo(F);
  ASSERT_EQ(Info.Loops.size(), 1u);
  EXPECT_FALSE(Info.Loops[0].Reducible);

  std::string Before = printModule(M);
  EXPECT_FALSE(runLoopInvariantCodeMotion(F));
  EXPECT_EQ(printModule(M), Before);
}

TEST(Licm, PreservesBehaviour) {
  expectPreserves([](Module &M) { runLoopInvariantCodeMotion(M); },
                  test::kCallHeavyProgram, "hello world");
}

//===----------------------------------------------------------------------===//
// LoopInfo
//===----------------------------------------------------------------------===//

TEST(LoopInfo, NestedLoopsFormAParentChain) {
  Module M = compileOk("extern int putchar(int c);"
                       "int main() { int i; int j; int k;"
                       "for (i = 0; i < 3; i++)"
                       "  for (j = 0; j < 3; j++)"
                       "    for (k = 0; k < 3; k++) putchar('x');"
                       "return 0; }");
  LoopInfo Info = computeLoopInfo(M.getFunction(M.MainId));
  ASSERT_EQ(Info.Loops.size(), 3u);
  // Parents precede children, depths stack, and every natural loop from
  // structured source is reducible.
  unsigned MaxDepth = 0;
  for (const Loop &L : Info.Loops) {
    EXPECT_TRUE(L.Reducible);
    if (L.Parent >= 0) {
      EXPECT_LT(static_cast<size_t>(L.Parent), Info.Loops.size());
      EXPECT_EQ(Info.Loops[L.Parent].Depth + 1, L.Depth);
      EXPECT_TRUE(Info.Loops[L.Parent].contains(L.Header))
          << "a child loop lives inside its parent";
    } else {
      EXPECT_EQ(L.Depth, 1u);
    }
    MaxDepth = std::max(MaxDepth, L.Depth);
  }
  EXPECT_EQ(MaxDepth, 3u);
}

TEST(LoopInfo, DepthsAreUncapped) {
  // Five-deep nest: the old per-consumer implementations capped depth at
  // 4 (MinCover hardcoded, the estimator via its option default); the
  // shared analysis must report the true nesting.
  Module M = compileOk("extern int putchar(int c);"
                       "int main() { int a; int b; int c; int d; int e;"
                       "for (a = 0; a < 2; a++)"
                       " for (b = 0; b < 2; b++)"
                       "  for (c = 0; c < 2; c++)"
                       "   for (d = 0; d < 2; d++)"
                       "    for (e = 0; e < 2; e++) putchar('x');"
                       "return 0; }");
  const Function &Main = M.getFunction(M.MainId);
  std::vector<unsigned> Depth = computeLoopDepths(Main);
  unsigned MaxDepth = 0;
  for (unsigned D : Depth)
    MaxDepth = std::max(MaxDepth, D);
  EXPECT_EQ(MaxDepth, 5u);
  LoopInfo Info = computeLoopInfo(Main);
  EXPECT_EQ(Info.Loops.size(), 5u);
}

//===----------------------------------------------------------------------===//
// PassManager plumbing
//===----------------------------------------------------------------------===//

TEST(PassManager, ParseOptPassesGrammar) {
  OptOptions O;
  std::string Error;

  ASSERT_TRUE(parseOptPasses("all", O, &Error));
  EXPECT_TRUE(O.Sccp);
  EXPECT_TRUE(O.Peephole);
  EXPECT_TRUE(O.LoopInvariantCodeMotion);
  EXPECT_TRUE(O.TailRecursionElimination);

  ASSERT_TRUE(parseOptPasses("sccp,licm", O, &Error));
  EXPECT_TRUE(O.Sccp);
  EXPECT_TRUE(O.LoopInvariantCodeMotion);
  EXPECT_FALSE(O.Peephole);
  EXPECT_FALSE(O.ConstantFolding) << "positive specs start from nothing";

  ASSERT_TRUE(parseOptPasses("all,-licm", O, &Error));
  EXPECT_FALSE(O.LoopInvariantCodeMotion);
  EXPECT_TRUE(O.Sccp);

  ASSERT_TRUE(parseOptPasses("-peephole", O, &Error));
  EXPECT_FALSE(O.Peephole);
  EXPECT_TRUE(O.ConstantFolding) << "negative-only specs start from all";

  EXPECT_FALSE(parseOptPasses("sccp,bogus", O, &Error));
  EXPECT_NE(Error.find("bogus"), std::string::npos);
  EXPECT_NE(Error.find("licm"), std::string::npos)
      << "the error lists the valid names";

  OptOptions Defaults;
  Defaults.MaxIterations = 9;
  ASSERT_TRUE(parseOptPasses("all", Defaults, &Error));
  EXPECT_EQ(Defaults.MaxIterations, 9u) << "specs never touch iterations";
}

TEST(PassManager, RenderOptPassesInvertsParse) {
  OptOptions O;
  std::string Error;
  ASSERT_TRUE(parseOptPasses("fold,sccp,licm", O, &Error));
  EXPECT_EQ(renderOptPasses(O), "fold,sccp,licm");
  ASSERT_TRUE(parseOptPasses(
      "-fold,-jump,-copy,-dce,-tre,-sccp,-peephole,-licm,-ranges", O,
      &Error));
  EXPECT_EQ(renderOptPasses(O), "none");
}

TEST(PassManager, ZeroIterationsIsANoOp) {
  Module M = compileOk(test::kCallHeavyProgram);
  std::string Before = printModule(M);
  OptOptions O;
  std::string Error;
  ASSERT_TRUE(parseOptPasses("all", O, &Error));
  O.MaxIterations = 0;
  EXPECT_FALSE(runOptimizationPipeline(M, O));
  EXPECT_EQ(printModule(M), Before);
}

TEST(PassManager, FullPipelineWithNewPassesPreservesBehaviour) {
  OptOptions O;
  std::string Error;
  ASSERT_TRUE(parseOptPasses("all", O, &Error));
  for (const char *Source :
       {test::kCallHeavyProgram, test::kRecursiveProgram,
        test::kPointerCallProgram, kInvariantMulLoop}) {
    Module M = compileOk(Source);
    RunOptions Opts;
    Opts.Input = "abc xyz";
    ExecResult Before = runProgram(M, Opts);
    ASSERT_TRUE(Before.ok()) << Before.TrapMessage;
    runOptimizationPipeline(M, O);
    ASSERT_EQ(verifyModuleText(M), "");
    ExecResult After = runProgram(M, Opts);
    ASSERT_TRUE(After.ok()) << After.TrapMessage;
    EXPECT_EQ(Before.Output, After.Output);
    EXPECT_EQ(Before.ExitCode, After.ExitCode);
    EXPECT_LE(After.Stats.InstrCount, Before.Stats.InstrCount)
        << "the widened pipeline must not execute more instructions";
  }
}

} // namespace
