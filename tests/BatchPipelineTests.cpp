//===- tests/BatchPipelineTests.cpp - batch pipeline unit/smoke tests ---------===//
//
// Part of the impact-inline project, distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Unit tests for the batch-pipeline building blocks — the work-stealing
/// ThreadPool and the sharded FunctionDefinitionCache — plus smoke tests
/// that runBatchPipeline agrees with the serial runPipeline on the shared
/// test programs. The exhaustive randomized equivalence check lives in
/// ParallelDeterminismTests.cpp.
///
//===----------------------------------------------------------------------===//

#include "driver/BatchPipeline.h"
#include "driver/Pipeline.h"
#include "ir/IrPrinter.h"
#include "opt/PassManager.h"
#include "support/ThreadPool.h"

#include "TestUtil.h"

#include <gtest/gtest.h>

#include <atomic>

using namespace impact;
using test::compileOk;

namespace {

//===----------------------------------------------------------------------===//
// ThreadPool
//===----------------------------------------------------------------------===//

TEST(ThreadPool, ExecutesEveryTask) {
  ThreadPool Pool(4);
  std::atomic<int> Count{0};
  for (int I = 0; I != 200; ++I)
    Pool.submit([&Count] { Count.fetch_add(1, std::memory_order_relaxed); });
  Pool.wait();
  EXPECT_EQ(Count.load(), 200);
}

TEST(ThreadPool, ReusableAfterWait) {
  ThreadPool Pool(2);
  std::atomic<int> Count{0};
  Pool.submit([&Count] { Count.fetch_add(1); });
  Pool.wait();
  EXPECT_EQ(Count.load(), 1);
  for (int I = 0; I != 10; ++I)
    Pool.submit([&Count] { Count.fetch_add(1); });
  Pool.wait();
  EXPECT_EQ(Count.load(), 11);
}

TEST(ThreadPool, WaitWithNoTasksReturns) {
  ThreadPool Pool(2);
  Pool.wait(); // must not hang
}

TEST(ThreadPool, SubmitFromWithinTask) {
  ThreadPool Pool(2);
  std::atomic<int> Count{0};
  Pool.submit([&] {
    Count.fetch_add(1);
    for (int I = 0; I != 5; ++I)
      Pool.submit([&Count] { Count.fetch_add(1); });
  });
  Pool.wait();
  EXPECT_EQ(Count.load(), 6);
}

TEST(ThreadPool, DestructorDrainsQueue) {
  std::atomic<int> Count{0};
  {
    ThreadPool Pool(3);
    for (int I = 0; I != 50; ++I)
      Pool.submit([&Count] { Count.fetch_add(1); });
  }
  EXPECT_EQ(Count.load(), 50);
}

TEST(ThreadPool, ThreadCounts) {
  EXPECT_GE(ThreadPool::getDefaultThreadCount(), 1u);
  ThreadPool Explicit(3);
  EXPECT_EQ(Explicit.getThreadCount(), 3u);
  ThreadPool Default(0);
  EXPECT_EQ(Default.getThreadCount(), ThreadPool::getDefaultThreadCount());
}

//===----------------------------------------------------------------------===//
// FunctionDefinitionCache
//===----------------------------------------------------------------------===//

/// The first non-external function of the call-heavy test program.
Function &firstDefined(Module &M) {
  for (Function &F : M.Funcs)
    if (!F.IsExternal)
      return F;
  ADD_FAILURE() << "no defined function";
  return M.Funcs.front();
}

TEST(FunctionCache, KeyIgnoresFunctionName) {
  Module M = compileOk(test::kCallHeavyProgram);
  Function &F = firstDefined(M);
  OptOptions Opts;
  std::string Key = FunctionDefinitionCache::makeKey(F, Opts);
  std::string SavedName = F.Name;
  F.Name = "renamed_function";
  EXPECT_EQ(FunctionDefinitionCache::makeKey(F, Opts), Key);
  F.Name = SavedName;
}

TEST(FunctionCache, KeyDependsOnOptions) {
  Module M = compileOk(test::kCallHeavyProgram);
  Function &F = firstDefined(M);
  OptOptions A, B;
  B.DeadCodeElimination = false;
  OptOptions C;
  C.MaxIterations = 2;
  std::string KeyA = FunctionDefinitionCache::makeKey(F, A);
  EXPECT_NE(FunctionDefinitionCache::makeKey(F, B), KeyA);
  EXPECT_NE(FunctionDefinitionCache::makeKey(F, C), KeyA);
}

TEST(FunctionCache, KeyDependsOnBody) {
  Module M = compileOk(test::kCallHeavyProgram);
  Function &F = firstDefined(M);
  OptOptions Opts;
  std::string Key = FunctionDefinitionCache::makeKey(F, Opts);
  Module M2 = compileOk(test::kPointerCallProgram);
  Function &G = firstDefined(M2);
  EXPECT_NE(FunctionDefinitionCache::makeKey(G, Opts), Key);
}

TEST(FunctionCache, KeySeparatesSelfCallFromIdenticalWrapper) {
  // Site ids restart per module, so the collision is cross-module (two
  // batch jobs sharing the cache): rec (f0) tail-calls itself from its
  // module's first call site; wrap calls helper (also f0) from *its*
  // module's first call site, printing to the very same bytes (callee id,
  // registers, site id). Tail-recursion elimination rewrites only the
  // self-call, so the two bodies optimize differently and must never
  // share a cache key.
  Module MRec = compileOk("int rec(int n) { if (n == 0) return 0;"
                          "return rec(n - 1); }"
                          "int main() { return rec(3); }");
  Module MWrap = compileOk("int helper(int n) { return n; }"
                           "int wrap(int n) { if (n == 0) return 0;"
                           "return helper(n - 1); }"
                           "int main() { return wrap(3); }");
  Function &Rec = MRec.getFunction(MRec.findFunction("rec"));
  Function &Wrap = MWrap.getFunction(MWrap.findFunction("wrap"));

  // Premise: the printed bodies really are byte-identical.
  ASSERT_EQ(Rec.Blocks.size(), Wrap.Blocks.size());
  for (size_t B = 0; B != Rec.Blocks.size(); ++B) {
    ASSERT_EQ(Rec.Blocks[B].size(), Wrap.Blocks[B].size());
    for (size_t I = 0; I != Rec.Blocks[B].size(); ++I)
      ASSERT_EQ(printInstr(Rec.Blocks[B].Instrs[I], &Rec),
                printInstr(Wrap.Blocks[B].Instrs[I], &Wrap));
  }

  OptOptions Opts;
  EXPECT_NE(FunctionDefinitionCache::makeKey(Rec, Opts),
            FunctionDefinitionCache::makeKey(Wrap, Opts));
  Opts.TailRecursionElimination = true;
  EXPECT_NE(FunctionDefinitionCache::makeKey(Rec, Opts),
            FunctionDefinitionCache::makeKey(Wrap, Opts));
}

TEST(FunctionCache, HitSplicesIdenticalBody) {
  OptOptions Opts;
  FunctionDefinitionCache Cache;

  // Optimize one copy the normal way and insert it.
  Module M1 = compileOk(test::kCallHeavyProgram);
  Function &F1 = firstDefined(M1);
  std::string Key = FunctionDefinitionCache::makeKey(F1, Opts);
  Function Scratch = F1;
  EXPECT_FALSE(Cache.lookup(Key, Scratch)); // cold cache
  runOptimizationPipeline(F1, Opts);
  Cache.insert(Key, F1);

  // A fresh compile must hit and end up bit-identical to re-optimizing.
  Module M2 = compileOk(test::kCallHeavyProgram);
  Function &F2 = firstDefined(M2);
  ASSERT_EQ(FunctionDefinitionCache::makeKey(F2, Opts), Key);
  EXPECT_TRUE(Cache.lookup(Key, F2));
  EXPECT_EQ(printFunction(F2), printFunction(F1));
  EXPECT_EQ(F2.NumRegs, F1.NumRegs);
  EXPECT_EQ(F2.FrameSize, F1.FrameSize);
}

TEST(FunctionCache, StatsAndClear) {
  OptOptions Opts;
  FunctionDefinitionCache Cache;
  Module M = compileOk(test::kCallHeavyProgram);
  Function &F = firstDefined(M);
  std::string Key = FunctionDefinitionCache::makeKey(F, Opts);

  Function Scratch = F;
  EXPECT_FALSE(Cache.lookup(Key, Scratch));
  runOptimizationPipeline(F, Opts);
  Cache.insert(Key, F);
  Function Scratch2 = firstDefined(M);
  EXPECT_TRUE(Cache.lookup(Key, Scratch2));

  FunctionCacheStats S = Cache.getStats();
  EXPECT_EQ(S.Hits, 1u);
  EXPECT_EQ(S.Misses, 1u);
  EXPECT_EQ(S.Entries, 1u);
  EXPECT_EQ(S.InstrsServed, F.size());
  EXPECT_DOUBLE_EQ(S.getHitRate(), 0.5);

  Cache.clear();
  S = Cache.getStats();
  EXPECT_EQ(S.Hits, 0u);
  EXPECT_EQ(S.Misses, 0u);
  EXPECT_EQ(S.Entries, 0u);
  Function Scratch3 = firstDefined(M);
  EXPECT_FALSE(Cache.lookup(Key, Scratch3));
}

//===----------------------------------------------------------------------===//
// Batch vs serial smoke tests
//===----------------------------------------------------------------------===//

std::vector<BatchJob> makeTestJobs() {
  const struct {
    const char *Name;
    const char *Source;
  } Programs[] = {
      {"call_heavy", test::kCallHeavyProgram},
      {"recursive", test::kRecursiveProgram},
      {"pointer_call", test::kPointerCallProgram},
  };
  std::vector<BatchJob> Jobs;
  for (const auto &P : Programs) {
    BatchJob Job;
    Job.Name = P.Name;
    Job.Source = P.Source;
    Job.Inputs = {RunInput{"abcdef", ""}, RunInput{"x", ""},
                  RunInput{"", ""}};
    Jobs.push_back(std::move(Job));
  }
  return Jobs;
}

/// Everything observable must match; timing/cache counters are exempt by
/// design (they live in PipelineResult::Stats).
void expectSameResult(const PipelineResult &A, const PipelineResult &B,
                      const std::string &Tag) {
  ASSERT_EQ(A.Ok, B.Ok) << Tag;
  EXPECT_EQ(A.Error, B.Error) << Tag;
  EXPECT_TRUE(A.Before == B.Before) << Tag;
  EXPECT_TRUE(A.After == B.After) << Tag;
  EXPECT_TRUE(A.Inline.Linear == B.Inline.Linear) << Tag;
  EXPECT_TRUE(A.Inline.Plan == B.Inline.Plan) << Tag;
  EXPECT_TRUE(A.Inline.Expansions == B.Inline.Expansions) << Tag;
  EXPECT_EQ(A.Inline.EliminatedFunctions, B.Inline.EliminatedFunctions)
      << Tag;
  EXPECT_EQ(A.Inline.SizeBefore, B.Inline.SizeBefore) << Tag;
  EXPECT_EQ(A.Inline.SizeAfter, B.Inline.SizeAfter) << Tag;
  EXPECT_EQ(A.OutputsBefore, B.OutputsBefore) << Tag;
  EXPECT_EQ(A.OutputsAfter, B.OutputsAfter) << Tag;
  EXPECT_EQ(printModule(A.FinalModule), printModule(B.FinalModule)) << Tag;
}

TEST(BatchPipeline, MatchesSerialPipeline) {
  std::vector<BatchJob> Jobs = makeTestJobs();

  std::vector<PipelineResult> Serial;
  for (const BatchJob &Job : Jobs)
    Serial.push_back(
        runPipeline(Job.Source, Job.Name, Job.Inputs, Job.Options));

  for (unsigned Threads : {1u, 4u}) {
    BatchOptions Options;
    Options.Jobs = Threads;
    BatchResult R = runBatchPipeline(Jobs, Options);
    ASSERT_TRUE(R.allOk()) << "threads=" << Threads;
    ASSERT_EQ(R.Results.size(), Jobs.size());
    for (size_t I = 0; I != Jobs.size(); ++I)
      expectSameResult(Serial[I], R.Results[I],
                       Jobs[I].Name + " threads=" +
                           std::to_string(Threads));
  }
}

TEST(BatchPipeline, CacheDisabledStillMatches) {
  std::vector<BatchJob> Jobs = makeTestJobs();
  BatchOptions Cached;
  Cached.Jobs = 2;
  BatchOptions Uncached;
  Uncached.Jobs = 2;
  Uncached.UseDefinitionCache = false;
  BatchResult A = runBatchPipeline(Jobs, Cached);
  BatchResult B = runBatchPipeline(Jobs, Uncached);
  ASSERT_TRUE(A.allOk());
  ASSERT_TRUE(B.allOk());
  for (size_t I = 0; I != Jobs.size(); ++I)
    expectSameResult(A.Results[I], B.Results[I], Jobs[I].Name);
  EXPECT_EQ(B.Aggregate.CacheHits + B.Aggregate.CacheMisses, 0u);
}

TEST(BatchPipeline, CachedMatchesUncachedAcrossPassSets) {
  // The cache-key bugfix end to end: ONE external cache is reused across
  // four pass-set configurations of the same programs. If makeKey missed
  // any OptOptions field, a later configuration would splice a body
  // optimized under an earlier one and diverge from its uncached run.
  FunctionDefinitionCache Shared;
  for (const char *Spec : {"fold,jump,copy,dce", "all",
                           "sccp,peephole,licm", "all,-dce,-licm"}) {
    SCOPED_TRACE(Spec);
    OptOptions Passes;
    std::string Error;
    ASSERT_TRUE(parseOptPasses(Spec, Passes, &Error)) << Error;
    std::vector<BatchJob> Jobs = makeTestJobs();
    for (BatchJob &Job : Jobs) {
      Job.Options.PreOpt = Passes;
      Job.Options.Inline.PostInlineOptimize = true;
      Job.Options.Inline.PostOpt = Passes;
    }
    BatchOptions Cached;
    Cached.Jobs = 4;
    Cached.ExternalCache = &Shared;
    BatchOptions Uncached;
    Uncached.Jobs = 4;
    Uncached.UseDefinitionCache = false;
    BatchResult A = runBatchPipeline(Jobs, Cached);
    BatchResult B = runBatchPipeline(Jobs, Uncached);
    ASSERT_TRUE(A.allOk());
    ASSERT_TRUE(B.allOk());
    for (size_t I = 0; I != Jobs.size(); ++I)
      expectSameResult(A.Results[I], B.Results[I],
                       std::string(Spec) + " " + Jobs[I].Name);
  }
  EXPECT_GT(Shared.getStats().Entries, 0u);
}

TEST(BatchPipeline, AggregateSumsCacheCounters) {
  std::vector<BatchJob> Jobs = makeTestJobs();
  BatchResult R = runBatchPipeline(Jobs);
  ASSERT_TRUE(R.allOk());
  EXPECT_EQ(R.Aggregate.CacheHits + R.Aggregate.CacheMisses,
            R.Cache.Hits + R.Cache.Misses);
  EXPECT_GT(R.Aggregate.CacheMisses, 0u); // cold cache must miss
  EXPECT_GT(R.ThreadsUsed, 0u);
  EXPECT_GE(R.WallSeconds, 0.0);
  EXPECT_GE(R.getCpuSeconds(), 0.0);
}

TEST(BatchPipeline, ExternalCachePersistsAcrossBatches) {
  std::vector<BatchJob> Jobs = makeTestJobs();
  FunctionDefinitionCache Cache;
  BatchOptions Options;
  Options.Jobs = 2;
  Options.ExternalCache = &Cache;

  BatchResult First = runBatchPipeline(Jobs, Options);
  ASSERT_TRUE(First.allOk());
  EXPECT_EQ(First.Aggregate.CacheHits, 0u);

  BatchResult Second = runBatchPipeline(Jobs, Options);
  ASSERT_TRUE(Second.allOk());
  // Every pre-opt body is now served from the first batch's entries.
  EXPECT_EQ(Second.Aggregate.CacheMisses, 0u);
  EXPECT_EQ(Second.Aggregate.CacheHits, First.Aggregate.CacheMisses);
  for (size_t I = 0; I != Jobs.size(); ++I)
    expectSameResult(First.Results[I], Second.Results[I], Jobs[I].Name);
}

TEST(BatchPipeline, FailedJobIsIsolated) {
  std::vector<BatchJob> Jobs = makeTestJobs();
  BatchJob Bad;
  Bad.Name = "broken";
  Bad.Source = "int main( { return }";
  Bad.Inputs = {RunInput{"", ""}};
  Jobs.insert(Jobs.begin() + 1, Bad);

  BatchResult R = runBatchPipeline(Jobs);
  EXPECT_FALSE(R.allOk());
  EXPECT_EQ(R.firstFailure(), 1);
  ASSERT_EQ(R.Results.size(), Jobs.size());
  EXPECT_FALSE(R.Results[1].Ok);
  EXPECT_FALSE(R.Results[1].Error.empty());
  EXPECT_TRUE(R.Results[0].Ok);
  EXPECT_TRUE(R.Results[2].Ok);
  EXPECT_TRUE(R.Results[3].Ok);

  // The failure is quarantined as a structured record, not just a string.
  ASSERT_EQ(R.Failures.size(), 1u);
  EXPECT_EQ(R.Failures[0].Unit, "broken");
  EXPECT_EQ(R.Failures[0].Stage, "compile");
  EXPECT_EQ(R.Failures[0].Reason, "diagnostic");
  EXPECT_FALSE(R.Failures[0].Detail.empty());
  EXPECT_EQ(R.Results[1].Failure.Unit, "broken");

  // The report footer names the quarantined unit; a clean batch's report
  // must not mention failures at all.
  std::string Report = renderBatchReport(Jobs, R);
  EXPECT_NE(Report.find("[failed]"), std::string::npos);
  EXPECT_NE(Report.find("broken"), std::string::npos);

  // The surviving jobs are bit-identical to a batch without the bad unit.
  Jobs.erase(Jobs.begin() + 1);
  BatchResult Clean = runBatchPipeline(Jobs);
  ASSERT_TRUE(Clean.allOk());
  EXPECT_TRUE(Clean.Failures.empty());
  EXPECT_EQ(renderBatchReport(Jobs, Clean).find("[failed]"),
            std::string::npos);
  expectSameResult(Clean.Results[0], R.Results[0], "job0");
  expectSameResult(Clean.Results[1], R.Results[2], "job2");
  expectSameResult(Clean.Results[2], R.Results[3], "job3");
}

TEST(BatchPipeline, ReportNamesEveryJob) {
  std::vector<BatchJob> Jobs = makeTestJobs();
  BatchResult R = runBatchPipeline(Jobs);
  ASSERT_TRUE(R.allOk());
  std::string Report = renderBatchReport(Jobs, R);
  for (const BatchJob &Job : Jobs)
    EXPECT_NE(Report.find(Job.Name), std::string::npos) << Job.Name;
  EXPECT_NE(Report.find("cache"), std::string::npos);
}

} // namespace
