//===- tests/InterpTests.cpp - interpreter semantics tests --------------------===//
//
// Part of the impact-inline project, distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "interp/Interpreter.h"

#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace impact;
using test::compileOk;
using test::runSource;

namespace {

/// Runs `int main() { return <Expr>; }` and returns the exit code.
int64_t evalExpr(const std::string &Expr) {
  Module M = compileOk("int main() { return " + Expr + "; }");
  RunOptions Opts;
  ExecResult R = runProgram(M, Opts);
  EXPECT_TRUE(R.ok()) << R.TrapMessage;
  return R.ExitCode;
}

//===----------------------------------------------------------------------===//
// Parameterized arithmetic sweep: every binary operator over a value grid,
// checked against the host's semantics.
//===----------------------------------------------------------------------===//

struct BinOpCase {
  const char *Op;
  int64_t (*Eval)(int64_t, int64_t);
};

int64_t hostAdd(int64_t A, int64_t B) {
  return static_cast<int64_t>(static_cast<uint64_t>(A) +
                              static_cast<uint64_t>(B));
}
int64_t hostSub(int64_t A, int64_t B) {
  return static_cast<int64_t>(static_cast<uint64_t>(A) -
                              static_cast<uint64_t>(B));
}
int64_t hostMul(int64_t A, int64_t B) {
  return static_cast<int64_t>(static_cast<uint64_t>(A) *
                              static_cast<uint64_t>(B));
}
int64_t hostAnd(int64_t A, int64_t B) { return A & B; }
int64_t hostOr(int64_t A, int64_t B) { return A | B; }
int64_t hostXor(int64_t A, int64_t B) { return A ^ B; }
int64_t hostLt(int64_t A, int64_t B) { return A < B; }
int64_t hostLe(int64_t A, int64_t B) { return A <= B; }
int64_t hostGt(int64_t A, int64_t B) { return A > B; }
int64_t hostGe(int64_t A, int64_t B) { return A >= B; }
int64_t hostEq(int64_t A, int64_t B) { return A == B; }
int64_t hostNe(int64_t A, int64_t B) { return A != B; }

class BinaryOpSemantics : public ::testing::TestWithParam<BinOpCase> {};

TEST_P(BinaryOpSemantics, MatchesHostOnGrid) {
  const BinOpCase &C = GetParam();
  const int64_t Grid[] = {-9, -2, -1, 0, 1, 2, 3, 8, 127};
  // One program evaluating the op over a pair read from input digits would
  // be slow; instead build one program per pair lazily but in one module:
  // simpler and still fast — evaluate via globals.
  for (int64_t A : Grid) {
    for (int64_t B : Grid) {
      std::string Expr = "(" + std::to_string(A) + " " + C.Op + " (" +
                         std::to_string(B) + "))";
      EXPECT_EQ(evalExpr(Expr), C.Eval(A, B))
          << A << " " << C.Op << " " << B;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllOps, BinaryOpSemantics,
    ::testing::Values(BinOpCase{"+", hostAdd}, BinOpCase{"-", hostSub},
                      BinOpCase{"*", hostMul}, BinOpCase{"&", hostAnd},
                      BinOpCase{"|", hostOr}, BinOpCase{"^", hostXor},
                      BinOpCase{"<", hostLt}, BinOpCase{"<=", hostLe},
                      BinOpCase{">", hostGt}, BinOpCase{">=", hostGe},
                      BinOpCase{"==", hostEq}, BinOpCase{"!=", hostNe}),
    [](const ::testing::TestParamInfo<BinOpCase> &Info) {
      std::string Name;
      for (const char *P = Info.param.Op; *P; ++P)
        switch (*P) {
        case '+': Name += "Add"; break;
        case '-': Name += "Sub"; break;
        case '*': Name += "Mul"; break;
        case '&': Name += "And"; break;
        case '|': Name += "Or"; break;
        case '^': Name += "Xor"; break;
        case '<': Name += "Lt"; break;
        case '>': Name += "Gt"; break;
        case '=': Name += "Eq"; break;
        case '!': Name += "Not"; break;
        }
      return Name;
    });

//===----------------------------------------------------------------------===//
// Individual semantics
//===----------------------------------------------------------------------===//

TEST(Interp, DivisionTruncatesTowardZero) {
  EXPECT_EQ(evalExpr("7 / 2"), 3);
  EXPECT_EQ(evalExpr("-7 / 2"), -3);
  EXPECT_EQ(evalExpr("7 / -2"), -3);
  EXPECT_EQ(evalExpr("7 % 2"), 1);
  EXPECT_EQ(evalExpr("-7 % 2"), -1);
}

TEST(Interp, ShiftsMaskCount) {
  EXPECT_EQ(evalExpr("1 << 3"), 8);
  EXPECT_EQ(evalExpr("1 << 64"), 1) << "count taken mod 64";
  EXPECT_EQ(evalExpr("-8 >> 1"), -4) << "arithmetic shift";
}

TEST(Interp, UnaryOperators) {
  EXPECT_EQ(evalExpr("-(5)"), -5);
  EXPECT_EQ(evalExpr("~0"), -1);
  EXPECT_EQ(evalExpr("!0"), 1);
  EXPECT_EQ(evalExpr("!7"), 0);
  EXPECT_EQ(evalExpr("!!7"), 1);
}

TEST(Interp, ShortCircuitAndSkipsRhs) {
  // If && evaluated its RHS, the division by zero would trap.
  Module M = compileOk(
      "int main() { int z; z = 0; return z != 0 && 1 / z; }");
  ExecResult R = runProgram(M);
  EXPECT_TRUE(R.ok()) << R.TrapMessage;
  EXPECT_EQ(R.ExitCode, 0);
}

TEST(Interp, ShortCircuitOrSkipsRhs) {
  Module M = compileOk(
      "int main() { int z; z = 0; return z == 0 || 1 / z; }");
  ExecResult R = runProgram(M);
  EXPECT_TRUE(R.ok()) << R.TrapMessage;
  EXPECT_EQ(R.ExitCode, 1);
}

TEST(Interp, LogicalOpsNormalizeToBool) {
  EXPECT_EQ(evalExpr("5 && 9"), 1);
  EXPECT_EQ(evalExpr("5 || 0"), 1);
  EXPECT_EQ(evalExpr("0 && 9"), 0);
}

TEST(Interp, ConditionalExpressionLaziness) {
  Module M = compileOk(
      "int main() { int z; z = 0; return z ? 1 / z : 42; }");
  ExecResult R = runProgram(M);
  EXPECT_TRUE(R.ok()) << R.TrapMessage;
  EXPECT_EQ(R.ExitCode, 42);
}

TEST(Interp, DivisionByZeroTraps) {
  Module M = compileOk("int main() { int z; z = 0; return 1 / z; }");
  ExecResult R = runProgram(M);
  EXPECT_EQ(R.St, ExecResult::Status::Trapped);
  EXPECT_NE(R.TrapMessage.find("division by zero"), std::string::npos);
}

TEST(Interp, RemainderByZeroTraps) {
  Module M = compileOk("int main() { int z; z = 0; return 1 % z; }");
  EXPECT_EQ(runProgram(M).St, ExecResult::Status::Trapped);
}

TEST(Interp, IncrementDecrementSemantics) {
  EXPECT_EQ(runSource("extern int print_int(int v);"
                      "int main() { int x; x = 5;"
                      "print_int(x++); print_int(x);"
                      "print_int(++x); print_int(x--); print_int(--x);"
                      "return 0; }"),
            "56775");
}

TEST(Interp, GlobalsPersistAcrossCalls) {
  EXPECT_EQ(runSource("extern int print_int(int v);"
                      "int g; int bump() { g = g + 1; return g; }"
                      "int main() { bump(); bump(); print_int(bump());"
                      "return 0; }"),
            "3");
}

TEST(Interp, GlobalArrayIndexing) {
  EXPECT_EQ(runSource("extern int print_int(int v);"
                      "int a[5];"
                      "int main() { int i;"
                      "for (i = 0; i < 5; i++) a[i] = i * i;"
                      "print_int(a[0] + a[1] + a[2] + a[3] + a[4]);"
                      "return 0; }"),
            "30");
}

TEST(Interp, LocalArrayZeroInitialized) {
  EXPECT_EQ(runSource("extern int print_int(int v);"
                      "int main() { int a[4]; print_int(a[3]); return 0; }"),
            "0");
}

TEST(Interp, PointerArithmeticWalksWords) {
  EXPECT_EQ(runSource("extern int print_int(int v);"
                      "int a[4];"
                      "int main() { int *p; a[2] = 77; p = a;"
                      "print_int(*(p + 2)); return 0; }"),
            "77");
}

TEST(Interp, StringLiteralContents) {
  EXPECT_EQ(runSource("extern int putchar(int c);"
                      "int main() { int *s; s = \"ok\";"
                      "while (*s != 0) { putchar(*s); s = s + 1; }"
                      "return 0; }"),
            "ok");
}

TEST(Interp, RecursionComputesFib) {
  EXPECT_EQ(runSource("extern int print_int(int v);"
                      "int fib(int n) { if (n < 2) return n;"
                      "return fib(n - 1) + fib(n - 2); }"
                      "int main() { print_int(fib(15)); return 0; }"),
            "610");
}

TEST(Interp, MutualRecursion) {
  // No prototypes needed: top-level names resolve in a first pass.
  EXPECT_EQ(runSource("extern int print_int(int v);"
                      "int even(int n) { return n == 0 ? 1 : odd(n - 1); }"
                      "int main() { print_int(even(10)); return 0; }"
                      "int odd(int n) { return n == 0 ? 0 : even(n - 1); }"),
            "1");
}

TEST(Interp, IndirectCallsDispatch) {
  Module M = compileOk(test::kPointerCallProgram);
  ExecResult R = test::runOk(M, "ab");
  // total = apply('a'%2=1 -> add_two)(0)=2; apply('b'%2=0 -> add_one)(2)=3.
  EXPECT_EQ(R.Output, "3\n");
}

TEST(Interp, IndirectCallThroughGarbageTraps) {
  Module M = compileOk("int main() { int (*f)(int); f = 1234; return f(1); }");
  ExecResult R = runProgram(M);
  EXPECT_EQ(R.St, ExecResult::Status::Trapped);
}

TEST(Interp, StepLimitStopsRunawayLoop) {
  Module M = compileOk("int main() { while (1) { } return 0; }");
  RunOptions Opts;
  Opts.StepLimit = 1000;
  ExecResult R = runProgram(M, Opts);
  EXPECT_EQ(R.St, ExecResult::Status::StepLimitExceeded);
}

TEST(Interp, StackOverflowTraps) {
  Module M = compileOk("int down(int n) { return down(n + 1); }"
                       "int main() { return down(0); }");
  RunOptions Opts;
  Opts.StackWords = 2000;
  Opts.StepLimit = 10'000'000;
  ExecResult R = runProgram(M, Opts);
  EXPECT_EQ(R.St, ExecResult::Status::Trapped);
  EXPECT_NE(R.TrapMessage.find("stack overflow"), std::string::npos);
}

TEST(Interp, NullLoadTraps) {
  Module M = compileOk("int main() { int *p; p = 0; return *p; }");
  EXPECT_EQ(runProgram(M).St, ExecResult::Status::Trapped);
}

TEST(Interp, WildStoreTraps) {
  Module M = compileOk("int main() { int *p; p = 123456; *p = 1; return 0; }");
  EXPECT_EQ(runProgram(M).St, ExecResult::Status::Trapped);
}

//===----------------------------------------------------------------------===//
// Statistics
//===----------------------------------------------------------------------===//

TEST(InterpStats, CountsInstructionsAndCalls) {
  Module M = compileOk(test::kCallHeavyProgram);
  ExecResult R = test::runOk(M, std::string(10, 'x'));
  EXPECT_GT(R.Stats.InstrCount, 100u);
  EXPECT_GT(R.Stats.DynamicCalls, 20u);
  EXPECT_GT(R.Stats.ControlTransfers, 10u);
  EXPECT_GT(R.Stats.Returns, 20u);
}

TEST(InterpStats, SiteCountsMatchCallTotals) {
  Module M = compileOk(test::kCallHeavyProgram);
  ExecResult R = test::runOk(M, std::string(7, 'x'));
  uint64_t SiteTotal = 0;
  for (uint64_t C : R.Stats.SiteCounts)
    SiteTotal += C;
  EXPECT_EQ(SiteTotal, R.Stats.DynamicCalls);
}

TEST(InterpStats, FuncEntryCounts) {
  Module M = compileOk(test::kCallHeavyProgram);
  ExecResult R = test::runOk(M, std::string(5, 'x'));
  // accumulate called once; cube 5 times; square 5 (from cube) + 5 = 10.
  EXPECT_EQ(R.Stats.FuncEntryCounts[M.findFunction("accumulate")], 1u);
  EXPECT_EQ(R.Stats.FuncEntryCounts[M.findFunction("cube")], 5u);
  EXPECT_EQ(R.Stats.FuncEntryCounts[M.findFunction("square")], 10u);
}

TEST(InterpStats, ExternalAndPointerCallsTracked) {
  Module M = compileOk(test::kPointerCallProgram);
  ExecResult R = test::runOk(M, "abcd");
  EXPECT_GE(R.Stats.PointerCalls, 4u);
  EXPECT_GE(R.Stats.ExternalCalls, 5u); // 5 getchar + print_int + putchar
}

TEST(InterpStats, ControlTransfersExcludeCallsAndReturns) {
  Module M = compileOk("int main() { return 0; }");
  ExecResult R = test::runOk(M);
  EXPECT_EQ(R.Stats.ControlTransfers, 0u);
}

TEST(InterpStats, PeakStackGrowsWithRecursionDepth) {
  const char *Src = "int down(int n) { if (n == 0) return 0;"
                    "return down(n - 1); }"
                    "extern int getchar();"
                    "int main() { int d; d = 0;"
                    "while (getchar() != -1) d = d + 1;"
                    "return down(d); }";
  Module M = compileOk(Src);
  ExecResult Shallow = test::runOk(M, "xx");
  ExecResult Deep = test::runOk(M, std::string(40, 'x'));
  EXPECT_GT(Deep.Stats.PeakStackWords, Shallow.Stats.PeakStackWords);
}

TEST(InterpStats, OpcodeCountsSumToInstrCount) {
  Module M = compileOk(test::kCallHeavyProgram);
  ExecResult R = test::runOk(M, "xyz");
  uint64_t Sum = 0;
  for (uint64_t C : R.Stats.OpcodeCounts)
    Sum += C;
  EXPECT_EQ(Sum, R.Stats.InstrCount);
}

TEST(Interp, ExitCodePropagatesFromMain) {
  Module M = compileOk("int main() { return 42; }");
  EXPECT_EQ(runProgram(M).ExitCode, 42);
}

} // namespace
