//===- tests/TestUtil.h - Shared test helpers -----------------------------===//
//
// Part of the impact-inline project, distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#ifndef IMPACT_TESTS_TESTUTIL_H
#define IMPACT_TESTS_TESTUTIL_H

#include "driver/Compilation.h"
#include "interp/Interpreter.h"
#include "profile/Profiler.h"

#include <string>
#include <string_view>

namespace impact {
namespace test {

/// Compiles \p Source, failing the current test (ADD_FAILURE) on errors;
/// returns the module regardless so callers can bail out.
Module compileOk(std::string_view Source, bool RequireMain = true);

/// Compiles \p Source expecting failure; returns the rendered errors.
std::string compileErrors(std::string_view Source, bool RequireMain = true);

/// Compiles and runs \p Source on \p Input; fails the test if compilation
/// or execution fails. Returns the program output.
std::string runSource(std::string_view Source, std::string Input = "",
                      std::string Input2 = "");

/// Runs an already-compiled module; fails the test on traps.
ExecResult runOk(const Module &M, std::string Input = "",
                 std::string Input2 = "");

/// Profiles \p M over single-stream inputs.
ProfileResult profileInputs(const Module &M,
                            const std::vector<std::string> &Inputs);

/// A tiny call-heavy program used across many tests: main loops N times
/// (driven by the input length) calling helpers.
extern const char *const kCallHeavyProgram;

/// A program with self recursion (fib) and a large-frame helper, for
/// stack-hazard tests.
extern const char *const kRecursiveProgram;

/// A program with calls through pointers and an external call.
extern const char *const kPointerCallProgram;

} // namespace test
} // namespace impact

#endif // IMPACT_TESTS_TESTUTIL_H
