//===- tests/CompileServerTests.cpp - Incremental equals fresh -------------===//
//
// Part of the impact-inline project, distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The compile server's contract: after ANY script of add/replace/remove/
/// recompile requests, every program's emitted module, outputs, decision
/// trace, and profile are bit-identical to a from-scratch compile of the
/// same sources — at jobs=1 and jobs=4 — while warm recompiles touch only
/// the changed unit's reverse-transitive call-graph dependents (pinned
/// exact sets for a hand-built DAG and a mutual-recursion cycle, asserted
/// by the touched-unit counter, never by timing). Failure containment:
/// broken units, broken links, injected faults, and crashed cache
/// persists quarantine and retry; the server never dies and the on-disk
/// store is never poisoned.
///
//===----------------------------------------------------------------------===//

#include "driver/BatchPipeline.h"
#include "driver/CompileServer.h"
#include "driver/Linker.h"
#include "driver/ServerScript.h"
#include "ir/IrPrinter.h"
#include "suite/Suite.h"
#include "support/FaultInjection.h"
#include "RandomProgram.h"
#include "TestUtil.h"

#include <gtest/gtest.h>

#include <filesystem>

using namespace impact;

namespace {

/// A unique, cleaned-up cache directory per call site.
std::string makeCacheDir(const std::string &Name) {
  std::string Dir = ::testing::TempDir() + "impact_server_" + Name;
  std::filesystem::remove_all(Dir);
  std::filesystem::create_directories(Dir);
  return Dir;
}

PipelineOptions tracedOptions() {
  PipelineOptions Options;
  Options.EmitDecisionTrace = true;
  return Options;
}

std::vector<RunInput> twoRuns() { return {{"abc", ""}, {"", ""}}; }

/// The bit-identity the server promises: modules, outputs, traces, and
/// profiles all equal — never "close enough".
void expectSameProgram(const PipelineResult &Incremental,
                       const PipelineResult &Fresh, const std::string &Tag) {
  ASSERT_TRUE(Incremental.Ok) << Tag << ": " << Incremental.Error;
  ASSERT_TRUE(Fresh.Ok) << Tag << ": " << Fresh.Error;
  EXPECT_EQ(printModule(Incremental.FinalModule),
            printModule(Fresh.FinalModule))
      << Tag;
  EXPECT_EQ(Incremental.OutputsBefore, Fresh.OutputsBefore) << Tag;
  EXPECT_EQ(Incremental.OutputsAfter, Fresh.OutputsAfter) << Tag;
  EXPECT_EQ(Incremental.DecisionTrace, Fresh.DecisionTrace) << Tag;
  EXPECT_EQ(Incremental.ProfileBefore, Fresh.ProfileBefore) << Tag;
}

/// From-scratch reference for a multi-unit program: compile every unit,
/// link, run the pipeline.
PipelineResult freshMulti(
    const std::vector<std::pair<std::string, std::string>> &UnitSources,
    const std::string &Name, const std::vector<RunInput> &Inputs,
    const PipelineOptions &Options) {
  std::vector<Module> Modules;
  for (const auto &[UnitName, Source] : UnitSources) {
    CompilationResult C = compileMiniC(Source, UnitName,
                                       /*RequireMain=*/false);
    EXPECT_TRUE(C.Ok) << UnitName << ":\n" << C.Errors;
    Modules.push_back(std::move(C.M));
  }
  LinkResult Linked = linkModules(std::move(Modules), Name);
  EXPECT_TRUE(Linked.Ok) << Name << ": " << Linked.Error;
  return runPipeline(std::move(Linked.M), Inputs, Options);
}

std::vector<std::string> names(std::initializer_list<const char *> List) {
  return {List.begin(), List.end()};
}

//===----------------------------------------------------------------------===//
// Satellite wiring: precompiled-module batch jobs.
//===----------------------------------------------------------------------===//

TEST(BatchModuleJobs, PrecompiledModuleJobMatchesSourceJob) {
  const BenchmarkSpec *B = findBenchmark("wc");
  ASSERT_NE(B, nullptr);
  std::vector<RunInput> Inputs = makeBenchmarkInputs(*B, 2);

  PipelineResult FromSource =
      runPipeline(B->Source, B->Name, Inputs, tracedOptions());
  ASSERT_TRUE(FromSource.Ok) << FromSource.Error;

  CompilationResult C = compileMiniC(B->Source, B->Name);
  ASSERT_TRUE(C.Ok) << C.Errors;
  BatchJob Job;
  Job.Name = B->Name;
  Job.Inputs = Inputs;
  Job.Options = tracedOptions();
  Job.HasModule = true;
  Job.PrecompiledModule = std::move(C.M);

  BatchResult Batch = runBatchPipeline({Job});
  ASSERT_EQ(Batch.Results.size(), 1u);
  expectSameProgram(Batch.Results[0], FromSource, "module-job wc");
}

//===----------------------------------------------------------------------===//
// Incremental equals fresh.
//===----------------------------------------------------------------------===//

TEST(CompileServer, SingleUnitProgramMatchesFreshPipeline) {
  const BenchmarkSpec *B = findBenchmark("wc");
  ASSERT_NE(B, nullptr);
  std::vector<RunInput> Inputs = makeBenchmarkInputs(*B, 2);

  ServerOptions Options;
  Options.Pipeline = tracedOptions();
  CompileServer Server(Options);
  std::string Error;
  ASSERT_TRUE(Server.addUnit("wc", B->Source, &Error)) << Error;
  ASSERT_TRUE(Server.defineProgram("wc", names({"wc"}), Inputs, &Error))
      << Error;
  RecompileStats Stats = Server.recompile("*", &Error);
  EXPECT_TRUE(Error.empty()) << Error;
  EXPECT_EQ(Stats.TouchedUnits, 1u);
  EXPECT_EQ(Stats.RecompiledPrograms, 1u);

  const PipelineResult *Result = Server.getResult("wc");
  ASSERT_NE(Result, nullptr);
  PipelineResult Fresh = runPipeline(B->Source, "wc", Inputs, tracedOptions());
  expectSameProgram(*Result, Fresh, "wc");
  EXPECT_TRUE(Server.getFailures().empty());
}

class ServerJobs : public ::testing::TestWithParam<unsigned> {};

TEST_P(ServerJobs, SuiteIncrementalEqualsFreshAfterEdits) {
  ServerOptions Options;
  Options.Jobs = GetParam();
  Options.Pipeline = tracedOptions();
  CompileServer Server(Options);

  const std::vector<BenchmarkSpec> &Suite = getBenchmarkSuite();
  for (const BenchmarkSpec &B : Suite) {
    ASSERT_TRUE(Server.addUnit(B.Name, B.Source));
    ASSERT_TRUE(Server.defineProgram(B.Name, {B.Name},
                                     makeBenchmarkInputs(B, 2)));
  }

  // Cold build: every unit compiles once.
  RecompileStats Cold = Server.recompile();
  EXPECT_EQ(Cold.TouchedUnits, Suite.size());
  EXPECT_EQ(Cold.RecompiledPrograms, Suite.size());
  EXPECT_EQ(Cold.CleanPrograms, 0u);

  // A recompile with nothing changed is free: zero touched units, every
  // program served from the result cache.
  RecompileStats Clean = Server.recompile();
  EXPECT_EQ(Clean.TouchedUnits, 0u);
  EXPECT_EQ(Clean.RecompiledPrograms, 0u);
  EXPECT_EQ(Clean.CleanPrograms, Suite.size());

  // Warm recompile after a one-unit edit: exactly that unit is touched —
  // the acceptance criterion, asserted by the counter, not by timing.
  std::map<std::string, std::string> Current;
  for (const BenchmarkSpec &B : Suite)
    Current[B.Name] = B.Source;
  Current["wc"] += "\nint server_test_pad(int x) { return x + 41; }\n";
  ASSERT_TRUE(Server.replaceUnit("wc", Current["wc"]));
  RecompileStats Warm = Server.recompile();
  EXPECT_EQ(Warm.TouchedUnits, 1u);
  EXPECT_EQ(Warm.TouchedUnitNames, names({"wc"}));
  EXPECT_EQ(Warm.RecompiledPrograms, 1u);
  EXPECT_EQ(Warm.CleanPrograms, Suite.size() - 1);

  // A two-unit edit touches exactly those two.
  Current["grep"] += "\nint server_test_pad(int x) { return x - 7; }\n";
  Current["cmp"] += "\nint server_test_pad2(int x) { return x * 3; }\n";
  ASSERT_TRUE(Server.replaceUnit("grep", Current["grep"]));
  ASSERT_TRUE(Server.replaceUnit("cmp", Current["cmp"]));
  RecompileStats Warm2 = Server.recompile();
  EXPECT_EQ(Warm2.TouchedUnits, 2u);
  EXPECT_EQ(Warm2.TouchedUnitNames, names({"cmp", "grep"}));
  EXPECT_EQ(Warm2.CleanPrograms, Suite.size() - 2);

  // The property: after the whole request script, every program is
  // bit-identical to a from-scratch compile of its current source.
  for (const BenchmarkSpec &B : Suite) {
    const PipelineResult *Result = Server.getResult(B.Name);
    ASSERT_NE(Result, nullptr) << B.Name;
    PipelineResult Fresh = runPipeline(Current[B.Name], B.Name,
                                       makeBenchmarkInputs(B, 2),
                                       tracedOptions());
    expectSameProgram(*Result, Fresh, B.Name);
  }
  EXPECT_TRUE(Server.getFailures().empty());
}

TEST_P(ServerJobs, RandomProgramsIncrementalEqualsFresh) {
  constexpr uint64_t kSeeds = 64;
  ServerOptions Options;
  Options.Jobs = GetParam();
  Options.Pipeline = tracedOptions();
  CompileServer Server(Options);

  std::map<std::string, std::string> Current;
  for (uint64_t Seed = 0; Seed != kSeeds; ++Seed) {
    std::string Name = "r" + std::to_string(Seed);
    Current[Name] = test::generateRandomProgram(Seed);
    ASSERT_TRUE(Server.addUnit(Name, Current[Name]));
    ASSERT_TRUE(Server.defineProgram(Name, {Name}, twoRuns()));
  }
  RecompileStats Cold = Server.recompile();
  EXPECT_EQ(Cold.TouchedUnits, kSeeds);
  ASSERT_EQ(Cold.RecompiledPrograms + Cold.FailedPrograms, kSeeds);
  EXPECT_EQ(Cold.FailedPrograms, 0u);

  // Replace every fifth program with a different generated source.
  uint64_t Replaced = 0;
  for (uint64_t Seed = 0; Seed < kSeeds; Seed += 5) {
    std::string Name = "r" + std::to_string(Seed);
    Current[Name] = test::generateRandomProgram(Seed + 1000);
    ASSERT_TRUE(Server.replaceUnit(Name, Current[Name]));
    ++Replaced;
  }
  RecompileStats Warm = Server.recompile();
  EXPECT_EQ(Warm.TouchedUnits, Replaced);
  EXPECT_EQ(Warm.CleanPrograms, kSeeds - Replaced);

  for (const auto &[Name, Source] : Current) {
    const PipelineResult *Result = Server.getResult(Name);
    ASSERT_NE(Result, nullptr) << Name;
    PipelineResult Fresh =
        runPipeline(Source, Name, twoRuns(), tracedOptions());
    expectSameProgram(*Result, Fresh, Name);
  }
  EXPECT_TRUE(Server.getFailures().empty());
}

INSTANTIATE_TEST_SUITE_P(Jobs, ServerJobs, ::testing::Values(1u, 4u),
                         [](const auto &Info) {
                           return "jobs" + std::to_string(Info.param);
                         });

//===----------------------------------------------------------------------===//
// Invalidation audit: pinned dependent sets over hand-built graphs.
//===----------------------------------------------------------------------===//

const char *kUtilSource = R"MC(
int add1(int x) { return x + 1; }
int twice(int x) { return x * 2; }
)MC";

const char *kMid1Source = R"MC(
extern int add1(int x);
int inc2(int x) { return add1(add1(x)); }
)MC";

const char *kMid2Source = R"MC(
extern int twice(int x);
int quad(int x) { return twice(twice(x)); }
)MC";

const char *kAppSource = R"MC(
extern int inc2(int x);
extern int quad(int x);
extern int print_int(int v);
extern int putchar(int c);
int main() {
  print_int(inc2(3) + quad(5));
  putchar('\n');
  return 0;
}
)MC";

/// Audits on: every incremental step must keep the analyzer's
/// weight-conservation and call-graph audits clean (error findings would
/// fail the unit outright).
PipelineOptions auditedOptions() {
  PipelineOptions Options = tracedOptions();
  Options.Analyze = true;
  std::string Error;
  EXPECT_TRUE(parseAnalysisRules("audit-callgraph,audit-weight-conservation",
                                 Options.Analysis, &Error))
      << Error;
  return Options;
}

TEST(CompileServer, DagInvalidationTouchesExactlyTheDependents) {
  ServerOptions Options;
  Options.Pipeline = auditedOptions();
  CompileServer Server(Options);

  std::map<std::string, std::string> Sources = {{"util", kUtilSource},
                                                {"mid1", kMid1Source},
                                                {"mid2", kMid2Source},
                                                {"app", kAppSource}};
  for (const auto &[Name, Source] : Sources)
    ASSERT_TRUE(Server.addUnit(Name, Source));
  ASSERT_TRUE(Server.defineProgram("prog",
                                   names({"util", "mid1", "mid2", "app"}),
                                   {{"", ""}}));

  // Before the first compile no modules exist, so no dependency edges.
  EXPECT_EQ(Server.getDependents("util"), names({"util"}));

  RecompileStats Cold = Server.recompile();
  EXPECT_EQ(Cold.TouchedUnits, 4u);
  ASSERT_EQ(Cold.RecompiledPrograms, 1u)
      << (Server.getFailures().empty()
              ? std::string("no failure recorded")
              : Server.getFailures().back().render());

  // The pinned reverse-transitive closures of the DAG
  // util -> {mid1, mid2} -> app.
  EXPECT_EQ(Server.getDependents("util"),
            names({"app", "mid1", "mid2", "util"}));
  EXPECT_EQ(Server.getDependents("mid1"), names({"app", "mid1"}));
  EXPECT_EQ(Server.getDependents("mid2"), names({"app", "mid2"}));
  EXPECT_EQ(Server.getDependents("app"), names({"app"}));

  auto checkStep = [&](const std::string &Tag,
                       const std::vector<std::string> &ExpectTouched) {
    RecompileStats Stats = Server.recompile();
    EXPECT_EQ(Stats.TouchedUnitNames, ExpectTouched) << Tag;
    EXPECT_EQ(Stats.TouchedUnits, ExpectTouched.size()) << Tag;
    const PipelineResult *Result = Server.getResult("prog");
    ASSERT_NE(Result, nullptr) << Tag;
    ASSERT_TRUE(Result->Ok) << Tag << ": " << Result->Error;
    EXPECT_FALSE(Result->Analysis.hasErrors())
        << Tag << ": audits must stay clean after every incremental step:\n"
        << Result->Analysis.renderText();
    PipelineResult Fresh = freshMulti({{"util", Sources["util"]},
                                       {"mid1", Sources["mid1"]},
                                       {"mid2", Sources["mid2"]},
                                       {"app", Sources["app"]}},
                                      "prog", {{"", ""}}, auditedOptions());
    expectSameProgram(*Result, Fresh, Tag);
  };

  // Leaf edit: everything above it recompiles — and nothing else exists
  // here, so all four.
  Sources["util"] =
      "int add1(int x) { return x + 1; }\n"
      "int twice(int x) { return x + x; }\n";
  ASSERT_TRUE(Server.replaceUnit("util", Sources["util"]));
  checkStep("edit util", names({"app", "mid1", "mid2", "util"}));

  // Middle edit: itself plus app.
  Sources["mid1"] =
      "extern int add1(int x);\n"
      "int inc2(int x) { return add1(x) + 1; }\n";
  ASSERT_TRUE(Server.replaceUnit("mid1", Sources["mid1"]));
  checkStep("edit mid1", names({"app", "mid1"}));

  // Root edit: only itself.
  Sources["app"] =
      "extern int inc2(int x);\n"
      "extern int quad(int x);\n"
      "extern int print_int(int v);\n"
      "extern int putchar(int c);\n"
      "int main() {\n"
      "  print_int(inc2(4) * quad(2));\n"
      "  putchar('\\n');\n"
      "  return 0;\n"
      "}\n";
  ASSERT_TRUE(Server.replaceUnit("app", Sources["app"]));
  checkStep("edit app", names({"app"}));

  EXPECT_TRUE(Server.getFailures().empty());
}

TEST(CompileServer, CycleInvalidationTouchesTheWholeCycle) {
  ServerOptions Options;
  Options.Pipeline = auditedOptions();
  CompileServer Server(Options);

  std::map<std::string, std::string> Sources;
  Sources["p"] =
      "extern int qf(int x);\n"
      "int pf(int x) { if (x <= 0) { return 0; } return qf(x - 1) + 1; }\n";
  Sources["q"] =
      "extern int pf(int x);\n"
      "int qf(int x) { if (x <= 0) { return 0; } return pf(x - 1) + 2; }\n";
  Sources["r"] =
      "extern int pf(int x);\n"
      "extern int print_int(int v);\n"
      "extern int putchar(int c);\n"
      "int main() { print_int(pf(7)); putchar('\\n'); return 0; }\n";
  for (const auto &[Name, Source] : Sources)
    ASSERT_TRUE(Server.addUnit(Name, Source));
  ASSERT_TRUE(Server.defineProgram("cyc", names({"p", "q", "r"}),
                                   {{"", ""}}));
  RecompileStats Cold = Server.recompile();
  EXPECT_EQ(Cold.TouchedUnits, 3u);
  ASSERT_EQ(Cold.RecompiledPrograms, 1u);

  // p and q form a mutual-recursion cycle; r calls into it. Editing
  // either cycle member invalidates the whole cycle plus r.
  EXPECT_EQ(Server.getDependents("p"), names({"p", "q", "r"}));
  EXPECT_EQ(Server.getDependents("q"), names({"p", "q", "r"}));
  EXPECT_EQ(Server.getDependents("r"), names({"r"}));

  Sources["q"] =
      "extern int pf(int x);\n"
      "int qf(int x) { if (x <= 0) { return 1; } return pf(x - 1) + 2; }\n";
  ASSERT_TRUE(Server.replaceUnit("q", Sources["q"]));
  RecompileStats Warm = Server.recompile();
  EXPECT_EQ(Warm.TouchedUnitNames, names({"p", "q", "r"}));

  const PipelineResult *Result = Server.getResult("cyc");
  ASSERT_NE(Result, nullptr);
  EXPECT_FALSE(Result->Analysis.hasErrors()) << Result->Analysis.renderText();
  PipelineResult Fresh = freshMulti(
      {{"p", Sources["p"]}, {"q", Sources["q"]}, {"r", Sources["r"]}}, "cyc",
      {{"", ""}}, auditedOptions());
  expectSameProgram(*Result, Fresh, "cycle after edit");
  EXPECT_TRUE(Server.getFailures().empty());
}

TEST(CompileServer, TargetedRecompileLeavesOtherProgramsDirty) {
  ServerOptions Options;
  Options.Pipeline = tracedOptions();
  CompileServer Server(Options);
  ASSERT_TRUE(Server.addUnit("a", test::kCallHeavyProgram));
  ASSERT_TRUE(Server.addUnit("b", test::kRecursiveProgram));
  ASSERT_TRUE(Server.defineProgram("a", {"a"}, twoRuns()));
  ASSERT_TRUE(Server.defineProgram("b", {"b"}, twoRuns()));

  RecompileStats OnlyA = Server.recompile("a");
  EXPECT_EQ(OnlyA.TouchedUnitNames, names({"a"}));
  EXPECT_EQ(OnlyA.RecompiledPrograms, 1u);
  EXPECT_NE(Server.getResult("a"), nullptr);
  EXPECT_EQ(Server.getResult("b"), nullptr) << "b must stay dirty";

  std::string Error;
  RecompileStats Unknown = Server.recompile("zzz", &Error);
  EXPECT_FALSE(Error.empty());
  EXPECT_EQ(Unknown.TouchedUnits, 0u);

  RecompileStats Rest = Server.recompile("*");
  EXPECT_EQ(Rest.TouchedUnitNames, names({"b"}));
  EXPECT_EQ(Rest.CleanPrograms, 1u);
  EXPECT_NE(Server.getResult("b"), nullptr);
}

//===----------------------------------------------------------------------===//
// Persistence: cross-process reuse, crash-during-save containment.
//===----------------------------------------------------------------------===//

TEST(CompileServer, RestartedServerReusesTheOnDiskCache) {
  std::string Dir = makeCacheDir("restart");
  const BenchmarkSpec *B = findBenchmark("wc");
  ASSERT_NE(B, nullptr);
  std::vector<RunInput> Inputs = makeBenchmarkInputs(*B, 2);

  std::string FirstModule;
  {
    ServerOptions Options;
    Options.CacheDir = Dir;
    Options.Pipeline = tracedOptions();
    CompileServer Server(Options);
    EXPECT_EQ(Server.getInitialCacheStatus(), CacheLoadStatus::NoFile);
    ASSERT_TRUE(Server.addUnit("wc", B->Source));
    ASSERT_TRUE(Server.defineProgram("wc", {"wc"}, Inputs));
    ASSERT_EQ(Server.recompile().RecompiledPrograms, 1u);
    FirstModule = printModule(Server.getResult("wc")->FinalModule);
    EXPECT_TRUE(std::filesystem::exists(getCacheStorePath(Dir)));
  }

  // Second server, same directory: a warm disk, zero shared memory.
  ServerOptions Options;
  Options.CacheDir = Dir;
  Options.Pipeline = tracedOptions();
  CompileServer Server(Options);
  EXPECT_EQ(Server.getInitialCacheStatus(), CacheLoadStatus::Loaded);
  ASSERT_TRUE(Server.addUnit("wc", B->Source));
  ASSERT_TRUE(Server.defineProgram("wc", {"wc"}, Inputs));
  ASSERT_EQ(Server.recompile().RecompiledPrograms, 1u);
  EXPECT_EQ(printModule(Server.getResult("wc")->FinalModule), FirstModule)
      << "persistent hits must be bit-identical to recomputation";
  EXPECT_GT(Server.getCacheStats().PersistentHits, 0u)
      << "cross-process reuse must be observable in the counters";
  std::filesystem::remove_all(Dir);
}

TEST(CompileServer, CrashDuringPersistIsQuarantinedAndRetried) {
  std::string Dir = makeCacheDir("crash_persist");
  FaultPlan Plan;
  ASSERT_TRUE(parseFaultPlan("server/cache-persist:throw@2x1", Plan));

  ServerOptions Options;
  Options.CacheDir = Dir;
  Options.Pipeline = tracedOptions();
  Options.Pipeline.Faults = &Plan;
  CompileServer Server(Options);
  ASSERT_TRUE(Server.addUnit("a", test::kCallHeavyProgram));
  ASSERT_TRUE(Server.defineProgram("a", {"a"}, twoRuns()));

  // The recompile itself succeeds; the save crashes mid-write (temp file
  // half written, like a killed process) and is quarantined as unit
  // "server" without taking the session down.
  RecompileStats Stats = Server.recompile();
  EXPECT_EQ(Stats.RecompiledPrograms, 1u);
  ASSERT_NE(Server.getResult("a"), nullptr);
  ASSERT_FALSE(Server.getFailures().empty());
  const UnitFailure &F = Server.getFailures().back();
  EXPECT_EQ(F.Unit, "server");
  EXPECT_EQ(F.Stage, "cache-persist");
  EXPECT_EQ(F.Reason, "fault-injected");
  EXPECT_FALSE(std::filesystem::exists(getCacheStorePath(Dir)))
      << "the crashed save must not have produced a store";

  // The transient fault (attempt bound x1) clears; the next persist —
  // here via an explicit request — lands atomically.
  EXPECT_TRUE(Server.persistCache());
  EXPECT_TRUE(std::filesystem::exists(getCacheStorePath(Dir)));
  EXPECT_FALSE(std::filesystem::exists(getCacheStorePath(Dir) + ".tmp"));

  // And the store a crashed-then-retried server wrote is loadable.
  ServerOptions Reload;
  Reload.CacheDir = Dir;
  CompileServer Second(Reload);
  EXPECT_EQ(Second.getInitialCacheStatus(), CacheLoadStatus::Loaded);
  std::filesystem::remove_all(Dir);
}

//===----------------------------------------------------------------------===//
// Failure containment and retry.
//===----------------------------------------------------------------------===//

TEST(CompileServer, BrokenUnitIsQuarantinedAndFixedByReplace) {
  ServerOptions Options;
  Options.Pipeline = tracedOptions();
  CompileServer Server(Options);
  ASSERT_TRUE(Server.addUnit("bad", "int main( { return 0; }"));
  ASSERT_TRUE(Server.addUnit("good", test::kCallHeavyProgram));
  ASSERT_TRUE(Server.defineProgram("bad", {"bad"}, twoRuns()));
  ASSERT_TRUE(Server.defineProgram("good", {"good"}, twoRuns()));

  RecompileStats Stats = Server.recompile();
  EXPECT_EQ(Stats.FailedPrograms, 1u);
  EXPECT_EQ(Stats.RecompiledPrograms, 1u)
      << "the good program must be untouched by the bad one";
  EXPECT_EQ(Server.getResult("bad"), nullptr);
  ASSERT_NE(Server.getResult("good"), nullptr);
  ASSERT_FALSE(Server.getFailures().empty());
  EXPECT_EQ(Server.getFailures().front().Unit, "bad");
  EXPECT_EQ(Server.getFailures().front().Stage, "compile");
  EXPECT_EQ(Server.getFailures().front().Reason, "diagnostic");

  // Fixing the unit recovers on the next recompile — and only it is
  // touched.
  ASSERT_TRUE(Server.replaceUnit("bad", test::kRecursiveProgram));
  RecompileStats Fixed = Server.recompile();
  EXPECT_EQ(Fixed.TouchedUnitNames, names({"bad"}));
  EXPECT_EQ(Fixed.FailedPrograms, 0u);
  const PipelineResult *Result = Server.getResult("bad");
  ASSERT_NE(Result, nullptr);
  PipelineResult Fresh =
      runPipeline(test::kRecursiveProgram, "bad", twoRuns(), tracedOptions());
  expectSameProgram(*Result, Fresh, "fixed bad");
}

TEST(CompileServer, TransientCompileFaultRecoversOnRetry) {
  FaultPlan Plan;
  ASSERT_TRUE(parseFaultPlan("flaky/parse:throw@1x1", Plan));
  ServerOptions Options;
  Options.Pipeline = tracedOptions();
  Options.Pipeline.Faults = &Plan;
  CompileServer Server(Options);
  ASSERT_TRUE(Server.addUnit("flaky", test::kCallHeavyProgram));
  ASSERT_TRUE(Server.defineProgram("flaky", {"flaky"}, twoRuns()));

  RecompileStats First = Server.recompile();
  EXPECT_EQ(First.FailedPrograms, 1u);
  ASSERT_FALSE(Server.getFailures().empty());
  EXPECT_EQ(Server.getFailures().back().Reason, "fault-injected");
  EXPECT_EQ(Server.getResult("flaky"), nullptr);

  // The unit stayed dirty; attempt 2 is past the fault's attempt bound,
  // so the same request now succeeds — bit-identical to a never-faulted
  // compile.
  RecompileStats Second = Server.recompile();
  EXPECT_EQ(Second.TouchedUnitNames, names({"flaky"}));
  EXPECT_EQ(Second.FailedPrograms, 0u);
  const PipelineResult *Result = Server.getResult("flaky");
  ASSERT_NE(Result, nullptr);
  PipelineResult Fresh = runPipeline(test::kCallHeavyProgram, "flaky",
                                     twoRuns(), tracedOptions());
  expectSameProgram(*Result, Fresh, "flaky after retry");
}

TEST(CompileServer, RemovedUnitQuarantinesItsProgramsUntilReadded) {
  ServerOptions Options;
  Options.Pipeline = tracedOptions();
  CompileServer Server(Options);
  std::map<std::string, std::string> Sources = {{"util", kUtilSource},
                                                {"mid1", kMid1Source},
                                                {"mid2", kMid2Source},
                                                {"app", kAppSource}};
  for (const auto &[Name, Source] : Sources)
    ASSERT_TRUE(Server.addUnit(Name, Source));
  ASSERT_TRUE(Server.defineProgram("prog",
                                   names({"util", "mid1", "mid2", "app"}),
                                   {{"", ""}}));
  ASSERT_EQ(Server.recompile().RecompiledPrograms, 1u);

  ASSERT_TRUE(Server.removeUnit("mid2"));
  RecompileStats Broken = Server.recompile();
  EXPECT_EQ(Broken.FailedPrograms, 1u);
  ASSERT_FALSE(Server.getFailures().empty());
  EXPECT_EQ(Server.getFailures().back().Reason, "missing-unit");
  // The last good result stays queryable while the program is broken.
  EXPECT_NE(Server.getResult("prog"), nullptr);

  ASSERT_TRUE(Server.addUnit("mid2", kMid2Source));
  RecompileStats Fixed = Server.recompile();
  EXPECT_EQ(Fixed.FailedPrograms, 0u);
  EXPECT_EQ(Fixed.RecompiledPrograms, 1u);
  PipelineResult Fresh = freshMulti({{"util", kUtilSource},
                                     {"mid1", kMid1Source},
                                     {"mid2", kMid2Source},
                                     {"app", kAppSource}},
                                    "prog", {{"", ""}}, tracedOptions());
  expectSameProgram(*Server.getResult("prog"), Fresh, "prog after re-add");
}

TEST(CompileServer, DuplicateDefinitionFailsTheLinkAndRecovers) {
  ServerOptions Options;
  Options.Pipeline = tracedOptions();
  CompileServer Server(Options);
  ASSERT_TRUE(Server.addUnit("util", kUtilSource));
  // A second unit that also defines add1: a link-time conflict.
  ASSERT_TRUE(Server.addUnit("dup",
                             "int add1(int x) { return x + 100; }\n"));
  ASSERT_TRUE(Server.addUnit("mid1", kMid1Source));
  ASSERT_TRUE(Server.addUnit("mid2", kMid2Source));
  ASSERT_TRUE(Server.addUnit("app", kAppSource));
  ASSERT_TRUE(Server.defineProgram(
      "prog", names({"util", "dup", "mid1", "mid2", "app"}), {{"", ""}}));

  RecompileStats Broken = Server.recompile();
  EXPECT_EQ(Broken.FailedPrograms, 1u);
  ASSERT_FALSE(Server.getFailures().empty());
  EXPECT_EQ(Server.getFailures().back().Stage, "link");

  // Dropping the conflicting unit from the program recovers.
  ASSERT_TRUE(Server.defineProgram(
      "prog", names({"util", "mid1", "mid2", "app"}), {{"", ""}}));
  RecompileStats Fixed = Server.recompile();
  EXPECT_EQ(Fixed.FailedPrograms, 0u);
  EXPECT_EQ(Fixed.RecompiledPrograms, 1u);
}

//===----------------------------------------------------------------------===//
// The request script surface.
//===----------------------------------------------------------------------===//

std::string makeScript(bool WithStats) {
  std::string Script;
  Script += "# a server session: two programs, one edit, one targeted\n";
  Script += "# recompile\n";
  Script += std::string("unit one <<END\n") + test::kCallHeavyProgram +
            "\nEND\n";
  Script += "program one = one\n";
  Script += "input one abcd\n";
  Script += "input one\n";
  Script += std::string("unit two <<END\n") + test::kRecursiveProgram +
            "\nEND\n";
  Script += "program two = two\n";
  Script += "input two ab\n";
  Script += "recompile\n";
  Script += std::string("replace one <<END\n") + test::kPointerCallProgram +
            "\nEND\n";
  Script += "recompile one\n";
  if (WithStats)
    Script += "stats\n";
  Script += "save\n";
  Script += "recompile\n";
  return Script;
}

TEST(ServerScript, ReplayIsDeterministic) {
  std::string Script = makeScript(/*WithStats=*/true);
  std::string Transcripts[2];
  for (std::string &Transcript : Transcripts) {
    ServerOptions Options;
    Options.Pipeline = tracedOptions();
    CompileServer Server(Options);
    ServerScriptResult R = runServerScript(Server, Script);
    ASSERT_TRUE(R.Ok) << R.Error;
    Transcript = R.Transcript;
  }
  EXPECT_EQ(Transcripts[0], Transcripts[1])
      << "replaying one script must reproduce the transcript byte for byte";

  EXPECT_NE(
      Transcripts[0].find("[recompile] target=* touched=2 units=[one,two] "
                          "programs=2 clean=0 failed=0"),
      std::string::npos)
      << Transcripts[0];
  EXPECT_NE(Transcripts[0].find("[recompile] target=one touched=1 "
                                "units=[one] programs=1 clean=0 failed=0"),
            std::string::npos)
      << Transcripts[0];
  EXPECT_NE(Transcripts[0].find("[recompile] target=* touched=0 units=[] "
                                "programs=0 clean=2 failed=0"),
            std::string::npos)
      << Transcripts[0];
  EXPECT_NE(Transcripts[0].find("[save] ok"), std::string::npos);

  // The counter lines are thread-count independent: a 4-thread server
  // replays the same script (minus the hit/miss-split-bearing stats
  // line) to the same transcript.
  std::string NoStats = makeScript(/*WithStats=*/false);
  std::string Reference;
  for (unsigned Jobs : {1u, 4u}) {
    ServerOptions Options;
    Options.Jobs = Jobs;
    Options.Pipeline = tracedOptions();
    CompileServer Server(Options);
    ServerScriptResult R = runServerScript(Server, NoStats);
    ASSERT_TRUE(R.Ok) << R.Error;
    if (Reference.empty())
      Reference = R.Transcript;
    else
      EXPECT_EQ(R.Transcript, Reference) << "jobs=" << Jobs;
  }
}

TEST(ServerScript, MalformedScriptsAreRejectedWithTheOffendingLine) {
  ServerOptions Options;
  CompileServer Server(Options);

  ServerScriptResult Unknown = runServerScript(Server, "frobnicate now\n");
  EXPECT_FALSE(Unknown.Ok);
  EXPECT_NE(Unknown.Error.find("line 1"), std::string::npos)
      << Unknown.Error;

  ServerScriptResult Unterminated =
      runServerScript(Server, "unit u <<END\nint x;\n");
  EXPECT_FALSE(Unterminated.Ok);
  EXPECT_NE(Unterminated.Error.find("heredoc"), std::string::npos)
      << Unterminated.Error;

  // Request-level failures do NOT stop the script: they become [error]
  // transcript lines, like any quarantined unit.
  ServerScriptResult Dup = runServerScript(
      Server, "unit u <<E\nint f() { return 1; }\nE\n"
              "unit u <<E\nint f() { return 2; }\nE\n");
  EXPECT_TRUE(Dup.Ok) << Dup.Error;
  EXPECT_NE(Dup.Transcript.find("[error]"), std::string::npos)
      << Dup.Transcript;
}

} // namespace
