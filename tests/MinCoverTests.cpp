//===- tests/MinCoverTests.cpp - minimum-coverage plan unit tests -----------===//
//
// Part of the impact-inline project, distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Unit tests for profile/MinCover.h on hand-built degenerate flow graphs —
/// the CFG shapes where spanning-tree construction is easiest to get wrong:
/// a single-block function, a self-loop (never a tree arc), unreachable
/// blocks (no arcs at all), and the merged arc for a cond_br whose targets
/// coincide. Each shape is also executed under both instrumentation modes
/// and the inferred counts are checked against full measurement, so the
/// structural claims are tied to the Kirchhoff solve they exist to serve.
///
//===----------------------------------------------------------------------===//

#include "profile/MinCover.h"

#include "analysis/LoopInfo.h"

#include "ir/IrVerifier.h"
#include "suite/Suite.h"

#include "TestUtil.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace impact;
using test::compileOk;

namespace {

size_t countArcKind(const MinCoverFuncPlan &Plan, MinCoverArc::Kind K) {
  return static_cast<size_t>(
      std::count_if(Plan.Arcs.begin(), Plan.Arcs.end(),
                    [K](const MinCoverArc &A) { return A.K == K; }));
}

size_t countProbedArcs(const MinCoverFuncPlan &Plan) {
  return static_cast<size_t>(
      std::count_if(Plan.Arcs.begin(), Plan.Arcs.end(),
                    [](const MinCoverArc &A) { return A.Probe >= 0; }));
}

/// Runs \p M fully instrumented and in minimum-coverage mode (same input /
/// limits), infers, and checks every ProfileData-visible field matches.
void expectInferredMatchesFull(const Module &M, const MinCoverPlan &Plan,
                               RunOptions Opts = RunOptions()) {
  Opts.MinCover = nullptr;
  ExecResult Full = runProgram(M, Opts);
  Opts.MinCover = &Plan;
  ExecResult Mc = runProgram(M, Opts);
  ASSERT_EQ(Full.St, Mc.St);
  EXPECT_EQ(Full.Output, Mc.Output);
  EXPECT_EQ(Full.ExitCode, Mc.ExitCode);

  ExecStats Inferred = inferCounts(M, Plan, Mc.Stats);
  EXPECT_EQ(Inferred.InstrCount, Full.Stats.InstrCount);
  EXPECT_EQ(Inferred.ControlTransfers, Full.Stats.ControlTransfers);
  EXPECT_EQ(Inferred.DynamicCalls, Full.Stats.DynamicCalls);
  EXPECT_EQ(Inferred.ExternalCalls, Full.Stats.ExternalCalls);
  EXPECT_EQ(Inferred.PointerCalls, Full.Stats.PointerCalls);
  EXPECT_EQ(Inferred.Returns, Full.Stats.Returns);
  EXPECT_EQ(Inferred.SiteCounts, Full.Stats.SiteCounts);
  EXPECT_EQ(Inferred.FuncEntryCounts, Full.Stats.FuncEntryCounts);
  EXPECT_EQ(Inferred.PeakStackWords, Full.Stats.PeakStackWords);
}

//===----------------------------------------------------------------------===//
// Degenerate flow graphs
//===----------------------------------------------------------------------===//

TEST(MinCoverPlan, SingleBlockFunction) {
  // main: one block, straight to ret. Augmented graph: Omega -> b0 -> Omega,
  // two arcs over two nodes; the spanning tree takes one, so exactly one
  // probe remains — on whichever arc lost the weight tie.
  Module M;
  FuncId Id = M.addFunction("main", 0, false, false);
  Function &F = M.getFunction(Id);
  BlockId B = F.addBlock();
  Reg R = F.addReg();
  F.getBlock(B).Instrs.push_back(Instr::makeLdImm(R, 7));
  F.getBlock(B).Instrs.push_back(Instr::makeRet(R));
  M.MainId = Id;
  ASSERT_EQ(verifyModuleText(M), "");

  MinCoverPlan Plan = buildMinCoverPlan(M);
  ASSERT_EQ(Plan.Funcs.size(), 1u);
  const MinCoverFuncPlan &FP = Plan.Funcs[0];
  ASSERT_TRUE(FP.Instrumented);
  EXPECT_EQ(FP.Arcs.size(), 2u);
  EXPECT_EQ(countArcKind(FP, MinCoverArc::Kind::Entry), 1u);
  EXPECT_EQ(countArcKind(FP, MinCoverArc::Kind::Ret), 1u);
  EXPECT_EQ(Plan.NumProbes, 1u);
  EXPECT_EQ(Plan.TotalArcs, 2u);
  // Exactly one of the two arcs carries the probe.
  EXPECT_EQ((FP.EntryProbe >= 0) + (FP.RetProbes[B] >= 0), 1);

  expectInferredMatchesFull(M, Plan);
}

TEST(MinCoverPlan, SelfLoopIsAlwaysCoTree) {
  // b0: r0 = 3; r1 = 1; jump b1
  // b1: r0 = r0 - r1; cond_br r0 ? b1 : b2   <- taken edge is a self-loop
  // b2: ret r0
  // A self-loop can never join a spanning tree (it connects a node to
  // itself), so its arc must always carry a probe — even though the
  // loop-depth prior makes it the heaviest arc in the function.
  Module M;
  FuncId Id = M.addFunction("main", 0, false, false);
  Function &F = M.getFunction(Id);
  BlockId B0 = F.addBlock(), B1 = F.addBlock(), B2 = F.addBlock();
  Reg R0 = F.addReg(), R1 = F.addReg();
  F.getBlock(B0).Instrs.push_back(Instr::makeLdImm(R0, 3));
  F.getBlock(B0).Instrs.push_back(Instr::makeLdImm(R1, 1));
  F.getBlock(B0).Instrs.push_back(Instr::makeJump(B1));
  F.getBlock(B1).Instrs.push_back(Instr::makeBinary(Opcode::Sub, R0, R0, R1));
  F.getBlock(B1).Instrs.push_back(Instr::makeCondBr(R0, B1, B2));
  F.getBlock(B2).Instrs.push_back(Instr::makeRet(R0));
  M.MainId = Id;
  ASSERT_EQ(verifyModuleText(M), "");

  MinCoverPlan Plan = buildMinCoverPlan(M);
  const MinCoverFuncPlan &FP = Plan.Funcs[0];
  ASSERT_TRUE(FP.Instrumented);
  // Entry, b0->b1 jump, b1->b1 taken, b1->b2 not-taken, b2->Omega ret.
  EXPECT_EQ(FP.Arcs.size(), 5u);
  // Four nodes (Omega, b0, b1, b2) -> three tree arcs -> two probes.
  EXPECT_EQ(Plan.NumProbes, 2u);
  EXPECT_GE(FP.TakenProbes[B1], 0) << "self-loop arc must be instrumented";

  expectInferredMatchesFull(M, Plan);
}

TEST(MinCoverPlan, UnreachableBlockContributesNoArcs) {
  // b1 jumps back to b0 but nothing reaches b1: its count is zero by
  // definition, so it gets no arcs and no probes — the conservation system
  // simply omits it.
  Module M;
  FuncId Id = M.addFunction("main", 0, false, false);
  Function &F = M.getFunction(Id);
  BlockId B0 = F.addBlock(), B1 = F.addBlock();
  Reg R = F.addReg();
  F.getBlock(B0).Instrs.push_back(Instr::makeLdImm(R, 0));
  F.getBlock(B0).Instrs.push_back(Instr::makeRet(R));
  F.getBlock(B1).Instrs.push_back(Instr::makeJump(B0));
  M.MainId = Id;
  ASSERT_EQ(verifyModuleText(M), "");

  MinCoverPlan Plan = buildMinCoverPlan(M);
  const MinCoverFuncPlan &FP = Plan.Funcs[0];
  ASSERT_TRUE(FP.Instrumented);
  for (const MinCoverArc &A : FP.Arcs)
    EXPECT_NE(A.From, B1) << "unreachable block contributed an arc";
  EXPECT_EQ(FP.JumpProbes[B1], -1);
  // Same shape as the single-block function: two arcs, one probe.
  EXPECT_EQ(FP.Arcs.size(), 2u);
  EXPECT_EQ(Plan.NumProbes, 1u);

  expectInferredMatchesFull(M, Plan);
}

TEST(MinCoverPlan, EqualTargetCondBrMerges) {
  // cond_br with Target == Target2 is one arc executed once per transfer,
  // mirroring the CFG's successor dedup — two parallel arcs would let the
  // tree take one and "infer" the other, double-counting the edge.
  Module M;
  FuncId Id = M.addFunction("main", 0, false, false);
  Function &F = M.getFunction(Id);
  BlockId B0 = F.addBlock(), B1 = F.addBlock();
  Reg R = F.addReg();
  F.getBlock(B0).Instrs.push_back(Instr::makeLdImm(R, 5));
  F.getBlock(B0).Instrs.push_back(Instr::makeCondBr(R, B1, B1));
  F.getBlock(B1).Instrs.push_back(Instr::makeRet(R));
  M.MainId = Id;
  // The verifier rejects this shape ("must be a jump"), but raw IrGen/IL
  // input can carry it before jump optimization runs, and both engines
  // execute it with successor dedup — the plan must stay in lockstep.

  MinCoverPlan Plan = buildMinCoverPlan(M);
  const MinCoverFuncPlan &FP = Plan.Funcs[0];
  ASSERT_TRUE(FP.Instrumented);
  EXPECT_EQ(countArcKind(FP, MinCoverArc::Kind::BrMerged), 1u);
  EXPECT_EQ(countArcKind(FP, MinCoverArc::Kind::BrTaken), 0u);
  EXPECT_EQ(countArcKind(FP, MinCoverArc::Kind::BrNotTaken), 0u);
  EXPECT_EQ(FP.NotTakenProbes[B0], -1)
      << "merged arc must use the taken-probe slot only";
  // Entry, merged branch, ret: three arcs over three nodes -> one probe.
  EXPECT_EQ(FP.Arcs.size(), 3u);
  EXPECT_EQ(Plan.NumProbes, 1u);

  expectInferredMatchesFull(M, Plan);
}

TEST(MinCoverPlan, ExternalFunctionsAreNotPlanned) {
  Module M = compileOk(test::kPointerCallProgram);
  MinCoverPlan Plan = buildMinCoverPlan(M);
  ASSERT_EQ(Plan.Funcs.size(), M.Funcs.size());
  for (const Function &F : M.Funcs)
    if (F.IsExternal) {
      EXPECT_FALSE(Plan.Funcs[F.Id].Instrumented) << F.Name;
      EXPECT_TRUE(Plan.Funcs[F.Id].Arcs.empty()) << F.Name;
    }
}

//===----------------------------------------------------------------------===//
// Plan invariants on real programs
//===----------------------------------------------------------------------===//

TEST(MinCoverPlan, DeterministicAcrossRebuilds) {
  // The fingerprint is the shard-merge staleness token; two builds of the
  // same module must agree on it and on every probe assignment.
  Module M = compileOk(test::kCallHeavyProgram);
  MinCoverPlan A = buildMinCoverPlan(M);
  MinCoverPlan B = buildMinCoverPlan(M);
  EXPECT_EQ(A.Fingerprint, B.Fingerprint);
  EXPECT_EQ(A.NumProbes, B.NumProbes);
  EXPECT_EQ(A.TotalArcs, B.TotalArcs);
  ASSERT_EQ(A.Funcs.size(), B.Funcs.size());
  for (size_t I = 0; I != A.Funcs.size(); ++I) {
    EXPECT_EQ(A.Funcs[I].Instrumented, B.Funcs[I].Instrumented);
    EXPECT_EQ(A.Funcs[I].EntryProbe, B.Funcs[I].EntryProbe);
    EXPECT_EQ(A.Funcs[I].JumpProbes, B.Funcs[I].JumpProbes);
    EXPECT_EQ(A.Funcs[I].TakenProbes, B.Funcs[I].TakenProbes);
    EXPECT_EQ(A.Funcs[I].NotTakenProbes, B.Funcs[I].NotTakenProbes);
    EXPECT_EQ(A.Funcs[I].RetProbes, B.Funcs[I].RetProbes);
  }
}

TEST(MinCoverPlan, ProbeCountsAreConsistent) {
  // NumProbes == probed arcs; every probe index distinct and < NumProbes.
  for (const BenchmarkSpec &Spec : getBenchmarkSuite()) {
    SCOPED_TRACE(Spec.Name);
    Module M = compileOk(Spec.Source);
    MinCoverPlan Plan = buildMinCoverPlan(M);
    std::vector<bool> Seen(Plan.NumProbes, false);
    size_t Probed = 0, Arcs = 0;
    for (const MinCoverFuncPlan &FP : Plan.Funcs) {
      Arcs += FP.Arcs.size();
      Probed += countProbedArcs(FP);
      for (const MinCoverArc &A : FP.Arcs)
        if (A.Probe >= 0) {
          ASSERT_LT(static_cast<uint32_t>(A.Probe), Plan.NumProbes);
          EXPECT_FALSE(Seen[A.Probe]) << "probe reused: " << A.Probe;
          Seen[A.Probe] = true;
        }
    }
    EXPECT_EQ(Probed, Plan.NumProbes);
    EXPECT_EQ(Arcs, Plan.TotalArcs);
  }
}

TEST(MinCoverPlan, SuiteProbeRatioStaysUnderSixtyPercent) {
  // The whole point of the mode: suite-wide, at most 60% of arcs carry
  // counters (measured ~33%; the bound leaves room for suite growth
  // without letting a tree-construction regression slip through).
  uint64_t Probes = 0, Arcs = 0;
  for (const BenchmarkSpec &Spec : getBenchmarkSuite()) {
    Module M = compileOk(Spec.Source);
    MinCoverPlan Plan = buildMinCoverPlan(M);
    Probes += Plan.NumProbes;
    Arcs += Plan.TotalArcs;
  }
  ASSERT_GT(Arcs, 0u);
  EXPECT_LE(static_cast<double>(Probes) / static_cast<double>(Arcs), 0.60)
      << Probes << " probes over " << Arcs << " arcs";
}

//===----------------------------------------------------------------------===//
// Inference under abnormal halts
//===----------------------------------------------------------------------===//

TEST(MinCoverInfer, StepLimitHaltsRecoverExactly) {
  // Runs cut off mid-flight leave activations whose entry was counted but
  // whose return never happened; the halt records supply that pending term.
  // Every truncation point must still infer exactly.
  Module M = compileOk(test::kCallHeavyProgram);
  MinCoverPlan Plan = buildMinCoverPlan(M);
  for (uint64_t Limit : {0ull, 1ull, 7ull, 50ull, 333ull, 5000ull}) {
    SCOPED_TRACE("limit " + std::to_string(Limit));
    RunOptions Opts;
    Opts.Input = "abcdefgh";
    Opts.StepLimit = Limit;
    expectInferredMatchesFull(M, Plan, Opts);
  }
}

TEST(MinCoverInfer, RecursionRecoversExactly) {
  Module M = compileOk(test::kRecursiveProgram);
  MinCoverPlan Plan = buildMinCoverPlan(M);
  RunOptions Opts;
  Opts.Input = "abcd";
  expectInferredMatchesFull(M, Plan, Opts);
}

//===----------------------------------------------------------------------===//
// Loop-depth weights (regression: the cap-4 / MaxLoopDepth divergence)
//===----------------------------------------------------------------------===//

TEST(MinCoverPlan, DepthFiveBackArcStaysOnTheSpanningTree) {
  // MinCover.cpp once capped loop depth at 4 while the static estimator
  // used Options.MaxLoopDepth; both now read analysis/LoopInfo.h and
  // MinCover weights by true depth (saturating only at 10^18). This
  // fixture is built so the two weightings place probes differently:
  //
  // A four-deep for-nest (headers H1..H4 = blocks 1..4, latches L4..L1 =
  // blocks 6..9) encloses a fifth, two-block loop {P2=11, P=12}. Block
  // P2's cond_br puts its loop-EXIT arc (P2 -> M, depth-4 weight, taken,
  // constructed first) AHEAD of its depth-5 back arc (P2 -> P, nottaken)
  // in construction order. Uncapped, the back arc's 10^5 weight wins the
  // Kruskal sort outright, so it joins the tree and the exit arc takes
  // the probe. Capped at 4 the two arcs tie at 10^4 and the stable sort's
  // construction-index tie-break hands the tree slot to the exit arc
  // instead — flipping both probe placements below. The probe must sit on
  // the arc that runs ~10x less often; with the cap, every trip around
  // the innermost loop bumps a counter that flow conservation could have
  // inferred.
  Module M;
  FuncId Id = M.addFunction("main", 0, false, false);
  Function &F = M.getFunction(Id);
  for (int I = 0; I != 13; ++I)
    F.addBlock();
  Reg C = F.addReg();
  auto B = [&F](BlockId Bl) -> std::vector<Instr> & {
    return F.getBlock(Bl).Instrs;
  };
  B(0).push_back(Instr::makeLdImm(C, 1));
  B(0).push_back(Instr::makeJump(1));        // entry
  B(1).push_back(Instr::makeCondBr(C, 2, 10)); // H1: depth 1
  B(2).push_back(Instr::makeCondBr(C, 3, 9));  // H2: depth 2
  B(3).push_back(Instr::makeCondBr(C, 4, 8));  // H3: depth 3
  B(4).push_back(Instr::makeCondBr(C, 12, 7)); // H4: depth 4, enters P
  B(5).push_back(Instr::makeJump(6));          // M:  depth 4
  B(6).push_back(Instr::makeJump(4));          // L4: latch of H4
  B(7).push_back(Instr::makeJump(3));          // L3: latch of H3
  B(8).push_back(Instr::makeJump(2));          // L2: latch of H2
  B(9).push_back(Instr::makeJump(1));          // L1: latch of H1
  B(10).push_back(Instr::makeRet(C));          // exit
  B(11).push_back(Instr::makeCondBr(C, 5, 12)); // P2: depth 5
  B(12).push_back(Instr::makeCondBr(C, 11, 5)); // P:  depth 5
  M.MainId = Id;
  ASSERT_EQ(verifyModuleText(M), "");

  // The fixture depends on the shared analysis seeing all five levels.
  std::vector<unsigned> Depth = computeLoopDepths(F);
  EXPECT_EQ(*std::max_element(Depth.begin(), Depth.end()), 5u);
  EXPECT_EQ(Depth[11], 5u);
  EXPECT_EQ(Depth[12], 5u);
  EXPECT_EQ(Depth[5], 4u);

  MinCoverPlan Plan = buildMinCoverPlan(M);
  ASSERT_EQ(Plan.Funcs.size(), 1u);
  const MinCoverFuncPlan &FP = Plan.Funcs[0];
  ASSERT_TRUE(FP.Instrumented);
  EXPECT_EQ(FP.NotTakenProbes[11], -1)
      << "the depth-5 back arc P2 -> P must be a tree arc";
  EXPECT_GE(FP.TakenProbes[11], 0)
      << "the depth-4 exit arc P2 -> M must carry the probe";
}

} // namespace
