//===- tests/FaultTests.cpp - failure containment smoke tests -----------------===//
//
// Part of the impact-inline project, distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The failure-containment contract, end to end: interpreter limits
/// (step-limit exhaustion, traps) and deterministically injected faults
/// (support/FaultInjection.h) each become one quarantined UnitFailure
/// while the rest of the batch completes bit-identical to a batch where
/// the failing unit never existed. The fault matrix walks every known
/// site at several occurrences; the retry test shows a transient fault
/// converging back to the fault-free result.
///
//===----------------------------------------------------------------------===//

#include "driver/BatchPipeline.h"
#include "driver/DecisionTrace.h"
#include "driver/Pipeline.h"
#include "ir/IrPrinter.h"
#include "support/FaultInjection.h"

#include "TestUtil.h"

#include <gtest/gtest.h>

#include <map>

using namespace impact;

namespace {

/// A program that never terminates on its own: only a step limit stops it.
const char *const kLoopingProgram = R"MC(
extern int getchar();
int main() {
  int x;
  x = 1;
  while (x) { x = x + 1; }
  return 0;
}
)MC";

/// Divides by an input-derived zero (empty input: getchar() == -1).
const char *const kDivByZeroProgram = R"MC(
extern int getchar();
int main() {
  int c;
  c = getchar();
  return 1 / (c + 1);
}
)MC";

/// Indexes far past a global array; the index is input-derived so no
/// optimization can fold the access away.
const char *const kOutOfBoundsProgram = R"MC(
extern int getchar();
int arr[4];
int main() {
  int i;
  i = getchar();
  return arr[(i & 1) + 1000000];
}
)MC";

std::vector<BatchJob> makeJobs() {
  const struct {
    const char *Name;
    const char *Source;
  } Programs[] = {
      {"call_heavy", test::kCallHeavyProgram},
      {"recursive", test::kRecursiveProgram},
      {"pointer_call", test::kPointerCallProgram},
  };
  std::vector<BatchJob> Jobs;
  for (const auto &P : Programs) {
    BatchJob Job;
    Job.Name = P.Name;
    Job.Source = P.Source;
    Job.Inputs = {RunInput{"abc", ""}, RunInput{"", ""}};
    Jobs.push_back(std::move(Job));
  }
  return Jobs;
}

/// Everything observable must match (timing/cache counters exempt).
void expectSameResult(const PipelineResult &A, const PipelineResult &B,
                      const std::string &Tag) {
  ASSERT_EQ(A.Ok, B.Ok) << Tag;
  EXPECT_EQ(A.Error, B.Error) << Tag;
  EXPECT_TRUE(A.Before == B.Before) << Tag;
  EXPECT_TRUE(A.After == B.After) << Tag;
  EXPECT_EQ(A.OutputsBefore, B.OutputsBefore) << Tag;
  EXPECT_EQ(A.OutputsAfter, B.OutputsAfter) << Tag;
  EXPECT_EQ(printModule(A.FinalModule), printModule(B.FinalModule)) << Tag;
}

FaultPlan parsePlan(const std::string &Spec) {
  FaultPlan Plan;
  std::string Diag;
  EXPECT_TRUE(parseFaultPlan(Spec, Plan, &Diag)) << Spec << ": " << Diag;
  return Plan;
}

//===----------------------------------------------------------------------===//
// Interpreter limits as quarantined failures
//===----------------------------------------------------------------------===//

TEST(FaultContainment, StepLimitExhaustionIsQuarantined) {
  std::vector<BatchJob> Jobs = makeJobs();
  BatchJob Looper;
  Looper.Name = "looper";
  Looper.Source = kLoopingProgram;
  Looper.Inputs = {RunInput{"", ""}};
  Looper.Options.Run.StepLimit = 10000; // keep the test fast
  Jobs.insert(Jobs.begin() + 1, Looper);

  BatchResult Clean = runBatchPipeline(makeJobs());
  ASSERT_TRUE(Clean.allOk());

  BatchResult R = runBatchPipeline(Jobs);
  EXPECT_FALSE(R.allOk());
  ASSERT_EQ(R.Results.size(), 4u);
  ASSERT_EQ(R.Failures.size(), 1u);
  EXPECT_EQ(R.Failures[0].Unit, "looper");
  EXPECT_EQ(R.Failures[0].Stage, "profile");
  EXPECT_EQ(R.Failures[0].Reason, "step-limit");
  EXPECT_NE(R.Failures[0].Detail.find("step limit"), std::string::npos);
  EXPECT_EQ(R.Aggregate.UnitsFailed, 1u);

  // Every other unit is bit-identical to the batch without the looper.
  expectSameResult(Clean.Results[0], R.Results[0], "call_heavy");
  expectSameResult(Clean.Results[1], R.Results[2], "recursive");
  expectSameResult(Clean.Results[2], R.Results[3], "pointer_call");
}

TEST(FaultContainment, DivByZeroTrapIsQuarantined) {
  std::vector<BatchJob> Jobs = makeJobs();
  BatchJob Bad;
  Bad.Name = "div_zero";
  Bad.Source = kDivByZeroProgram;
  Bad.Inputs = {RunInput{"", ""}};
  Jobs.push_back(Bad);

  BatchResult R = runBatchPipeline(Jobs);
  EXPECT_FALSE(R.allOk());
  ASSERT_EQ(R.Failures.size(), 1u);
  EXPECT_EQ(R.Failures[0].Unit, "div_zero");
  EXPECT_EQ(R.Failures[0].Stage, "profile");
  EXPECT_EQ(R.Failures[0].Reason, "trap");
  EXPECT_TRUE(R.Results[0].Ok);
  EXPECT_TRUE(R.Results[1].Ok);
  EXPECT_TRUE(R.Results[2].Ok);
}

TEST(FaultContainment, OutOfBoundsTrapIsQuarantined) {
  std::vector<BatchJob> Jobs = makeJobs();
  BatchJob Bad;
  Bad.Name = "oob";
  Bad.Source = kOutOfBoundsProgram;
  Bad.Inputs = {RunInput{"", ""}};
  Jobs.push_back(Bad);

  BatchResult R = runBatchPipeline(Jobs);
  EXPECT_FALSE(R.allOk());
  ASSERT_EQ(R.Failures.size(), 1u);
  EXPECT_EQ(R.Failures[0].Unit, "oob");
  EXPECT_EQ(R.Failures[0].Stage, "profile");
  EXPECT_EQ(R.Failures[0].Reason, "trap");
}

//===----------------------------------------------------------------------===//
// Engine parity: the VM produces the same quarantine records
//===----------------------------------------------------------------------===//

/// Runs \p Source alone under both engines and asserts the quarantined
/// UnitFailure carries the same stage and reason — a step-limit or trap
/// failure classifies identically no matter which engine hit it.
void expectSameQuarantine(const char *Name, const char *Source,
                          uint64_t StepLimit = 0) {
  BatchResult PerEngine[2];
  const ExecEngine Engines[2] = {ExecEngine::Walker, ExecEngine::Vm};
  for (int E = 0; E != 2; ++E) {
    BatchJob Job;
    Job.Name = Name;
    Job.Source = Source;
    Job.Inputs = {RunInput{"", ""}};
    Job.Options.Engine = Engines[E];
    if (StepLimit)
      Job.Options.Run.StepLimit = StepLimit;
    PerEngine[E] = runBatchPipeline({Job});
  }
  const BatchResult &Walk = PerEngine[0];
  const BatchResult &Vm = PerEngine[1];
  ASSERT_EQ(Walk.Failures.size(), 1u) << Name;
  ASSERT_EQ(Vm.Failures.size(), 1u) << Name;
  EXPECT_EQ(Walk.Failures[0].Unit, Vm.Failures[0].Unit) << Name;
  EXPECT_EQ(Walk.Failures[0].Stage, Vm.Failures[0].Stage) << Name;
  EXPECT_EQ(Walk.Failures[0].Reason, Vm.Failures[0].Reason) << Name;
  EXPECT_EQ(Walk.Failures[0].Detail, Vm.Failures[0].Detail) << Name;
}

TEST(EngineFaultParity, StepLimitQuarantinesIdentically) {
  expectSameQuarantine("looper", kLoopingProgram, 10000);
}

TEST(EngineFaultParity, DivByZeroQuarantinesIdentically) {
  expectSameQuarantine("div_zero", kDivByZeroProgram);
}

TEST(EngineFaultParity, OutOfBoundsQuarantinesIdentically) {
  expectSameQuarantine("oob", kOutOfBoundsProgram);
}

TEST(EngineFaultParity, IntrinsicMisuseQuarantinesIdentically) {
  // malloc with a negative word count is intrinsic misuse; both engines
  // must classify it as the same profile-stage trap.
  const char *Misuse = R"MC(
extern int malloc(int words);
int main() { return malloc(0 - 5); }
)MC";
  expectSameQuarantine("bad_malloc", Misuse);
}

TEST(EngineFaultParity, VmStepLimitFailureIsStructured) {
  // The VM path alone, checked against the documented quarantine shape
  // (stage and reason strings are part of the UnitFailure contract).
  BatchJob Job;
  Job.Name = "looper";
  Job.Source = kLoopingProgram;
  Job.Inputs = {RunInput{"", ""}};
  Job.Options.Engine = ExecEngine::Vm;
  Job.Options.Run.StepLimit = 10000;
  BatchResult R = runBatchPipeline({Job});
  ASSERT_EQ(R.Failures.size(), 1u);
  EXPECT_EQ(R.Failures[0].Stage, "profile");
  EXPECT_EQ(R.Failures[0].Reason, "step-limit");
  EXPECT_NE(R.Failures[0].Detail.find("step limit"), std::string::npos);
}

TEST(EngineFaultParity, VmTrapFailureIsStructured) {
  BatchJob Job;
  Job.Name = "div_zero";
  Job.Source = kDivByZeroProgram;
  Job.Inputs = {RunInput{"", ""}};
  Job.Options.Engine = ExecEngine::Vm;
  BatchResult R = runBatchPipeline({Job});
  ASSERT_EQ(R.Failures.size(), 1u);
  EXPECT_EQ(R.Failures[0].Stage, "profile");
  EXPECT_EQ(R.Failures[0].Reason, "trap");
  EXPECT_NE(R.Failures[0].Detail.find("division by zero"),
            std::string::npos);
}

TEST(EngineFaultParity, HealthyBatchIsEngineInvariantUnderVm) {
  // The quarantine machinery aside, a healthy batch under engine=vm is
  // bit-identical to the walker batch.
  std::vector<BatchJob> Walk = makeJobs();
  std::vector<BatchJob> Vm = makeJobs();
  for (BatchJob &Job : Vm)
    Job.Options.Engine = ExecEngine::Vm;
  BatchResult A = runBatchPipeline(Walk);
  BatchResult B = runBatchPipeline(Vm);
  ASSERT_TRUE(A.allOk());
  ASSERT_TRUE(B.allOk());
  for (size_t I = 0; I != A.Results.size(); ++I)
    expectSameResult(A.Results[I], B.Results[I], Walk[I].Name);
}

//===----------------------------------------------------------------------===//
// Injected faults: the site x occurrence matrix
//===----------------------------------------------------------------------===//

/// The pipeline stage each site's failure must be attributed to. Sites
/// absent here are not pipeline sites: "cache-persist" lives on the
/// compile server's store-save path and is exercised by the server tier
/// (tests/CompileServerTests.cpp), never by a plain pipeline run.
const std::map<std::string, std::string> &siteToStage() {
  static const std::map<std::string, std::string> Map = {
      {"parse", "compile"},        {"sema", "compile"},
      {"irgen", "compile"},        {"pass", "pre-opt"},
      {"cache-lookup", "pre-opt"}, {"cache-insert", "pre-opt"},
      {"profile", "profile"},      {"expand", "inline"},
      {"reprofile", "re-profile"},
  };
  return Map;
}

TEST(FaultMatrix, EverySiteEveryOccurrence) {
  // Counting pass: an empty (but non-null) plan records each site's
  // arrival count without firing anything — and must not perturb the
  // result at all.
  std::vector<BatchJob> Jobs = makeJobs();
  FaultPlan Empty;
  Jobs[0].Options.Faults = &Empty;
  BatchOptions Serial;
  Serial.Jobs = 1; // fixed job order keeps cache-site arrivals exact
  BatchResult Baseline = runBatchPipeline(Jobs, Serial);
  ASSERT_TRUE(Baseline.allOk());
  std::map<std::string, uint64_t> Arrivals(
      Baseline.Results[0].FaultSiteHits.begin(),
      Baseline.Results[0].FaultSiteHits.end());

  for (const std::string &Site : getKnownFaultSites()) {
    if (!siteToStage().count(Site))
      continue; // server-scope site; covered by the server tier
    ASSERT_TRUE(Arrivals.count(Site)) << "site never reached: " << Site;
    uint64_t Last = Arrivals[Site];
    ASSERT_GE(Last, 1u) << Site;
    std::vector<uint64_t> Ks = {1};
    if (Last >= 2)
      Ks.push_back(2);
    if (Last > 2)
      Ks.push_back(Last);
    for (uint64_t K : Ks) {
      std::string Spec =
          "call_heavy/" + Site + ":throw@" + std::to_string(K);
      FaultPlan Plan = parsePlan(Spec);
      std::vector<BatchJob> FaultJobs = makeJobs();
      FaultJobs[0].Options.Faults = &Plan;
      BatchResult R = runBatchPipeline(FaultJobs, Serial);

      EXPECT_FALSE(R.allOk()) << Spec;
      ASSERT_EQ(R.Failures.size(), 1u) << Spec;
      EXPECT_EQ(R.Failures[0].Unit, "call_heavy") << Spec;
      EXPECT_EQ(R.Failures[0].Stage, siteToStage().at(Site)) << Spec;
      EXPECT_EQ(R.Failures[0].Reason, "fault-injected") << Spec;
      EXPECT_NE(R.Failures[0].Detail.find(Site), std::string::npos) << Spec;

      // The throw unwound at exactly the K-th arrival.
      std::map<std::string, uint64_t> Hits(
          R.Results[0].FaultSiteHits.begin(),
          R.Results[0].FaultSiteHits.end());
      EXPECT_EQ(Hits[Site], K) << Spec;

      // The other units are bit-identical to the fault-free batch, and
      // the failing unit poisoned nothing.
      expectSameResult(Baseline.Results[1], R.Results[1], Spec);
      expectSameResult(Baseline.Results[2], R.Results[2], Spec);
      EXPECT_EQ(R.Cache.RejectedInserts, 0u) << Spec;
      // The failing unit's pre-fault lookups stay in the cache's own
      // counters but are dropped from the aggregate (failed units
      // contribute no stats), so the cache may only ever count more.
      EXPECT_GE(R.Cache.Hits + R.Cache.Misses,
                R.Aggregate.CacheHits + R.Aggregate.CacheMisses)
          << Spec;
    }
  }
}

TEST(FaultMatrix, InjectionIsThreadCountInvariant) {
  // Occurrence counters are per-unit and thread-confined, so the same
  // spec fires identically at any job count.
  FaultPlan Plan = parsePlan("call_heavy/expand:throw@1");
  std::vector<BatchJob> Jobs = makeJobs();
  Jobs[0].Options.Faults = &Plan;
  BatchOptions Serial, Wide;
  Serial.Jobs = 1;
  Wide.Jobs = 4;
  BatchResult A = runBatchPipeline(Jobs, Serial);
  BatchResult B = runBatchPipeline(Jobs, Wide);
  ASSERT_EQ(A.Failures.size(), 1u);
  ASSERT_EQ(B.Failures.size(), 1u);
  EXPECT_EQ(A.Failures[0].Unit, B.Failures[0].Unit);
  EXPECT_EQ(A.Failures[0].Stage, B.Failures[0].Stage);
  EXPECT_EQ(A.Failures[0].Reason, B.Failures[0].Reason);
  EXPECT_EQ(A.Failures[0].Detail, B.Failures[0].Detail);
  for (size_t I = 1; I != Jobs.size(); ++I)
    expectSameResult(A.Results[I], B.Results[I], Jobs[I].Name);
}

//===----------------------------------------------------------------------===//
// Fault kinds beyond throw
//===----------------------------------------------------------------------===//

TEST(FaultKinds, OomAtCacheInsert) {
  FaultPlan Plan = parsePlan("cache-insert:oom@1");
  std::vector<BatchJob> Jobs = makeJobs();
  Jobs[0].Options.Faults = &Plan;
  BatchResult R = runBatchPipeline(Jobs);
  ASSERT_EQ(R.Failures.size(), 1u);
  EXPECT_EQ(R.Failures[0].Unit, "call_heavy");
  EXPECT_EQ(R.Failures[0].Stage, "pre-opt");
  EXPECT_EQ(R.Failures[0].Reason, "oom");
  EXPECT_EQ(R.Cache.RejectedInserts, 0u);
}

TEST(FaultKinds, InjectedDiagnosticAtParse) {
  FaultPlan Plan = parsePlan("parse:diag@1");
  PipelineOptions Options;
  Options.Faults = &Plan;
  PipelineResult R = runPipeline(test::kCallHeavyProgram, "unit",
                                 {RunInput{"ab", ""}}, Options);
  EXPECT_FALSE(R.Ok);
  EXPECT_EQ(R.Failure.Stage, "compile");
  EXPECT_EQ(R.Failure.Reason, "diagnostic");
  EXPECT_NE(R.Failure.Detail.find("injected diagnostic"),
            std::string::npos);
  // Legacy error string shape is preserved for existing callers.
  EXPECT_EQ(R.Error.rfind("compilation failed:", 0), 0u);
}

TEST(FaultKinds, InjectedStepLimitAtProfile) {
  FaultPlan Plan = parsePlan("profile:steplimit@1");
  PipelineOptions Options;
  Options.Faults = &Plan;
  PipelineResult R = runPipeline(test::kCallHeavyProgram, "unit",
                                 {RunInput{"ab", ""}}, Options);
  EXPECT_FALSE(R.Ok);
  EXPECT_EQ(R.Failure.Stage, "profile");
  EXPECT_EQ(R.Failure.Reason, "step-limit");
}

TEST(FaultKinds, UnitScopedRuleSparesOtherUnits) {
  FaultPlan Plan = parsePlan("recursive/expand:throw@1");
  std::vector<BatchJob> Jobs = makeJobs();
  for (BatchJob &Job : Jobs)
    Job.Options.Faults = &Plan; // same plan everywhere; only one matches
  BatchResult R = runBatchPipeline(Jobs);
  ASSERT_EQ(R.Failures.size(), 1u);
  EXPECT_EQ(R.Failures[0].Unit, "recursive");
  EXPECT_TRUE(R.Results[0].Ok);
  EXPECT_TRUE(R.Results[2].Ok);
}

//===----------------------------------------------------------------------===//
// Bounded retry
//===----------------------------------------------------------------------===//

TEST(FaultRetry, TransientFaultSurvivedByRetry) {
  PipelineOptions Clean;
  PipelineResult Expected = runPipeline(test::kCallHeavyProgram, "unit",
                                        {RunInput{"ab", ""}}, Clean);
  ASSERT_TRUE(Expected.Ok);

  // Fires on attempt 1 only; one retry must converge to the clean result.
  FaultPlan Plan = parsePlan("profile:throw@1x1");
  PipelineOptions Options;
  Options.Faults = &Plan;
  Options.RetryAttempts = 1;
  PipelineResult R = runPipeline(test::kCallHeavyProgram, "unit",
                                 {RunInput{"ab", ""}}, Options);
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.Stats.Retries, 1u);
  expectSameResult(Expected, R, "retry");

  // Without the retry budget the same plan fails.
  Options.RetryAttempts = 0;
  PipelineResult F = runPipeline(test::kCallHeavyProgram, "unit",
                                 {RunInput{"ab", ""}}, Options);
  EXPECT_FALSE(F.Ok);
  EXPECT_EQ(F.Failure.Reason, "fault-injected");
  EXPECT_EQ(F.Failure.Attempts, 1u);
}

TEST(FaultRetry, PersistentFaultExhaustsAttempts) {
  FaultPlan Plan = parsePlan("expand:throw@1"); // no attempt bound
  PipelineOptions Options;
  Options.Faults = &Plan;
  Options.RetryAttempts = 2;
  PipelineResult R = runPipeline(test::kCallHeavyProgram, "unit",
                                 {RunInput{"ab", ""}}, Options);
  EXPECT_FALSE(R.Ok);
  EXPECT_EQ(R.Failure.Attempts, 3u);
  EXPECT_EQ(R.Stats.Retries, 2u);
  EXPECT_EQ(R.Stats.UnitsFailed, 1u);
}

//===----------------------------------------------------------------------===//
// Failure rendering
//===----------------------------------------------------------------------===//

TEST(FailureRendering, RenderAndJsonCarryEveryField) {
  UnitFailure F;
  F.Unit = "wc";
  F.Stage = "profile";
  F.Reason = "step-limit";
  F.Detail = "run 0: step limit exceeded";
  F.Attempts = 2;
  std::string Text = F.render();
  EXPECT_EQ(Text, "unit 'wc' failed at profile (step-limit) after "
                  "2 attempt(s): run 0: step limit exceeded");

  std::string Json = renderUnitFailureJson(F);
  EXPECT_NE(Json.find("\"program\":\"wc\""), std::string::npos);
  EXPECT_NE(Json.find("\"failed\":true"), std::string::npos);
  EXPECT_NE(Json.find("\"stage\":\"profile\""), std::string::npos);
  EXPECT_NE(Json.find("\"reason\":\"step-limit\""), std::string::npos);
  EXPECT_NE(Json.find("\"attempts\":2"), std::string::npos);
  EXPECT_EQ(Json.back(), '\n');

  // Quotes and newlines in the detail must be escaped.
  F.Detail = "line1\n\"quoted\"";
  std::string Escaped = renderUnitFailureJson(F, "override");
  EXPECT_NE(Escaped.find("\"program\":\"override\""), std::string::npos);
  EXPECT_NE(Escaped.find("line1\\n\\\"quoted\\\""), std::string::npos);
}

} // namespace
