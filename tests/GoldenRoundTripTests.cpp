//===- tests/GoldenRoundTripTests.cpp - print/parse/verify/re-run golden ------===//
//
// Part of the impact-inline project, distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Golden round-trip over the whole benchmark suite: run each program
/// through the full pipeline, print the post-inline module, parse it back
/// with IrReader, and demand (a) the verifier accepts the reparse, (b)
/// re-printing reproduces the text byte for byte, and (c) the reparsed
/// module still computes the same outputs the pipeline measured. This
/// pins the textual IL format as a faithful serialization of everything
/// inline expansion produces — nested expansions, pointer calls,
/// eliminated functions, renamed registers and all.
///
//===----------------------------------------------------------------------===//

#include "driver/Pipeline.h"
#include "ir/IrPrinter.h"
#include "ir/IrReader.h"
#include "ir/IrVerifier.h"
#include "suite/Suite.h"

#include <gtest/gtest.h>

using namespace impact;

namespace {

class GoldenRoundTrip : public ::testing::TestWithParam<std::string> {};

TEST_P(GoldenRoundTrip, PostInlineModuleSurvivesPrintParseRerun) {
  const BenchmarkSpec *B = findBenchmark(GetParam());
  ASSERT_NE(B, nullptr) << GetParam();

  std::vector<RunInput> Inputs = makeBenchmarkInputs(*B, 2);
  PipelineResult R = runPipeline(B->Source, B->Name, Inputs);
  ASSERT_TRUE(R.Ok) << B->Name << ": " << R.Error;
  ASSERT_TRUE(R.outputsMatch()) << B->Name;

  // Print → parse: the text must be accepted by the reader.
  std::string Printed = printModule(R.FinalModule);
  IrReadResult Reparsed = parseModuleText(Printed);
  ASSERT_TRUE(Reparsed.Ok) << B->Name << ": " << Reparsed.Error;

  // The reparsed module must satisfy every structural invariant.
  EXPECT_EQ(verifyModuleText(Reparsed.M), "") << B->Name;

  // Re-print: byte-identical, so the format loses nothing.
  EXPECT_EQ(printModule(Reparsed.M), Printed) << B->Name;

  // Re-run: the reparsed program computes what the pipeline measured.
  ASSERT_EQ(R.OutputsAfter.size(), Inputs.size());
  for (size_t I = 0; I != Inputs.size(); ++I) {
    RunOptions Opts;
    Opts.Input = Inputs[I].Input;
    Opts.Input2 = Inputs[I].Input2;
    ExecResult E = runProgram(Reparsed.M, Opts);
    EXPECT_TRUE(E.ok()) << B->Name << " input #" << I << ": "
                        << E.TrapMessage;
    EXPECT_EQ(E.Output, R.OutputsAfter[I]) << B->Name << " input #" << I;
  }
}

std::vector<std::string> suiteNames() {
  std::vector<std::string> Names;
  for (const BenchmarkSpec &B : getBenchmarkSuite())
    Names.push_back(B.Name);
  return Names;
}

INSTANTIATE_TEST_SUITE_P(Suite, GoldenRoundTrip,
                         ::testing::ValuesIn(suiteNames()),
                         [](const auto &Info) { return Info.param; });

} // namespace
