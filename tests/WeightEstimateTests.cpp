//===- tests/WeightEstimateTests.cpp - redistribution + static estimates ------===//
//
// Part of the impact-inline project, distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/WeightRedistribution.h"
#include "profile/StaticEstimator.h"

#include "core/InlinePass.h"
#include "suite/Suite.h"
#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace impact;
using test::compileOk;

namespace {

//===----------------------------------------------------------------------===//
// Arc-weight redistribution (§2.2)
//===----------------------------------------------------------------------===//

struct Redistributed {
  Module M;
  ProfileData Pre;
  RedistributedWeights Est;
  ProfileData Post;
};

Redistributed expandAndEstimate(const char *Source, const std::string &Input,
                                InlineOptions Options = InlineOptions()) {
  Redistributed R{compileOk(Source), {}, {}, {}};
  ProfileResult Pre = test::profileInputs(R.M, {Input});
  EXPECT_TRUE(Pre.allRunsOk());
  R.Pre = Pre.Data;
  InlineResult IR = runInlineExpansion(R.M, R.Pre, Options);
  R.Est = redistributeWeights(R.M, R.Pre, IR.Expansions);
  ProfileResult Post = test::profileInputs(R.M, {Input});
  EXPECT_TRUE(Post.allRunsOk());
  R.Post = Post.Data;
  return R;
}

TEST(WeightRedistribution, NoExpansionsIsIdentity) {
  Module M = compileOk(test::kCallHeavyProgram);
  ProfileResult P = test::profileInputs(M, {"abc"});
  RedistributedWeights Est = redistributeWeights(M, P.Data, {});
  for (uint32_t S = 0; S != M.NextSiteId; ++S)
    EXPECT_DOUBLE_EQ(Est.ArcWeight[S], P.Data.getArcWeight(S));
}

TEST(WeightRedistribution, MatchesReprofileOnUniformCallee) {
  // square behaves identically from every entry: the uniform-attribution
  // estimate is exact, site by site.
  InlineOptions Options;
  Options.CodeGrowthFactor = 8.0;
  Options.MinArcWeight = 1.0;
  Redistributed R = expandAndEstimate(test::kCallHeavyProgram,
                                      std::string(30, 'x'), Options);
  for (uint32_t S = 0; S != R.M.NextSiteId; ++S)
    EXPECT_NEAR(R.Est.ArcWeight[S], R.Post.getArcWeight(S), 1e-6)
        << "site " << S;
}

TEST(WeightRedistribution, TotalCallVolumeInvariant) {
  // Independent of attribution accuracy: total arc weight equals the
  // re-profiled total dynamic calls.
  InlineOptions Options;
  Options.CodeGrowthFactor = 3.0;
  Redistributed R = expandAndEstimate(test::kCallHeavyProgram,
                                      std::string(40, 'q'), Options);
  EXPECT_NEAR(R.Est.getTotalArcWeight(), R.Post.getAvgDynamicCalls(), 1e-6);
}

TEST(WeightRedistribution, ExpandedSitesDropToZero) {
  InlineOptions Options;
  Options.CodeGrowthFactor = 3.0;
  Module M = compileOk(test::kCallHeavyProgram);
  ProfileResult Pre = test::profileInputs(M, {std::string(30, 'x')});
  InlineResult IR = runInlineExpansion(M, Pre.Data, Options);
  ASSERT_FALSE(IR.Expansions.empty());
  RedistributedWeights Est = redistributeWeights(M, Pre.Data, IR.Expansions);
  for (const ExpansionRecord &Rec : IR.Expansions)
    EXPECT_DOUBLE_EQ(Est.ArcWeight[Rec.SiteId], 0.0);
}

TEST(WeightRedistribution, SelfRecursiveCalleeKeepsCloneEntries) {
  // Expanding a self arc T (g -> g) clones g's body — including T itself —
  // back into g: the clone of T still calls g, so its share of the entries
  // survives the expansion. The old code subtracted the full arc weight
  // from g's node weight and lost those re-created entries. (The planner
  // never emits such a record — same-SCC arcs are rejected — but
  // redistributeWeights is a public API whose contract covers it.)
  Module M = compileOk("int g(int n) { if (n < 1) return 0;"
                       "return g(n - 1); }"
                       "int main() { return g(5); }");
  ProfileResult P = test::profileInputs(M, {""});
  ASSERT_TRUE(P.allRunsOk());

  FuncId G = M.findFunction("g");
  ASSERT_NE(G, kNoFunc);
  uint32_t MainSite = 0, SelfSite = 0;
  for (const Function &F : M.Funcs)
    for (const auto &Blk : F.Blocks)
      for (const Instr &I : Blk.Instrs)
        if (I.isCall())
          (F.Id == M.MainId ? MainSite : SelfSite) = I.SiteId;
  ASSERT_NE(MainSite, 0u);
  ASSERT_NE(SelfSite, 0u);

  double MainW = P.Data.getArcWeight(MainSite); // 1: main enters g once
  double SelfW = P.Data.getArcWeight(SelfSite); // 5: g recurses five times
  ASSERT_GT(SelfW, 0.0);

  ExpansionRecord Rec;
  Rec.SiteId = SelfSite;
  Rec.Caller = G;
  Rec.Callee = G;
  uint32_t Clone = M.allocateSiteId();
  Rec.ClonedSites = {{SelfSite, Clone}};

  RedistributedWeights R = redistributeWeights(M, P.Data, {Rec});

  // The expanded site drops to zero; its clone inherits the share of the
  // body's executions attributed to the expanded arc.
  EXPECT_DOUBLE_EQ(R.ArcWeight[SelfSite], 0.0);
  double Ratio = SelfW / (MainW + SelfW);
  EXPECT_DOUBLE_EQ(R.ArcWeight[Clone], SelfW * Ratio);

  // g is still entered through main's arc *and* through the clone; the
  // old code reported MainW alone.
  EXPECT_DOUBLE_EQ(R.NodeWeight[static_cast<size_t>(G)],
                   MainW + R.ArcWeight[Clone]);
}

TEST(WeightRedistribution, SuiteBenchmarksStayClose) {
  // On real programs the estimate should track the re-profiled truth
  // closely in aggregate (within 2% of total call volume).
  for (const char *Name : {"compress", "make"}) {
    const BenchmarkSpec *B = findBenchmark(Name);
    Module M = compileOk(B->Source);
    auto Inputs = makeBenchmarkInputs(*B, 2);
    ProfileResult Pre = profileProgram(M, Inputs);
    ASSERT_TRUE(Pre.allRunsOk());
    InlineResult IR = runInlineExpansion(M, Pre.Data);
    RedistributedWeights Est = redistributeWeights(M, Pre.Data,
                                                   IR.Expansions);
    ProfileResult Post = profileProgram(M, Inputs);
    ASSERT_TRUE(Post.allRunsOk());
    double Truth = Post.Data.getAvgDynamicCalls();
    EXPECT_NEAR(Est.getTotalArcWeight(), Truth, Truth * 0.02 + 1.0)
        << Name;
  }
}

//===----------------------------------------------------------------------===//
// Structure-only estimates (§4.2)
//===----------------------------------------------------------------------===//

TEST(LoopDepth, StraightLineIsZero) {
  Module M = compileOk("int main() { int x; x = 1; return x; }");
  auto Depth = computeLoopDepths(M.getFunction(M.MainId));
  for (unsigned D : Depth)
    EXPECT_EQ(D, 0u);
}

TEST(LoopDepth, SingleLoopBodyIsOne) {
  Module M = compileOk("extern int putchar(int c);"
                       "int main() { int i;"
                       "for (i = 0; i < 3; i++) putchar('x');"
                       "return 0; }");
  const Function &Main = M.getFunction(M.MainId);
  auto Depth = computeLoopDepths(Main);
  // The block containing the call must be at depth 1.
  bool Checked = false;
  for (size_t B = 0; B != Main.Blocks.size(); ++B)
    for (const Instr &I : Main.Blocks[B].Instrs)
      if (I.isCall()) {
        EXPECT_EQ(Depth[B], 1u);
        Checked = true;
      }
  EXPECT_TRUE(Checked);
  EXPECT_EQ(Depth[0], 0u) << "entry stays outside the loop";
}

TEST(LoopDepth, NestedLoopsStack) {
  Module M = compileOk("extern int putchar(int c);"
                       "int main() { int i; int j;"
                       "for (i = 0; i < 3; i++)"
                       "  for (j = 0; j < 3; j++) putchar('x');"
                       "return 0; }");
  const Function &Main = M.getFunction(M.MainId);
  auto Depth = computeLoopDepths(Main);
  unsigned CallDepth = 0;
  for (size_t B = 0; B != Main.Blocks.size(); ++B)
    for (const Instr &I : Main.Blocks[B].Instrs)
      if (I.isCall())
        CallDepth = Depth[B];
  EXPECT_EQ(CallDepth, 2u);
}

TEST(StaticEstimator, LoopSitesOutweighStraightLine) {
  Module M = compileOk("int leaf(int x) { return x + 1; }"
                       "int main() { int i; int t; t = leaf(0);"
                       "for (i = 0; i < 9; i++) t = t + leaf(i);"
                       "return t; }");
  ProfileData Est = estimateProfileFromStructure(M);
  // Find the two sites.
  uint32_t Straight = 0, Looped = 0;
  const Function &Main = M.getFunction(M.MainId);
  auto Depth = computeLoopDepths(Main);
  for (size_t B = 0; B != Main.Blocks.size(); ++B)
    for (const Instr &I : Main.Blocks[B].Instrs)
      if (I.isCall())
        (Depth[B] == 0 ? Straight : Looped) = I.SiteId;
  ASSERT_NE(Straight, 0u);
  ASSERT_NE(Looped, 0u);
  EXPECT_GT(Est.getArcWeight(Looped), Est.getArcWeight(Straight));
  EXPECT_DOUBLE_EQ(Est.getArcWeight(Straight), 1.0);
  EXPECT_DOUBLE_EQ(Est.getArcWeight(Looped), 10.0);
}

TEST(StaticEstimator, EntryCountsPropagateDown) {
  Module M = compileOk("int inner(int x) { return x; }"
                       "int outer(int x) { int i; int t; t = 0;"
                       "for (i = 0; i < 4; i++) t = t + inner(i);"
                       "return t; }"
                       "int main() { int i; int t; t = 0;"
                       "for (i = 0; i < 4; i++) t = t + outer(i);"
                       "return t; }");
  ProfileData Est = estimateProfileFromStructure(M);
  // outer entered ~10 (one loop level), inner ~100 (two multiplications).
  EXPECT_DOUBLE_EQ(Est.getNodeWeight(M.findFunction("outer")), 10.0);
  EXPECT_DOUBLE_EQ(Est.getNodeWeight(M.findFunction("inner")), 100.0);
  EXPECT_DOUBLE_EQ(Est.getNodeWeight(M.MainId), 1.0);
}

TEST(StaticEstimator, RecursionStaysFinite) {
  Module M = compileOk("int fib(int n) { if (n < 2) return n;"
                       "return fib(n - 1) + fib(n - 2); }"
                       "int main() { return fib(10); }");
  ProfileData Est = estimateProfileFromStructure(M);
  EXPECT_GT(Est.getNodeWeight(M.findFunction("fib")), 0.0);
  EXPECT_LT(Est.getNodeWeight(M.findFunction("fib")), 1e12);
}

TEST(StaticEstimator, DrivesTheInlinerEndToEnd) {
  // The whole stack runs on fake weights and behaviour is preserved.
  const BenchmarkSpec *B = findBenchmark("compress");
  Module M = compileOk(B->Source);
  auto Inputs = makeBenchmarkInputs(*B, 2);
  ProfileResult Real = profileProgram(M, Inputs);
  ASSERT_TRUE(Real.allRunsOk());

  ProfileData Est = estimateProfileFromStructure(M);
  InlineResult R = runInlineExpansion(M, Est);
  EXPECT_GT(R.getNumExpanded(), 0u)
      << "loop nesting alone must find something in compress";
  ProfileResult Post = profileProgram(M, Inputs);
  ASSERT_TRUE(Post.allRunsOk());
  EXPECT_EQ(Post.Outputs, Real.Outputs);
  EXPECT_LT(Post.Data.getAvgDynamicCalls(), Real.Data.getAvgDynamicCalls());
}

} // namespace
