//===- tests/IrVerifierTests.cpp - IL verifier tests --------------------------===//
//
// Part of the impact-inline project, distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "ir/IrVerifier.h"

#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace impact;

namespace {

/// A minimal well-formed module: int f() { return 0; } plus main calling it.
Module makeValidModule() {
  Module M;
  FuncId FId = M.addFunction("f", 0, false, false);
  {
    Function &F = M.getFunction(FId);
    BlockId B = F.addBlock();
    Reg R = F.addReg();
    F.getBlock(B).Instrs.push_back(Instr::makeLdImm(R, 0));
    F.getBlock(B).Instrs.push_back(Instr::makeRet(R));
  }
  FuncId MainId = M.addFunction("main", 0, false, false);
  {
    Function &F = M.getFunction(MainId);
    BlockId B = F.addBlock();
    Reg R = F.addReg();
    F.getBlock(B).Instrs.push_back(
        Instr::makeCall(R, FId, {}, M.allocateSiteId()));
    F.getBlock(B).Instrs.push_back(Instr::makeRet(R));
  }
  M.MainId = MainId;
  return M;
}

TEST(IrVerifier, ValidModulePasses) {
  Module M = makeValidModule();
  EXPECT_EQ(verifyModuleText(M), "");
}

TEST(IrVerifier, CompiledProgramsVerify) {
  Module M = test::compileOk(test::kCallHeavyProgram);
  EXPECT_EQ(verifyModuleText(M), "");
}

TEST(IrVerifier, EmptyBlockReported) {
  Module M = makeValidModule();
  M.getFunction(0).addBlock();
  EXPECT_NE(verifyModuleText(M).find("empty basic block"), std::string::npos);
}

TEST(IrVerifier, MissingTerminatorReported) {
  Module M = makeValidModule();
  M.getFunction(0).Blocks[0].Instrs.pop_back();
  EXPECT_NE(verifyModuleText(M).find("does not end in a terminator"),
            std::string::npos);
}

TEST(IrVerifier, MidBlockTerminatorReported) {
  Module M = makeValidModule();
  Function &F = M.getFunction(0);
  F.Blocks[0].Instrs.insert(F.Blocks[0].Instrs.begin(),
                            Instr::makeJump(0));
  EXPECT_NE(verifyModuleText(M).find("terminator in the middle"),
            std::string::npos);
}

TEST(IrVerifier, RegisterOutOfRange) {
  Module M = makeValidModule();
  M.getFunction(0).Blocks[0].Instrs[0].Dst = 99;
  EXPECT_NE(verifyModuleText(M).find("out of range"), std::string::npos);
}

TEST(IrVerifier, BranchTargetOutOfRange) {
  Module M = makeValidModule();
  Function &F = M.getFunction(0);
  F.Blocks[0].Instrs.back() = Instr::makeJump(42);
  EXPECT_NE(verifyModuleText(M).find("branch target bb42"),
            std::string::npos);
}

TEST(IrVerifier, FrameOffsetOutsideFrame) {
  Module M = makeValidModule();
  Function &F = M.getFunction(0);
  F.Blocks[0].Instrs[0] = Instr::makeFrameAddr(0, 5); // FrameSize is 0
  EXPECT_NE(verifyModuleText(M).find("outside frame"), std::string::npos);
}

TEST(IrVerifier, GlobalIndexChecked) {
  Module M = makeValidModule();
  M.getFunction(0).Blocks[0].Instrs[0] = Instr::makeGlobalAddr(0, 3);
  EXPECT_NE(verifyModuleText(M).find("global index out of range"),
            std::string::npos);
}

TEST(IrVerifier, CallArityMismatch) {
  Module M = makeValidModule();
  Function &Main = M.getFunction(M.MainId);
  Main.Blocks[0].Instrs[0].Args.push_back(0); // f takes no params
  EXPECT_NE(verifyModuleText(M).find("takes 0"), std::string::npos);
}

TEST(IrVerifier, DuplicateSiteIds) {
  Module M = makeValidModule();
  Function &Main = M.getFunction(M.MainId);
  Instr Extra = Main.Blocks[0].Instrs[0]; // same SiteId
  Main.Blocks[0].Instrs.insert(Main.Blocks[0].Instrs.begin(), Extra);
  EXPECT_NE(verifyModuleText(M).find("duplicate call site id"),
            std::string::npos);
}

TEST(IrVerifier, UnassignedSiteId) {
  Module M = makeValidModule();
  M.getFunction(M.MainId).Blocks[0].Instrs[0].SiteId = 0;
  EXPECT_NE(verifyModuleText(M).find("site id is unassigned"),
            std::string::npos);
}

TEST(IrVerifier, SiteIdBeyondCounter) {
  Module M = makeValidModule();
  M.getFunction(M.MainId).Blocks[0].Instrs[0].SiteId = 999;
  EXPECT_NE(verifyModuleText(M).find("not allocated from the module"),
            std::string::npos);
}

TEST(IrVerifier, VoidReturnMismatch) {
  Module M = makeValidModule();
  Function &F = M.getFunction(0);
  F.ReturnsVoid = true;
  EXPECT_NE(verifyModuleText(M).find("void function returns a value"),
            std::string::npos);
}

TEST(IrVerifier, NonVoidReturnWithoutValue) {
  Module M = makeValidModule();
  Function &F = M.getFunction(0);
  F.Blocks[0].Instrs.back() = Instr::makeRet(kNoReg);
  EXPECT_NE(verifyModuleText(M).find("returns no value"), std::string::npos);
}

TEST(IrVerifier, VoidCallWithDestination) {
  Module M = makeValidModule();
  M.getFunction(0).ReturnsVoid = true;
  M.getFunction(0).Blocks[0].Instrs.back() = Instr::makeRet(kNoReg);
  // main still assigns the result of calling f.
  EXPECT_NE(verifyModuleText(M).find("void call must not define"),
            std::string::npos);
}

TEST(IrVerifier, ExternalWithBodyReported) {
  Module M = makeValidModule();
  M.getFunction(0).IsExternal = true;
  EXPECT_NE(verifyModuleText(M).find("external function has a body"),
            std::string::npos);
}

TEST(IrVerifier, NonExternalWithoutBlocks) {
  Module M = makeValidModule();
  M.getFunction(0).Blocks.clear();
  EXPECT_NE(verifyModuleText(M).find("has no blocks"), std::string::npos);
}

TEST(IrVerifier, CallToEliminatedFunction) {
  Module M = makeValidModule();
  M.getFunction(0).Eliminated = true;
  M.getFunction(0).Blocks.clear();
  EXPECT_NE(verifyModuleText(M).find("eliminated function"),
            std::string::npos);
}

TEST(IrVerifier, ExternalMainRejected) {
  Module M = makeValidModule();
  Function &Main = M.getFunction(M.MainId);
  Main.IsExternal = true;
  Main.Blocks.clear();
  EXPECT_NE(verifyModuleText(M).find("main function is external"),
            std::string::npos);
}

TEST(IrVerifier, MainWithParamsRejected) {
  Module M = makeValidModule();
  M.getFunction(M.MainId).NumParams = 1;
  EXPECT_NE(verifyModuleText(M).find("main function takes parameters"),
            std::string::npos);
}

//===----------------------------------------------------------------------===//
// Negative coverage: one test per documented invariant. Each corrupts a
// valid module in exactly one way and checks the specific diagnostic.
//===----------------------------------------------------------------------===//

TEST(IrVerifier, MainIdOutOfRange) {
  Module M = makeValidModule();
  M.MainId = 99;
  EXPECT_NE(verifyModuleText(M).find("MainId is out of range"),
            std::string::npos);
}

TEST(IrVerifier, CondBrFalseTargetOutOfRange) {
  Module M = makeValidModule();
  Function &F = M.getFunction(0);
  // True target valid, false target not: Target2 must be checked too.
  F.Blocks[0].Instrs.back() = Instr::makeCondBr(0, 0, 42);
  EXPECT_NE(verifyModuleText(M).find("branch target bb42"),
            std::string::npos);
}

TEST(IrVerifier, CondBrMissingCondition) {
  Module M = makeValidModule();
  Function &F = M.getFunction(0);
  F.Blocks[0].Instrs.back() = Instr::makeCondBr(kNoReg, 0, 0);
  EXPECT_NE(verifyModuleText(M).find("missing required condition"),
            std::string::npos);
}

TEST(IrVerifier, MovMissingSource) {
  Module M = makeValidModule();
  Function &F = M.getFunction(0);
  F.Blocks[0].Instrs[0] = Instr::makeMov(0, kNoReg);
  EXPECT_NE(verifyModuleText(M).find("missing required source"),
            std::string::npos);
}

TEST(IrVerifier, ArgumentRegisterOutOfRange) {
  Module M = makeValidModule();
  Function &Main = M.getFunction(M.MainId);
  Main.Blocks[0].Instrs[0].Args.push_back(99);
  EXPECT_NE(verifyModuleText(M).find("argument register r99 out of range"),
            std::string::npos);
}

TEST(IrVerifier, CallPtrMissingCalleeAddress) {
  Module M = makeValidModule();
  Function &Main = M.getFunction(M.MainId);
  Main.Blocks[0].Instrs[0] =
      Instr::makeCallPtr(0, kNoReg, {}, M.allocateSiteId());
  EXPECT_NE(verifyModuleText(M).find("missing required callee address"),
            std::string::npos);
}

TEST(IrVerifier, DirectCallToInvalidFunctionId) {
  Module M = makeValidModule();
  M.getFunction(M.MainId).Blocks[0].Instrs[0].Callee = 77;
  EXPECT_NE(verifyModuleText(M).find("direct call to invalid function id"),
            std::string::npos);
}

TEST(IrVerifier, FuncAddrOfInvalidFunctionId) {
  Module M = makeValidModule();
  M.getFunction(0).Blocks[0].Instrs[0] = Instr::makeFuncAddr(0, 77);
  EXPECT_NE(verifyModuleText(M).find("func_addr of invalid function id"),
            std::string::npos);
}

TEST(IrVerifier, ParameterCountExceedsRegisterCount) {
  Module M = makeValidModule();
  Function &F = M.getFunction(0);
  F.NumParams = F.NumRegs + 1;
  EXPECT_NE(verifyModuleText(M).find("parameter count exceeds register"),
            std::string::npos);
}

TEST(IrVerifier, NegativeFrameSize) {
  Module M = makeValidModule();
  M.getFunction(0).FrameSize = -1;
  EXPECT_NE(verifyModuleText(M).find("negative frame size"),
            std::string::npos);
}

TEST(IrVerifier, EliminatedFunctionWithBody) {
  Module M = makeValidModule();
  // Eliminated but the body was not dropped: distinct from the
  // call-to-eliminated diagnostic, which CallToEliminatedFunction covers.
  M.getFunction(0).Eliminated = true;
  EXPECT_NE(verifyModuleText(M).find("eliminated function has a body"),
            std::string::npos);
}

TEST(IrVerifier, CondBrIdenticalTargetsRejected) {
  Module M = makeValidModule();
  Function &F = M.getFunction(0);
  // No producer emits this: jump optimization canonicalizes it to a jump.
  F.Blocks[0].Instrs.back() = Instr::makeCondBr(0, 0, 0);
  EXPECT_NE(verifyModuleText(M).find("identical targets"),
            std::string::npos);
}

TEST(IrVerifier, SelfLoopJumpAccepted) {
  // Tail recursion elimination legally emits jumps back to the entry
  // block, including one-block self-loops; these must keep verifying.
  Module M = makeValidModule();
  FuncId GId = M.addFunction("g", 0, true, false);
  Function &G = M.getFunction(GId);
  BlockId B = G.addBlock();
  G.getBlock(B).Instrs.push_back(Instr::makeJump(B));
  EXPECT_EQ(verifyModuleText(M), "");
}

TEST(IrVerifier, FunctionIdIndexMismatch) {
  Module M = makeValidModule();
  M.getFunction(0).Id = 1;
  EXPECT_NE(verifyModuleText(M).find("does not match its module index"),
            std::string::npos);
}

/// Turns function 0 into a bodiless declaration with a clean signature.
void makeDeclaration(Module &M, bool External) {
  Function &F = M.getFunction(0);
  F.IsExternal = External;
  F.Eliminated = !External;
  F.Blocks.clear();
  F.RegNames.clear();
  F.NumRegs = F.NumParams;
  F.FrameSize = 0;
}

TEST(IrVerifier, CleanExternalDeclarationAccepted) {
  Module M = makeValidModule();
  makeDeclaration(M, /*External=*/true);
  EXPECT_EQ(verifyModuleText(M), "");
}

TEST(IrVerifier, ExternalDeclarationWithFrameRejected) {
  Module M = makeValidModule();
  makeDeclaration(M, /*External=*/true);
  M.getFunction(0).FrameSize = 4;
  EXPECT_NE(verifyModuleText(M).find("external function declares a frame"),
            std::string::npos);
}

TEST(IrVerifier, ExternalDeclarationWithExtraRegistersRejected) {
  Module M = makeValidModule();
  makeDeclaration(M, /*External=*/true);
  M.getFunction(0).NumRegs = M.getFunction(0).NumParams + 2;
  EXPECT_NE(verifyModuleText(M).find("registers for"), std::string::npos);
}

TEST(IrVerifier, EliminatedDeclarationWithFrameRejected) {
  Module M = makeValidModule();
  makeDeclaration(M, /*External=*/false);
  M.getFunction(0).FrameSize = 2;
  // main still calls f, so the call-to-eliminated diagnostic fires too;
  // the frame hygiene one must be present independently.
  EXPECT_NE(verifyModuleText(M).find("eliminated function declares a frame"),
            std::string::npos);
}

TEST(IrVerifier, ExternalAndEliminatedRejected) {
  Module M = makeValidModule();
  makeDeclaration(M, /*External=*/true);
  M.getFunction(0).Eliminated = true;
  EXPECT_NE(verifyModuleText(M).find("both external and eliminated"),
            std::string::npos);
}

} // namespace
