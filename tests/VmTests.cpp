//===- tests/VmTests.cpp - bytecode VM unit tests -----------------------------===//
//
// Part of the impact-inline project, distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Unit tests for the bytecode compiler (vm/Bytecode.h), the token-threaded
/// VM (vm/Vm.h), and engine selection (interp/Engine.h). The walking
/// interpreter is the oracle throughout: almost every test is phrased as
/// "the VM's ExecResult is bit-identical to the walker's", via
/// describeResultDifference. The whole-suite and randomized equivalence
/// runs live in tests/DifferentialTests.cpp; this file covers the parsing
/// surface, compile-time fusion, dispatch-strategy equality, and the trap /
/// step-limit edges one at a time.
///
//===----------------------------------------------------------------------===//

#include "cachesim/ICacheSim.h"
#include "interp/Engine.h"
#include "ir/IrVerifier.h"
#include "vm/Bytecode.h"
#include "vm/Vm.h"

#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace impact;

namespace {

/// Runs \p M through the walker and through the VM under *both* dispatch
/// strategies, asserting all three results are bit-identical; returns the
/// walker's result for further assertions.
ExecResult expectEnginesAgree(const Module &M, const RunOptions &Opts,
                              const std::string &Tag,
                              VmRunStats *Stats = nullptr) {
  ExecResult W = runProgram(M, Opts);
  VmProgram P = compileToBytecode(M);
  ExecResult Goto = runProgramVm(P, Opts, Stats, VmDispatch::ComputedGoto);
  ExecResult Switch = runProgramVm(P, Opts, nullptr, VmDispatch::Switch);
  EXPECT_EQ(describeResultDifference(W, Goto), "") << Tag << " (goto)";
  EXPECT_EQ(describeResultDifference(W, Switch), "") << Tag << " (switch)";
  return W;
}

//===----------------------------------------------------------------------===//
// Engine spelling: parseEngine / getEngineName
//===----------------------------------------------------------------------===//

TEST(EngineParse, AcceptsExactSpellings) {
  ExecEngine E = ExecEngine::Both;
  EXPECT_TRUE(parseEngine("walk", E));
  EXPECT_EQ(E, ExecEngine::Walker);
  EXPECT_TRUE(parseEngine("vm", E));
  EXPECT_EQ(E, ExecEngine::Vm);
  EXPECT_TRUE(parseEngine("both", E));
  EXPECT_EQ(E, ExecEngine::Both);
}

TEST(EngineParse, RejectsEverythingElse) {
  const char *const Bad[] = {"",       "WALK",   "Walk", "walker", "vm ",
                             " vm",    "Both",   "b",    "w",      "vmx",
                             "walk\n", "engine", "1",    "vm,walk"};
  for (const char *Text : Bad) {
    ExecEngine E = ExecEngine::Walker;
    std::string Diag;
    EXPECT_FALSE(parseEngine(Text, E, &Diag)) << "'" << Text << "'";
    EXPECT_NE(Diag.find("invalid engine"), std::string::npos)
        << "'" << Text << "': " << Diag;
    // A failed parse never clobbers the out-param.
    EXPECT_EQ(E, ExecEngine::Walker) << "'" << Text << "'";
  }
}

TEST(EngineParse, NamesRoundTrip) {
  for (ExecEngine E :
       {ExecEngine::Walker, ExecEngine::Vm, ExecEngine::Both}) {
    ExecEngine Back = ExecEngine::Walker;
    ASSERT_TRUE(parseEngine(getEngineName(E), Back)) << getEngineName(E);
    EXPECT_EQ(Back, E);
  }
}

//===----------------------------------------------------------------------===//
// describeResultDifference
//===----------------------------------------------------------------------===//

TEST(ResultDiff, IdenticalResultsAreEmpty) {
  Module M = test::compileOk(test::kCallHeavyProgram);
  RunOptions Opts;
  Opts.Input = "abc";
  ExecResult A = runProgram(M, Opts);
  ExecResult B = runProgram(M, Opts);
  EXPECT_EQ(describeResultDifference(A, B), "");
}

TEST(ResultDiff, ReportsFirstObservableField) {
  ExecResult A, B;
  B.ExitCode = 7;
  EXPECT_NE(describeResultDifference(A, B).find("exit"), std::string::npos);

  B = A;
  B.St = ExecResult::Status::Trapped;
  B.TrapMessage = "division by zero";
  EXPECT_NE(describeResultDifference(A, B).find("status"),
            std::string::npos);

  B = A;
  B.Output = "x";
  EXPECT_NE(describeResultDifference(A, B).find("output"),
            std::string::npos);

  B = A;
  B.Stats.InstrCount = 42;
  EXPECT_NE(describeResultDifference(A, B).find("InstrCount"),
            std::string::npos);

  B = A;
  A.Stats.SiteCounts = {0, 3};
  B.Stats.SiteCounts = {0, 4};
  EXPECT_NE(describeResultDifference(A, B).find("SiteCounts"),
            std::string::npos);
}

//===----------------------------------------------------------------------===//
// Bytecode compilation
//===----------------------------------------------------------------------===//

TEST(BytecodeCompile, StatsCoverEveryCompiledInstruction) {
  Module M = test::compileOk(test::kCallHeavyProgram);
  VmProgram P = compileToBytecode(M);

  ASSERT_EQ(P.Funcs.size(), M.Funcs.size());
  ASSERT_EQ(P.Callees.size(), M.Funcs.size());
  EXPECT_EQ(P.MainId, M.MainId);
  EXPECT_EQ(P.NumSites, M.NextSiteId);

  uint64_t IlTotal = 0;
  for (const Function &F : M.Funcs)
    if (!F.IsExternal && !F.Eliminated)
      IlTotal += F.size();
  EXPECT_EQ(P.Stats.IlInstrs, IlTotal);
  EXPECT_GT(P.Stats.VmInstrs, 0u);
  // Fusion only ever shrinks the instruction count.
  EXPECT_LE(P.Stats.VmInstrs, P.Stats.IlInstrs);
  EXPECT_GT(P.Stats.CodeWords, 0u);

  uint64_t Words = 0;
  for (const VmFunction &F : P.Funcs)
    Words += F.Code.size();
  EXPECT_EQ(P.Stats.CodeWords, Words);

  for (FuncId Id = 0; Id != static_cast<FuncId>(M.Funcs.size()); ++Id) {
    const Function &F = M.Funcs[Id];
    EXPECT_EQ(P.Funcs[Id].Compiled, !F.IsExternal && !F.Eliminated);
    EXPECT_EQ(P.Callees[Id].Name, F.Name);
    EXPECT_EQ(P.Callees[Id].NumParams, F.NumParams);
    EXPECT_EQ(P.Callees[Id].IsExternal, F.IsExternal);
    if (P.Funcs[Id].Compiled) {
      EXPECT_EQ(P.Funcs[Id].NumRegs, F.NumRegs);
      EXPECT_EQ(P.Funcs[Id].ActivationWords, F.getActivationWords());
    }
  }
}

TEST(BytecodeCompile, GlobalImageMatchesModuleLayout) {
  const char *Source = R"MC(
int a;
int b[3];
int main() { return a + b[1]; }
)MC";
  Module M = test::compileOk(Source);
  VmProgram P = compileToBytecode(M);
  ASSERT_EQ(static_cast<int64_t>(P.GlobalImage.size()),
            M.getGlobalSegmentSize());
  // MiniC globals are zero-initialized; every word of the image is zero.
  for (int64_t W : P.GlobalImage)
    EXPECT_EQ(W, 0);
}

TEST(BytecodeCompile, DisassemblerRendersEveryInstruction) {
  Module M = test::compileOk(test::kCallHeavyProgram);
  VmProgram P = compileToBytecode(M);
  const VmFunction &Main = P.Funcs[P.MainId];
  std::string Text = disassemble(Main);
  EXPECT_NE(Text.find("ret"), std::string::npos);
  size_t Lines = 0;
  for (char C : Text)
    Lines += C == '\n';
  EXPECT_GE(Lines, 1u);
  EXPECT_STREQ(getVmOpName(VmOp::CmpLtBr), "cmp_lt_br");
  EXPECT_STREQ(getVmOpName(VmOp::CallUser), "call_user");
  EXPECT_STREQ(getVmOpName(VmOp::LoadOpStore), "load_op_store");
}

//===----------------------------------------------------------------------===//
// Superinstructions: compile-time fusion + bit-exact execution
//===----------------------------------------------------------------------===//

/// g = 5; main: g = g + 3; return g  — hand-built so the Load/Add/Store
/// triple provably matches the fusion preconditions (the MiniC frontend
/// re-materializes address registers, which usually breaks them).
Module makeLoadOpStoreModule(Opcode BinOp, int64_t Operand,
                             int64_t GlobalInit) {
  Module M;
  M.Name = "fused";
  M.addGlobal("g", 1, {GlobalInit});
  FuncId Id = M.addFunction("main", 0, false, false);
  Function &F = M.getFunction(Id);
  M.MainId = Id;
  Reg Addr = F.addReg();
  Reg Rhs = F.addReg();
  Reg Loaded = F.addReg();
  Reg Result = F.addReg();
  Reg Final = F.addReg();
  BlockId B = F.addBlock();
  BasicBlock &Blk = F.getBlock(B);
  Blk.Instrs.push_back(Instr::makeGlobalAddr(Addr, 0));
  Blk.Instrs.push_back(Instr::makeLdImm(Rhs, Operand));
  Blk.Instrs.push_back(Instr::makeLoad(Loaded, Addr));
  Blk.Instrs.push_back(Instr::makeBinary(BinOp, Result, Loaded, Rhs));
  Blk.Instrs.push_back(Instr::makeStore(Addr, Result));
  Blk.Instrs.push_back(Instr::makeLoad(Final, Addr));
  Blk.Instrs.push_back(Instr::makeRet(Final));
  return M;
}

TEST(Superinstructions, LoadOpStoreFusesAndExecutes) {
  Module M = makeLoadOpStoreModule(Opcode::Add, 3, 5);
  ASSERT_TRUE(verifyModule(M).empty());

  VmProgram P = compileToBytecode(M);
  EXPECT_EQ(P.Stats.FusedLoadOpStore, 1u);

  VmRunStats Stats;
  ExecResult W = expectEnginesAgree(M, RunOptions(), "load_op_store",
                                    &Stats);
  EXPECT_TRUE(W.ok());
  EXPECT_EQ(W.ExitCode, 8);
  // 7 IL instructions executed; the fused triple counts as 3 of them.
  EXPECT_EQ(W.Stats.InstrCount, 7u);
  EXPECT_EQ(Stats.FusedLoadOpStore, 1u);
  EXPECT_EQ(Stats.IlSteps, 7u);
  EXPECT_GT(Stats.getFusedStepFraction(), 0.0);
}

TEST(Superinstructions, FusedDivTrapsLikeTheWalker) {
  // g = 9; g = g / 0 — the trap fires *inside* the superinstruction, after
  // the Load already counted.
  Module M = makeLoadOpStoreModule(Opcode::Div, 0, 9);
  ASSERT_TRUE(verifyModule(M).empty());
  VmProgram P = compileToBytecode(M);
  ASSERT_EQ(P.Stats.FusedLoadOpStore, 1u);

  ExecResult W = expectEnginesAgree(M, RunOptions(), "fused div trap");
  EXPECT_EQ(W.St, ExecResult::Status::Trapped);
  EXPECT_EQ(W.TrapMessage, "division by zero");
  // global_addr, ld_imm, load, div — the div itself is counted executed.
  EXPECT_EQ(W.Stats.InstrCount, 4u);
}

TEST(Superinstructions, StepLimitExhaustsInsideFusedTriple) {
  // Limits 0..7 sweep the step limit across the fused Load/Add/Store, so
  // exhaustion lands mid-superinstruction; every stop point must agree
  // with the walker bit for bit (status, InstrCount, OpcodeCounts).
  Module M = makeLoadOpStoreModule(Opcode::Add, 3, 5);
  for (uint64_t Limit = 0; Limit <= 7; ++Limit) {
    RunOptions Opts;
    Opts.StepLimit = Limit;
    ExecResult W =
        expectEnginesAgree(M, Opts, "limit=" + std::to_string(Limit));
    if (Limit < 7) {
      EXPECT_EQ(W.St, ExecResult::Status::StepLimitExceeded)
          << "limit=" << Limit;
    }
    EXPECT_EQ(W.Stats.InstrCount, Limit < 7 ? Limit : 7u);
  }
}

TEST(Superinstructions, CmpBrFusesOnCompiledLoops) {
  // A counted loop compiles to cmp + cond_br, the compare-and-branch
  // fusion shape.
  const char *Source = R"MC(
int main() {
  int i;
  int sum;
  i = 0;
  sum = 0;
  while (i < 10) { sum = sum + i; i = i + 1; }
  return sum;
}
)MC";
  Module M = test::compileOk(Source);
  VmProgram P = compileToBytecode(M);
  EXPECT_GT(P.Stats.FusedCmpBr, 0u);

  VmRunStats Stats;
  ExecResult W = expectEnginesAgree(M, RunOptions(), "cmp_br loop", &Stats);
  EXPECT_TRUE(W.ok());
  EXPECT_EQ(W.ExitCode, 45);
  EXPECT_GT(Stats.FusedCmpBr, 0u);
  EXPECT_GT(Stats.getFusedStepFraction(), 0.0);
  EXPECT_LE(Stats.getFusedStepFraction(), 1.0);
  EXPECT_EQ(Stats.IlSteps, W.Stats.InstrCount);
}

//===----------------------------------------------------------------------===//
// Dispatch strategies
//===----------------------------------------------------------------------===//

TEST(Dispatch, ComputedGotoIsCompiledInOnGccAndClang) {
#if defined(__GNUC__) || defined(__clang__)
  EXPECT_TRUE(hasComputedGotoDispatch());
#else
  EXPECT_FALSE(hasComputedGotoDispatch());
#endif
}

TEST(Dispatch, GotoAndSwitchAgreeOnRealPrograms) {
  const struct {
    const char *Name;
    const char *Source;
    const char *Input;
  } Cases[] = {
      {"call_heavy", test::kCallHeavyProgram, "abcde"},
      {"recursive", test::kRecursiveProgram, "abc"},
      {"pointer_call", test::kPointerCallProgram, "ab"},
  };
  for (const auto &C : Cases) {
    Module M = test::compileOk(C.Source);
    RunOptions Opts;
    Opts.Input = C.Input;
    expectEnginesAgree(M, Opts, C.Name);
  }
}

//===----------------------------------------------------------------------===//
// Trap and limit parity, one edge at a time
//===----------------------------------------------------------------------===//

TEST(VmTrapParity, DivisionAndRemainderByZero) {
  const char *Div = R"MC(
extern int getchar();
int main() { int c; c = getchar(); return 1 / (c + 1); }
)MC";
  const char *Rem = R"MC(
extern int getchar();
int main() { int c; c = getchar(); return 1 % (c + 1); }
)MC";
  for (const char *Source : {Div, Rem}) {
    Module M = test::compileOk(Source);
    ExecResult W = expectEnginesAgree(M, RunOptions(), "div/rem");
    EXPECT_EQ(W.St, ExecResult::Status::Trapped);
    EXPECT_NE(W.TrapMessage.find("by zero"), std::string::npos);
  }
}

TEST(VmTrapParity, OutOfBoundsAccess) {
  const char *Source = R"MC(
extern int getchar();
int arr[4];
int main() { int i; i = getchar(); return arr[(i & 1) + 1000000]; }
)MC";
  Module M = test::compileOk(Source);
  ExecResult W = expectEnginesAgree(M, RunOptions(), "oob");
  EXPECT_EQ(W.St, ExecResult::Status::Trapped);
}

TEST(VmTrapParity, StackOverflowOnDeepRecursion) {
  Module M = test::compileOk(test::kRecursiveProgram);
  RunOptions Opts;
  Opts.Input = "abcdefgh";
  Opts.StackWords = 256; // force overflow deep in the recursion
  ExecResult W = expectEnginesAgree(M, Opts, "stack overflow");
  EXPECT_EQ(W.St, ExecResult::Status::Trapped);
  EXPECT_NE(W.TrapMessage.find("stack"), std::string::npos);
}

TEST(VmTrapParity, ExitIntrinsicShortCircuits) {
  const char *Source = R"MC(
extern int exit(int code);
extern int putchar(int c);
int main() {
  putchar(65);
  exit(3);
  putchar(66);
  return 0;
}
)MC";
  Module M = test::compileOk(Source);
  ExecResult W = expectEnginesAgree(M, RunOptions(), "exit intrinsic");
  EXPECT_TRUE(W.ok());
  EXPECT_EQ(W.ExitCode, 3);
  EXPECT_EQ(W.Output, "A");
}

TEST(VmTrapParity, UnknownExternTrapsAtFirstCall) {
  const char *Source = R"MC(
extern int nosuchlibraryfn(int x);
int main() { return nosuchlibraryfn(1); }
)MC";
  Module M = test::compileOk(Source);
  ExecResult W = expectEnginesAgree(M, RunOptions(), "unknown extern");
  EXPECT_EQ(W.St, ExecResult::Status::Trapped);
}

TEST(VmTrapParity, HeapExhaustionTrapIsSticky) {
  // malloc past the heap limit poisons memory; like the walker, the VM
  // only observes the trap at the next Load/Store.
  const char *Source = R"MC(
extern int malloc(int words);
extern int putchar(int c);
int main() {
  int p;
  int i;
  i = 0;
  p = 0;
  while (i < 100000) { p = malloc(1000000); i = i + 1; }
  putchar(65);
  return p;
}
)MC";
  Module M = test::compileOk(Source);
  ExecResult W = expectEnginesAgree(M, RunOptions(), "heap exhaustion");
  EXPECT_FALSE(W.ok());
}

TEST(VmTrapParity, StepLimitSweepAcrossCallHeavyProgram) {
  // Fine sweep near zero (covers call entry, intrinsic calls, and
  // superinstruction boundaries), then coarse points further out.
  Module M = test::compileOk(test::kCallHeavyProgram);
  RunOptions Base;
  Base.Input = "ab";
  ExecResult Full = runProgram(M, Base);
  ASSERT_TRUE(Full.ok());
  std::vector<uint64_t> Limits;
  for (uint64_t L = 0; L <= 64; ++L)
    Limits.push_back(L);
  for (uint64_t L = 65; L < Full.Stats.InstrCount + 2; L += 37)
    Limits.push_back(L);
  for (uint64_t L : Limits) {
    RunOptions Opts = Base;
    Opts.StepLimit = L;
    expectEnginesAgree(M, Opts, "step limit " + std::to_string(L));
  }
}

//===----------------------------------------------------------------------===//
// Engine selection: runProgramWith / profileProgram
//===----------------------------------------------------------------------===//

TEST(EngineSelect, AllEnginesProduceTheWalkerResult) {
  Module M = test::compileOk(test::kCallHeavyProgram);
  RunOptions Opts;
  Opts.Input = "abcd";
  ExecResult W = runProgramWith(ExecEngine::Walker, M, Opts);
  ExecResult V = runProgramWith(ExecEngine::Vm, M, Opts);
  ExecResult B = runProgramWith(ExecEngine::Both, M, Opts);
  EXPECT_EQ(describeResultDifference(W, V), "");
  EXPECT_EQ(describeResultDifference(W, B), "");
  EXPECT_TRUE(W.ok());
}

TEST(EngineSelect, VmFallsBackToWalkerForICache) {
  // Only the walker streams layout addresses; engine=vm with an attached
  // ICacheSim must transparently use it, producing both the identical
  // ExecResult and the identical miss counters.
  Module M = test::compileOk(test::kCallHeavyProgram);
  ICacheConfig Config;
  ICacheSim WalkSim(Config), VmSim(Config);

  RunOptions Opts;
  Opts.Input = "abc";
  Opts.ICache = &WalkSim;
  ExecResult W = runProgramWith(ExecEngine::Walker, M, Opts);
  Opts.ICache = &VmSim;
  ExecResult V = runProgramWith(ExecEngine::Vm, M, Opts);

  EXPECT_EQ(describeResultDifference(W, V), "");
  EXPECT_GT(WalkSim.getAccesses(), 0u);
  EXPECT_EQ(WalkSim.getAccesses(), VmSim.getAccesses());
  EXPECT_EQ(WalkSim.getMisses(), VmSim.getMisses());
}

TEST(EngineSelect, ProfilesAreEngineInvariant) {
  Module M = test::compileOk(test::kCallHeavyProgram);
  std::vector<RunInput> Inputs = {{"a", ""}, {"abc", ""}, {"abcdef", ""}};
  ProfileResult W = profileProgram(M, Inputs, RunOptions(),
                                   ExecEngine::Walker);
  ProfileResult V = profileProgram(M, Inputs, RunOptions(), ExecEngine::Vm);
  ProfileResult B = profileProgram(M, Inputs, RunOptions(),
                                   ExecEngine::Both);
  ASSERT_TRUE(W.allRunsOk());
  EXPECT_TRUE(V.allRunsOk());
  EXPECT_TRUE(B.allRunsOk());
  EXPECT_TRUE(W.Data == V.Data);
  EXPECT_TRUE(W.Data == B.Data);
  EXPECT_EQ(W.Outputs, V.Outputs);
  EXPECT_EQ(W.Outputs, B.Outputs);
}

TEST(EngineSelect, ModuleWithoutMainTrapsIdentically) {
  Module M;
  M.Name = "nomain";
  ExecResult W = runProgram(M);
  ExecResult V = runProgramVm(compileToBytecode(M));
  EXPECT_EQ(describeResultDifference(W, V), "");
  EXPECT_EQ(W.St, ExecResult::Status::Trapped);
}

} // namespace
