//===- tests/PlannerTests.cpp - cost function and planner tests ---------------===//
//
// Part of the impact-inline project, distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/InlineCost.h"
#include "core/InlinePlanner.h"

#include "callgraph/CallGraphBuilder.h"
#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace impact;
using test::compileOk;

namespace {

struct PlanFixture {
  Module M;
  CallGraph G;
  Classification Classes;
  Linearization Linear;
  InlinePlan Plan;
};

PlanFixture plan(const char *Source, const std::vector<std::string> &Inputs,
                 InlineOptions Options = InlineOptions()) {
  PlanFixture Fx{compileOk(Source), CallGraph(0), {}, {}, {}};
  ProfileResult P = test::profileInputs(Fx.M, Inputs);
  EXPECT_TRUE(P.allRunsOk());
  CallGraphOptions GraphOpts;
  GraphOpts.AssumeExternalsCallBack = Options.AssumeExternalsCallBack;
  Fx.G = buildCallGraph(Fx.M, &P.Data, GraphOpts);
  Fx.Classes = classifyCallSites(Fx.M, Fx.G, P.Data, Options);
  Fx.Linear = linearize(Fx.M, Fx.G, Options);
  Fx.Plan = planInlining(Fx.M, Fx.G, Fx.Classes, Fx.Linear, Options);
  return Fx;
}

const PlannedSite *findByCallee(const PlanFixture &Fx, const char *Name) {
  FuncId Callee = Fx.M.findFunction(Name);
  for (const PlannedSite &S : Fx.Plan.Sites)
    if (S.Callee == Callee)
      return &S;
  return nullptr;
}

TEST(Planner, HotSafeSitesAreAccepted) {
  PlanFixture Fx = plan(test::kCallHeavyProgram, {std::string(40, 'x')});
  const PlannedSite *Square = findByCallee(Fx, "square");
  ASSERT_NE(Square, nullptr);
  EXPECT_EQ(Square->Status, ArcStatus::ToBeExpanded);
  EXPECT_GE(Fx.Plan.ExpansionOrder.size(), 2u);
}

TEST(Planner, ExternalAndPointerArcsNotExpandable) {
  PlanFixture Fx = plan(test::kPointerCallProgram, {std::string(30, 'a')});
  for (const PlannedSite &S : Fx.Plan.Sites)
    if (S.Callee == kNoFunc) {
      EXPECT_EQ(S.Status, ArcStatus::NotExpandable);
    }
}

TEST(Planner, LowWeightArcsRejected) {
  PlanFixture Fx = plan("int rare() { return 1; }"
                        "int main() { return rare(); }",
                        {""});
  const PlannedSite *Rare = findByCallee(Fx, "rare");
  ASSERT_NE(Rare, nullptr);
  EXPECT_EQ(Rare->Status, ArcStatus::Rejected);
  EXPECT_EQ(Rare->Verdict, CostVerdict::LowWeight);
}

TEST(Planner, RecursiveArcsRejected) {
  PlanFixture Fx = plan("int fib(int n) { if (n < 2) return n;"
                        "return fib(n - 1) + fib(n - 2); }"
                        "int main() { return fib(16); }",
                        {""});
  const PlannedSite *Fib = findByCallee(Fx, "fib");
  ASSERT_NE(Fib, nullptr);
  EXPECT_EQ(Fib->Verdict, CostVerdict::RecursiveCycle);
}

TEST(Planner, BudgetRejectsWhenExhausted) {
  InlineOptions Options;
  Options.CodeGrowthFactor = 1.0; // no growth allowed at all
  PlanFixture Fx =
      plan(test::kCallHeavyProgram, {std::string(40, 'x')}, Options);
  EXPECT_TRUE(Fx.Plan.ExpansionOrder.empty());
  for (const PlannedSite &S : Fx.Plan.Sites)
    if (S.Callee != kNoFunc && S.Verdict == CostVerdict::BudgetExceeded) {
      EXPECT_EQ(S.Status, ArcStatus::Rejected);
    }
  EXPECT_EQ(Fx.Plan.ProjectedProgramSize, Fx.Plan.OriginalProgramSize);
}

TEST(Planner, BudgetPrefersHeavierArcs) {
  // With a budget that only fits one expansion, the heavier arc wins.
  const char *Source =
      "extern int getchar();"
      "int hot(int x) { return x + 1; }"
      "int cold(int x) { return x + 2; }"
      "int main() { int c; int t; t = 0; c = getchar();"
      "while (c != -1) { t = hot(t); if (c == 'q') t = cold(t);"
      "c = getchar(); } return t; }";
  InlineOptions Options;
  Options.MinArcWeight = 1.0;
  Options.CodeGrowthFactor = 1.12; // fits roughly one small callee
  PlanFixture Fx = plan(Source, {std::string(60, 'q')}, Options);
  const PlannedSite *Hot = findByCallee(Fx, "hot");
  ASSERT_NE(Hot, nullptr);
  EXPECT_EQ(Hot->Status, ArcStatus::ToBeExpanded)
      << "hot(60/run) must be chosen before cold(60/run ties? no: cold "
         "also 60...)";
}

TEST(Planner, MaxCalleeSizeKnob) {
  InlineOptions Options;
  Options.MaxCalleeSize = 1; // nothing fits
  PlanFixture Fx =
      plan(test::kCallHeavyProgram, {std::string(40, 'x')}, Options);
  for (const PlannedSite &S : Fx.Plan.Sites)
    if (S.Callee != kNoFunc && S.Status == ArcStatus::Rejected) {
      EXPECT_TRUE(S.Verdict == CostVerdict::CalleeTooLarge ||
                  S.Verdict == CostVerdict::LowWeight);
    }
  EXPECT_TRUE(Fx.Plan.ExpansionOrder.empty());
}

TEST(Planner, OrderViolationsNotExpandable) {
  // Force a linearization where callees follow callers: SourceOrder with
  // the callee declared after the caller.
  const char *Source =
      "extern int getchar();"
      "int driver(int x) { return helper(x) + 1; }"
      "int helper(int x) { return x * 2; }"
      "int main() { int c; int t; t = 0; c = getchar();"
      "while (c != -1) { t = driver(t); c = getchar(); } return t; }";
  InlineOptions Options;
  Options.Policy = LinearizationPolicy::SourceOrder;
  PlanFixture Fx = plan(Source, {std::string(30, 'x')}, Options);
  const PlannedSite *Helper = findByCallee(Fx, "helper");
  ASSERT_NE(Helper, nullptr);
  EXPECT_EQ(Helper->Verdict, CostVerdict::OrderViolation);
  EXPECT_EQ(Helper->Status, ArcStatus::NotExpandable);
}

TEST(Planner, ExpansionOrderFollowsLinearSequence) {
  PlanFixture Fx = plan(test::kCallHeavyProgram, {std::string(40, 'x')});
  // Map each expansion-site to its caller; caller positions must be
  // non-decreasing.
  size_t LastPos = 0;
  for (uint32_t Site : Fx.Plan.ExpansionOrder) {
    const PlannedSite *S = Fx.Plan.findSite(Site);
    ASSERT_NE(S, nullptr);
    size_t Pos = Fx.Linear.Position[static_cast<size_t>(S->Caller)];
    EXPECT_GE(Pos, LastPos);
    LastPos = Pos;
  }
}

TEST(Planner, EstimatesGrowWithAcceptance) {
  PlanFixture Fx = plan(test::kCallHeavyProgram, {std::string(40, 'x')});
  EXPECT_GT(Fx.Plan.ProjectedProgramSize, Fx.Plan.OriginalProgramSize);
  EXPECT_LE(Fx.Plan.ProjectedProgramSize, Fx.Plan.ProgramSizeBudget);
}

TEST(Planner, StatusCountsConsistent) {
  PlanFixture Fx = plan(test::kCallHeavyProgram, {std::string(40, 'x')});
  size_t Total = Fx.Plan.countStatus(ArcStatus::NotExpandable) +
                 Fx.Plan.countStatus(ArcStatus::Rejected) +
                 Fx.Plan.countStatus(ArcStatus::ToBeExpanded) +
                 Fx.Plan.countStatus(ArcStatus::Expanded);
  EXPECT_EQ(Total, Fx.Plan.Sites.size());
  EXPECT_EQ(Fx.Plan.countStatus(ArcStatus::ToBeExpanded),
            Fx.Plan.ExpansionOrder.size());
}

TEST(InlineCost, EstimatesFromModule) {
  Module M = compileOk(test::kCallHeavyProgram);
  CostEstimates Est = CostEstimates::fromModule(M, 1.5);
  EXPECT_EQ(Est.ProgramSize, M.size());
  EXPECT_EQ(Est.ProgramSizeBudget,
            static_cast<uint64_t>(static_cast<double>(M.size()) * 1.5));
  FuncId Square = M.findFunction("square");
  EXPECT_EQ(Est.FuncSize[static_cast<size_t>(Square)],
            M.getFunction(Square).size());
}

TEST(InlineCost, ApplyExpansionUpdatesTallies) {
  Module M = compileOk(test::kCallHeavyProgram);
  CostEstimates Est = CostEstimates::fromModule(M, 2.0);
  FuncId Cube = M.findFunction("cube");
  FuncId Square = M.findFunction("square");
  uint64_t CubeBefore = Est.FuncSize[static_cast<size_t>(Cube)];
  uint64_t SquareSize = Est.FuncSize[static_cast<size_t>(Square)];
  uint64_t ProgramBefore = Est.ProgramSize;
  Est.applyExpansion(Cube, Square);
  EXPECT_EQ(Est.FuncSize[static_cast<size_t>(Cube)],
            CubeBefore + SquareSize);
  EXPECT_EQ(Est.ProgramSize, ProgramBefore + SquareSize);
}

TEST(InlineCost, VerdictNamesStable) {
  EXPECT_STREQ(getCostVerdictName(CostVerdict::Acceptable), "acceptable");
  EXPECT_STREQ(getCostVerdictName(CostVerdict::BudgetExceeded),
               "budget-exceeded");
  EXPECT_STREQ(getArcStatusName(ArcStatus::ToBeExpanded), "to-be-expanded");
}

} // namespace
