//===- tests/MinCoverPropertyTests.cpp - mincover equivalence tier ----------===//
//
// Part of the impact-inline project, distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The minimum-coverage instrumentation tier (`ctest -L mincover`): full
/// instrumentation is the oracle, and Kirchhoff inference from co-tree
/// probes must reproduce its ProfileData bit for bit — across the whole
/// 12-benchmark suite, a randomized MiniC corpus, both engines, truncated
/// runs, and the batch pipeline at any job count. The weight-conservation
/// audit runs over every inferred profile, so "the books balance" is
/// checked by the same rule that guards measured profiles.
///
/// The random-corpus width is tunable via IMPACT_FUZZ_SEEDS (shared with
/// the fuzz and differential tiers; floored at 64).
///
//===----------------------------------------------------------------------===//

#include "analysis/Analyzer.h"
#include "driver/BatchPipeline.h"
#include "interp/Engine.h"
#include "ir/IrPrinter.h"
#include "profile/Profiler.h"
#include "suite/Suite.h"

#include "RandomProgram.h"
#include "TestUtil.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

using namespace impact;

namespace {

/// Seed count for the random corpus: IMPACT_FUZZ_SEEDS, floored at 64 so
/// the tier never runs narrower than its contract.
unsigned corpusSeedCount() {
  const char *Env = std::getenv("IMPACT_FUZZ_SEEDS");
  if (!Env || !*Env)
    return 64;
  char *End = nullptr;
  unsigned long N = std::strtoul(Env, &End, 10);
  if (!End || *End || N == 0)
    return 64;
  return N < 64 ? 64 : static_cast<unsigned>(N);
}

/// Profiles \p M under minimum coverage with \p Engine and checks every
/// observable against the fully-instrumented walker result \p Oracle.
void expectProfileMatchesOracle(const Module &M,
                                const std::vector<RunInput> &Inputs,
                                const RunOptions &Base, ExecEngine Engine,
                                const ProfileResult &Oracle,
                                const std::string &Tag) {
  ProfileResult Mc =
      profileProgram(M, Inputs, Base, Engine, InstrumentMode::MinCover);
  EXPECT_EQ(Mc.Failures, Oracle.Failures) << Tag;
  EXPECT_EQ(Mc.Outputs, Oracle.Outputs) << Tag;
  EXPECT_TRUE(Mc.Data == Oracle.Data) << Tag << ": inferred profile diverged";
}

//===----------------------------------------------------------------------===//
// The 12-benchmark suite
//===----------------------------------------------------------------------===//

TEST(MinCoverSuite, InferredProfilesAreBitIdentical) {
  for (const BenchmarkSpec &Spec : getBenchmarkSuite()) {
    SCOPED_TRACE(Spec.Name);
    Module M = test::compileOk(Spec.Source);
    std::vector<RunInput> Inputs = makeBenchmarkInputs(Spec, 2);
    ASSERT_FALSE(Inputs.empty());
    ProfileResult Oracle = profileProgram(M, Inputs, RunOptions(),
                                          ExecEngine::Walker,
                                          InstrumentMode::Full);
    ASSERT_TRUE(Oracle.allRunsOk());
    for (ExecEngine Engine :
         {ExecEngine::Walker, ExecEngine::Vm, ExecEngine::Both})
      expectProfileMatchesOracle(M, Inputs, RunOptions(), Engine, Oracle,
                                 std::string(getEngineName(Engine)));
  }
}

TEST(MinCoverSuite, TruncatedRunsStillInferExactly) {
  // Step limits that expire mid-run exercise the halt-record path on real
  // call-heavy programs; the failure lists must match too (same statuses,
  // same messages), since the pipeline's quarantine logic keys off them.
  for (const BenchmarkSpec &Spec : getBenchmarkSuite()) {
    SCOPED_TRACE(Spec.Name);
    Module M = test::compileOk(Spec.Source);
    std::vector<RunInput> Inputs = makeBenchmarkInputs(Spec, 1);
    for (uint64_t Limit : {1ull, 100ull, 5000ull}) {
      RunOptions Base;
      Base.StepLimit = Limit;
      ProfileResult Oracle = profileProgram(M, Inputs, Base,
                                            ExecEngine::Walker,
                                            InstrumentMode::Full);
      for (ExecEngine Engine : {ExecEngine::Walker, ExecEngine::Vm})
        expectProfileMatchesOracle(M, Inputs, Base, Engine, Oracle,
                                   std::string(getEngineName(Engine)) +
                                       " limit " + std::to_string(Limit));
    }
  }
}

//===----------------------------------------------------------------------===//
// Randomized corpus
//===----------------------------------------------------------------------===//

TEST(MinCoverCorpus, RandomProgramsInferExactly) {
  unsigned Seeds = corpusSeedCount();
  std::vector<RunInput> Inputs;
  for (const char *In : {"", "a", "hello world", "0123456789abcdef"})
    Inputs.push_back({In, ""});
  for (uint64_t Seed = 0; Seed != Seeds; ++Seed) {
    SCOPED_TRACE("seed " + std::to_string(Seed));
    std::string Source = test::generateRandomProgram(Seed);
    Module M = test::compileOk(Source);
    if (::testing::Test::HasFailure())
      return; // generator contract broken; no point running the corpus
    ProfileResult Oracle = profileProgram(M, Inputs, RunOptions(),
                                          ExecEngine::Walker,
                                          InstrumentMode::Full);
    for (ExecEngine Engine : {ExecEngine::Walker, ExecEngine::Vm})
      expectProfileMatchesOracle(M, Inputs, RunOptions(), Engine, Oracle,
                                 std::string(getEngineName(Engine)));
  }
}

TEST(MinCoverCorpus, RandomProgramsUnderTightLimits) {
  unsigned Seeds = corpusSeedCount() / 4;
  std::vector<RunInput> Inputs{{"mincover", ""}};
  for (uint64_t Seed = 0; Seed != Seeds; ++Seed) {
    SCOPED_TRACE("seed " + std::to_string(Seed));
    Module M = test::compileOk(test::generateRandomProgram(Seed));
    if (::testing::Test::HasFailure())
      return;
    for (uint64_t Limit : {0ull, 1ull, 7ull, 50ull, 333ull}) {
      RunOptions Base;
      Base.StepLimit = Limit;
      ProfileResult Oracle = profileProgram(M, Inputs, Base,
                                            ExecEngine::Walker,
                                            InstrumentMode::Full);
      for (ExecEngine Engine : {ExecEngine::Walker, ExecEngine::Vm})
        expectProfileMatchesOracle(M, Inputs, Base, Engine, Oracle,
                                   std::string(getEngineName(Engine)) +
                                       " limit " + std::to_string(Limit));
    }
  }
}

//===----------------------------------------------------------------------===//
// Pipeline and batch invariance
//===----------------------------------------------------------------------===//

std::vector<BatchJob> makeSuiteJobs(ExecEngine Engine,
                                    InstrumentMode Instrument) {
  std::vector<BatchJob> Jobs;
  for (const BenchmarkSpec &Spec : getBenchmarkSuite()) {
    BatchJob Job;
    Job.Name = Spec.Name;
    Job.Source = Spec.Source;
    Job.Inputs = makeBenchmarkInputs(Spec, 2);
    Job.Options.Engine = Engine;
    Job.Options.Instrument = Instrument;
    // The weight-conservation audit cross-checks the inferred profile's
    // node and arc weights against the call-graph flow equations.
    Job.Options.Analyze = true;
    Jobs.push_back(std::move(Job));
  }
  return Jobs;
}

/// Everything observable must match (timing/cache counters exempt), and the
/// analyzer must agree finding-for-finding — in particular, zero
/// weight-conservation findings on the inferred profile.
void expectSamePipelineResult(const PipelineResult &A,
                              const PipelineResult &B,
                              const std::string &Tag) {
  ASSERT_EQ(A.Ok, B.Ok) << Tag;
  EXPECT_EQ(A.Error, B.Error) << Tag;
  EXPECT_TRUE(A.Before == B.Before) << Tag;
  EXPECT_TRUE(A.After == B.After) << Tag;
  EXPECT_EQ(A.OutputsBefore, B.OutputsBefore) << Tag;
  EXPECT_EQ(A.OutputsAfter, B.OutputsAfter) << Tag;
  EXPECT_TRUE(A.ProfileBefore == B.ProfileBefore) << Tag;
  EXPECT_EQ(printModule(A.FinalModule), printModule(B.FinalModule)) << Tag;
  EXPECT_EQ(A.Analysis.renderText(), B.Analysis.renderText()) << Tag;
  EXPECT_FALSE(B.Analysis.hasErrors()) << Tag;
  for (const Finding &F : B.Analysis.Findings)
    EXPECT_NE(F.Rule, kRuleAuditWeightConservation)
        << Tag << ": " << F.render();
}

TEST(MinCoverBatch, PipelineIsInstrumentAndJobCountInvariant) {
  // Oracle: fully-instrumented walker, serial. Every (engine, mincover,
  // jobs) combination must produce the same plans, profiles, outputs, and
  // analysis findings — instrumentation is a measurement strategy, never
  // an observable.
  BatchOptions Serial, Wide;
  Serial.Jobs = 1;
  Wide.Jobs = 4;
  BatchResult Oracle = runBatchPipeline(
      makeSuiteJobs(ExecEngine::Walker, InstrumentMode::Full), Serial);
  ASSERT_TRUE(Oracle.allOk());
  ASSERT_EQ(Oracle.Results.size(), getBenchmarkSuite().size());

  for (ExecEngine Engine : {ExecEngine::Walker, ExecEngine::Vm})
    for (const BatchOptions *Options : {&Serial, &Wide}) {
      BatchResult R = runBatchPipeline(
          makeSuiteJobs(Engine, InstrumentMode::MinCover), *Options);
      std::string Tag = std::string(getEngineName(Engine)) +
                        "/mincover/jobs=" + std::to_string(Options->Jobs);
      EXPECT_TRUE(R.allOk()) << Tag;
      for (const UnitFailure &F : R.Failures)
        ADD_FAILURE() << Tag << ": " << F.render();
      ASSERT_EQ(R.Results.size(), Oracle.Results.size()) << Tag;
      for (size_t I = 0; I != R.Results.size(); ++I)
        expectSamePipelineResult(Oracle.Results[I], R.Results[I],
                                 Tag + " " + getBenchmarkSuite()[I].Name);
    }
}

TEST(MinCoverBatch, BothEngineCrossChecksRawObservables) {
  // engine=both under mincover compares the RAW arc counters and halt
  // records across engines before inference — a green batch is the
  // engine-equivalence proof for the probe placement itself.
  BatchResult R = runBatchPipeline(
      makeSuiteJobs(ExecEngine::Both, InstrumentMode::MinCover));
  EXPECT_TRUE(R.allOk());
  for (const UnitFailure &F : R.Failures)
    ADD_FAILURE() << F.render();
  for (const PipelineResult &P : R.Results)
    EXPECT_FALSE(P.Analysis.hasErrors());
}

} // namespace
