//===- tests/TestUtil.cpp --------------------------------------------------===//
//
// Part of the impact-inline project, distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace impact;

Module test::compileOk(std::string_view Source, bool RequireMain) {
  CompilationResult C = compileMiniC(Source, "test", RequireMain);
  if (!C.Ok)
    ADD_FAILURE() << "compilation failed:\n" << C.Errors;
  return std::move(C.M);
}

std::string test::compileErrors(std::string_view Source, bool RequireMain) {
  CompilationResult C = compileMiniC(Source, "test", RequireMain);
  if (C.Ok)
    ADD_FAILURE() << "compilation unexpectedly succeeded";
  return C.Errors;
}

std::string test::runSource(std::string_view Source, std::string Input,
                            std::string Input2) {
  Module M = compileOk(Source);
  if (M.Funcs.empty())
    return std::string();
  ExecResult R = runOk(M, std::move(Input), std::move(Input2));
  return R.Output;
}

ExecResult test::runOk(const Module &M, std::string Input,
                       std::string Input2) {
  RunOptions Opts;
  Opts.Input = std::move(Input);
  Opts.Input2 = std::move(Input2);
  ExecResult R = runProgram(M, Opts);
  EXPECT_TRUE(R.ok()) << "execution failed: " << R.TrapMessage;
  return R;
}

ProfileResult test::profileInputs(const Module &M,
                                  const std::vector<std::string> &Inputs) {
  std::vector<RunInput> Runs;
  for (const std::string &In : Inputs)
    Runs.push_back(RunInput{In, ""});
  return profileProgram(M, Runs);
}

const char *const test::kCallHeavyProgram = R"MC(
extern int getchar();
extern int print_int(int v);
extern int putchar(int c);

int square(int x) { return x * x; }

int cube(int x) { return x * square(x); }

int accumulate(int n) {
  int total;
  int i;
  total = 0;
  for (i = 0; i < n; i++) {
    total = total + cube(i) - square(i);
  }
  return total;
}

int main() {
  int c;
  int n;
  n = 0;
  c = getchar();
  while (c != -1) {
    n = n + 1;
    c = getchar();
  }
  print_int(accumulate(n));
  putchar('\n');
  return 0;
}
)MC";

const char *const test::kRecursiveProgram = R"MC(
extern int getchar();
extern int print_int(int v);
extern int putchar(int c);

int bigframe(int x) {
  int buf[5000];
  buf[0] = x;
  buf[4999] = x + 1;
  return buf[0] + buf[4999];
}

int fib(int n) {
  if (n < 2) return n;
  return fib(n - 1) + fib(n - 2) + bigframe(n) * 0;
}

int main() {
  int c;
  int n;
  n = 0;
  c = getchar();
  while (c != -1) {
    n = n + 1;
    c = getchar();
  }
  print_int(fib(n % 12));
  putchar('\n');
  return 0;
}
)MC";

const char *const test::kPointerCallProgram = R"MC(
extern int getchar();
extern int print_int(int v);
extern int putchar(int c);

int add_one(int x) { return x + 1; }

int add_two(int x) { return x + 2; }

int table[2];

int init() {
  table[0] = add_one;
  table[1] = add_two;
  return 0;
}

int apply(int which, int x) {
  int (*f)(int);
  f = table[which];
  return f(x);
}

int main() {
  int c;
  int total;
  init();
  total = 0;
  c = getchar();
  while (c != -1) {
    total = apply(c % 2, total);
    c = getchar();
  }
  print_int(total);
  putchar('\n');
  return 0;
}
)MC";
