//===- tests/IrTests.cpp - IL data structure tests ---------------------------===//
//
// Part of the impact-inline project, distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "ir/Ir.h"
#include "ir/IrPrinter.h"

#include <gtest/gtest.h>

using namespace impact;

namespace {

TEST(Ir, OpcodePredicates) {
  EXPECT_TRUE(isTerminator(Opcode::Jump));
  EXPECT_TRUE(isTerminator(Opcode::CondBr));
  EXPECT_TRUE(isTerminator(Opcode::Ret));
  EXPECT_FALSE(isTerminator(Opcode::Call));
  EXPECT_TRUE(isCall(Opcode::Call));
  EXPECT_TRUE(isCall(Opcode::CallPtr));
  EXPECT_FALSE(isCall(Opcode::Jump));
  EXPECT_TRUE(isControlTransfer(Opcode::Jump));
  EXPECT_TRUE(isControlTransfer(Opcode::CondBr));
  EXPECT_FALSE(isControlTransfer(Opcode::Ret))
      << "returns are not Table 1 'control' transfers";
  EXPECT_FALSE(isControlTransfer(Opcode::Call));
}

TEST(Ir, FuncAddrEncodingRoundTrips) {
  for (FuncId Id : {0, 1, 7, 1000}) {
    int64_t Addr = encodeFuncAddr(Id);
    EXPECT_EQ(decodeFuncAddr(Addr), Id);
  }
  EXPECT_EQ(decodeFuncAddr(0), kNoFunc);
  EXPECT_EQ(decodeFuncAddr(kGlobalBase), kNoFunc);
  EXPECT_EQ(decodeFuncAddr(kStackBase + 5), kNoFunc);
}

TEST(Ir, SegmentsAreDisjoint) {
  EXPECT_LT(kNullAddr, kGlobalBase);
  EXPECT_LT(kGlobalBase, kStackBase);
  EXPECT_LT(kStackBase, kHeapBase);
  EXPECT_LT(kHeapBase, kFuncAddrBase);
}

TEST(Ir, AddFunctionAssignsSequentialIds) {
  Module M;
  FuncId A = M.addFunction("a", 0, false, false);
  FuncId B = M.addFunction("b", 2, true, true);
  EXPECT_EQ(A, 0);
  EXPECT_EQ(B, 1);
  EXPECT_EQ(M.getFunction(B).NumParams, 2u);
  EXPECT_TRUE(M.getFunction(B).ReturnsVoid);
  EXPECT_TRUE(M.getFunction(B).IsExternal);
  EXPECT_EQ(M.getFunction(B).NumRegs, 2u) << "params pre-allocate registers";
}

TEST(Ir, FindFunctionByName) {
  Module M;
  M.addFunction("alpha", 0, false, false);
  M.addFunction("beta", 0, false, false);
  EXPECT_EQ(M.findFunction("beta"), 1);
  EXPECT_EQ(M.findFunction("gamma"), kNoFunc);
}

TEST(Ir, GlobalLayoutIsContiguous) {
  Module M;
  M.addGlobal("a", 3);
  M.addGlobal("b", 1);
  M.addGlobal("c", 10);
  EXPECT_EQ(M.getGlobalAddress(0), kGlobalBase);
  EXPECT_EQ(M.getGlobalAddress(1), kGlobalBase + 3);
  EXPECT_EQ(M.getGlobalAddress(2), kGlobalBase + 4);
  EXPECT_EQ(M.getGlobalSegmentSize(), 14);
}

TEST(Ir, SiteIdsAreUniqueAndMonotonic) {
  Module M;
  uint32_t A = M.allocateSiteId();
  uint32_t B = M.allocateSiteId();
  EXPECT_NE(A, 0u) << "site id 0 means unassigned";
  EXPECT_GT(B, A);
}

TEST(Ir, FunctionSizeCountsAllBlocks) {
  Module M;
  FuncId Id = M.addFunction("f", 0, false, false);
  Function &F = M.getFunction(Id);
  BlockId B0 = F.addBlock();
  BlockId B1 = F.addBlock();
  Reg R = F.addReg();
  F.getBlock(B0).Instrs.push_back(Instr::makeLdImm(R, 1));
  F.getBlock(B0).Instrs.push_back(Instr::makeJump(B1));
  F.getBlock(B1).Instrs.push_back(Instr::makeRet(R));
  EXPECT_EQ(F.size(), 3u);
  EXPECT_EQ(M.size(), 3u);
}

TEST(Ir, ModuleSizeSkipsExternals) {
  Module M;
  M.addFunction("ext", 1, false, true);
  FuncId Id = M.addFunction("f", 0, false, false);
  Function &F = M.getFunction(Id);
  BlockId B = F.addBlock();
  Reg R = F.addReg();
  F.getBlock(B).Instrs.push_back(Instr::makeLdImm(R, 1));
  F.getBlock(B).Instrs.push_back(Instr::makeRet(R));
  EXPECT_EQ(M.size(), 2u);
}

TEST(Ir, ActivationWordsIncludeFrameAndRegs) {
  Module M;
  FuncId Id = M.addFunction("f", 1, false, false);
  Function &F = M.getFunction(Id);
  F.FrameSize = 100;
  F.addReg();
  // 100 frame + 2 regs + 2 linkage.
  EXPECT_EQ(F.getActivationWords(), 104);
}

TEST(Ir, AddRegNamesResizeLazily) {
  Module M;
  Function &F = M.getFunction(M.addFunction("f", 0, false, false));
  Reg A = F.addReg();
  EXPECT_TRUE(F.RegNames.empty()) << "unnamed registers allocate no names";
  Reg B = F.addReg("counter");
  ASSERT_EQ(F.RegNames.size(), 2u);
  EXPECT_EQ(F.RegNames[static_cast<size_t>(B)], "counter");
  (void)A;
}

TEST(IrPrinter, InstrRendering) {
  Instr I = Instr::makeBinary(Opcode::Add, 3, 1, 2);
  EXPECT_EQ(printInstr(I), "r3 = add r1, r2");
  EXPECT_EQ(printInstr(Instr::makeLdImm(0, -7)), "r0 = ld_imm -7");
  EXPECT_EQ(printInstr(Instr::makeJump(4)), "jump bb4");
  EXPECT_EQ(printInstr(Instr::makeCondBr(2, 1, 3)),
            "cond_br r2, bb1, bb3");
  EXPECT_EQ(printInstr(Instr::makeStore(1, 2)), "store [r1], r2");
  EXPECT_EQ(printInstr(Instr::makeRet(kNoReg)), "ret");
}

TEST(IrPrinter, CallRendering) {
  Instr I = Instr::makeCall(5, 2, {0, 1}, 9);
  EXPECT_EQ(printInstr(I), "r5 = call f2(r0, r1) site#9");
  Instr J = Instr::makeCallPtr(kNoReg, 4, {}, 10);
  EXPECT_EQ(printInstr(J), "call_ptr [r4]() site#10");
}

TEST(IrPrinter, UsesRegisterNames) {
  Module M;
  Function &F = M.getFunction(M.addFunction("f", 0, false, false));
  Reg R = F.addReg("total");
  EXPECT_EQ(printInstr(Instr::makeLdImm(R, 1), &F), "r0(total) = ld_imm 1");
}

TEST(IrPrinter, ModuleHeaderAndGlobals) {
  Module M;
  M.Name = "demo";
  M.addGlobal("g", 2, {7});
  std::string Text = printModule(M);
  EXPECT_NE(Text.find("module demo"), std::string::npos);
  EXPECT_NE(Text.find("global @0 g[2] = {7}"), std::string::npos);
}

} // namespace
