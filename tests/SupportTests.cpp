//===- tests/SupportTests.cpp - support library unit tests ------------------===//
//
// Part of the impact-inline project, distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Casting.h"
#include "support/Diagnostics.h"
#include "support/FaultInjection.h"
#include "support/Rng.h"
#include "support/SourceManager.h"
#include "support/StringUtils.h"
#include "support/ThreadPool.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <set>

using namespace impact;

namespace {

//===----------------------------------------------------------------------===//
// Casting
//===----------------------------------------------------------------------===//

struct Animal {
  enum class Kind { Dog, Cat } K;
  explicit Animal(Kind K) : K(K) {}
};
struct Dog : Animal {
  Dog() : Animal(Kind::Dog) {}
  static bool classof(const Animal *A) { return A->K == Kind::Dog; }
};
struct Cat : Animal {
  Cat() : Animal(Kind::Cat) {}
  static bool classof(const Animal *A) { return A->K == Kind::Cat; }
};

TEST(Casting, IsaMatchesKind) {
  Dog D;
  Animal *A = &D;
  EXPECT_TRUE(isa<Dog>(A));
  EXPECT_FALSE(isa<Cat>(A));
}

TEST(Casting, CastReturnsTypedPointer) {
  Dog D;
  Animal *A = &D;
  EXPECT_EQ(cast<Dog>(A), &D);
}

TEST(Casting, DynCastReturnsNullOnMismatch) {
  Dog D;
  Animal *A = &D;
  EXPECT_EQ(dyn_cast<Cat>(A), nullptr);
  EXPECT_EQ(dyn_cast<Dog>(A), &D);
}

TEST(Casting, DynCastIfPresentHandlesNull) {
  Animal *A = nullptr;
  EXPECT_EQ(dyn_cast_if_present<Dog>(A), nullptr);
}

TEST(Casting, ConstOverloads) {
  Dog D;
  const Animal *A = &D;
  EXPECT_TRUE(isa<Dog>(A));
  EXPECT_EQ(cast<Dog>(A), &D);
  EXPECT_EQ(dyn_cast<Cat>(A), nullptr);
}

//===----------------------------------------------------------------------===//
// SourceManager
//===----------------------------------------------------------------------===//

TEST(SourceManager, FirstLineFirstColumn) {
  SourceManager SM("buf", "hello\nworld\n");
  LineColumn LC = SM.getLineColumn(SourceLoc(0));
  EXPECT_EQ(LC.Line, 1u);
  EXPECT_EQ(LC.Column, 1u);
}

TEST(SourceManager, SecondLine) {
  SourceManager SM("buf", "hello\nworld\n");
  LineColumn LC = SM.getLineColumn(SourceLoc(6));
  EXPECT_EQ(LC.Line, 2u);
  EXPECT_EQ(LC.Column, 1u);
}

TEST(SourceManager, MidLineColumn) {
  SourceManager SM("buf", "hello\nworld\n");
  LineColumn LC = SM.getLineColumn(SourceLoc(8));
  EXPECT_EQ(LC.Line, 2u);
  EXPECT_EQ(LC.Column, 3u);
}

TEST(SourceManager, InvalidLocationIsLineZero) {
  SourceManager SM("buf", "text");
  EXPECT_EQ(SM.getLineColumn(SourceLoc()).Line, 0u);
}

TEST(SourceManager, LineTextWithoutNewline) {
  SourceManager SM("buf", "alpha\nbeta\ngamma");
  EXPECT_EQ(SM.getLineText(SourceLoc(6)), "beta");
  EXPECT_EQ(SM.getLineText(SourceLoc(11)), "gamma");
}

TEST(SourceManager, EmptyBuffer) {
  SourceManager SM("buf", "");
  EXPECT_EQ(SM.getLineColumn(SourceLoc(0)).Line, 1u);
}

//===----------------------------------------------------------------------===//
// Diagnostics
//===----------------------------------------------------------------------===//

TEST(Diagnostics, CountsErrorsOnly) {
  DiagnosticEngine D;
  D.warning(SourceLoc(0), "w");
  D.note(SourceLoc(0), "n");
  EXPECT_FALSE(D.hasErrors());
  D.error(SourceLoc(0), "e");
  EXPECT_TRUE(D.hasErrors());
  EXPECT_EQ(D.getNumErrors(), 1u);
  EXPECT_EQ(D.getDiagnostics().size(), 3u);
}

TEST(Diagnostics, RenderIncludesLocationAndSeverity) {
  SourceManager SM("f.mc", "ab\ncd\n");
  DiagnosticEngine D;
  D.error(SourceLoc(3), "bad thing");
  std::string Text = D.render(SM);
  EXPECT_NE(Text.find("f.mc:2:1: error: bad thing"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// StringUtils
//===----------------------------------------------------------------------===//

TEST(StringUtils, SplitKeepsEmptyFields) {
  auto Fields = splitString("a,,b", ',');
  ASSERT_EQ(Fields.size(), 3u);
  EXPECT_EQ(Fields[0], "a");
  EXPECT_EQ(Fields[1], "");
  EXPECT_EQ(Fields[2], "b");
}

TEST(StringUtils, SplitNoSeparator) {
  auto Fields = splitString("abc", ',');
  ASSERT_EQ(Fields.size(), 1u);
  EXPECT_EQ(Fields[0], "abc");
}

TEST(StringUtils, TrimBothEnds) {
  EXPECT_EQ(trimString("  x y \t\n"), "x y");
  EXPECT_EQ(trimString(""), "");
  EXPECT_EQ(trimString("   "), "");
}

TEST(StringUtils, StartsWith) {
  EXPECT_TRUE(startsWith("#define X", "#define "));
  EXPECT_FALSE(startsWith("#def", "#define "));
}

TEST(StringUtils, FormatDouble) {
  EXPECT_EQ(formatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(formatDouble(-0.5, 1), "-0.5");
}

TEST(StringUtils, FormatDoubleNonFinite) {
  // snprintf spells these differently across platforms ("inf" vs "INF");
  // the formatter pins one spelling so tables and goldens are portable.
  double Inf = std::numeric_limits<double>::infinity();
  EXPECT_EQ(formatDouble(Inf, 2), "inf");
  EXPECT_EQ(formatDouble(-Inf, 2), "-inf");
  EXPECT_EQ(formatDouble(std::nan(""), 2), "nan");
}

TEST(StringUtils, Padding) {
  EXPECT_EQ(padLeft("ab", 4), "  ab");
  EXPECT_EQ(padRight("ab", 4), "ab  ");
  EXPECT_EQ(padLeft("abcde", 4), "abcde");
}

TEST(StringUtils, FormatWithCommas) {
  EXPECT_EQ(formatWithCommas(0), "0");
  EXPECT_EQ(formatWithCommas(999), "999");
  EXPECT_EQ(formatWithCommas(1000), "1,000");
  EXPECT_EQ(formatWithCommas(1234567), "1,234,567");
  EXPECT_EQ(formatWithCommas(-1234567), "-1,234,567");
}

//===----------------------------------------------------------------------===//
// ThreadPool: job-count parsing
//===----------------------------------------------------------------------===//

TEST(ParseJobCount, AcceptsPlainPositiveInteger) {
  unsigned Out = 0;
  std::string Diag = "stale";
  ASSERT_TRUE(parseJobCount("1", Out, &Diag));
  EXPECT_EQ(Out, 1u);
  EXPECT_TRUE(Diag.empty()) << Diag;
}

TEST(ParseJobCount, TrimsSurroundingWhitespace) {
  // "1" never clamps, so this passes on single-core machines too.
  unsigned Out = 0;
  ASSERT_TRUE(parseJobCount("  1  ", Out));
  EXPECT_EQ(Out, 1u);
}

TEST(ParseJobCount, ClampsZeroAndNegativeToOne) {
  unsigned Out = 0;
  std::string Diag;
  ASSERT_TRUE(parseJobCount("0", Out, &Diag));
  EXPECT_EQ(Out, 1u);
  EXPECT_NE(Diag.find("clamped to 1"), std::string::npos) << Diag;

  Diag.clear();
  ASSERT_TRUE(parseJobCount("-3", Out, &Diag));
  EXPECT_EQ(Out, 1u);
  EXPECT_NE(Diag.find("clamped to 1"), std::string::npos) << Diag;
}

TEST(ParseJobCount, ClampsHugeValuesToHardwareConcurrency) {
  unsigned Out = 0;
  std::string Diag;
  ASSERT_TRUE(parseJobCount("100000", Out, &Diag));
  EXPECT_EQ(Out, ThreadPool::getDefaultThreadCount());
  EXPECT_NE(Diag.find("clamped"), std::string::npos) << Diag;
}

TEST(ParseJobCount, RejectsNonNumericInput) {
  unsigned Out = 77;
  std::string Diag;
  EXPECT_FALSE(parseJobCount("4x", Out, &Diag));
  EXPECT_NE(Diag.find("invalid job count"), std::string::npos) << Diag;
  EXPECT_FALSE(parseJobCount("2 4", Out, &Diag));
  EXPECT_FALSE(parseJobCount("", Out, &Diag));
  EXPECT_FALSE(parseJobCount("jobs", Out, &Diag));
  // Rejection leaves the caller's previous value untouched.
  EXPECT_EQ(Out, 77u);
}

TEST(ParseJobCount, RejectsOverflowingInput) {
  unsigned Out = 0;
  std::string Diag;
  EXPECT_FALSE(parseJobCount("99999999999999999999999999", Out, &Diag));
  EXPECT_NE(Diag.find("invalid job count"), std::string::npos) << Diag;
}

//===----------------------------------------------------------------------===//
// Rng
//===----------------------------------------------------------------------===//

TEST(Rng, DeterministicForSameSeed) {
  Rng A(42), B(42);
  for (int I = 0; I != 100; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng A(1), B(2);
  bool AnyDifferent = false;
  for (int I = 0; I != 10; ++I)
    AnyDifferent |= A.next() != B.next();
  EXPECT_TRUE(AnyDifferent);
}

TEST(Rng, NextBelowInRange) {
  Rng R(7);
  for (int I = 0; I != 1000; ++I)
    EXPECT_LT(R.nextBelow(13), 13u);
}

TEST(Rng, NextInRangeInclusive) {
  Rng R(9);
  std::set<int64_t> Seen;
  for (int I = 0; I != 2000; ++I) {
    int64_t V = R.nextInRange(-2, 2);
    EXPECT_GE(V, -2);
    EXPECT_LE(V, 2);
    Seen.insert(V);
  }
  EXPECT_EQ(Seen.size(), 5u) << "all five values should eventually appear";
}

TEST(Rng, ChanceExtremes) {
  Rng R(11);
  for (int I = 0; I != 100; ++I) {
    EXPECT_FALSE(R.nextChance(0, 10));
    EXPECT_TRUE(R.nextChance(10, 10));
  }
}

//===----------------------------------------------------------------------===//
// FaultInjection: parseFaultPlan
//===----------------------------------------------------------------------===//

TEST(ParseFaultPlan, ParsesSingleRule) {
  FaultPlan Plan;
  std::string Diag = "stale";
  ASSERT_TRUE(parseFaultPlan("profile:throw@3", Plan, &Diag));
  EXPECT_TRUE(Diag.empty()); // success clears the diagnostic
  ASSERT_EQ(Plan.Rules.size(), 1u);
  EXPECT_TRUE(Plan.Rules[0].Unit.empty());
  EXPECT_EQ(Plan.Rules[0].Site, "profile");
  EXPECT_EQ(Plan.Rules[0].Kind, FaultKind::Throw);
  EXPECT_EQ(Plan.Rules[0].Occurrence, 3u);
  EXPECT_EQ(Plan.Rules[0].MaxAttempts, 0u);
}

TEST(ParseFaultPlan, ParsesUnitScopedTransientRule) {
  FaultPlan Plan;
  ASSERT_TRUE(parseFaultPlan("wc/expand:diag@2x1", Plan));
  ASSERT_EQ(Plan.Rules.size(), 1u);
  EXPECT_EQ(Plan.Rules[0].Unit, "wc");
  EXPECT_EQ(Plan.Rules[0].Site, "expand");
  EXPECT_EQ(Plan.Rules[0].Kind, FaultKind::Diagnostic);
  EXPECT_EQ(Plan.Rules[0].Occurrence, 2u);
  EXPECT_EQ(Plan.Rules[0].MaxAttempts, 1u);
}

TEST(ParseFaultPlan, ParsesMultipleRulesWithWhitespace) {
  FaultPlan Plan;
  ASSERT_TRUE(parseFaultPlan(" pass:oom@1 , profile:steplimit@1 ", Plan));
  ASSERT_EQ(Plan.Rules.size(), 2u);
  EXPECT_EQ(Plan.Rules[0].Kind, FaultKind::Oom);
  EXPECT_EQ(Plan.Rules[1].Kind, FaultKind::StepLimit);
}

TEST(ParseFaultPlan, EmptySpecIsEmptyPlan) {
  FaultPlan Plan;
  ASSERT_TRUE(parseFaultPlan("", Plan));
  EXPECT_TRUE(Plan.empty());
  ASSERT_TRUE(parseFaultPlan("   ", Plan));
  EXPECT_TRUE(Plan.empty());
}

TEST(ParseFaultPlan, ReplacesPriorRules) {
  FaultPlan Plan;
  ASSERT_TRUE(parseFaultPlan("profile:throw@1", Plan));
  ASSERT_TRUE(parseFaultPlan("expand:oom@2", Plan));
  ASSERT_EQ(Plan.Rules.size(), 1u);
  EXPECT_EQ(Plan.Rules[0].Site, "expand");
}

TEST(ParseFaultPlan, RejectsMalformedSpecs) {
  const char *Bad[] = {
      "profile",               // no kind
      "profile:throw",         // no occurrence
      "profile:throw@",        // empty occurrence
      "profile:throw@0",       // occurrence must be positive
      "profile:throw@x",       // garbage occurrence
      "profile:throw@1x",      // empty attempts
      "profile:throw@1x0",     // attempts must be positive
      "profile:throw@2junk",   // trailing garbage
      "bogus:throw@1",         // unknown site
      "profile:explode@1",     // unknown kind
      "pass:steplimit@1",      // steplimit outside profile/reprofile
      "a/b/pass:throw@1",      // unknown site "b/pass"
      "profile:throw@1,,pass:throw@1", // empty rule
      ",",                     // only empty rules
  };
  for (const char *Spec : Bad) {
    FaultPlan Plan;
    std::string Diag;
    EXPECT_FALSE(parseFaultPlan(Spec, Plan, &Diag)) << Spec;
    EXPECT_FALSE(Diag.empty()) << Spec;
  }
}

TEST(ParseFaultPlan, DiagnosticNamesOffendingRule) {
  FaultPlan Plan;
  std::string Diag;
  EXPECT_FALSE(parseFaultPlan("profile:throw@1,bogus:oom@1", Plan, &Diag));
  EXPECT_NE(Diag.find("bogus"), std::string::npos);
}

TEST(ParseFaultPlan, RenderRoundTrips) {
  const char *Specs[] = {
      "profile:throw@3",
      "wc/expand:diag@2x1",
      "pass:oom@1,reprofile:steplimit@1",
  };
  for (const char *Spec : Specs) {
    FaultPlan Plan;
    ASSERT_TRUE(parseFaultPlan(Spec, Plan)) << Spec;
    std::string Rendered = renderFaultPlan(Plan);
    EXPECT_EQ(Rendered, Spec);
    FaultPlan Again;
    ASSERT_TRUE(parseFaultPlan(Rendered, Again)) << Rendered;
    EXPECT_EQ(renderFaultPlan(Again), Rendered);
  }
}

TEST(ParseFaultPlan, KnownSitesListedInDiagnostic) {
  FaultPlan Plan;
  std::string Diag;
  EXPECT_FALSE(parseFaultPlan("nowhere:throw@1", Plan, &Diag));
  for (const std::string &Site : getKnownFaultSites())
    EXPECT_NE(Diag.find(Site), std::string::npos) << Site;
}

//===----------------------------------------------------------------------===//
// FaultInjection: FaultSession
//===----------------------------------------------------------------------===//

TEST(FaultSessionTest, InertWithoutPlan) {
  FaultSession Default;
  EXPECT_FALSE(Default.isActive());
  EXPECT_EQ(Default.reach("profile"), std::nullopt);
  EXPECT_TRUE(Default.getSiteHits().empty());

  FaultSession NullPlan(nullptr, "wc");
  EXPECT_FALSE(NullPlan.isActive());
  EXPECT_EQ(NullPlan.reach("profile"), std::nullopt);
}

TEST(FaultSessionTest, EmptyPlanCountsArrivals) {
  FaultPlan Empty;
  FaultSession S(&Empty, "wc");
  EXPECT_TRUE(S.isActive());
  EXPECT_EQ(S.reach("pass"), std::nullopt);
  EXPECT_EQ(S.reach("pass"), std::nullopt);
  EXPECT_EQ(S.reach("profile"), std::nullopt);
  auto Hits = S.getSiteHits();
  ASSERT_EQ(Hits.size(), 2u);
  EXPECT_EQ(Hits[0].first, "pass");
  EXPECT_EQ(Hits[0].second, 2u);
  EXPECT_EQ(Hits[1].first, "profile");
  EXPECT_EQ(Hits[1].second, 1u);
}

TEST(FaultSessionTest, FiresAtExactOccurrence) {
  FaultPlan Plan;
  ASSERT_TRUE(parseFaultPlan("pass:diag@3", Plan));
  FaultSession S(&Plan, "wc");
  EXPECT_EQ(S.reach("pass"), std::nullopt);
  EXPECT_EQ(S.reach("pass"), std::nullopt);
  EXPECT_EQ(S.reach("pass"), FaultKind::Diagnostic);
  EXPECT_EQ(S.reach("pass"), std::nullopt); // only the 3rd arrival
}

TEST(FaultSessionTest, ThrowAndOomKindsThrow) {
  FaultPlan Plan;
  ASSERT_TRUE(parseFaultPlan("pass:throw@1,profile:oom@1", Plan));
  FaultSession S(&Plan, "wc");
  EXPECT_THROW((void)S.reach("pass"), FaultInjectedError);
  EXPECT_THROW((void)S.reach("profile"), std::bad_alloc);
}

TEST(FaultSessionTest, UnitScopeGates) {
  FaultPlan Plan;
  ASSERT_TRUE(parseFaultPlan("wc/pass:throw@1", Plan));
  FaultSession Other(&Plan, "grep");
  EXPECT_EQ(Other.reach("pass"), std::nullopt);
  FaultSession Match(&Plan, "wc");
  EXPECT_THROW((void)Match.reach("pass"), FaultInjectedError);
}

TEST(FaultSessionTest, TransientRuleStopsAfterMaxAttempts) {
  FaultPlan Plan;
  ASSERT_TRUE(parseFaultPlan("pass:diag@1x2", Plan));
  FaultSession A1(&Plan, "wc", /*Attempt=*/1);
  EXPECT_EQ(A1.reach("pass"), FaultKind::Diagnostic);
  FaultSession A2(&Plan, "wc", /*Attempt=*/2);
  EXPECT_EQ(A2.reach("pass"), FaultKind::Diagnostic);
  FaultSession A3(&Plan, "wc", /*Attempt=*/3);
  EXPECT_EQ(A3.reach("pass"), std::nullopt);
}

TEST(FaultSessionTest, FormatFaultKindNames) {
  EXPECT_STREQ(formatFaultKind(FaultKind::Throw), "throw");
  EXPECT_STREQ(formatFaultKind(FaultKind::Diagnostic), "diag");
  EXPECT_STREQ(formatFaultKind(FaultKind::Oom), "oom");
  EXPECT_STREQ(formatFaultKind(FaultKind::StepLimit), "steplimit");
}

} // namespace
