//===- tests/IrReaderTests.cpp - textual IL round-trip tests ------------------===//
//
// Part of the impact-inline project, distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "ir/IrReader.h"

#include "core/DeadFunctionElimination.h"
#include "core/InlinePass.h"
#include "ir/IrPrinter.h"
#include "ir/IrVerifier.h"
#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace impact;
using test::compileOk;

namespace {

/// print -> parse -> print must be a fixpoint, and the reparsed module
/// must verify and behave identically.
void expectRoundTrip(const Module &M, const std::string &Input = "") {
  std::string Text = printModule(M);
  IrReadResult R = parseModuleText(Text);
  ASSERT_TRUE(R.Ok) << R.Error << "\nin:\n" << Text;
  EXPECT_EQ(printModule(R.M), Text);
  EXPECT_EQ(verifyModuleText(R.M), "");
  EXPECT_EQ(R.M.NextSiteId, M.NextSiteId);
  EXPECT_EQ(R.M.MainId, M.MainId);
  if (M.MainId != kNoFunc) {
    RunOptions Opts;
    Opts.Input = Input;
    ExecResult Before = runProgram(M, Opts);
    ExecResult After = runProgram(R.M, Opts);
    EXPECT_EQ(Before.Output, After.Output);
    EXPECT_EQ(Before.ExitCode, After.ExitCode);
  }
}

TEST(IrReader, RoundTripsMinimalModule) {
  expectRoundTrip(compileOk("int main() { return 42; }"));
}

TEST(IrReader, RoundTripsCallHeavyProgram) {
  expectRoundTrip(compileOk(test::kCallHeavyProgram), "round trip!");
}

TEST(IrReader, RoundTripsPointerCalls) {
  expectRoundTrip(compileOk(test::kPointerCallProgram), "ab");
}

TEST(IrReader, RoundTripsRecursiveProgram) {
  expectRoundTrip(compileOk(test::kRecursiveProgram), "xxxxx");
}

TEST(IrReader, RoundTripsGlobalsStringsAndFrames) {
  expectRoundTrip(compileOk(R"(
extern int putchar(int c);
int table[4];
int counter = -3;
int greet() { int *s; s = "hi\n"; while (*s != 0) { putchar(*s);
  s = s + 1; } return 0; }
int main() { int a[6]; a[2] = counter; greet(); return a[2] + 3; }
)"),
                  "");
}

TEST(IrReader, RoundTripsInlinedModule) {
  // Inlined modules carry path-qualified register names like
  // "square.x@site3" — the reader must preserve them.
  Module M = compileOk(test::kCallHeavyProgram);
  ProfileResult P = test::profileInputs(M, {std::string(30, 'x')});
  InlineOptions Options;
  Options.CodeGrowthFactor = 4.0;
  runInlineExpansion(M, P.Data, Options);
  expectRoundTrip(M, std::string(30, 'x'));
}

TEST(IrReader, RoundTripsEliminatedFunctions) {
  Module M = compileOk("int dead() { return 1; } int main() { return 0; }");
  eliminateDeadFunctions(M);
  ASSERT_TRUE(M.getFunction(M.findFunction("dead")).Eliminated);
  std::string Text = printModule(M);
  IrReadResult R = parseModuleText(Text);
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_TRUE(R.M.getFunction(R.M.findFunction("dead")).Eliminated);
  EXPECT_EQ(printModule(R.M), Text);
}

TEST(IrReader, MissingHeaderRejected) {
  IrReadResult R = parseModuleText("int f(params=0, regs=0, frame=0) {\n");
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("module"), std::string::npos);
}

TEST(IrReader, UnknownMnemonicRejected) {
  IrReadResult R = parseModuleText("module m\n"
                                   "int main(params=0, regs=1, frame=0) {\n"
                                   "bb0:\n"
                                   "  r0 = frobnicate r0\n"
                                   "}\n");
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("frobnicate"), std::string::npos);
  EXPECT_NE(R.Error.find("line 4"), std::string::npos);
}

TEST(IrReader, InstructionOutsideBlockRejected) {
  IrReadResult R = parseModuleText("module m\n"
                                   "int main(params=0, regs=1, frame=0) {\n"
                                   "  r0 = ld_imm 1\n"
                                   "}\n");
  EXPECT_FALSE(R.Ok);
}

TEST(IrReader, UnterminatedBodyRejected) {
  IrReadResult R = parseModuleText("module m\n"
                                   "int main(params=0, regs=1, frame=0) {\n"
                                   "bb0:\n"
                                   "  r0 = ld_imm 1\n");
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("unterminated"), std::string::npos);
}

TEST(IrReader, SiteCounterReconstructed) {
  Module M = compileOk("int f() { return 1; }"
                       "int main() { return f() + f(); }");
  IrReadResult R = parseModuleText(printModule(M));
  ASSERT_TRUE(R.Ok);
  EXPECT_EQ(R.M.NextSiteId, 3u);
}

TEST(IrReader, NegativeImmediates) {
  IrReadResult R =
      parseModuleText("module m\n"
                      "int main(params=0, regs=1, frame=0) {\n"
                      "bb0:\n"
                      "  r0 = ld_imm -9223372036854775807\n"
                      "  ret r0\n"
                      "}\n");
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.M.getFunction(0).Blocks[0].Instrs[0].Imm,
            -9223372036854775807ll);
}

} // namespace
