//===- tests/IrGenTests.cpp - AST-to-IL lowering tests ------------------------===//
//
// Part of the impact-inline project, distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "ir/IrPrinter.h"
#include "ir/IrVerifier.h"

#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace impact;
using test::compileOk;

namespace {

/// Counts instructions of \p Op in \p F.
size_t countOps(const Function &F, Opcode Op) {
  size_t N = 0;
  for (const BasicBlock &B : F.Blocks)
    for (const Instr &I : B.Instrs)
      N += I.Op == Op ? 1 : 0;
  return N;
}

TEST(IrGen, EveryCompiledModuleVerifies) {
  Module M = compileOk("int main() { return 0; }");
  EXPECT_EQ(verifyModuleText(M), "");
}

TEST(IrGen, MainIdResolved) {
  Module M = compileOk("int f() { return 1; } int main() { return f(); }");
  EXPECT_EQ(M.MainId, M.findFunction("main"));
  EXPECT_NE(M.MainId, kNoFunc);
}

TEST(IrGen, ExternFunctionsHaveNoBody) {
  Module M = compileOk("extern int getchar(); int main() { return 0; }");
  const Function &F = M.getFunction(M.findFunction("getchar"));
  EXPECT_TRUE(F.IsExternal);
  EXPECT_TRUE(F.Blocks.empty());
}

TEST(IrGen, GlobalsDeclaredWithSizes) {
  Module M = compileOk("int g; int buf[32]; int main() { return g; }");
  ASSERT_GE(M.Globals.size(), 2u);
  EXPECT_EQ(M.Globals[0].Name, "g");
  EXPECT_EQ(M.Globals[0].Size, 1);
  EXPECT_EQ(M.Globals[1].Name, "buf");
  EXPECT_EQ(M.Globals[1].Size, 32);
}

TEST(IrGen, GlobalInitializerValue) {
  Module M = compileOk("int g = -7; int main() { return g; }");
  ASSERT_EQ(M.Globals[0].Init.size(), 1u);
  EXPECT_EQ(M.Globals[0].Init[0], -7);
}

TEST(IrGen, GlobalFunctionPointerInitializer) {
  Module M = compileOk("int cb(int x) { return x; } int (*h)(int) = cb;"
                       "int main() { return h(1); }");
  FuncId Cb = M.findFunction("cb");
  ASSERT_EQ(M.Globals[0].Init.size(), 1u);
  EXPECT_EQ(M.Globals[0].Init[0], encodeFuncAddr(Cb));
  EXPECT_TRUE(M.getFunction(Cb).AddressTaken);
}

TEST(IrGen, StringLiteralsInterned) {
  Module M = compileOk(R"(int main() { int *a; int *b; a = "hi"; b = "hi";
                          return a == b; })");
  // One .str global holding 'h','i',0; both uses share it.
  size_t StrGlobals = 0;
  for (const Global &G : M.Globals)
    if (G.Name.rfind(".str", 0) == 0) {
      ++StrGlobals;
      ASSERT_EQ(G.Size, 3);
      EXPECT_EQ(G.Init[0], 'h');
      EXPECT_EQ(G.Init[1], 'i');
      EXPECT_EQ(G.Init[2], 0);
    }
  EXPECT_EQ(StrGlobals, 1u);
}

TEST(IrGen, ScalarLocalsUseRegistersNotFrame) {
  Module M = compileOk("int main() { int a; int b; a = 1; b = a; return b; }");
  EXPECT_EQ(M.getFunction(M.MainId).FrameSize, 0);
}

TEST(IrGen, ArraysLiveInFrame) {
  Module M = compileOk("int main() { int a[10]; a[0] = 1; return a[0]; }");
  EXPECT_EQ(M.getFunction(M.MainId).FrameSize, 10);
}

TEST(IrGen, AddressTakenScalarSpillsToFrame) {
  Module M = compileOk(
      "int main() { int x; int *p; p = &x; *p = 3; return x; }");
  EXPECT_EQ(M.getFunction(M.MainId).FrameSize, 1);
}

TEST(IrGen, AddressTakenParamSpills) {
  Module M = compileOk("int f(int x) { int *p; p = &x; return *p; }"
                       "int main() { return f(4); }");
  const Function &F = M.getFunction(M.findFunction("f"));
  EXPECT_EQ(F.FrameSize, 1);
  EXPECT_GE(countOps(F, Opcode::Store), 1u) << "entry spill expected";
}

TEST(IrGen, DirectCallCarriesSiteId) {
  Module M = compileOk("int f() { return 1; } int main() { return f(); }");
  const Function &Main = M.getFunction(M.MainId);
  ASSERT_EQ(countOps(Main, Opcode::Call), 1u);
  for (const BasicBlock &B : Main.Blocks)
    for (const Instr &I : B.Instrs)
      if (I.Op == Opcode::Call) {
        EXPECT_NE(I.SiteId, 0u);
        EXPECT_EQ(I.Callee, M.findFunction("f"));
      }
}

TEST(IrGen, DistinctSitesGetDistinctIds) {
  Module M = compileOk(
      "int f() { return 1; } int main() { return f() + f(); }");
  const Function &Main = M.getFunction(M.MainId);
  std::vector<uint32_t> Ids;
  for (const BasicBlock &B : Main.Blocks)
    for (const Instr &I : B.Instrs)
      if (I.isCall())
        Ids.push_back(I.SiteId);
  ASSERT_EQ(Ids.size(), 2u);
  EXPECT_NE(Ids[0], Ids[1]);
}

TEST(IrGen, IndirectCallLowersToCallPtr) {
  Module M = compileOk(test::kPointerCallProgram);
  const Function &Apply = M.getFunction(M.findFunction("apply"));
  EXPECT_EQ(countOps(Apply, Opcode::CallPtr), 1u);
  EXPECT_EQ(countOps(Apply, Opcode::Call), 0u);
}

TEST(IrGen, FunctionNameValueLowersToFuncAddr) {
  Module M = compileOk(test::kPointerCallProgram);
  const Function &Init = M.getFunction(M.findFunction("init"));
  EXPECT_EQ(countOps(Init, Opcode::FuncAddr), 2u);
}

TEST(IrGen, ShortCircuitAndCreatesBranches) {
  Module M = compileOk(
      "extern int getchar();"
      "int main() { int a; a = getchar(); return a != -1 && a != 0; }");
  const Function &Main = M.getFunction(M.MainId);
  EXPECT_GE(countOps(Main, Opcode::CondBr), 1u);
}

TEST(IrGen, VoidCallHasNoDestination) {
  Module M = compileOk("void f() { } int main() { f(); return 0; }");
  const Function &Main = M.getFunction(M.MainId);
  for (const BasicBlock &B : Main.Blocks)
    for (const Instr &I : B.Instrs)
      if (I.Op == Opcode::Call) {
        EXPECT_EQ(I.Dst, kNoReg);
      }
}

TEST(IrGen, FallOffEndReturnsZero) {
  Module M = compileOk("int f() { int x; x = 2; x = x; }"
                       "int main() { return f(); }");
  EXPECT_EQ(verifyModuleText(M), "");
  ExecResult R = test::runOk(M);
  EXPECT_EQ(R.ExitCode, 0);
}

TEST(IrGen, WhileLoopShape) {
  Module M = compileOk(
      "int main() { int i; i = 0; while (i < 5) i = i + 1; return i; }");
  const Function &Main = M.getFunction(M.MainId);
  EXPECT_GE(Main.Blocks.size(), 4u);
  EXPECT_GE(countOps(Main, Opcode::CondBr), 1u);
  EXPECT_GE(countOps(Main, Opcode::Jump), 1u);
}

TEST(IrGen, NamedRegistersForLocals) {
  Module M = compileOk("int main() { int total; total = 3; return total; }");
  const Function &Main = M.getFunction(M.MainId);
  bool Found = false;
  for (const std::string &Name : Main.RegNames)
    Found |= Name == "total";
  EXPECT_TRUE(Found);
}

TEST(IrGen, ParamsOccupyLeadingRegisters) {
  Module M = compileOk("int f(int a, int b) { return a - b; }"
                       "int main() { return f(5, 2); }");
  const Function &F = M.getFunction(M.findFunction("f"));
  ASSERT_GE(F.RegNames.size(), 2u);
  EXPECT_EQ(F.RegNames[0], "a");
  EXPECT_EQ(F.RegNames[1], "b");
}

TEST(IrGen, BenchSuiteShapedProgramVerifies) {
  Module M = compileOk(test::kRecursiveProgram);
  EXPECT_EQ(verifyModuleText(M), "");
  const Function &Big = M.getFunction(M.findFunction("bigframe"));
  EXPECT_EQ(Big.FrameSize, 5000);
}

} // namespace
