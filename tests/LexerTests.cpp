//===- tests/LexerTests.cpp - MiniC lexer unit tests ------------------------===//
//
// Part of the impact-inline project, distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "frontend/Lexer.h"

#include <gtest/gtest.h>

using namespace impact;

namespace {

/// Lexes everything, asserting no diagnostics unless \p ExpectErrors.
std::vector<Token> lexAll(std::string_view Text, bool ExpectErrors = false) {
  DiagnosticEngine Diags;
  Lexer Lex(Text, Diags);
  std::vector<Token> Tokens;
  while (true) {
    Token T = Lex.lex();
    if (T.is(TokenKind::Eof))
      break;
    Tokens.push_back(T);
    if (Tokens.size() > 10000)
      break;
  }
  EXPECT_EQ(Diags.hasErrors(), ExpectErrors);
  return Tokens;
}

std::vector<TokenKind> kindsOf(const std::vector<Token> &Tokens) {
  std::vector<TokenKind> Kinds;
  for (const Token &T : Tokens)
    Kinds.push_back(T.Kind);
  return Kinds;
}

TEST(Lexer, EmptyInputIsEof) {
  DiagnosticEngine Diags;
  Lexer Lex("", Diags);
  EXPECT_TRUE(Lex.lex().is(TokenKind::Eof));
  EXPECT_TRUE(Lex.lex().is(TokenKind::Eof)) << "Eof must be sticky";
}

TEST(Lexer, Identifiers) {
  auto Tokens = lexAll("foo _bar a1_b2");
  ASSERT_EQ(Tokens.size(), 3u);
  EXPECT_EQ(Tokens[0].Text, "foo");
  EXPECT_EQ(Tokens[1].Text, "_bar");
  EXPECT_EQ(Tokens[2].Text, "a1_b2");
  for (const Token &T : Tokens)
    EXPECT_TRUE(T.is(TokenKind::Identifier));
}

TEST(Lexer, Keywords) {
  auto Kinds = kindsOf(lexAll("int void extern if else while for return "
                              "break continue"));
  std::vector<TokenKind> Expected = {
      TokenKind::KwInt,   TokenKind::KwVoid,  TokenKind::KwExtern,
      TokenKind::KwIf,    TokenKind::KwElse,  TokenKind::KwWhile,
      TokenKind::KwFor,   TokenKind::KwReturn, TokenKind::KwBreak,
      TokenKind::KwContinue};
  EXPECT_EQ(Kinds, Expected);
}

TEST(Lexer, KeywordPrefixIsIdentifier) {
  auto Tokens = lexAll("interior iffy");
  ASSERT_EQ(Tokens.size(), 2u);
  EXPECT_TRUE(Tokens[0].is(TokenKind::Identifier));
  EXPECT_TRUE(Tokens[1].is(TokenKind::Identifier));
}

TEST(Lexer, DecimalLiterals) {
  auto Tokens = lexAll("0 7 123456789");
  ASSERT_EQ(Tokens.size(), 3u);
  EXPECT_EQ(Tokens[0].IntValue, 0);
  EXPECT_EQ(Tokens[1].IntValue, 7);
  EXPECT_EQ(Tokens[2].IntValue, 123456789);
}

TEST(Lexer, HexLiterals) {
  auto Tokens = lexAll("0x0 0xff 0X7B");
  ASSERT_EQ(Tokens.size(), 3u);
  EXPECT_EQ(Tokens[0].IntValue, 0);
  EXPECT_EQ(Tokens[1].IntValue, 255);
  EXPECT_EQ(Tokens[2].IntValue, 123);
}

TEST(Lexer, BadHexLiteral) {
  auto Tokens = lexAll("0x", /*ExpectErrors=*/true);
  ASSERT_EQ(Tokens.size(), 1u);
  EXPECT_TRUE(Tokens[0].is(TokenKind::Error));
}

TEST(Lexer, CharLiterals) {
  auto Tokens = lexAll(R"('a' '0' '\n' '\t' '\\' '\'' '\0')");
  ASSERT_EQ(Tokens.size(), 7u);
  EXPECT_EQ(Tokens[0].IntValue, 'a');
  EXPECT_EQ(Tokens[1].IntValue, '0');
  EXPECT_EQ(Tokens[2].IntValue, '\n');
  EXPECT_EQ(Tokens[3].IntValue, '\t');
  EXPECT_EQ(Tokens[4].IntValue, '\\');
  EXPECT_EQ(Tokens[5].IntValue, '\'');
  EXPECT_EQ(Tokens[6].IntValue, 0);
}

TEST(Lexer, UnterminatedCharLiteral) {
  lexAll("'a", /*ExpectErrors=*/true);
}

TEST(Lexer, StringLiteralsDecodeEscapes) {
  auto Tokens = lexAll(R"("hi there" "a\nb" "q\"q")");
  ASSERT_EQ(Tokens.size(), 3u);
  EXPECT_EQ(Tokens[0].Text, "hi there");
  EXPECT_EQ(Tokens[1].Text, "a\nb");
  EXPECT_EQ(Tokens[2].Text, "q\"q");
}

TEST(Lexer, UnterminatedString) {
  lexAll("\"abc", /*ExpectErrors=*/true);
}

TEST(Lexer, UnterminatedStringAtNewline) {
  lexAll("\"abc\nrest", /*ExpectErrors=*/true);
}

TEST(Lexer, LineComments) {
  auto Tokens = lexAll("a // comment here\nb");
  ASSERT_EQ(Tokens.size(), 2u);
  EXPECT_EQ(Tokens[0].Text, "a");
  EXPECT_EQ(Tokens[1].Text, "b");
}

TEST(Lexer, BlockComments) {
  auto Tokens = lexAll("a /* multi\nline */ b");
  ASSERT_EQ(Tokens.size(), 2u);
}

TEST(Lexer, UnterminatedBlockComment) {
  lexAll("a /* never ends", /*ExpectErrors=*/true);
}

TEST(Lexer, SingleCharOperators) {
  auto Kinds = kindsOf(lexAll("+ - * / % & | ^ ~ ! < > = ? :"));
  std::vector<TokenKind> Expected = {
      TokenKind::Plus,  TokenKind::Minus,   TokenKind::Star,
      TokenKind::Slash, TokenKind::Percent, TokenKind::Amp,
      TokenKind::Pipe,  TokenKind::Caret,   TokenKind::Tilde,
      TokenKind::Bang,  TokenKind::Less,    TokenKind::Greater,
      TokenKind::Equal, TokenKind::Question, TokenKind::Colon};
  EXPECT_EQ(Kinds, Expected);
}

TEST(Lexer, TwoCharOperators) {
  auto Kinds = kindsOf(lexAll("== != <= >= && || << >> += -= *= /= %= ++ --"));
  std::vector<TokenKind> Expected = {
      TokenKind::EqualEqual,  TokenKind::BangEqual,
      TokenKind::LessEqual,   TokenKind::GreaterEqual,
      TokenKind::AmpAmp,      TokenKind::PipePipe,
      TokenKind::LessLess,    TokenKind::GreaterGreater,
      TokenKind::PlusEqual,   TokenKind::MinusEqual,
      TokenKind::StarEqual,   TokenKind::SlashEqual,
      TokenKind::PercentEqual, TokenKind::PlusPlus,
      TokenKind::MinusMinus};
  EXPECT_EQ(Kinds, Expected);
}

TEST(Lexer, MaximalMunch) {
  // "+++" lexes as "++" "+", "<<=" as "<<" "=".
  auto Kinds = kindsOf(lexAll("+++ <<="));
  std::vector<TokenKind> Expected = {TokenKind::PlusPlus, TokenKind::Plus,
                                     TokenKind::LessLess, TokenKind::Equal};
  EXPECT_EQ(Kinds, Expected);
}

TEST(Lexer, Punctuation) {
  auto Kinds = kindsOf(lexAll("( ) { } [ ] , ;"));
  std::vector<TokenKind> Expected = {
      TokenKind::LParen,   TokenKind::RParen,   TokenKind::LBrace,
      TokenKind::RBrace,   TokenKind::LBracket, TokenKind::RBracket,
      TokenKind::Comma,    TokenKind::Semicolon};
  EXPECT_EQ(Kinds, Expected);
}

TEST(Lexer, UnknownCharacterIsError) {
  auto Tokens = lexAll("@", /*ExpectErrors=*/true);
  ASSERT_EQ(Tokens.size(), 1u);
  EXPECT_TRUE(Tokens[0].is(TokenKind::Error));
}

TEST(Lexer, UnknownEscapeReportsError) {
  lexAll(R"('\q')", /*ExpectErrors=*/true);
}

TEST(Lexer, LocationsTrackOffsets) {
  auto Tokens = lexAll("ab  cd");
  ASSERT_EQ(Tokens.size(), 2u);
  EXPECT_EQ(Tokens[0].Loc.Offset, 0u);
  EXPECT_EQ(Tokens[1].Loc.Offset, 4u);
}

TEST(Lexer, WhitespaceVariants) {
  auto Tokens = lexAll("a\tb\rc\nd");
  EXPECT_EQ(Tokens.size(), 4u);
}

TEST(Lexer, TokenKindNamesAreStable) {
  EXPECT_STREQ(getTokenKindName(TokenKind::PlusEqual), "'+='");
  EXPECT_STREQ(getTokenKindName(TokenKind::Identifier), "identifier");
  EXPECT_STREQ(getTokenKindName(TokenKind::Eof), "end of file");
}

} // namespace
