//===- tests/AnalysisPropertyTests.cpp - analyzer properties at scale ---------===//
//
// Part of the impact-inline project, distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The analyzer's two fleet-level properties:
///
///  - Cleanliness: the whole MiniC benchmark suite and a corpus of random
///    programs compile, inline, and analyze with zero error findings —
///    the inliner never violates its own invariants on legal input.
///  - Determinism: findings are bit-identical between a serial batch and a
///    4-worker batch, per unit, so --analyze never perturbs the batch
///    pipeline's reproducibility guarantee.
///
//===----------------------------------------------------------------------===//

#include "analysis/Analyzer.h"
#include "driver/BatchPipeline.h"
#include "suite/Suite.h"

#include "RandomProgram.h"
#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace impact;

namespace {

void expectCleanAndDeterministic(const std::vector<BatchJob> &Jobs) {
  BatchOptions Serial, Wide;
  Serial.Jobs = 1;
  Wide.Jobs = 4;
  BatchResult A = runBatchPipeline(Jobs, Serial);
  BatchResult B = runBatchPipeline(Jobs, Wide);
  ASSERT_EQ(A.Results.size(), Jobs.size());
  ASSERT_EQ(B.Results.size(), Jobs.size());
  for (size_t I = 0; I != Jobs.size(); ++I) {
    EXPECT_TRUE(A.Results[I].Ok)
        << Jobs[I].Name << ": " << A.Results[I].Error;
    EXPECT_EQ(A.Results[I].Analysis.countSeverity(Severity::Error), 0u)
        << Jobs[I].Name << ":\n" << A.Results[I].Analysis.renderText();
    // Bit-identical findings at any job count (operator== compares every
    // field of every finding).
    EXPECT_TRUE(A.Results[I].Analysis == B.Results[I].Analysis)
        << Jobs[I].Name << " serial:\n" << A.Results[I].Analysis.renderText()
        << "4 jobs:\n" << B.Results[I].Analysis.renderText();
  }
}

TEST(AnalysisProperty, SuiteAnalyzesCleanAtAnyJobCount) {
  std::vector<BatchJob> Jobs;
  for (const BenchmarkSpec &B : getBenchmarkSuite()) {
    BatchJob Job;
    Job.Name = B.Name;
    Job.Source = B.Source;
    Job.Inputs = makeBenchmarkInputs(B, 2);
    Job.Options.Analyze = true;
    Jobs.push_back(std::move(Job));
  }
  expectCleanAndDeterministic(Jobs);
}

TEST(AnalysisProperty, RandomProgramsAnalyzeCleanAtAnyJobCount) {
  std::vector<BatchJob> Jobs;
  for (unsigned Seed = 0; Seed != 64; ++Seed) {
    BatchJob Job;
    Job.Name = "random" + std::to_string(Seed);
    Job.Source = test::generateRandomProgram(Seed);
    Job.Inputs = {RunInput{"ab", ""}, RunInput{"hello world", ""}};
    Job.Options.Analyze = true;
    Job.Options.Run.StepLimit = 20'000'000;
    Jobs.push_back(std::move(Job));
  }
  expectCleanAndDeterministic(Jobs);
}

} // namespace
