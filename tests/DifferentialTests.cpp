//===- tests/DifferentialTests.cpp - walker vs VM equivalence tier ----------===//
//
// Part of the impact-inline project, distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The differential-testing oracle for the bytecode VM: the tree-walking
/// interpreter in src/interp defines the semantics, and every program we
/// can lay hands on — the whole 12-benchmark suite and a randomized MiniC
/// corpus — must produce bit-identical results through the VM: stdout,
/// exit codes, trap kinds and messages, step counts, per-opcode counts,
/// and the paper's profile node/arc weights. Both dispatch strategies
/// (computed goto and switch) are held to the same standard, and the batch
/// pipeline must be engine-invariant at any job count.
///
/// Run with `ctest -L differential`. The random-corpus width is tunable
/// via IMPACT_FUZZ_SEEDS (shared with the fuzz tier; default 64).
///
//===----------------------------------------------------------------------===//

#include "driver/BatchPipeline.h"
#include "interp/Engine.h"
#include "ir/IrPrinter.h"
#include "suite/Suite.h"
#include "vm/Bytecode.h"
#include "vm/Vm.h"

#include "RandomProgram.h"
#include "TestUtil.h"

#include <gtest/gtest.h>

#include <cstdlib>

using namespace impact;

namespace {

/// Seed count for the random corpus: IMPACT_FUZZ_SEEDS, floored at 64 so
/// the tier never runs narrower than its contract.
unsigned corpusSeedCount() {
  const char *Env = std::getenv("IMPACT_FUZZ_SEEDS");
  if (!Env || !*Env)
    return 64;
  char *End = nullptr;
  unsigned long N = std::strtoul(Env, &End, 10);
  if (!End || *End || N == 0)
    return 64;
  return N < 64 ? 64 : static_cast<unsigned>(N);
}

/// Walker vs VM (both dispatch strategies) on one run; the full ExecResult
/// must be bit-identical.
void expectRunsAgree(const Module &M, const VmProgram &P,
                     const RunOptions &Opts, const std::string &Tag) {
  ExecResult W = runProgram(M, Opts);
  ExecResult Goto = runProgramVm(P, Opts, nullptr, VmDispatch::ComputedGoto);
  ExecResult Switch = runProgramVm(P, Opts, nullptr, VmDispatch::Switch);
  EXPECT_EQ(describeResultDifference(W, Goto), "") << Tag << " (goto)";
  EXPECT_EQ(describeResultDifference(W, Switch), "") << Tag << " (switch)";
}

//===----------------------------------------------------------------------===//
// The 12-benchmark suite
//===----------------------------------------------------------------------===//

TEST(DifferentialSuite, EveryBenchmarkRunsIdentically) {
  for (const BenchmarkSpec &Spec : getBenchmarkSuite()) {
    SCOPED_TRACE(Spec.Name);
    Module M = test::compileOk(Spec.Source);
    VmProgram P = compileToBytecode(M);
    std::vector<RunInput> Inputs = makeBenchmarkInputs(Spec, 2);
    ASSERT_FALSE(Inputs.empty());
    for (size_t I = 0; I != Inputs.size(); ++I) {
      RunOptions Opts;
      Opts.Input = Inputs[I].Input;
      Opts.Input2 = Inputs[I].Input2;
      expectRunsAgree(M, P, Opts,
                      Spec.Name + " input " + std::to_string(I));
    }
  }
}

TEST(DifferentialSuite, EveryBenchmarkProfilesIdentically) {
  // The profile is what drives inline planning — node weights, arc
  // weights, and the dynamic totals must not depend on the engine.
  for (const BenchmarkSpec &Spec : getBenchmarkSuite()) {
    SCOPED_TRACE(Spec.Name);
    Module M = test::compileOk(Spec.Source);
    std::vector<RunInput> Inputs = makeBenchmarkInputs(Spec, 2);
    ProfileResult W =
        profileProgram(M, Inputs, RunOptions(), ExecEngine::Walker);
    ProfileResult V =
        profileProgram(M, Inputs, RunOptions(), ExecEngine::Vm);
    ProfileResult B =
        profileProgram(M, Inputs, RunOptions(), ExecEngine::Both);
    EXPECT_EQ(W.Failures, V.Failures);
    EXPECT_EQ(W.Failures, B.Failures);
    EXPECT_TRUE(W.Data == V.Data) << "vm profile diverged";
    EXPECT_TRUE(W.Data == B.Data) << "both-mode profile diverged";
    EXPECT_EQ(W.Outputs, V.Outputs);
    EXPECT_EQ(W.Outputs, B.Outputs);
  }
}

TEST(DifferentialSuite, SuiteExercisesSuperinstructions) {
  // Not an equivalence check — a coverage guard: if fusion ever stops
  // firing on the suite, the differential tier would silently stop
  // testing the superinstruction handlers.
  uint64_t CmpBr = 0;
  VmRunStats Dynamic;
  for (const BenchmarkSpec &Spec : getBenchmarkSuite()) {
    Module M = test::compileOk(Spec.Source);
    VmProgram P = compileToBytecode(M);
    CmpBr += P.Stats.FusedCmpBr;
    std::vector<RunInput> Inputs = makeBenchmarkInputs(Spec, 1);
    RunOptions Opts;
    Opts.Input = Inputs[0].Input;
    Opts.Input2 = Inputs[0].Input2;
    VmRunStats Stats;
    (void)runProgramVm(P, Opts, &Stats);
    Dynamic.merge(Stats);
  }
  EXPECT_GT(CmpBr, 0u);
  EXPECT_GT(Dynamic.FusedCmpBr, 0u);
  EXPECT_GT(Dynamic.getFusedStepFraction(), 0.0);
}

//===----------------------------------------------------------------------===//
// Randomized corpus
//===----------------------------------------------------------------------===//

TEST(DifferentialCorpus, RandomProgramsRunIdentically) {
  unsigned Seeds = corpusSeedCount();
  for (uint64_t Seed = 0; Seed != Seeds; ++Seed) {
    SCOPED_TRACE("seed " + std::to_string(Seed));
    std::string Source = test::generateRandomProgram(Seed);
    Module M = test::compileOk(Source);
    if (::testing::Test::HasFailure())
      return; // generator contract broken; no point running the corpus
    VmProgram P = compileToBytecode(M);
    for (const char *Input : {"", "a", "hello world", "0123456789abcdef"}) {
      RunOptions Opts;
      Opts.Input = Input;
      expectRunsAgree(M, P, Opts, "input '" + std::string(Input) + "'");
    }
  }
}

TEST(DifferentialCorpus, RandomProgramsAgreeUnderTightLimits) {
  // Re-run a slice of the corpus with step limits that exhaust mid-run
  // and a stack that recursion-free programs still fit in; the truncated
  // results must match exactly (same InstrCount, same opcode histogram).
  unsigned Seeds = corpusSeedCount() / 4;
  for (uint64_t Seed = 0; Seed != Seeds; ++Seed) {
    SCOPED_TRACE("seed " + std::to_string(Seed));
    std::string Source = test::generateRandomProgram(Seed);
    Module M = test::compileOk(Source);
    if (::testing::Test::HasFailure())
      return;
    VmProgram P = compileToBytecode(M);
    for (uint64_t Limit : {0ull, 1ull, 7ull, 50ull, 333ull}) {
      RunOptions Opts;
      Opts.Input = "differential";
      Opts.StepLimit = Limit;
      expectRunsAgree(M, P, Opts, "limit " + std::to_string(Limit));
    }
  }
}

//===----------------------------------------------------------------------===//
// The batch pipeline is engine-invariant at any job count
//===----------------------------------------------------------------------===//

std::vector<BatchJob> makeSuiteJobs(ExecEngine Engine) {
  std::vector<BatchJob> Jobs;
  for (const BenchmarkSpec &Spec : getBenchmarkSuite()) {
    BatchJob Job;
    Job.Name = Spec.Name;
    Job.Source = Spec.Source;
    Job.Inputs = makeBenchmarkInputs(Spec, 2);
    Job.Options.Engine = Engine;
    Jobs.push_back(std::move(Job));
  }
  return Jobs;
}

/// Everything observable must match (timing/cache counters exempt).
void expectSamePipelineResult(const PipelineResult &A,
                              const PipelineResult &B,
                              const std::string &Tag) {
  ASSERT_EQ(A.Ok, B.Ok) << Tag;
  EXPECT_EQ(A.Error, B.Error) << Tag;
  EXPECT_TRUE(A.Before == B.Before) << Tag;
  EXPECT_TRUE(A.After == B.After) << Tag;
  EXPECT_EQ(A.OutputsBefore, B.OutputsBefore) << Tag;
  EXPECT_EQ(A.OutputsAfter, B.OutputsAfter) << Tag;
  EXPECT_TRUE(A.ProfileBefore == B.ProfileBefore) << Tag;
  EXPECT_EQ(printModule(A.FinalModule), printModule(B.FinalModule)) << Tag;
}

TEST(DifferentialBatch, VmEngineMatchesWalkerAtAnyJobCount) {
  BatchOptions Serial, Wide;
  Serial.Jobs = 1;
  Wide.Jobs = 4;

  BatchResult WalkSerial = runBatchPipeline(makeSuiteJobs(ExecEngine::Walker),
                                            Serial);
  ASSERT_TRUE(WalkSerial.allOk());

  for (const auto &[Engine, Options] :
       {std::pair<ExecEngine, const BatchOptions *>{ExecEngine::Walker,
                                                    &Wide},
        {ExecEngine::Vm, &Serial},
        {ExecEngine::Vm, &Wide}}) {
    BatchResult R = runBatchPipeline(makeSuiteJobs(Engine), *Options);
    std::string Tag = std::string(getEngineName(Engine)) + "/jobs=" +
                      std::to_string(Options->Jobs);
    EXPECT_TRUE(R.allOk()) << Tag;
    ASSERT_EQ(R.Results.size(), WalkSerial.Results.size()) << Tag;
    for (size_t I = 0; I != R.Results.size(); ++I)
      expectSamePipelineResult(WalkSerial.Results[I], R.Results[I],
                               Tag + " " + getBenchmarkSuite()[I].Name);
  }
}

TEST(DifferentialBatch, BothEngineNeverDiverges) {
  // engine=both runs walker and VM on every profiled input and turns any
  // difference into a quarantined failure — a green suite batch IS the
  // divergence check.
  BatchResult R = runBatchPipeline(makeSuiteJobs(ExecEngine::Both));
  EXPECT_TRUE(R.allOk());
  for (const UnitFailure &F : R.Failures)
    ADD_FAILURE() << F.render();
  ASSERT_EQ(R.Results.size(), getBenchmarkSuite().size());
  BatchResult W = runBatchPipeline(makeSuiteJobs(ExecEngine::Walker));
  ASSERT_TRUE(W.allOk());
  for (size_t I = 0; I != R.Results.size(); ++I)
    expectSamePipelineResult(W.Results[I], R.Results[I],
                             getBenchmarkSuite()[I].Name);
}

} // namespace
