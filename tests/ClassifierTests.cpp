//===- tests/ClassifierTests.cpp - call-site classification tests -------------===//
//
// Part of the impact-inline project, distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/CallSiteClassifier.h"

#include "callgraph/CallGraphBuilder.h"
#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace impact;
using test::compileOk;

namespace {

struct Classified {
  Module M;
  Classification Classes;
};

Classified classify(const char *Source, const std::vector<std::string> &Inputs,
                    InlineOptions Options = InlineOptions()) {
  Classified Result{compileOk(Source), {}};
  ProfileResult P = test::profileInputs(Result.M, Inputs);
  EXPECT_TRUE(P.allRunsOk());
  CallGraphOptions GraphOpts;
  GraphOpts.AssumeExternalsCallBack = Options.AssumeExternalsCallBack;
  CallGraph G = buildCallGraph(Result.M, &P.Data, GraphOpts);
  Result.Classes = classifyCallSites(Result.M, G, P.Data, Options);
  return Result;
}

TEST(Classifier, ExternalSites) {
  auto R = classify("extern int getchar();"
                    "int main() { int c; c = getchar();"
                    "while (c != -1) c = getchar(); return 0; }",
                    {std::string(30, 'x')});
  EXPECT_EQ(R.Classes.getTotalSites(), 2u);
  EXPECT_EQ(R.Classes.countStatic(SiteClass::External), 2u);
  EXPECT_EQ(R.Classes.countStatic(SiteClass::Safe), 0u);
}

TEST(Classifier, PointerSites) {
  auto R = classify(test::kPointerCallProgram, {std::string(40, 'a')});
  EXPECT_EQ(R.Classes.countStatic(SiteClass::Pointer), 1u);
}

TEST(Classifier, HotDirectSiteIsSafe) {
  auto R = classify(test::kCallHeavyProgram, {std::string(50, 'x')});
  // square-from-cube and cube-from-accumulate run 50 times: safe.
  EXPECT_GE(R.Classes.countStatic(SiteClass::Safe), 2u);
}

TEST(Classifier, ColdSiteIsUnsafeLowWeight) {
  auto R = classify("int rare() { return 1; }"
                    "int main() { return rare(); }",
                    {""});
  ASSERT_EQ(R.Classes.getTotalSites(), 1u);
  EXPECT_EQ(R.Classes.Sites[0].Class, SiteClass::Unsafe);
  EXPECT_EQ(R.Classes.Sites[0].Reason, UnsafeReason::LowWeight);
}

TEST(Classifier, ThresholdBoundaryIsInclusive) {
  // Weight exactly 10 is safe (paper: count < 10 is unsafe).
  std::string Input(10, 'x');
  auto R = classify("extern int getchar();"
                    "int leaf(int c) { return c * 2; }"
                    "int main() { int c; int t; t = 0; c = getchar();"
                    "while (c != -1) { t = t + leaf(c); c = getchar(); }"
                    "return t; }",
                    {Input});
  const SiteInfo *Leaf = nullptr;
  for (const SiteInfo &S : R.Classes.Sites)
    if (S.Callee == R.M.findFunction("leaf"))
      Leaf = &S;
  ASSERT_NE(Leaf, nullptr);
  EXPECT_DOUBLE_EQ(Leaf->Weight, 10.0);
  EXPECT_EQ(Leaf->Class, SiteClass::Safe);
}

TEST(Classifier, RecursiveCycleSitesAreUnsafe) {
  auto R = classify("int fib(int n) { if (n < 2) return n;"
                    "return fib(n - 1) + fib(n - 2); }"
                    "int main() { return fib(14); }",
                    {""});
  size_t RecursiveSites = 0;
  for (const SiteInfo &S : R.Classes.Sites)
    if (S.Reason == UnsafeReason::RecursiveCycle)
      ++RecursiveSites;
  EXPECT_EQ(RecursiveSites, 2u) << "both fib self-calls";
}

TEST(Classifier, StackHazardDetected) {
  // Recursive driver calls a large-frame helper hot enough to pass the
  // weight filter: the stack hazard must fire.
  InlineOptions Options;
  Options.StackBound = 1000;
  auto R = classify(test::kRecursiveProgram, {std::string(11, 'x')},
                    Options);
  const SiteInfo *Hazard = nullptr;
  for (const SiteInfo &S : R.Classes.Sites)
    if (S.Callee == R.M.findFunction("bigframe"))
      Hazard = &S;
  ASSERT_NE(Hazard, nullptr);
  EXPECT_EQ(Hazard->Class, SiteClass::Unsafe);
  EXPECT_EQ(Hazard->Reason, UnsafeReason::StackHazard);
}

TEST(Classifier, StackHazardClearedByLargeBound) {
  InlineOptions Options;
  Options.StackBound = 100000;
  auto R = classify(test::kRecursiveProgram, {std::string(11, 'x')},
                    Options);
  const SiteInfo *Site = nullptr;
  for (const SiteInfo &S : R.Classes.Sites)
    if (S.Callee == R.M.findFunction("bigframe"))
      Site = &S;
  ASSERT_NE(Site, nullptr);
  EXPECT_NE(Site->Reason, UnsafeReason::StackHazard);
}

TEST(Classifier, PessimisticModeMakesIoRecursive) {
  InlineOptions Options;
  Options.TreatExternalCyclesAsRecursion = true;
  auto R = classify("extern int getchar();"
                    "int step(int c) { return c + getchar(); }"
                    "int main() { int c; int t; t = 0; c = getchar();"
                    "while (c != -1) { t = step(t); c = getchar(); }"
                    "return t; }",
                    {std::string(40, 'x')}, Options);
  const SiteInfo *Step = nullptr;
  for (const SiteInfo &S : R.Classes.Sites)
    if (S.Callee == R.M.findFunction("step"))
      Step = &S;
  ASSERT_NE(Step, nullptr);
  EXPECT_EQ(Step->Reason, UnsafeReason::RecursiveCycle)
      << "main and step share the $$$ cycle in pessimistic mode";
}

TEST(Classifier, DynamicSumsMatchClassTotals) {
  auto R = classify(test::kCallHeavyProgram, {std::string(25, 'x')});
  double Total = R.Classes.sumDynamicTotal();
  double ByClass =
      R.Classes.sumDynamic(SiteClass::External) +
      R.Classes.sumDynamic(SiteClass::Pointer) +
      R.Classes.sumDynamic(SiteClass::Unsafe) +
      R.Classes.sumDynamic(SiteClass::Safe);
  EXPECT_DOUBLE_EQ(Total, ByClass);
  EXPECT_GT(Total, 0.0);
}

TEST(Classifier, FindSiteById) {
  auto R = classify(test::kCallHeavyProgram, {"xxxx"});
  ASSERT_FALSE(R.Classes.Sites.empty());
  uint32_t Id = R.Classes.Sites[0].SiteId;
  EXPECT_EQ(R.Classes.findSite(Id), &R.Classes.Sites[0]);
  EXPECT_EQ(R.Classes.findSite(0), nullptr);
}

TEST(Classifier, NamesAreStable) {
  EXPECT_STREQ(getSiteClassName(SiteClass::External), "external");
  EXPECT_STREQ(getSiteClassName(SiteClass::Pointer), "pointer");
  EXPECT_STREQ(getSiteClassName(SiteClass::Unsafe), "unsafe");
  EXPECT_STREQ(getSiteClassName(SiteClass::Safe), "safe");
  EXPECT_STREQ(getUnsafeReasonName(UnsafeReason::StackHazard),
               "stack-hazard");
}

} // namespace
