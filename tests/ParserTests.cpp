//===- tests/ParserTests.cpp - MiniC parser unit tests ----------------------===//
//
// Part of the impact-inline project, distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "frontend/Parser.h"

#include <gtest/gtest.h>

using namespace impact;

namespace {

std::unique_ptr<TranslationUnit> parseOk(std::string_view Text) {
  DiagnosticEngine Diags;
  Parser P(Text, Diags);
  auto TU = P.parseTranslationUnit();
  EXPECT_FALSE(Diags.hasErrors()) << "unexpected parse errors";
  return TU;
}

unsigned parseErrorCount(std::string_view Text) {
  DiagnosticEngine Diags;
  Parser P(Text, Diags);
  P.parseTranslationUnit();
  return Diags.getNumErrors();
}

/// Parses a whole function and dumps its body.
std::string dumpBody(std::string_view Body) {
  std::string Source = "int f() {\n" + std::string(Body) + "\n}\n";
  auto TU = parseOk(Source);
  auto *F = dyn_cast<FunctionDecl>(TU->Decls.at(0).get());
  EXPECT_NE(F, nullptr);
  return dumpStmt(*F->getBody());
}

//===----------------------------------------------------------------------===//
// Declarations
//===----------------------------------------------------------------------===//

TEST(Parser, EmptyTranslationUnit) {
  auto TU = parseOk("");
  EXPECT_TRUE(TU->Decls.empty());
}

TEST(Parser, GlobalScalar) {
  auto TU = parseOk("int g;");
  ASSERT_EQ(TU->Decls.size(), 1u);
  auto *V = dyn_cast<VarDecl>(TU->Decls[0].get());
  ASSERT_NE(V, nullptr);
  EXPECT_EQ(V->getName(), "g");
  EXPECT_TRUE(V->isGlobal());
  EXPECT_FALSE(V->isArray());
}

TEST(Parser, GlobalArray) {
  auto TU = parseOk("int buf[128];");
  auto *V = cast<VarDecl>(TU->Decls.at(0).get());
  EXPECT_TRUE(V->isArray());
  EXPECT_EQ(V->getArraySize(), 128);
}

TEST(Parser, GlobalPointerArray) {
  auto TU = parseOk("int *names[4];");
  auto *V = cast<VarDecl>(TU->Decls.at(0).get());
  EXPECT_TRUE(V->isArray());
  EXPECT_TRUE(V->getType().isPtr());
}

TEST(Parser, GlobalWithInitializer) {
  auto TU = parseOk("int g = 42;");
  auto *V = cast<VarDecl>(TU->Decls.at(0).get());
  ASSERT_NE(V->getInit(), nullptr);
  EXPECT_EQ(cast<IntLiteralExpr>(V->getInit())->getValue(), 42);
}

TEST(Parser, BadArraySizeReported) {
  EXPECT_GT(parseErrorCount("int a[0];"), 0u);
  EXPECT_GT(parseErrorCount("int a[x];"), 0u);
}

TEST(Parser, FunctionDefinition) {
  auto TU = parseOk("int add(int a, int b) { return a + b; }");
  auto *F = cast<FunctionDecl>(TU->Decls.at(0).get());
  EXPECT_EQ(F->getName(), "add");
  EXPECT_EQ(F->getNumParams(), 2u);
  EXPECT_FALSE(F->isExtern());
  ASSERT_NE(F->getBody(), nullptr);
}

TEST(Parser, VoidFunctionNoParams) {
  auto TU = parseOk("void f() { }  void g(void) { }");
  EXPECT_EQ(cast<FunctionDecl>(TU->Decls.at(0).get())->getNumParams(), 0u);
  EXPECT_EQ(cast<FunctionDecl>(TU->Decls.at(1).get())->getNumParams(), 0u);
}

TEST(Parser, ExternFunction) {
  auto TU = parseOk("extern int getchar();");
  auto *F = cast<FunctionDecl>(TU->Decls.at(0).get());
  EXPECT_TRUE(F->isExtern());
  EXPECT_EQ(F->getBody(), nullptr);
}

TEST(Parser, BodylessDeclarationIsExtern) {
  auto TU = parseOk("int probe(int x);");
  EXPECT_TRUE(cast<FunctionDecl>(TU->Decls.at(0).get())->isExtern());
}

TEST(Parser, ExternWithBodyIsError) {
  EXPECT_GT(parseErrorCount("extern int f() { return 0; }"), 0u);
}

TEST(Parser, PointerParams) {
  auto TU = parseOk("int f(int *p, int **q) { return 0; }");
  auto *F = cast<FunctionDecl>(TU->Decls.at(0).get());
  EXPECT_EQ(F->getParams()[0]->getType(), Type::makePtr(1));
  EXPECT_EQ(F->getParams()[1]->getType(), Type::makePtr(2));
}

TEST(Parser, FunctionPointerGlobal) {
  auto TU = parseOk("int (*handler)(int, int);");
  auto *V = cast<VarDecl>(TU->Decls.at(0).get());
  EXPECT_TRUE(V->getType().isFuncPtr());
  EXPECT_EQ(V->getType().NumParams, 2u);
}

TEST(Parser, VoidFunctionPointer) {
  auto TU = parseOk("void (*cb)(int);");
  auto *V = cast<VarDecl>(TU->Decls.at(0).get());
  EXPECT_TRUE(V->getType().isFuncPtr());
  EXPECT_TRUE(V->getType().ReturnsVoid);
}

TEST(Parser, FunctionPointerParam) {
  auto TU = parseOk("int apply(int (*f)(int), int x) { return 0; }");
  auto *F = cast<FunctionDecl>(TU->Decls.at(0).get());
  EXPECT_TRUE(F->getParams()[0]->getType().isFuncPtr());
  EXPECT_EQ(F->getParams()[0]->getName(), "f");
}

TEST(Parser, ExternOnVariableIsError) {
  EXPECT_GT(parseErrorCount("extern int g;"), 0u);
}

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

TEST(Parser, IfElseChain) {
  std::string Dump = dumpBody("if (1) { } else if (2) { } else { }");
  EXPECT_NE(Dump.find("IfStmt"), std::string::npos);
}

TEST(Parser, WhileLoop) {
  std::string Dump = dumpBody("while (1) { break; }");
  EXPECT_NE(Dump.find("WhileStmt"), std::string::npos);
  EXPECT_NE(Dump.find("BreakStmt"), std::string::npos);
}

TEST(Parser, ForWithAllClauses) {
  std::string Dump = dumpBody("for (int i = 0; i < 10; i = i + 1) continue;");
  EXPECT_NE(Dump.find("ForStmt"), std::string::npos);
  EXPECT_NE(Dump.find("ContinueStmt"), std::string::npos);
}

TEST(Parser, ForWithEmptyClauses) {
  std::string Dump = dumpBody("for (;;) break;");
  EXPECT_NE(Dump.find("ForStmt"), std::string::npos);
}

TEST(Parser, ForWithExpressionInit) {
  std::string Dump = dumpBody("int i; for (i = 0; i < 3; i++) { }");
  EXPECT_NE(Dump.find("ForStmt"), std::string::npos);
}

TEST(Parser, ReturnForms) {
  parseOk("void f() { return; }  int g() { return 1 + 2; }");
}

TEST(Parser, LocalDeclarations) {
  std::string Dump = dumpBody("int x; int y = 5; int a[8]; int *p;");
  EXPECT_NE(Dump.find("VarDecl x"), std::string::npos);
  EXPECT_NE(Dump.find("VarDecl y"), std::string::npos);
  EXPECT_NE(Dump.find("[8]"), std::string::npos);
}

TEST(Parser, LocalFunctionPointer) {
  std::string Dump = dumpBody("int (*h)(int); h = 0;");
  EXPECT_NE(Dump.find("VarDecl h"), std::string::npos);
}

TEST(Parser, EmptyStatement) { dumpBody(";;;"); }

TEST(Parser, NestedBlocks) {
  std::string Dump = dumpBody("{ { int x; } }");
  EXPECT_NE(Dump.find("CompoundStmt"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

TEST(Parser, PrecedenceMulOverAdd) {
  // a + b * c => (+ a (* b c))
  std::string Dump = dumpBody("return a + b * c;");
  size_t Plus = Dump.find("Binary +");
  size_t Mul = Dump.find("Binary *");
  ASSERT_NE(Plus, std::string::npos);
  ASSERT_NE(Mul, std::string::npos);
  EXPECT_LT(Plus, Mul) << "the + must be the root";
}

TEST(Parser, PrecedenceParensOverride) {
  std::string Dump = dumpBody("return (a + b) * c;");
  size_t Plus = Dump.find("Binary +");
  size_t Mul = Dump.find("Binary *");
  EXPECT_LT(Mul, Plus) << "the * must be the root";
}

TEST(Parser, ComparisonBindsLooserThanShift) {
  std::string Dump = dumpBody("return a << 1 < b;");
  size_t Lt = Dump.find("Binary <\n");
  size_t Shl = Dump.find("Binary <<");
  ASSERT_NE(Lt, std::string::npos);
  ASSERT_NE(Shl, std::string::npos);
  EXPECT_LT(Lt, Shl);
}

TEST(Parser, LogicalOperatorsNest) {
  // a || b && c => (|| a (&& b c))
  std::string Dump = dumpBody("return a || b && c;");
  size_t Or = Dump.find("Binary ||");
  size_t And = Dump.find("Binary &&");
  EXPECT_LT(Or, And);
}

TEST(Parser, AssignmentIsRightAssociative) {
  std::string Dump = dumpBody("a = b = 3;");
  // Root Assign, whose RHS is another Assign.
  size_t First = Dump.find("Assign =");
  size_t Second = Dump.find("Assign =", First + 1);
  EXPECT_NE(Second, std::string::npos);
}

TEST(Parser, CompoundAssignments) {
  std::string Dump = dumpBody("a += 1; a -= 2; a *= 3; a /= 4; a %= 5;");
  EXPECT_NE(Dump.find("Assign +="), std::string::npos);
  EXPECT_NE(Dump.find("Assign %="), std::string::npos);
}

TEST(Parser, ConditionalExpression) {
  std::string Dump = dumpBody("return a ? b : c ? d : e;");
  // Right-associative: second conditional nested in the else arm.
  size_t First = Dump.find("Conditional");
  size_t Second = Dump.find("Conditional", First + 1);
  EXPECT_NE(Second, std::string::npos);
}

TEST(Parser, UnaryOperators) {
  std::string Dump = dumpBody("return -a + ~b + !c + *p + &x;");
  EXPECT_NE(Dump.find("Unary -"), std::string::npos);
  EXPECT_NE(Dump.find("Unary ~"), std::string::npos);
  EXPECT_NE(Dump.find("Unary !"), std::string::npos);
  EXPECT_NE(Dump.find("Unary *"), std::string::npos);
  EXPECT_NE(Dump.find("Unary &"), std::string::npos);
}

TEST(Parser, IncrementDecrementForms) {
  std::string Dump = dumpBody("++a; --a; a++; a--;");
  EXPECT_NE(Dump.find("Unary pre++"), std::string::npos);
  EXPECT_NE(Dump.find("Unary pre--"), std::string::npos);
  EXPECT_NE(Dump.find("Unary post++"), std::string::npos);
  EXPECT_NE(Dump.find("Unary post--"), std::string::npos);
}

TEST(Parser, CallsAndIndexChains) {
  std::string Dump = dumpBody("return f(1, 2)[3];");
  size_t Index = Dump.find("Index");
  size_t Call = Dump.find("Call");
  ASSERT_NE(Index, std::string::npos);
  ASSERT_NE(Call, std::string::npos);
  EXPECT_LT(Index, Call) << "index applies to the call result";
}

TEST(Parser, NestedCalls) {
  std::string Dump = dumpBody("return f(g(x), h());");
  EXPECT_NE(Dump.find("Call"), std::string::npos);
}

TEST(Parser, StringAndCharLiterals) {
  std::string Dump = dumpBody("return \"abc\"[0] + 'x';");
  EXPECT_NE(Dump.find("StringLiteral \"abc\""), std::string::npos);
  EXPECT_NE(Dump.find("IntLiteral 120"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Error handling / recovery
//===----------------------------------------------------------------------===//

TEST(Parser, MissingSemicolonReported) {
  EXPECT_GT(parseErrorCount("int f() { return 1 }"), 0u);
}

TEST(Parser, MissingParenReported) {
  EXPECT_GT(parseErrorCount("int f() { if (1 { } return 0; }"), 0u);
}

TEST(Parser, GarbageAtTopLevel) {
  EXPECT_GT(parseErrorCount("+++"), 0u);
}

TEST(Parser, RecoversToNextDeclaration) {
  DiagnosticEngine Diags;
  Parser P("int f() { return &; }\nint g() { return 2; }", Diags);
  auto TU = P.parseTranslationUnit();
  EXPECT_TRUE(Diags.hasErrors());
  // g must still be parsed despite the error in f.
  EXPECT_NE(TU->findFunction("g"), nullptr);
}

TEST(Parser, FindFunctionByName) {
  auto TU = parseOk("int a() { return 0; } int b() { return 1; }");
  EXPECT_NE(TU->findFunction("a"), nullptr);
  EXPECT_NE(TU->findFunction("b"), nullptr);
  EXPECT_EQ(TU->findFunction("c"), nullptr);
}

} // namespace
