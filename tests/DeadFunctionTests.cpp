//===- tests/DeadFunctionTests.cpp - function-level dead code tests -----------===//
//
// Part of the impact-inline project, distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/DeadFunctionElimination.h"

#include "core/InlinePass.h"
#include "ir/IrVerifier.h"
#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace impact;
using test::compileOk;

namespace {

TEST(DeadFunctions, RemovesUnreachableWithoutExternals) {
  Module M = compileOk("int used() { return 1; }"
                       "int unused() { return 2; }"
                       "int main() { return used(); }");
  std::vector<FuncId> Removed = eliminateDeadFunctions(M);
  ASSERT_EQ(Removed.size(), 1u);
  EXPECT_EQ(Removed[0], M.findFunction("unused"));
  EXPECT_TRUE(M.getFunction(Removed[0]).Eliminated);
  EXPECT_TRUE(M.getFunction(Removed[0]).Blocks.empty());
  EXPECT_EQ(verifyModuleText(M), "");
  EXPECT_EQ(runProgram(M).ExitCode, 1);
}

TEST(DeadFunctions, ConservativeWithExternals) {
  // The paper's default: external calls keep everything alive.
  Module M = compileOk("extern int getchar();"
                       "int unused() { return 2; }"
                       "int main() { return getchar(); }");
  EXPECT_TRUE(eliminateDeadFunctions(M).empty());
}

TEST(DeadFunctions, OptimisticModeRemovesDespiteExternals) {
  Module M = compileOk("extern int getchar();"
                       "int unused() { return 2; }"
                       "int main() { return getchar(); }");
  CallGraphOptions Opts;
  Opts.AssumeExternalsCallBack = false;
  std::vector<FuncId> Removed = eliminateDeadFunctions(M, Opts);
  ASSERT_EQ(Removed.size(), 1u);
  EXPECT_EQ(Removed[0], M.findFunction("unused"));
}

TEST(DeadFunctions, AddressTakenFunctionsSurviveViaPointerNode) {
  Module M = compileOk("int cb(int x) { return x; }"
                       "int (*h)(int) = cb;"
                       "int main() { return h(2); }");
  EXPECT_TRUE(eliminateDeadFunctions(M).empty())
      << "cb is reachable through ###";
  EXPECT_EQ(runProgram(M).ExitCode, 2);
}

TEST(DeadFunctions, MainNeverRemoved) {
  Module M = compileOk("int main() { return 0; }");
  EXPECT_TRUE(eliminateDeadFunctions(M).empty());
}

TEST(DeadFunctions, SizeDropsAfterElimination) {
  Module M = compileOk("int big() { int i; int t; t = 0;"
                       "for (i = 0; i < 10; i++) t = t + i; return t; }"
                       "int main() { return 0; }");
  size_t Before = M.size();
  eliminateDeadFunctions(M);
  EXPECT_LT(M.size(), Before);
}

TEST(DeadFunctions, InlinedCallOnceFunctionRemovedInOptimisticWorld) {
  // The §2.3.1 scenario: after inlining a call-once function its original
  // copy becomes unreachable — removable only in a complete call graph.
  Module M = compileOk(
      "extern int getchar();"
      "int once(int x) { return x * 3; }"
      "int main() { int c; int t; t = 0; c = getchar();"
      "while (c != -1) { t = t + once(c); c = getchar(); } return t; }");
  ProfileResult P = test::profileInputs(M, {std::string(30, 'x')});
  InlineOptions Options;
  Options.MinArcWeight = 1.0;
  Options.AssumeExternalsCallBack = false; // complete-graph fiction
  InlineResult R = runInlineExpansion(M, P.Data, Options);
  EXPECT_GE(R.Expansions.size(), 1u);
  ASSERT_EQ(R.EliminatedFunctions.size(), 1u);
  EXPECT_EQ(R.EliminatedFunctions[0], M.findFunction("once"));
  EXPECT_EQ(verifyModuleText(M), "");
}

TEST(DeadFunctions, ConservativeWorldKeepsInlinedOriginal) {
  Module M = compileOk(
      "extern int getchar();"
      "int once(int x) { return x * 3; }"
      "int main() { int c; int t; t = 0; c = getchar();"
      "while (c != -1) { t = t + once(c); c = getchar(); } return t; }");
  ProfileResult P = test::profileInputs(M, {std::string(30, 'x')});
  InlineOptions Options;
  Options.MinArcWeight = 1.0; // defaults keep AssumeExternalsCallBack on
  InlineResult R = runInlineExpansion(M, P.Data, Options);
  EXPECT_GE(R.Expansions.size(), 1u);
  EXPECT_TRUE(R.EliminatedFunctions.empty())
      << "\"the original copy of an inlined call-once function can no "
         "longer be deleted\" (§2.3.1)";
}

} // namespace
