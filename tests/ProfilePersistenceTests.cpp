//===- tests/ProfilePersistenceTests.cpp - saved profiles drive replans -------===//
//
// Part of the impact-inline project, distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The persistence contract over the whole benchmark suite: measure a
/// profile, serialize it through the text format, and demand that a
/// compile driven by the reloaded profile (PipelineOptions::ProfileIn)
/// reproduces the measuring run's InlinePlan bit for bit — every site's
/// status, verdict, and decision numbers, and the ExpansionOrder — both
/// through the serial pipeline and through a 4-thread batch.
///
//===----------------------------------------------------------------------===//

#include "driver/BatchPipeline.h"
#include "driver/Pipeline.h"
#include "profile/ProfileIO.h"
#include "suite/Suite.h"

#include <gtest/gtest.h>

using namespace impact;

namespace {

class ProfilePersistence : public ::testing::TestWithParam<std::string> {};

TEST_P(ProfilePersistence, ReloadedProfileReproducesThePlan) {
  const BenchmarkSpec *B = findBenchmark(GetParam());
  ASSERT_NE(B, nullptr) << GetParam();
  std::vector<RunInput> Inputs = makeBenchmarkInputs(*B, 2);

  // Measuring run: profile on the inputs, plan, expand.
  PipelineResult Measured = runPipeline(B->Source, B->Name, Inputs);
  ASSERT_TRUE(Measured.Ok) << B->Name << ": " << Measured.Error;
  ASSERT_TRUE(Measured.outputsMatch()) << B->Name;

  // The profile round-trips bit-identically through the text format.
  ProfileData Reloaded;
  std::string Error;
  ASSERT_TRUE(loadProfile(saveProfile(Measured.ProfileBefore), Reloaded,
                          &Error))
      << B->Name << ": " << Error;
  ASSERT_EQ(Reloaded, Measured.ProfileBefore) << B->Name;

  // Serial replay: the reloaded profile must reproduce the whole plan —
  // statuses, verdicts, decision numbers, expansion order — and the same
  // final program.
  PipelineOptions Replay;
  Replay.ProfileIn = &Reloaded;
  PipelineResult Replayed = runPipeline(B->Source, B->Name, Inputs, Replay);
  ASSERT_TRUE(Replayed.Ok) << B->Name << ": " << Replayed.Error;
  EXPECT_TRUE(Replayed.OutputsBefore.empty())
      << B->Name << ": profile-in must skip the measuring runs";
  EXPECT_EQ(Replayed.Inline.Plan, Measured.Inline.Plan) << B->Name;
  EXPECT_EQ(Replayed.Inline.Plan.ExpansionOrder,
            Measured.Inline.Plan.ExpansionOrder)
      << B->Name;
  EXPECT_EQ(Replayed.Inline.Expansions, Measured.Inline.Expansions)
      << B->Name;
  // The replayed compile still re-profiles, so behaviour preservation is
  // checked against the measuring run's outputs.
  EXPECT_EQ(Replayed.OutputsAfter, Measured.OutputsAfter) << B->Name;
}

TEST_P(ProfilePersistence, ReplayMatchesThroughParallelBatch) {
  const BenchmarkSpec *B = findBenchmark(GetParam());
  ASSERT_NE(B, nullptr) << GetParam();
  std::vector<RunInput> Inputs = makeBenchmarkInputs(*B, 2);

  PipelineResult Measured = runPipeline(B->Source, B->Name, Inputs);
  ASSERT_TRUE(Measured.Ok) << B->Name << ": " << Measured.Error;

  ProfileData Reloaded;
  ASSERT_TRUE(loadProfile(saveProfile(Measured.ProfileBefore), Reloaded));

  // Two copies of the replay job through a 4-thread batch: both must
  // match the serial measuring run exactly (ProfileIn composes with the
  // batch pipeline's determinism contract).
  BatchJob Job;
  Job.Name = B->Name;
  Job.Source = B->Source;
  Job.Inputs = Inputs;
  Job.Options.ProfileIn = &Reloaded;
  std::vector<BatchJob> Jobs = {Job, Job};

  BatchOptions Batch;
  Batch.Jobs = 4;
  BatchResult R = runBatchPipeline(Jobs, Batch);
  ASSERT_TRUE(R.allOk()) << B->Name;
  for (const PipelineResult &Res : R.Results) {
    EXPECT_EQ(Res.Inline.Plan, Measured.Inline.Plan) << B->Name;
    EXPECT_EQ(Res.OutputsAfter, Measured.OutputsAfter) << B->Name;
  }
}

std::vector<std::string> suiteNames() {
  std::vector<std::string> Names;
  for (const BenchmarkSpec &B : getBenchmarkSuite())
    Names.push_back(B.Name);
  return Names;
}

INSTANTIATE_TEST_SUITE_P(Suite, ProfilePersistence,
                         ::testing::ValuesIn(suiteNames()),
                         [](const auto &Info) { return Info.param; });

} // namespace
