//===- examples/inline_explorer.cpp - inspect decisions on a benchmark --------===//
//
// Part of the impact-inline project, distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// inline_explorer: pick one of the 12 suite benchmarks and dump how the
/// inliner sees it — the weighted call graph with the $$$/### pseudo
/// nodes, the linear expansion sequence, and the per-site classification
/// with the cost-function verdicts. The paper's Tables 2-4 are aggregates
/// of exactly this information.
///
///   inline_explorer [benchmark]         (default: grep)
///   inline_explorer --dot [benchmark]   emit the call graph as Graphviz
///
//===----------------------------------------------------------------------===//

#include "callgraph/CallGraphBuilder.h"
#include "core/InlinePass.h"
#include "driver/Compilation.h"
#include "profile/Profiler.h"
#include "suite/Suite.h"

#include <cstdio>
#include <string_view>

using namespace impact;

int main(int argc, char **argv) {
  bool Dot = false;
  const char *Name = "grep";
  for (int I = 1; I < argc; ++I) {
    if (std::string_view(argv[I]) == "--dot")
      Dot = true;
    else
      Name = argv[I];
  }
  const BenchmarkSpec *B = findBenchmark(Name);
  if (!B) {
    std::fprintf(stderr, "unknown benchmark '%s'; pick one of:", Name);
    for (const BenchmarkSpec &S : getBenchmarkSuite())
      std::fprintf(stderr, " %s", S.Name.c_str());
    std::fprintf(stderr, "\n");
    return 2;
  }

  CompilationResult C = compileMiniC(B->Source, B->Name);
  if (!C.Ok) {
    std::fprintf(stderr, "%s", C.Errors.c_str());
    return 1;
  }

  if (!Dot)
    std::printf("== %s: profiling %u runs (%s)\n", B->Name.c_str(),
                B->DefaultRuns, B->InputDescription.c_str());
  ProfileResult P = profileProgram(C.M, makeBenchmarkInputs(*B));
  if (!P.allRunsOk()) {
    std::fprintf(stderr, "profiling failed: %s\n", P.Failures[0].c_str());
    return 1;
  }

  CallGraph G = buildCallGraph(C.M, &P.Data);
  std::vector<std::string> FuncNames;
  for (const Function &F : C.M.Funcs)
    FuncNames.push_back(F.Name);
  if (Dot) {
    std::printf("%s", G.dumpDot(FuncNames).c_str());
    return 0;
  }
  std::printf("\n== weighted call graph (node weight = entries/run, arc "
              "weight = invocations/run)\n");
  std::printf("%s", G.dump(FuncNames).c_str());

  InlineOptions Options;
  InlineResult R = runInlineExpansion(C.M, P.Data, Options);

  std::printf("\n== linear expansion sequence (§3.3, hottest first)\n  ");
  for (FuncId F : R.Linear.Sequence)
    if (!C.M.getFunction(F).IsExternal)
      std::printf("%s ", C.M.getFunction(F).Name.c_str());
  std::printf("\n");

  std::printf("\n== call-site classification and decisions\n");
  for (const SiteInfo &S : R.Classes.Sites) {
    const PlannedSite *Planned = R.Plan.findSite(S.SiteId);
    std::printf("  site#%-4u %-10s -> %-12s w=%9.1f  %-8s", S.SiteId,
                C.M.getFunction(S.Caller).Name.c_str(),
                S.Callee == kNoFunc
                    ? "<pointer>"
                    : C.M.getFunction(S.Callee).Name.c_str(),
                S.Weight, getSiteClassName(S.Class));
    if (S.Reason != UnsafeReason::None)
      std::printf(" (%s)", getUnsafeReasonName(S.Reason));
    if (Planned)
      std::printf("  => %s [%s]", getArcStatusName(Planned->Status),
                  getCostVerdictName(Planned->Verdict));
    std::printf("\n");
  }

  std::printf("\n== result: %zu sites expanded, %llu -> %llu IL (+%.1f%%)\n",
              R.getNumExpanded(),
              static_cast<unsigned long long>(R.SizeBefore),
              static_cast<unsigned long long>(R.SizeAfter),
              R.getCodeIncreasePercent());
  return 0;
}
