//===- examples/quickstart.cpp - five-minute tour of the public API -----------===//
//
// Part of the impact-inline project, distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Quickstart: compile a MiniC program, profile it on representative
/// inputs, run profile-guided inline expansion, and inspect the effect —
/// the paper's experiment in thirty lines of client code.
///
/// Build & run:  ./build/examples/quickstart
///
//===----------------------------------------------------------------------===//

#include "driver/Pipeline.h"
#include "ir/IrPrinter.h"

#include <cstdio>

using namespace impact;

int main() {
  // A little program in MiniC, the C subset the library compiles. It is
  // written the way the paper recommends: many small functions, with the
  // compiler left to remove the call overhead.
  const char *Source = R"(
extern int getchar();
extern int print_int(int v);
extern int putchar(int c);

int is_vowel(int c) {
  return c == 'a' || c == 'e' || c == 'i' || c == 'o' || c == 'u';
}

int score(int c) { return is_vowel(c) ? 3 : 1; }

int main() {
  int c;
  int total;
  total = 0;
  c = getchar();
  while (c != -1) {
    total = total + score(c);
    c = getchar();
  }
  print_int(total);
  putchar('\n');
  return 0;
}
)";

  // Representative inputs: profiling quality is only as good as these
  // (§1.2 — "it is critical that the inputs ... are representative").
  std::vector<RunInput> Inputs = {
      {"hello inline expansion", ""},
      {"the quick brown fox", ""},
      {"impact one compiler", ""},
  };

  // One call runs the paper's whole experiment: compile, profile, inline
  // with the profile, re-profile to measure.
  PipelineResult R = runPipeline(Source, "quickstart", Inputs);
  if (!R.Ok) {
    std::fprintf(stderr, "pipeline failed: %s\n", R.Error.c_str());
    return 1;
  }

  std::printf("program output (unchanged by inlining): %s",
              R.OutputsBefore[0].c_str());
  std::printf("outputs identical before/after: %s\n\n",
              R.outputsMatch() ? "yes" : "NO (bug!)");

  std::printf("static IL size:   %llu -> %llu (+%.1f%%)\n",
              static_cast<unsigned long long>(R.Inline.SizeBefore),
              static_cast<unsigned long long>(R.Inline.SizeAfter),
              R.getCodeIncreasePercent());
  std::printf("dynamic calls:    %.0f -> %.0f per run (-%.1f%%)\n",
              R.Before.AvgCalls, R.After.AvgCalls,
              R.getCallDecreasePercent());
  std::printf("IL's per call:    %.0f -> %.0f\n",
              R.Before.getInstrsPerCall(), R.After.getInstrsPerCall());

  std::printf("\ncall sites and their fate:\n");
  for (const PlannedSite &S : R.Inline.Plan.Sites) {
    const char *CalleeName =
        S.Callee == kNoFunc
            ? "<indirect>"
            : R.FinalModule.getFunction(S.Callee).Name.c_str();
    std::printf("  site#%u -> %-12s weight=%6.1f  %s\n", S.SiteId,
                CalleeName, S.Weight, getArcStatusName(S.Status));
  }

  std::printf("\ninlined main (note the parameter moves and the jumps "
              "that replaced call/return):\n%s",
              printFunction(R.FinalModule.getFunction(R.FinalModule.MainId))
                  .c_str());
  return 0;
}
