//===- examples/pgo_pipeline.cpp - parameterized Table-4 row ------------------===//
//
// Part of the impact-inline project, distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// pgo_pipeline: run the full profile-guided experiment on one benchmark
/// with the inliner knobs on the command line, printing a Table-4-style
/// row. Useful for exploring the tradeoff space interactively.
///
///   pgo_pipeline [benchmark] [threshold] [growth-factor] [stack-bound]
///                [--trace] [--trace-out=FILE] [--analyze[=RULES]]
///                [--profile-out=FILE] [--profile-in=FILE]
///                [--instrument=full|mincover]
///   e.g. pgo_pipeline compress 10 1.25 2048 --trace
///
/// --trace prints the planner's per-site decision table (why each call
/// site was or was not expanded, with the numbers behind the verdict);
/// --trace-out= writes the same trace as JSON lines. --profile-out= saves
/// the measured profile; --profile-in= drives the compile from a saved
/// profile without re-running the interpreter's measuring runs.
/// --analyze runs the static analyzer on the post-inline module and
/// prints every finding; RULES selects rules ("all", "dead-store",
/// "all,-uninit-read", ...). Error findings fail the pipeline.
///
//===----------------------------------------------------------------------===//

#include "analysis/Analyzer.h"
#include "driver/DecisionTrace.h"
#include "driver/Pipeline.h"
#include "profile/MinCover.h"
#include "profile/ProfileIO.h"
#include "suite/Suite.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

using namespace impact;

namespace {

bool matchOption(const char *Arg, const char *Name, std::string &Value) {
  std::string Prefix = std::string("--") + Name + "=";
  if (std::strncmp(Arg, Prefix.c_str(), Prefix.size()) != 0)
    return false;
  Value = Arg + Prefix.size();
  return true;
}

} // namespace

int main(int argc, char **argv) {
  bool PrintTrace = false;
  bool Analyze = false;
  AnalysisOptions AnalysisOpts;
  InstrumentMode Instrument = InstrumentMode::Full;
  if (const char *Env = std::getenv("IMPACT_INSTRUMENT")) {
    std::string Error;
    if (!parseInstrumentMode(Env, Instrument, &Error)) {
      std::fprintf(stderr, "IMPACT_INSTRUMENT: %s\n", Error.c_str());
      return 2;
    }
  }
  std::string TraceOutPath, ProfileOutPath, ProfileInPath;
  std::vector<const char *> Positional;
  for (int I = 1; I < argc; ++I) {
    std::string Value;
    if (std::strcmp(argv[I], "--trace") == 0)
      PrintTrace = true;
    else if (std::strcmp(argv[I], "--analyze") == 0)
      Analyze = true;
    else if (matchOption(argv[I], "analyze", Value)) {
      std::string Error;
      if (!parseAnalysisRules(Value, AnalysisOpts, &Error)) {
        std::fprintf(stderr, "--analyze: %s\n", Error.c_str());
        return 2;
      }
      Analyze = true;
    } else if (matchOption(argv[I], "instrument", Value)) {
      std::string Error;
      if (!parseInstrumentMode(Value, Instrument, &Error)) {
        std::fprintf(stderr, "--instrument: %s\n", Error.c_str());
        return 2;
      }
    } else if (matchOption(argv[I], "trace-out", Value))
      TraceOutPath = Value;
    else if (matchOption(argv[I], "profile-out", Value))
      ProfileOutPath = Value;
    else if (matchOption(argv[I], "profile-in", Value))
      ProfileInPath = Value;
    else if (std::strncmp(argv[I], "--", 2) == 0) {
      // A typo'd flag must not silently become the threshold positional.
      std::fprintf(stderr, "unknown option '%s'\n", argv[I]);
      return 2;
    } else
      Positional.push_back(argv[I]);
  }

  const char *Name = Positional.size() > 0 ? Positional[0] : "compress";
  const BenchmarkSpec *B = findBenchmark(Name);
  if (!B) {
    std::fprintf(stderr, "unknown benchmark '%s'\n", Name);
    return 2;
  }

  PipelineOptions Options;
  if (Positional.size() > 1)
    Options.Inline.MinArcWeight = std::atof(Positional[1]);
  if (Positional.size() > 2)
    Options.Inline.CodeGrowthFactor = std::atof(Positional[2]);
  if (Positional.size() > 3)
    Options.Inline.StackBound = std::atoll(Positional[3]);
  Options.EmitDecisionTrace = PrintTrace;
  Options.Analyze = Analyze;
  Options.Analysis = AnalysisOpts;
  Options.Instrument = Instrument;

  ProfileData LoadedProfile;
  if (!ProfileInPath.empty()) {
    std::string Error;
    if (!loadProfileFromFile(ProfileInPath, LoadedProfile, &Error)) {
      std::fprintf(stderr, "--profile-in: %s\n", Error.c_str());
      return 2;
    }
    Options.ProfileIn = &LoadedProfile;
  }

  std::printf("benchmark=%s threshold=%.1f growth=%.2fx stack-bound=%lld\n",
              B->Name.c_str(), Options.Inline.MinArcWeight,
              Options.Inline.CodeGrowthFactor,
              static_cast<long long>(Options.Inline.StackBound));

  PipelineResult R = runPipeline(B->Source, B->Name,
                                 makeBenchmarkInputs(*B), Options);
  if (!R.Ok) {
    std::fprintf(stderr, "pipeline failed: %s\n", R.Error.c_str());
    return 1;
  }

  if (!ProfileOutPath.empty()) {
    std::string Error;
    if (!saveProfileToFile(ProfileOutPath, R.ProfileBefore, &Error)) {
      std::fprintf(stderr, "--profile-out: %s\n", Error.c_str());
      return 1;
    }
    std::printf("profile saved to %s\n", ProfileOutPath.c_str());
  }
  if (PrintTrace)
    std::printf("%s", R.DecisionTrace.c_str());
  if (Analyze) {
    if (R.Analysis.Findings.empty())
      std::printf("analyze: clean\n");
    else
      std::printf("%s", R.Analysis.renderText().c_str());
  }
  if (!TraceOutPath.empty()) {
    std::ofstream Trace(TraceOutPath, std::ios::trunc);
    if (!Trace) {
      std::fprintf(stderr, "--trace-out: cannot open '%s'\n",
                   TraceOutPath.c_str());
      return 1;
    }
    Trace << renderDecisionTraceJson(R.Inline.Plan, R.FinalModule, B->Name);
  }

  std::printf("outputs preserved: %s\n", R.outputsMatch() ? "yes" : "NO");
  std::printf("%-10s  code inc  call dec  IL/call  CT/call\n", "benchmark");
  std::printf("%-10s  %7.1f%%  %7.1f%%  %7.0f  %7.0f\n", B->Name.c_str(),
              R.getCodeIncreasePercent(), R.getCallDecreasePercent(),
              R.After.getInstrsPerCall(),
              R.After.getControlTransfersPerCall());
  std::printf("(before: %.0f IL/call, %.0f CT/call, %.0f calls/run)\n",
              R.Before.getInstrsPerCall(),
              R.Before.getControlTransfersPerCall(), R.Before.AvgCalls);
  return 0;
}
