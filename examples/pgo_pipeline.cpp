//===- examples/pgo_pipeline.cpp - parameterized Table-4 row ------------------===//
//
// Part of the impact-inline project, distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// pgo_pipeline: run the full profile-guided experiment on one benchmark
/// with the inliner knobs on the command line, printing a Table-4-style
/// row. Useful for exploring the tradeoff space interactively.
///
///   pgo_pipeline [benchmark] [threshold] [growth-factor] [stack-bound]
///   e.g. pgo_pipeline compress 10 1.25 2048
///
//===----------------------------------------------------------------------===//

#include "driver/Pipeline.h"
#include "suite/Suite.h"

#include <cstdio>
#include <cstdlib>

using namespace impact;

int main(int argc, char **argv) {
  const char *Name = argc > 1 ? argv[1] : "compress";
  const BenchmarkSpec *B = findBenchmark(Name);
  if (!B) {
    std::fprintf(stderr, "unknown benchmark '%s'\n", Name);
    return 2;
  }

  PipelineOptions Options;
  if (argc > 2)
    Options.Inline.MinArcWeight = std::atof(argv[2]);
  if (argc > 3)
    Options.Inline.CodeGrowthFactor = std::atof(argv[3]);
  if (argc > 4)
    Options.Inline.StackBound = std::atoll(argv[4]);

  std::printf("benchmark=%s threshold=%.1f growth=%.2fx stack-bound=%lld\n",
              B->Name.c_str(), Options.Inline.MinArcWeight,
              Options.Inline.CodeGrowthFactor,
              static_cast<long long>(Options.Inline.StackBound));

  PipelineResult R = runPipeline(B->Source, B->Name,
                                 makeBenchmarkInputs(*B), Options);
  if (!R.Ok) {
    std::fprintf(stderr, "pipeline failed: %s\n", R.Error.c_str());
    return 1;
  }

  std::printf("outputs preserved: %s\n", R.outputsMatch() ? "yes" : "NO");
  std::printf("%-10s  code inc  call dec  IL/call  CT/call\n", "benchmark");
  std::printf("%-10s  %7.1f%%  %7.1f%%  %7.0f  %7.0f\n", B->Name.c_str(),
              R.getCodeIncreasePercent(), R.getCallDecreasePercent(),
              R.After.getInstrsPerCall(),
              R.After.getControlTransfersPerCall());
  std::printf("(before: %.0f IL/call, %.0f CT/call, %.0f calls/run)\n",
              R.Before.getInstrsPerCall(),
              R.Before.getControlTransfersPerCall(), R.Before.AvgCalls);
  return 0;
}
