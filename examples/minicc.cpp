//===- examples/minicc.cpp - a command-line MiniC compiler/runner -------------===//
//
// Part of the impact-inline project, distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// minicc: compile and run a MiniC file, optionally with profile-guided
/// inline expansion. A minimal but real driver tool over the library.
///
///   minicc prog.mc                 run prog.mc, stdin as program input
///   minicc a.mc b.mc c.il          compile/load several units and link
///                                  them (§2.1 link-time workflow); .il
///                                  files are pre-compiled textual IL
///   minicc --dump-il prog.mc       print the IL instead of running
///   minicc --inline prog.mc        profile on stdin, inline, re-run
///   minicc --growth=N prog.mc      inline code-size budget (default 2.0x)
///   minicc --stats prog.mc         print dynamic statistics after the run
///
//===----------------------------------------------------------------------===//

#include "core/InlinePass.h"
#include "driver/Compilation.h"
#include "driver/Linker.h"
#include "ir/IrReader.h"
#include "ir/IrPrinter.h"
#include "ir/IrVerifier.h"
#include "opt/PassManager.h"
#include "profile/Profiler.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

using namespace impact;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: minicc [--dump-il] [--inline] [--growth=N] "
               "[--stats] file.mc... [file.il...]\n"
               "  program input is read from stdin\n");
  return 2;
}

/// Loads one translation unit: MiniC source, or textual IL for files
/// ending in ".il".
bool loadUnit(const char *Path, bool RequireMain, Module &Out) {
  std::ifstream File(Path);
  if (!File) {
    std::fprintf(stderr, "minicc: cannot open %s\n", Path);
    return false;
  }
  std::stringstream Buffer;
  Buffer << File.rdbuf();
  std::string_view PathView(Path);
  if (PathView.size() > 3 &&
      PathView.substr(PathView.size() - 3) == ".il") {
    IrReadResult R = parseModuleText(Buffer.str());
    if (!R.Ok) {
      std::fprintf(stderr, "minicc: %s: %s\n", Path, R.Error.c_str());
      return false;
    }
    Out = std::move(R.M);
    return true;
  }
  CompilationResult C = compileMiniC(Buffer.str(), Path, RequireMain);
  if (!C.Ok) {
    std::fprintf(stderr, "%s", C.Errors.c_str());
    return false;
  }
  Out = std::move(C.M);
  return true;
}

} // namespace

int main(int argc, char **argv) {
  bool DumpIl = false, Inline = false, Stats = false;
  // Tool default: small demo programs need more relative headroom than
  // the suite-calibrated library default of 1.25x.
  double GrowthFactor = 2.0;
  std::vector<const char *> Paths;
  for (int I = 1; I < argc; ++I) {
    if (std::strcmp(argv[I], "--dump-il") == 0)
      DumpIl = true;
    else if (std::strcmp(argv[I], "--inline") == 0)
      Inline = true;
    else if (std::strcmp(argv[I], "--stats") == 0)
      Stats = true;
    else if (std::strncmp(argv[I], "--growth=", 9) == 0)
      GrowthFactor = std::atof(argv[I] + 9);
    else if (argv[I][0] == '-')
      return usage();
    else
      Paths.push_back(argv[I]);
  }
  if (Paths.empty())
    return usage();

  // Single file: compile directly. Several files: separate compilation
  // followed by a link step (§2.1), after which main must exist.
  CompilationResult C;
  if (Paths.size() == 1) {
    // --dump-il may target a library unit with no main (it is how .il
    // files for the link step are produced).
    if (!loadUnit(Paths[0], /*RequireMain=*/!DumpIl, C.M))
      return 1;
  } else {
    std::vector<Module> Units(Paths.size());
    for (size_t I = 0; I != Paths.size(); ++I)
      if (!loadUnit(Paths[I], /*RequireMain=*/false, Units[I]))
        return 1;
    LinkResult L = linkModules(std::move(Units), "a.out");
    if (!L.Ok) {
      std::fprintf(stderr, "minicc: link error: %s\n", L.Error.c_str());
      return 1;
    }
    if (L.M.MainId == kNoFunc) {
      std::fprintf(stderr, "minicc: linked program has no main\n");
      return 1;
    }
    C.M = std::move(L.M);
  }

  std::string Input;
  {
    char Chunk[4096];
    size_t N;
    while ((N = std::fread(Chunk, 1, sizeof(Chunk), stdin)) > 0)
      Input.append(Chunk, N);
  }

  if (Inline) {
    // The paper applies constant folding and jump optimization before
    // inline expansion; do the same so callee size estimates are honest.
    runOptimizationPipeline(C.M);
    // Profile on the given input, then expand.
    ProfileResult P = profileProgram(C.M, {RunInput{Input, ""}});
    if (!P.allRunsOk()) {
      std::fprintf(stderr, "minicc: profiling run failed: %s\n",
                   P.Failures[0].c_str());
      return 1;
    }
    InlineOptions Options;
    Options.CodeGrowthFactor = GrowthFactor;
    InlineResult R = runInlineExpansion(C.M, P.Data, Options);
    std::fprintf(stderr, "minicc: expanded %zu call sites (+%.1f%% code)\n",
                 R.getNumExpanded(), R.getCodeIncreasePercent());
    if (std::string V = verifyModuleText(C.M); !V.empty()) {
      std::fprintf(stderr, "minicc: internal error:\n%s", V.c_str());
      return 1;
    }
  }

  if (DumpIl) {
    std::printf("%s", printModule(C.M).c_str());
    return 0;
  }

  RunOptions Opts;
  Opts.Input = std::move(Input);
  ExecResult R = runProgram(C.M, Opts);
  std::fputs(R.Output.c_str(), stdout);
  if (!R.ok()) {
    std::fprintf(stderr, "minicc: runtime error: %s\n",
                 R.TrapMessage.c_str());
    return 1;
  }
  if (Stats)
    std::fprintf(stderr,
                 "minicc: %llu IL instructions, %llu calls, %llu control "
                 "transfers, peak stack %lld words\n",
                 static_cast<unsigned long long>(R.Stats.InstrCount),
                 static_cast<unsigned long long>(R.Stats.DynamicCalls),
                 static_cast<unsigned long long>(R.Stats.ControlTransfers),
                 static_cast<long long>(R.Stats.PeakStackWords));
  return static_cast<int>(R.ExitCode);
}
