//===- irgen/IrGen.cpp --------------------------------------------------------===//
//
// Part of the impact-inline project, distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "irgen/IrGen.h"

#include <cassert>

using namespace impact;

//===----------------------------------------------------------------------===//
// Module-level lowering
//===----------------------------------------------------------------------===//

Module IrGen::generate(const TranslationUnit &TU, std::string ModuleName) {
  M = Module();
  M.Name = std::move(ModuleName);
  FuncIds.clear();
  GlobalIndices.clear();
  StringPool.clear();

  declareFunctions(TU);
  declareGlobals(TU);

  for (const DeclPtr &D : TU.Decls)
    if (const auto *FD = dyn_cast<FunctionDecl>(D.get()))
      if (!FD->isExtern())
        lowerFunction(*FD);

  M.MainId = M.findFunction("main");
  return std::move(M);
}

void IrGen::declareFunctions(const TranslationUnit &TU) {
  for (const DeclPtr &D : TU.Decls) {
    const auto *FD = dyn_cast<FunctionDecl>(D.get());
    if (!FD)
      continue;
    FuncId Id = M.addFunction(FD->getName(), FD->getNumParams(),
                              FD->getReturnType().isVoid(), FD->isExtern());
    M.getFunction(Id).AddressTaken = FD->isAddressTaken();
    FuncIds[FD] = Id;
  }
}

int64_t IrGen::evaluateGlobalInit(const Expr &E) {
  if (const auto *Lit = dyn_cast<IntLiteralExpr>(&E))
    return Lit->getValue();
  if (const auto *U = dyn_cast<UnaryExpr>(&E)) {
    if (U->getOp() == UnaryOpKind::Neg)
      return -evaluateGlobalInit(*U->getOperand());
    if (U->getOp() == UnaryOpKind::AddrOf)
      return evaluateGlobalInit(*U->getOperand());
  }
  if (const auto *Ref = dyn_cast<DeclRefExpr>(&E)) {
    auto It = FuncIds.find(Ref->getDecl());
    if (It != FuncIds.end())
      return encodeFuncAddr(It->second);
  }
  // Sema already rejected non-constant initializers; be safe anyway.
  Diags.error(E.getLoc(), "unsupported constant initializer");
  return 0;
}

void IrGen::declareGlobals(const TranslationUnit &TU) {
  for (const DeclPtr &D : TU.Decls) {
    const auto *V = dyn_cast<VarDecl>(D.get());
    if (!V)
      continue;
    int64_t Size = V->isArray() ? V->getArraySize() : 1;
    std::vector<int64_t> Init;
    if (V->getInit())
      Init.push_back(evaluateGlobalInit(*V->getInit()));
    GlobalIndices[V] = M.addGlobal(V->getName(), Size, std::move(Init));
  }
}

int64_t IrGen::internString(const std::string &Text) {
  auto It = StringPool.find(Text);
  if (It != StringPool.end())
    return It->second;
  std::vector<int64_t> Init;
  Init.reserve(Text.size() + 1);
  for (char C : Text)
    Init.push_back(static_cast<unsigned char>(C));
  Init.push_back(0);
  int64_t Size = static_cast<int64_t>(Init.size());
  int64_t Index = M.addGlobal(".str" + std::to_string(StringPool.size()),
                              Size, std::move(Init));
  StringPool[Text] = Index;
  return Index;
}

//===----------------------------------------------------------------------===//
// Emission helpers
//===----------------------------------------------------------------------===//

bool IrGen::blockOpen() const {
  const BasicBlock &B = M.getFunction(CurFuncId).getBlock(CurBlock);
  return B.empty() || !B.Instrs.back().isTerminator();
}

void IrGen::emit(Instr I) {
  assert(!I.isTerminator() && "use emitTerminator for terminators");
  assert(blockOpen() && "emitting into a closed block");
  curFunc().getBlock(CurBlock).Instrs.push_back(std::move(I));
}

void IrGen::emitTerminator(Instr I) {
  assert(I.isTerminator() && "emitTerminator needs a terminator");
  assert(blockOpen() && "terminating a closed block");
  Function &F = curFunc();
  F.getBlock(CurBlock).Instrs.push_back(std::move(I));
  CurBlock = F.addBlock();
}

Reg IrGen::freshReg(std::string Name) { return curFunc().addReg(std::move(Name)); }

Reg IrGen::emitImm(int64_t Value) {
  Reg R = freshReg();
  emit(Instr::makeLdImm(R, Value));
  return R;
}

//===----------------------------------------------------------------------===//
// Function lowering
//===----------------------------------------------------------------------===//

void IrGen::lowerFunction(const FunctionDecl &FD) {
  CurFuncId = FuncIds.at(&FD);
  Function &F = curFunc();
  Locals.clear();
  BreakTargets.clear();
  ContinueTargets.clear();

  CurBlock = F.addBlock();

  // Parameters arrive in registers 0..N-1. Address-taken parameters are
  // spilled to a fresh frame slot at entry and all uses go through memory.
  for (unsigned I = 0; I != FD.getNumParams(); ++I) {
    const ParamDecl &P = *FD.getParams()[I];
    Reg ParamReg = static_cast<Reg>(I);
    if (F.RegNames.size() < F.NumRegs)
      F.RegNames.resize(F.NumRegs);
    F.RegNames[ParamReg] = P.getName();
    if (!P.isAddressTaken()) {
      Locals[&P] = LocalStorage{/*InReg=*/true, ParamReg, 0, false};
      continue;
    }
    int64_t Slot = F.FrameSize++;
    Reg AddrReg = freshReg(P.getName() + ".addr");
    emit(Instr::makeFrameAddr(AddrReg, Slot));
    emit(Instr::makeStore(AddrReg, ParamReg));
    Locals[&P] = LocalStorage{/*InReg=*/false, kNoReg, Slot, false};
  }

  lowerStmt(*FD.getBody());

  // Close any dangling block: fall-off-the-end returns 0 for non-void
  // functions (C's classic permissiveness; main relies on it).
  if (blockOpen()) {
    if (F.ReturnsVoid) {
      emitTerminator(Instr::makeRet(kNoReg));
    } else {
      Reg Zero = emitImm(0);
      emitTerminator(Instr::makeRet(Zero));
    }
  }

  // emitTerminator always opens a trailing block; drop it if empty, and
  // terminate any other open block (unreachable code paths).
  while (!F.Blocks.empty() && F.Blocks.back().empty())
    F.Blocks.pop_back();
  for (BasicBlock &B : F.Blocks) {
    if (!B.empty() && B.Instrs.back().isTerminator())
      continue;
    // Unreachable open block (e.g. code after return); make it well formed.
    if (F.ReturnsVoid) {
      B.Instrs.push_back(Instr::makeRet(kNoReg));
    } else {
      // A constant 0 return; needs a register.
      Reg R = F.addReg();
      B.Instrs.push_back(Instr::makeLdImm(R, 0));
      B.Instrs.push_back(Instr::makeRet(R));
    }
  }
  CurFuncId = kNoFunc;
}

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

void IrGen::lowerVarDecl(const VarDecl &V) {
  Function &F = curFunc();
  if (V.isArray()) {
    int64_t Offset = F.FrameSize;
    F.FrameSize += V.getArraySize();
    Locals[&V] = LocalStorage{/*InReg=*/false, kNoReg, Offset, /*IsArray=*/true};
    return;
  }
  if (V.isAddressTaken()) {
    int64_t Slot = F.FrameSize++;
    Locals[&V] = LocalStorage{/*InReg=*/false, kNoReg, Slot, false};
    if (const Expr *Init = V.getInit()) {
      Reg Value = lowerExpr(*Init);
      Reg Addr = freshReg();
      emit(Instr::makeFrameAddr(Addr, Slot));
      emit(Instr::makeStore(Addr, Value));
    }
    return;
  }
  Reg R = freshReg(V.getName());
  Locals[&V] = LocalStorage{/*InReg=*/true, R, 0, false};
  if (const Expr *Init = V.getInit()) {
    Reg Value = lowerExpr(*Init);
    emit(Instr::makeMov(R, Value));
  }
}

void IrGen::lowerStmt(const Stmt &S) {
  switch (S.getKind()) {
  case Stmt::StmtKind::Compound:
    for (const StmtPtr &Child : cast<CompoundStmt>(&S)->getBody())
      lowerStmt(*Child);
    return;
  case Stmt::StmtKind::DeclStmt:
    lowerVarDecl(*cast<DeclStmt>(&S)->getVar());
    return;
  case Stmt::StmtKind::ExprStmt:
    lowerExpr(*cast<ExprStmt>(&S)->getExpr());
    return;
  case Stmt::StmtKind::If: {
    const auto &If = *cast<IfStmt>(&S);
    Function &F = curFunc();
    Reg Cond = lowerExpr(*If.getCond());
    BlockId ThenB = F.addBlock();
    BlockId ElseB = If.getElse() ? F.addBlock() : -1;
    BlockId EndB = F.addBlock();
    emitTerminator(
        Instr::makeCondBr(Cond, ThenB, If.getElse() ? ElseB : EndB));
    CurBlock = ThenB;
    lowerStmt(*If.getThen());
    if (blockOpen())
      emitTerminator(Instr::makeJump(EndB));
    if (If.getElse()) {
      CurBlock = ElseB;
      lowerStmt(*If.getElse());
      if (blockOpen())
        emitTerminator(Instr::makeJump(EndB));
    }
    CurBlock = EndB;
    return;
  }
  case Stmt::StmtKind::While: {
    const auto &W = *cast<WhileStmt>(&S);
    Function &F = curFunc();
    BlockId CondB = F.addBlock();
    BlockId BodyB = F.addBlock();
    BlockId EndB = F.addBlock();
    emitTerminator(Instr::makeJump(CondB));
    CurBlock = CondB;
    Reg Cond = lowerExpr(*W.getCond());
    emitTerminator(Instr::makeCondBr(Cond, BodyB, EndB));
    CurBlock = BodyB;
    BreakTargets.push_back(EndB);
    ContinueTargets.push_back(CondB);
    lowerStmt(*W.getBody());
    BreakTargets.pop_back();
    ContinueTargets.pop_back();
    if (blockOpen())
      emitTerminator(Instr::makeJump(CondB));
    CurBlock = EndB;
    return;
  }
  case Stmt::StmtKind::For: {
    const auto &For = *cast<ForStmt>(&S);
    Function &F = curFunc();
    if (For.getInit())
      lowerStmt(*For.getInit());
    BlockId CondB = F.addBlock();
    BlockId BodyB = F.addBlock();
    BlockId StepB = F.addBlock();
    BlockId EndB = F.addBlock();
    emitTerminator(Instr::makeJump(CondB));
    CurBlock = CondB;
    if (For.getCond()) {
      Reg Cond = lowerExpr(*For.getCond());
      emitTerminator(Instr::makeCondBr(Cond, BodyB, EndB));
    } else {
      emitTerminator(Instr::makeJump(BodyB));
    }
    CurBlock = BodyB;
    BreakTargets.push_back(EndB);
    ContinueTargets.push_back(StepB);
    lowerStmt(*For.getBody());
    BreakTargets.pop_back();
    ContinueTargets.pop_back();
    if (blockOpen())
      emitTerminator(Instr::makeJump(StepB));
    CurBlock = StepB;
    if (For.getStep())
      lowerExpr(*For.getStep());
    emitTerminator(Instr::makeJump(CondB));
    CurBlock = EndB;
    return;
  }
  case Stmt::StmtKind::Return: {
    const auto &R = *cast<ReturnStmt>(&S);
    if (R.getValue()) {
      Reg Value = lowerExpr(*R.getValue());
      emitTerminator(Instr::makeRet(Value));
    } else {
      emitTerminator(Instr::makeRet(kNoReg));
    }
    return;
  }
  case Stmt::StmtKind::Break:
    assert(!BreakTargets.empty() && "break outside loop survived Sema");
    emitTerminator(Instr::makeJump(BreakTargets.back()));
    return;
  case Stmt::StmtKind::Continue:
    assert(!ContinueTargets.empty() && "continue outside loop survived Sema");
    emitTerminator(Instr::makeJump(ContinueTargets.back()));
    return;
  }
}

//===----------------------------------------------------------------------===//
// LValues
//===----------------------------------------------------------------------===//

IrGen::Place IrGen::lowerLValue(const Expr &E) {
  switch (E.getKind()) {
  case Expr::ExprKind::DeclRef: {
    const Decl *D = cast<DeclRefExpr>(&E)->getDecl();
    assert(D && "unresolved DeclRef survived Sema");
    auto LocalIt = Locals.find(D);
    if (LocalIt != Locals.end()) {
      const LocalStorage &Storage = LocalIt->second;
      assert(!Storage.IsArray && "array is not an assignable lvalue");
      if (Storage.InReg)
        return Place{/*IsReg=*/true, Storage.R, kNoReg};
      Reg Addr = freshReg();
      emit(Instr::makeFrameAddr(Addr, Storage.FrameOffset));
      return Place{/*IsReg=*/false, kNoReg, Addr};
    }
    auto GlobalIt = GlobalIndices.find(D);
    assert(GlobalIt != GlobalIndices.end() && "unknown variable");
    Reg Addr = freshReg();
    emit(Instr::makeGlobalAddr(Addr, GlobalIt->second));
    return Place{/*IsReg=*/false, kNoReg, Addr};
  }
  case Expr::ExprKind::Unary: {
    const auto &U = *cast<UnaryExpr>(&E);
    assert(U.getOp() == UnaryOpKind::Deref && "not an lvalue unary");
    Reg Addr = lowerExpr(*U.getOperand());
    return Place{/*IsReg=*/false, kNoReg, Addr};
  }
  case Expr::ExprKind::Index: {
    const auto &Ix = *cast<IndexExpr>(&E);
    Reg Base = lowerExpr(*Ix.getBase());
    Reg Index = lowerExpr(*Ix.getIndex());
    Reg Addr = freshReg();
    emit(Instr::makeBinary(Opcode::Add, Addr, Base, Index));
    return Place{/*IsReg=*/false, kNoReg, Addr};
  }
  default:
    assert(false && "non-lvalue expression survived Sema");
    return Place{};
  }
}

Reg IrGen::readPlace(const Place &P) {
  if (P.IsReg)
    return P.R;
  Reg Value = freshReg();
  emit(Instr::makeLoad(Value, P.AddrReg));
  return Value;
}

void IrGen::writePlace(const Place &P, Reg Value) {
  if (P.IsReg)
    emit(Instr::makeMov(P.R, Value));
  else
    emit(Instr::makeStore(P.AddrReg, Value));
}

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

Reg IrGen::lowerExpr(const Expr &E) {
  switch (E.getKind()) {
  case Expr::ExprKind::IntLiteral:
    return emitImm(cast<IntLiteralExpr>(&E)->getValue());
  case Expr::ExprKind::StringLiteral: {
    int64_t Index = internString(cast<StringLiteralExpr>(&E)->getValue());
    Reg R = freshReg();
    emit(Instr::makeGlobalAddr(R, Index));
    return R;
  }
  case Expr::ExprKind::DeclRef: {
    const Decl *D = cast<DeclRefExpr>(&E)->getDecl();
    assert(D && "unresolved DeclRef survived Sema");
    // A function name as a value.
    auto FuncIt = FuncIds.find(D);
    if (FuncIt != FuncIds.end()) {
      Reg R = freshReg();
      emit(Instr::makeFuncAddr(R, FuncIt->second));
      return R;
    }
    auto LocalIt = Locals.find(D);
    if (LocalIt != Locals.end()) {
      const LocalStorage &Storage = LocalIt->second;
      if (Storage.InReg)
        return Storage.R;
      Reg Addr = freshReg();
      emit(Instr::makeFrameAddr(Addr, Storage.FrameOffset));
      if (Storage.IsArray)
        return Addr; // arrays decay to their address
      Reg Value = freshReg();
      emit(Instr::makeLoad(Value, Addr));
      return Value;
    }
    auto GlobalIt = GlobalIndices.find(D);
    assert(GlobalIt != GlobalIndices.end() && "unknown variable");
    Reg Addr = freshReg();
    emit(Instr::makeGlobalAddr(Addr, GlobalIt->second));
    const auto *V = cast<VarDecl>(D);
    if (V->isArray())
      return Addr;
    Reg Value = freshReg();
    emit(Instr::makeLoad(Value, Addr));
    return Value;
  }
  case Expr::ExprKind::Unary:
    return lowerUnary(*cast<UnaryExpr>(&E));
  case Expr::ExprKind::Binary:
    return lowerBinary(*cast<BinaryExpr>(&E));
  case Expr::ExprKind::Assign:
    return lowerAssign(*cast<AssignExpr>(&E));
  case Expr::ExprKind::Conditional:
    return lowerConditional(*cast<ConditionalExpr>(&E));
  case Expr::ExprKind::Call:
    return lowerCall(*cast<CallExpr>(&E));
  case Expr::ExprKind::Index: {
    Place P = lowerLValue(E);
    return readPlace(P);
  }
  }
  assert(false && "unhandled expression kind");
  return kNoReg;
}

Reg IrGen::lowerUnary(const UnaryExpr &U) {
  switch (U.getOp()) {
  case UnaryOpKind::Neg: {
    Reg Src = lowerExpr(*U.getOperand());
    Reg Dst = freshReg();
    emit(Instr::makeUnary(Opcode::Neg, Dst, Src));
    return Dst;
  }
  case UnaryOpKind::BitNot: {
    Reg Src = lowerExpr(*U.getOperand());
    Reg Dst = freshReg();
    emit(Instr::makeUnary(Opcode::Not, Dst, Src));
    return Dst;
  }
  case UnaryOpKind::LogicalNot: {
    Reg Src = lowerExpr(*U.getOperand());
    Reg Zero = emitImm(0);
    Reg Dst = freshReg();
    emit(Instr::makeBinary(Opcode::CmpEq, Dst, Src, Zero));
    return Dst;
  }
  case UnaryOpKind::Deref: {
    Reg Addr = lowerExpr(*U.getOperand());
    Reg Value = freshReg();
    emit(Instr::makeLoad(Value, Addr));
    return Value;
  }
  case UnaryOpKind::AddrOf: {
    const Expr *Operand = U.getOperand();
    if (const auto *Ref = dyn_cast<DeclRefExpr>(Operand)) {
      auto FuncIt = FuncIds.find(Ref->getDecl());
      if (FuncIt != FuncIds.end()) {
        Reg R = freshReg();
        emit(Instr::makeFuncAddr(R, FuncIt->second));
        return R;
      }
    }
    Place P = lowerLValue(*Operand);
    assert(!P.IsReg && "address-taken variable must live in memory");
    return P.AddrReg;
  }
  case UnaryOpKind::PreInc:
  case UnaryOpKind::PreDec:
  case UnaryOpKind::PostInc:
  case UnaryOpKind::PostDec: {
    bool IsInc =
        U.getOp() == UnaryOpKind::PreInc || U.getOp() == UnaryOpKind::PostInc;
    bool IsPost =
        U.getOp() == UnaryOpKind::PostInc || U.getOp() == UnaryOpKind::PostDec;
    Place P = lowerLValue(*U.getOperand());
    Reg Old = readPlace(P);
    Reg Result = Old;
    if (IsPost) {
      // Preserve the pre-update value; the lvalue register itself may be
      // overwritten by writePlace.
      Result = freshReg();
      emit(Instr::makeMov(Result, Old));
    }
    Reg One = emitImm(1);
    Reg New = freshReg();
    emit(Instr::makeBinary(IsInc ? Opcode::Add : Opcode::Sub, New, Old, One));
    writePlace(P, New);
    return IsPost ? Result : New;
  }
  }
  assert(false && "unhandled unary op");
  return kNoReg;
}

Reg IrGen::lowerShortCircuit(const BinaryExpr &B) {
  // a && b  =>  result = 0; if (a) result = (b != 0);
  // a || b  =>  result = 1; if (!a) result = (b != 0);
  bool IsAnd = B.getOp() == BinaryOpKind::LogicalAnd;
  Function &F = curFunc();
  Reg Result = freshReg();
  emit(Instr::makeLdImm(Result, IsAnd ? 0 : 1));
  Reg Lhs = lowerExpr(*B.getLhs());
  BlockId RhsB = F.addBlock();
  BlockId EndB = F.addBlock();
  if (IsAnd)
    emitTerminator(Instr::makeCondBr(Lhs, RhsB, EndB));
  else
    emitTerminator(Instr::makeCondBr(Lhs, EndB, RhsB));
  CurBlock = RhsB;
  Reg Rhs = lowerExpr(*B.getRhs());
  Reg Zero = emitImm(0);
  Reg Normalized = freshReg();
  emit(Instr::makeBinary(Opcode::CmpNe, Normalized, Rhs, Zero));
  emit(Instr::makeMov(Result, Normalized));
  emitTerminator(Instr::makeJump(EndB));
  CurBlock = EndB;
  return Result;
}

Reg IrGen::lowerBinary(const BinaryExpr &B) {
  if (B.getOp() == BinaryOpKind::LogicalAnd ||
      B.getOp() == BinaryOpKind::LogicalOr)
    return lowerShortCircuit(B);

  Opcode Op = Opcode::Add;
  switch (B.getOp()) {
  case BinaryOpKind::Add:
    Op = Opcode::Add;
    break;
  case BinaryOpKind::Sub:
    Op = Opcode::Sub;
    break;
  case BinaryOpKind::Mul:
    Op = Opcode::Mul;
    break;
  case BinaryOpKind::Div:
    Op = Opcode::Div;
    break;
  case BinaryOpKind::Rem:
    Op = Opcode::Rem;
    break;
  case BinaryOpKind::Shl:
    Op = Opcode::Shl;
    break;
  case BinaryOpKind::Shr:
    Op = Opcode::Shr;
    break;
  case BinaryOpKind::BitAnd:
    Op = Opcode::And;
    break;
  case BinaryOpKind::BitOr:
    Op = Opcode::Or;
    break;
  case BinaryOpKind::BitXor:
    Op = Opcode::Xor;
    break;
  case BinaryOpKind::Lt:
    Op = Opcode::CmpLt;
    break;
  case BinaryOpKind::Le:
    Op = Opcode::CmpLe;
    break;
  case BinaryOpKind::Gt:
    Op = Opcode::CmpGt;
    break;
  case BinaryOpKind::Ge:
    Op = Opcode::CmpGe;
    break;
  case BinaryOpKind::Eq:
    Op = Opcode::CmpEq;
    break;
  case BinaryOpKind::Ne:
    Op = Opcode::CmpNe;
    break;
  case BinaryOpKind::LogicalAnd:
  case BinaryOpKind::LogicalOr:
    assert(false && "handled above");
    return kNoReg;
  }
  Reg Lhs = lowerExpr(*B.getLhs());
  Reg Rhs = lowerExpr(*B.getRhs());
  Reg Dst = freshReg();
  emit(Instr::makeBinary(Op, Dst, Lhs, Rhs));
  return Dst;
}

Reg IrGen::lowerAssign(const AssignExpr &A) {
  Place P = lowerLValue(*A.getLhs());
  Reg Rhs = lowerExpr(*A.getRhs());
  Reg Value = Rhs;
  if (A.getOp() != AssignOpKind::Assign) {
    Opcode Op = Opcode::Add;
    switch (A.getOp()) {
    case AssignOpKind::AddAssign:
      Op = Opcode::Add;
      break;
    case AssignOpKind::SubAssign:
      Op = Opcode::Sub;
      break;
    case AssignOpKind::MulAssign:
      Op = Opcode::Mul;
      break;
    case AssignOpKind::DivAssign:
      Op = Opcode::Div;
      break;
    case AssignOpKind::RemAssign:
      Op = Opcode::Rem;
      break;
    case AssignOpKind::Assign:
      assert(false && "handled above");
      return kNoReg;
    }
    Reg Old = readPlace(P);
    Value = freshReg();
    emit(Instr::makeBinary(Op, Value, Old, Rhs));
  }
  writePlace(P, Value);
  return Value;
}

Reg IrGen::lowerConditional(const ConditionalExpr &C) {
  Function &F = curFunc();
  Reg Result = freshReg();
  Reg Cond = lowerExpr(*C.getCond());
  BlockId ThenB = F.addBlock();
  BlockId ElseB = F.addBlock();
  BlockId EndB = F.addBlock();
  emitTerminator(Instr::makeCondBr(Cond, ThenB, ElseB));
  CurBlock = ThenB;
  Reg ThenValue = lowerExpr(*C.getThen());
  emit(Instr::makeMov(Result, ThenValue));
  emitTerminator(Instr::makeJump(EndB));
  CurBlock = ElseB;
  Reg ElseValue = lowerExpr(*C.getElse());
  emit(Instr::makeMov(Result, ElseValue));
  emitTerminator(Instr::makeJump(EndB));
  CurBlock = EndB;
  return Result;
}

Reg IrGen::lowerCall(const CallExpr &C) {
  std::vector<Reg> Args;
  Args.reserve(C.getArgs().size());

  if (const FunctionDecl *Callee = C.getDirectCallee()) {
    for (const ExprPtr &Arg : C.getArgs())
      Args.push_back(lowerExpr(*Arg));
    FuncId CalleeId = FuncIds.at(Callee);
    Reg Dst = Callee->getReturnType().isVoid() ? kNoReg : freshReg();
    emit(Instr::makeCall(Dst, CalleeId, std::move(Args), M.allocateSiteId()));
    return Dst;
  }

  Reg CalleeAddr = lowerExpr(*C.getCallee());
  for (const ExprPtr &Arg : C.getArgs())
    Args.push_back(lowerExpr(*Arg));
  // Indirect callees may point to int or void functions; give the call a
  // destination only when the static type says a value comes back.
  bool ReturnsVoid = C.getType().isVoid();
  Reg Dst = ReturnsVoid ? kNoReg : freshReg();
  emit(
      Instr::makeCallPtr(Dst, CalleeAddr, std::move(Args), M.allocateSiteId()));
  return Dst;
}
