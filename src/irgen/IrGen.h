//===- irgen/IrGen.h - AST to IL lowering -----------------------------------===//
//
// Part of the impact-inline project, distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#ifndef IMPACT_IRGEN_IRGEN_H
#define IMPACT_IRGEN_IRGEN_H

#include "frontend/Ast.h"
#include "ir/Ir.h"
#include "support/Diagnostics.h"

#include <string>
#include <unordered_map>

namespace impact {

/// Lowers a semantically analyzed TranslationUnit into an IL Module.
///
/// Storage policy: scalar locals and parameters live in virtual registers;
/// arrays and address-taken scalars live in the function frame. String
/// literals are interned as NUL-terminated global word arrays. Every
/// Call/CallPtr receives a module-unique site id at creation.
class IrGen {
public:
  explicit IrGen(DiagnosticEngine &Diags) : Diags(Diags) {}

  /// Lowers \p TU; returns the module. \p TU must have passed Sema.
  Module generate(const TranslationUnit &TU, std::string ModuleName);

private:
  /// Where a named local or parameter lives.
  struct LocalStorage {
    bool InReg = true;
    Reg R = kNoReg;           // when InReg
    int64_t FrameOffset = 0;  // when !InReg
    bool IsArray = false;     // frame arrays yield their address, not a load
  };

  /// An assignable location: either a register or a word address held in a
  /// register.
  struct Place {
    bool IsReg = true;
    Reg R = kNoReg;      // when IsReg
    Reg AddrReg = kNoReg; // when !IsReg
  };

  // Module-level lowering.
  void declareFunctions(const TranslationUnit &TU);
  void declareGlobals(const TranslationUnit &TU);
  int64_t evaluateGlobalInit(const Expr &E);
  void lowerFunction(const FunctionDecl &FD);

  // Statement lowering.
  void lowerStmt(const Stmt &S);
  void lowerVarDecl(const VarDecl &V);

  // Expression lowering.
  Reg lowerExpr(const Expr &E);
  Reg lowerUnary(const UnaryExpr &U);
  Reg lowerBinary(const BinaryExpr &B);
  Reg lowerShortCircuit(const BinaryExpr &B);
  Reg lowerAssign(const AssignExpr &A);
  Reg lowerConditional(const ConditionalExpr &C);
  Reg lowerCall(const CallExpr &C);
  Place lowerLValue(const Expr &E);
  Reg readPlace(const Place &P);
  void writePlace(const Place &P, Reg Value);

  /// Interns \p Text as a global word array with a trailing NUL; returns
  /// the global index.
  int64_t internString(const std::string &Text);

  // Emission helpers. emitTerminator starts a fresh block so the current
  // block is never written past its terminator.
  void emit(Instr I);
  void emitTerminator(Instr I);
  Reg emitImm(int64_t Value);
  Reg freshReg(std::string Name = std::string());

  Function &curFunc() { return M.getFunction(CurFuncId); }
  /// True if the current block already ends in a terminator (only possible
  /// right after function entry setup on an empty block).
  bool blockOpen() const;

  DiagnosticEngine &Diags;
  Module M;

  // Module-level maps.
  std::unordered_map<const Decl *, FuncId> FuncIds;
  std::unordered_map<const Decl *, int64_t> GlobalIndices;
  std::unordered_map<std::string, int64_t> StringPool;

  // Function-level state.
  FuncId CurFuncId = kNoFunc;
  BlockId CurBlock = -1;
  std::unordered_map<const Decl *, LocalStorage> Locals;
  std::vector<BlockId> BreakTargets;
  std::vector<BlockId> ContinueTargets;
};

} // namespace impact

#endif // IMPACT_IRGEN_IRGEN_H
