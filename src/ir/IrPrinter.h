//===- ir/IrPrinter.h - Textual IL dump ------------------------------------===//
//
// Part of the impact-inline project, distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#ifndef IMPACT_IR_IRPRINTER_H
#define IMPACT_IR_IRPRINTER_H

#include "ir/Ir.h"

#include <string>

namespace impact {

/// Renders one instruction ("r3 = add r1, r2", "store [r4], r5", ...).
/// \p F supplies register names when available.
std::string printInstr(const Instr &I, const Function *F = nullptr);

/// Renders a whole function with block labels.
std::string printFunction(const Function &F);

/// Renders the whole module (globals, then functions).
std::string printModule(const Module &M);

} // namespace impact

#endif // IMPACT_IR_IRPRINTER_H
