//===- ir/IrVerifier.cpp ------------------------------------------------------===//
//
// Part of the impact-inline project, distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "ir/IrVerifier.h"

#include "ir/IrPrinter.h"

#include <sstream>
#include <unordered_set>

using namespace impact;

namespace {

class Verifier {
public:
  explicit Verifier(const Module &M) : M(M) {}

  std::vector<std::string> run() {
    checkMain();
    for (size_t Index = 0; Index != M.Funcs.size(); ++Index) {
      const Function &F = M.Funcs[Index];
      if (F.Id != static_cast<FuncId>(Index))
        report(F, nullptr,
               "function id " + std::to_string(F.Id) +
                   " does not match its module index " +
                   std::to_string(Index));
      checkFunction(F);
    }
    return std::move(Violations);
  }

private:
  void report(const Function &F, const Instr *I, const std::string &Message) {
    std::ostringstream OS;
    OS << "in function '" << F.Name << "'";
    if (I)
      OS << " at '" << printInstr(*I, &F) << "'";
    OS << ": " << Message;
    Violations.push_back(OS.str());
  }

  void checkMain() {
    if (M.MainId == kNoFunc)
      return;
    if (M.MainId < 0 || static_cast<size_t>(M.MainId) >= M.Funcs.size()) {
      Violations.push_back("MainId is out of range");
      return;
    }
    const Function &Main = M.getFunction(M.MainId);
    if (Main.IsExternal)
      Violations.push_back("main function is external");
    if (Main.NumParams != 0)
      Violations.push_back("main function takes parameters");
  }

  void checkReg(const Function &F, const Instr &I, Reg R, const char *Role,
                bool Required) {
    if (R == kNoReg) {
      if (Required)
        report(F, &I, std::string("missing required ") + Role + " register");
      return;
    }
    if (R < 0 || static_cast<uint32_t>(R) >= F.NumRegs)
      report(F, &I,
             std::string(Role) + " register r" + std::to_string(R) +
                 " out of range (function has " + std::to_string(F.NumRegs) +
                 " registers)");
  }

  void checkTarget(const Function &F, const Instr &I, BlockId Target) {
    if (Target < 0 || static_cast<size_t>(Target) >= F.Blocks.size())
      report(F, &I, "branch target bb" + std::to_string(Target) +
                        " out of range");
  }

  void checkCall(const Function &F, const Instr &I) {
    if (I.SiteId == 0)
      report(F, &I, "call site id is unassigned");
    else if (!SeenSiteIds.insert(I.SiteId).second)
      report(F, &I, "duplicate call site id " + std::to_string(I.SiteId));
    if (I.SiteId >= M.NextSiteId)
      report(F, &I, "call site id was not allocated from the module counter");
    for (Reg Arg : I.Args)
      checkReg(F, I, Arg, "argument", /*Required=*/true);
    if (I.Op == Opcode::Call) {
      if (I.Callee < 0 || static_cast<size_t>(I.Callee) >= M.Funcs.size()) {
        report(F, &I, "direct call to invalid function id");
        return;
      }
      const Function &Callee = M.getFunction(I.Callee);
      if (Callee.Eliminated)
        report(F, &I, "direct call to eliminated function '" + Callee.Name +
                          "'");
      if (I.Args.size() != Callee.NumParams)
        report(F, &I, "call passes " + std::to_string(I.Args.size()) +
                          " arguments but '" + Callee.Name + "' takes " +
                          std::to_string(Callee.NumParams));
      if (Callee.ReturnsVoid && I.Dst != kNoReg)
        report(F, &I, "void call must not define a register");
    } else {
      checkReg(F, I, I.Src1, "callee address", /*Required=*/true);
    }
    checkReg(F, I, I.Dst, "destination", /*Required=*/false);
  }

  void checkInstr(const Function &F, const Instr &I, bool IsLast) {
    if (I.isTerminator() != IsLast) {
      report(F, &I, IsLast ? "block does not end in a terminator"
                           : "terminator in the middle of a block");
      return;
    }
    switch (I.Op) {
    case Opcode::Mov:
    case Opcode::Neg:
    case Opcode::Not:
      checkReg(F, I, I.Dst, "destination", true);
      checkReg(F, I, I.Src1, "source", true);
      break;
    case Opcode::LdImm:
      checkReg(F, I, I.Dst, "destination", true);
      break;
    case Opcode::Add:
    case Opcode::Sub:
    case Opcode::Mul:
    case Opcode::Div:
    case Opcode::Rem:
    case Opcode::Shl:
    case Opcode::Shr:
    case Opcode::And:
    case Opcode::Or:
    case Opcode::Xor:
    case Opcode::CmpEq:
    case Opcode::CmpNe:
    case Opcode::CmpLt:
    case Opcode::CmpLe:
    case Opcode::CmpGt:
    case Opcode::CmpGe:
      checkReg(F, I, I.Dst, "destination", true);
      checkReg(F, I, I.Src1, "lhs", true);
      checkReg(F, I, I.Src2, "rhs", true);
      break;
    case Opcode::Load:
      checkReg(F, I, I.Dst, "destination", true);
      checkReg(F, I, I.Src1, "address", true);
      break;
    case Opcode::Store:
      checkReg(F, I, I.Src1, "address", true);
      checkReg(F, I, I.Src2, "value", true);
      break;
    case Opcode::FrameAddr:
      checkReg(F, I, I.Dst, "destination", true);
      if (I.Imm < 0 || I.Imm >= F.FrameSize)
        report(F, &I, "frame offset " + std::to_string(I.Imm) +
                          " outside frame of " + std::to_string(F.FrameSize) +
                          " words");
      break;
    case Opcode::GlobalAddr:
      checkReg(F, I, I.Dst, "destination", true);
      if (I.Imm < 0 || static_cast<size_t>(I.Imm) >= M.Globals.size())
        report(F, &I, "global index out of range");
      break;
    case Opcode::FuncAddr:
      checkReg(F, I, I.Dst, "destination", true);
      if (I.Callee < 0 || static_cast<size_t>(I.Callee) >= M.Funcs.size())
        report(F, &I, "func_addr of invalid function id");
      break;
    case Opcode::Call:
    case Opcode::CallPtr:
      checkCall(F, I);
      break;
    case Opcode::Jump:
      checkTarget(F, I, I.Target);
      break;
    case Opcode::CondBr:
      checkReg(F, I, I.Src1, "condition", true);
      checkTarget(F, I, I.Target);
      checkTarget(F, I, I.Target2);
      // No producer emits this shape: IrGen always branches to distinct
      // blocks and jump optimization rewrites a degenerate cond_br into a
      // jump, so equal targets only appear in corrupted or fuzzed IL.
      if (I.Target == I.Target2)
        report(F, &I, "cond_br with identical targets (must be a jump)");
      break;
    case Opcode::Ret:
      if (F.ReturnsVoid && I.Src1 != kNoReg)
        report(F, &I, "void function returns a value");
      if (!F.ReturnsVoid && I.Src1 == kNoReg)
        report(F, &I, "non-void function returns no value");
      checkReg(F, I, I.Src1, "return value", /*Required=*/false);
      break;
    }
  }

  void checkFunction(const Function &F) {
    if (F.IsExternal && F.Eliminated)
      report(F, nullptr, "function is both external and eliminated");
    if (F.IsExternal || F.Eliminated) {
      if (!F.Blocks.empty())
        report(F, nullptr, F.IsExternal ? "external function has a body"
                                        : "eliminated function has a body");
      // Declarations carry no body state: addFunction and dead-function
      // elimination both pin these to the parameter signature.
      if (F.FrameSize != 0)
        report(F, nullptr,
               (F.IsExternal ? std::string("external")
                             : std::string("eliminated")) +
                   " function declares a frame of " +
                   std::to_string(F.FrameSize) + " words");
      if (F.NumRegs != F.NumParams)
        report(F, nullptr,
               (F.IsExternal ? std::string("external")
                             : std::string("eliminated")) +
                   " function declares " + std::to_string(F.NumRegs) +
                   " registers for " + std::to_string(F.NumParams) +
                   " parameters");
      return;
    }
    if (F.Blocks.empty()) {
      report(F, nullptr, "non-external function has no blocks");
      return;
    }
    if (F.NumParams > F.NumRegs)
      report(F, nullptr, "parameter count exceeds register count");
    if (F.FrameSize < 0)
      report(F, nullptr, "negative frame size");
    for (const BasicBlock &B : F.Blocks) {
      if (B.empty()) {
        report(F, nullptr, "empty basic block");
        continue;
      }
      for (size_t Idx = 0; Idx != B.Instrs.size(); ++Idx)
        checkInstr(F, B.Instrs[Idx], Idx + 1 == B.Instrs.size());
    }
  }

  const Module &M;
  std::vector<std::string> Violations;
  std::unordered_set<uint32_t> SeenSiteIds;
};

} // namespace

std::vector<std::string> impact::verifyModule(const Module &M) {
  return Verifier(M).run();
}

std::string impact::verifyModuleText(const Module &M) {
  std::string Text;
  for (const std::string &V : verifyModule(M)) {
    Text += V;
    Text += '\n';
  }
  return Text;
}
