//===- ir/IrVerifier.h - IL structural invariants ---------------------------===//
//
// Part of the impact-inline project, distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#ifndef IMPACT_IR_IRVERIFIER_H
#define IMPACT_IR_IRVERIFIER_H

#include "ir/Ir.h"

#include <string>
#include <vector>

namespace impact {

/// Checks structural invariants of a module and returns human-readable
/// violation messages (empty == valid). Every transformation in the
/// pipeline is expected to preserve these:
///  - every non-external function has at least one block,
///  - every block is non-empty and its only terminator is the last instr,
///  - branch targets are valid block ids,
///  - register operands are within the function's register count,
///  - parameters fit in the register count,
///  - direct call arg counts match the callee arity, and the Dst presence
///    matches the callee's return kind,
///  - FrameAddr offsets lie within the frame,
///  - GlobalAddr indices are valid,
///  - call-site ids are nonzero and unique module-wide,
///  - a non-void function only uses Ret with a value; void only without,
///  - MainId refers to a non-external, zero-arg function when set.
std::vector<std::string> verifyModule(const Module &M);

/// Convenience wrapper: joins violations with newlines (empty == valid).
std::string verifyModuleText(const Module &M);

} // namespace impact

#endif // IMPACT_IR_IRVERIFIER_H
