//===- ir/Ir.cpp ------------------------------------------------------------===//
//
// Part of the impact-inline project, distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "ir/Ir.h"

using namespace impact;

const char *impact::getOpcodeName(Opcode Op) {
  switch (Op) {
  case Opcode::Mov:
    return "mov";
  case Opcode::LdImm:
    return "ld_imm";
  case Opcode::Add:
    return "add";
  case Opcode::Sub:
    return "sub";
  case Opcode::Mul:
    return "mul";
  case Opcode::Div:
    return "div";
  case Opcode::Rem:
    return "rem";
  case Opcode::Shl:
    return "shl";
  case Opcode::Shr:
    return "shr";
  case Opcode::And:
    return "and";
  case Opcode::Or:
    return "or";
  case Opcode::Xor:
    return "xor";
  case Opcode::Neg:
    return "neg";
  case Opcode::Not:
    return "not";
  case Opcode::CmpEq:
    return "cmp_eq";
  case Opcode::CmpNe:
    return "cmp_ne";
  case Opcode::CmpLt:
    return "cmp_lt";
  case Opcode::CmpLe:
    return "cmp_le";
  case Opcode::CmpGt:
    return "cmp_gt";
  case Opcode::CmpGe:
    return "cmp_ge";
  case Opcode::Load:
    return "load";
  case Opcode::Store:
    return "store";
  case Opcode::FrameAddr:
    return "frame_addr";
  case Opcode::GlobalAddr:
    return "global_addr";
  case Opcode::FuncAddr:
    return "func_addr";
  case Opcode::Call:
    return "call";
  case Opcode::CallPtr:
    return "call_ptr";
  case Opcode::Jump:
    return "jump";
  case Opcode::CondBr:
    return "cond_br";
  case Opcode::Ret:
    return "ret";
  }
  return "?";
}

bool impact::isTerminator(Opcode Op) {
  return Op == Opcode::Jump || Op == Opcode::CondBr || Op == Opcode::Ret;
}

bool impact::isCall(Opcode Op) {
  return Op == Opcode::Call || Op == Opcode::CallPtr;
}

bool impact::isControlTransfer(Opcode Op) {
  return Op == Opcode::Jump || Op == Opcode::CondBr;
}

//===----------------------------------------------------------------------===//
// Instr factories
//===----------------------------------------------------------------------===//

Instr Instr::makeMov(Reg Dst, Reg Src) {
  Instr I;
  I.Op = Opcode::Mov;
  I.Dst = Dst;
  I.Src1 = Src;
  return I;
}

Instr Instr::makeLdImm(Reg Dst, int64_t Value) {
  Instr I;
  I.Op = Opcode::LdImm;
  I.Dst = Dst;
  I.Imm = Value;
  return I;
}

Instr Instr::makeBinary(Opcode Op, Reg Dst, Reg Lhs, Reg Rhs) {
  Instr I;
  I.Op = Op;
  I.Dst = Dst;
  I.Src1 = Lhs;
  I.Src2 = Rhs;
  return I;
}

Instr Instr::makeUnary(Opcode Op, Reg Dst, Reg Src) {
  Instr I;
  I.Op = Op;
  I.Dst = Dst;
  I.Src1 = Src;
  return I;
}

Instr Instr::makeLoad(Reg Dst, Reg Addr) {
  Instr I;
  I.Op = Opcode::Load;
  I.Dst = Dst;
  I.Src1 = Addr;
  return I;
}

Instr Instr::makeStore(Reg Addr, Reg Value) {
  Instr I;
  I.Op = Opcode::Store;
  I.Src1 = Addr;
  I.Src2 = Value;
  return I;
}

Instr Instr::makeFrameAddr(Reg Dst, int64_t Offset) {
  Instr I;
  I.Op = Opcode::FrameAddr;
  I.Dst = Dst;
  I.Imm = Offset;
  return I;
}

Instr Instr::makeGlobalAddr(Reg Dst, int64_t GlobalIndex) {
  Instr I;
  I.Op = Opcode::GlobalAddr;
  I.Dst = Dst;
  I.Imm = GlobalIndex;
  return I;
}

Instr Instr::makeFuncAddr(Reg Dst, FuncId Callee) {
  Instr I;
  I.Op = Opcode::FuncAddr;
  I.Dst = Dst;
  I.Callee = Callee;
  return I;
}

Instr Instr::makeCall(Reg Dst, FuncId Callee, std::vector<Reg> Args,
                      uint32_t SiteId) {
  Instr I;
  I.Op = Opcode::Call;
  I.Dst = Dst;
  I.Callee = Callee;
  I.Args = std::move(Args);
  I.SiteId = SiteId;
  return I;
}

Instr Instr::makeCallPtr(Reg Dst, Reg CalleeAddr, std::vector<Reg> Args,
                         uint32_t SiteId) {
  Instr I;
  I.Op = Opcode::CallPtr;
  I.Dst = Dst;
  I.Src1 = CalleeAddr;
  I.Args = std::move(Args);
  I.SiteId = SiteId;
  return I;
}

Instr Instr::makeJump(BlockId Target) {
  Instr I;
  I.Op = Opcode::Jump;
  I.Target = Target;
  return I;
}

Instr Instr::makeCondBr(Reg Cond, BlockId TrueTarget, BlockId FalseTarget) {
  Instr I;
  I.Op = Opcode::CondBr;
  I.Src1 = Cond;
  I.Target = TrueTarget;
  I.Target2 = FalseTarget;
  return I;
}

Instr Instr::makeRet(Reg Value) {
  Instr I;
  I.Op = Opcode::Ret;
  I.Src1 = Value;
  return I;
}

//===----------------------------------------------------------------------===//
// Function
//===----------------------------------------------------------------------===//

Reg Function::addReg(std::string Name) {
  Reg R = static_cast<Reg>(NumRegs++);
  if (!RegNames.empty() || !Name.empty()) {
    RegNames.resize(NumRegs);
    RegNames[R] = std::move(Name);
  }
  return R;
}

BlockId Function::addBlock() {
  Blocks.emplace_back();
  return static_cast<BlockId>(Blocks.size() - 1);
}

//===----------------------------------------------------------------------===//
// Module
//===----------------------------------------------------------------------===//

FuncId Module::findFunction(const std::string &Name) const {
  for (const Function &F : Funcs)
    if (F.Name == Name)
      return F.Id;
  return kNoFunc;
}

FuncId Module::addFunction(std::string Name, uint32_t NumParams,
                           bool ReturnsVoid, bool IsExternal) {
  Function F;
  F.Name = std::move(Name);
  F.Id = static_cast<FuncId>(Funcs.size());
  F.NumParams = NumParams;
  F.NumRegs = NumParams;
  F.ReturnsVoid = ReturnsVoid;
  F.IsExternal = IsExternal;
  Funcs.push_back(std::move(F));
  return Funcs.back().Id;
}

int64_t Module::addGlobal(std::string Name, int64_t Size,
                          std::vector<int64_t> Init) {
  assert(Size >= 1 && "global must occupy at least one word");
  assert(static_cast<int64_t>(Init.size()) <= Size &&
         "initializer longer than the global");
  Global G;
  G.Name = std::move(Name);
  G.Size = Size;
  G.Init = std::move(Init);
  Globals.push_back(std::move(G));
  return static_cast<int64_t>(Globals.size() - 1);
}

size_t Module::size() const {
  size_t N = 0;
  for (const Function &F : Funcs)
    if (!F.IsExternal)
      N += F.size();
  return N;
}

int64_t Module::getGlobalAddress(int64_t Index) const {
  assert(Index >= 0 && static_cast<size_t>(Index) < Globals.size() &&
         "global index out of range");
  int64_t Addr = kGlobalBase;
  for (int64_t I = 0; I < Index; ++I)
    Addr += Globals[I].Size;
  return Addr;
}

int64_t Module::getGlobalSegmentSize() const {
  int64_t Total = 0;
  for (const Global &G : Globals)
    Total += G.Size;
  return Total;
}
