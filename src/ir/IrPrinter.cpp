//===- ir/IrPrinter.cpp -------------------------------------------------------===//
//
// Part of the impact-inline project, distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "ir/IrPrinter.h"

#include <sstream>

using namespace impact;

namespace {

/// "r7" or "r7(name)" when the function carries a debug name.
std::string regName(Reg R, const Function *F) {
  if (R == kNoReg)
    return "<none>";
  std::string Text = "r" + std::to_string(R);
  if (F && static_cast<size_t>(R) < F->RegNames.size() &&
      !F->RegNames[R].empty())
    Text += "(" + F->RegNames[R] + ")";
  return Text;
}

} // namespace

std::string impact::printInstr(const Instr &I, const Function *F) {
  std::ostringstream OS;
  switch (I.Op) {
  case Opcode::Mov:
    OS << regName(I.Dst, F) << " = mov " << regName(I.Src1, F);
    break;
  case Opcode::LdImm:
    OS << regName(I.Dst, F) << " = ld_imm " << I.Imm;
    break;
  case Opcode::Add:
  case Opcode::Sub:
  case Opcode::Mul:
  case Opcode::Div:
  case Opcode::Rem:
  case Opcode::Shl:
  case Opcode::Shr:
  case Opcode::And:
  case Opcode::Or:
  case Opcode::Xor:
  case Opcode::CmpEq:
  case Opcode::CmpNe:
  case Opcode::CmpLt:
  case Opcode::CmpLe:
  case Opcode::CmpGt:
  case Opcode::CmpGe:
    OS << regName(I.Dst, F) << " = " << getOpcodeName(I.Op) << ' '
       << regName(I.Src1, F) << ", " << regName(I.Src2, F);
    break;
  case Opcode::Neg:
  case Opcode::Not:
    OS << regName(I.Dst, F) << " = " << getOpcodeName(I.Op) << ' '
       << regName(I.Src1, F);
    break;
  case Opcode::Load:
    OS << regName(I.Dst, F) << " = load [" << regName(I.Src1, F) << ']';
    break;
  case Opcode::Store:
    OS << "store [" << regName(I.Src1, F) << "], " << regName(I.Src2, F);
    break;
  case Opcode::FrameAddr:
    OS << regName(I.Dst, F) << " = frame_addr fp+" << I.Imm;
    break;
  case Opcode::GlobalAddr:
    OS << regName(I.Dst, F) << " = global_addr @" << I.Imm;
    break;
  case Opcode::FuncAddr:
    OS << regName(I.Dst, F) << " = func_addr f" << I.Callee;
    break;
  case Opcode::Call:
  case Opcode::CallPtr: {
    if (I.Dst != kNoReg)
      OS << regName(I.Dst, F) << " = ";
    if (I.Op == Opcode::Call)
      OS << "call f" << I.Callee << '(';
    else
      OS << "call_ptr [" << regName(I.Src1, F) << "](";
    for (size_t Idx = 0; Idx != I.Args.size(); ++Idx) {
      if (Idx)
        OS << ", ";
      OS << regName(I.Args[Idx], F);
    }
    OS << ") site#" << I.SiteId;
    break;
  }
  case Opcode::Jump:
    OS << "jump bb" << I.Target;
    break;
  case Opcode::CondBr:
    OS << "cond_br " << regName(I.Src1, F) << ", bb" << I.Target << ", bb"
       << I.Target2;
    break;
  case Opcode::Ret:
    OS << "ret";
    if (I.Src1 != kNoReg)
      OS << ' ' << regName(I.Src1, F);
    break;
  }
  return OS.str();
}

std::string impact::printFunction(const Function &F) {
  std::ostringstream OS;
  OS << (F.ReturnsVoid ? "void " : "int ") << F.Name << "(params="
     << F.NumParams << ", regs=" << F.NumRegs << ", frame=" << F.FrameSize
     << ")";
  if (F.IsExternal) {
    OS << " external\n";
    return OS.str();
  }
  if (F.Eliminated) {
    OS << " eliminated\n";
    return OS.str();
  }
  if (F.AddressTaken)
    OS << " address_taken";
  OS << " {\n";
  for (size_t B = 0; B != F.Blocks.size(); ++B) {
    OS << "bb" << B << ":\n";
    for (const Instr &I : F.Blocks[B].Instrs)
      OS << "  " << printInstr(I, &F) << '\n';
  }
  OS << "}\n";
  return OS.str();
}

std::string impact::printModule(const Module &M) {
  std::ostringstream OS;
  OS << "module " << M.Name << '\n';
  for (size_t G = 0; G != M.Globals.size(); ++G) {
    OS << "global @" << G << ' ' << M.Globals[G].Name << '['
       << M.Globals[G].Size << ']';
    if (!M.Globals[G].Init.empty()) {
      OS << " = {";
      for (size_t I = 0; I != M.Globals[G].Init.size(); ++I) {
        if (I)
          OS << ", ";
        OS << M.Globals[G].Init[I];
      }
      OS << '}';
    }
    OS << '\n';
  }
  for (const Function &F : M.Funcs)
    OS << printFunction(F);
  return OS.str();
}
