//===- ir/IrReader.h - Parse the textual IL format ------------------------===//
//
// Part of the impact-inline project, distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parses the textual module format emitted by ir/IrPrinter.h, making it a
/// real serialization format: printModule(parseModuleText(Text).M) == Text
/// for any well-formed module. This is the persistence layer behind the
/// paper's §2.1 link-time-inlining alternative (driver/Linker.h): compile
/// translation units separately, write .il text, link, then inline with
/// every function body available.
///
/// Module-level fields not present in the text are reconstructed:
/// NextSiteId becomes max(site)+1 and MainId is the function named "main".
///
//===----------------------------------------------------------------------===//

#ifndef IMPACT_IR_IRREADER_H
#define IMPACT_IR_IRREADER_H

#include "ir/Ir.h"

#include <string>
#include <string_view>

namespace impact {

/// Outcome of parsing one module text.
struct IrReadResult {
  bool Ok = false;
  /// "line N: message" on failure.
  std::string Error;
  Module M;
};

/// Parses \p Text (the printModule format).
IrReadResult parseModuleText(std::string_view Text);

} // namespace impact

#endif // IMPACT_IR_IRREADER_H
