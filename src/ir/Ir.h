//===- ir/Ir.h - The IMPACT-style intermediate language --------------------===//
//
// Part of the impact-inline project, distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A register-based three-address intermediate language ("IL", following the
/// paper's terminology). Programs are Modules of Functions; a Function is a
/// list of BasicBlocks of Instrs; the last instruction of every block is its
/// unique terminator. Virtual registers are mutable (non-SSA) and local to a
/// function. Scalar locals live in registers; arrays and address-taken
/// locals live in the function frame, addressed as FP + offset words.
///
/// Every Call/CallPtr instruction carries a module-unique SiteId — this is
/// the paper's "unique identifier" for call-graph arcs (several arcs may
/// connect the same caller/callee pair). Inline expansion clones callee
/// blocks into the caller, rebases registers and frame offsets, and rewrites
/// call/return as unconditional jumps.
///
//===----------------------------------------------------------------------===//

#ifndef IMPACT_IR_IR_H
#define IMPACT_IR_IR_H

#include <cassert>
#include <cstdint>
#include <string>
#include <vector>

namespace impact {

/// Virtual register index within a function; kNoReg means "absent".
using Reg = int32_t;
/// Basic block index within a function.
using BlockId = int32_t;
/// Function index within a module.
using FuncId = int32_t;

inline constexpr Reg kNoReg = -1;
inline constexpr FuncId kNoFunc = -1;

/// Runtime address-space layout. Memory is word-addressed (one int64 per
/// address). The segments are disjoint by construction so the interpreter
/// can classify any address.
inline constexpr int64_t kNullAddr = 0;
inline constexpr int64_t kGlobalBase = 1ll << 20;
inline constexpr int64_t kStackBase = 1ll << 28;
inline constexpr int64_t kHeapBase = 1ll << 32;
inline constexpr int64_t kFuncAddrBase = 1ll << 40;

/// Encodes function \p Id as a word value usable as a function pointer.
inline int64_t encodeFuncAddr(FuncId Id) { return kFuncAddrBase + Id; }
/// Returns the FuncId encoded in \p Addr, or kNoFunc if \p Addr is not a
/// function address.
inline FuncId decodeFuncAddr(int64_t Addr) {
  return Addr >= kFuncAddrBase ? static_cast<FuncId>(Addr - kFuncAddrBase)
                               : kNoFunc;
}

enum class Opcode {
  // Data movement.
  Mov,   // Dst = Src1
  LdImm, // Dst = Imm

  // Binary arithmetic: Dst = Src1 op Src2. Div/Rem by zero traps.
  Add,
  Sub,
  Mul,
  Div,
  Rem,
  Shl,
  Shr,
  And,
  Or,
  Xor,

  // Unary: Dst = op Src1.
  Neg,
  Not,

  // Comparisons: Dst = (Src1 op Src2) ? 1 : 0.
  CmpEq,
  CmpNe,
  CmpLt,
  CmpLe,
  CmpGt,
  CmpGe,

  // Memory.
  Load,       // Dst = Mem[Src1]
  Store,      // Mem[Src1] = Src2
  FrameAddr,  // Dst = FP + Imm
  GlobalAddr, // Dst = address of global #Imm
  FuncAddr,   // Dst = encodeFuncAddr(Callee)

  // Calls (not terminators; execution continues in the same block).
  Call,    // Dst? = Callee(Args...), unique SiteId
  CallPtr, // Dst? = (*Src1)(Args...), unique SiteId

  // Terminators.
  Jump,   // goto Target
  CondBr, // if Src1 != 0 goto Target else goto Target2
  Ret,    // return Src1 (kNoReg for void)
};

/// Returns the IL mnemonic ("add", "cond_br", ...).
const char *getOpcodeName(Opcode Op);

/// Returns true for Jump/CondBr/Ret.
bool isTerminator(Opcode Op);
/// Returns true for Call/CallPtr.
bool isCall(Opcode Op);
/// Returns true for Jump/CondBr — the paper's "control transfers other than
/// function call/return" (Table 1's control column).
bool isControlTransfer(Opcode Op);

/// One IL instruction. A flat POD-ish struct: cheap to clone, which the
/// inline expander relies on.
struct Instr {
  Opcode Op = Opcode::Mov;
  Reg Dst = kNoReg;
  Reg Src1 = kNoReg;
  Reg Src2 = kNoReg;
  /// LdImm value, FrameAddr offset, or GlobalAddr global index.
  int64_t Imm = 0;
  BlockId Target = -1;
  BlockId Target2 = -1;
  /// Direct callee (Call, FuncAddr).
  FuncId Callee = kNoFunc;
  /// Module-unique static call-site id (Call, CallPtr); 0 means unassigned.
  uint32_t SiteId = 0;
  /// Argument registers (Call, CallPtr).
  std::vector<Reg> Args;

  bool isTerminator() const { return impact::isTerminator(Op); }
  bool isCall() const { return impact::isCall(Op); }

  // Convenience factories.
  static Instr makeMov(Reg Dst, Reg Src);
  static Instr makeLdImm(Reg Dst, int64_t Value);
  static Instr makeBinary(Opcode Op, Reg Dst, Reg Lhs, Reg Rhs);
  static Instr makeUnary(Opcode Op, Reg Dst, Reg Src);
  static Instr makeLoad(Reg Dst, Reg Addr);
  static Instr makeStore(Reg Addr, Reg Value);
  static Instr makeFrameAddr(Reg Dst, int64_t Offset);
  static Instr makeGlobalAddr(Reg Dst, int64_t GlobalIndex);
  static Instr makeFuncAddr(Reg Dst, FuncId Callee);
  static Instr makeCall(Reg Dst, FuncId Callee, std::vector<Reg> Args,
                        uint32_t SiteId);
  static Instr makeCallPtr(Reg Dst, Reg CalleeAddr, std::vector<Reg> Args,
                           uint32_t SiteId);
  static Instr makeJump(BlockId Target);
  static Instr makeCondBr(Reg Cond, BlockId TrueTarget, BlockId FalseTarget);
  static Instr makeRet(Reg Value);
};

/// A straight-line sequence of instructions ending in one terminator.
struct BasicBlock {
  std::vector<Instr> Instrs;

  bool empty() const { return Instrs.empty(); }
  size_t size() const { return Instrs.size(); }

  /// The terminator; the block must be non-empty and well-formed.
  const Instr &getTerminator() const {
    assert(!Instrs.empty() && "empty block has no terminator");
    return Instrs.back();
  }
  Instr &getTerminator() {
    assert(!Instrs.empty() && "empty block has no terminator");
    return Instrs.back();
  }
};

/// An IL function. External functions (the paper's unavailable bodies) have
/// IsExternal set and no blocks; their behaviour is provided by interpreter
/// intrinsics.
struct Function {
  std::string Name;
  FuncId Id = kNoFunc;
  /// Parameters arrive in registers 0 .. NumParams-1.
  uint32_t NumParams = 0;
  bool ReturnsVoid = false;
  bool IsExternal = false;
  /// True if function-level dead code removal deleted this body (§2.6).
  /// The entry stays so FuncIds remain stable; calling it is a bug.
  bool Eliminated = false;
  /// True if the function's address is used in a computation; it is then
  /// reachable through the ### pseudo node.
  bool AddressTaken = false;
  /// Number of virtual registers (>= NumParams).
  uint32_t NumRegs = 0;
  /// Frame size in words (arrays + address-taken locals).
  int64_t FrameSize = 0;
  std::vector<BasicBlock> Blocks;
  /// Optional debug names per register ("" when unnamed). After inline
  /// expansion, names of inlined callee registers are path-qualified as
  /// "callee.name@site<id>", matching the paper's symbol-table discipline.
  std::vector<std::string> RegNames;

  /// Static code size in IL instructions — the paper's function code size
  /// metric, re-evaluated by the planner after each accepted expansion.
  size_t size() const {
    size_t N = 0;
    for (const BasicBlock &B : Blocks)
      N += B.size();
    return N;
  }

  /// Words of control stack one activation consumes: frame + register save
  /// area + linkage. This is the "summarized control stack usage" the
  /// paper's hazard check compares against its bound.
  int64_t getActivationWords() const {
    return FrameSize + static_cast<int64_t>(NumRegs) + 2;
  }

  /// Allocates a fresh virtual register, optionally named.
  Reg addReg(std::string Name = std::string());

  /// Appends a new empty block, returning its id.
  BlockId addBlock();

  BasicBlock &getBlock(BlockId Id) {
    assert(Id >= 0 && static_cast<size_t>(Id) < Blocks.size());
    return Blocks[Id];
  }
  const BasicBlock &getBlock(BlockId Id) const {
    assert(Id >= 0 && static_cast<size_t>(Id) < Blocks.size());
    return Blocks[Id];
  }
};

/// A global word array (scalars are arrays of size 1). Init values fill the
/// first Init.size() words; the rest are zero.
struct Global {
  std::string Name;
  int64_t Size = 1;
  std::vector<int64_t> Init;
};

/// A whole IL program.
struct Module {
  std::string Name;
  std::vector<Function> Funcs;
  std::vector<Global> Globals;
  FuncId MainId = kNoFunc;
  /// Next unassigned call-site id; site ids stay unique module-wide even
  /// across inline expansion (clones receive fresh ids).
  uint32_t NextSiteId = 1;

  Function &getFunction(FuncId Id) {
    assert(Id >= 0 && static_cast<size_t>(Id) < Funcs.size());
    return Funcs[Id];
  }
  const Function &getFunction(FuncId Id) const {
    assert(Id >= 0 && static_cast<size_t>(Id) < Funcs.size());
    return Funcs[Id];
  }

  /// Returns the id of the function named \p Name, or kNoFunc.
  FuncId findFunction(const std::string &Name) const;

  /// Creates a new function and returns its id.
  FuncId addFunction(std::string Name, uint32_t NumParams, bool ReturnsVoid,
                     bool IsExternal);

  /// Creates a new global and returns its index.
  int64_t addGlobal(std::string Name, int64_t Size,
                    std::vector<int64_t> Init = {});

  uint32_t allocateSiteId() { return NextSiteId++; }

  /// Total static IL size over non-external functions — the paper's program
  /// size metric (code expansion is measured on this).
  size_t size() const;

  /// Word address of global \p Index (globals are laid out contiguously
  /// from kGlobalBase in declaration order).
  int64_t getGlobalAddress(int64_t Index) const;

  /// Total words of the global segment.
  int64_t getGlobalSegmentSize() const;
};

} // namespace impact

#endif // IMPACT_IR_IR_H
