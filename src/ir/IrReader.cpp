//===- ir/IrReader.cpp -------------------------------------------------------===//
//
// Part of the impact-inline project, distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "ir/IrReader.h"

#include "support/StringUtils.h"

#include <cctype>
#include <unordered_map>

using namespace impact;

namespace {

/// Cursor over one line of text with primitive-consuming helpers. All
/// consume* methods return false (and leave a message in Error) on
/// mismatch.
class LineCursor {
public:
  LineCursor(std::string_view Line) : Text(Line) {}

  void skipSpace() {
    while (Pos < Text.size() && Text[Pos] == ' ')
      ++Pos;
  }

  bool atEnd() {
    skipSpace();
    return Pos >= Text.size();
  }

  bool consumeLiteral(std::string_view Lit) {
    skipSpace();
    if (Text.substr(Pos, Lit.size()) != Lit) {
      Error = "expected '" + std::string(Lit) + "'";
      return false;
    }
    Pos += Lit.size();
    return true;
  }

  bool peekLiteral(std::string_view Lit) {
    skipSpace();
    return Text.substr(Pos, Lit.size()) == Lit;
  }

  bool consumeInt(int64_t &Value) {
    skipSpace();
    size_t Start = Pos;
    if (Pos < Text.size() && (Text[Pos] == '-' || Text[Pos] == '+'))
      ++Pos;
    size_t DigitsStart = Pos;
    while (Pos < Text.size() &&
           std::isdigit(static_cast<unsigned char>(Text[Pos])))
      ++Pos;
    if (Pos == DigitsStart) {
      Error = "expected integer";
      Pos = Start;
      return false;
    }
    Value = std::stoll(std::string(Text.substr(Start, Pos - Start)));
    return true;
  }

  /// "rN" or "rN(name)"; records the name into \p Name when present.
  bool consumeReg(Reg &R, std::string *Name = nullptr) {
    if (!consumeLiteral("r"))
      return false;
    int64_t Value;
    if (!consumeInt(Value))
      return false;
    R = static_cast<Reg>(Value);
    if (Pos < Text.size() && Text[Pos] == '(') {
      size_t Close = Text.find(')', Pos);
      if (Close == std::string_view::npos) {
        Error = "unterminated register name";
        return false;
      }
      if (Name)
        *Name = std::string(Text.substr(Pos + 1, Close - Pos - 1));
      Pos = Close + 1;
    }
    return true;
  }

  /// An identifier-ish word (function/global names, mnemonics).
  bool consumeWord(std::string &Word) {
    skipSpace();
    size_t Start = Pos;
    while (Pos < Text.size() && Text[Pos] != ' ' && Text[Pos] != '(' &&
           Text[Pos] != ',' && Text[Pos] != '[' && Text[Pos] != ']' &&
           Text[Pos] != ')')
      ++Pos;
    if (Pos == Start) {
      Error = "expected word";
      return false;
    }
    Word = std::string(Text.substr(Start, Pos - Start));
    return true;
  }

  std::string Error;

private:
  std::string_view Text;
  size_t Pos = 0;
};

/// Maps the binary/unary mnemonics the printer emits.
const std::unordered_map<std::string, Opcode> &getMnemonics() {
  static const std::unordered_map<std::string, Opcode> Map = {
      {"add", Opcode::Add},       {"sub", Opcode::Sub},
      {"mul", Opcode::Mul},       {"div", Opcode::Div},
      {"rem", Opcode::Rem},       {"shl", Opcode::Shl},
      {"shr", Opcode::Shr},       {"and", Opcode::And},
      {"or", Opcode::Or},         {"xor", Opcode::Xor},
      {"cmp_eq", Opcode::CmpEq},  {"cmp_ne", Opcode::CmpNe},
      {"cmp_lt", Opcode::CmpLt},  {"cmp_le", Opcode::CmpLe},
      {"cmp_gt", Opcode::CmpGt},  {"cmp_ge", Opcode::CmpGe},
      {"neg", Opcode::Neg},       {"not", Opcode::Not},
  };
  return Map;
}

bool isBinary(Opcode Op) { return Op != Opcode::Neg && Op != Opcode::Not; }

class ModuleParser {
public:
  explicit ModuleParser(std::string_view Text) : Text(Text) {}

  IrReadResult run() {
    IrReadResult Result;
    if (!parse()) {
      Result.Error = "line " + std::to_string(LineNo) + ": " + Error;
      return Result;
    }
    // Reconstruct derived module fields.
    uint32_t MaxSite = 0;
    for (const Function &F : M.Funcs)
      for (const BasicBlock &B : F.Blocks)
        for (const Instr &I : B.Instrs)
          if (I.isCall() && I.SiteId > MaxSite)
            MaxSite = I.SiteId;
    M.NextSiteId = MaxSite + 1;
    M.MainId = M.findFunction("main");
    Result.Ok = true;
    Result.M = std::move(M);
    return Result;
  }

private:
  bool fail(std::string Message) {
    if (Error.empty())
      Error = std::move(Message);
    return false;
  }

  /// Fetches the next line; returns false at end of input.
  bool nextLine(std::string_view &Line) {
    if (Cursor >= Text.size())
      return false;
    size_t End = Text.find('\n', Cursor);
    if (End == std::string_view::npos)
      End = Text.size();
    Line = Text.substr(Cursor, End - Cursor);
    Cursor = End + 1;
    ++LineNo;
    return true;
  }

  bool parse() {
    std::string_view Line;
    if (!nextLine(Line) || !startsWith(Line, "module "))
      return fail("expected 'module <name>' header");
    M.Name = std::string(trimString(Line.substr(7)));

    while (nextLine(Line)) {
      std::string_view Trimmed = trimString(Line);
      if (Trimmed.empty())
        continue;
      if (startsWith(Trimmed, "global @")) {
        if (!parseGlobal(Trimmed))
          return false;
      } else if (startsWith(Trimmed, "int ") ||
                 startsWith(Trimmed, "void ")) {
        if (!parseFunction(Trimmed))
          return false;
      } else {
        return fail("unexpected top-level line");
      }
    }
    return true;
  }

  bool parseGlobal(std::string_view Line) {
    LineCursor C(Line);
    int64_t Index, Size;
    std::string Name;
    if (!C.consumeLiteral("global @") || !C.consumeInt(Index) ||
        !C.consumeWord(Name) || !C.consumeLiteral("[") ||
        !C.consumeInt(Size) || !C.consumeLiteral("]"))
      return fail(C.Error);
    std::vector<int64_t> Init;
    if (C.peekLiteral("=")) {
      if (!C.consumeLiteral("=") || !C.consumeLiteral("{"))
        return fail(C.Error);
      while (!C.peekLiteral("}")) {
        int64_t V;
        if (!C.consumeInt(V))
          return fail(C.Error);
        Init.push_back(V);
        if (C.peekLiteral(","))
          C.consumeLiteral(",");
      }
    }
    if (static_cast<size_t>(Index) != M.Globals.size())
      return fail("global indices must be dense and in order");
    M.addGlobal(std::move(Name), Size, std::move(Init));
    return true;
  }

  bool parseFunction(std::string_view Header) {
    LineCursor C(Header);
    bool ReturnsVoid = C.peekLiteral("void");
    if (!C.consumeLiteral(ReturnsVoid ? "void" : "int"))
      return fail(C.Error);
    std::string Name;
    int64_t Params, Regs, Frame;
    if (!C.consumeWord(Name) || !C.consumeLiteral("(params=") ||
        !C.consumeInt(Params) || !C.consumeLiteral(", regs=") ||
        !C.consumeInt(Regs) || !C.consumeLiteral(", frame=") ||
        !C.consumeInt(Frame) || !C.consumeLiteral(")"))
      return fail(C.Error);

    bool External = C.peekLiteral("external");
    bool Eliminated = !External && C.peekLiteral("eliminated");
    FuncId Id = M.addFunction(std::move(Name),
                              static_cast<uint32_t>(Params), ReturnsVoid,
                              External);
    Function &F = M.getFunction(Id);
    F.Eliminated = Eliminated;
    if (External || Eliminated)
      return true;

    F.AddressTaken = C.peekLiteral("address_taken");
    F.NumRegs = static_cast<uint32_t>(Regs);
    F.FrameSize = Frame;

    // Body: "bbN:" labels and instruction lines until "}".
    std::string_view Line;
    BlockId Current = -1;
    while (true) {
      if (!nextLine(Line))
        return fail("unterminated function body");
      std::string_view Trimmed = trimString(Line);
      if (Trimmed == "}")
        break;
      if (Trimmed.empty())
        continue;
      if (startsWith(Trimmed, "bb") && Trimmed.back() == ':') {
        Current = F.addBlock();
        continue;
      }
      if (Current < 0)
        return fail("instruction before the first block label");
      Instr I;
      if (!parseInstr(Trimmed, F, I))
        return false;
      F.getBlock(Current).Instrs.push_back(std::move(I));
    }
    return true;
  }

  /// Records a parsed register name into the function's name table.
  void noteRegName(Function &F, Reg R, const std::string &Name) {
    if (Name.empty() || R == kNoReg)
      return;
    if (F.RegNames.size() < F.NumRegs)
      F.RegNames.resize(F.NumRegs);
    if (static_cast<size_t>(R) < F.RegNames.size())
      F.RegNames[static_cast<size_t>(R)] = Name;
  }

  bool parseCallTail(LineCursor &C, Function &F, Instr &I) {
    // "(" args ")" " site#N"
    if (!C.consumeLiteral("("))
      return fail(C.Error);
    while (!C.peekLiteral(")")) {
      Reg A;
      std::string AName;
      if (!C.consumeReg(A, &AName))
        return fail(C.Error);
      noteRegName(F, A, AName);
      I.Args.push_back(A);
      if (C.peekLiteral(","))
        C.consumeLiteral(",");
    }
    int64_t Site;
    if (!C.consumeLiteral(") site#") || !C.consumeInt(Site))
      return fail(C.Error);
    I.SiteId = static_cast<uint32_t>(Site);
    return true;
  }

  bool parseInstr(std::string_view Line, Function &F, Instr &I) {
    LineCursor C(Line);

    // Terminators and store first: they do not start with a register def.
    if (C.peekLiteral("jump bb")) {
      int64_t T;
      if (!C.consumeLiteral("jump bb") || !C.consumeInt(T))
        return fail(C.Error);
      I = Instr::makeJump(static_cast<BlockId>(T));
      return true;
    }
    if (C.peekLiteral("cond_br ")) {
      Reg Cond;
      std::string Name;
      int64_t T1, T2;
      if (!C.consumeLiteral("cond_br") || !C.consumeReg(Cond, &Name) ||
          !C.consumeLiteral(", bb") || !C.consumeInt(T1) ||
          !C.consumeLiteral(", bb") || !C.consumeInt(T2))
        return fail(C.Error);
      noteRegName(F, Cond, Name);
      I = Instr::makeCondBr(Cond, static_cast<BlockId>(T1),
                            static_cast<BlockId>(T2));
      return true;
    }
    if (C.peekLiteral("ret")) {
      C.consumeLiteral("ret");
      if (C.atEnd()) {
        I = Instr::makeRet(kNoReg);
        return true;
      }
      Reg V;
      std::string Name;
      if (!C.consumeReg(V, &Name))
        return fail(C.Error);
      noteRegName(F, V, Name);
      I = Instr::makeRet(V);
      return true;
    }
    if (C.peekLiteral("store [")) {
      Reg Addr, Value;
      std::string AName, VName;
      if (!C.consumeLiteral("store [") || !C.consumeReg(Addr, &AName) ||
          !C.consumeLiteral("],") || !C.consumeReg(Value, &VName))
        return fail(C.Error);
      noteRegName(F, Addr, AName);
      noteRegName(F, Value, VName);
      I = Instr::makeStore(Addr, Value);
      return true;
    }
    if (C.peekLiteral("call_ptr [") || C.peekLiteral("call f")) {
      // Void calls: no destination register.
      return parseCallLike(C, F, I, kNoReg);
    }

    // "rD = ..." forms.
    Reg Dst;
    std::string DstName;
    if (!C.consumeReg(Dst, &DstName))
      return fail(C.Error);
    noteRegName(F, Dst, DstName);
    if (!C.consumeLiteral("="))
      return fail(C.Error);

    if (C.peekLiteral("call f") || C.peekLiteral("call_ptr ["))
      return parseCallLike(C, F, I, Dst);

    std::string Op;
    if (!C.consumeWord(Op))
      return fail(C.Error);

    if (Op == "mov") {
      Reg Src;
      std::string Name;
      if (!C.consumeReg(Src, &Name))
        return fail(C.Error);
      noteRegName(F, Src, Name);
      I = Instr::makeMov(Dst, Src);
      return true;
    }
    if (Op == "ld_imm") {
      int64_t V;
      if (!C.consumeInt(V))
        return fail(C.Error);
      I = Instr::makeLdImm(Dst, V);
      return true;
    }
    if (Op == "load") {
      Reg Addr;
      std::string Name;
      if (!C.consumeLiteral("[") || !C.consumeReg(Addr, &Name) ||
          !C.consumeLiteral("]"))
        return fail(C.Error);
      noteRegName(F, Addr, Name);
      I = Instr::makeLoad(Dst, Addr);
      return true;
    }
    if (Op == "frame_addr") {
      int64_t Offset;
      if (!C.consumeLiteral("fp+") || !C.consumeInt(Offset))
        return fail(C.Error);
      I = Instr::makeFrameAddr(Dst, Offset);
      return true;
    }
    if (Op == "global_addr") {
      int64_t Index;
      if (!C.consumeLiteral("@") || !C.consumeInt(Index))
        return fail(C.Error);
      I = Instr::makeGlobalAddr(Dst, Index);
      return true;
    }
    if (Op == "func_addr") {
      int64_t Callee;
      if (!C.consumeLiteral("f") || !C.consumeInt(Callee))
        return fail(C.Error);
      I = Instr::makeFuncAddr(Dst, static_cast<FuncId>(Callee));
      return true;
    }

    auto It = getMnemonics().find(Op);
    if (It == getMnemonics().end())
      return fail("unknown mnemonic '" + Op + "'");
    Reg Lhs;
    std::string LName;
    if (!C.consumeReg(Lhs, &LName))
      return fail(C.Error);
    noteRegName(F, Lhs, LName);
    if (isBinary(It->second)) {
      Reg Rhs;
      std::string RName;
      if (!C.consumeLiteral(",") || !C.consumeReg(Rhs, &RName))
        return fail(C.Error);
      noteRegName(F, Rhs, RName);
      I = Instr::makeBinary(It->second, Dst, Lhs, Rhs);
    } else {
      I = Instr::makeUnary(It->second, Dst, Lhs);
    }
    return true;
  }

  bool parseCallLike(LineCursor &C, Function &F, Instr &I, Reg Dst) {
    if (C.peekLiteral("call f")) {
      int64_t Callee;
      if (!C.consumeLiteral("call f") || !C.consumeInt(Callee))
        return fail(C.Error);
      I = Instr::makeCall(Dst, static_cast<FuncId>(Callee), {}, 0);
      return parseCallTail(C, F, I);
    }
    Reg Addr;
    std::string Name;
    if (!C.consumeLiteral("call_ptr [") || !C.consumeReg(Addr, &Name) ||
        !C.consumeLiteral("]"))
      return fail(C.Error);
    noteRegName(F, Addr, Name);
    I = Instr::makeCallPtr(Dst, Addr, {}, 0);
    return parseCallTail(C, F, I);
  }

  std::string_view Text;
  size_t Cursor = 0;
  unsigned LineNo = 0;
  std::string Error;
  Module M;
};

} // namespace

IrReadResult impact::parseModuleText(std::string_view Text) {
  return ModuleParser(Text).run();
}
