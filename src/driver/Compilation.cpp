//===- driver/Compilation.cpp --------------------------------------------------===//
//
// Part of the impact-inline project, distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "driver/Compilation.h"

#include "frontend/Parser.h"
#include "frontend/Sema.h"
#include "irgen/IrGen.h"
#include "support/SourceManager.h"

using namespace impact;

CompilationResult impact::compileMiniC(std::string_view Source,
                                       std::string Name, bool RequireMain) {
  CompilationResult Result;
  SourceManager SM(Name, std::string(Source));
  DiagnosticEngine Diags;

  Parser P(SM.getText(), Diags);
  std::unique_ptr<TranslationUnit> TU = P.parseTranslationUnit();
  if (Diags.hasErrors()) {
    Result.Errors = Diags.render(SM);
    return Result;
  }

  SemaOptions SOpts;
  SOpts.RequireMain = RequireMain;
  Sema S(Diags, SOpts);
  if (!S.analyze(*TU)) {
    Result.Errors = Diags.render(SM);
    return Result;
  }

  IrGen Gen(Diags);
  Result.M = Gen.generate(*TU, std::move(Name));
  if (Diags.hasErrors()) {
    Result.Errors = Diags.render(SM);
    return Result;
  }
  Result.Ok = true;
  return Result;
}
