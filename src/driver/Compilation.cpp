//===- driver/Compilation.cpp --------------------------------------------------===//
//
// Part of the impact-inline project, distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "driver/Compilation.h"

#include "frontend/Parser.h"
#include "frontend/Sema.h"
#include "irgen/IrGen.h"
#include "support/FaultInjection.h"
#include "support/SourceManager.h"

using namespace impact;

namespace {

/// Consults \p Faults at a frontend boundary. A diag-kind rule reports an
/// injected error (so the stage fails the same clean way a real
/// diagnostic does); throw/oom kinds propagate out of reach().
void reachCompileSite(FaultSession *Faults, const char *Site,
                      DiagnosticEngine &Diags) {
  if (!Faults)
    return;
  if (Faults->reach(Site) == FaultKind::Diagnostic)
    Diags.error(SourceLoc(), std::string("injected diagnostic at ") + Site);
}

} // namespace

CompilationResult impact::compileMiniC(std::string_view Source,
                                       std::string Name, bool RequireMain,
                                       FaultSession *Faults) {
  CompilationResult Result;
  SourceManager SM(Name, std::string(Source));
  DiagnosticEngine Diags;

  reachCompileSite(Faults, "parse", Diags);
  Parser P(SM.getText(), Diags);
  std::unique_ptr<TranslationUnit> TU = P.parseTranslationUnit();
  if (Diags.hasErrors()) {
    Result.Errors = Diags.render(SM);
    return Result;
  }

  reachCompileSite(Faults, "sema", Diags);
  SemaOptions SOpts;
  SOpts.RequireMain = RequireMain;
  Sema S(Diags, SOpts);
  if (Diags.hasErrors() || !S.analyze(*TU)) {
    Result.Errors = Diags.render(SM);
    return Result;
  }

  reachCompileSite(Faults, "irgen", Diags);
  IrGen Gen(Diags);
  Result.M = Gen.generate(*TU, std::move(Name));
  if (Diags.hasErrors()) {
    Result.Errors = Diags.render(SM);
    return Result;
  }
  Result.Ok = true;
  return Result;
}
