//===- driver/BatchPipeline.h - Parallel whole-suite experiments -----------===//
//
// Part of the impact-inline project, distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runs many independent compile→profile→inline→re-profile pipelines
/// concurrently on a work-stealing thread pool, sharing one sharded
/// function-definition cache between all jobs. This is the batch form of
/// the paper's §4 experiment: every table and ablation iterates the same
/// 12-program suite, so the suite is the natural unit of parallelism.
///
/// Determinism contract: each job is self-contained (own module, own
/// profile, fixed linearization seed) and the shared cache only ever
/// returns bodies identical to what recomputation would produce, so
/// `runBatchPipeline(Jobs, N threads)` yields results bit-identical to
/// running each job through `runPipeline` serially — enforced by the
/// ParallelDeterminism property test. Only the timing fields and cache
/// hit/miss split may differ between runs.
///
/// Failure containment: one unit failing — malformed source, a verifier
/// violation, an interpreter trap or step-limit exhaustion, a thrown
/// exception, or an injected fault (support/FaultInjection.h) — is
/// quarantined as a structured UnitFailure on its own result slot; every
/// other job runs to completion and stays bit-identical to a batch where
/// the failing unit never existed. Failed units insert nothing into the
/// shared function-definition cache past the point of failure, so the
/// cache is never poisoned across jobs.
///
//===----------------------------------------------------------------------===//

#ifndef IMPACT_DRIVER_BATCHPIPELINE_H
#define IMPACT_DRIVER_BATCHPIPELINE_H

#include "driver/FunctionCache.h"
#include "driver/Pipeline.h"

#include <string>
#include <vector>

namespace impact {

/// One program's experiment: source, inputs, and the full pipeline knobs.
/// Jobs carry their own options so a batch can mix configurations (an
/// ablation sweep batches all its points at once).
///
/// A job normally compiles Source from scratch. The compile server
/// instead dispatches already-compiled (and, for multi-unit programs,
/// linked) modules: set PrecompiledModule/HasModule and leave Source
/// empty. Because the frontend is deterministic, a precompiled-module job
/// is bit-identical to a source job of the same program — the wiring
/// test in the server tier pins that.
struct BatchJob {
  std::string Name;
  std::string Source;
  std::vector<RunInput> Inputs;
  PipelineOptions Options;
  /// When HasModule, the pipeline starts at the module (verify/pre-opt)
  /// stage on a copy of this module and Source is ignored.
  Module PrecompiledModule;
  bool HasModule = false;
};

struct BatchOptions {
  /// Worker threads; 0 = one per hardware thread.
  unsigned Jobs = 0;
  /// Share a function-definition cache across the batch's pre-opt stages.
  bool UseDefinitionCache = true;
  /// Use this cache instead of a batch-local one, e.g. to persist entries
  /// across the successive batches of an ablation sweep. Overrides
  /// UseDefinitionCache.
  FunctionDefinitionCache *ExternalCache = nullptr;
};

struct BatchResult {
  /// One result per job, in job order (independent of completion order).
  std::vector<PipelineResult> Results;
  /// Wall time of the whole batch (the parallel speedup numerator is the
  /// sum of per-job Stats.getTotalSeconds()).
  double WallSeconds = 0.0;
  unsigned ThreadsUsed = 1;
  /// Per-job stats summed: cpu seconds per phase, cache hits/misses.
  PipelineStats Aggregate;
  /// Cache-lifetime counters (== Aggregate's hit/miss for a batch-local
  /// cache; larger for an external cache reused across batches).
  FunctionCacheStats Cache;
  /// Quarantine records of every failed job, in job order (one per
  /// failed Results slot; empty when allOk()).
  std::vector<UnitFailure> Failures;

  bool allOk() const;
  /// Index of the first failed job, or -1.
  int firstFailure() const;
  /// Sum of per-job pipeline cpu time — what a serial run would cost.
  double getCpuSeconds() const { return Aggregate.getTotalSeconds(); }
  /// CPU-seconds / wall-seconds: the realized parallelism.
  double getSpeedup() const {
    return WallSeconds == 0.0 ? 0.0 : getCpuSeconds() / WallSeconds;
  }
};

/// Runs every job's pipeline, \p Options.Jobs at a time.
BatchResult runBatchPipeline(const std::vector<BatchJob> &Jobs,
                             const BatchOptions &Options = BatchOptions());

/// Renders the per-job phase-timing table plus the batch summary (threads,
/// wall vs cpu time, cache hit rate) with driver/Report's TableWriter.
std::string renderBatchReport(const std::vector<BatchJob> &Jobs,
                              const BatchResult &Result);

} // namespace impact

#endif // IMPACT_DRIVER_BATCHPIPELINE_H
