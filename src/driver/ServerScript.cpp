//===- driver/ServerScript.cpp ---------------------------------------------===//
//
// Part of the impact-inline project, distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "driver/ServerScript.h"

#include "driver/CompileServer.h"
#include "suite/Suite.h"
#include "support/StringUtils.h"

#include <charconv>
#include <map>

using namespace impact;

namespace {

/// Whitespace-separated words of one command line.
std::vector<std::string> words(std::string_view Line) {
  std::vector<std::string> Out;
  size_t I = 0;
  while (I < Line.size()) {
    while (I < Line.size() && (Line[I] == ' ' || Line[I] == '\t'))
      ++I;
    size_t Start = I;
    while (I < Line.size() && Line[I] != ' ' && Line[I] != '\t')
      ++I;
    if (I > Start)
      Out.emplace_back(Line.substr(Start, I - Start));
  }
  return Out;
}

std::string joinNames(const std::vector<std::string> &Names) {
  std::string Out;
  for (const std::string &N : Names) {
    if (!Out.empty())
      Out += ",";
    Out += N;
  }
  return Out;
}

struct Executor {
  CompileServer &Server;
  std::vector<std::string_view> Lines;
  size_t Next = 0;
  ServerScriptResult Result;

  explicit Executor(CompileServer &Server, std::string_view Script)
      : Server(Server), Lines(splitString(Script, '\n')) {}

  void say(const std::string &Line) { Result.Transcript += Line + "\n"; }

  bool parseError(size_t LineNo, const std::string &Message) {
    Result.Ok = false;
    Result.Error = "line " + std::to_string(LineNo + 1) + ": " + Message;
    return false;
  }

  /// Collects heredoc body lines until the exact \p Delim line.
  bool readHeredoc(size_t CommandLine, const std::string &Delim,
                   std::string &Body) {
    Body.clear();
    while (Next < Lines.size()) {
      std::string_view Line = Lines[Next++];
      if (Line == Delim)
        return true;
      Body.append(Line);
      Body.push_back('\n');
    }
    return parseError(CommandLine, "heredoc not terminated by '" + Delim +
                                       "'");
  }

  bool run() {
    Result.Ok = true;
    while (Next < Lines.size()) {
      size_t LineNo = Next;
      std::string_view Raw = Lines[Next++];
      std::string_view Line = trimString(Raw);
      if (Line.empty() || Line.front() == '#')
        continue;
      std::vector<std::string> W = words(Line);
      const std::string &Verb = W[0];
      std::string Error;

      if (Verb == "unit" || Verb == "replace") {
        if (W.size() != 3 || !startsWith(W[2], "<<") || W[2].size() <= 2)
          return parseError(LineNo, Verb + " needs '<name> <<DELIM'");
        std::string Source;
        if (!readHeredoc(LineNo, W[2].substr(2), Source))
          return false;
        bool Ok = Verb == "unit"
                      ? Server.addUnit(W[1], Source, &Error)
                      : Server.replaceUnit(W[1], std::move(Source), &Error);
        if (!Ok)
          say("[error] " + Error);
        else
          say("[" + Verb + "] " + W[1] + " (" +
              std::to_string(Source.size()) + " bytes)");
      } else if (Verb == "remove") {
        if (W.size() != 2)
          return parseError(LineNo, "remove needs '<name>'");
        if (!Server.removeUnit(W[1], &Error))
          say("[error] " + Error);
        else
          say("[remove] " + W[1]);
      } else if (Verb == "program") {
        if (W.size() < 4 || W[2] != "=")
          return parseError(LineNo, "program needs '<name> = <unit>...'");
        std::vector<std::string> UnitNames(W.begin() + 3, W.end());
        if (!Server.defineProgram(W[1], UnitNames, {}, &Error))
          say("[error] " + Error);
        else
          say("[program] " + W[1] + " = " + joinNames(UnitNames));
      } else if (Verb == "input") {
        if (W.size() < 2)
          return parseError(LineNo, "input needs '<program> [text]'");
        // The input text is everything after the program name, verbatim
        // (minus the surrounding whitespace trim).
        size_t After = Line.find(W[1]) + W[1].size();
        std::string Text(trimString(Line.substr(After)));
        std::vector<RunInput> Inputs;
        if (!appendInput(W[1], Text, Inputs, Error))
          say("[error] " + Error);
        else
          say("[input] " + W[1] + " run " + std::to_string(Inputs.size()));
      } else if (Verb == "suite-unit") {
        if (W.size() != 3)
          return parseError(LineNo, "suite-unit needs '<name> <benchmark>'");
        const BenchmarkSpec *Spec = findBenchmark(W[2]);
        if (!Spec)
          say("[error] unknown benchmark '" + W[2] + "'");
        else if (!Server.addUnit(W[1], Spec->Source, &Error))
          say("[error] " + Error);
        else
          say("[suite-unit] " + W[1] + " <- " + W[2]);
      } else if (Verb == "suite-inputs") {
        if (W.size() != 3 && W.size() != 4)
          return parseError(
              LineNo, "suite-inputs needs '<program> <benchmark> [runs]'");
        const BenchmarkSpec *Spec = findBenchmark(W[2]);
        unsigned Runs = 0;
        if (W.size() == 4) {
          auto [Ptr, Ec] = std::from_chars(
              W[3].data(), W[3].data() + W[3].size(), Runs);
          if (Ec != std::errc() || Ptr != W[3].data() + W[3].size())
            return parseError(LineNo, "invalid run count '" + W[3] + "'");
        }
        if (!Spec)
          say("[error] unknown benchmark '" + W[2] + "'");
        else if (!Server.setProgramInputs(
                     W[1], makeBenchmarkInputs(*Spec, Runs), &Error))
          say("[error] " + Error);
        else
          say("[suite-inputs] " + W[1] + " <- " + W[2] + " x" +
              std::to_string(Runs == 0 ? Spec->DefaultRuns : Runs));
      } else if (Verb == "recompile") {
        if (W.size() > 2)
          return parseError(LineNo, "recompile takes at most '<target>'");
        std::string Target = W.size() == 2 ? W[1] : "*";
        RecompileStats Stats = Server.recompile(Target, &Error);
        if (!Error.empty()) {
          say("[error] " + Error);
        } else {
          say("[recompile] target=" + Target +
              " touched=" + std::to_string(Stats.TouchedUnits) + " units=[" +
              joinNames(Stats.TouchedUnitNames) +
              "] programs=" + std::to_string(Stats.RecompiledPrograms) +
              " clean=" + std::to_string(Stats.CleanPrograms) +
              " failed=" + std::to_string(Stats.FailedPrograms));
        }
      } else if (Verb == "stats") {
        if (W.size() != 1)
          return parseError(LineNo, "stats takes no arguments");
        FunctionCacheStats S = Server.getCacheStats();
        say("[stats] hits=" + std::to_string(S.Hits) +
            " misses=" + std::to_string(S.Misses) +
            " entries=" + std::to_string(S.Entries) +
            " evictions=" + std::to_string(S.Evictions) +
            " stale=" + std::to_string(S.StaleRejected) +
            " corrupt=" + std::to_string(S.CorruptRejected) +
            " persistent-hits=" + std::to_string(S.PersistentHits));
      } else if (Verb == "save") {
        if (W.size() != 1)
          return parseError(LineNo, "save takes no arguments");
        if (Server.persistCache())
          say("[save] ok");
        else
          say("[save] FAILED: " + (Server.getFailures().empty()
                                       ? std::string("unknown")
                                       : Server.getFailures().back().Detail));
      } else {
        return parseError(LineNo, "unknown command '" + Verb + "'");
      }
    }
    return Result.Ok;
  }

  /// `input` appends one run to the program's existing inputs; the server
  /// API replaces the whole vector, so the executor keeps each program's
  /// accumulated runs.
  std::map<std::string, std::vector<RunInput>> AccumulatedInputs;
  bool appendInput(const std::string &Program, std::string Text,
                   std::vector<RunInput> &OutInputs, std::string &Error) {
    std::vector<RunInput> &Inputs = AccumulatedInputs[Program];
    Inputs.push_back({std::move(Text), ""});
    if (!Server.setProgramInputs(Program, Inputs, &Error)) {
      Inputs.pop_back();
      return false;
    }
    OutInputs = Inputs;
    return true;
  }
};

} // namespace

ServerScriptResult impact::runServerScript(CompileServer &Server,
                                           std::string_view Script) {
  Executor E(Server, Script);
  E.run();
  return std::move(E.Result);
}
