//===- driver/Linker.h - Merge modules for link-time inlining -----------------===//
//
// Part of the impact-inline project, distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// §2.1 weighs two placements for inline expansion. At compile time, the
/// callee bodies of other translation units are invisible ("imposes
/// restrictions to the separate compilation"); at link time "all functions
/// are available ... inline expansion can naturally be performed without
/// sacrificing separate compilation". This module supplies the link step:
/// it merges separately compiled IL modules, resolving extern function
/// declarations against definitions from other modules, re-indexing
/// functions/globals/call sites, and leaving a single module the full
/// inlining pipeline (and its profiler) runs on unchanged.
///
/// Rules:
///  - a function defined in one module satisfies extern (or intrinsic-
///    style body-less) declarations of the same name everywhere,
///  - two definitions of one function name conflict (error),
///  - named globals are unified by name; two globals of the same name
///    conflict unless byte-identical in size with at most one initializer
///    (MiniC has no 'static', so names are program-global),
///  - string-literal globals (".str<N>") are module-private and renamed,
///  - call-site ids are reassigned densely so they stay module-unique,
///  - exactly one module may define main.
///
//===----------------------------------------------------------------------===//

#ifndef IMPACT_DRIVER_LINKER_H
#define IMPACT_DRIVER_LINKER_H

#include "ir/Ir.h"

#include <string>
#include <vector>

namespace impact {

struct LinkResult {
  bool Ok = false;
  std::string Error;
  Module M;
};

/// Links \p Modules (in order) into one module named \p Name.
LinkResult linkModules(std::vector<Module> Modules, std::string Name);

} // namespace impact

#endif // IMPACT_DRIVER_LINKER_H
