//===- driver/Report.cpp -------------------------------------------------------===//
//
// Part of the impact-inline project, distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "driver/Report.h"

#include "support/StringUtils.h"

#include <cmath>
#include <sstream>

using namespace impact;

TableWriter::TableWriter(std::vector<std::string> Headers)
    : Headers(std::move(Headers)) {}

void TableWriter::addRow(std::vector<std::string> Cells) {
  // Deterministic arity repair instead of assert-only: short rows pad
  // with empty cells, long rows drop the excess, so a mismatched caller
  // renders a readable (if gappy) table in release builds instead of
  // columns silently overflowing the computed widths.
  Cells.resize(Headers.size());
  Rows.push_back(std::move(Cells));
}

void TableWriter::addSeparator() { Rows.emplace_back(); }

std::string TableWriter::render() const {
  std::vector<size_t> Widths(Headers.size());
  for (size_t C = 0; C != Headers.size(); ++C)
    Widths[C] = Headers[C].size();
  for (const auto &Row : Rows)
    for (size_t C = 0; C != Row.size(); ++C)
      Widths[C] = std::max(Widths[C], Row[C].size());

  std::ostringstream OS;
  auto EmitRow = [&](const std::vector<std::string> &Cells) {
    for (size_t C = 0; C != Cells.size(); ++C) {
      if (C)
        OS << "  ";
      if (C == 0)
        OS << padRight(Cells[C], static_cast<unsigned>(Widths[C]));
      else
        OS << padLeft(Cells[C], static_cast<unsigned>(Widths[C]));
    }
    OS << '\n';
  };
  auto EmitSeparator = [&] {
    size_t Total = 0;
    for (size_t C = 0; C != Widths.size(); ++C)
      Total += Widths[C] + (C ? 2 : 0);
    OS << std::string(Total, '-') << '\n';
  };

  EmitRow(Headers);
  EmitSeparator();
  for (const auto &Row : Rows) {
    if (Row.empty())
      EmitSeparator();
    else
      EmitRow(Row);
  }
  return OS.str();
}

std::string impact::formatPercent(double Value) {
  return formatDouble(Value, 1) + "%";
}

std::string impact::formatCount(double Value) {
  // llround on a non-finite value is undefined; the cost function's
  // INFINITY verdicts flow through report code, so render them readably.
  if (std::isnan(Value))
    return "nan";
  if (std::isinf(Value))
    return Value < 0.0 ? "-inf" : "inf";
  return std::to_string(static_cast<long long>(std::llround(Value)));
}

std::string impact::formatDuration(double Seconds) {
  if (Seconds >= 1.0)
    return formatDouble(Seconds, 2) + "s";
  if (Seconds >= 1e-3)
    return formatDouble(Seconds * 1e3, 1) + "ms";
  return formatCount(Seconds * 1e6) + "us";
}

double impact::mean(const std::vector<double> &Values) {
  if (Values.empty())
    return 0.0;
  double Sum = 0.0;
  for (double V : Values)
    Sum += V;
  return Sum / static_cast<double>(Values.size());
}

double impact::stddev(const std::vector<double> &Values) {
  if (Values.size() < 2)
    return 0.0;
  double M = mean(Values);
  double Sum = 0.0;
  for (double V : Values)
    Sum += (V - M) * (V - M);
  return std::sqrt(Sum / static_cast<double>(Values.size()));
}
