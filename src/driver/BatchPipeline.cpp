//===- driver/BatchPipeline.cpp --------------------------------------------===//
//
// Part of the impact-inline project, distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "driver/BatchPipeline.h"

#include "driver/Report.h"
#include "support/Stopwatch.h"
#include "support/ThreadPool.h"

#include <map>

using namespace impact;

bool BatchResult::allOk() const { return firstFailure() < 0; }

int BatchResult::firstFailure() const {
  for (size_t I = 0; I != Results.size(); ++I)
    if (!Results[I].Ok)
      return static_cast<int>(I);
  return -1;
}

BatchResult impact::runBatchPipeline(const std::vector<BatchJob> &Jobs,
                                     const BatchOptions &Options) {
  BatchResult Result;
  Result.Results.resize(Jobs.size());

  FunctionDefinitionCache LocalCache;
  FunctionDefinitionCache *Cache = Options.ExternalCache;
  if (!Cache && Options.UseDefinitionCache)
    Cache = &LocalCache;

  Stopwatch Wall;
  {
    ThreadPool Pool(Options.Jobs);
    Result.ThreadsUsed = Pool.getThreadCount();
    for (size_t I = 0; I != Jobs.size(); ++I) {
      Pool.submit([&Jobs, &Result, Cache, I] {
        const BatchJob &Job = Jobs[I];
        PipelineOptions JobOptions = Job.Options;
        JobOptions.DefCache = Cache;
        // runPipeline contains every failure (including thrown
        // exceptions) as a failed result; the catch-all below is the
        // last line of defense keeping the pool's no-throw contract if
        // a future pipeline path leaks.
        try {
          if (Job.HasModule) {
            // The jobs vector is shared and const: run on a copy so a
            // server can re-dispatch the same precompiled module later.
            Module M = Job.PrecompiledModule;
            Result.Results[I] = runPipeline(std::move(M), Job.Inputs,
                                            JobOptions);
          } else {
            Result.Results[I] =
                runPipeline(Job.Source, Job.Name, Job.Inputs, JobOptions);
          }
        } catch (const std::exception &E) {
          PipelineResult &R = Result.Results[I];
          R = PipelineResult();
          R.Error = std::string("pipeline threw: ") + E.what();
          R.Failure = {Job.Name, "pipeline", "exception", E.what(), 1};
          R.Stats.UnitsFailed = 1;
        } catch (...) {
          PipelineResult &R = Result.Results[I];
          R = PipelineResult();
          R.Error = "pipeline threw an unknown exception";
          R.Failure = {Job.Name, "pipeline", "exception",
                       "unknown exception", 1};
          R.Stats.UnitsFailed = 1;
        }
      });
    }
    Pool.wait();
  }
  Result.WallSeconds = Wall.seconds();

  for (size_t I = 0; I != Result.Results.size(); ++I) {
    const PipelineResult &R = Result.Results[I];
    Result.Aggregate.merge(R.Stats);
    if (R.Ok)
      continue;
    UnitFailure F = R.Failure;
    if (F.Unit.empty())
      F.Unit = I < Jobs.size() ? Jobs[I].Name : std::to_string(I);
    if (F.Stage.empty())
      F.Stage = "pipeline";
    if (F.Detail.empty())
      F.Detail = R.Error;
    Result.Failures.push_back(std::move(F));
  }
  if (Cache)
    Result.Cache = Cache->getStats();
  return Result;
}

std::string impact::renderBatchReport(const std::vector<BatchJob> &Jobs,
                                      const BatchResult &Result) {
  // The analyze column (and findings summary below) appear only when some
  // job opted into the analyzer, so analysis-off reports stay bit-identical
  // to the previous format.
  bool AnyAnalyze = false;
  for (const BatchJob &J : Jobs)
    AnyAnalyze |= J.Options.Analyze;

  std::vector<std::string> Columns = {"job",     "status", "compile",
                                      "pre-opt", "profile", "inline"};
  if (AnyAnalyze)
    Columns.push_back("analyze");
  Columns.insert(Columns.end(), {"re-profile", "total", "cache"});
  TableWriter T(Columns);
  for (size_t I = 0; I != Result.Results.size(); ++I) {
    const PipelineResult &R = Result.Results[I];
    const PipelineStats &S = R.Stats;
    std::string CacheCell =
        std::to_string(S.CacheHits) + "h/" + std::to_string(S.CacheMisses) +
        "m";
    std::vector<std::string> Row = {
        I < Jobs.size() ? Jobs[I].Name : std::to_string(I),
        R.Ok ? "ok" : "FAILED", formatDuration(S.CompileSeconds),
        formatDuration(S.PreOptSeconds), formatDuration(S.ProfileSeconds),
        formatDuration(S.InlineSeconds)};
    if (AnyAnalyze)
      Row.push_back(formatDuration(S.AnalyzeSeconds));
    Row.insert(Row.end(), {formatDuration(S.ReProfileSeconds),
                           formatDuration(S.getTotalSeconds()), CacheCell});
    T.addRow(Row);
  }

  std::string Out = T.render();
  Out += "\nbatch: " + std::to_string(Result.ThreadsUsed) + " thread(s), " +
         formatDuration(Result.WallSeconds) + " wall, " +
         formatDuration(Result.getCpuSeconds()) + " cpu (speedup " +
         formatCount(Result.getSpeedup() * 100.0) + "% of serial)\n";
  Out += "cache: " + std::to_string(Result.Aggregate.CacheHits) + " hits / " +
         std::to_string(Result.Aggregate.CacheMisses) + " misses this batch" +
         " (" + formatPercent(Result.Cache.getHitRate() * 100.0) +
         " lifetime hit rate, " + std::to_string(Result.Cache.Entries) +
         " entries, " + std::to_string(Result.Cache.InstrsServed) +
         " cached IL served)\n";
  Out += "pre-opt work: " +
         std::to_string(Result.Aggregate.PreOpt.InstrsProcessed) +
         " IL processed across " +
         std::to_string(Result.Aggregate.PreOpt.FunctionsVisited) +
         " function(s)\n";
  if (AnyAnalyze) {
    size_t Warns = 0, Errors = 0;
    std::map<std::string, size_t> ByRule;
    for (const PipelineResult &R : Result.Results) {
      Warns += R.Analysis.countSeverity(Severity::Warn);
      Errors += R.Analysis.countSeverity(Severity::Error);
      for (const auto &[Rule, N] : R.Analysis.countByRule())
        ByRule[Rule] += N;
    }
    Out += "analyze: " + std::to_string(Warns) + " warning(s), " +
           std::to_string(Errors) + " error(s) across " +
           std::to_string(Result.Results.size()) + " unit(s)";
    bool First = true;
    for (const auto &[Rule, N] : ByRule) {
      Out += First ? " (" : ", ";
      Out += Rule + ": " + std::to_string(N);
      First = false;
    }
    if (!First)
      Out += ")";
    Out += "\n";
  }
  // Quarantine footer: only present when something failed, so fault-free
  // reports stay bit-identical to the pre-containment format.
  if (!Result.Failures.empty()) {
    Out += "[failed] " + std::to_string(Result.Failures.size()) +
           " unit(s) quarantined, batch completed\n";
    for (const UnitFailure &F : Result.Failures) {
      std::string Detail = F.Detail.substr(0, F.Detail.find('\n'));
      Out += "[failed]   " + F.Unit + ": stage=" + F.Stage +
             " reason=" + F.Reason + " attempts=" +
             std::to_string(F.Attempts) + " — " + Detail + "\n";
    }
  }
  return Out;
}
