//===- driver/BatchPipeline.cpp --------------------------------------------===//
//
// Part of the impact-inline project, distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "driver/BatchPipeline.h"

#include "driver/Report.h"
#include "support/Stopwatch.h"
#include "support/ThreadPool.h"

using namespace impact;

bool BatchResult::allOk() const { return firstFailure() < 0; }

int BatchResult::firstFailure() const {
  for (size_t I = 0; I != Results.size(); ++I)
    if (!Results[I].Ok)
      return static_cast<int>(I);
  return -1;
}

BatchResult impact::runBatchPipeline(const std::vector<BatchJob> &Jobs,
                                     const BatchOptions &Options) {
  BatchResult Result;
  Result.Results.resize(Jobs.size());

  FunctionDefinitionCache LocalCache;
  FunctionDefinitionCache *Cache = Options.ExternalCache;
  if (!Cache && Options.UseDefinitionCache)
    Cache = &LocalCache;

  Stopwatch Wall;
  {
    ThreadPool Pool(Options.Jobs);
    Result.ThreadsUsed = Pool.getThreadCount();
    for (size_t I = 0; I != Jobs.size(); ++I) {
      Pool.submit([&Jobs, &Result, Cache, I] {
        const BatchJob &Job = Jobs[I];
        PipelineOptions JobOptions = Job.Options;
        JobOptions.DefCache = Cache;
        Result.Results[I] =
            runPipeline(Job.Source, Job.Name, Job.Inputs, JobOptions);
      });
    }
    Pool.wait();
  }
  Result.WallSeconds = Wall.seconds();

  for (const PipelineResult &R : Result.Results)
    Result.Aggregate.merge(R.Stats);
  if (Cache)
    Result.Cache = Cache->getStats();
  return Result;
}

std::string impact::renderBatchReport(const std::vector<BatchJob> &Jobs,
                                      const BatchResult &Result) {
  TableWriter T({"job", "status", "compile", "pre-opt", "profile", "inline",
                 "re-profile", "total", "cache"});
  for (size_t I = 0; I != Result.Results.size(); ++I) {
    const PipelineResult &R = Result.Results[I];
    const PipelineStats &S = R.Stats;
    std::string CacheCell =
        std::to_string(S.CacheHits) + "h/" + std::to_string(S.CacheMisses) +
        "m";
    T.addRow({I < Jobs.size() ? Jobs[I].Name : std::to_string(I),
              R.Ok ? "ok" : "FAILED", formatDuration(S.CompileSeconds),
              formatDuration(S.PreOptSeconds),
              formatDuration(S.ProfileSeconds),
              formatDuration(S.InlineSeconds),
              formatDuration(S.ReProfileSeconds),
              formatDuration(S.getTotalSeconds()), CacheCell});
  }

  std::string Out = T.render();
  Out += "\nbatch: " + std::to_string(Result.ThreadsUsed) + " thread(s), " +
         formatDuration(Result.WallSeconds) + " wall, " +
         formatDuration(Result.getCpuSeconds()) + " cpu (speedup " +
         formatCount(Result.getSpeedup() * 100.0) + "% of serial)\n";
  Out += "cache: " + std::to_string(Result.Aggregate.CacheHits) + " hits / " +
         std::to_string(Result.Aggregate.CacheMisses) + " misses this batch" +
         " (" + formatPercent(Result.Cache.getHitRate() * 100.0) +
         " lifetime hit rate, " + std::to_string(Result.Cache.Entries) +
         " entries, " + std::to_string(Result.Cache.InstrsServed) +
         " cached IL served)\n";
  Out += "pre-opt work: " +
         std::to_string(Result.Aggregate.PreOpt.InstrsProcessed) +
         " IL processed across " +
         std::to_string(Result.Aggregate.PreOpt.FunctionsVisited) +
         " function(s)\n";
  return Out;
}
