//===- driver/Pipeline.cpp -----------------------------------------------------===//
//
// Part of the impact-inline project, distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "driver/Pipeline.h"

#include "callgraph/CallGraphBuilder.h"
#include "driver/DecisionTrace.h"
#include "driver/FunctionCache.h"
#include "ir/IrVerifier.h"
#include "support/FaultInjection.h"
#include "support/Stopwatch.h"

#include <new>

using namespace impact;

std::string UnitFailure::render() const {
  std::string Out = "unit '" + Unit + "' failed at " + Stage + " (" +
                    Reason + ") after " + std::to_string(Attempts) +
                    " attempt(s)";
  if (!Detail.empty())
    Out += ": " + Detail;
  return Out;
}

namespace {

/// Fills the phase metrics that come straight from a profile.
void fillDynamicMetrics(PhaseMetrics &Metrics, const Module &M,
                        const ProfileData &Profile) {
  Metrics.StaticSize = M.size();
  Metrics.AvgInstrs = Profile.getAvgInstrs();
  Metrics.AvgControlTransfers = Profile.getAvgControlTransfers();
  Metrics.AvgCalls = Profile.getAvgDynamicCalls();
  Metrics.AvgExternalCalls = Profile.getAvgExternalCalls();
  Metrics.AvgPointerCalls = Profile.getAvgPointerCalls();
}

/// Fills the per-class dynamic call split from a classification.
void fillClassMetrics(PhaseMetrics &Metrics, const Classification &Classes) {
  Metrics.DynExternal = Classes.sumDynamic(SiteClass::External);
  Metrics.DynPointer = Classes.sumDynamic(SiteClass::Pointer);
  Metrics.DynUnsafe = Classes.sumDynamic(SiteClass::Unsafe);
  Metrics.DynSafe = Classes.sumDynamic(SiteClass::Safe);
}

/// Marks \p Result failed with both the legacy Error string and the
/// structured quarantine record.
void failUnit(PipelineResult &Result, std::string Unit, std::string Stage,
              std::string Reason, std::string Detail,
              std::string LegacyError) {
  Result.Ok = false;
  Result.Error = std::move(LegacyError);
  Result.Failure.Unit = std::move(Unit);
  Result.Failure.Stage = std::move(Stage);
  Result.Failure.Reason = std::move(Reason);
  Result.Failure.Detail = std::move(Detail);
}

/// Maps an interpreter failure status onto a UnitFailure reason class.
const char *profileFailureReason(const ProfileResult &P) {
  if (!P.RunFailures.empty() &&
      P.RunFailures.front().Status == ExecResult::Status::StepLimitExceeded)
    return "step-limit";
  return "trap";
}

/// Pre-inline optimization, optionally memoized through the shared
/// function-definition cache. The cached body is exactly what re-running
/// the (deterministic) passes would produce, so the transformed module is
/// identical either way; only the wall time and the hit/miss counters
/// differ.
///
/// Fault sites: "pass" before each function's pass pipeline,
/// "cache-lookup"/"cache-insert" around the cache calls. A fault firing
/// here unwinds before the insert, so a failing unit can never leave a
/// partially optimized (poisoned) body behind for other units to splice.
/// Returns false (diagnostic-kind fault) after filling \p Result.
bool runPreOpt(Module &M, const PipelineOptions &Options,
               PipelineResult &Result, FaultSession &Faults) {
  PipelineStats &Stats = Result.Stats;
  for (Function &F : M.Funcs) {
    if (F.IsExternal)
      continue;
    if (Faults.reach("pass") == FaultKind::Diagnostic) {
      failUnit(Result, M.Name, "pre-opt", "diagnostic",
               "injected diagnostic at pass (function '" + F.Name + "')",
               "pre-opt failed: injected diagnostic at pass");
      return false;
    }
    if (Options.DefCache) {
      std::string Key = FunctionDefinitionCache::makeKey(F, Options.PreOpt);
      if (Faults.reach("cache-lookup") == FaultKind::Diagnostic) {
        failUnit(Result, M.Name, "pre-opt", "diagnostic",
                 "injected diagnostic at cache-lookup",
                 "pre-opt failed: injected diagnostic at cache-lookup");
        return false;
      }
      if (Options.DefCache->lookup(Key, F)) {
        ++Stats.CacheHits;
        continue;
      }
      runOptimizationPipeline(F, Options.PreOpt, &Stats.PreOpt);
      if (Faults.reach("cache-insert") == FaultKind::Diagnostic) {
        failUnit(Result, M.Name, "pre-opt", "diagnostic",
                 "injected diagnostic at cache-insert",
                 "pre-opt failed: injected diagnostic at cache-insert");
        return false;
      }
      Options.DefCache->insert(Key, F);
      ++Stats.CacheMisses;
    } else {
      runOptimizationPipeline(F, Options.PreOpt, &Stats.PreOpt);
    }
  }
  return true;
}

/// One attempt at the module pipeline (steps 1-4). \p Stage tracks the
/// current boundary so the exception-containment wrapper can attribute a
/// throw to the right stage after unwinding.
PipelineResult runModuleAttempt(Module M,
                                const std::vector<RunInput> &Inputs,
                                const PipelineOptions &Options,
                                FaultSession &Faults, const char *&Stage) {
  PipelineResult Result;
  std::string Unit = M.Name;

  Stage = "verify";
  if (std::string V = verifyModuleText(M); !V.empty()) {
    failUnit(Result, Unit, "verify", "diagnostic", V,
             "module failed verification before the pipeline:\n" + V);
    return Result;
  }

  // 1. Pre-inline classic optimization (§4.4: constant folding and jump
  // optimization run before the inline expansion procedure).
  if (Options.RunPreOpt) {
    Stage = "pre-opt";
    Stopwatch PreOptTimer;
    bool PreOptOk = runPreOpt(M, Options, Result, Faults);
    Result.Stats.PreOptSeconds = PreOptTimer.seconds();
    if (!PreOptOk)
      return Result;
    if (std::string V = verifyModuleText(M); !V.empty()) {
      failUnit(Result, Unit, "pre-opt", "diagnostic", V,
               "module failed verification after pre-opt:\n" + V);
      return Result;
    }
  }

  // 2. Profile on representative inputs — unless a saved profile drives
  // this compile (PipelineOptions::ProfileIn), in which case the
  // interpreter never runs and OutputsBefore stays empty.
  if (Options.ProfileIn) {
    Result.ProfileBefore = *Options.ProfileIn;
  } else {
    Stage = "profile";
    RunOptions Run = Options.Run;
    if (std::optional<FaultKind> K = Faults.reach("profile")) {
      if (*K == FaultKind::StepLimit) {
        Run.StepLimit = 1; // exhausts on the first instruction
      } else {
        failUnit(Result, Unit, "profile", "diagnostic",
                 "injected diagnostic at profile",
                 "pre-inline profiling failed: injected diagnostic");
        return Result;
      }
    }
    Stopwatch ProfileTimer;
    ProfileResult PreProfile =
        profileProgram(M, Inputs, Run, Options.Engine, Options.Instrument);
    Result.Stats.ProfileSeconds = ProfileTimer.seconds();
    if (!PreProfile.allRunsOk()) {
      failUnit(Result, Unit, "profile", profileFailureReason(PreProfile),
               PreProfile.Failures[0],
               "pre-inline profiling failed: " + PreProfile.Failures[0]);
      return Result;
    }
    Result.ProfileBefore = std::move(PreProfile.Data);
    Result.OutputsBefore = std::move(PreProfile.Outputs);
  }
  fillDynamicMetrics(Result.Before, M, Result.ProfileBefore);

  // 3. Recompile with profile-guided inline expansion.
  Stage = "inline";
  if (Faults.reach("expand") == FaultKind::Diagnostic) {
    failUnit(Result, Unit, "inline", "diagnostic",
             "injected diagnostic at expand",
             "inline expansion failed: injected diagnostic");
    return Result;
  }
  Stopwatch InlineTimer;
  Result.Inline = runInlineExpansion(M, Result.ProfileBefore, Options.Inline);
  Result.Stats.InlineSeconds = InlineTimer.seconds();
  fillClassMetrics(Result.Before, Result.Inline.Classes);
  if (std::string V = verifyModuleText(M); !V.empty()) {
    failUnit(Result, Unit, "inline", "diagnostic", V,
             "module failed verification after inline expansion:\n" + V);
    return Result;
  }
  if (Options.EmitDecisionTrace)
    Result.DecisionTrace = renderDecisionTraceTable(Result.Inline.Plan, M);

  // 3b. Optional static audit of the inlined module (impact-lint). Error
  // findings mean the inliner broke one of its own invariants; the unit
  // is quarantined before any re-profiling effort is spent on it.
  if (Options.Analyze) {
    Stage = "analyze";
    Stopwatch AnalyzeTimer;
    Result.Analysis = analyzeModule(M, Options.Analysis);
    analyzeInlineInvariants(M, Result.Inline, Result.ProfileBefore,
                            Options.Analysis, Result.Analysis);
    Result.Stats.AnalyzeSeconds = AnalyzeTimer.seconds();
    if (Result.Analysis.hasErrors()) {
      std::string Errors;
      for (const Finding &F : Result.Analysis.Findings)
        if (F.Sev == Severity::Error)
          Errors += (Errors.empty() ? "" : "\n") + F.render();
      failUnit(Result, Unit, "analyze", "finding", Errors,
               "static analysis found inliner-invariant violations:\n" +
                   Errors);
      return Result;
    }
  }

  // 4. Measure by re-profiling on the same inputs.
  Stage = "re-profile";
  RunOptions ReRun = Options.Run;
  if (std::optional<FaultKind> K = Faults.reach("reprofile")) {
    if (*K == FaultKind::StepLimit) {
      ReRun.StepLimit = 1;
    } else {
      failUnit(Result, Unit, "re-profile", "diagnostic",
               "injected diagnostic at reprofile",
               "post-inline profiling failed: injected diagnostic");
      return Result;
    }
  }
  Stopwatch ReProfileTimer;
  ProfileResult PostProfile =
      profileProgram(M, Inputs, ReRun, Options.Engine, Options.Instrument);
  Result.Stats.ReProfileSeconds = ReProfileTimer.seconds();
  if (!PostProfile.allRunsOk()) {
    failUnit(Result, Unit, "re-profile", profileFailureReason(PostProfile),
             PostProfile.Failures[0],
             "post-inline profiling failed: " + PostProfile.Failures[0]);
    return Result;
  }
  fillDynamicMetrics(Result.After, M, PostProfile.Data);
  Result.OutputsAfter = std::move(PostProfile.Outputs);

  // Post-inline dynamic classification (the §4.4 external/pointer/unsafe/
  // safe split of the *remaining* calls).
  {
    CallGraphOptions GraphOptions;
    GraphOptions.AssumeExternalsCallBack =
        Options.Inline.AssumeExternalsCallBack;
    CallGraph G = buildCallGraph(M, &PostProfile.Data, GraphOptions);
    Classification PostClasses =
        classifyCallSites(M, G, PostProfile.Data, Options.Inline);
    fillClassMetrics(Result.After, PostClasses);
  }

  Result.FinalModule = std::move(M);
  Result.Ok = true;
  return Result;
}

/// Containment wrapper: converts anything the attempt throws — injected
/// faults, simulated allocation failures, and real defects alike — into a
/// structured UnitFailure on a failed result, so a ThreadPool task
/// running this unit can never terminate the batch.
PipelineResult runGuardedModuleAttempt(Module M,
                                       const std::vector<RunInput> &Inputs,
                                       const PipelineOptions &Options,
                                       FaultSession &Faults) {
  std::string Unit = M.Name;
  const char *Stage = "verify";
  try {
    return runModuleAttempt(std::move(M), Inputs, Options, Faults, Stage);
  } catch (const FaultInjectedError &E) {
    PipelineResult Result;
    failUnit(Result, Unit, Stage, "fault-injected", E.what(),
             std::string(Stage) + " failed: " + E.what());
    return Result;
  } catch (const std::bad_alloc &) {
    PipelineResult Result;
    failUnit(Result, Unit, Stage, "oom", "allocation failure",
             std::string(Stage) + " failed: allocation failure");
    return Result;
  } catch (const std::exception &E) {
    PipelineResult Result;
    failUnit(Result, Unit, Stage, "exception", E.what(),
             std::string(Stage) + " failed: " + E.what());
    return Result;
  }
}

/// Shared retry loop. \p Attempt runs one guarded attempt with a fresh
/// FaultSession; transient faults (their MaxAttempts exhausted) stop
/// firing on later attempts, so a retried unit converges to the result a
/// fault-free run would have produced.
template <typename AttemptFn>
PipelineResult runWithRetries(const std::string &Name,
                              const PipelineOptions &Options,
                              AttemptFn &&Attempt) {
  unsigned MaxAttempts = 1 + Options.RetryAttempts;
  for (unsigned A = 1;; ++A) {
    FaultSession Faults(Options.Faults, Name, A);
    PipelineResult Result = Attempt(Faults, A == MaxAttempts);
    if (Options.Faults)
      Result.FaultSiteHits = Faults.getSiteHits();
    Result.Failure.Attempts = A;
    Result.Stats.Retries = A - 1;
    Result.Stats.UnitsFailed = Result.Ok ? 0 : 1;
    if (Result.Ok || A == MaxAttempts)
      return Result;
  }
}

} // namespace

PipelineResult impact::runPipeline(Module M,
                                   const std::vector<RunInput> &Inputs,
                                   const PipelineOptions &Options) {
  std::string Name = M.Name;
  return runWithRetries(Name, Options, [&](FaultSession &Faults,
                                           bool LastAttempt) {
    // Earlier attempts work on a copy so a retry restarts from the
    // caller's module; the last one may consume it.
    if (LastAttempt)
      return runGuardedModuleAttempt(std::move(M), Inputs, Options, Faults);
    Module Copy = M;
    return runGuardedModuleAttempt(std::move(Copy), Inputs, Options, Faults);
  });
}

PipelineResult impact::runPipeline(std::string_view Source, std::string Name,
                                   const std::vector<RunInput> &Inputs,
                                   const PipelineOptions &Options) {
  return runWithRetries(Name, Options, [&](FaultSession &Faults,
                                           bool /*LastAttempt*/) {
    Stopwatch CompileTimer;
    PipelineResult Result;
    try {
      CompilationResult C =
          compileMiniC(Source, Name, /*RequireMain=*/true, &Faults);
      double CompileSeconds = CompileTimer.seconds();
      if (!C.Ok) {
        failUnit(Result, Name, "compile", "diagnostic", C.Errors,
                 "compilation failed:\n" + C.Errors);
        Result.Stats.CompileSeconds = CompileSeconds;
        return Result;
      }
      Result = runGuardedModuleAttempt(std::move(C.M), Inputs, Options,
                                       Faults);
      Result.Stats.CompileSeconds = CompileSeconds;
      return Result;
    } catch (const FaultInjectedError &E) {
      failUnit(Result, Name, "compile", "fault-injected", E.what(),
               std::string("compilation failed: ") + E.what());
    } catch (const std::bad_alloc &) {
      failUnit(Result, Name, "compile", "oom", "allocation failure",
               "compilation failed: allocation failure");
    } catch (const std::exception &E) {
      failUnit(Result, Name, "compile", "exception", E.what(),
               std::string("compilation failed: ") + E.what());
    }
    Result.Stats.CompileSeconds = CompileTimer.seconds();
    return Result;
  });
}
