//===- driver/Pipeline.cpp -----------------------------------------------------===//
//
// Part of the impact-inline project, distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "driver/Pipeline.h"

#include "callgraph/CallGraphBuilder.h"
#include "driver/DecisionTrace.h"
#include "driver/FunctionCache.h"
#include "ir/IrVerifier.h"
#include "support/Stopwatch.h"

using namespace impact;

namespace {

/// Fills the phase metrics that come straight from a profile.
void fillDynamicMetrics(PhaseMetrics &Metrics, const Module &M,
                        const ProfileData &Profile) {
  Metrics.StaticSize = M.size();
  Metrics.AvgInstrs = Profile.getAvgInstrs();
  Metrics.AvgControlTransfers = Profile.getAvgControlTransfers();
  Metrics.AvgCalls = Profile.getAvgDynamicCalls();
  Metrics.AvgExternalCalls = Profile.getAvgExternalCalls();
  Metrics.AvgPointerCalls = Profile.getAvgPointerCalls();
}

/// Fills the per-class dynamic call split from a classification.
void fillClassMetrics(PhaseMetrics &Metrics, const Classification &Classes) {
  Metrics.DynExternal = Classes.sumDynamic(SiteClass::External);
  Metrics.DynPointer = Classes.sumDynamic(SiteClass::Pointer);
  Metrics.DynUnsafe = Classes.sumDynamic(SiteClass::Unsafe);
  Metrics.DynSafe = Classes.sumDynamic(SiteClass::Safe);
}

/// Pre-inline optimization, optionally memoized through the shared
/// function-definition cache. The cached body is exactly what re-running
/// the (deterministic) passes would produce, so the transformed module is
/// identical either way; only the wall time and the hit/miss counters
/// differ.
void runPreOpt(Module &M, const PipelineOptions &Options,
               PipelineStats &Stats) {
  for (Function &F : M.Funcs) {
    if (F.IsExternal)
      continue;
    if (Options.DefCache) {
      std::string Key = FunctionDefinitionCache::makeKey(F, Options.PreOpt);
      if (Options.DefCache->lookup(Key, F)) {
        ++Stats.CacheHits;
        continue;
      }
      runOptimizationPipeline(F, Options.PreOpt, &Stats.PreOpt);
      Options.DefCache->insert(Key, F);
      ++Stats.CacheMisses;
    } else {
      runOptimizationPipeline(F, Options.PreOpt, &Stats.PreOpt);
    }
  }
}

} // namespace

PipelineResult impact::runPipeline(Module M,
                                   const std::vector<RunInput> &Inputs,
                                   const PipelineOptions &Options) {
  PipelineResult Result;

  if (std::string V = verifyModuleText(M); !V.empty()) {
    Result.Error = "module failed verification before the pipeline:\n" + V;
    return Result;
  }

  // 1. Pre-inline classic optimization (§4.4: constant folding and jump
  // optimization run before the inline expansion procedure).
  if (Options.RunPreOpt) {
    Stopwatch PreOptTimer;
    runPreOpt(M, Options, Result.Stats);
    Result.Stats.PreOptSeconds = PreOptTimer.seconds();
    if (std::string V = verifyModuleText(M); !V.empty()) {
      Result.Error = "module failed verification after pre-opt:\n" + V;
      return Result;
    }
  }

  // 2. Profile on representative inputs — unless a saved profile drives
  // this compile (PipelineOptions::ProfileIn), in which case the
  // interpreter never runs and OutputsBefore stays empty.
  if (Options.ProfileIn) {
    Result.ProfileBefore = *Options.ProfileIn;
  } else {
    Stopwatch ProfileTimer;
    ProfileResult PreProfile = profileProgram(M, Inputs, Options.Run);
    Result.Stats.ProfileSeconds = ProfileTimer.seconds();
    if (!PreProfile.allRunsOk()) {
      Result.Error = "pre-inline profiling failed: " + PreProfile.Failures[0];
      return Result;
    }
    Result.ProfileBefore = std::move(PreProfile.Data);
    Result.OutputsBefore = std::move(PreProfile.Outputs);
  }
  fillDynamicMetrics(Result.Before, M, Result.ProfileBefore);

  // 3. Recompile with profile-guided inline expansion.
  Stopwatch InlineTimer;
  Result.Inline = runInlineExpansion(M, Result.ProfileBefore, Options.Inline);
  Result.Stats.InlineSeconds = InlineTimer.seconds();
  fillClassMetrics(Result.Before, Result.Inline.Classes);
  if (std::string V = verifyModuleText(M); !V.empty()) {
    Result.Error = "module failed verification after inline expansion:\n" + V;
    return Result;
  }
  if (Options.EmitDecisionTrace)
    Result.DecisionTrace = renderDecisionTraceTable(Result.Inline.Plan, M);

  // 4. Measure by re-profiling on the same inputs.
  Stopwatch ReProfileTimer;
  ProfileResult PostProfile = profileProgram(M, Inputs, Options.Run);
  Result.Stats.ReProfileSeconds = ReProfileTimer.seconds();
  if (!PostProfile.allRunsOk()) {
    Result.Error = "post-inline profiling failed: " + PostProfile.Failures[0];
    return Result;
  }
  fillDynamicMetrics(Result.After, M, PostProfile.Data);
  Result.OutputsAfter = std::move(PostProfile.Outputs);

  // Post-inline dynamic classification (the §4.4 external/pointer/unsafe/
  // safe split of the *remaining* calls).
  {
    CallGraphOptions GraphOptions;
    GraphOptions.AssumeExternalsCallBack =
        Options.Inline.AssumeExternalsCallBack;
    CallGraph G = buildCallGraph(M, &PostProfile.Data, GraphOptions);
    Classification PostClasses =
        classifyCallSites(M, G, PostProfile.Data, Options.Inline);
    fillClassMetrics(Result.After, PostClasses);
  }

  Result.FinalModule = std::move(M);
  Result.Ok = true;
  return Result;
}

PipelineResult impact::runPipeline(std::string_view Source, std::string Name,
                                   const std::vector<RunInput> &Inputs,
                                   const PipelineOptions &Options) {
  Stopwatch CompileTimer;
  CompilationResult C = compileMiniC(Source, std::move(Name));
  double CompileSeconds = CompileTimer.seconds();
  if (!C.Ok) {
    PipelineResult Result;
    Result.Error = "compilation failed:\n" + C.Errors;
    Result.Stats.CompileSeconds = CompileSeconds;
    return Result;
  }
  PipelineResult Result = runPipeline(std::move(C.M), Inputs, Options);
  Result.Stats.CompileSeconds = CompileSeconds;
  return Result;
}
