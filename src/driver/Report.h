//===- driver/Report.h - Table formatting shared by benches/examples -----------===//
//
// Part of the impact-inline project, distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#ifndef IMPACT_DRIVER_REPORT_H
#define IMPACT_DRIVER_REPORT_H

#include <string>
#include <vector>

namespace impact {

/// Fixed-width text table writer used by the bench binaries so all paper
/// tables render uniformly.
class TableWriter {
public:
  /// \p Headers defines the column count; the first column is left-aligned
  /// (row labels), the rest right-aligned.
  explicit TableWriter(std::vector<std::string> Headers);

  /// Adds one row. Arity mismatches are repaired deterministically:
  /// missing cells render empty, extra cells are dropped.
  void addRow(std::vector<std::string> Cells);
  /// Adds a horizontal separator before the next row.
  void addSeparator();

  std::string render() const;

private:
  std::vector<std::string> Headers;
  std::vector<std::vector<std::string>> Rows; // empty row == separator
};

/// "12.3%" with one decimal.
std::string formatPercent(double Value);
/// Rounds to a whole number string ("3653"); non-finite values render as
/// "inf" / "-inf" / "nan".
std::string formatCount(double Value);
/// Human duration with a unit chosen by magnitude: "1.24s", "38.1ms",
/// "940us". Used by the batch pipeline's phase-timing reports.
std::string formatDuration(double Seconds);
/// Mean of \p Values (0 when empty).
double mean(const std::vector<double> &Values);
/// Population standard deviation of \p Values.
double stddev(const std::vector<double> &Values);

} // namespace impact

#endif // IMPACT_DRIVER_REPORT_H
