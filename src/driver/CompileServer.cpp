//===- driver/CompileServer.cpp --------------------------------------------===//
//
// Part of the impact-inline project, distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "driver/CompileServer.h"

#include "driver/BatchPipeline.h"
#include "driver/Linker.h"
#include "support/FaultInjection.h"

#include <filesystem>
#include <new>
#include <utility>

using namespace impact;

std::string impact::getCacheStorePath(const std::string &CacheDir) {
  if (CacheDir.empty())
    return "";
  std::string Path = CacheDir;
  if (Path.back() != '/')
    Path += '/';
  return Path + "functions.impact-cache";
}

CompileServer::CompileServer(ServerOptions Opts) : Options(std::move(Opts)) {
  if (Options.CacheCapacity != 0)
    Cache.setCapacity(Options.CacheCapacity);
  if (!Options.CacheDir.empty()) {
    // Make sure the store has somewhere to land; a failure here surfaces
    // as a quarantined cache-persist on the first save, not a crash.
    std::error_code Ec;
    std::filesystem::create_directories(Options.CacheDir, Ec);
    std::string Detail;
    InitialCacheStatus =
        Cache.loadFromFile(getCacheStorePath(Options.CacheDir), &Detail);
    // Stale and corrupt stores are a cold start, not an error: the cache
    // rebuilds and the next save overwrites the bad store. Nothing to
    // quarantine — loadFromFile already counted the rejection.
  }
}

CompileServer::~CompileServer() {
  if (Options.CacheDir.empty())
    return;
  try {
    persistCache();
  } catch (...) {
    // Destructors must not throw; a failed final save costs the next
    // process a cold start, never correctness.
  }
}

bool CompileServer::addUnit(const std::string &Name, std::string Source,
                            std::string *Error) {
  if (Units.count(Name)) {
    if (Error)
      *Error = "unit '" + Name + "' already exists (use replace)";
    return false;
  }
  UnitState &Unit = Units[Name];
  Unit.Source = std::move(Source);
  dirtyProgramsOf(Name);
  if (Error)
    Error->clear();
  return true;
}

bool CompileServer::replaceUnit(const std::string &Name, std::string Source,
                                std::string *Error) {
  auto It = Units.find(Name);
  if (It == Units.end()) {
    if (Error)
      *Error = "unknown unit '" + Name + "'";
    return false;
  }
  // Compute the dependent closure BEFORE installing the new source: the
  // edges of the last compiled module are what current programs spliced.
  // (New edges the edit introduces are rebuilt when the unit recompiles,
  // and their programs are dirty through this unit anyway.)
  invalidate(Name);
  It->second.Source = std::move(Source);
  It->second.Compiled = false;
  It->second.Failed = false;
  if (Error)
    Error->clear();
  return true;
}

bool CompileServer::removeUnit(const std::string &Name, std::string *Error) {
  auto It = Units.find(Name);
  if (It == Units.end()) {
    if (Error)
      *Error = "unknown unit '" + Name + "'";
    return false;
  }
  invalidate(Name);
  Units.erase(It);
  if (Error)
    Error->clear();
  return true;
}

bool CompileServer::defineProgram(const std::string &Name,
                                  std::vector<std::string> UnitNames,
                                  std::vector<RunInput> Inputs,
                                  std::string *Error) {
  if (UnitNames.empty()) {
    if (Error)
      *Error = "program '" + Name + "' has no units";
    return false;
  }
  if (!Programs.count(Name))
    ProgramOrder.push_back(Name);
  ProgramState &Program = Programs[Name];
  Program.Units = std::move(UnitNames);
  Program.Inputs = std::move(Inputs);
  Program.Dirty = true;
  if (Error)
    Error->clear();
  return true;
}

bool CompileServer::setProgramInputs(const std::string &Name,
                                     std::vector<RunInput> Inputs,
                                     std::string *Error) {
  auto It = Programs.find(Name);
  if (It == Programs.end()) {
    if (Error)
      *Error = "unknown program '" + Name + "'";
    return false;
  }
  It->second.Inputs = std::move(Inputs);
  It->second.Dirty = true;
  if (Error)
    Error->clear();
  return true;
}

std::set<std::string> CompileServer::dependentClosure(
    const std::string &Unit) const {
  std::set<std::string> Closure = {Unit};
  std::vector<std::string> Work = {Unit};
  while (!Work.empty()) {
    auto It = Units.find(Work.back());
    Work.pop_back();
    if (It == Units.end())
      continue;
    const std::set<std::string> &Defs = It->second.Defs;
    for (const auto &[Name, State] : Units) {
      if (Closure.count(Name))
        continue;
      bool Depends = false;
      for (const std::string &Extern : State.Externs)
        if (Defs.count(Extern)) {
          Depends = true;
          break;
        }
      if (Depends) {
        Closure.insert(Name);
        Work.push_back(Name);
      }
    }
  }
  return Closure;
}

std::vector<std::string> CompileServer::getDependents(
    const std::string &Unit) const {
  std::set<std::string> Closure = dependentClosure(Unit);
  return {Closure.begin(), Closure.end()};
}

void CompileServer::dirtyProgramsOf(const std::string &Unit) {
  for (auto &[Name, Program] : Programs)
    for (const std::string &Member : Program.Units)
      if (Member == Unit) {
        Program.Dirty = true;
        break;
      }
}

void CompileServer::invalidate(const std::string &Unit) {
  for (const std::string &Name : dependentClosure(Unit)) {
    auto It = Units.find(Name);
    if (It != Units.end())
      It->second.Dirty = true;
    // Latch program dirtiness now: the unit's Dirty flag clears as soon
    // as any recompile touches it, even one targeting another program.
    dirtyProgramsOf(Name);
  }
}

void CompileServer::recordFailure(UnitFailure Failure) {
  Failures.push_back(std::move(Failure));
}

bool CompileServer::compileUnit(const std::string &Name, UnitState &Unit) {
  ++Unit.Attempts;
  FaultSession Session(Options.Pipeline.Faults, Name, Unit.Attempts);
  UnitFailure Failure{Name, "compile", "", "", Unit.Attempts};
  try {
    CompilationResult Compiled =
        compileMiniC(Unit.Source, Name, /*RequireMain=*/false, &Session);
    if (Compiled.Ok) {
      Unit.M = std::move(Compiled.M);
      Unit.Defs.clear();
      Unit.Externs.clear();
      for (const Function &F : Unit.M.Funcs)
        (F.IsExternal ? Unit.Externs : Unit.Defs).insert(F.Name);
      Unit.Compiled = true;
      Unit.Dirty = false;
      Unit.Failed = false;
      return true;
    }
    Failure.Reason = "diagnostic";
    Failure.Detail = Compiled.Errors;
  } catch (const FaultInjectedError &E) {
    Failure.Reason = "fault-injected";
    Failure.Detail = E.what();
  } catch (const std::bad_alloc &) {
    Failure.Reason = "oom";
    Failure.Detail = "allocation failure";
  } catch (const std::exception &E) {
    Failure.Reason = "exception";
    Failure.Detail = E.what();
  }
  // The unit stays dirty: the next recompile retries it, so a transient
  // fault (rule with an attempt bound) recovers by itself.
  Unit.Failed = true;
  recordFailure(std::move(Failure));
  return false;
}

RecompileStats CompileServer::recompile(const std::string &Target,
                                        std::string *Error) {
  RecompileStats Stats;
  std::vector<std::string> Selected;
  if (Target == "*") {
    Selected = ProgramOrder;
  } else if (Programs.count(Target)) {
    Selected.push_back(Target);
  } else {
    if (Error)
      *Error = "unknown program '" + Target + "'";
    return Stats;
  }
  if (Error)
    Error->clear();

  // Pass 1: frontend-compile every dirty unit of every dirty selected
  // program, once each (the touched-unit set). Programs whose units all
  // compiled get a (linked) module and join the batch.
  std::set<std::string> Touched;
  std::vector<BatchJob> Jobs;
  std::vector<std::string> JobPrograms;
  for (const std::string &Name : Selected) {
    ProgramState &Program = Programs[Name];
    if (!Program.Dirty) {
      ++Stats.CleanPrograms;
      continue;
    }
    bool UnitsOk = true;
    std::vector<Module> Members;
    for (const std::string &UnitName : Program.Units) {
      auto It = Units.find(UnitName);
      if (It == Units.end()) {
        recordFailure({Name, "compile", "missing-unit",
                       "program references unknown unit '" + UnitName + "'",
                       1});
        UnitsOk = false;
        break;
      }
      UnitState &Unit = It->second;
      if (Unit.Dirty || !Unit.Compiled) {
        if (!Touched.count(UnitName)) {
          Touched.insert(UnitName);
          compileUnit(UnitName, Unit);
        }
        if (!Unit.Compiled || Unit.Failed) {
          UnitsOk = false;
          break;
        }
      }
      Members.push_back(Unit.M);
    }
    if (!UnitsOk) {
      ++Stats.FailedPrograms;
      continue; // stays dirty; retried next recompile
    }

    BatchJob Job;
    Job.Name = Name;
    Job.Inputs = Program.Inputs;
    Job.Options = Options.Pipeline;
    Job.HasModule = true;
    if (Members.size() == 1) {
      // Single-unit programs skip the linker: link([M]) would rename
      // string globals and re-index site ids, breaking bit-identity with
      // a plain runPipeline(Source) of the same unit.
      Job.PrecompiledModule = std::move(Members.front());
      Job.PrecompiledModule.Name = Name;
    } else {
      LinkResult Linked = linkModules(std::move(Members), Name);
      if (!Linked.Ok) {
        recordFailure({Name, "link", "diagnostic", Linked.Error, 1});
        ++Stats.FailedPrograms;
        continue; // stays dirty
      }
      Job.PrecompiledModule = std::move(Linked.M);
    }
    Jobs.push_back(std::move(Job));
    JobPrograms.push_back(Name);
  }

  // Pass 2: run every rebuilt program's pipeline as one batch over the
  // persistent cache. Job order is program-definition order, so results
  // are independent of the thread count.
  if (!Jobs.empty()) {
    BatchOptions Batch;
    Batch.Jobs = Options.Jobs;
    Batch.ExternalCache = &Cache;
    BatchResult Result = runBatchPipeline(Jobs, Batch);
    for (size_t I = 0; I != Jobs.size(); ++I) {
      ProgramState &Program = Programs[JobPrograms[I]];
      if (Result.Results[I].Ok) {
        Program.Result = std::move(Result.Results[I]);
        Program.HasResult = true;
        Program.Dirty = false;
        ++Stats.RecompiledPrograms;
      } else {
        // Quarantined: keep the last good result queryable, stay dirty.
        ++Stats.FailedPrograms;
      }
    }
    for (UnitFailure &F : Result.Failures)
      recordFailure(std::move(F));
  }

  Stats.TouchedUnits = Touched.size();
  Stats.TouchedUnitNames.assign(Touched.begin(), Touched.end());

  if (!Options.CacheDir.empty())
    persistCache();
  return Stats;
}

const PipelineResult *CompileServer::getResult(
    const std::string &Program) const {
  auto It = Programs.find(Program);
  if (It == Programs.end() || !It->second.HasResult)
    return nullptr;
  return &It->second.Result;
}

bool CompileServer::persistCache() {
  if (Options.CacheDir.empty())
    return true;
  ++SaveCount;
  FaultSession Session(Options.Pipeline.Faults, "server", SaveCount);
  UnitFailure Failure{"server", "cache-persist", "", "", 1};
  std::string SaveError;
  try {
    if (Cache.saveToFile(getCacheStorePath(Options.CacheDir), &SaveError,
                         &Session))
      return true;
    Failure.Reason = "diagnostic";
    Failure.Detail = SaveError;
  } catch (const FaultInjectedError &E) {
    // A mid-write crash: the temp file may be left behind, but the
    // previous store was never touched (temp+rename), so the server and
    // any other process keep a consistent view.
    Failure.Reason = "fault-injected";
    Failure.Detail = E.what();
  } catch (const std::bad_alloc &) {
    Failure.Reason = "oom";
    Failure.Detail = "allocation failure";
  } catch (const std::exception &E) {
    Failure.Reason = "exception";
    Failure.Detail = E.what();
  }
  recordFailure(std::move(Failure));
  return false;
}
