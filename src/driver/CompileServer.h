//===- driver/CompileServer.h - Persistent incremental pipeline ------------===//
//
// Part of the impact-inline project, distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A compile server: a persistent session that accepts unit-level requests
/// (add/replace/remove a translation unit, define a program over units,
/// recompile, query results) and keeps the module graph and the
/// function-definition cache alive across requests. Where the batch
/// pipeline re-runs the world every invocation, the server re-runs only
/// what a change can reach:
///
///  - Editing a unit invalidates the unit plus its reverse-transitive
///    call-graph dependents — every unit that declares `extern` a function
///    the edited unit defines, transitively. Dependents must be
///    recompiled because inline expansion splices dependency bodies into
///    them; unrelated units keep their cached modules. The per-recompile
///    touched-unit counter (RecompileStats::TouchedUnits) counts exactly
///    the frontend compiles that ran, so O(dependents) warm recompiles
///    are asserted structurally, not by timing.
///  - Programs whose member units are all clean are served from the
///    program-level result cache without running anything.
///  - Per-function pre-opt work inside a recompiled program still hits
///    the shared FunctionDefinitionCache, which the server persists to
///    ServerOptions::CacheDir (support/CacheStore.h) so a restarted
///    server — or a second process — reuses prior work.
///
/// Determinism contract: every frontend compile, link, and pipeline stage
/// is deterministic, and cache hits are bit-identical to recomputation,
/// so after ANY script of requests each program's emitted module,
/// decision trace, and profile is bit-identical to a from-scratch batch
/// compile of the same sources — at any thread count. The server tier's
/// incremental-equals-fresh property test enforces this.
///
/// Failure containment (PR 3 semantics carried over): a unit that fails
/// to compile, a program that fails to link, and a pipeline attempt that
/// faults are each quarantined as a UnitFailure; the failing unit/program
/// stays dirty so the next recompile retries it (transient faults
/// recover), every other program completes untouched, and neither the
/// in-memory cache nor the on-disk store is ever poisoned. A failed
/// cache persist (site "cache-persist") quarantines as unit "server" and
/// never kills the session.
///
//===----------------------------------------------------------------------===//

#ifndef IMPACT_DRIVER_COMPILESERVER_H
#define IMPACT_DRIVER_COMPILESERVER_H

#include "driver/FunctionCache.h"
#include "driver/Pipeline.h"

#include <map>
#include <set>
#include <string>
#include <vector>

namespace impact {

struct ServerOptions {
  /// Directory holding the persistent function-definition cache
  /// ("<CacheDir>/functions.impact-cache"). Loaded (if present and
  /// fresh) at construction; saved after every recompile and at
  /// destruction. Empty = in-memory only.
  std::string CacheDir;
  /// Worker threads for each recompile's program batch; 0 = one per
  /// hardware thread.
  unsigned Jobs = 1;
  /// Pipeline knobs applied to every program. DefCache is overridden by
  /// the server's own persistent cache; Faults (when set) also covers the
  /// server's unit compiles and cache persists.
  PipelineOptions Pipeline;
  /// Forwarded to FunctionDefinitionCache::setCapacity (0 = unbounded).
  uint64_t CacheCapacity = 0;
};

/// What one recompile request did. All counters are per-request.
struct RecompileStats {
  /// Frontend compiles that ran — the invalidation-audit observable. A
  /// unit shared by several dirty programs is compiled (and counted)
  /// once.
  uint64_t TouchedUnits = 0;
  /// The touched units, sorted by name.
  std::vector<std::string> TouchedUnitNames;
  /// Programs whose pipeline ran to a successful result.
  uint64_t RecompiledPrograms = 0;
  /// Selected programs that were already clean (served from the result
  /// cache; zero work).
  uint64_t CleanPrograms = 0;
  /// Programs quarantined this request (unit compile, link, or pipeline
  /// failure); they stay dirty and retry next recompile.
  uint64_t FailedPrograms = 0;
};

class CompileServer {
public:
  explicit CompileServer(ServerOptions Options = ServerOptions());
  /// Persists the cache (best effort, exceptions contained) when
  /// CacheDir is set.
  ~CompileServer();

  CompileServer(const CompileServer &) = delete;
  CompileServer &operator=(const CompileServer &) = delete;

  /// Registers a new unit. Fails (false + \p Error) if \p Name exists.
  bool addUnit(const std::string &Name, std::string Source,
               std::string *Error = nullptr);
  /// Replaces an existing unit's source and dirties the unit plus its
  /// reverse-transitive dependents (and every program containing any of
  /// them). Fails if \p Name is unknown.
  bool replaceUnit(const std::string &Name, std::string Source,
                   std::string *Error = nullptr);
  /// Removes a unit, dirtying its dependents. Programs still referencing
  /// it quarantine with a missing-unit failure at their next recompile.
  bool removeUnit(const std::string &Name, std::string *Error = nullptr);
  /// Defines (or redefines, which dirties) a program as an ordered list
  /// of unit names. Single-unit programs run the pipeline directly on the
  /// unit's module; multi-unit programs link first (driver/Linker.h).
  bool defineProgram(const std::string &Name, std::vector<std::string> Units,
                     std::vector<RunInput> Inputs = {},
                     std::string *Error = nullptr);
  /// Replaces a program's profiled inputs (dirties the program).
  bool setProgramInputs(const std::string &Name, std::vector<RunInput> Inputs,
                        std::string *Error = nullptr);

  /// Recompiles \p Target ("*" = every program): compiles dirty member
  /// units once each, relinks and re-runs the pipeline of every dirty
  /// selected program (ServerOptions::Jobs at a time), and persists the
  /// cache when CacheDir is set. Clean programs are untouched. Fails
  /// (empty stats + \p Error) only for an unknown target.
  RecompileStats recompile(const std::string &Target = "*",
                           std::string *Error = nullptr);

  /// Last successful pipeline result for \p Program; null when it never
  /// compiled cleanly.
  const PipelineResult *getResult(const std::string &Program) const;
  /// The unit names a change to \p Unit invalidates: the unit itself plus
  /// its reverse-transitive dependents, sorted. Edges come from the last
  /// compiled module of each unit.
  std::vector<std::string> getDependents(const std::string &Unit) const;
  /// Cumulative quarantine log (unit, link, pipeline, and cache-persist
  /// failures), in occurrence order.
  const std::vector<UnitFailure> &getFailures() const { return Failures; }

  FunctionDefinitionCache &getCache() { return Cache; }
  FunctionCacheStats getCacheStats() const { return Cache.getStats(); }
  /// How the on-disk store loaded at construction (NoFile when CacheDir
  /// is empty or the store didn't exist yet).
  CacheLoadStatus getInitialCacheStatus() const { return InitialCacheStatus; }

  /// Saves the cache store now (atomic temp+rename). False on failure —
  /// which is also quarantined in getFailures() as unit "server", stage
  /// "cache-persist" — with the store on disk left intact.
  bool persistCache();

private:
  struct UnitState {
    std::string Source;
    /// Last successful frontend compile of Source.
    Module M;
    bool Compiled = false;
    /// Needs a frontend recompile before its programs can run.
    bool Dirty = true;
    bool Failed = false;
    /// Function names this unit defines (non-external bodies).
    std::set<std::string> Defs;
    /// Function names this unit declares extern without a body.
    std::set<std::string> Externs;
    /// Cumulative compile attempts — the FaultSession attempt index, so
    /// `unit/parse:throw@1x1` is a transient fault one retry survives.
    unsigned Attempts = 0;
  };

  struct ProgramState {
    std::vector<std::string> Units;
    std::vector<RunInput> Inputs;
    bool Dirty = true;
    bool HasResult = false;
    PipelineResult Result;
  };

  /// Marks \p Unit and its reverse-transitive dependents dirty and
  /// latches every program containing any of them dirty.
  void invalidate(const std::string &Unit);
  void dirtyProgramsOf(const std::string &Unit);
  /// Reverse-transitive dependents of \p Unit (including it), by the
  /// current Defs/Externs edges.
  std::set<std::string> dependentClosure(const std::string &Unit) const;
  /// Frontend-compiles \p Name (fault sites parse/sema/irgen contained).
  /// Returns false after recording a quarantine; the unit stays dirty.
  bool compileUnit(const std::string &Name, UnitState &Unit);
  void recordFailure(UnitFailure Failure);

  ServerOptions Options;
  FunctionDefinitionCache Cache;
  CacheLoadStatus InitialCacheStatus = CacheLoadStatus::NoFile;
  std::map<std::string, UnitState> Units;
  std::map<std::string, ProgramState> Programs;
  /// Definition order of programs — recompile processes (and the batch
  /// runs) in this order so results are schedule-independent.
  std::vector<std::string> ProgramOrder;
  std::vector<UnitFailure> Failures;
  /// Save index: the FaultSession attempt number for cache-persist rules.
  unsigned SaveCount = 0;
};

/// Path of the store file inside a cache directory.
std::string getCacheStorePath(const std::string &CacheDir);

} // namespace impact

#endif // IMPACT_DRIVER_COMPILESERVER_H
