//===- driver/FunctionCache.h - Sharded function-definition cache ----------===//
//
// Part of the impact-inline project, distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's §3 function-definition cache, lifted to batch scope: the
/// linear expansion order lets IMPACT keep each function's pre-processed
/// definition around and reuse it; here we memoize the result of the
/// pre-inline classic optimization of a function *body* so identical
/// bodies — across suite programs in one batch, and across the ablation
/// sweeps that recompile the same program dozens of times — are optimized
/// once.
///
/// The key is exact, not probabilistic: the full printed body (which
/// renders every instruction field, register name, signature flag, and the
/// register/frame counts) plus a fingerprint of the optimization options.
/// Calls that target the function itself are marked in the key, because
/// tail-recursion elimination treats them differently from calls to any
/// other function with the same printed body.
/// Because the optimizer is deterministic, splicing a cached body is
/// bit-identical to re-running the passes, which is what keeps the batch
/// pipeline's output equal to the serial pipeline's.
///
/// Thread safety: the map is split into shards, each behind its own mutex,
/// so concurrent pipeline jobs rarely contend; hit/miss counters are
/// atomics.
///
/// Poisoning semantics: a failing unit must never plant an entry other
/// units would splice. The pipeline guarantees this structurally — insert
/// only runs after a function's pass pipeline completed, and any fault
/// unwinds before the insert — and the cache backstops it: insert()
/// rejects structurally invalid bodies (no blocks on a live function),
/// counting them in RejectedInserts instead of storing them.
///
//===----------------------------------------------------------------------===//

#ifndef IMPACT_DRIVER_FUNCTIONCACHE_H
#define IMPACT_DRIVER_FUNCTIONCACHE_H

#include "ir/Ir.h"
#include "opt/PassManager.h"

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace impact {

/// Snapshot of cache effectiveness counters.
struct FunctionCacheStats {
  uint64_t Hits = 0;
  uint64_t Misses = 0;
  uint64_t Entries = 0;
  /// IL instructions of the bodies served from cache — the pass-pipeline
  /// work (per iteration) that was not redone.
  uint64_t InstrsServed = 0;
  /// Structurally invalid bodies insert() refused to store (always 0 in
  /// a healthy pipeline; see the poisoning note above).
  uint64_t RejectedInserts = 0;

  double getHitRate() const {
    uint64_t Total = Hits + Misses;
    return Total == 0 ? 0.0 : static_cast<double>(Hits) /
                                  static_cast<double>(Total);
  }
};

class FunctionDefinitionCache {
public:
  explicit FunctionDefinitionCache(unsigned ShardCount = 16);

  /// The lookup key for optimizing \p F under \p Opts. Renders the body
  /// exactly (excluding the function name, which cannot affect the
  /// optimizer) so equal keys imply equal post-optimization bodies.
  static std::string makeKey(const Function &F, const OptOptions &Opts);

  /// On hit, splices the cached post-optimization body (blocks, register
  /// and frame counts, register names) into \p F and returns true.
  bool lookup(const std::string &Key, Function &F);

  /// Records \p F's post-optimization body under \p Key. Refuses (and
  /// counts) structurally invalid bodies — the anti-poisoning backstop.
  void insert(const std::string &Key, const Function &F);

  FunctionCacheStats getStats() const;
  void clear();

private:
  /// Body fields the pre-opt pipeline may change; identity fields (name,
  /// id, arity, linkage) stay the caller's.
  struct CachedBody {
    uint32_t NumRegs = 0;
    int64_t FrameSize = 0;
    std::vector<BasicBlock> Blocks;
    std::vector<std::string> RegNames;
    uint64_t Size = 0;
  };

  struct Shard {
    std::mutex Mutex;
    std::unordered_map<std::string, CachedBody> Map;
  };

  Shard &shardFor(const std::string &Key);

  std::vector<std::unique_ptr<Shard>> Shards;
  std::atomic<uint64_t> Hits{0};
  std::atomic<uint64_t> Misses{0};
  std::atomic<uint64_t> InstrsServed{0};
  std::atomic<uint64_t> RejectedInserts{0};
};

} // namespace impact

#endif // IMPACT_DRIVER_FUNCTIONCACHE_H
