//===- driver/FunctionCache.h - Sharded function-definition cache ----------===//
//
// Part of the impact-inline project, distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's §3 function-definition cache, lifted to batch scope and —
/// since the compile-server PR — to process scope: the linear expansion
/// order lets IMPACT keep each function's pre-processed definition around
/// and reuse it; here we memoize the result of the pre-inline classic
/// optimization of a function *body* so identical bodies — across suite
/// programs in one batch, across the ablation sweeps that recompile the
/// same program dozens of times, and across server recompiles and
/// separate processes sharing a cache directory — are optimized once.
///
/// Content addressing: the logical key is exact, not probabilistic — the
/// full printed body (which renders every instruction field, register
/// name, signature flag, and the register/frame counts) plus a
/// fingerprint of the optimization options; calls that target the
/// function itself are marked because tail-recursion elimination treats
/// them differently from calls to any other function with the same
/// printed body. Internally (and on disk) entries are addressed by the
/// stable 128-bit digest of that key text (support/Hashing.h), so the
/// store never persists source-sized key strings and a second process
/// recomputes the same addresses from the same bodies.
/// Because the optimizer is deterministic, splicing a cached body is
/// bit-identical to re-running the passes, which is what keeps the batch
/// pipeline's output equal to the serial pipeline's.
///
/// Persistence: saveToFile/loadFromFile round the cache through the
/// `impact-cache v1` store (support/CacheStore.h) — versioned by
/// kFormatEpoch and getOptionsFingerprint(), checksummed per record and
/// per file, written atomically. Stale stores (other epoch/fingerprint)
/// are rejected whole and rebuilt; corrupt records are dropped and
/// recompiled — a damaged store can cost recompilation, never
/// correctness. Counters loaded from the store become the base of this
/// process's counters, so `[cache]` footers report cross-process
/// lifetime numbers instead of resetting per invocation.
///
/// Thread safety: the map is split into shards, each behind its own mutex,
/// so concurrent pipeline jobs rarely contend; hit/miss counters are
/// atomics.
///
/// Poisoning semantics: a failing unit must never plant an entry other
/// units would splice. The pipeline guarantees this structurally — insert
/// only runs after a function's pass pipeline completed, and any fault
/// unwinds before the insert — and the cache backstops it: insert()
/// rejects structurally invalid bodies (no blocks on a live function),
/// counting them in RejectedInserts instead of storing them. Loaded
/// records pass the same backstop plus a strict payload parse.
///
//===----------------------------------------------------------------------===//

#ifndef IMPACT_DRIVER_FUNCTIONCACHE_H
#define IMPACT_DRIVER_FUNCTIONCACHE_H

#include "ir/Ir.h"
#include "opt/PassManager.h"
#include "support/Hashing.h"

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace impact {

class FaultSession;

/// Snapshot of cache effectiveness counters. With a persistent store
/// attached these are cross-process lifetime numbers: loadFromFile seeds
/// them from the store's cumulative stats line and saveToFile writes the
/// running totals back.
struct FunctionCacheStats {
  uint64_t Hits = 0;
  uint64_t Misses = 0;
  uint64_t Entries = 0;
  /// IL instructions of the bodies served from cache — the pass-pipeline
  /// work (per iteration) that was not redone.
  uint64_t InstrsServed = 0;
  /// Structurally invalid bodies insert() refused to store (always 0 in
  /// a healthy pipeline; see the poisoning note above).
  uint64_t RejectedInserts = 0;
  /// Entries displaced by the FIFO capacity bound (setCapacity).
  uint64_t Evictions = 0;
  /// Persistent stores rejected whole for an epoch or options-fingerprint
  /// mismatch (their entries are rebuilt, never spliced).
  uint64_t StaleRejected = 0;
  /// Store records dropped for checksum/framing/payload-parse failures.
  uint64_t CorruptRejected = 0;
  /// Hits served by entries another process (or a previous run) computed
  /// — the observable cross-process reuse.
  uint64_t PersistentHits = 0;

  double getHitRate() const {
    uint64_t Total = Hits + Misses;
    return Total == 0 ? 0.0 : static_cast<double>(Hits) /
                                  static_cast<double>(Total);
  }
};

/// Outcome of loadFromFile (details in the store's semantics,
/// support/CacheStore.h).
enum class CacheLoadStatus {
  Loaded, ///< Store accepted; verified records spliced in.
  NoFile, ///< No store at that path: cold start.
  Stale,  ///< Whole store rejected (epoch/fingerprint mismatch).
  Corrupt ///< Whole store rejected (bad magic / unparseable header).
};

class FunctionDefinitionCache {
public:
  /// Bump when the on-disk body payload encoding changes incompatibly
  /// (field order, opcode numbering): older stores then load as Stale
  /// and rebuild instead of misparsing.
  static constexpr uint64_t kFormatEpoch = 1;

  explicit FunctionDefinitionCache(unsigned ShardCount = 16);

  /// The lookup key for optimizing \p F under \p Opts. Renders the body
  /// exactly (excluding the function name, which cannot affect the
  /// optimizer) so equal keys imply equal post-optimization bodies.
  static std::string makeKey(const Function &F, const OptOptions &Opts);

  /// The store staleness fingerprint: ties persisted entries to the
  /// OptOptions encoding and the opcode numbering they were computed
  /// under. Any mismatch rejects a store whole.
  static std::string getOptionsFingerprint();

  /// On hit, splices the cached post-optimization body (blocks, register
  /// and frame counts, register names) into \p F and returns true.
  bool lookup(const std::string &Key, Function &F);

  /// Records \p F's post-optimization body under \p Key. Refuses (and
  /// counts) structurally invalid bodies — the anti-poisoning backstop.
  void insert(const std::string &Key, const Function &F);

  /// Bounds the entry count; 0 = unbounded (default). When full, insert
  /// evicts the oldest entry of its shard (FIFO). Eviction only moves
  /// work back from "hit" to "recompute", so capacity never affects
  /// results — only the hit/miss split.
  void setCapacity(uint64_t MaxEntries);

  /// Persists every entry (sorted by content address, so identical
  /// contents produce identical bytes) plus the cumulative counters to
  /// \p Path via the atomic `impact-cache v1` writer. \p Faults reaches
  /// the "cache-persist" site (see support/CacheStore.h). Returns false
  /// and fills \p Error on failure; the previous store survives any
  /// failed save.
  bool saveToFile(const std::string &Path, std::string *Error = nullptr,
                  FaultSession *Faults = nullptr) const;

  /// Loads \p Path, splicing every verified record in and seeding the
  /// counter base from the store's stats. Stale/corrupt stores are
  /// counted and ignored (the cache stays usable and will overwrite the
  /// bad store on the next save). \p Detail carries the reason for
  /// non-Loaded outcomes.
  CacheLoadStatus loadFromFile(const std::string &Path,
                               std::string *Detail = nullptr);

  FunctionCacheStats getStats() const;
  void clear();

private:
  /// Body fields the pre-opt pipeline may change; identity fields (name,
  /// id, arity, linkage) stay the caller's.
  struct CachedBody {
    uint32_t NumRegs = 0;
    int64_t FrameSize = 0;
    std::vector<BasicBlock> Blocks;
    std::vector<std::string> RegNames;
    uint64_t Size = 0;
    /// True when this body came from a persistent store rather than this
    /// process's optimizer (feeds PersistentHits).
    bool FromDisk = false;
  };

  struct KeyHash {
    size_t operator()(const Hash128 &K) const {
      return static_cast<size_t>(K.Hi ^ K.Lo);
    }
  };

  struct Shard {
    mutable std::mutex Mutex;
    std::unordered_map<Hash128, CachedBody, KeyHash> Map;
    /// Insertion order for FIFO eviction.
    std::deque<Hash128> Order;
  };

  Shard &shardFor(const Hash128 &Key) const;
  void insertBody(const Hash128 &Key, CachedBody Body);
  uint64_t perShardCapacity() const;

  std::vector<std::unique_ptr<Shard>> Shards;
  std::atomic<uint64_t> Capacity{0};
  std::atomic<uint64_t> Hits{0};
  std::atomic<uint64_t> Misses{0};
  std::atomic<uint64_t> InstrsServed{0};
  std::atomic<uint64_t> RejectedInserts{0};
  std::atomic<uint64_t> Evictions{0};
  std::atomic<uint64_t> StaleRejected{0};
  std::atomic<uint64_t> CorruptRejected{0};
  std::atomic<uint64_t> PersistentHits{0};
  /// Cumulative counters carried over from a loaded store (the
  /// cross-process base getStats() adds on top of).
  std::atomic<uint64_t> BaseHits{0};
  std::atomic<uint64_t> BaseMisses{0};
  std::atomic<uint64_t> BaseInstrsServed{0};
  std::atomic<uint64_t> BaseRejectedInserts{0};
  std::atomic<uint64_t> BaseEvictions{0};
  std::atomic<uint64_t> BaseStaleRejected{0};
  std::atomic<uint64_t> BaseCorruptRejected{0};
  std::atomic<uint64_t> BasePersistentHits{0};
};

} // namespace impact

#endif // IMPACT_DRIVER_FUNCTIONCACHE_H
