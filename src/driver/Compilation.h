//===- driver/Compilation.h - Source-to-IL convenience ------------------------===//
//
// Part of the impact-inline project, distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#ifndef IMPACT_DRIVER_COMPILATION_H
#define IMPACT_DRIVER_COMPILATION_H

#include "ir/Ir.h"

#include <string>
#include <string_view>

namespace impact {

class FaultSession;

/// Outcome of compiling one MiniC source buffer.
struct CompilationResult {
  bool Ok = false;
  /// Rendered diagnostics when !Ok.
  std::string Errors;
  Module M;
};

/// Lex + parse + sema + IL generation. When \p RequireMain is false the
/// source may be a fragment without a main function. \p Faults, when
/// non-null, is consulted at the parse/sema/irgen boundaries
/// (support/FaultInjection.h): diag-kind rules report an injected
/// diagnostic (a clean failure), throw/oom-kind rules propagate their
/// exceptions to the caller's containment layer.
CompilationResult compileMiniC(std::string_view Source, std::string Name,
                               bool RequireMain = true,
                               FaultSession *Faults = nullptr);

} // namespace impact

#endif // IMPACT_DRIVER_COMPILATION_H
