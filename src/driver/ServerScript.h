//===- driver/ServerScript.h - Textual compile-server requests -------------===//
//
// Part of the impact-inline project, distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A deterministic textual request language for driving a CompileServer —
/// the `--serve-script=` surface of the server bench and the replayable
/// form of a server session for tests. One command per line; blank lines
/// and `#` comments are ignored:
///
///   unit <name> <<DELIM        add a unit; source lines follow until a
///     ...source...             line that is exactly DELIM (shell-heredoc
///   DELIM                      style, any delimiter word)
///   replace <name> <<DELIM     replace a unit's source (same heredoc)
///   remove <name>              remove a unit
///   program <name> = <u1> [<u2> ...]   define/redefine a program
///   input <program> [text]     append one profiled run (stdin = text,
///                              may be empty; repeat for more runs)
///   suite-unit <name> <bench>  add a unit holding a suite benchmark's
///                              source (suite/Suite.h)
///   suite-inputs <program> <bench> [runs]  set the program's inputs to
///                              the benchmark's deterministic workload
///   recompile [target]         recompile `target` (default "*")
///   stats                      append cache counters to the transcript
///   save                       persist the cache store now
///
/// Execution appends one transcript line per command, e.g.
///   [recompile] target=* touched=3 units=[mid1,mid2,util] programs=2
///   clean=10 failed=0
/// The transcript contains no timings or absolute paths, so replaying a
/// script against an equivalent server reproduces it byte for byte — the
/// script-determinism test in the server tier pins that.
///
/// Malformed commands (unknown verb, missing heredoc terminator, bad
/// argument counts) stop execution with Ok=false; request-level failures
/// (duplicate unit, unknown program) append an `[error]` transcript line
/// and continue, matching the server's quarantine philosophy.
///
//===----------------------------------------------------------------------===//

#ifndef IMPACT_DRIVER_SERVERSCRIPT_H
#define IMPACT_DRIVER_SERVERSCRIPT_H

#include <string>
#include <string_view>

namespace impact {

class CompileServer;

struct ServerScriptResult {
  /// False only for a malformed script (parse error); request-level
  /// failures are `[error]` transcript lines instead.
  bool Ok = false;
  /// Parse diagnostic naming the offending line when !Ok.
  std::string Error;
  /// One line per executed command (see file comment).
  std::string Transcript;
};

/// Executes \p Script against \p Server, top to bottom.
ServerScriptResult runServerScript(CompileServer &Server,
                                   std::string_view Script);

} // namespace impact

#endif // IMPACT_DRIVER_SERVERSCRIPT_H
