//===- driver/Linker.cpp -------------------------------------------------------===//
//
// Part of the impact-inline project, distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "driver/Linker.h"

#include "support/StringUtils.h"

#include <unordered_map>

using namespace impact;

namespace {

bool isStringLiteralGlobal(const std::string &Name) {
  return startsWith(Name, ".str");
}

class Linker {
public:
  Linker(std::vector<Module> Modules, std::string Name)
      : Modules(std::move(Modules)) {
    Out.M.Name = std::move(Name);
  }

  LinkResult run() {
    if (!declareFunctions() || !mergeGlobals() || !copyBodies())
      return std::move(Out);
    Out.M.MainId = Out.M.findFunction("main");
    Out.Ok = true;
    return std::move(Out);
  }

private:
  bool fail(const std::string &Message) {
    Out.Ok = false;
    Out.Error = Message;
    return false;
  }

  /// Pass 1: one output slot per function name; definitions win over
  /// extern declarations; two definitions conflict.
  bool declareFunctions() {
    FuncMap.resize(Modules.size());
    for (size_t MI = 0; MI != Modules.size(); ++MI) {
      const Module &M = Modules[MI];
      FuncMap[MI].assign(M.Funcs.size(), kNoFunc);
      for (const Function &F : M.Funcs) {
        auto It = FuncByName.find(F.Name);
        if (It == FuncByName.end()) {
          FuncId NewId = Out.M.addFunction(F.Name, F.NumParams,
                                           F.ReturnsVoid, F.IsExternal);
          FuncByName[F.Name] = NewId;
          DefinedIn[F.Name] = F.IsExternal ? SIZE_MAX : MI;
          FuncMap[MI][static_cast<size_t>(F.Id)] = NewId;
          continue;
        }
        FuncId NewId = It->second;
        Function &Existing = Out.M.getFunction(NewId);
        if (Existing.NumParams != F.NumParams ||
            Existing.ReturnsVoid != F.ReturnsVoid)
          return fail("conflicting signatures for function '" + F.Name +
                      "'");
        if (!F.IsExternal) {
          if (DefinedIn[F.Name] != SIZE_MAX)
            return fail("duplicate definition of function '" + F.Name +
                        "'");
          DefinedIn[F.Name] = MI;
          Existing.IsExternal = false;
        }
        FuncMap[MI][static_cast<size_t>(F.Id)] = NewId;
      }
    }
    return true;
  }

  /// Remaps a function-address word (global initializers may hold them).
  int64_t remapWord(size_t MI, int64_t Value) const {
    FuncId Old = decodeFuncAddr(Value);
    if (Old == kNoFunc ||
        static_cast<size_t>(Old) >= FuncMap[MI].size())
      return Value;
    return encodeFuncAddr(FuncMap[MI][static_cast<size_t>(Old)]);
  }

  /// Pass 2: unify named globals, privatize string literals.
  bool mergeGlobals() {
    GlobalMap.resize(Modules.size());
    for (size_t MI = 0; MI != Modules.size(); ++MI) {
      const Module &M = Modules[MI];
      GlobalMap[MI].assign(M.Globals.size(), -1);
      for (size_t GI = 0; GI != M.Globals.size(); ++GI) {
        const Global &G = M.Globals[GI];
        std::vector<int64_t> Init;
        Init.reserve(G.Init.size());
        for (int64_t V : G.Init)
          Init.push_back(remapWord(MI, V));

        if (isStringLiteralGlobal(G.Name)) {
          GlobalMap[MI][GI] = Out.M.addGlobal(
              ".str" + std::to_string(NextString++), G.Size,
              std::move(Init));
          continue;
        }
        auto It = GlobalByName.find(G.Name);
        if (It == GlobalByName.end()) {
          int64_t NewIdx = Out.M.addGlobal(G.Name, G.Size, std::move(Init));
          GlobalByName[G.Name] = NewIdx;
          GlobalMap[MI][GI] = NewIdx;
          continue;
        }
        Global &Existing = Out.M.Globals[static_cast<size_t>(It->second)];
        if (Existing.Size != G.Size)
          return fail("conflicting sizes for global '" + G.Name + "'");
        if (!Init.empty()) {
          if (!Existing.Init.empty())
            return fail("duplicate initializer for global '" + G.Name +
                        "'");
          Existing.Init = std::move(Init);
        }
        GlobalMap[MI][GI] = It->second;
      }
    }
    return true;
  }

  /// Pass 3: clone bodies with remapped callees, globals and site ids.
  bool copyBodies() {
    for (size_t MI = 0; MI != Modules.size(); ++MI) {
      const Module &M = Modules[MI];
      for (const Function &F : M.Funcs) {
        if (F.IsExternal)
          continue;
        if (F.Eliminated) {
          Out.M.getFunction(FuncMap[MI][static_cast<size_t>(F.Id)])
              .Eliminated = true;
          continue;
        }
        if (F.Blocks.empty())
          continue;
        FuncId NewId = FuncMap[MI][static_cast<size_t>(F.Id)];
        Function &Target = Out.M.getFunction(NewId);
        Target.NumRegs = F.NumRegs;
        Target.FrameSize = F.FrameSize;
        Target.Eliminated = F.Eliminated;
        Target.AddressTaken |= F.AddressTaken;
        Target.RegNames = F.RegNames;
        Target.Blocks = F.Blocks;
        for (BasicBlock &B : Target.Blocks) {
          for (Instr &I : B.Instrs) {
            switch (I.Op) {
            case Opcode::Call:
            case Opcode::FuncAddr:
              I.Callee = FuncMap[MI][static_cast<size_t>(I.Callee)];
              break;
            case Opcode::GlobalAddr:
              I.Imm = GlobalMap[MI][static_cast<size_t>(I.Imm)];
              break;
            default:
              break;
            }
            if (I.isCall())
              I.SiteId = Out.M.allocateSiteId();
          }
        }
      }
    }
    return true;
  }

  std::vector<Module> Modules;
  LinkResult Out;
  std::unordered_map<std::string, FuncId> FuncByName;
  /// Module index that *defined* the name, SIZE_MAX while extern-only.
  std::unordered_map<std::string, size_t> DefinedIn;
  std::unordered_map<std::string, int64_t> GlobalByName;
  std::vector<std::vector<FuncId>> FuncMap;
  std::vector<std::vector<int64_t>> GlobalMap;
  unsigned NextString = 0;
};

} // namespace

LinkResult impact::linkModules(std::vector<Module> Modules,
                               std::string Name) {
  return Linker(std::move(Modules), std::move(Name)).run();
}
