//===- driver/DecisionTrace.h - Per-arc inline decision trace ------------------===//
//
// Part of the impact-inline project, distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders the planner's per-site rulings (core/InlinePlanner.h) for
/// humans and for tools. Every Rejected / NotExpandable site carries a
/// concrete reason with the numbers the cost function actually compared —
/// "weight 3.00 < threshold 10.00", "program 1200 + callee 300 > budget
/// 1400" — so a surprising plan can be audited line by line instead of
/// re-deriving the cost function by hand.
///
/// Two forms over the same data:
///  - renderDecisionTraceTable: fixed-width TableWriter table, one row per
///    site, for terminals and golden tests;
///  - renderDecisionTraceJson: one JSON object per line (JSONL), for
///    scripts; written by the benches' --trace-out= flag.
///
/// Both render from the post-inline module: dead-function elimination
/// marks bodies Eliminated but keeps the Function entries, so FuncIds and
/// names stay valid after expansion.
///
//===----------------------------------------------------------------------===//

#ifndef IMPACT_DRIVER_DECISIONTRACE_H
#define IMPACT_DRIVER_DECISIONTRACE_H

#include "core/InlinePlanner.h"
#include "ir/Ir.h"

#include <string>
#include <string_view>

namespace impact {

struct UnitFailure;

/// One sentence explaining \p P's verdict, always quoting the numbers it
/// was decided on. \p M resolves function names (and distinguishes
/// external callees from pointer sites).
std::string formatDecisionReason(const PlannedSite &P, const Module &M);

/// The whole plan as a fixed-width table (site / caller / callee / weight /
/// status / verdict / reason), sites in plan order.
std::string renderDecisionTraceTable(const InlinePlan &Plan, const Module &M);

/// The whole plan as JSON lines: one object per site carrying the names,
/// weight, status, verdict, every DecisionNumbers field, and the reason.
/// A non-empty \p Program is emitted as a leading "program" field, so
/// whole-suite trace files (--trace-out=) stay self-describing.
std::string renderDecisionTraceJson(const InlinePlan &Plan, const Module &M,
                                    std::string_view Program = {});

/// A quarantined unit's trace record: one JSONL object with
/// "failed":true plus the failure's stage, reason, attempts, and detail,
/// so whole-suite trace files (--trace-out=) account for every unit even
/// when one produced no plan. \p Program defaults to the failure's unit.
std::string renderUnitFailureJson(const UnitFailure &F,
                                  std::string_view Program = {});

} // namespace impact

#endif // IMPACT_DRIVER_DECISIONTRACE_H
