//===- driver/DecisionTrace.cpp ------------------------------------------------===//
//
// Part of the impact-inline project, distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "driver/DecisionTrace.h"

#include "driver/Pipeline.h"
#include "driver/Report.h"
#include "support/StringUtils.h"

#include <cstdio>

using namespace impact;

namespace {

std::string funcName(const Module &M, FuncId Id) {
  return Id == kNoFunc ? std::string("<indirect>") : M.getFunction(Id).Name;
}

std::string weightStr(double W) { return formatDouble(W, 2); }

} // namespace

std::string impact::formatDecisionReason(const PlannedSite &P,
                                         const Module &M) {
  const DecisionNumbers &N = P.Numbers;
  switch (P.Verdict) {
  case CostVerdict::Acceptable:
    return "weight " + weightStr(N.Weight) + " >= threshold " +
           weightStr(N.WeightThreshold) + "; program " +
           std::to_string(N.ProgramSize) + " + callee " +
           std::to_string(N.CalleeSize) + " <= budget " +
           std::to_string(N.ProgramSizeBudget);
  case CostVerdict::NotInlinable:
    if (P.Callee == kNoFunc)
      return "indirect call through pointer; target unknown at compile time";
    return "callee '" + funcName(M, P.Callee) + "' is external (no body)";
  case CostVerdict::OrderViolation:
    return "callee '" + funcName(M, P.Callee) +
           "' does not precede caller '" + funcName(M, P.Caller) +
           "' in the linear order";
  case CostVerdict::RecursiveCycle:
    return "caller '" + funcName(M, P.Caller) + "' and callee '" +
           funcName(M, P.Callee) + "' share a recursion cycle";
  case CostVerdict::StackHazard:
    return "caller recursive and callee stack " +
           std::to_string(N.CalleeStackWords) + " words > bound " +
           std::to_string(N.StackBound);
  case CostVerdict::LowWeight:
    return "weight " + weightStr(N.Weight) + " < threshold " +
           weightStr(N.WeightThreshold);
  case CostVerdict::CalleeTooLarge:
    return "callee size " + std::to_string(N.CalleeSize) +
           " > max callee size " + std::to_string(N.MaxCalleeSize);
  case CostVerdict::BudgetExceeded:
    return "program " + std::to_string(N.ProgramSize) + " + callee " +
           std::to_string(N.CalleeSize) + " > budget " +
           std::to_string(N.ProgramSizeBudget);
  }
  return "?";
}

std::string impact::renderDecisionTraceTable(const InlinePlan &Plan,
                                             const Module &M) {
  TableWriter Table({"site", "caller", "callee", "weight", "status",
                     "verdict", "reason"});
  for (const PlannedSite &P : Plan.Sites)
    Table.addRow({std::to_string(P.SiteId), funcName(M, P.Caller),
                  funcName(M, P.Callee), weightStr(P.Weight),
                  getArcStatusName(P.Status), getCostVerdictName(P.Verdict),
                  formatDecisionReason(P, M)});
  return Table.render();
}

std::string impact::renderDecisionTraceJson(const InlinePlan &Plan,
                                            const Module &M,
                                            std::string_view Program) {
  std::string Out;
  for (const PlannedSite &P : Plan.Sites) {
    const DecisionNumbers &N = P.Numbers;
    Out += "{";
    if (!Program.empty())
      Out += "\"program\":\"" + jsonEscape(Program) + "\",";
    Out += "\"site\":" + std::to_string(P.SiteId);
    Out += ",\"caller\":\"" + jsonEscape(funcName(M, P.Caller)) + "\"";
    Out += ",\"callee\":\"" + jsonEscape(funcName(M, P.Callee)) + "\"";
    Out += ",\"weight\":" + weightStr(P.Weight);
    Out += ",\"status\":\"" + std::string(getArcStatusName(P.Status)) + "\"";
    Out +=
        ",\"verdict\":\"" + std::string(getCostVerdictName(P.Verdict)) + "\"";
    Out += ",\"weight_threshold\":" + weightStr(N.WeightThreshold);
    Out += ",\"callee_size\":" + std::to_string(N.CalleeSize);
    Out += ",\"max_callee_size\":" + std::to_string(N.MaxCalleeSize);
    Out += ",\"program_size\":" + std::to_string(N.ProgramSize);
    Out += ",\"program_size_budget\":" + std::to_string(N.ProgramSizeBudget);
    Out += ",\"callee_stack_words\":" + std::to_string(N.CalleeStackWords);
    Out += ",\"stack_bound\":" + std::to_string(N.StackBound);
    Out += ",\"caller_recursive\":";
    Out += N.CallerRecursive ? "true" : "false";
    Out += ",\"reason\":\"" + jsonEscape(formatDecisionReason(P, M)) + "\"}\n";
  }
  return Out;
}

std::string impact::renderUnitFailureJson(const UnitFailure &F,
                                          std::string_view Program) {
  std::string Out = "{";
  if (!Program.empty())
    Out += "\"program\":\"" + jsonEscape(Program) + "\",";
  else
    Out += "\"program\":\"" + jsonEscape(F.Unit) + "\",";
  Out += "\"failed\":true";
  Out += ",\"stage\":\"" + jsonEscape(F.Stage) + "\"";
  Out += ",\"reason\":\"" + jsonEscape(F.Reason) + "\"";
  Out += ",\"attempts\":" + std::to_string(F.Attempts);
  Out += ",\"detail\":\"" + jsonEscape(F.Detail) + "\"}\n";
  return Out;
}
