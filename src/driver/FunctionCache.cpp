//===- driver/FunctionCache.cpp --------------------------------------------===//
//
// Part of the impact-inline project, distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "driver/FunctionCache.h"

#include "ir/IrPrinter.h"
#include "support/CacheStore.h"

#include <algorithm>
#include <charconv>

using namespace impact;

FunctionDefinitionCache::FunctionDefinitionCache(unsigned ShardCount) {
  if (ShardCount == 0)
    ShardCount = 1;
  Shards.reserve(ShardCount);
  for (unsigned I = 0; I != ShardCount; ++I)
    Shards.push_back(std::make_unique<Shard>());
}

std::string FunctionDefinitionCache::makeKey(const Function &F,
                                             const OptOptions &Opts) {
  // Every OptOptions field must be fingerprinted below, one line per
  // knob: a knob missing here silently serves bodies optimized under a
  // different pass set to cache hits. The size tripwire catches a new
  // field that changes the struct's layout; the exhaustive toggle test
  // (PipelineTests, CacheKeyCoversEveryOptOption) catches one that
  // padding hides — update both together with this fingerprint.
  static_assert(sizeof(OptOptions) == 16,
                "OptOptions changed: update makeKey's option fingerprint "
                "and the sizeof above");
  std::string Key;
  Key.reserve(64 + F.size() * 24);
  // Option fingerprint: every knob that steers the pre-opt pipeline.
  Key += 'o';
  Key += static_cast<char>('0' + Opts.ConstantFolding);
  Key += static_cast<char>('0' + Opts.JumpOptimization);
  Key += static_cast<char>('0' + Opts.CopyPropagation);
  Key += static_cast<char>('0' + Opts.DeadCodeElimination);
  Key += static_cast<char>('0' + Opts.TailRecursionElimination);
  Key += static_cast<char>('0' + Opts.Sccp);
  Key += static_cast<char>('0' + Opts.Peephole);
  Key += static_cast<char>('0' + Opts.LoopInvariantCodeMotion);
  Key += static_cast<char>('0' + Opts.Ranges);
  Key += 'i';
  Key += std::to_string(Opts.MaxIterations);
  // Signature and body, rendered exactly (printInstr includes register
  // names, immediates, targets, callee ids, and site ids). The function
  // name is deliberately excluded: renaming cannot affect the optimizer.
  Key += "|s";
  Key += std::to_string(F.NumParams);
  Key += ',';
  Key += std::to_string(F.NumRegs);
  Key += ',';
  Key += std::to_string(F.FrameSize);
  Key += ',';
  Key += static_cast<char>('0' + F.ReturnsVoid);
  Key += static_cast<char>('0' + F.AddressTaken);
  Key += static_cast<char>('0' + F.Eliminated);
  for (const BasicBlock &B : F.Blocks) {
    Key += ";b\n";
    for (const Instr &I : B.Instrs) {
      Key += printInstr(I, &F);
      // Tail-recursion elimination rewrites only calls whose callee is the
      // enclosing function, so self-call status is part of the body's
      // optimization-relevant identity: a wrapper whose printed body is
      // byte-identical to a self-recursive function's must not share its
      // key.
      if (I.Op == Opcode::Call && I.Callee == F.Id)
        Key += " @self";
      Key += '\n';
    }
  }
  return Key;
}

std::string FunctionDefinitionCache::getOptionsFingerprint() {
  // Ties a store to the two format-bearing enums the payload depends on:
  // the OptOptions layout behind makeKey's option fingerprint and the
  // opcode numbering the body serialization writes. Either changing
  // makes old stores Stale instead of misinterpreted.
  return "opts" + std::to_string(sizeof(OptOptions)) + "-ops" +
         std::to_string(static_cast<int>(Opcode::Ret) + 1);
}

FunctionDefinitionCache::Shard &
FunctionDefinitionCache::shardFor(const Hash128 &Key) const {
  return *Shards[Key.Hi % Shards.size()];
}

uint64_t FunctionDefinitionCache::perShardCapacity() const {
  uint64_t Cap = Capacity.load(std::memory_order_relaxed);
  if (Cap == 0)
    return 0;
  uint64_t Per = Cap / Shards.size();
  return Per == 0 ? 1 : Per;
}

void FunctionDefinitionCache::setCapacity(uint64_t MaxEntries) {
  Capacity.store(MaxEntries, std::memory_order_relaxed);
  uint64_t Per = perShardCapacity();
  if (Per == 0)
    return;
  for (const auto &S : Shards) {
    std::lock_guard<std::mutex> Lock(S->Mutex);
    while (S->Map.size() > Per && !S->Order.empty()) {
      S->Map.erase(S->Order.front());
      S->Order.pop_front();
      Evictions.fetch_add(1, std::memory_order_relaxed);
    }
  }
}

bool FunctionDefinitionCache::lookup(const std::string &Key, Function &F) {
  Hash128 H = hash128(Key);
  Shard &S = shardFor(H);
  std::lock_guard<std::mutex> Lock(S.Mutex);
  auto It = S.Map.find(H);
  if (It == S.Map.end()) {
    Misses.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  const CachedBody &Body = It->second;
  F.NumRegs = Body.NumRegs;
  F.FrameSize = Body.FrameSize;
  F.Blocks = Body.Blocks;
  F.RegNames = Body.RegNames;
  Hits.fetch_add(1, std::memory_order_relaxed);
  if (Body.FromDisk)
    PersistentHits.fetch_add(1, std::memory_order_relaxed);
  InstrsServed.fetch_add(Body.Size, std::memory_order_relaxed);
  return true;
}

void FunctionDefinitionCache::insertBody(const Hash128 &Key,
                                         CachedBody Body) {
  Shard &S = shardFor(Key);
  uint64_t Per = perShardCapacity();
  std::lock_guard<std::mutex> Lock(S.Mutex);
  auto [It, Inserted] = S.Map.emplace(Key, std::move(Body));
  if (!Inserted)
    return;
  S.Order.push_back(Key);
  // FIFO displacement. Order only ever holds live keys (eviction is the
  // sole eraser and pops as it erases), so the front is always present.
  while (Per != 0 && S.Map.size() > Per) {
    S.Map.erase(S.Order.front());
    S.Order.pop_front();
    Evictions.fetch_add(1, std::memory_order_relaxed);
  }
}

void FunctionDefinitionCache::insert(const std::string &Key,
                                     const Function &F) {
  // Anti-poisoning backstop: a live function with no body is the
  // signature of a half-built clone; storing it would splice an empty
  // body into every later unit that hits this key.
  if (F.Blocks.empty() && !F.Eliminated && !F.IsExternal) {
    RejectedInserts.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  CachedBody Body;
  Body.NumRegs = F.NumRegs;
  Body.FrameSize = F.FrameSize;
  Body.Blocks = F.Blocks;
  Body.RegNames = F.RegNames;
  Body.Size = F.size();
  insertBody(hash128(Key), std::move(Body));
}

//===----------------------------------------------------------------------===//
// Body payload (de)serialization
//===----------------------------------------------------------------------===//

namespace {

/// Text encoding of one CachedBody, line-oriented:
///   h <NumRegs> <FrameSize> <Size> <nBlocks> <nRegNames>
///   b <nInstrs>                        (per block)
///   i <op> <dst> <s1> <s2> <imm> <t> <t2> <callee> <site> <nargs> [args]
///   r<name>                            (per register name; may be empty)
std::string serializeBody(uint32_t NumRegs, int64_t FrameSize,
                          uint64_t Size,
                          const std::vector<BasicBlock> &Blocks,
                          const std::vector<std::string> &RegNames) {
  std::string Out;
  Out += "h " + std::to_string(NumRegs) + " " + std::to_string(FrameSize) +
         " " + std::to_string(Size) + " " + std::to_string(Blocks.size()) +
         " " + std::to_string(RegNames.size()) + "\n";
  for (const BasicBlock &B : Blocks) {
    Out += "b " + std::to_string(B.Instrs.size()) + "\n";
    for (const Instr &I : B.Instrs) {
      Out += "i " + std::to_string(static_cast<int>(I.Op)) + " " +
             std::to_string(I.Dst) + " " + std::to_string(I.Src1) + " " +
             std::to_string(I.Src2) + " " + std::to_string(I.Imm) + " " +
             std::to_string(I.Target) + " " + std::to_string(I.Target2) +
             " " + std::to_string(I.Callee) + " " +
             std::to_string(I.SiteId) + " " + std::to_string(I.Args.size());
      for (Reg A : I.Args)
        Out += " " + std::to_string(A);
      Out += "\n";
    }
  }
  for (const std::string &Name : RegNames)
    Out += "r" + Name + "\n";
  return Out;
}

bool parseI64(std::string_view Text, int64_t &Out) {
  if (Text.empty())
    return false;
  int64_t Value = 0;
  auto [Ptr, Ec] =
      std::from_chars(Text.data(), Text.data() + Text.size(), Value);
  if (Ec != std::errc() || Ptr != Text.data() + Text.size())
    return false;
  Out = Value;
  return true;
}

bool parseU64(std::string_view Text, uint64_t &Out) {
  if (!Text.empty() && Text.front() == '-')
    return false;
  int64_t V = 0;
  if (!parseI64(Text, V))
    return false;
  Out = static_cast<uint64_t>(V);
  return true;
}

/// Line cursor over a payload; strict (every line must be terminated).
struct LineCursor {
  std::string_view Text;
  size_t Pos = 0;

  bool next(std::string_view &Line) {
    if (Pos >= Text.size())
      return false;
    size_t Nl = Text.find('\n', Pos);
    if (Nl == std::string_view::npos)
      return false;
    Line = Text.substr(Pos, Nl - Pos);
    Pos = Nl + 1;
    return true;
  }
  bool atEnd() const { return Pos == Text.size(); }
};

bool splitWs(std::string_view Line, std::vector<std::string_view> &Out) {
  Out.clear();
  size_t Pos = 0;
  while (Pos <= Line.size()) {
    size_t Space = Line.find(' ', Pos);
    std::string_view Field = Space == std::string_view::npos
                                 ? Line.substr(Pos)
                                 : Line.substr(Pos, Space - Pos);
    if (Field.empty())
      return false;
    Out.push_back(Field);
    if (Space == std::string_view::npos)
      break;
    Pos = Space + 1;
  }
  return !Out.empty();
}

} // namespace

bool FunctionDefinitionCache::saveToFile(const std::string &Path,
                                         std::string *Error,
                                         FaultSession *Faults) const {
  std::vector<CacheStoreRecord> Records;
  for (const auto &S : Shards) {
    std::lock_guard<std::mutex> Lock(S->Mutex);
    for (const auto &[Key, Body] : S->Map) {
      CacheStoreRecord R;
      R.Key = toHex128(Key);
      R.Payload = serializeBody(Body.NumRegs, Body.FrameSize,
                                Body.Size, Body.Blocks, Body.RegNames);
      Records.push_back(std::move(R));
    }
  }
  // Canonical order: sorted by content address, so equal contents give
  // byte-identical stores regardless of insertion history.
  std::sort(Records.begin(), Records.end(),
            [](const CacheStoreRecord &A, const CacheStoreRecord &B) {
              return A.Key < B.Key;
            });

  FunctionCacheStats Stats = getStats();
  CacheStoreHeader Header;
  Header.Epoch = kFormatEpoch;
  Header.Fingerprint = getOptionsFingerprint();
  Header.Stats = {Stats.Hits,           Stats.Misses,
                  Stats.InstrsServed,   Stats.RejectedInserts,
                  Stats.Evictions,      Stats.StaleRejected,
                  Stats.CorruptRejected, Stats.PersistentHits};
  return saveCacheStore(Path, Header, Records, Error, Faults);
}

CacheLoadStatus FunctionDefinitionCache::loadFromFile(const std::string &Path,
                                                      std::string *Detail) {
  CacheStoreLoadResult Store =
      loadCacheStore(Path, kFormatEpoch, getOptionsFingerprint());
  if (Detail)
    *Detail = Store.Error;
  switch (Store.Status) {
  case CacheStoreStatus::NoFile:
    return CacheLoadStatus::NoFile;
  case CacheStoreStatus::BadMagic:
    CorruptRejected.fetch_add(1, std::memory_order_relaxed);
    return CacheLoadStatus::Corrupt;
  case CacheStoreStatus::Stale:
    StaleRejected.fetch_add(1, std::memory_order_relaxed);
    return CacheLoadStatus::Stale;
  case CacheStoreStatus::Loaded:
    break;
  }

  CorruptRejected.fetch_add(Store.CorruptRecords, std::memory_order_relaxed);

  // Cumulative counter base (trusted only when the store's whole-file
  // checksum verified; loadCacheStore zeroes the stats otherwise).
  if (Store.Header.Stats.size() == 8) {
    BaseHits.fetch_add(Store.Header.Stats[0], std::memory_order_relaxed);
    BaseMisses.fetch_add(Store.Header.Stats[1], std::memory_order_relaxed);
    BaseInstrsServed.fetch_add(Store.Header.Stats[2],
                               std::memory_order_relaxed);
    BaseRejectedInserts.fetch_add(Store.Header.Stats[3],
                                  std::memory_order_relaxed);
    BaseEvictions.fetch_add(Store.Header.Stats[4],
                            std::memory_order_relaxed);
    BaseStaleRejected.fetch_add(Store.Header.Stats[5],
                                std::memory_order_relaxed);
    BaseCorruptRejected.fetch_add(Store.Header.Stats[6],
                                  std::memory_order_relaxed);
    BasePersistentHits.fetch_add(Store.Header.Stats[7],
                                 std::memory_order_relaxed);
  }

  for (const CacheStoreRecord &R : Store.Records) {
    Hash128 Key;
    if (!parseHex128(R.Key, Key)) {
      CorruptRejected.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    CachedBody Body;
    Body.FromDisk = true;

    LineCursor Cursor{R.Payload};
    std::vector<std::string_view> F;
    std::string_view Line;
    uint64_t NumRegs = 0, Size = 0, NumBlocks = 0, NumNames = 0;
    bool Ok = Cursor.next(Line) && splitWs(Line, F) && F.size() == 6 &&
              F[0] == "h" && parseU64(F[1], NumRegs) &&
              parseI64(F[2], Body.FrameSize) && parseU64(F[3], Size) &&
              parseU64(F[4], NumBlocks) && parseU64(F[5], NumNames);
    uint64_t InstrCount = 0;
    for (uint64_t B = 0; Ok && B < NumBlocks; ++B) {
      uint64_t NumInstrs = 0;
      Ok = Cursor.next(Line) && splitWs(Line, F) && F.size() == 2 &&
           F[0] == "b" && parseU64(F[1], NumInstrs);
      if (!Ok)
        break;
      BasicBlock Block;
      Block.Instrs.reserve(NumInstrs);
      for (uint64_t I = 0; Ok && I < NumInstrs; ++I) {
        int64_t Op = 0, Dst = 0, Src1 = 0, Src2 = 0, Target = 0,
                Target2 = 0, Callee = 0;
        uint64_t Site = 0, NumArgs = 0;
        Instr Ins;
        Ok = Cursor.next(Line) && splitWs(Line, F) && F.size() >= 11 &&
             F[0] == "i" && parseI64(F[1], Op) && parseI64(F[2], Dst) &&
             parseI64(F[3], Src1) && parseI64(F[4], Src2) &&
             parseI64(F[5], Ins.Imm) && parseI64(F[6], Target) &&
             parseI64(F[7], Target2) && parseI64(F[8], Callee) &&
             parseU64(F[9], Site) && parseU64(F[10], NumArgs) &&
             F.size() == 11 + NumArgs && Op >= 0 &&
             Op <= static_cast<int64_t>(Opcode::Ret);
        if (!Ok)
          break;
        Ins.Op = static_cast<Opcode>(Op);
        Ins.Dst = static_cast<Reg>(Dst);
        Ins.Src1 = static_cast<Reg>(Src1);
        Ins.Src2 = static_cast<Reg>(Src2);
        Ins.Target = static_cast<BlockId>(Target);
        Ins.Target2 = static_cast<BlockId>(Target2);
        Ins.Callee = static_cast<FuncId>(Callee);
        Ins.SiteId = static_cast<uint32_t>(Site);
        for (uint64_t A = 0; A < NumArgs; ++A) {
          int64_t Arg = 0;
          Ok = Ok && parseI64(F[11 + A], Arg);
          Ins.Args.push_back(static_cast<Reg>(Arg));
        }
        ++InstrCount;
        Block.Instrs.push_back(std::move(Ins));
      }
      Body.Blocks.push_back(std::move(Block));
    }
    for (uint64_t N = 0; Ok && N < NumNames; ++N) {
      Ok = Cursor.next(Line) && !Line.empty() && Line.front() == 'r';
      if (Ok)
        Body.RegNames.push_back(std::string(Line.substr(1)));
    }
    // Strict: no trailing bytes, derived size must agree, and the same
    // structural backstop insert() applies (no bodiless live entries).
    Ok = Ok && Cursor.atEnd() && InstrCount == Size && !Body.Blocks.empty();
    if (!Ok) {
      CorruptRejected.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    Body.NumRegs = static_cast<uint32_t>(NumRegs);
    Body.Size = Size;
    insertBody(Key, std::move(Body));
  }
  return CacheLoadStatus::Loaded;
}

FunctionCacheStats FunctionDefinitionCache::getStats() const {
  FunctionCacheStats Stats;
  Stats.Hits = Hits.load(std::memory_order_relaxed) +
               BaseHits.load(std::memory_order_relaxed);
  Stats.Misses = Misses.load(std::memory_order_relaxed) +
                 BaseMisses.load(std::memory_order_relaxed);
  Stats.InstrsServed = InstrsServed.load(std::memory_order_relaxed) +
                       BaseInstrsServed.load(std::memory_order_relaxed);
  Stats.RejectedInserts =
      RejectedInserts.load(std::memory_order_relaxed) +
      BaseRejectedInserts.load(std::memory_order_relaxed);
  Stats.Evictions = Evictions.load(std::memory_order_relaxed) +
                    BaseEvictions.load(std::memory_order_relaxed);
  Stats.StaleRejected = StaleRejected.load(std::memory_order_relaxed) +
                        BaseStaleRejected.load(std::memory_order_relaxed);
  Stats.CorruptRejected =
      CorruptRejected.load(std::memory_order_relaxed) +
      BaseCorruptRejected.load(std::memory_order_relaxed);
  Stats.PersistentHits = PersistentHits.load(std::memory_order_relaxed) +
                         BasePersistentHits.load(std::memory_order_relaxed);
  for (const auto &S : Shards) {
    std::lock_guard<std::mutex> Lock(S->Mutex);
    Stats.Entries += S->Map.size();
  }
  return Stats;
}

void FunctionDefinitionCache::clear() {
  for (const auto &S : Shards) {
    std::lock_guard<std::mutex> Lock(S->Mutex);
    S->Map.clear();
    S->Order.clear();
  }
  for (std::atomic<uint64_t> *C :
       {&Hits, &Misses, &InstrsServed, &RejectedInserts, &Evictions,
        &StaleRejected, &CorruptRejected, &PersistentHits, &BaseHits,
        &BaseMisses, &BaseInstrsServed, &BaseRejectedInserts,
        &BaseEvictions, &BaseStaleRejected, &BaseCorruptRejected,
        &BasePersistentHits})
    C->store(0, std::memory_order_relaxed);
}
