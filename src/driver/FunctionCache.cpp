//===- driver/FunctionCache.cpp --------------------------------------------===//
//
// Part of the impact-inline project, distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "driver/FunctionCache.h"

#include "ir/IrPrinter.h"

using namespace impact;

FunctionDefinitionCache::FunctionDefinitionCache(unsigned ShardCount) {
  if (ShardCount == 0)
    ShardCount = 1;
  Shards.reserve(ShardCount);
  for (unsigned I = 0; I != ShardCount; ++I)
    Shards.push_back(std::make_unique<Shard>());
}

std::string FunctionDefinitionCache::makeKey(const Function &F,
                                             const OptOptions &Opts) {
  // Every OptOptions field must be fingerprinted below, one line per
  // knob: a knob missing here silently serves bodies optimized under a
  // different pass set to cache hits. The size tripwire catches a new
  // field that changes the struct's layout; the exhaustive toggle test
  // (PipelineTests, CacheKeyCoversEveryOptOption) catches one that
  // padding hides — update both together with this fingerprint.
  static_assert(sizeof(OptOptions) == 12,
                "OptOptions changed: update makeKey's option fingerprint "
                "and the sizeof above");
  std::string Key;
  Key.reserve(64 + F.size() * 24);
  // Option fingerprint: every knob that steers the pre-opt pipeline.
  Key += 'o';
  Key += static_cast<char>('0' + Opts.ConstantFolding);
  Key += static_cast<char>('0' + Opts.JumpOptimization);
  Key += static_cast<char>('0' + Opts.CopyPropagation);
  Key += static_cast<char>('0' + Opts.DeadCodeElimination);
  Key += static_cast<char>('0' + Opts.TailRecursionElimination);
  Key += static_cast<char>('0' + Opts.Sccp);
  Key += static_cast<char>('0' + Opts.Peephole);
  Key += static_cast<char>('0' + Opts.LoopInvariantCodeMotion);
  Key += 'i';
  Key += std::to_string(Opts.MaxIterations);
  // Signature and body, rendered exactly (printInstr includes register
  // names, immediates, targets, callee ids, and site ids). The function
  // name is deliberately excluded: renaming cannot affect the optimizer.
  Key += "|s";
  Key += std::to_string(F.NumParams);
  Key += ',';
  Key += std::to_string(F.NumRegs);
  Key += ',';
  Key += std::to_string(F.FrameSize);
  Key += ',';
  Key += static_cast<char>('0' + F.ReturnsVoid);
  Key += static_cast<char>('0' + F.AddressTaken);
  Key += static_cast<char>('0' + F.Eliminated);
  for (const BasicBlock &B : F.Blocks) {
    Key += ";b\n";
    for (const Instr &I : B.Instrs) {
      Key += printInstr(I, &F);
      // Tail-recursion elimination rewrites only calls whose callee is the
      // enclosing function, so self-call status is part of the body's
      // optimization-relevant identity: a wrapper whose printed body is
      // byte-identical to a self-recursive function's must not share its
      // key.
      if (I.Op == Opcode::Call && I.Callee == F.Id)
        Key += " @self";
      Key += '\n';
    }
  }
  return Key;
}

FunctionDefinitionCache::Shard &
FunctionDefinitionCache::shardFor(const std::string &Key) {
  size_t H = std::hash<std::string>{}(Key);
  return *Shards[H % Shards.size()];
}

bool FunctionDefinitionCache::lookup(const std::string &Key, Function &F) {
  Shard &S = shardFor(Key);
  std::lock_guard<std::mutex> Lock(S.Mutex);
  auto It = S.Map.find(Key);
  if (It == S.Map.end()) {
    Misses.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  const CachedBody &Body = It->second;
  F.NumRegs = Body.NumRegs;
  F.FrameSize = Body.FrameSize;
  F.Blocks = Body.Blocks;
  F.RegNames = Body.RegNames;
  Hits.fetch_add(1, std::memory_order_relaxed);
  InstrsServed.fetch_add(Body.Size, std::memory_order_relaxed);
  return true;
}

void FunctionDefinitionCache::insert(const std::string &Key,
                                     const Function &F) {
  // Anti-poisoning backstop: a live function with no body is the
  // signature of a half-built clone; storing it would splice an empty
  // body into every later unit that hits this key.
  if (F.Blocks.empty() && !F.Eliminated && !F.IsExternal) {
    RejectedInserts.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  CachedBody Body;
  Body.NumRegs = F.NumRegs;
  Body.FrameSize = F.FrameSize;
  Body.Blocks = F.Blocks;
  Body.RegNames = F.RegNames;
  Body.Size = F.size();
  Shard &S = shardFor(Key);
  std::lock_guard<std::mutex> Lock(S.Mutex);
  S.Map.emplace(Key, std::move(Body));
}

FunctionCacheStats FunctionDefinitionCache::getStats() const {
  FunctionCacheStats Stats;
  Stats.Hits = Hits.load(std::memory_order_relaxed);
  Stats.Misses = Misses.load(std::memory_order_relaxed);
  Stats.InstrsServed = InstrsServed.load(std::memory_order_relaxed);
  Stats.RejectedInserts = RejectedInserts.load(std::memory_order_relaxed);
  for (const auto &S : Shards) {
    std::lock_guard<std::mutex> Lock(S->Mutex);
    Stats.Entries += S->Map.size();
  }
  return Stats;
}

void FunctionDefinitionCache::clear() {
  for (const auto &S : Shards) {
    std::lock_guard<std::mutex> Lock(S->Mutex);
    S->Map.clear();
  }
  Hits.store(0, std::memory_order_relaxed);
  Misses.store(0, std::memory_order_relaxed);
  InstrsServed.store(0, std::memory_order_relaxed);
  RejectedInserts.store(0, std::memory_order_relaxed);
}
