//===- driver/Pipeline.h - The full experiment pipeline ------------------------===//
//
// Part of the impact-inline project, distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The four-step experiment of §4: compile, profile on representative
/// inputs, recompile with inline expansion driven by the profile, and
/// measure the effect by re-profiling on the same inputs. The result holds
/// both phases' metrics, so every row of Tables 1-4 can be derived from one
/// PipelineResult.
///
//===----------------------------------------------------------------------===//

#ifndef IMPACT_DRIVER_PIPELINE_H
#define IMPACT_DRIVER_PIPELINE_H

#include "core/InlinePass.h"
#include "driver/Compilation.h"
#include "opt/PassManager.h"
#include "profile/Profiler.h"

#include <string>
#include <vector>

namespace impact {

struct PipelineOptions {
  /// Pre-inline optimization (the paper applies constant folding and jump
  /// optimization before inline expansion).
  bool RunPreOpt = true;
  OptOptions PreOpt;
  InlineOptions Inline;
  /// Step/stack limits for every profiled run.
  RunOptions Run;
};

/// Dynamic metrics of one phase (pre- or post-inline), averaged per run.
struct PhaseMetrics {
  uint64_t StaticSize = 0;
  double AvgInstrs = 0.0;
  double AvgControlTransfers = 0.0;
  double AvgCalls = 0.0;
  double AvgExternalCalls = 0.0;
  double AvgPointerCalls = 0.0;
  /// Dynamic calls attributable to each class (per run).
  double DynExternal = 0.0;
  double DynPointer = 0.0;
  double DynUnsafe = 0.0;
  double DynSafe = 0.0;

  /// Table 4's "IL's per call".
  double getInstrsPerCall() const {
    return AvgCalls == 0.0 ? AvgInstrs : AvgInstrs / AvgCalls;
  }
  /// Table 4's "CT's per call".
  double getControlTransfersPerCall() const {
    return AvgCalls == 0.0 ? AvgControlTransfers
                           : AvgControlTransfers / AvgCalls;
  }
};

struct PipelineResult {
  bool Ok = false;
  std::string Error;

  PhaseMetrics Before;
  PhaseMetrics After;
  InlineResult Inline;
  /// Classification of the pre-inline module (Tables 2/3).
  // (Inline.Classes is exactly this; kept there to avoid duplication.)

  /// Program outputs per input, for both phases; inline expansion must
  /// leave them identical.
  std::vector<std::string> OutputsBefore;
  std::vector<std::string> OutputsAfter;

  /// The inlined module (post everything).
  Module FinalModule;

  /// Table 4's "call dec": percentage of dynamic calls eliminated.
  double getCallDecreasePercent() const {
    if (Before.AvgCalls == 0.0)
      return 0.0;
    double Dec = 100.0 * (Before.AvgCalls - After.AvgCalls) / Before.AvgCalls;
    return Dec;
  }
  double getCodeIncreasePercent() const {
    return Inline.getCodeIncreasePercent();
  }
  bool outputsMatch() const { return OutputsBefore == OutputsAfter; }
};

/// Runs the whole experiment on \p Source over \p Inputs.
PipelineResult runPipeline(std::string_view Source, std::string Name,
                           const std::vector<RunInput> &Inputs,
                           const PipelineOptions &Options = PipelineOptions());

/// Same, starting from an already-compiled module (consumed).
PipelineResult runPipeline(Module M, const std::vector<RunInput> &Inputs,
                           const PipelineOptions &Options = PipelineOptions());

} // namespace impact

#endif // IMPACT_DRIVER_PIPELINE_H
