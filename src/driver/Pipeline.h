//===- driver/Pipeline.h - The full experiment pipeline ------------------------===//
//
// Part of the impact-inline project, distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The four-step experiment of §4: compile, profile on representative
/// inputs, recompile with inline expansion driven by the profile, and
/// measure the effect by re-profiling on the same inputs. The result holds
/// both phases' metrics, so every row of Tables 1-4 can be derived from one
/// PipelineResult.
///
//===----------------------------------------------------------------------===//

#ifndef IMPACT_DRIVER_PIPELINE_H
#define IMPACT_DRIVER_PIPELINE_H

#include "analysis/Analyzer.h"
#include "core/InlinePass.h"
#include "driver/Compilation.h"
#include "opt/PassManager.h"
#include "profile/Profiler.h"

#include <string>
#include <utility>
#include <vector>

namespace impact {

class FunctionDefinitionCache;
struct FaultPlan;

/// Structured description of one unit's pipeline failure — the quarantine
/// record the batch pipeline and the bench harness report instead of
/// aborting the process. Every failure path (diagnostics, verifier
/// violations, interpreter traps and step-limit exhaustion, thrown
/// exceptions, injected faults) converges here.
struct UnitFailure {
  /// The compilation unit (job name / module name).
  std::string Unit;
  /// Pipeline stage that failed: "compile", "verify", "pre-opt",
  /// "profile", "inline", "analyze", or "re-profile".
  std::string Stage;
  /// Failure class: "diagnostic", "trap", "step-limit", "oom",
  /// "fault-injected", "finding" (error-severity analyzer findings), or
  /// "exception".
  std::string Reason;
  /// Human detail: rendered diagnostics, trap message, or what().
  std::string Detail;
  /// Attempts consumed (> 1 when a retry policy was configured).
  unsigned Attempts = 1;

  /// "unit 'wc' failed at profile (step-limit) after 1 attempt(s): ...".
  std::string render() const;
};

struct PipelineOptions {
  /// Pre-inline optimization (the paper applies constant folding and jump
  /// optimization before inline expansion).
  bool RunPreOpt = true;
  OptOptions PreOpt;
  InlineOptions Inline;
  /// Step/stack limits for every profiled run.
  RunOptions Run;
  /// Which execution engine measures the profile and re-profile runs
  /// (interp/Engine.h): the walking interpreter (oracle), the bytecode VM,
  /// or both with divergence turned into a quarantinable trap. Engine
  /// choice never changes profiles or outputs — the differential tier
  /// enforces bit-identical results — only wall time.
  ExecEngine Engine = ExecEngine::Walker;
  /// How the profile and re-profile runs are instrumented
  /// (profile/MinCover.h): full per-site/per-opcode counters, or
  /// minimum-coverage co-tree probes with Kirchhoff count inference.
  /// Instrumentation choice never changes profiles or outputs — the
  /// mincover property tier enforces bit-identical ProfileData — only the
  /// profiling phase's wall time.
  InstrumentMode Instrument = InstrumentMode::Full;
  /// Optional function-definition cache for the pre-opt stage (see
  /// driver/FunctionCache.h). When set, post-pre-opt bodies are memoized
  /// across pipeline runs; the batch pipeline shares one cache between all
  /// its jobs. A hit is bit-identical to re-running the passes, so results
  /// never depend on cache state.
  FunctionDefinitionCache *DefCache = nullptr;
  /// When set, the measuring profile runs (step 2) are skipped and inline
  /// expansion is driven by this previously saved profile instead
  /// (profile/ProfileIO.h). The serialization is exact, so a reloaded
  /// profile reproduces the measuring run's InlinePlan bit for bit.
  /// OutputsBefore stays empty in this mode (nothing was executed), which
  /// makes outputsMatch() vacuously true.
  const ProfileData *ProfileIn = nullptr;
  /// When true, render the planner's per-site rulings into
  /// PipelineResult::DecisionTrace (the human table form of
  /// driver/DecisionTrace.h).
  bool EmitDecisionTrace = false;
  /// When true, run the static analyzer (analysis/Analyzer.h) on the
  /// post-inline module before re-profiling. Warn findings ride along in
  /// PipelineResult::Analysis; error findings (broken inliner invariants)
  /// quarantine the unit with UnitFailure stage "analyze". The analyzer
  /// never mutates the module, so surviving units are bit-identical with
  /// this on or off.
  bool Analyze = false;
  /// Rule selection and tolerances for the analyze stage.
  AnalysisOptions Analysis;
  /// Deterministic fault plan (support/FaultInjection.h), normally parsed
  /// from IMPACT_FAULTS. Each attempt opens its own FaultSession, so
  /// injection is reproducible at any batch thread count. Null = inert.
  const FaultPlan *Faults = nullptr;
  /// Extra attempts after a failed one (bounded retry for transient
  /// faults). 0 = fail fast. Retries recompile from source (or re-run a
  /// copy of the input module), so a successful retry is bit-identical
  /// to a run that never failed.
  unsigned RetryAttempts = 0;
};

/// Wall-clock and work counters for one pipeline run, per phase. Purely
/// observational: none of these feed back into compilation, so two runs of
/// the same job produce identical modules and metrics regardless of
/// timing, threading, or cache state.
struct PipelineStats {
  double CompileSeconds = 0.0;
  double PreOptSeconds = 0.0;
  double ProfileSeconds = 0.0;
  double InlineSeconds = 0.0;
  double AnalyzeSeconds = 0.0;
  double ReProfileSeconds = 0.0;
  /// Per-pass breakdown of the pre-opt stage (cache hits skip it).
  OptStats PreOpt;
  /// Function-definition cache effectiveness for this run (0/0 when no
  /// cache was attached).
  uint64_t CacheHits = 0;
  uint64_t CacheMisses = 0;
  /// 1 when this run ended in a quarantined UnitFailure (sums to the
  /// batch's failed-unit count through merge()).
  uint64_t UnitsFailed = 0;
  /// Attempts beyond the first consumed by the retry policy.
  uint64_t Retries = 0;

  double getTotalSeconds() const {
    return CompileSeconds + PreOptSeconds + ProfileSeconds + InlineSeconds +
           AnalyzeSeconds + ReProfileSeconds;
  }

  void merge(const PipelineStats &Other) {
    CompileSeconds += Other.CompileSeconds;
    PreOptSeconds += Other.PreOptSeconds;
    ProfileSeconds += Other.ProfileSeconds;
    InlineSeconds += Other.InlineSeconds;
    AnalyzeSeconds += Other.AnalyzeSeconds;
    ReProfileSeconds += Other.ReProfileSeconds;
    PreOpt.merge(Other.PreOpt);
    CacheHits += Other.CacheHits;
    CacheMisses += Other.CacheMisses;
    UnitsFailed += Other.UnitsFailed;
    Retries += Other.Retries;
  }
};

/// Dynamic metrics of one phase (pre- or post-inline), averaged per run.
struct PhaseMetrics {
  uint64_t StaticSize = 0;
  double AvgInstrs = 0.0;
  double AvgControlTransfers = 0.0;
  double AvgCalls = 0.0;
  double AvgExternalCalls = 0.0;
  double AvgPointerCalls = 0.0;
  /// Dynamic calls attributable to each class (per run).
  double DynExternal = 0.0;
  double DynPointer = 0.0;
  double DynUnsafe = 0.0;
  double DynSafe = 0.0;

  /// Table 4's "IL's per call".
  double getInstrsPerCall() const {
    return AvgCalls == 0.0 ? AvgInstrs : AvgInstrs / AvgCalls;
  }
  /// Table 4's "CT's per call".
  double getControlTransfersPerCall() const {
    return AvgCalls == 0.0 ? AvgControlTransfers
                           : AvgControlTransfers / AvgCalls;
  }

  /// Exact (bitwise) equality — the parallel-determinism property test
  /// asserts batch and serial pipelines agree on every field.
  friend bool operator==(const PhaseMetrics &, const PhaseMetrics &) = default;
};

struct PipelineResult {
  bool Ok = false;
  std::string Error;
  /// Structured form of Error: the stage, reason class, and detail the
  /// batch pipeline quarantines and reports. Meaningful only when !Ok.
  UnitFailure Failure;
  /// Arrivals per fault site (sorted by site), recorded whenever
  /// PipelineOptions::Faults is non-null — including an empty plan, which
  /// is how the fault-matrix test discovers each site's occurrence range.
  std::vector<std::pair<std::string, uint64_t>> FaultSiteHits;

  PhaseMetrics Before;
  PhaseMetrics After;
  InlineResult Inline;
  /// Classification of the pre-inline module (Tables 2/3).
  // (Inline.Classes is exactly this; kept there to avoid duplication.)

  /// Program outputs per input, for both phases; inline expansion must
  /// leave them identical.
  std::vector<std::string> OutputsBefore;
  std::vector<std::string> OutputsAfter;

  /// The pre-inline profile that drove planning: measured in step 2, or a
  /// copy of *ProfileIn when the measuring runs were skipped. This is what
  /// --profile-out= persists (profile/ProfileIO.h).
  ProfileData ProfileBefore;
  /// Per-site decision trace table; filled when EmitDecisionTrace is set.
  std::string DecisionTrace;
  /// Analyzer findings (sorted); filled when PipelineOptions::Analyze is
  /// set. Error findings also fail the unit (Failure.Stage == "analyze"),
  /// but the full report survives here for rendering either way.
  AnalysisReport Analysis;

  /// The inlined module (post everything).
  Module FinalModule;

  /// Per-phase wall times, pre-opt pass breakdown, and cache counters.
  PipelineStats Stats;

  /// Table 4's "call dec": percentage of dynamic calls eliminated.
  double getCallDecreasePercent() const {
    if (Before.AvgCalls == 0.0)
      return 0.0;
    double Dec = 100.0 * (Before.AvgCalls - After.AvgCalls) / Before.AvgCalls;
    return Dec;
  }
  double getCodeIncreasePercent() const {
    return Inline.getCodeIncreasePercent();
  }
  /// Vacuously true when there are no "before" outputs to compare — i.e.
  /// when ProfileIn skipped the measuring runs.
  bool outputsMatch() const {
    return OutputsBefore.empty() || OutputsBefore == OutputsAfter;
  }
};

/// Runs the whole experiment on \p Source over \p Inputs.
PipelineResult runPipeline(std::string_view Source, std::string Name,
                           const std::vector<RunInput> &Inputs,
                           const PipelineOptions &Options = PipelineOptions());

/// Same, starting from an already-compiled module (consumed).
PipelineResult runPipeline(Module M, const std::vector<RunInput> &Inputs,
                           const PipelineOptions &Options = PipelineOptions());

} // namespace impact

#endif // IMPACT_DRIVER_PIPELINE_H
