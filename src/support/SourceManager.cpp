//===- support/SourceManager.cpp ------------------------------------------===//
//
// Part of the impact-inline project, distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/SourceManager.h"

#include <algorithm>
#include <cassert>

using namespace impact;

SourceManager::SourceManager(std::string BufferName, std::string Text)
    : BufferName(std::move(BufferName)), Text(std::move(Text)) {
  LineStarts.push_back(0);
  for (uint32_t I = 0, E = static_cast<uint32_t>(this->Text.size()); I != E;
       ++I)
    if (this->Text[I] == '\n')
      LineStarts.push_back(I + 1);
}

LineColumn SourceManager::getLineColumn(SourceLoc Loc) const {
  if (!Loc.isValid() || Loc.Offset > Text.size())
    return LineColumn();
  auto It = std::upper_bound(LineStarts.begin(), LineStarts.end(), Loc.Offset);
  assert(It != LineStarts.begin() && "LineStarts always contains 0");
  unsigned Line = static_cast<unsigned>(It - LineStarts.begin());
  unsigned Column = Loc.Offset - *(It - 1) + 1;
  return LineColumn{Line, Column};
}

std::string_view SourceManager::getLineText(SourceLoc Loc) const {
  LineColumn LC = getLineColumn(Loc);
  if (LC.Line == 0)
    return {};
  uint32_t Begin = LineStarts[LC.Line - 1];
  uint32_t End = LC.Line < LineStarts.size()
                     ? LineStarts[LC.Line] - 1
                     : static_cast<uint32_t>(Text.size());
  return std::string_view(Text).substr(Begin, End - Begin);
}
