//===- support/SourceLocation.h - Source positions ------------------------===//
//
// Part of the impact-inline project, distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A source location is a byte offset into a single in-memory buffer; the
/// SourceManager converts offsets to human-readable line/column pairs.
///
//===----------------------------------------------------------------------===//

#ifndef IMPACT_SUPPORT_SOURCELOCATION_H
#define IMPACT_SUPPORT_SOURCELOCATION_H

#include <cstdint>

namespace impact {

/// A position inside the (single) source buffer of a compilation.
struct SourceLoc {
  /// Byte offset from the start of the buffer; UINT32_MAX means "unknown".
  uint32_t Offset = UINT32_MAX;

  SourceLoc() = default;
  explicit SourceLoc(uint32_t Offset) : Offset(Offset) {}

  bool isValid() const { return Offset != UINT32_MAX; }

  friend bool operator==(SourceLoc A, SourceLoc B) {
    return A.Offset == B.Offset;
  }
  friend bool operator!=(SourceLoc A, SourceLoc B) { return !(A == B); }
};

/// A resolved (1-based) line/column pair.
struct LineColumn {
  unsigned Line = 0;
  unsigned Column = 0;
};

} // namespace impact

#endif // IMPACT_SUPPORT_SOURCELOCATION_H
