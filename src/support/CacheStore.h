//===- support/CacheStore.h - Versioned, checksummed record store ----------===//
//
// Part of the impact-inline project, distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The on-disk container behind the persistent function-definition cache
/// (`impact-cache v1`). A store file is a header (format magic, epoch,
/// an options fingerprint, cumulative counters) followed by key→payload
/// records and a whole-file checksum trailer:
///
///   impact-cache v1
///   epoch <N>
///   options <fingerprint>
///   stats <k> <c0> <c1> ... <ck-1>
///   entry <key> <payload-bytes> <fnv64(key ':' payload)>
///   <payload bytes>
///   ...
///   end <fnv64 of everything above>
///
/// The container treats keys and payloads as opaque bytes (keys must be
/// whitespace-free; payloads may contain anything including newlines —
/// they are length-framed). The caller defines what the counters mean.
///
/// Staleness and corruption semantics, which the server tier's recovery
/// tests pin:
///  - a missing file is a cold start (Status NoFile), never an error;
///  - a bad magic line or unparseable header rejects the whole file
///    (BadMagic) — nothing in it can be trusted;
///  - an epoch or fingerprint mismatch rejects the whole file (Stale):
///    records written under other format/option assumptions are rebuilt,
///    never spliced;
///  - a record whose checksum does not verify is dropped and counted in
///    CorruptRecords; records that verify individually are kept even
///    when later bytes are truncated or flipped, because each record's
///    checksum covers its own key and payload;
///  - the cumulative stats line is trusted only when the whole-file
///    checksum verifies (a flipped digit there is otherwise
///    undetectable), so WholeFileVerified == false zeroes Header.Stats.
///
/// Writes are atomic: bytes go to "<path>.tmp" and are renamed over the
/// store only after a clean close, so a crash mid-write (simulated by the
/// "cache-persist" fault site) leaves the previous store intact and at
/// worst a partial temp file that the next save overwrites.
///
//===----------------------------------------------------------------------===//

#ifndef IMPACT_SUPPORT_CACHESTORE_H
#define IMPACT_SUPPORT_CACHESTORE_H

#include <cstdint>
#include <string>
#include <vector>

namespace impact {

class FaultSession;

/// One key→payload record. Key must contain no whitespace/newlines;
/// payload is arbitrary bytes.
struct CacheStoreRecord {
  std::string Key;
  std::string Payload;
};

struct CacheStoreHeader {
  uint64_t Epoch = 0;
  /// Caller-defined staleness fingerprint (e.g. the option-encoding
  /// signature of the function cache).
  std::string Fingerprint;
  /// Caller-defined cumulative counters, carried verbatim.
  std::vector<uint64_t> Stats;
};

enum class CacheStoreStatus {
  Loaded,   ///< Header accepted; Records holds every verified record.
  NoFile,   ///< Path does not exist (cold start).
  BadMagic, ///< Not a parseable impact-cache file; nothing trusted.
  Stale,    ///< Valid file written under another epoch/fingerprint.
};

struct CacheStoreLoadResult {
  CacheStoreStatus Status = CacheStoreStatus::NoFile;
  std::string Error; ///< Detail for NoFile/BadMagic/Stale.
  CacheStoreHeader Header;
  std::vector<CacheStoreRecord> Records;
  /// Records dropped because their checksum or framing did not verify.
  uint64_t CorruptRecords = 0;
  /// True when the trailing whole-file checksum verified; false after
  /// any truncation/corruption (Header.Stats is zeroed then).
  bool WholeFileVerified = false;
};

/// Writes \p Records under \p Header to \p Path atomically. The
/// serialization is deterministic: identical header + records produce
/// identical bytes (records are written in the order given — sort them
/// for a canonical file). \p Faults, when active, is reached at the
/// "cache-persist" site three times per save: before the temp file is
/// opened, mid-write (header flushed, records pending), and after the
/// clean close just before the rename — so an injected crash at
/// occurrence 2 leaves a partial temp and an intact store. Returns false
/// and fills \p Error on failure (the temp is removed on clean failure
/// paths; a thrown fault leaves it, like a real crash would).
bool saveCacheStore(const std::string &Path, const CacheStoreHeader &Header,
                    const std::vector<CacheStoreRecord> &Records,
                    std::string *Error = nullptr,
                    FaultSession *Faults = nullptr);

/// Loads \p Path, accepting only files whose epoch and fingerprint match.
CacheStoreLoadResult loadCacheStore(const std::string &Path,
                                    uint64_t ExpectedEpoch,
                                    const std::string &ExpectedFingerprint);

/// Test-only mutation hook: disables the per-record checksum comparison
/// so the recovery tests can prove it is load-bearing (with the check
/// off, a corrupted record is served and the bit-identity assertions
/// fail). Never set outside tests.
void setCacheStoreChecksumCheckDisabledForTest(bool Disabled);

} // namespace impact

#endif // IMPACT_SUPPORT_CACHESTORE_H
