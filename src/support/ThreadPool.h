//===- support/ThreadPool.h - Work-stealing thread pool --------------------===//
//
// Part of the impact-inline project, distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small work-stealing thread pool for the batch pipeline. Each worker
/// owns a deque: submissions are distributed round-robin, a worker pops
/// from the front of its own deque and steals from the back of a
/// neighbour's when it runs dry.
///
/// Tasks should not throw — the batch pipeline converts every unit
/// failure into a result value before it reaches the pool. As a last
/// line of defense, a task that does throw is contained rather than
/// terminating the process: the exception is swallowed, the failure is
/// counted (getTasksFailed) and its first message kept
/// (getFirstTaskError), and the worker moves on to the next task.
///
/// Determinism contract: the pool schedules *independent* jobs; it provides
/// no ordering guarantees between tasks, so callers must write results to
/// pre-sized slots (never append under a lock) and must not let one job's
/// behaviour depend on another's completion order.
///
//===----------------------------------------------------------------------===//

#ifndef IMPACT_SUPPORT_THREADPOOL_H
#define IMPACT_SUPPORT_THREADPOOL_H

#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

namespace impact {

/// Strictly parses a worker-count string (a `--jobs N` operand or the
/// IMPACT_JOBS environment variable) into \p Out, clamped to
/// [1, ThreadPool::getDefaultThreadCount()].
///
/// Unlike a bare strtoul, this rejects empty input and trailing garbage
/// ("4x", "2 4") outright — returning false with \p Out untouched — and
/// turns out-of-range requests (0, negatives, more threads than the
/// hardware has) into the nearest sane value instead of accepting them
/// verbatim. \p Diag, when non-null, receives a one-line explanation
/// whenever the function returns false *or* had to clamp.
bool parseJobCount(std::string_view Text, unsigned &Out,
                   std::string *Diag = nullptr);

class ThreadPool {
public:
  /// \p ThreadCount workers; 0 means one per hardware thread.
  explicit ThreadPool(unsigned ThreadCount = 0);
  /// Waits for all submitted tasks, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  /// Enqueues \p Task; runs on some worker thread.
  void submit(std::function<void()> Task);

  /// Blocks until every submitted task has finished.
  void wait();

  unsigned getThreadCount() const {
    return static_cast<unsigned>(Workers.size());
  }

  /// Tasks that escaped with an exception since construction (0 in a
  /// healthy batch — see the containment note above).
  uint64_t getTasksFailed() const {
    return TasksFailed.load(std::memory_order_relaxed);
  }

  /// what() of the first contained exception, or "" when none.
  std::string getFirstTaskError() const;

  /// hardware_concurrency, clamped to at least 1.
  static unsigned getDefaultThreadCount();

private:
  struct WorkerQueue {
    std::mutex Mutex;
    std::deque<std::function<void()>> Tasks;
  };

  void workerLoop(unsigned Index);
  /// Pops from the front of worker \p Index's own queue.
  bool tryPop(unsigned Index, std::function<void()> &Task);
  /// Steals from the back of some other worker's queue.
  bool trySteal(unsigned Thief, std::function<void()> &Task);

  std::vector<std::unique_ptr<WorkerQueue>> Queues;
  std::vector<std::thread> Workers;

  /// Runs one task, containing any escaping exception.
  void runContained(std::function<void()> &Task);

  /// Tasks submitted but not yet executed (queued anywhere).
  std::atomic<uint64_t> Queued{0};
  /// Tasks whose exceptions were contained (see class comment).
  std::atomic<uint64_t> TasksFailed{0};
  mutable std::mutex TaskErrorMutex;
  std::string FirstTaskError;
  /// Tasks submitted but not yet finished (superset of Queued).
  std::atomic<uint64_t> Pending{0};
  std::atomic<uint64_t> NextQueue{0};
  std::atomic<bool> Stopping{false};

  std::mutex SleepMutex;
  std::condition_variable WorkAvailable; // workers sleep here
  std::condition_variable AllDone;       // wait() sleeps here
};

} // namespace impact

#endif // IMPACT_SUPPORT_THREADPOOL_H
