//===- support/Stopwatch.h - Monotonic wall-clock timing -------------------===//
//
// Part of the impact-inline project, distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A tiny steady-clock stopwatch for the pass/pipeline timing counters.
/// Timing is observability only: no compilation decision may depend on it,
/// so the batch pipeline stays bit-identical to the serial one.
///
//===----------------------------------------------------------------------===//

#ifndef IMPACT_SUPPORT_STOPWATCH_H
#define IMPACT_SUPPORT_STOPWATCH_H

#include <chrono>

namespace impact {

class Stopwatch {
public:
  Stopwatch() : Start(Clock::now()) {}

  /// Seconds elapsed since construction or the last restart().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - Start).count();
  }

  void restart() { Start = Clock::now(); }

private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point Start;
};

} // namespace impact

#endif // IMPACT_SUPPORT_STOPWATCH_H
