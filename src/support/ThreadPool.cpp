//===- support/ThreadPool.cpp ----------------------------------------------===//
//
// Part of the impact-inline project, distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/ThreadPool.h"

#include "support/StringUtils.h"

#include <charconv>

using namespace impact;

unsigned ThreadPool::getDefaultThreadCount() {
  unsigned N = std::thread::hardware_concurrency();
  return N == 0 ? 1 : N;
}

bool impact::parseJobCount(std::string_view Text, unsigned &Out,
                           std::string *Diag) {
  std::string_view Token = trimString(Text);
  long long Value = 0;
  auto [Ptr, Ec] = std::from_chars(Token.data(), Token.data() + Token.size(),
                                   Value);
  if (Token.empty() || Ec != std::errc() ||
      Ptr != Token.data() + Token.size()) {
    if (Diag)
      *Diag = "invalid job count '" + std::string(Text) +
              "' (expected a positive integer)";
    return false;
  }

  unsigned Max = ThreadPool::getDefaultThreadCount();
  if (Value < 1) {
    if (Diag)
      *Diag = "job count " + std::to_string(Value) + " clamped to 1";
    Out = 1;
  } else if (static_cast<unsigned long long>(Value) > Max) {
    if (Diag)
      *Diag = "job count " + std::to_string(Value) + " clamped to " +
              std::to_string(Max) + " (hardware threads)";
    Out = Max;
  } else {
    if (Diag)
      Diag->clear();
    Out = static_cast<unsigned>(Value);
  }
  return true;
}

ThreadPool::ThreadPool(unsigned ThreadCount) {
  if (ThreadCount == 0)
    ThreadCount = getDefaultThreadCount();
  Queues.reserve(ThreadCount);
  for (unsigned I = 0; I != ThreadCount; ++I)
    Queues.push_back(std::make_unique<WorkerQueue>());
  Workers.reserve(ThreadCount);
  for (unsigned I = 0; I != ThreadCount; ++I)
    Workers.emplace_back([this, I] { workerLoop(I); });
}

ThreadPool::~ThreadPool() {
  wait();
  {
    std::lock_guard<std::mutex> Lock(SleepMutex);
    Stopping.store(true);
  }
  WorkAvailable.notify_all();
  for (std::thread &W : Workers)
    W.join();
}

void ThreadPool::submit(std::function<void()> Task) {
  // Count before publishing so a worker can never decrement first.
  Pending.fetch_add(1, std::memory_order_relaxed);
  unsigned Q = static_cast<unsigned>(
      NextQueue.fetch_add(1, std::memory_order_relaxed) % Queues.size());
  {
    std::lock_guard<std::mutex> Lock(Queues[Q]->Mutex);
    Queues[Q]->Tasks.push_back(std::move(Task));
    // Queued counts popable tasks, so it must rise only once the task is
    // in a queue: incrementing before the push lets a worker's wait
    // predicate pass, fail tryPop/trySteal, and spin until the push
    // lands. Inside the lock the pop's decrement cannot precede this.
    Queued.fetch_add(1, std::memory_order_relaxed);
  }
  {
    // Empty critical section pairs with the sleep predicate re-check.
    std::lock_guard<std::mutex> Lock(SleepMutex);
  }
  WorkAvailable.notify_one();
}

bool ThreadPool::tryPop(unsigned Index, std::function<void()> &Task) {
  WorkerQueue &Q = *Queues[Index];
  std::lock_guard<std::mutex> Lock(Q.Mutex);
  if (Q.Tasks.empty())
    return false;
  Task = std::move(Q.Tasks.front());
  Q.Tasks.pop_front();
  Queued.fetch_sub(1, std::memory_order_relaxed);
  return true;
}

bool ThreadPool::trySteal(unsigned Thief, std::function<void()> &Task) {
  for (size_t Offset = 1; Offset != Queues.size(); ++Offset) {
    WorkerQueue &Q = *Queues[(Thief + Offset) % Queues.size()];
    std::lock_guard<std::mutex> Lock(Q.Mutex);
    if (Q.Tasks.empty())
      continue;
    Task = std::move(Q.Tasks.back());
    Q.Tasks.pop_back();
    Queued.fetch_sub(1, std::memory_order_relaxed);
    return true;
  }
  return false;
}

std::string ThreadPool::getFirstTaskError() const {
  std::lock_guard<std::mutex> Lock(TaskErrorMutex);
  return FirstTaskError;
}

void ThreadPool::runContained(std::function<void()> &Task) {
  try {
    Task();
  } catch (const std::exception &E) {
    if (TasksFailed.fetch_add(1, std::memory_order_relaxed) == 0) {
      std::lock_guard<std::mutex> Lock(TaskErrorMutex);
      FirstTaskError = E.what();
    }
  } catch (...) {
    if (TasksFailed.fetch_add(1, std::memory_order_relaxed) == 0) {
      std::lock_guard<std::mutex> Lock(TaskErrorMutex);
      FirstTaskError = "unknown exception";
    }
  }
}

void ThreadPool::workerLoop(unsigned Index) {
  for (;;) {
    std::function<void()> Task;
    if (tryPop(Index, Task) || trySteal(Index, Task)) {
      runContained(Task);
      if (Pending.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        std::lock_guard<std::mutex> Lock(SleepMutex);
        AllDone.notify_all();
      }
      continue;
    }
    std::unique_lock<std::mutex> Lock(SleepMutex);
    WorkAvailable.wait(Lock, [this] {
      return Stopping.load() || Queued.load(std::memory_order_relaxed) != 0;
    });
    if (Stopping.load() && Queued.load(std::memory_order_relaxed) == 0)
      return;
  }
}

void ThreadPool::wait() {
  std::unique_lock<std::mutex> Lock(SleepMutex);
  AllDone.wait(Lock,
               [this] { return Pending.load(std::memory_order_acquire) == 0; });
}
