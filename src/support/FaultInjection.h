//===- support/FaultInjection.h - Deterministic fault points ---------------===//
//
// Part of the impact-inline project, distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic, site-keyed fault injection for the batch pipeline's
/// failure-containment tests. A FaultPlan is a list of rules parsed from a
/// spec string (the IMPACT_FAULTS environment variable or a bench's
/// --faults= flag); each pipeline attempt opens a FaultSession that counts
/// arrivals at named boundaries ("fault sites") and fires a rule exactly
/// at its configured occurrence. Firing is a pure function of
/// (unit, site, occurrence, attempt), so an injected failure reproduces
/// bit-for-bit across thread counts and schedules.
///
/// Spec grammar (comma-separated rules, whitespace around rules ignored):
///
///   spec := rule (',' rule)*
///   rule := [unit '/'] site ':' kind '@' occurrence ['x' attempts]
///
///   site       one of getKnownFaultSites(): parse, sema, irgen, pass,
///              cache-lookup, cache-insert, profile, expand, reprofile,
///              cache-persist (the persistent cache-store save path —
///              server scope, not reached by a plain pipeline run;
///              occurrence 1 fires before the temp write, 2 mid-write,
///              3 after the clean close just before the atomic rename)
///   kind       throw     - throw FaultInjectedError from the site
///              diag      - report an injected diagnostic (clean failure)
///              oom       - throw std::bad_alloc (allocation failure)
///              steplimit - force the profiled runs' step limit to 1 so
///                          the interpreter returns StepLimitExceeded;
///                          only valid at the profile/reprofile sites
///   occurrence 1-based arrival index at the site within one attempt
///   attempts   fire only on the first N attempts (a *transient* fault
///              that a retry survives); omitted = every attempt
///   unit       restrict the rule to the named compilation unit;
///              omitted = every unit
///
/// Examples: "profile:steplimit@1", "wc/pass:throw@2",
/// "cache-insert:oom@1", "grep/expand:diag@1x1" (transient).
///
/// Parsing is strict (parseFaultPlan): unknown sites or kinds, malformed
/// occurrence counts, and trailing garbage are rejected with a diagnostic
/// naming the offending rule — a typo can never silently disarm a fault.
///
//===----------------------------------------------------------------------===//

#ifndef IMPACT_SUPPORT_FAULTINJECTION_H
#define IMPACT_SUPPORT_FAULTINJECTION_H

#include <cstdint>
#include <map>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace impact {

/// What happens when a fault rule fires.
enum class FaultKind { Throw, Diagnostic, Oom, StepLimit };

/// The exception thrown by Throw-kind rules (and the marker the pipeline
/// uses to label a failure "fault-injected" rather than "exception").
class FaultInjectedError : public std::runtime_error {
public:
  explicit FaultInjectedError(const std::string &Message)
      : std::runtime_error(Message) {}
};

/// One parsed rule: fire \p Kind at the \p Occurrence-th arrival at
/// \p Site, optionally only for \p Unit and only on the first
/// \p MaxAttempts attempts.
struct FaultRule {
  std::string Unit;        ///< Empty = any unit.
  std::string Site;        ///< One of getKnownFaultSites().
  FaultKind Kind = FaultKind::Throw;
  uint64_t Occurrence = 1; ///< 1-based arrival index within one attempt.
  uint64_t MaxAttempts = 0; ///< Fire on attempts <= this; 0 = always.
};

struct FaultPlan {
  std::vector<FaultRule> Rules;
  bool empty() const { return Rules.empty(); }
};

/// The sites the pipeline currently reaches, in pipeline order.
const std::vector<std::string> &getKnownFaultSites();

/// "throw" / "diag" / "oom" / "steplimit".
const char *formatFaultKind(FaultKind Kind);

/// Strictly parses \p Spec into \p Plan (replacing its rules). Returns
/// false with \p Diag explaining the offending rule on any malformed
/// input: empty rules, unknown site or kind names, non-positive or
/// garbage occurrence/attempt counts, or a steplimit kind outside the
/// profile/reprofile sites. On success \p Diag (when non-null) is
/// cleared. An empty or all-whitespace spec parses to an empty plan.
bool parseFaultPlan(std::string_view Spec, FaultPlan &Plan,
                    std::string *Diag = nullptr);

/// Renders \p Plan back into spec form (parse/render round-trips).
std::string renderFaultPlan(const FaultPlan &Plan);

/// Per-unit, per-attempt fault state. Cheap to construct; a
/// default-constructed (or null-plan) session is inert and reach() is a
/// no-op returning nullopt. Sessions are confined to one pipeline
/// attempt on one thread — occurrence counters are never shared, which
/// is what keeps injection deterministic under the batch scheduler.
class FaultSession {
public:
  FaultSession() = default;
  FaultSession(const FaultPlan *Plan, std::string Unit, unsigned Attempt = 1)
      : Plan(Plan && !Plan->empty() ? Plan : nullptr),
        CountHits(Plan != nullptr), Unit(std::move(Unit)), Attempt(Attempt) {}

  /// Counts one arrival at \p Site. When a rule fires here: Throw-kind
  /// rules throw FaultInjectedError, Oom-kind rules throw
  /// std::bad_alloc, and Diagnostic/StepLimit kinds are returned for the
  /// caller to apply at its boundary. Returns nullopt when nothing
  /// fires.
  std::optional<FaultKind> reach(std::string_view Site);

  /// True when constructed over a non-null plan (even an empty one —
  /// an empty plan still counts arrivals, which is how tests discover
  /// each site's occurrence range).
  bool isActive() const { return CountHits; }

  /// Arrivals per site so far, sorted by site name.
  std::vector<std::pair<std::string, uint64_t>> getSiteHits() const;

private:
  const FaultPlan *Plan = nullptr;
  bool CountHits = false;
  std::string Unit;
  unsigned Attempt = 1;
  std::map<std::string, uint64_t> Hits;
};

} // namespace impact

#endif // IMPACT_SUPPORT_FAULTINJECTION_H
