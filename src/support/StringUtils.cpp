//===- support/StringUtils.cpp --------------------------------------------===//
//
// Part of the impact-inline project, distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/StringUtils.h"

#include <cctype>
#include <cmath>
#include <cstdio>

using namespace impact;

std::vector<std::string_view> impact::splitString(std::string_view Text,
                                                  char Sep) {
  std::vector<std::string_view> Fields;
  size_t Begin = 0;
  while (true) {
    size_t End = Text.find(Sep, Begin);
    if (End == std::string_view::npos) {
      Fields.push_back(Text.substr(Begin));
      return Fields;
    }
    Fields.push_back(Text.substr(Begin, End - Begin));
    Begin = End + 1;
  }
}

std::string_view impact::trimString(std::string_view Text) {
  size_t Begin = 0, End = Text.size();
  while (Begin != End && std::isspace(static_cast<unsigned char>(Text[Begin])))
    ++Begin;
  while (End != Begin &&
         std::isspace(static_cast<unsigned char>(Text[End - 1])))
    --End;
  return Text.substr(Begin, End - Begin);
}

bool impact::startsWith(std::string_view Text, std::string_view Prefix) {
  return Text.substr(0, Prefix.size()) == Prefix;
}

std::string impact::formatDouble(double Value, unsigned Digits) {
  // printf's non-finite spellings vary by platform ("nan" vs "-nan(...)");
  // pin them down so tables and golden traces render identically anywhere.
  if (std::isnan(Value))
    return "nan";
  if (std::isinf(Value))
    return Value < 0.0 ? "-inf" : "inf";
  char Buffer[64];
  std::snprintf(Buffer, sizeof(Buffer), "%.*f", static_cast<int>(Digits),
                Value);
  return Buffer;
}

std::string impact::padLeft(std::string_view Text, unsigned Width) {
  std::string Result;
  if (Text.size() < Width)
    Result.assign(Width - Text.size(), ' ');
  Result.append(Text);
  return Result;
}

std::string impact::padRight(std::string_view Text, unsigned Width) {
  std::string Result(Text);
  if (Result.size() < Width)
    Result.append(Width - Result.size(), ' ');
  return Result;
}

std::string impact::jsonEscape(std::string_view Text) {
  std::string Out;
  Out.reserve(Text.size());
  for (char C : Text) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buffer[8];
        std::snprintf(Buffer, sizeof(Buffer), "\\u%04x",
                      static_cast<unsigned>(static_cast<unsigned char>(C)));
        Out += Buffer;
      } else {
        Out += C;
      }
    }
  }
  return Out;
}

std::string impact::formatWithCommas(int64_t Value) {
  bool Negative = Value < 0;
  uint64_t Magnitude =
      Negative ? 0ull - static_cast<uint64_t>(Value) : static_cast<uint64_t>(Value);
  std::string Digits = std::to_string(Magnitude);
  std::string Result;
  unsigned Count = 0;
  for (auto It = Digits.rbegin(); It != Digits.rend(); ++It) {
    if (Count != 0 && Count % 3 == 0)
      Result.push_back(',');
    Result.push_back(*It);
    ++Count;
  }
  if (Negative)
    Result.push_back('-');
  return std::string(Result.rbegin(), Result.rend());
}
