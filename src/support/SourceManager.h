//===- support/SourceManager.h - Owns the source buffer -------------------===//
//
// Part of the impact-inline project, distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#ifndef IMPACT_SUPPORT_SOURCEMANAGER_H
#define IMPACT_SUPPORT_SOURCEMANAGER_H

#include "support/SourceLocation.h"

#include <string>
#include <string_view>
#include <vector>

namespace impact {

/// Owns the text of one MiniC translation unit and maps byte offsets to
/// line/column pairs. MiniC compilations are single-buffer, which keeps
/// SourceLoc to a single 32-bit offset.
class SourceManager {
public:
  SourceManager(std::string BufferName, std::string Text);

  std::string_view getText() const { return Text; }
  const std::string &getBufferName() const { return BufferName; }

  /// Translates \p Loc into a 1-based line/column pair. Invalid locations
  /// resolve to line 0.
  LineColumn getLineColumn(SourceLoc Loc) const;

  /// Returns the full text of the (1-based) line containing \p Loc, without
  /// the trailing newline. Useful for diagnostics.
  std::string_view getLineText(SourceLoc Loc) const;

private:
  std::string BufferName;
  std::string Text;
  /// Byte offset of the start of every line; LineStarts[0] == 0.
  std::vector<uint32_t> LineStarts;
};

} // namespace impact

#endif // IMPACT_SUPPORT_SOURCEMANAGER_H
