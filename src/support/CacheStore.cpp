//===- support/CacheStore.cpp ----------------------------------------------===//
//
// Part of the impact-inline project, distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/CacheStore.h"

#include "support/FaultInjection.h"
#include "support/Hashing.h"

#include <atomic>
#include <charconv>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

using namespace impact;

namespace {

constexpr const char *kMagic = "impact-cache v1";

std::atomic<bool> ChecksumCheckDisabled{false};

uint64_t recordChecksum(const std::string &Key, const std::string &Payload) {
  uint64_t H = fnv1a64(Key);
  H = fnv1a64(":", H);
  return fnv1a64(Payload, H);
}

bool fail(std::string *Error, std::string Message) {
  if (Error)
    *Error = std::move(Message);
  return false;
}

/// Strict unsigned parse: no sign, no garbage, no empty.
bool parseCount(std::string_view Text, uint64_t &Out) {
  if (Text.empty())
    return false;
  uint64_t Value = 0;
  auto [Ptr, Ec] =
      std::from_chars(Text.data(), Text.data() + Text.size(), Value);
  if (Ec != std::errc() || Ptr != Text.data() + Text.size())
    return false;
  Out = Value;
  return true;
}

/// Splits \p Line on single spaces; empty fields (doubled/leading/
/// trailing separators) make the line malformed.
bool tokenize(std::string_view Line, std::vector<std::string_view> &Out) {
  Out.clear();
  size_t Pos = 0;
  while (Pos <= Line.size()) {
    size_t Space = Line.find(' ', Pos);
    std::string_view Field = Space == std::string_view::npos
                                 ? Line.substr(Pos)
                                 : Line.substr(Pos, Space - Pos);
    if (Field.empty())
      return false;
    Out.push_back(Field);
    if (Space == std::string_view::npos)
      break;
    Pos = Space + 1;
  }
  return !Out.empty();
}

bool splitFields(std::string_view Line, std::vector<std::string_view> &Out,
                 size_t Expected) {
  return tokenize(Line, Out) && Out.size() == Expected;
}

/// Reads one '\n'-terminated line from \p Text at \p Pos. Returns false
/// at end of input or when no newline terminates the line (truncation).
bool takeLine(const std::string &Text, size_t &Pos, std::string_view &Line) {
  if (Pos >= Text.size())
    return false;
  size_t Nl = Text.find('\n', Pos);
  if (Nl == std::string::npos)
    return false;
  Line = std::string_view(Text).substr(Pos, Nl - Pos);
  Pos = Nl + 1;
  return true;
}

} // namespace

void impact::setCacheStoreChecksumCheckDisabledForTest(bool Disabled) {
  ChecksumCheckDisabled.store(Disabled, std::memory_order_relaxed);
}

bool impact::saveCacheStore(const std::string &Path,
                            const CacheStoreHeader &Header,
                            const std::vector<CacheStoreRecord> &Records,
                            std::string *Error, FaultSession *Faults) {
  FaultSession Inert;
  FaultSession &F = Faults ? *Faults : Inert;

  std::string Head;
  Head += kMagic;
  Head += "\nepoch " + std::to_string(Header.Epoch);
  Head += "\noptions " + Header.Fingerprint;
  Head += "\nstats " + std::to_string(Header.Stats.size());
  for (uint64_t S : Header.Stats)
    Head += " " + std::to_string(S);
  Head += "\n";

  std::string Body;
  for (const CacheStoreRecord &R : Records) {
    Body += "entry " + R.Key + " " + std::to_string(R.Payload.size()) + " " +
            toHex64(recordChecksum(R.Key, R.Payload)) + "\n";
    Body += R.Payload;
    Body += "\n";
  }
  uint64_t FileSum = fnv1a64(Body, fnv1a64(Head));
  Body += "end " + toHex64(FileSum) + "\n";

  // Occurrence 1: before the temp file exists (a crash here is a no-op).
  if (F.reach("cache-persist") == FaultKind::Diagnostic)
    return fail(Error, "injected diagnostic at cache-persist (before write)");

  std::string Tmp = Path + ".tmp";
  {
    std::ofstream Out(Tmp, std::ios::binary | std::ios::trunc);
    if (!Out)
      return fail(Error, "cannot open '" + Tmp + "' for writing");
    Out << Head;
    Out.flush();
    // Occurrence 2: mid-write — the header is on disk, the records are
    // not. A throw here unwinds with the partial temp left behind,
    // exactly what a killed process leaves; the store itself is intact.
    if (F.reach("cache-persist") == FaultKind::Diagnostic) {
      Out.close();
      std::remove(Tmp.c_str());
      return fail(Error, "injected diagnostic at cache-persist (mid-write)");
    }
    Out << Body;
    Out.flush();
    if (!Out) {
      Out.close();
      std::remove(Tmp.c_str());
      return fail(Error, "write to '" + Tmp + "' failed");
    }
  }

  // Occurrence 3: the temp is complete but the store not yet replaced.
  if (F.reach("cache-persist") == FaultKind::Diagnostic) {
    std::remove(Tmp.c_str());
    return fail(Error, "injected diagnostic at cache-persist (before rename)");
  }

  std::error_code Ec;
  std::filesystem::rename(Tmp, Path, Ec);
  if (Ec) {
    std::remove(Tmp.c_str());
    return fail(Error, "rename '" + Tmp + "' -> '" + Path +
                           "' failed: " + Ec.message());
  }
  return true;
}

CacheStoreLoadResult impact::loadCacheStore(
    const std::string &Path, uint64_t ExpectedEpoch,
    const std::string &ExpectedFingerprint) {
  CacheStoreLoadResult Result;

  std::ifstream In(Path, std::ios::binary);
  if (!In) {
    Result.Status = CacheStoreStatus::NoFile;
    Result.Error = "cannot open '" + Path + "'";
    return Result;
  }
  std::ostringstream Buffer;
  Buffer << In.rdbuf();
  std::string Text = Buffer.str();

  auto badMagic = [&](std::string Why) {
    Result.Status = CacheStoreStatus::BadMagic;
    Result.Error = "'" + Path + "': " + std::move(Why);
    Result.Records.clear();
    Result.Header = CacheStoreHeader();
    return Result;
  };

  size_t Pos = 0;
  std::string_view Line;
  if (!takeLine(Text, Pos, Line) || Line != kMagic)
    return badMagic("missing 'impact-cache v1' magic line");

  std::vector<std::string_view> Fields;
  if (!takeLine(Text, Pos, Line) || !splitFields(Line, Fields, 2) ||
      Fields[0] != "epoch" || !parseCount(Fields[1], Result.Header.Epoch))
    return badMagic("malformed epoch line");
  if (!takeLine(Text, Pos, Line) || !splitFields(Line, Fields, 2) ||
      Fields[0] != "options")
    return badMagic("malformed options line");
  Result.Header.Fingerprint = std::string(Fields[1]);

  if (Result.Header.Epoch != ExpectedEpoch ||
      Result.Header.Fingerprint != ExpectedFingerprint) {
    Result.Status = CacheStoreStatus::Stale;
    Result.Error = "'" + Path + "': written under epoch " +
                   std::to_string(Result.Header.Epoch) + " / options '" +
                   Result.Header.Fingerprint + "', expected epoch " +
                   std::to_string(ExpectedEpoch) + " / options '" +
                   ExpectedFingerprint + "'";
    return Result;
  }

  if (!takeLine(Text, Pos, Line))
    return badMagic("missing stats line");
  {
    uint64_t Count = 0;
    if (!tokenize(Line, Fields) || Fields.size() < 2 ||
        Fields[0] != "stats" || !parseCount(Fields[1], Count) ||
        Fields.size() != static_cast<size_t>(Count) + 2)
      return badMagic("malformed stats line");
    for (size_t I = 2; I < Fields.size(); ++I) {
      uint64_t V = 0;
      if (!parseCount(Fields[I], V))
        return badMagic("malformed stats line");
      Result.Header.Stats.push_back(V);
    }
  }

  Result.Status = CacheStoreStatus::Loaded;
  bool ChecksumOff = ChecksumCheckDisabled.load(std::memory_order_relaxed);

  // Records. Each is independently verified; a record that fails framing
  // or its checksum is dropped. Once framing breaks (a malformed line, a
  // payload length past end of file) the remaining bytes cannot be
  // resynchronized safely, so scanning stops there.
  while (true) {
    size_t LineStart = Pos;
    if (!takeLine(Text, Pos, Line)) {
      if (Pos < Text.size())
        ++Result.CorruptRecords; // trailing unterminated bytes
      break;                     // EOF without an end line: truncated
    }
    if (Line.substr(0, 4) == "end ") {
      uint64_t Declared = 0;
      if (!parseHex64(Line.substr(4), Declared)) {
        ++Result.CorruptRecords;
        break;
      }
      uint64_t Actual =
          fnv1a64(std::string_view(Text).substr(0, LineStart));
      if (Actual == Declared && Pos == Text.size())
        Result.WholeFileVerified = true;
      else if (Pos < Text.size())
        ++Result.CorruptRecords; // bytes after the trailer
      break;
    }
    if (!splitFields(Line, Fields, 4) || Fields[0] != "entry") {
      ++Result.CorruptRecords;
      break;
    }
    uint64_t PayloadBytes = 0;
    uint64_t Declared = 0;
    if (!parseCount(Fields[2], PayloadBytes) ||
        !parseHex64(Fields[3], Declared)) {
      ++Result.CorruptRecords;
      break;
    }
    if (PayloadBytes > Text.size() - Pos) {
      ++Result.CorruptRecords; // truncated payload
      break;
    }
    CacheStoreRecord R;
    R.Key = std::string(Fields[1]);
    R.Payload = Text.substr(Pos, PayloadBytes);
    Pos += PayloadBytes;
    if (Pos >= Text.size() || Text[Pos] != '\n') {
      ++Result.CorruptRecords; // framing newline lost: cannot resync
      break;
    }
    ++Pos;
    if (!ChecksumOff && recordChecksum(R.Key, R.Payload) != Declared) {
      ++Result.CorruptRecords;
      continue; // framing intact, record bad: drop it, keep scanning
    }
    Result.Records.push_back(std::move(R));
  }

  // The stats line is only covered by the whole-file checksum; with that
  // unverified, a flipped digit in a counter would be served as truth.
  if (!Result.WholeFileVerified)
    Result.Header.Stats.assign(Result.Header.Stats.size(), 0);
  return Result;
}
