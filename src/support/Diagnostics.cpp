//===- support/Diagnostics.cpp --------------------------------------------===//
//
// Part of the impact-inline project, distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Diagnostics.h"

#include "support/SourceManager.h"

#include <sstream>

using namespace impact;

void DiagnosticEngine::error(SourceLoc Loc, std::string Message) {
  Diags.push_back(Diagnostic{DiagSeverity::Error, Loc, std::move(Message)});
  ++NumErrors;
}

void DiagnosticEngine::warning(SourceLoc Loc, std::string Message) {
  Diags.push_back(Diagnostic{DiagSeverity::Warning, Loc, std::move(Message)});
}

void DiagnosticEngine::note(SourceLoc Loc, std::string Message) {
  Diags.push_back(Diagnostic{DiagSeverity::Note, Loc, std::move(Message)});
}

std::string DiagnosticEngine::render(const SourceManager &SM) const {
  std::ostringstream OS;
  for (const Diagnostic &D : Diags) {
    LineColumn LC = SM.getLineColumn(D.Loc);
    OS << SM.getBufferName() << ':' << LC.Line << ':' << LC.Column << ": ";
    switch (D.Severity) {
    case DiagSeverity::Error:
      OS << "error: ";
      break;
    case DiagSeverity::Warning:
      OS << "warning: ";
      break;
    case DiagSeverity::Note:
      OS << "note: ";
      break;
    }
    OS << D.Message << '\n';
  }
  return OS.str();
}
