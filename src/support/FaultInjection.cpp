//===- support/FaultInjection.cpp ------------------------------------------===//
//
// Part of the impact-inline project, distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/FaultInjection.h"

#include "support/StringUtils.h"

#include <charconv>
#include <new>

using namespace impact;

const std::vector<std::string> &impact::getKnownFaultSites() {
  static const std::vector<std::string> Sites = {
      "parse",        "sema",    "irgen",  "pass",      "cache-lookup",
      "cache-insert", "profile", "expand", "reprofile", "cache-persist"};
  return Sites;
}

const char *impact::formatFaultKind(FaultKind Kind) {
  switch (Kind) {
  case FaultKind::Throw:
    return "throw";
  case FaultKind::Diagnostic:
    return "diag";
  case FaultKind::Oom:
    return "oom";
  case FaultKind::StepLimit:
    return "steplimit";
  }
  return "?";
}

namespace {

bool isKnownSite(std::string_view Site) {
  for (const std::string &S : getKnownFaultSites())
    if (S == Site)
      return true;
  return false;
}

std::string knownSiteList() {
  std::string Out;
  for (const std::string &S : getKnownFaultSites()) {
    if (!Out.empty())
      Out += ", ";
    Out += S;
  }
  return Out;
}

bool parseKind(std::string_view Text, FaultKind &Kind) {
  if (Text == "throw")
    Kind = FaultKind::Throw;
  else if (Text == "diag")
    Kind = FaultKind::Diagnostic;
  else if (Text == "oom")
    Kind = FaultKind::Oom;
  else if (Text == "steplimit")
    Kind = FaultKind::StepLimit;
  else
    return false;
  return true;
}

/// Strict positive-integer parse: no sign, no trailing garbage, no empty.
bool parsePositive(std::string_view Text, uint64_t &Out) {
  if (Text.empty())
    return false;
  uint64_t Value = 0;
  auto [Ptr, Ec] =
      std::from_chars(Text.data(), Text.data() + Text.size(), Value);
  if (Ec != std::errc() || Ptr != Text.data() + Text.size() || Value == 0)
    return false;
  Out = Value;
  return true;
}

bool fail(std::string *Diag, std::string Message) {
  if (Diag)
    *Diag = std::move(Message);
  return false;
}

/// Parses one `[unit '/'] site ':' kind '@' occ ['x' attempts]` rule.
bool parseRule(std::string_view Text, FaultRule &Rule, std::string *Diag) {
  std::string Context = "invalid fault rule '" + std::string(Text) + "': ";

  if (size_t Slash = Text.find('/'); Slash != std::string_view::npos) {
    Rule.Unit = std::string(trimString(Text.substr(0, Slash)));
    if (Rule.Unit.empty())
      return fail(Diag, Context + "empty unit name before '/'");
    Text = Text.substr(Slash + 1);
  }

  size_t Colon = Text.find(':');
  if (Colon == std::string_view::npos)
    return fail(Diag, Context + "expected 'site:kind@occurrence'");
  std::string_view Site = trimString(Text.substr(0, Colon));
  if (!isKnownSite(Site))
    return fail(Diag, Context + "unknown site '" + std::string(Site) +
                          "' (known sites: " + knownSiteList() + ")");
  Rule.Site = std::string(Site);

  std::string_view Rest = Text.substr(Colon + 1);
  size_t At = Rest.find('@');
  if (At == std::string_view::npos)
    return fail(Diag, Context + "missing '@occurrence'");
  std::string_view Kind = trimString(Rest.substr(0, At));
  if (!parseKind(Kind, Rule.Kind))
    return fail(Diag, Context + "unknown kind '" + std::string(Kind) +
                          "' (known kinds: throw, diag, oom, steplimit)");
  if (Rule.Kind == FaultKind::StepLimit && Rule.Site != "profile" &&
      Rule.Site != "reprofile")
    return fail(Diag, Context + "kind 'steplimit' is only valid at the "
                                "profile/reprofile sites");

  std::string_view Counts = trimString(Rest.substr(At + 1));
  std::string_view Occ = Counts;
  if (size_t X = Counts.find('x'); X != std::string_view::npos) {
    Occ = trimString(Counts.substr(0, X));
    std::string_view Attempts = trimString(Counts.substr(X + 1));
    if (!parsePositive(Attempts, Rule.MaxAttempts))
      return fail(Diag, Context + "invalid attempt bound '" +
                            std::string(Attempts) +
                            "' (expected a positive integer)");
  }
  if (!parsePositive(Occ, Rule.Occurrence))
    return fail(Diag, Context + "invalid occurrence '" + std::string(Occ) +
                          "' (expected a positive integer)");
  return true;
}

} // namespace

bool impact::parseFaultPlan(std::string_view Spec, FaultPlan &Plan,
                            std::string *Diag) {
  FaultPlan Parsed;
  if (!trimString(Spec).empty()) {
    for (std::string_view RuleText : splitString(Spec, ',')) {
      RuleText = trimString(RuleText);
      if (RuleText.empty())
        return fail(Diag, "invalid fault spec '" + std::string(Spec) +
                              "': empty rule");
      FaultRule Rule;
      if (!parseRule(RuleText, Rule, Diag))
        return false;
      Parsed.Rules.push_back(std::move(Rule));
    }
  }
  Plan = std::move(Parsed);
  if (Diag)
    Diag->clear();
  return true;
}

std::string impact::renderFaultPlan(const FaultPlan &Plan) {
  std::string Out;
  for (const FaultRule &Rule : Plan.Rules) {
    if (!Out.empty())
      Out += ",";
    if (!Rule.Unit.empty())
      Out += Rule.Unit + "/";
    Out += Rule.Site + ":" + formatFaultKind(Rule.Kind) + "@" +
           std::to_string(Rule.Occurrence);
    if (Rule.MaxAttempts != 0)
      Out += "x" + std::to_string(Rule.MaxAttempts);
  }
  return Out;
}

std::optional<FaultKind> FaultSession::reach(std::string_view Site) {
  if (!CountHits)
    return std::nullopt;
  uint64_t Count = ++Hits[std::string(Site)];
  if (!Plan)
    return std::nullopt;
  for (const FaultRule &Rule : Plan->Rules) {
    if (Rule.Site != Site || Rule.Occurrence != Count)
      continue;
    if (!Rule.Unit.empty() && Rule.Unit != Unit)
      continue;
    if (Rule.MaxAttempts != 0 && Attempt > Rule.MaxAttempts)
      continue;
    switch (Rule.Kind) {
    case FaultKind::Throw:
      throw FaultInjectedError("injected fault at " + std::string(Site) +
                               " (occurrence " + std::to_string(Count) +
                               ")");
    case FaultKind::Oom:
      throw std::bad_alloc();
    case FaultKind::Diagnostic:
    case FaultKind::StepLimit:
      return Rule.Kind;
    }
  }
  return std::nullopt;
}

std::vector<std::pair<std::string, uint64_t>>
FaultSession::getSiteHits() const {
  return {Hits.begin(), Hits.end()};
}
