//===- support/StringUtils.h - Small string helpers -----------------------===//
//
// Part of the impact-inline project, distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#ifndef IMPACT_SUPPORT_STRINGUTILS_H
#define IMPACT_SUPPORT_STRINGUTILS_H

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace impact {

/// Splits \p Text on \p Sep; empty fields are kept.
std::vector<std::string_view> splitString(std::string_view Text, char Sep);

/// Returns \p Text with ASCII whitespace removed from both ends.
std::string_view trimString(std::string_view Text);

/// Returns true if \p Text starts with \p Prefix.
bool startsWith(std::string_view Text, std::string_view Prefix);

/// Formats \p Value with a fixed number of fractional digits (printf "%.*f").
std::string formatDouble(double Value, unsigned Digits);

/// Left-pads \p Text with spaces to at least \p Width columns.
std::string padLeft(std::string_view Text, unsigned Width);

/// Right-pads \p Text with spaces to at least \p Width columns.
std::string padRight(std::string_view Text, unsigned Width);

/// Formats an integer count with thousands separators ("12,345").
std::string formatWithCommas(int64_t Value);

/// Escapes \p Text for use inside a JSON string literal (quotes,
/// backslashes, and control characters).
std::string jsonEscape(std::string_view Text);

} // namespace impact

#endif // IMPACT_SUPPORT_STRINGUTILS_H
