//===- support/Hashing.h - Stable content hashes for persistence -----------===//
//
// Part of the impact-inline project, distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Stable, process-independent hashing for on-disk artifacts. std::hash
/// makes no cross-run guarantees, so everything persisted (the
/// content-addressed cache store, its record checksums) hashes through
/// these functions instead: FNV-1a 64 for checksums and a two-lane
/// FNV + splitmix64-finalized 128-bit digest for content addresses. The
/// byte stream is hashed as-is, so the digests are byte-order independent
/// by construction.
///
//===----------------------------------------------------------------------===//

#ifndef IMPACT_SUPPORT_HASHING_H
#define IMPACT_SUPPORT_HASHING_H

#include <cstdint>
#include <string>
#include <string_view>

namespace impact {

inline constexpr uint64_t kFnvOffsetBasis64 = 0xcbf29ce484222325ull;
inline constexpr uint64_t kFnvPrime64 = 0x100000001b3ull;

/// FNV-1a 64 over \p Data, continuing from \p Hash (seed with
/// kFnvOffsetBasis64 for a fresh digest).
inline uint64_t fnv1a64(std::string_view Data,
                        uint64_t Hash = kFnvOffsetBasis64) {
  for (unsigned char C : Data) {
    Hash ^= C;
    Hash *= kFnvPrime64;
  }
  return Hash;
}

/// splitmix64's finalizer: a full-avalanche bijection, so the weakly
/// mixing FNV lanes below end up with every input bit affecting every
/// output bit.
inline uint64_t avalanche64(uint64_t X) {
  X ^= X >> 30;
  X *= 0xbf58476d1ce4e5b9ull;
  X ^= X >> 27;
  X *= 0x94d049bb133111ebull;
  X ^= X >> 31;
  return X;
}

/// A 128-bit content digest (two independent 64-bit lanes). Collisions
/// between distinct inputs are what content-addressing bets against, so
/// both lanes run the full input with different offsets and are finalized
/// and cross-mixed.
struct Hash128 {
  uint64_t Hi = 0;
  uint64_t Lo = 0;

  friend bool operator==(const Hash128 &, const Hash128 &) = default;
  friend bool operator<(const Hash128 &A, const Hash128 &B) {
    return A.Hi != B.Hi ? A.Hi < B.Hi : A.Lo < B.Lo;
  }
};

inline Hash128 hash128(std::string_view Data) {
  // Lane 1: plain FNV-1a. Lane 2: FNV-1a from a different basis with the
  // byte rotated, so the lanes never agree on how they digest a byte.
  uint64_t A = kFnvOffsetBasis64;
  uint64_t B = 0x9e3779b97f4a7c15ull; // golden-ratio basis
  for (unsigned char C : Data) {
    A = (A ^ C) * kFnvPrime64;
    B = (B ^ (static_cast<uint64_t>(C) << 7 | C >> 1)) * kFnvPrime64;
  }
  uint64_t Len = Data.size();
  Hash128 H;
  H.Hi = avalanche64(A ^ avalanche64(B + Len));
  H.Lo = avalanche64(B ^ avalanche64(A + 0x2545f4914f6cdd1dull + Len));
  return H;
}

/// Lower-case fixed-width hex ("%016x" per lane; 32 chars for a Hash128).
std::string toHex64(uint64_t Value);
std::string toHex128(const Hash128 &H);

/// Strict hex parse (exact width, lower- or upper-case); false on any
/// other input.
bool parseHex64(std::string_view Text, uint64_t &Out);
bool parseHex128(std::string_view Text, Hash128 &Out);

} // namespace impact

#endif // IMPACT_SUPPORT_HASHING_H
