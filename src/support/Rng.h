//===- support/Rng.h - Deterministic random numbers -----------------------===//
//
// Part of the impact-inline project, distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small, fully deterministic PRNG (xorshift64*). Workload generators and
/// property tests must be reproducible across platforms and standard-library
/// versions, so std::mt19937 distributions are deliberately avoided.
///
//===----------------------------------------------------------------------===//

#ifndef IMPACT_SUPPORT_RNG_H
#define IMPACT_SUPPORT_RNG_H

#include <cassert>
#include <cstdint>

namespace impact {

/// xorshift64* generator with a splitmix64-seeded state.
class Rng {
public:
  explicit Rng(uint64_t Seed) {
    // splitmix64 step so that small seeds produce well-mixed states.
    uint64_t Z = Seed + 0x9e3779b97f4a7c15ull;
    Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ull;
    Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebull;
    State = (Z ^ (Z >> 31)) | 1;
  }

  uint64_t next() {
    State ^= State >> 12;
    State ^= State << 25;
    State ^= State >> 27;
    return State * 0x2545f4914f6cdd1dull;
  }

  /// Uniform value in [0, Bound). \p Bound must be nonzero.
  uint64_t nextBelow(uint64_t Bound) {
    assert(Bound != 0 && "nextBelow bound must be nonzero");
    return next() % Bound;
  }

  /// Uniform value in [Lo, Hi] inclusive.
  int64_t nextInRange(int64_t Lo, int64_t Hi) {
    assert(Lo <= Hi && "empty range");
    return Lo + static_cast<int64_t>(
                    nextBelow(static_cast<uint64_t>(Hi - Lo) + 1));
  }

  /// Returns true with probability Numer/Denom.
  bool nextChance(uint64_t Numer, uint64_t Denom) {
    return nextBelow(Denom) < Numer;
  }

private:
  uint64_t State;
};

} // namespace impact

#endif // IMPACT_SUPPORT_RNG_H
