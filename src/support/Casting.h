//===- support/Casting.h - LLVM-style isa/cast/dyn_cast ------------------===//
//
// Part of the impact-inline project, distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Hand-rolled replacement for RTTI in the style of llvm/Support/Casting.h.
/// A class hierarchy opts in by exposing `static bool classof(const Base *)`.
///
//===----------------------------------------------------------------------===//

#ifndef IMPACT_SUPPORT_CASTING_H
#define IMPACT_SUPPORT_CASTING_H

#include <cassert>

namespace impact {

/// Returns true if \p Val is an instance of \p To (or a subclass of it).
template <typename To, typename From> bool isa(const From *Val) {
  assert(Val && "isa<> used on a null pointer");
  return To::classof(Val);
}

/// Checked downcast: asserts that \p Val really is a \p To.
template <typename To, typename From> To *cast(From *Val) {
  assert(isa<To>(Val) && "cast<> argument of incompatible type");
  return static_cast<To *>(Val);
}

/// Checked downcast, const overload.
template <typename To, typename From> const To *cast(const From *Val) {
  assert(isa<To>(Val) && "cast<> argument of incompatible type");
  return static_cast<const To *>(Val);
}

/// Checking downcast: returns null when \p Val is not a \p To.
template <typename To, typename From> To *dyn_cast(From *Val) {
  return isa<To>(Val) ? static_cast<To *>(Val) : nullptr;
}

/// Checking downcast, const overload.
template <typename To, typename From> const To *dyn_cast(const From *Val) {
  return isa<To>(Val) ? static_cast<const To *>(Val) : nullptr;
}

/// Like dyn_cast<> but tolerates a null input (propagates the null).
template <typename To, typename From> To *dyn_cast_if_present(From *Val) {
  return Val ? dyn_cast<To>(Val) : nullptr;
}

/// Like dyn_cast<> but tolerates a null input, const overload.
template <typename To, typename From>
const To *dyn_cast_if_present(const From *Val) {
  return Val ? dyn_cast<To>(Val) : nullptr;
}

} // namespace impact

#endif // IMPACT_SUPPORT_CASTING_H
