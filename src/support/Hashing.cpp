//===- support/Hashing.cpp -------------------------------------------------===//
//
// Part of the impact-inline project, distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Hashing.h"

using namespace impact;

static const char kHexDigits[] = "0123456789abcdef";

std::string impact::toHex64(uint64_t Value) {
  std::string Out(16, '0');
  for (int I = 15; I >= 0; --I) {
    Out[static_cast<size_t>(I)] = kHexDigits[Value & 0xf];
    Value >>= 4;
  }
  return Out;
}

std::string impact::toHex128(const Hash128 &H) {
  return toHex64(H.Hi) + toHex64(H.Lo);
}

static bool hexNibble(char C, uint64_t &Out) {
  if (C >= '0' && C <= '9')
    Out = static_cast<uint64_t>(C - '0');
  else if (C >= 'a' && C <= 'f')
    Out = static_cast<uint64_t>(C - 'a' + 10);
  else if (C >= 'A' && C <= 'F')
    Out = static_cast<uint64_t>(C - 'A' + 10);
  else
    return false;
  return true;
}

bool impact::parseHex64(std::string_view Text, uint64_t &Out) {
  if (Text.size() != 16)
    return false;
  uint64_t Value = 0;
  for (char C : Text) {
    uint64_t Nibble = 0;
    if (!hexNibble(C, Nibble))
      return false;
    Value = (Value << 4) | Nibble;
  }
  Out = Value;
  return true;
}

bool impact::parseHex128(std::string_view Text, Hash128 &Out) {
  if (Text.size() != 32)
    return false;
  Hash128 H;
  if (!parseHex64(Text.substr(0, 16), H.Hi) ||
      !parseHex64(Text.substr(16, 16), H.Lo))
    return false;
  Out = H;
  return true;
}
