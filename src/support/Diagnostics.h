//===- support/Diagnostics.h - Error reporting ----------------------------===//
//
// Part of the impact-inline project, distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small diagnostic engine. The library never throws or exits; every
/// front-end stage reports through a DiagnosticEngine and callers inspect
/// hasErrors(). Message style follows the LLVM convention: lowercase first
/// word, no trailing period.
///
//===----------------------------------------------------------------------===//

#ifndef IMPACT_SUPPORT_DIAGNOSTICS_H
#define IMPACT_SUPPORT_DIAGNOSTICS_H

#include "support/SourceLocation.h"

#include <string>
#include <vector>

namespace impact {

class SourceManager;

enum class DiagSeverity { Error, Warning, Note };

/// One reported diagnostic.
struct Diagnostic {
  DiagSeverity Severity = DiagSeverity::Error;
  SourceLoc Loc;
  std::string Message;
};

/// Collects diagnostics for one compilation.
class DiagnosticEngine {
public:
  void error(SourceLoc Loc, std::string Message);
  void warning(SourceLoc Loc, std::string Message);
  void note(SourceLoc Loc, std::string Message);

  bool hasErrors() const { return NumErrors != 0; }
  unsigned getNumErrors() const { return NumErrors; }
  const std::vector<Diagnostic> &getDiagnostics() const { return Diags; }

  /// Renders every diagnostic as "name:line:col: severity: message" lines,
  /// using \p SM to resolve locations.
  std::string render(const SourceManager &SM) const;

private:
  std::vector<Diagnostic> Diags;
  unsigned NumErrors = 0;
};

} // namespace impact

#endif // IMPACT_SUPPORT_DIAGNOSTICS_H
