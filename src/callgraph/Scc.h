//===- callgraph/Scc.h - Strongly connected components -----------------------===//
//
// Part of the impact-inline project, distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#ifndef IMPACT_CALLGRAPH_SCC_H
#define IMPACT_CALLGRAPH_SCC_H

#include <cstddef>
#include <vector>

namespace impact {

/// Result of an SCC decomposition over a directed graph with nodes
/// 0..N-1.
struct SccResult {
  /// Component id per node; components are numbered in reverse topological
  /// order of the condensation (Tarjan's emission order).
  std::vector<int> ComponentIds;
  /// Number of nodes per component.
  std::vector<size_t> ComponentSizes;
  int NumComponents = 0;
};

/// Iterative Tarjan SCC. \p Successors[n] lists the successor node ids of
/// node n (duplicates allowed).
SccResult computeScc(const std::vector<std::vector<int>> &Successors);

} // namespace impact

#endif // IMPACT_CALLGRAPH_SCC_H
