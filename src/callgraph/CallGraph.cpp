//===- callgraph/CallGraph.cpp ------------------------------------------------===//
//
// Part of the impact-inline project, distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "callgraph/CallGraph.h"

#include "callgraph/Reachability.h"
#include "callgraph/Scc.h"

#include <sstream>

using namespace impact;

CallGraph::CallGraph(size_t NumFuncs) : NumFuncs(NumFuncs) {
  OutArcIndices.resize(getNumNodes());
  InArcIndices.resize(getNumNodes());
  NodeWeights.assign(getNumNodes(), 0.0);
}

size_t CallGraph::addArc(CallArc Arc) {
  size_t Index = Arcs.size();
  OutArcIndices[static_cast<size_t>(Arc.Caller)].push_back(Index);
  InArcIndices[static_cast<size_t>(Arc.Callee)].push_back(Index);
  Arcs.push_back(Arc);
  return Index;
}

size_t CallGraph::findArcBySite(uint32_t SiteId) const {
  if (SiteId == 0)
    return SIZE_MAX;
  for (size_t I = 0; I != Arcs.size(); ++I)
    if (Arcs[I].SiteId == SiteId)
      return I;
  return SIZE_MAX;
}

namespace {
std::vector<std::vector<int>> buildSuccessorLists(const CallGraph &G,
                                                  bool DirectOnly) {
  std::vector<std::vector<int>> Successors(G.getNumNodes());
  for (const CallArc &Arc : G.getArcs()) {
    if (DirectOnly && Arc.Kind != ArcKind::Direct)
      continue;
    Successors[static_cast<size_t>(Arc.Caller)].push_back(Arc.Callee);
  }
  return Successors;
}

/// Runs Tarjan over the chosen arc subset and fills ids + on-cycle flags
/// (self arcs count as cycles).
void computeSccInto(const CallGraph &G, bool DirectOnly,
                    std::vector<int> &Ids, std::vector<bool> &Cycle) {
  SccResult R = computeScc(buildSuccessorLists(G, DirectOnly));
  Ids = std::move(R.ComponentIds);
  Cycle.assign(G.getNumNodes(), false);
  for (size_t N = 0; N != G.getNumNodes(); ++N)
    if (R.ComponentSizes[static_cast<size_t>(Ids[N])] > 1)
      Cycle[N] = true;
  for (const CallArc &Arc : G.getArcs()) {
    if (DirectOnly && Arc.Kind != ArcKind::Direct)
      continue;
    if (Arc.Caller == Arc.Callee)
      Cycle[static_cast<size_t>(Arc.Caller)] = true;
  }
}
} // namespace

void CallGraph::computeScc() {
  computeSccInto(*this, /*DirectOnly=*/false, SccIds, OnCycle);
  computeSccInto(*this, /*DirectOnly=*/true, DirectSccIds, OnDirectCycle);
}

void CallGraph::computeReachability(NodeId Main) {
  Reachable =
      computeReachableSet(buildSuccessorLists(*this, /*DirectOnly=*/false),
                          Main);
}

std::string
CallGraph::dumpDot(const std::vector<std::string> &FuncNames) const {
  auto NodeName = [&](NodeId N) -> std::string {
    if (N == getExternalNode())
      return "$$$";
    if (N == getPointerNode())
      return "###";
    if (static_cast<size_t>(N) < FuncNames.size())
      return FuncNames[static_cast<size_t>(N)];
    return "f" + std::to_string(N);
  };
  std::ostringstream OS;
  OS << "digraph callgraph {\n  rankdir=LR;\n";
  for (size_t N = 0; N != getNumNodes(); ++N) {
    OS << "  n" << N << " [label=\"" << NodeName(static_cast<NodeId>(N));
    if (NodeWeights[N] != 0.0)
      OS << "\\nw=" << NodeWeights[N];
    OS << '"';
    if (isPseudoNode(static_cast<NodeId>(N)))
      OS << ", shape=box";
    if (!OnDirectCycle.empty() && OnDirectCycle[N])
      OS << ", penwidth=2";
    if (!Reachable.empty() && !Reachable[N])
      OS << ", style=dashed";
    OS << "];\n";
  }
  for (const CallArc &Arc : Arcs) {
    OS << "  n" << Arc.Caller << " -> n" << Arc.Callee;
    if (Arc.SiteId != 0)
      OS << " [label=\"site#" << Arc.SiteId << " w=" << Arc.Weight << "\"]";
    else
      OS << " [style=dotted]";
    OS << ";\n";
  }
  OS << "}\n";
  return OS.str();
}

std::string CallGraph::dump(const std::vector<std::string> &FuncNames) const {
  auto NodeName = [&](NodeId N) -> std::string {
    if (N == getExternalNode())
      return "$$$";
    if (N == getPointerNode())
      return "###";
    if (static_cast<size_t>(N) < FuncNames.size())
      return FuncNames[static_cast<size_t>(N)];
    return "f" + std::to_string(N);
  };
  std::ostringstream OS;
  for (size_t N = 0; N != getNumNodes(); ++N) {
    OS << NodeName(static_cast<NodeId>(N)) << " weight="
       << NodeWeights[N];
    if (!OnDirectCycle.empty() && OnDirectCycle[N])
      OS << " recursive";
    else if (!OnCycle.empty() && OnCycle[N])
      OS << " worst-case-cycle";
    if (!Reachable.empty() && !Reachable[N])
      OS << " unreachable";
    OS << '\n';
    for (size_t ArcIndex : OutArcIndices[N]) {
      const CallArc &Arc = Arcs[ArcIndex];
      OS << "  -> " << NodeName(Arc.Callee) << " site#" << Arc.SiteId
         << " weight=" << Arc.Weight << '\n';
    }
  }
  return OS.str();
}
