//===- callgraph/CallGraphBuilder.cpp -----------------------------------------===//
//
// Part of the impact-inline project, distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "callgraph/CallGraphBuilder.h"

using namespace impact;

CallGraph impact::buildCallGraph(const Module &M, const ProfileData *Profile,
                                 CallGraphOptions Options) {
  CallGraph G(M.Funcs.size());

  // 1. Node weights.
  if (Profile)
    for (const Function &F : M.Funcs)
      G.setNodeWeight(F.Id, Profile->getNodeWeight(F.Id));

  bool AnyExternalCall = false;
  bool AnyPointerCall = false;

  // 2. One arc per static call site (§3.2 step 2/3).
  for (const Function &F : M.Funcs) {
    if (F.IsExternal)
      continue;
    for (const BasicBlock &B : F.Blocks) {
      for (const Instr &I : B.Instrs) {
        if (!I.isCall())
          continue;
        CallArc Arc;
        Arc.Caller = F.Id;
        Arc.SiteId = I.SiteId;
        Arc.Weight = Profile ? Profile->getArcWeight(I.SiteId) : 0.0;
        if (I.Op == Opcode::CallPtr) {
          Arc.Callee = G.getPointerNode();
          Arc.Kind = ArcKind::ToPointer;
          AnyPointerCall = true;
        } else if (M.getFunction(I.Callee).IsExternal) {
          Arc.Callee = G.getExternalNode();
          Arc.Kind = ArcKind::ToExternal;
          AnyExternalCall = true;
        } else {
          Arc.Callee = I.Callee;
          Arc.Kind = ArcKind::Direct;
        }
        G.addArc(Arc);
      }
    }
  }

  // 3. Worst-case fan-out of the pseudo nodes.
  if (AnyExternalCall && Options.AssumeExternalsCallBack) {
    for (const Function &F : M.Funcs) {
      if (F.IsExternal)
        continue;
      CallArc Arc;
      Arc.Caller = G.getExternalNode();
      Arc.Callee = F.Id;
      Arc.Kind = ArcKind::FromExternal;
      G.addArc(Arc);
    }
  }
  if (AnyPointerCall) {
    bool WidenToAll = AnyExternalCall && Options.AssumeExternalsCallBack;
    for (const Function &F : M.Funcs) {
      if (F.IsExternal)
        continue;
      if (!WidenToAll && !F.AddressTaken)
        continue;
      CallArc Arc;
      Arc.Caller = G.getPointerNode();
      Arc.Callee = F.Id;
      Arc.Kind = ArcKind::FromPointer;
      G.addArc(Arc);
    }
  }

  G.computeScc();
  if (M.MainId != kNoFunc)
    G.computeReachability(M.MainId);
  return G;
}
