//===- callgraph/Scc.cpp ------------------------------------------------------===//
//
// Part of the impact-inline project, distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "callgraph/Scc.h"

#include <algorithm>
#include <cassert>

using namespace impact;

SccResult impact::computeScc(const std::vector<std::vector<int>> &Successors) {
  const size_t N = Successors.size();
  SccResult Result;
  Result.ComponentIds.assign(N, -1);

  std::vector<int> Index(N, -1);
  std::vector<int> LowLink(N, 0);
  std::vector<bool> OnStack(N, false);
  std::vector<int> Stack;
  int NextIndex = 0;

  // Explicit DFS frame: node + position within its successor list.
  struct DfsFrame {
    int Node;
    size_t NextSucc;
  };
  std::vector<DfsFrame> DfsStack;

  for (size_t Root = 0; Root != N; ++Root) {
    if (Index[Root] != -1)
      continue;
    DfsStack.push_back({static_cast<int>(Root), 0});
    Index[Root] = LowLink[Root] = NextIndex++;
    Stack.push_back(static_cast<int>(Root));
    OnStack[Root] = true;

    while (!DfsStack.empty()) {
      DfsFrame &Frame = DfsStack.back();
      int V = Frame.Node;
      if (Frame.NextSucc < Successors[V].size()) {
        int W = Successors[V][Frame.NextSucc++];
        assert(W >= 0 && static_cast<size_t>(W) < N && "bad successor");
        if (Index[W] == -1) {
          Index[W] = LowLink[W] = NextIndex++;
          Stack.push_back(W);
          OnStack[W] = true;
          DfsStack.push_back({W, 0});
        } else if (OnStack[W]) {
          LowLink[V] = std::min(LowLink[V], Index[W]);
        }
        continue;
      }
      // All successors processed: close V.
      DfsStack.pop_back();
      if (!DfsStack.empty()) {
        int Parent = DfsStack.back().Node;
        LowLink[Parent] = std::min(LowLink[Parent], LowLink[V]);
      }
      if (LowLink[V] == Index[V]) {
        int Component = Result.NumComponents++;
        size_t Size = 0;
        while (true) {
          int W = Stack.back();
          Stack.pop_back();
          OnStack[W] = false;
          Result.ComponentIds[W] = Component;
          ++Size;
          if (W == V)
            break;
        }
        Result.ComponentSizes.push_back(Size);
      }
    }
  }
  return Result;
}
