//===- callgraph/CallGraphBuilder.h - Build the weighted call graph ----------===//
//
// Part of the impact-inline project, distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#ifndef IMPACT_CALLGRAPH_CALLGRAPHBUILDER_H
#define IMPACT_CALLGRAPH_CALLGRAPHBUILDER_H

#include "callgraph/CallGraph.h"
#include "profile/Profile.h"

namespace impact {

struct CallGraphOptions {
  /// Paper's worst-case assumption (§2.5): external functions may call any
  /// user function, so $$$ fans out to every function and ### widens to
  /// every function once an external exists. Turning this off gives the
  /// "optimistic" mode ablated in the tests: $$$ has no out-arcs and ###
  /// only reaches address-taken functions.
  bool AssumeExternalsCallBack = true;
};

/// Builds the weighted call graph of \p M. Arc weights and node weights
/// come from \p Profile when provided; otherwise every weight is zero
/// (structure-only graph). SCC and reachability (from main) are computed
/// before returning.
CallGraph buildCallGraph(const Module &M, const ProfileData *Profile,
                         CallGraphOptions Options = CallGraphOptions());

} // namespace impact

#endif // IMPACT_CALLGRAPH_CALLGRAPHBUILDER_H
