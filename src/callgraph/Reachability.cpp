//===- callgraph/Reachability.cpp ---------------------------------------------===//
//
// Part of the impact-inline project, distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "callgraph/Reachability.h"

#include <cassert>
#include <cstddef>

using namespace impact;

std::vector<bool>
impact::computeReachableSet(const std::vector<std::vector<int>> &Successors,
                            int Start) {
  std::vector<bool> Reachable(Successors.size(), false);
  if (Start < 0 || static_cast<size_t>(Start) >= Successors.size())
    return Reachable;
  std::vector<int> Worklist = {Start};
  Reachable[Start] = true;
  while (!Worklist.empty()) {
    int V = Worklist.back();
    Worklist.pop_back();
    for (int W : Successors[V]) {
      assert(W >= 0 && static_cast<size_t>(W) < Successors.size());
      if (!Reachable[W]) {
        Reachable[W] = true;
        Worklist.push_back(W);
      }
    }
  }
  return Reachable;
}
