//===- callgraph/CallGraph.h - Weighted call graph ---------------------------===//
//
// Part of the impact-inline project, distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's program representation: a weighted call graph
/// G = (N, E, main). Each node is a function with a weight (expected
/// execution count); each arc is a *static call site* with a unique id and
/// a weight (expected invocation count). Two pseudo nodes model missing
/// information exactly as in §3.2:
///
///   $$$ (External) — the summarized effect of external functions. A
///   function that calls any external function gets one arc to $$$; $$$ in
///   turn has one arc to every user function (worst case: an external
///   function may call anything).
///
///   ### (Pointer) — the summarized effect of calls through pointers. Every
///   call-through-pointer site gets an arc to ###; ### has arcs to every
///   address-taken function, widened to every function when an external
///   function exists (precise address-taken sets are then impossible).
///
/// Cycle detection over this graph (SCCs, including pseudo nodes) yields
/// the recursion information the cost function's stack hazard needs, and
/// reachability from main yields function-level dead code information.
///
//===----------------------------------------------------------------------===//

#ifndef IMPACT_CALLGRAPH_CALLGRAPH_H
#define IMPACT_CALLGRAPH_CALLGRAPH_H

#include "ir/Ir.h"

#include <cstdint>
#include <string>
#include <vector>

namespace impact {

/// Node index in the call graph. Function nodes reuse their FuncId;
/// the two pseudo nodes come after all functions.
using NodeId = int32_t;

enum class ArcKind {
  /// caller -> user callee, a real inlinable site.
  Direct,
  /// caller -> $$$, a call site whose callee body is unavailable.
  ToExternal,
  /// caller -> ###, a call site through a pointer.
  ToPointer,
  /// $$$ -> user function (worst-case pseudo arc, weight 0).
  FromExternal,
  /// ### -> possibly-addressed function (worst-case pseudo arc, weight 0).
  FromPointer,
};

/// One call-graph arc. Real arcs carry the IL call-site id; pseudo arcs
/// have SiteId 0.
struct CallArc {
  NodeId Caller = -1;
  NodeId Callee = -1;
  ArcKind Kind = ArcKind::Direct;
  uint32_t SiteId = 0;
  double Weight = 0.0;
};

class CallGraph {
public:
  CallGraph(size_t NumFuncs);

  size_t getNumFuncs() const { return NumFuncs; }
  size_t getNumNodes() const { return NumFuncs + 2; }
  NodeId getExternalNode() const { return static_cast<NodeId>(NumFuncs); }
  NodeId getPointerNode() const { return static_cast<NodeId>(NumFuncs + 1); }
  bool isPseudoNode(NodeId N) const {
    return N >= static_cast<NodeId>(NumFuncs);
  }

  /// Adds an arc and returns its index.
  size_t addArc(CallArc Arc);

  const std::vector<CallArc> &getArcs() const { return Arcs; }
  std::vector<CallArc> &getArcs() { return Arcs; }

  /// Indices into getArcs() of the arcs leaving \p N.
  const std::vector<size_t> &getOutArcs(NodeId N) const {
    return OutArcIndices[static_cast<size_t>(N)];
  }
  /// Indices into getArcs() of the arcs entering \p N.
  const std::vector<size_t> &getInArcs(NodeId N) const {
    return InArcIndices[static_cast<size_t>(N)];
  }

  /// Returns the index of the (unique) arc with call-site id \p SiteId, or
  /// SIZE_MAX.
  size_t findArcBySite(uint32_t SiteId) const;

  void setNodeWeight(NodeId N, double W) {
    NodeWeights[static_cast<size_t>(N)] = W;
  }
  double getNodeWeight(NodeId N) const {
    return NodeWeights[static_cast<size_t>(N)];
  }

  // SCC / recursion queries (populated by computeScc()).
  //
  // Two decompositions are kept. The *full* SCC runs over every arc,
  // including the worst-case $$$/### fan-outs; it reflects the paper's
  // observation that external functions create "many more cycles" and is
  // what conservative dead-code reasoning sees. The *direct* SCC runs over
  // Direct arcs only and captures real user-level recursion — the
  // recursion predicate the inlining hazards use (otherwise every function
  // that performs I/O would count as recursive and nothing could ever be
  // expanded).

  /// Computes both SCC decompositions (Tarjan).
  void computeScc();
  bool sccComputed() const { return !SccIds.empty(); }
  int getSccId(NodeId N) const { return SccIds[static_cast<size_t>(N)]; }
  /// True if \p N lies on a cycle of the full graph (SCC size >1 or a
  /// self arc).
  bool isOnCycle(NodeId N) const { return OnCycle[static_cast<size_t>(N)]; }

  /// SCC id over Direct arcs only.
  int getDirectSccId(NodeId N) const {
    return DirectSccIds[static_cast<size_t>(N)];
  }
  /// True if \p N participates in real (user-level) recursion.
  bool isRecursive(NodeId N) const {
    return OnDirectCycle[static_cast<size_t>(N)];
  }

  // Reachability (populated by computeReachability()).

  /// Marks every node reachable from \p Main following arcs.
  void computeReachability(NodeId Main);
  bool reachabilityComputed() const { return !Reachable.empty(); }
  bool isReachable(NodeId N) const { return Reachable[static_cast<size_t>(N)]; }

  /// Debug rendering; \p FuncNames resolves function node labels.
  std::string dump(const std::vector<std::string> &FuncNames) const;

  /// Graphviz rendering of the weighted call graph: nodes labeled with
  /// weights (pseudo nodes as boxes), arcs labeled "site#id w=weight",
  /// recursive nodes outlined bold, unreachable nodes dashed.
  std::string dumpDot(const std::vector<std::string> &FuncNames) const;

private:
  size_t NumFuncs;
  std::vector<CallArc> Arcs;
  std::vector<std::vector<size_t>> OutArcIndices;
  std::vector<std::vector<size_t>> InArcIndices;
  std::vector<double> NodeWeights;
  std::vector<int> SccIds;
  std::vector<bool> OnCycle;
  std::vector<int> DirectSccIds;
  std::vector<bool> OnDirectCycle;
  std::vector<bool> Reachable;
};

} // namespace impact

#endif // IMPACT_CALLGRAPH_CALLGRAPH_H
