//===- callgraph/Reachability.h - Graph reachability --------------------------===//
//
// Part of the impact-inline project, distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#ifndef IMPACT_CALLGRAPH_REACHABILITY_H
#define IMPACT_CALLGRAPH_REACHABILITY_H

#include <vector>

namespace impact {

/// Nodes reachable from \p Start (inclusive) following \p Successors.
std::vector<bool>
computeReachableSet(const std::vector<std::vector<int>> &Successors,
                    int Start);

} // namespace impact

#endif // IMPACT_CALLGRAPH_REACHABILITY_H
