//===- suite/Workloads.h - Synthetic representative inputs ---------------------===//
//
// Part of the impact-inline project, distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic input generators for the 12 benchmark programs. The paper
/// profiles each benchmark over many *representative* inputs (20 C files
/// for cccp, similar/dissimilar text pairs for cmp, ...); these generators
/// produce the same input shapes synthetically so every experiment is
/// reproducible offline. Each generator takes an Rng so that run i of
/// benchmark b is the same on every machine.
///
//===----------------------------------------------------------------------===//

#ifndef IMPACT_SUITE_WORKLOADS_H
#define IMPACT_SUITE_WORKLOADS_H

#include "support/Rng.h"

#include <string>

namespace impact {

/// C-ish source text: #define lines, declarations, expressions, //- and
/// /* */-comments, identifiers drawn from a macro-rich vocabulary (cccp's
/// diet; also used by lex and wc).
std::string generateCLikeSource(Rng &R, unsigned Lines);

/// Plain prose-like word text (tee, wc, cmp).
std::string generateWordText(Rng &R, unsigned Words);

/// A copy of \p Text with \p Edits random single-character changes (cmp's
/// "similar/dissimilar" pairs).
std::string mutateText(Rng &R, const std::string &Text, unsigned Edits);

/// Arithmetic equation lines like "x12+ab*(q-4)/k" (eqn).
std::string generateEquations(Rng &R, unsigned Count);

/// A two-level truth table: "<nvars> <ncubes>" then one {0,1,-} cube per
/// line (espresso).
std::string generateTruthTable(Rng &R, unsigned Vars, unsigned Cubes);

/// A grep input: first line is a pattern (literals plus . * ^ $), the rest
/// are text lines, a fraction of which match.
std::string generateGrepInput(Rng &R, unsigned Lines);

/// A makefile: "target: dep dep ..." lines forming a DAG rooted at the
/// first target (make).
std::string generateMakefile(Rng &R, unsigned Targets);

/// A file-archive input: "<name> <size>" header lines each followed by a
/// content line of exactly <size> characters (tar).
std::string generateArchiveInput(Rng &R, unsigned Files);

/// A toy grammar followed by '@' and sample strings to parse (yacc).
std::string generateGrammar(Rng &R, unsigned Extra);

/// LZW-friendly text with repeated phrases (compress).
std::string generateCompressibleText(Rng &R, unsigned Length);

} // namespace impact

#endif // IMPACT_SUITE_WORKLOADS_H
