//===- suite/Workloads.cpp -----------------------------------------------------===//
//
// Part of the impact-inline project, distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "suite/Workloads.h"

#include <cassert>

using namespace impact;

namespace {

const char *const Words[] = {
    "buffer", "count",  "index",  "state",  "token",  "value", "widget",
    "parse",  "stream", "symbol", "table",  "queue",  "node",  "list",
    "total",  "input",  "output", "cache",  "frame",  "block", "scan",
    "emit",   "flush",  "merge",  "split",  "check",  "probe", "delta",
};
constexpr size_t NumWords = sizeof(Words) / sizeof(Words[0]);

const char *const MacroNames[] = {
    "MAXBUF", "NDEBUG", "LIMIT", "STRIDE", "WIDTH", "DEPTH", "SCALE", "MASK",
};
constexpr size_t NumMacroNames = sizeof(MacroNames) / sizeof(MacroNames[0]);

std::string pickWord(Rng &R) { return Words[R.nextBelow(NumWords)]; }

/// A short identifier like "x3" or a vocabulary word.
std::string pickIdent(Rng &R) {
  if (R.nextChance(1, 3)) {
    std::string Id(1, static_cast<char>('a' + R.nextBelow(26)));
    Id += std::to_string(R.nextBelow(10));
    return Id;
  }
  return pickWord(R);
}

} // namespace

std::string impact::generateCLikeSource(Rng &R, unsigned Lines) {
  std::string Text;
  // A few macro definitions up front so references below hit the tables.
  unsigned NumMacros = 2 + static_cast<unsigned>(R.nextBelow(4));
  for (unsigned I = 0; I != NumMacros; ++I) {
    Text += "#define ";
    Text += MacroNames[I % NumMacroNames];
    Text += ' ';
    Text += std::to_string(R.nextInRange(1, 4096));
    Text += '\n';
  }
  for (unsigned L = 0; L != Lines; ++L) {
    switch (R.nextBelow(6)) {
    case 0:
      Text += "int " + pickIdent(R) + " = " + pickIdent(R) + " + " +
              MacroNames[R.nextBelow(NumMacroNames)] + "; // " + pickWord(R);
      break;
    case 1:
      Text += pickIdent(R) + " = " + pickIdent(R) + " * " + pickIdent(R) +
              " - " + std::to_string(R.nextBelow(100)) + ";";
      break;
    case 2:
      Text += "/* " + pickWord(R) + " " + pickWord(R) + " */ " +
              pickIdent(R) + "(" + pickIdent(R) + ", " +
              MacroNames[R.nextBelow(NumMacroNames)] + ");";
      break;
    case 3:
      Text += "if (" + pickIdent(R) + " < " +
              MacroNames[R.nextBelow(NumMacroNames)] + ") { " + pickIdent(R) +
              "++; }";
      break;
    case 4:
      Text += "while (" + pickIdent(R) + " != 0) " + pickIdent(R) + " = " +
              pickIdent(R) + " >> 1;";
      break;
    default:
      Text += "return " + pickIdent(R) + "; // " + pickWord(R);
      break;
    }
    Text += '\n';
  }
  return Text;
}

std::string impact::generateWordText(Rng &R, unsigned Words_) {
  std::string Text;
  unsigned Column = 0;
  for (unsigned W = 0; W != Words_; ++W) {
    std::string Word = pickWord(R);
    if (Column != 0) {
      if (Column + Word.size() > 60) {
        Text += '\n';
        Column = 0;
      } else {
        Text += ' ';
        ++Column;
      }
    }
    Text += Word;
    Column += static_cast<unsigned>(Word.size());
  }
  Text += '\n';
  return Text;
}

std::string impact::mutateText(Rng &R, const std::string &Text,
                               unsigned Edits) {
  std::string Copy = Text;
  if (Copy.empty())
    return Copy;
  for (unsigned E = 0; E != Edits; ++E) {
    size_t Pos = R.nextBelow(Copy.size());
    if (Copy[Pos] == '\n')
      continue; // keep the line structure
    Copy[Pos] = static_cast<char>('a' + R.nextBelow(26));
  }
  return Copy;
}

std::string impact::generateEquations(Rng &R, unsigned Count) {
  std::string Text;
  // Fully parenthesizable infix expressions with nesting, so the
  // recursive-descent formatter recurses meaningfully.
  for (unsigned I = 0; I != Count; ++I) {
    unsigned Terms = 2 + static_cast<unsigned>(R.nextBelow(4));
    for (unsigned T = 0; T != Terms; ++T) {
      if (T != 0)
        Text += "+-*/"[R.nextBelow(4)];
      if (R.nextChance(1, 4)) {
        Text += '(';
        Text += static_cast<char>('a' + R.nextBelow(26));
        Text += "+-"[R.nextBelow(2)];
        Text += std::to_string(R.nextBelow(100));
        Text += ')';
      } else if (R.nextChance(1, 2)) {
        Text += static_cast<char>('a' + R.nextBelow(26));
      } else {
        Text += std::to_string(R.nextBelow(1000));
      }
    }
    Text += '\n';
  }
  return Text;
}

std::string impact::generateTruthTable(Rng &R, unsigned Vars, unsigned Cubes) {
  assert(Vars >= 2 && "need at least two variables");
  std::string Text = std::to_string(Vars) + " " + std::to_string(Cubes) + "\n";
  std::string Prev;
  for (unsigned C = 0; C != Cubes; ++C) {
    std::string Cube;
    if (!Prev.empty() && R.nextChance(1, 2)) {
      // Mergeable neighbour: flip exactly one specified bit of Prev.
      Cube = Prev;
      size_t Pos = R.nextBelow(Vars);
      if (Cube[Pos] == '-')
        Cube[Pos] = '0';
      Cube[Pos] = Cube[Pos] == '0' ? '1' : '0';
    } else {
      for (unsigned V = 0; V != Vars; ++V)
        Cube += "01-"[R.nextBelow(6) == 0 ? 2 : R.nextBelow(2)];
    }
    Prev = Cube;
    Text += Cube;
    Text += '\n';
  }
  return Text;
}

std::string impact::generateGrepInput(Rng &R, unsigned Lines) {
  // Pattern: anchored or not, literals with occasional '.' and 'x*'.
  std::string Needle;
  unsigned NeedleLen = 2 + static_cast<unsigned>(R.nextBelow(3));
  for (unsigned I = 0; I != NeedleLen; ++I)
    Needle += static_cast<char>('a' + R.nextBelow(6));
  std::string Pattern = Needle;
  if (R.nextChance(1, 4))
    Pattern[R.nextBelow(Pattern.size())] = '.';
  if (R.nextChance(1, 4))
    Pattern += "s*";

  std::string Text = Pattern + "\n";
  for (unsigned L = 0; L != Lines; ++L) {
    std::string Line;
    unsigned Len = 8 + static_cast<unsigned>(R.nextBelow(48));
    for (unsigned I = 0; I != Len; ++I)
      Line += static_cast<char>('a' + R.nextBelow(8));
    if (R.nextChance(1, 5)) {
      size_t Pos = R.nextBelow(Line.size());
      Line.insert(Pos, Needle); // guaranteed hit
    }
    Text += Line;
    Text += '\n';
  }
  return Text;
}

std::string impact::generateMakefile(Rng &R, unsigned Targets) {
  assert(Targets >= 2 && "need at least two targets");
  std::string Text;
  for (unsigned T = 0; T != Targets; ++T) {
    Text += "t" + std::to_string(T) + ":";
    // Dependencies point at strictly higher indices: acyclic, rooted at t0.
    unsigned MaxDeps = Targets - T - 1;
    unsigned Deps = MaxDeps == 0 ? 0
                                 : static_cast<unsigned>(
                                       R.nextBelow(MaxDeps < 3 ? MaxDeps + 1 : 4));
    unsigned Last = T;
    for (unsigned D = 0; D != Deps; ++D) {
      unsigned Dep = Last + 1 +
                     static_cast<unsigned>(R.nextBelow(Targets - Last - 1));
      Text += " t" + std::to_string(Dep);
      Last = Dep;
      if (Last + 1 >= Targets)
        break;
    }
    Text += '\n';
  }
  return Text;
}

std::string impact::generateArchiveInput(Rng &R, unsigned Files) {
  std::string Text;
  for (unsigned F = 0; F != Files; ++F) {
    unsigned Size = 10 + static_cast<unsigned>(R.nextBelow(120));
    Text += pickWord(R) + std::to_string(F) + " " + std::to_string(Size) +
            "\n";
    for (unsigned I = 0; I != Size; ++I)
      Text += static_cast<char>('a' + R.nextBelow(26));
    Text += '\n';
  }
  return Text;
}

std::string impact::generateGrammar(Rng &R, unsigned Extra) {
  // A fixed LL-friendly core grammar plus Extra random unit productions.
  // S -> a S b | c A | A d ; A -> a A | e | <empty>
  std::string Text = "S=aSb;S=cA;S=Ad;A=aA;A=e;A=;";
  for (unsigned I = 0; I != Extra; ++I) {
    char Nt = static_cast<char>('B' + R.nextBelow(3));
    std::string Rhs;
    unsigned Len = static_cast<unsigned>(R.nextBelow(3));
    for (unsigned J = 0; J != Len; ++J)
      Rhs += static_cast<char>('a' + R.nextBelow(4));
    Text += std::string(1, Nt) + "=" + Rhs + ";";
  }
  Text += "\n@\n";

  // Sample strings: derivations of S (accepted) mixed with noise lines.
  unsigned Samples = 24 + static_cast<unsigned>(R.nextBelow(16));
  for (unsigned I = 0; I != Samples; ++I) {
    std::string Sample;
    if (R.nextChance(2, 3)) {
      // Derive: S -> a^k (cA|Ad) b^k with A -> a^m (e|empty)
      unsigned K = static_cast<unsigned>(R.nextBelow(4));
      unsigned M = static_cast<unsigned>(R.nextBelow(4));
      std::string A(M, 'a');
      if (R.nextChance(1, 2))
        A += 'e';
      Sample = std::string(K, 'a') +
               (R.nextChance(1, 2) ? "c" + A : A + "d") + std::string(K, 'b');
    } else {
      unsigned Len = 1 + static_cast<unsigned>(R.nextBelow(6));
      for (unsigned J = 0; J != Len; ++J)
        Sample += static_cast<char>('a' + R.nextBelow(5));
    }
    Text += Sample;
    Text += '\n';
  }
  return Text;
}

std::string impact::generateCompressibleText(Rng &R, unsigned Length) {
  std::string Text;
  while (Text.size() < Length) {
    if (R.nextChance(3, 5) && Text.size() > 40) {
      // Repeat an earlier phrase: LZW's bread and butter.
      size_t Start = R.nextBelow(Text.size() - 20);
      size_t Len = 8 + R.nextBelow(24);
      Text += Text.substr(Start, Len);
    } else {
      Text += pickWord(R);
      Text += R.nextChance(1, 6) ? '\n' : ' ';
    }
  }
  Text += '\n';
  return Text;
}
