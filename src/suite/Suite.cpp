//===- suite/Suite.cpp ---------------------------------------------------------===//
//
// Part of the impact-inline project, distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "suite/Suite.h"

using namespace impact;

const std::vector<BenchmarkSpec> &impact::getBenchmarkSuite() {
  static const std::vector<BenchmarkSpec> Suite = [] {
    std::vector<BenchmarkSpec> S;
    S.push_back(makeCccpBenchmark());
    S.push_back(makeCmpBenchmark());
    S.push_back(makeCompressBenchmark());
    S.push_back(makeEqnBenchmark());
    S.push_back(makeEspressoBenchmark());
    S.push_back(makeGrepBenchmark());
    S.push_back(makeLexBenchmark());
    S.push_back(makeMakeBenchmark());
    S.push_back(makeTarBenchmark());
    S.push_back(makeTeeBenchmark());
    S.push_back(makeWcBenchmark());
    S.push_back(makeYaccBenchmark());
    return S;
  }();
  return Suite;
}

const BenchmarkSpec *impact::findBenchmark(std::string_view Name) {
  for (const BenchmarkSpec &B : getBenchmarkSuite())
    if (B.Name == Name)
      return &B;
  return nullptr;
}

std::vector<RunInput> impact::makeBenchmarkInputs(const BenchmarkSpec &Spec,
                                                  unsigned Runs) {
  if (Runs == 0)
    Runs = Spec.DefaultRuns;
  return Spec.MakeInputs(Runs);
}
