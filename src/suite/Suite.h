//===- suite/Suite.h - The 12-benchmark suite ----------------------------------===//
//
// Part of the impact-inline project, distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// MiniC re-implementations of the paper's 12 UNIX benchmarks, each with a
/// deterministic workload generator producing the paper's input shapes
/// (Table 1's "input description" column). The programs are written in the
/// structured many-small-functions style whose call overhead the paper
/// attacks, and deliberately cover the interesting call-graph features:
/// recursion (eqn, grep, make, yacc), calls through pointers (lex, make),
/// call-once initialization functions, hot leaf functions, and heavy
/// external (I/O) call traffic (tee).
///
//===----------------------------------------------------------------------===//

#ifndef IMPACT_SUITE_SUITE_H
#define IMPACT_SUITE_SUITE_H

#include "profile/Profiler.h"

#include <string>
#include <string_view>
#include <vector>

namespace impact {

struct BenchmarkSpec {
  /// Name matching the paper's Table 1 (cccp, cmp, compress, ...).
  std::string Name;
  /// Table 1's input description.
  std::string InputDescription;
  /// MiniC source text.
  std::string Source;
  /// Number of profiled runs (Table 1's "runs" column).
  unsigned DefaultRuns = 20;
  /// Generates \p Runs deterministic inputs.
  std::vector<RunInput> (*MakeInputs)(unsigned Runs) = nullptr;
};

/// The 12 benchmarks in the paper's order.
const std::vector<BenchmarkSpec> &getBenchmarkSuite();

/// Lookup by name; null when unknown.
const BenchmarkSpec *findBenchmark(std::string_view Name);

/// Convenience: inputs for \p Spec (\p Runs == 0 uses DefaultRuns).
std::vector<RunInput> makeBenchmarkInputs(const BenchmarkSpec &Spec,
                                          unsigned Runs = 0);

// Per-program factories, grouped as in the implementation files.
BenchmarkSpec makeCccpBenchmark();
BenchmarkSpec makeCmpBenchmark();
BenchmarkSpec makeCompressBenchmark();
BenchmarkSpec makeEqnBenchmark();
BenchmarkSpec makeEspressoBenchmark();
BenchmarkSpec makeGrepBenchmark();
BenchmarkSpec makeLexBenchmark();
BenchmarkSpec makeMakeBenchmark();
BenchmarkSpec makeTarBenchmark();
BenchmarkSpec makeTeeBenchmark();
BenchmarkSpec makeWcBenchmark();
BenchmarkSpec makeYaccBenchmark();

} // namespace impact

#endif // IMPACT_SUITE_SUITE_H
