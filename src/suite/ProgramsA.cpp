//===- suite/ProgramsA.cpp - cccp, cmp, compress, eqn --------------------------===//
//
// Part of the impact-inline project, distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "suite/Suite.h"
#include "suite/Workloads.h"

using namespace impact;

//===----------------------------------------------------------------------===//
// cccp — a macro preprocessor (the GNU C preprocessor's diet): #define
// handling, macro substitution, //- and /* */-comment stripping.
//===----------------------------------------------------------------------===//

namespace {

const char CccpSource[] = R"MC(
// cccp: macro preprocessor. Reads C-like text, records #define macros,
// substitutes macro names, strips comments.
extern int putchar(int c);
extern int print_int(int v);
extern int input_avail();
extern int read_block(int *buf, int max);
extern int write_block(int *buf, int n);

int macro_name[2048];   // 128 slots x 16 words, NUL terminated
int macro_val[4096];    // 128 slots x 32 words, NUL terminated
int macro_count;
int line[512];
int linelen;
int eof_seen;
int subst_count;
int inbuf[65536];
int inlen;
int incur;
int outbuf[4096];
int outlen;

int is_alpha(int c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_';
}

int is_digit(int c) { return c >= '0' && c <= '9'; }

int is_ident(int c) { return is_alpha(c) || is_digit(c); }

int load_input() {
  int n;
  inlen = 0;
  incur = 0;
  n = read_block(&inbuf[0], 4096);
  while (n > 0) {
    inlen = inlen + n;
    if (inlen + 4096 > 65536) break;
    n = read_block(&inbuf[inlen], 4096);
  }
  return inlen;
}

int next_ch() {
  int c;
  if (incur >= inlen) return -1;
  c = inbuf[incur];
  incur = incur + 1;
  return c;
}

int flush_out() {
  if (outlen > 0) write_block(&outbuf[0], outlen);
  outlen = 0;
  return 0;
}

int emit(int c) {
  if (outlen >= 4096) flush_out();
  outbuf[outlen] = c;
  outlen = outlen + 1;
  return c;
}

int read_line() {
  int c;
  linelen = 0;
  c = next_ch();
  if (c == -1) { eof_seen = 1; return -1; }
  while (c != -1 && c != '\n') {
    if (linelen < 511) { line[linelen] = c; linelen = linelen + 1; }
    c = next_ch();
  }
  return linelen;
}

int names_equal(int slot, int *buf, int len) {
  int i;
  if (len >= 15) return 0;
  for (i = 0; i < len; i++) {
    if (macro_name[slot * 16 + i] != buf[i]) return 0;
  }
  return macro_name[slot * 16 + len] == 0;
}

int macro_lookup(int *buf, int len) {
  int s;
  for (s = 0; s < macro_count; s++) {
    if (names_equal(s, buf, len)) return s;
  }
  return -1;
}

int macro_define(int *nbuf, int nlen, int *vbuf, int vlen) {
  int i;
  if (macro_count >= 128) return -1;
  if (nlen > 14) nlen = 14;
  if (vlen > 31) vlen = 31;
  for (i = 0; i < nlen; i++) macro_name[macro_count * 16 + i] = nbuf[i];
  macro_name[macro_count * 16 + nlen] = 0;
  for (i = 0; i < vlen; i++) macro_val[macro_count * 32 + i] = vbuf[i];
  macro_val[macro_count * 32 + vlen] = 0;
  macro_count = macro_count + 1;
  return macro_count - 1;
}

int emit_value(int slot) {
  int i;
  i = 0;
  while (macro_val[slot * 32 + i] != 0) {
    emit(macro_val[slot * 32 + i]);
    i = i + 1;
  }
  subst_count = subst_count + 1;
  return i;
}

int emit_ident(int start, int len) {
  int i;
  for (i = 0; i < len; i++) emit(line[start + i]);
  return len;
}

int match_prefix(int *pat) {
  int i;
  i = 0;
  while (pat[i] != 0) {
    if (i >= linelen) return 0;
    if (line[i] != pat[i]) return 0;
    i = i + 1;
  }
  return 1;
}

int skip_spaces(int pos) {
  while (pos < linelen && line[pos] == ' ') pos = pos + 1;
  return pos;
}

int handle_define() {
  int pos;
  int nstart;
  int nlen;
  int vstart;
  pos = skip_spaces(8);
  nstart = pos;
  while (pos < linelen && is_ident(line[pos])) pos = pos + 1;
  nlen = pos - nstart;
  pos = skip_spaces(pos);
  vstart = pos;
  if (nlen > 0) {
    macro_define(&line[nstart], nlen, &line[vstart], linelen - vstart);
  }
  return nlen;
}

int process_line() {
  int pos;
  int start;
  int len;
  int slot;
  int c;
  pos = 0;
  while (pos < linelen) {
    c = line[pos];
    if (c == '/' && pos + 1 < linelen && line[pos + 1] == '/') {
      return 0;
    }
    if (c == '/' && pos + 1 < linelen && line[pos + 1] == '*') {
      pos = pos + 2;
      while (pos + 1 < linelen &&
             !(line[pos] == '*' && line[pos + 1] == '/')) {
        pos = pos + 1;
      }
      pos = pos + 2;
      continue;
    }
    if (is_alpha(c)) {
      start = pos;
      while (pos < linelen && is_ident(line[pos])) pos = pos + 1;
      len = pos - start;
      slot = macro_lookup(&line[start], len);
      if (slot >= 0) {
        emit_value(slot);
      } else {
        emit_ident(start, len);
      }
      continue;
    }
    emit(c);
    pos = pos + 1;
  }
  return 0;
}

int emit_str(int *s) {
  int i;
  i = 0;
  while (s[i] != 0) {
    emit(s[i]);
    i = i + 1;
  }
  return i;
}

int usage() {
  emit_str("usage: cccp < source");
  emit('\n');
  flush_out();
  return 2;
}

int fatal(int *msg, int code) {
  emit_str("cccp: ");
  emit_str(msg);
  emit('\n');
  flush_out();
  return code;
}

int copy_slot(int from, int to) {
  int i;
  for (i = 0; i < 16; i++) macro_name[to * 16 + i] = macro_name[from * 16 + i];
  for (i = 0; i < 32; i++) macro_val[to * 32 + i] = macro_val[from * 32 + i];
  return to;
}

int macro_undef(int *buf, int len) {
  int s;
  int i;
  s = macro_lookup(buf, len);
  if (s < 0) return -1;
  for (i = s; i + 1 < macro_count; i++) copy_slot(i + 1, i);
  macro_count = macro_count - 1;
  return s;
}

int handle_undef() {
  int pos;
  int nstart;
  pos = skip_spaces(7);
  nstart = pos;
  while (pos < linelen && is_ident(line[pos])) pos = pos + 1;
  if (pos == nstart) return fatal("#undef needs a name", 1);
  return macro_undef(&line[nstart], pos - nstart);
}

int main() {
  macro_count = 0;
  eof_seen = 0;
  subst_count = 0;
  outlen = 0;
  if (input_avail() == 0) return usage();
  load_input();
  read_line();
  while (eof_seen == 0) {
    if (match_prefix("#define ")) {
      handle_define();
    } else if (match_prefix("#undef ")) {
      handle_undef();
    } else if (match_prefix("#include")) {
      fatal("#include is not supported", 1);
    } else {
      process_line();
      emit('\n');
    }
    read_line();
  }
  flush_out();
  print_int(subst_count);
  putchar('\n');
  return 0;
}
)MC";

std::vector<RunInput> makeCccpInputs(unsigned Runs) {
  std::vector<RunInput> Inputs;
  for (unsigned I = 0; I != Runs; ++I) {
    Rng R(0xCC01 + I * 977);
    RunInput In;
    In.Input = generateCLikeSource(R, 60 + static_cast<unsigned>(
                                            R.nextBelow(160)));
    Inputs.push_back(std::move(In));
  }
  return Inputs;
}

//===----------------------------------------------------------------------===//
// cmp — compare two input streams, report the first difference.
//===----------------------------------------------------------------------===//

const char CmpSource[] = R"MC(
// cmp: byte compare of two streams; reports first difference or "equal".
extern int getchar();
extern int getchar2();
extern int putchar(int c);
extern int print_int(int v);
extern int input_avail();

int pos;
int line;
int col;
int opt_list;

int next_a() { return getchar(); }

int next_b() { return getchar2(); }

int note_char(int c) {
  pos = pos + 1;
  col = col + 1;
  if (c == '\n') {
    line = line + 1;
    col = 0;
  }
  return c;
}

int report(int *label, int value) {
  int i;
  i = 0;
  while (label[i] != 0) {
    putchar(label[i]);
    i = i + 1;
  }
  print_int(value);
  putchar('\n');
  return value;
}

int usage() {
  report("usage: cmp fileA fileB, differences found so far: ", 0);
  return 2;
}

int list_difference(int a, int b) {
  report("byte ", pos + 1);
  report("  a=", a);
  report("  b=", b);
  return pos;
}

int skip_bytes(int n) {
  int i;
  int a;
  for (i = 0; i < n; i++) {
    a = next_a();
    next_b();
    if (a == -1) return -1;
    note_char(a);
  }
  return n;
}

int main() {
  int a;
  int b;
  int ndiff;
  pos = 0;
  line = 1;
  col = 0;
  opt_list = 0;
  ndiff = 0;
  if (input_avail() == 0) return usage();
  a = next_a();
  b = next_b();
  while (a != -1 && b != -1) {
    if (a != b) {
      if (opt_list) {
        list_difference(a, b);
        ndiff = ndiff + 1;
      } else {
        report("differ: char ", pos + 1);
        report("line ", line);
        return 1;
      }
    }
    note_char(a);
    a = next_a();
    b = next_b();
  }
  if (a != b) {
    report("eof differ: char ", pos + 1);
    return 1;
  }
  if (ndiff > 0) {
    report("differences: ", ndiff);
    return 1;
  }
  report("equal: chars ", pos);
  return 0;
}
)MC";

std::vector<RunInput> makeCmpInputs(unsigned Runs) {
  std::vector<RunInput> Inputs;
  for (unsigned I = 0; I != Runs; ++I) {
    Rng R(0xC3B0 + I * 613);
    RunInput In;
    In.Input = generateWordText(R, 500 + static_cast<unsigned>(
                                          R.nextBelow(400)));
    switch (I % 3) {
    case 0:
      In.Input2 = In.Input; // identical pair
      break;
    case 1:
      In.Input2 = mutateText(R, In.Input, 2); // similar
      break;
    default:
      In.Input2 = mutateText(R, In.Input, 40); // dissimilar
      break;
    }
    Inputs.push_back(std::move(In));
  }
  return Inputs;
}

//===----------------------------------------------------------------------===//
// compress — LZW with 12-bit codes over a chained hash table.
//===----------------------------------------------------------------------===//

const char CompressSource[] = R"MC(
// compress: LZW, 12-bit codes, chained-hash string table.
extern int putchar(int c);
extern int print_int(int v);
extern int input_avail();
extern int read_block(int *buf, int max);
extern int write_block(int *buf, int n);

int prefix_of[4096];
int char_of[4096];
int hash_head[8192];
int hash_link[4096];
int expand_stack[4096];
int table_size;
int bit_buf;
int bit_count;
int out_bytes;
int inbuf[65536];
int inlen;
int incur;
int outbuf[4096];
int outlen;

int hash_key(int p, int c) { return ((p << 5) ^ (c * 31)) & 8191; }

int find_code(int p, int c) {
  int idx;
  idx = hash_head[hash_key(p, c)];
  while (idx >= 0) {
    if (prefix_of[idx] == p && char_of[idx] == c) return idx;
    idx = hash_link[idx];
  }
  return -1;
}

int insert_code(int p, int c) {
  int h;
  if (table_size >= 4096) return -1;
  h = hash_key(p, c);
  prefix_of[table_size] = p;
  char_of[table_size] = c;
  hash_link[table_size] = hash_head[h];
  hash_head[h] = table_size;
  table_size = table_size + 1;
  return table_size - 1;
}

int load_input() {
  int n;
  inlen = 0;
  incur = 0;
  n = read_block(&inbuf[0], 4096);
  while (n > 0) {
    inlen = inlen + n;
    if (inlen + 4096 > 65536) break;
    n = read_block(&inbuf[inlen], 4096);
  }
  return inlen;
}

int next_in() {
  int c;
  if (incur >= inlen) return -1;
  c = inbuf[incur];
  incur = incur + 1;
  return c;
}

int flush_out() {
  if (outlen > 0) write_block(&outbuf[0], outlen);
  outlen = 0;
  return 0;
}

int put_byte(int b) {
  if (outlen >= 4096) flush_out();
  outbuf[outlen] = b;
  outlen = outlen + 1;
  out_bytes = out_bytes + 1;
  return b;
}

int put_code(int code) {
  bit_buf = bit_buf | (code << bit_count);
  bit_count = bit_count + 12;
  while (bit_count >= 8) {
    put_byte(bit_buf & 255);
    bit_buf = bit_buf >> 8;
    bit_count = bit_count - 8;
  }
  return code;
}

int flush_bits() {
  if (bit_count > 0) put_byte(bit_buf & 255);
  bit_buf = 0;
  bit_count = 0;
  return 0;
}

int init_table() {
  int i;
  for (i = 0; i < 8192; i++) hash_head[i] = -1;
  table_size = 256;
  return 0;
}

int emit_str(int *s) {
  int i;
  i = 0;
  while (s[i] != 0) {
    putchar(s[i]);
    i = i + 1;
  }
  return i;
}

int usage() {
  emit_str("usage: compress < text (or -d < archive)");
  putchar('\n');
  return 2;
}

int get_code() {
  int c;
  while (bit_count < 12) {
    c = next_in();
    if (c == -1) return -1;
    bit_buf = bit_buf | (c << bit_count);
    bit_count = bit_count + 8;
  }
  c = bit_buf & 4095;
  bit_buf = bit_buf >> 12;
  bit_count = bit_count - 12;
  return c;
}

int expand_code(int code) {
  int sp;
  sp = 0;
  while (code >= 256) {
    if (sp < 4095) { expand_stack[sp] = char_of[code]; sp = sp + 1; }
    code = prefix_of[code];
  }
  put_byte(code);
  while (sp > 0) {
    sp = sp - 1;
    put_byte(expand_stack[sp]);
  }
  return sp;
}

int decompress() {
  int code;
  int prev;
  init_table();
  bit_buf = 0;
  bit_count = 0;
  prev = get_code();
  if (prev == -1) return 0;
  expand_code(prev);
  code = get_code();
  while (code != -1) {
    if (code < table_size) expand_code(code);
    if (table_size < 4096) {
      prefix_of[table_size] = prev;
      char_of[table_size] = code < 256 ? code : char_of[code];
      table_size = table_size + 1;
    }
    prev = code;
    code = get_code();
  }
  return table_size;
}

int main() {
  int c;
  int w;
  int k;
  if (input_avail() == 0) return usage();
  init_table();
  bit_buf = 0;
  bit_count = 0;
  out_bytes = 0;
  outlen = 0;
  load_input();
  w = next_in();
  if (w == -1) return 0;
  if (w == 1) {
    k = decompress();  // SOH marker selects -d mode
    flush_out();
    return k;
  }
  c = next_in();
  while (c != -1) {
    k = find_code(w, c);
    if (k >= 0) {
      w = k;
    } else {
      put_code(w);
      insert_code(w, c);
      w = c;
    }
    c = next_in();
  }
  put_code(w);
  flush_bits();
  flush_out();
  putchar('\n');
  print_int(out_bytes);
  putchar('\n');
  return 0;
}
)MC";

std::vector<RunInput> makeCompressInputs(unsigned Runs) {
  std::vector<RunInput> Inputs;
  for (unsigned I = 0; I != Runs; ++I) {
    Rng R(0xC0DE + I * 389);
    RunInput In;
    In.Input = generateCompressibleText(
        R, 3000 + static_cast<unsigned>(R.nextBelow(3000)));
    Inputs.push_back(std::move(In));
  }
  return Inputs;
}

//===----------------------------------------------------------------------===//
// eqn — equation formatter: recursive-descent parse of infix expressions,
// postfix re-emission (troff eqn's diet).
//===----------------------------------------------------------------------===//

const char EqnSource[] = R"MC(
// eqn: parses infix equation lines recursively, emits postfix.
extern int putchar(int c);
extern int print_int(int v);
extern int input_avail();
extern int read_block(int *buf, int max);
extern int write_block(int *buf, int n);

int line[256];
int linelen;
int pos;
int eof_seen;
int errors;
int lineno;
int inbuf[65536];
int inlen;
int incur;
int outbuf[4096];
int outlen;

int is_digit(int c) { return c >= '0' && c <= '9'; }

int is_lower(int c) { return c >= 'a' && c <= 'z'; }

int load_input() {
  int n;
  inlen = 0;
  incur = 0;
  n = read_block(&inbuf[0], 4096);
  while (n > 0) {
    inlen = inlen + n;
    if (inlen + 4096 > 65536) break;
    n = read_block(&inbuf[inlen], 4096);
  }
  return inlen;
}

int next_ch() {
  int c;
  if (incur >= inlen) return -1;
  c = inbuf[incur];
  incur = incur + 1;
  return c;
}

int read_line() {
  int c;
  linelen = 0;
  c = next_ch();
  if (c == -1) { eof_seen = 1; return -1; }
  while (c != -1 && c != '\n') {
    if (linelen < 255) { line[linelen] = c; linelen = linelen + 1; }
    c = next_ch();
  }
  return linelen;
}

int peek() {
  if (pos < linelen) return line[pos];
  return -1;
}

int advance() {
  int c;
  c = peek();
  pos = pos + 1;
  return c;
}

int flush_out() {
  if (outlen > 0) write_block(&outbuf[0], outlen);
  outlen = 0;
  return 0;
}

int emit(int c) {
  if (outlen >= 4096) flush_out();
  outbuf[outlen] = c;
  outlen = outlen + 1;
  return c;
}

int emit_str(int *s) {
  int i;
  i = 0;
  while (s[i] != 0) {
    emit(s[i]);
    i = i + 1;
  }
  return i;
}

int usage() {
  emit_str("usage: eqn < formulas");
  emit('\n');
  flush_out();
  return 2;
}

int report_error(int where, int *what) {
  errors = errors + 1;
  flush_out();
  emit_str("eqn: line ");
  flush_out();
  print_int(lineno);
  emit_str(" col ");
  flush_out();
  print_int(where);
  emit_str(": ");
  emit_str(what);
  emit('\n');
  flush_out();
  return -1;
}

int parse_factor() {
  int c;
  c = peek();
  if (c == '(') {
    advance();
    parse_expr();
    if (peek() == ')') advance();
    else report_error(pos, "missing ')'");
    return 0;
  }
  if (is_lower(c)) {
    emit(advance());
    return 0;
  }
  if (is_digit(c)) {
    while (is_digit(peek())) emit(advance());
    emit('#');
    return 0;
  }
  report_error(pos, "expected operand");
  advance();
  return -1;
}

int parse_term() {
  int op;
  parse_factor();
  while (peek() == '*' || peek() == '/') {
    op = advance();
    parse_factor();
    emit(op);
  }
  return 0;
}

int parse_expr() {
  int op;
  parse_term();
  while (peek() == '+' || peek() == '-') {
    op = advance();
    parse_term();
    emit(op);
  }
  return 0;
}

int main() {
  eof_seen = 0;
  errors = 0;
  lineno = 0;
  outlen = 0;
  if (input_avail() == 0) return usage();
  load_input();
  read_line();
  while (eof_seen == 0) {
    lineno = lineno + 1;
    pos = 0;
    if (linelen > 0) {
      parse_expr();
      emit('\n');
    }
    read_line();
  }
  flush_out();
  print_int(errors);
  putchar('\n');
  return 0;
}
)MC";

std::vector<RunInput> makeEqnInputs(unsigned Runs) {
  std::vector<RunInput> Inputs;
  for (unsigned I = 0; I != Runs; ++I) {
    Rng R(0xE4E4 + I * 211);
    RunInput In;
    In.Input = generateEquations(R, 120 + static_cast<unsigned>(
                                          R.nextBelow(240)));
    Inputs.push_back(std::move(In));
  }
  return Inputs;
}

} // namespace

BenchmarkSpec impact::makeCccpBenchmark() {
  BenchmarkSpec B;
  B.Name = "cccp";
  B.InputDescription = "C programs (synthetic, 60-220 lines)";
  B.Source = CccpSource;
  B.DefaultRuns = 20;
  B.MakeInputs = makeCccpInputs;
  return B;
}

BenchmarkSpec impact::makeCmpBenchmark() {
  BenchmarkSpec B;
  B.Name = "cmp";
  B.InputDescription = "similar/dissimilar text files";
  B.Source = CmpSource;
  B.DefaultRuns = 16;
  B.MakeInputs = makeCmpInputs;
  return B;
}

BenchmarkSpec impact::makeCompressBenchmark() {
  BenchmarkSpec B;
  B.Name = "compress";
  B.InputDescription = "compressible word text (3-6 KB)";
  B.Source = CompressSource;
  B.DefaultRuns = 20;
  B.MakeInputs = makeCompressInputs;
  return B;
}

BenchmarkSpec impact::makeEqnBenchmark() {
  BenchmarkSpec B;
  B.Name = "eqn";
  B.InputDescription = "equation documents (120-360 formulas)";
  B.Source = EqnSource;
  B.DefaultRuns = 20;
  B.MakeInputs = makeEqnInputs;
  return B;
}
