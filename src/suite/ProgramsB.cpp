//===- suite/ProgramsB.cpp - espresso, grep, lex, make -------------------------===//
//
// Part of the impact-inline project, distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "suite/Suite.h"
#include "suite/Workloads.h"

using namespace impact;

namespace {

//===----------------------------------------------------------------------===//
// espresso — two-level logic minimization: repeated single-distance cube
// merging over {0,1,-} covers.
//===----------------------------------------------------------------------===//

const char EspressoSource[] = R"MC(
// espresso: merge cubes differing in one specified literal until fixpoint.
extern int getchar();
extern int putchar(int c);
extern int print_int(int v);
extern int input_avail();

int cubes[8192];     // 128 cubes x 64 positions
int covered[128];
int nvars;
int ncubes;
int opt_verify;

int read_int() {
  int c;
  int v;
  v = 0;
  c = getchar();
  while (c == ' ' || c == '\n') c = getchar();
  while (c >= '0' && c <= '9') {
    v = v * 10 + (c - '0');
    c = getchar();
  }
  return v;
}

int cube_at(int i, int j) { return cubes[i * 64 + j]; }

int cube_set(int i, int j, int v) {
  cubes[i * 64 + j] = v;
  return v;
}

int read_cube(int idx) {
  int c;
  int j;
  c = getchar();
  while (c == '\n' || c == ' ') c = getchar();
  j = 0;
  while (c != -1 && c != '\n') {
    if (j < nvars) cube_set(idx, j, c);
    j = j + 1;
    c = getchar();
  }
  return j;
}

int diff_pos(int a, int b) {
  int j;
  int d;
  int where;
  d = 0;
  where = -1;
  for (j = 0; j < nvars; j++) {
    if (cube_at(a, j) != cube_at(b, j)) {
      if (cube_at(a, j) == '-' || cube_at(b, j) == '-') return -1;
      d = d + 1;
      where = j;
      if (d > 1) return -1;
    }
  }
  if (d == 1) return where;
  return -1;
}

int cubes_equal(int a, int b) {
  int j;
  for (j = 0; j < nvars; j++) {
    if (cube_at(a, j) != cube_at(b, j)) return 0;
  }
  return 1;
}

int find_duplicate(int idx) {
  int i;
  for (i = 0; i < idx; i++) {
    if (cubes_equal(i, idx)) return i;
  }
  return -1;
}

int add_merged(int a, int wpos) {
  int j;
  if (ncubes >= 128) return -1;
  for (j = 0; j < nvars; j++) cube_set(ncubes, j, cube_at(a, j));
  cube_set(ncubes, wpos, '-');
  covered[ncubes] = 0;
  ncubes = ncubes + 1;
  return ncubes - 1;
}

int merge_pass() {
  int a;
  int b;
  int w;
  int merged;
  int m;
  int limit;
  merged = 0;
  limit = ncubes;
  for (a = 0; a < limit; a++) {
    if (covered[a]) continue;
    for (b = a + 1; b < limit; b++) {
      if (covered[b]) continue;
      w = diff_pos(a, b);
      if (w >= 0) {
        m = add_merged(a, w);
        if (m >= 0) {
          if (find_duplicate(m) >= 0) ncubes = ncubes - 1;
          covered[a] = 1;
          covered[b] = 1;
          merged = merged + 1;
          break;
        }
      }
    }
  }
  return merged;
}

int count_specified(int i) {
  int j;
  int n;
  n = 0;
  for (j = 0; j < nvars; j++) {
    if (cube_at(i, j) != '-') n = n + 1;
  }
  return n;
}

int emit_cube(int i) {
  int j;
  for (j = 0; j < nvars; j++) putchar(cube_at(i, j));
  putchar('\n');
  return 0;
}

int emit_str(int *s) {
  int i;
  i = 0;
  while (s[i] != 0) {
    putchar(s[i]);
    i = i + 1;
  }
  return i;
}

int usage() {
  emit_str("usage: espresso < truth-table");
  putchar('\n');
  return 2;
}

int contains(int big, int small) {
  int j;
  for (j = 0; j < nvars; j++) {
    if (cube_at(big, j) != '-' && cube_at(big, j) != cube_at(small, j))
      return 0;
  }
  return 1;
}

int verify_cover(int originals) {
  int i;
  int k;
  int ok;
  int bad;
  bad = 0;
  for (i = 0; i < originals; i++) {
    ok = 0;
    for (k = 0; k < ncubes; k++) {
      if (covered[k] == 0 && contains(k, i)) { ok = 1; break; }
    }
    if (ok == 0) {
      emit_str("uncovered: ");
      emit_cube(i);
      bad = bad + 1;
    }
  }
  return bad;
}

int main() {
  int i;
  int n;
  int pass;
  int lits;
  opt_verify = 0;
  if (input_avail() == 0) return usage();
  nvars = read_int();
  ncubes = read_int();
  if (nvars > 64) nvars = 64;
  if (ncubes > 96) ncubes = 96;
  n = ncubes;
  for (i = 0; i < n; i++) {
    read_cube(i);
    covered[i] = 0;
  }
  pass = merge_pass();
  while (pass > 0) pass = merge_pass();
  lits = 0;
  for (i = 0; i < ncubes; i++) {
    if (covered[i] == 0) {
      emit_cube(i);
      lits = lits + count_specified(i);
    }
  }
  if (opt_verify) {
    if (verify_cover(n) > 0) return 1;
  }
  print_int(lits);
  putchar('\n');
  return 0;
}
)MC";

std::vector<RunInput> makeEspressoInputs(unsigned Runs) {
  std::vector<RunInput> Inputs;
  for (unsigned I = 0; I != Runs; ++I) {
    Rng R(0xE5E5 + I * 449);
    RunInput In;
    In.Input = generateTruthTable(
        R, 8 + static_cast<unsigned>(R.nextBelow(9)),
        28 + static_cast<unsigned>(R.nextBelow(32)));
    Inputs.push_back(std::move(In));
  }
  return Inputs;
}

//===----------------------------------------------------------------------===//
// grep — Kernighan-Pike regular expression matcher (literals . * ^ $).
//===----------------------------------------------------------------------===//

const char GrepSource[] = R"MC(
// grep: block-buffered input (read(2)-style), pattern matching with the
// . * ^ $ metacharacters, plus (cold) -v/-c option machinery.
extern int putchar(int c);
extern int print_int(int v);
extern int read_block(int *buf, int max);
extern int input_avail();

int textbuf[65536];
int textlen;
int cursor;
int pattern[128];
int line[512];
int linelen;
int matches;
int total_lines;
int opt_invert;
int opt_count_only;

int emit_str(int *s) {
  int i;
  i = 0;
  while (s[i] != 0) {
    putchar(s[i]);
    i = i + 1;
  }
  return i;
}

int usage() {
  emit_str("usage: grep, first line = pattern [-v invert, -c count]");
  putchar('\n');
  return 2;
}

int set_option(int c) {
  if (c == 'v') {
    opt_invert = 1;
    return 1;
  }
  if (c == 'c') {
    opt_count_only = 1;
    return 1;
  }
  emit_str("grep: bad option");
  putchar('\n');
  return 0;
}

int load_input() {
  int n;
  textlen = 0;
  n = read_block(&textbuf[0], 4096);
  while (n > 0) {
    textlen = textlen + n;
    if (textlen + 4096 > 65536) break;
    n = read_block(&textbuf[textlen], 4096);
  }
  return textlen;
}

int next_line(int *buf, int max) {
  int len;
  if (cursor >= textlen) return -1;
  len = 0;
  while (cursor < textlen && textbuf[cursor] != '\n') {
    if (len < max - 1) { buf[len] = textbuf[cursor]; len = len + 1; }
    cursor = cursor + 1;
  }
  cursor = cursor + 1;
  buf[len] = 0;
  return len;
}

int char_match(int pc, int tc) {
  if (tc == 0) return 0;
  if (pc == '.') return 1;
  return pc == tc;
}

int at_end(int *text) { return *text == 0; }

int match_star(int c, int *pat, int *text) {
  while (1) {
    if (match_here(pat, text)) return 1;
    if (at_end(text)) return 0;
    if (char_match(c, *text) == 0) return 0;
    text = text + 1;
  }
  return 0;
}

int match_here(int *pat, int *text) {
  while (1) {
    if (pat[0] == 0) return 1;
    if (pat[1] == '*') return match_star(pat[0], pat + 2, text);
    if (pat[0] == '$' && pat[1] == 0) return at_end(text);
    if (char_match(pat[0], *text) == 0) return 0;
    pat = pat + 1;
    text = text + 1;
  }
  return 0;
}

int match_line() {
  int i;
  if (pattern[0] == '^') return match_here(&pattern[1], &line[0]);
  i = 0;
  while (1) {
    if (match_here(&pattern[0], &line[i])) return 1;
    if (line[i] == 0) return 0;
    i = i + 1;
  }
  return 0;
}

int emit_line() {
  int i;
  i = 0;
  while (line[i] != 0) {
    putchar(line[i]);
    i = i + 1;
  }
  putchar('\n');
  return i;
}

int main() {
  int matched;
  matches = 0;
  total_lines = 0;
  opt_invert = 0;
  opt_count_only = 0;
  cursor = 0;
  if (input_avail() == 0) return usage();
  load_input();
  next_line(&pattern[0], 128);
  if (pattern[0] == '-' && pattern[1] != 0) {
    set_option(pattern[1]);
    next_line(&pattern[0], 128);
  }
  while (next_line(&line[0], 512) >= 0) {
    total_lines = total_lines + 1;
    matched = match_line();
    if (opt_invert) matched = matched == 0;
    if (matched) {
      if (opt_count_only == 0) emit_line();
      matches = matches + 1;
    }
  }
  print_int(matches);
  putchar('\n');
  return 0;
}
)MC";

std::vector<RunInput> makeGrepInputs(unsigned Runs) {
  std::vector<RunInput> Inputs;
  for (unsigned I = 0; I != Runs; ++I) {
    Rng R(0x63E9 + I * 733);
    RunInput In;
    In.Input = generateGrepInput(R, 160 + static_cast<unsigned>(
                                          R.nextBelow(160)));
    Inputs.push_back(std::move(In));
  }
  return Inputs;
}

//===----------------------------------------------------------------------===//
// lex — a table-driven tokenizer with a hashed symbol table and
// function-pointer dispatch per character class.
//===----------------------------------------------------------------------===//

const char LexSource[] = R"MC(
// lex: tokenizes C-like text; scanner selection through function pointers.
extern int putchar(int c);
extern int print_int(int v);
extern int input_avail();
extern int read_block(int *buf, int max);

int nident;
int nnum;
int nstr;
int nop;
int opt_dump;
int inbuf[131072];
int inlen;
int incur;
int sym_name[4096];   // 256 slots x 16
int sym_count;
int sym_head[64];
int sym_link[256];
int handler_tab[4];
int identbuf[64];
int peeked;
int has_peek;

int load_input() {
  int n;
  inlen = 0;
  incur = 0;
  n = read_block(&inbuf[0], 4096);
  while (n > 0) {
    inlen = inlen + n;
    if (inlen + 4096 > 131072) break;
    n = read_block(&inbuf[inlen], 4096);
  }
  return inlen;
}

int next_char() {
  int c;
  if (has_peek) {
    has_peek = 0;
    return peeked;
  }
  if (incur >= inlen) return -1;
  c = inbuf[incur];
  incur = incur + 1;
  return c;
}

int push_back(int c) {
  peeked = c;
  has_peek = 1;
  return c;
}

int is_alpha(int c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_';
}

int is_digit(int c) { return c >= '0' && c <= '9'; }

int is_space(int c) { return c == ' ' || c == '\n' || c == '\t'; }

int class_of(int c) {
  if (is_alpha(c)) return 0;
  if (is_digit(c)) return 1;
  if (c == '"') return 2;
  return 3;
}

int hash_ident(int *b, int len) {
  int h;
  int i;
  h = 0;
  for (i = 0; i < len; i++) h = (h * 31 + b[i]) & 63;
  return h;
}

int sym_equal(int slot, int *b, int len) {
  int i;
  if (len >= 15) return 0;
  for (i = 0; i < len; i++) {
    if (sym_name[slot * 16 + i] != b[i]) return 0;
  }
  return sym_name[slot * 16 + len] == 0;
}

int sym_lookup_or_add(int *b, int len) {
  int h;
  int s;
  int i;
  h = hash_ident(b, len);
  s = sym_head[h];
  while (s >= 0) {
    if (sym_equal(s, b, len)) return s;
    s = sym_link[s];
  }
  if (sym_count >= 256) return -1;
  if (len > 14) len = 14;
  for (i = 0; i < len; i++) sym_name[sym_count * 16 + i] = b[i];
  sym_name[sym_count * 16 + len] = 0;
  sym_link[sym_count] = sym_head[h];
  sym_head[h] = sym_count;
  sym_count = sym_count + 1;
  return sym_count - 1;
}

int scan_ident(int c) {
  int len;
  len = 0;
  while (is_alpha(c) || is_digit(c)) {
    if (len < 15) { identbuf[len] = c; len = len + 1; }
    c = next_char();
  }
  push_back(c);
  sym_lookup_or_add(&identbuf[0], len);
  nident = nident + 1;
  return 1;
}

int scan_number(int c) {
  int v;
  v = 0;
  while (is_digit(c)) {
    v = v * 10 + (c - '0');
    c = next_char();
  }
  push_back(c);
  nnum = nnum + 1;
  return 2;
}

int scan_string(int c) {
  c = next_char();
  while (c != -1 && c != '"') c = next_char();
  nstr = nstr + 1;
  return 3;
}

int scan_op(int c) {
  int d;
  int prev;
  if (c == '/') {
    d = next_char();
    if (d == '/') {
      c = d;
      while (c != -1 && c != '\n') c = next_char();
      return 5;
    }
    if (d == '*') {
      prev = 0;
      c = next_char();
      while (c != -1 && !(prev == '*' && c == '/')) {
        prev = c;
        c = next_char();
      }
      return 5;
    }
    push_back(d);
  }
  nop = nop + 1;
  return 4;
}

int init_handlers() {
  int i;
  handler_tab[0] = scan_ident;
  handler_tab[1] = scan_number;
  handler_tab[2] = scan_string;
  handler_tab[3] = scan_op;
  for (i = 0; i < 64; i++) sym_head[i] = -1;
  return 0;
}

int dispatch(int cls, int c) {
  int (*h)(int);
  h = handler_tab[cls];
  return h(c);
}

int emit_str(int *s) {
  int i;
  i = 0;
  while (s[i] != 0) {
    putchar(s[i]);
    i = i + 1;
  }
  return i;
}

int usage() {
  emit_str("usage: lex < source");
  putchar('\n');
  return 2;
}

int emit_symbol(int slot) {
  int i;
  i = 0;
  while (sym_name[slot * 16 + i] != 0) {
    putchar(sym_name[slot * 16 + i]);
    i = i + 1;
  }
  putchar('\n');
  return i;
}

int dump_symbols() {
  int s;
  emit_str("symbols:");
  putchar('\n');
  for (s = 0; s < sym_count; s++) emit_symbol(s);
  return sym_count;
}

int main() {
  int c;
  nident = 0;
  nnum = 0;
  nstr = 0;
  nop = 0;
  sym_count = 0;
  has_peek = 0;
  opt_dump = 0;
  if (input_avail() == 0) return usage();
  load_input();
  init_handlers();
  c = next_char();
  while (c != -1) {
    if (is_space(c)) {
      c = next_char();
      continue;
    }
    dispatch(class_of(c), c);
    c = next_char();
  }
  print_int(nident);
  putchar(' ');
  print_int(nnum);
  putchar(' ');
  print_int(nstr);
  putchar(' ');
  print_int(nop);
  putchar(' ');
  print_int(sym_count);
  putchar('\n');
  if (opt_dump) dump_symbols();
  return 0;
}
)MC";

std::vector<RunInput> makeLexInputs(unsigned Runs) {
  std::vector<RunInput> Inputs;
  for (unsigned I = 0; I != Runs; ++I) {
    Rng R(0x1E71 + I * 997);
    RunInput In;
    In.Input = generateCLikeSource(R, 500 + static_cast<unsigned>(
                                          R.nextBelow(400)));
    Inputs.push_back(std::move(In));
  }
  return Inputs;
}

//===----------------------------------------------------------------------===//
// make — dependency-driven build simulator: parse rules, recursive DFS
// build, action dispatch through function pointers.
//===----------------------------------------------------------------------===//

const char MakeSource[] = R"MC(
// make: parse "target: deps" lines, build t0 depth-first, dispatch the
// action of each target through a function pointer.
extern int getchar();
extern int putchar(int c);
extern int print_int(int v);
extern int input_avail();

int names[1024];    // 64 targets x 16
int name_len[64];
int deps[512];      // 64 targets x 8
int ndeps[64];
int ntargets;
int built[64];
int line[256];
int linelen;
int eof_seen;
int order_count;
int action_tab[3];
int opt_check;

int read_line() {
  int c;
  linelen = 0;
  c = getchar();
  if (c == -1) { eof_seen = 1; return -1; }
  while (c != -1 && c != '\n') {
    if (linelen < 255) { line[linelen] = c; linelen = linelen + 1; }
    c = getchar();
  }
  return linelen;
}

int name_equal(int t, int *buf, int len) {
  int i;
  if (len != name_len[t]) return 0;
  for (i = 0; i < len; i++) {
    if (names[t * 16 + i] != buf[i]) return 0;
  }
  return 1;
}

int find_target(int *buf, int len) {
  int t;
  for (t = 0; t < ntargets; t++) {
    if (name_equal(t, buf, len)) return t;
  }
  return -1;
}

int add_target(int *buf, int len) {
  int i;
  if (ntargets >= 64) return -1;
  if (len > 15) len = 15;
  for (i = 0; i < len; i++) names[ntargets * 16 + i] = buf[i];
  name_len[ntargets] = len;
  ndeps[ntargets] = 0;
  built[ntargets] = 0;
  ntargets = ntargets + 1;
  return ntargets - 1;
}

int intern(int *buf, int len) {
  int t;
  t = find_target(buf, len);
  if (t >= 0) return t;
  return add_target(buf, len);
}

int parse_line() {
  int pos;
  int start;
  int t;
  int d;
  pos = 0;
  while (pos < linelen && line[pos] != ':') pos = pos + 1;
  if (pos >= linelen) return -1;
  t = intern(&line[0], pos);
  pos = pos + 1;
  while (pos < linelen) {
    while (pos < linelen && line[pos] == ' ') pos = pos + 1;
    start = pos;
    while (pos < linelen && line[pos] != ' ') pos = pos + 1;
    if (pos > start && t >= 0) {
      d = intern(&line[start], pos - start);
      if (d >= 0 && ndeps[t] < 8) {
        deps[t * 8 + ndeps[t]] = d;
        ndeps[t] = ndeps[t] + 1;
      }
    }
  }
  return t;
}

int emit_name(int t) {
  int i;
  for (i = 0; i < name_len[t]; i++) putchar(names[t * 16 + i]);
  return 0;
}

int act_compile(int t) {
  emit_name(t);
  putchar(':');
  putchar('c');
  putchar('\n');
  return 1;
}

int act_link(int t) {
  emit_name(t);
  putchar(':');
  putchar('l');
  putchar('\n');
  return 1;
}

int act_copy(int t) {
  emit_name(t);
  putchar(':');
  putchar('y');
  putchar('\n');
  return 1;
}

int name_hash(int t) {
  int h;
  int i;
  h = 0;
  for (i = 0; i < name_len[t]; i++) h = (h * 31 + names[t * 16 + i]) & 1023;
  return h;
}

int run_action(int t) {
  int (*a)(int);
  a = action_tab[name_hash(t) % 3];
  return a(t);
}

int init_actions() {
  action_tab[0] = act_compile;
  action_tab[1] = act_link;
  action_tab[2] = act_copy;
  return 0;
}

int build(int t) {
  int i;
  if (built[t]) return 0;
  built[t] = 1;
  for (i = 0; i < ndeps[t]; i++) build(deps[t * 8 + i]);
  run_action(t);
  order_count = order_count + 1;
  return 1;
}

int emit_str(int *s) {
  int i;
  i = 0;
  while (s[i] != 0) {
    putchar(s[i]);
    i = i + 1;
  }
  return i;
}

int usage() {
  emit_str("usage: make < makefile");
  putchar('\n');
  return 2;
}

int fatal_cycle(int t) {
  emit_str("make: dependency cycle through ");
  emit_name(t);
  putchar('\n');
  return 1;
}

int visit_state[64];

int dfs_check(int t) {
  int i;
  if (visit_state[t] == 1) return fatal_cycle(t);
  if (visit_state[t] == 2) return 0;
  visit_state[t] = 1;
  for (i = 0; i < ndeps[t]; i++) {
    if (dfs_check(deps[t * 8 + i]) != 0) return 1;
  }
  visit_state[t] = 2;
  return 0;
}

int check_cycles() {
  int t;
  for (t = 0; t < ntargets; t++) visit_state[t] = 0;
  for (t = 0; t < ntargets; t++) {
    if (dfs_check(t) != 0) return 1;
  }
  return 0;
}

int main() {
  ntargets = 0;
  order_count = 0;
  eof_seen = 0;
  opt_check = 0;
  init_actions();
  if (input_avail() == 0) return usage();
  read_line();
  while (eof_seen == 0) {
    if (linelen > 0) parse_line();
    read_line();
  }
  if (opt_check) {
    if (check_cycles() != 0) return 1;
  }
  if (ntargets > 0) build(0);
  print_int(order_count);
  putchar('\n');
  return 0;
}
)MC";

std::vector<RunInput> makeMakeInputs(unsigned Runs) {
  std::vector<RunInput> Inputs;
  for (unsigned I = 0; I != Runs; ++I) {
    Rng R(0x4A6B + I * 523);
    RunInput In;
    In.Input = generateMakefile(R, 24 + static_cast<unsigned>(
                                        R.nextBelow(32)));
    Inputs.push_back(std::move(In));
  }
  return Inputs;
}

} // namespace

BenchmarkSpec impact::makeEspressoBenchmark() {
  BenchmarkSpec B;
  B.Name = "espresso";
  B.InputDescription = "two-level truth tables (8-16 vars, 28-60 cubes)";
  B.Source = EspressoSource;
  B.DefaultRuns = 20;
  B.MakeInputs = makeEspressoInputs;
  return B;
}

BenchmarkSpec impact::makeGrepBenchmark() {
  BenchmarkSpec B;
  B.Name = "grep";
  B.InputDescription = "patterns with . * ^ $ over random text lines";
  B.Source = GrepSource;
  B.DefaultRuns = 20;
  B.MakeInputs = makeGrepInputs;
  return B;
}

BenchmarkSpec impact::makeLexBenchmark() {
  BenchmarkSpec B;
  B.Name = "lex";
  B.InputDescription = "lexing C-like sources (500-900 lines)";
  B.Source = LexSource;
  B.DefaultRuns = 4;
  B.MakeInputs = makeLexInputs;
  return B;
}

BenchmarkSpec impact::makeMakeBenchmark() {
  BenchmarkSpec B;
  B.Name = "make";
  B.InputDescription = "makefiles for 24-56 targets (acyclic deps)";
  B.Source = MakeSource;
  B.DefaultRuns = 20;
  B.MakeInputs = makeMakeInputs;
  return B;
}
