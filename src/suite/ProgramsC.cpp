//===- suite/ProgramsC.cpp - tar, tee, wc, yacc --------------------------------===//
//
// Part of the impact-inline project, distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "suite/Suite.h"
#include "suite/Workloads.h"

using namespace impact;

namespace {

//===----------------------------------------------------------------------===//
// tar — archive writer: per-file headers with checksums, block padding.
//===----------------------------------------------------------------------===//

const char TarSource[] = R"MC(
// tar: read "<name> <size>" records followed by contents; write an
// archive stream of headers, contents, padding, and checksums.
extern int getchar();
extern int putchar(int c);
extern int print_int(int v);
extern int input_avail();

int name[32];
int namelen;
int eof_seen;
int checksum;
int out_count;
int opt_extract;
int opt_verify;

int put_byte(int c) {
  putchar(c);
  out_count = out_count + 1;
  return c;
}

int read_name() {
  int c;
  namelen = 0;
  c = getchar();
  while (c == '\n' || c == ' ') c = getchar();
  if (c == -1) {
    eof_seen = 1;
    return -1;
  }
  while (c != -1 && c != ' ' && c != '\n') {
    if (namelen < 31) { name[namelen] = c; namelen = namelen + 1; }
    c = getchar();
  }
  return namelen;
}

int read_size() {
  int c;
  int v;
  v = 0;
  c = getchar();
  while (c == ' ') c = getchar();
  while (c >= '0' && c <= '9') {
    v = v * 10 + (c - '0');
    c = getchar();
  }
  return v;
}

int write_header(int size) {
  int i;
  put_byte('[');
  for (i = 0; i < 16; i++) {
    if (i < namelen) put_byte(name[i]);
    else put_byte('_');
  }
  print_int(size);
  put_byte(']');
  return 0;
}

int copy_contents(int size) {
  int i;
  int c;
  checksum = 0;
  for (i = 0; i < size; i++) {
    c = getchar();
    if (c == -1) return -1;
    put_byte(c);
    checksum = checksum + c;
  }
  getchar();
  return checksum;
}

int pad_block(int size) {
  int r;
  r = size % 32;
  if (r == 0) return 0;
  while (r < 32) {
    put_byte('.');
    r = r + 1;
  }
  return 0;
}

int write_trailer() {
  put_byte('(');
  print_int(checksum % 9973);
  put_byte(')');
  putchar('\n');
  return 0;
}

int emit_str(int *s) {
  int i;
  i = 0;
  while (s[i] != 0) {
    putchar(s[i]);
    i = i + 1;
  }
  return i;
}

int usage() {
  emit_str("usage: tar [-x extract, -t verify] < files");
  putchar('\n');
  return 2;
}

int skip_padding(int size) {
  int r;
  int c;
  r = size % 32;
  if (r == 0) return 0;
  while (r < 32) {
    c = getchar();
    if (c == -1) return -1;
    r = r + 1;
  }
  return 0;
}

int extract_one() {
  int c;
  int i;
  int size;
  c = getchar();
  if (c != '[') { eof_seen = 1; return -1; }
  for (i = 0; i < 16; i++) {
    c = getchar();
    if (c != '_') putchar(c);
  }
  size = 0;
  c = getchar();
  while (c >= '0' && c <= '9') {
    size = size * 10 + (c - '0');
    c = getchar();
  }
  putchar(' ');
  checksum = 0;
  for (i = 0; i < size; i++) {
    c = getchar();
    if (c == -1) return -1;
    putchar(c);
    checksum = checksum + c;
  }
  skip_padding(size);
  putchar('\n');
  return size;
}

int extract_archive() {
  int n;
  n = 0;
  while (eof_seen == 0) {
    if (extract_one() >= 0) n = n + 1;
  }
  print_int(n);
  putchar('\n');
  return 0;
}

int main() {
  int size;
  int nfiles;
  nfiles = 0;
  out_count = 0;
  eof_seen = 0;
  opt_extract = 0;
  opt_verify = 0;
  if (input_avail() == 0) return usage();
  if (opt_extract) return extract_archive();
  read_name();
  while (eof_seen == 0) {
    size = read_size();
    write_header(size);
    copy_contents(size);
    pad_block(size);
    write_trailer();
    nfiles = nfiles + 1;
    read_name();
  }
  print_int(nfiles);
  putchar(' ');
  print_int(out_count);
  putchar('\n');
  return 0;
}
)MC";

std::vector<RunInput> makeTarInputs(unsigned Runs) {
  std::vector<RunInput> Inputs;
  for (unsigned I = 0; I != Runs; ++I) {
    Rng R(0x7A7A + I * 431);
    RunInput In;
    In.Input = generateArchiveInput(R, 12 + static_cast<unsigned>(
                                           R.nextBelow(20)));
    Inputs.push_back(std::move(In));
  }
  return Inputs;
}

//===----------------------------------------------------------------------===//
// tee — copy input to "two outputs"; nearly every call is external, so the
// paper reports 0% code increase / 0% call decrease here.
//===----------------------------------------------------------------------===//

const char TeeSource[] = R"MC(
// tee: duplicate every input character to two logical outputs. The hot
// loop is external-call bound; the option/flush machinery below is the
// cold bulk a real tee carries.
extern int getchar();
extern int putchar(int c);
extern int print_int(int v);
extern int input_avail();

int opt_append;
int opt_ignore_interrupts;
int pending[256];
int npending;

int emit_str(int *s) {
  int i;
  i = 0;
  while (s[i] != 0) {
    putchar(s[i]);
    i = i + 1;
  }
  return i;
}

int usage() {
  emit_str("usage: tee [-a append, -i ignore interrupts]");
  putchar('\n');
  return 2;
}

int set_option(int c) {
  if (c == 'a') { opt_append = 1; return 1; }
  if (c == 'i') { opt_ignore_interrupts = 1; return 1; }
  emit_str("tee: bad option");
  putchar('\n');
  return 0;
}

int queue_byte(int c) {
  if (npending >= 256) return -1;
  pending[npending] = c;
  npending = npending + 1;
  return npending;
}

int flush_pending() {
  int i;
  for (i = 0; i < npending; i++) {
    putchar(pending[i]);
    putchar(pending[i]);
  }
  i = npending;
  npending = 0;
  return i;
}

int main() {
  int c;
  int count;
  count = 0;
  npending = 0;
  opt_append = 0;
  opt_ignore_interrupts = 0;
  if (input_avail() == 0) return usage();
  c = getchar();
  while (c != -1) {
    putchar(c);
    putchar(c);
    count = count + 1;
    c = getchar();
  }
  if (npending > 0) flush_pending();
  print_int(count);
  putchar('\n');
  return 0;
}
)MC";

std::vector<RunInput> makeTeeInputs(unsigned Runs) {
  std::vector<RunInput> Inputs;
  for (unsigned I = 0; I != Runs; ++I) {
    Rng R(0x7EE0 + I * 389);
    RunInput In;
    In.Input = generateWordText(R, 300 + static_cast<unsigned>(
                                         R.nextBelow(300)));
    Inputs.push_back(std::move(In));
  }
  return Inputs;
}

//===----------------------------------------------------------------------===//
// wc — line/word/char counter with the hot loop in main; the few user
// calls run below the inliner threshold, matching the paper's 0%/0% row.
//===----------------------------------------------------------------------===//

const char WcSource[] = R"MC(
// wc: count lines, words, characters, and the longest line.
extern int getchar();
extern int putchar(int c);
extern int print_int(int v);
extern int input_avail();

int longest;
int opt_lines_only;
int opt_words_only;

int report(int v, int tail) {
  print_int(v);
  putchar(tail);
  return v;
}

int emit_str(int *s) {
  int i;
  i = 0;
  while (s[i] != 0) {
    putchar(s[i]);
    i = i + 1;
  }
  return i;
}

int usage() {
  emit_str("usage: wc [-l lines, -w words] < file");
  putchar('\n');
  return 2;
}

int report_selected(int lines, int words, int chars) {
  if (opt_lines_only) {
    report(lines, '\n');
    return lines;
  }
  if (opt_words_only) {
    report(words, '\n');
    return words;
  }
  report(lines, ' ');
  report(words, ' ');
  report(chars, ' ');
  report(longest, '\n');
  return chars;
}

int main() {
  int c;
  int lines;
  int words;
  int chars;
  int inword;
  int linelen;
  lines = 0;
  words = 0;
  chars = 0;
  inword = 0;
  linelen = 0;
  longest = 0;
  opt_lines_only = 0;
  opt_words_only = 0;
  if (input_avail() == 0) return usage();
  c = getchar();
  while (c != -1) {
    chars = chars + 1;
    if (c == '\n') {
      lines = lines + 1;
      if (linelen > longest) longest = linelen;
      linelen = 0;
    } else {
      linelen = linelen + 1;
    }
    if (c == ' ' || c == '\n' || c == '\t') {
      inword = 0;
    } else {
      if (inword == 0) {
        words = words + 1;
        inword = 1;
      }
    }
    c = getchar();
  }
  report_selected(lines, words, chars);
  return 0;
}
)MC";

std::vector<RunInput> makeWcInputs(unsigned Runs) {
  std::vector<RunInput> Inputs;
  for (unsigned I = 0; I != Runs; ++I) {
    Rng R(0x3C3C + I * 617);
    RunInput In;
    In.Input = generateCLikeSource(R, 120 + static_cast<unsigned>(
                                          R.nextBelow(200)));
    Inputs.push_back(std::move(In));
  }
  return Inputs;
}

//===----------------------------------------------------------------------===//
// yacc — toy parser generator: grammar tables, nullable/FIRST fixpoints,
// then backtracking recursive-descent recognition of sample strings.
//===----------------------------------------------------------------------===//

const char YaccSource[] = R"MC(
// yacc: read productions "A=aB;", compute nullable and FIRST sets, then
// parse sample strings with a backtracking recursive descent.
extern int getchar();
extern int putchar(int c);
extern int print_int(int v);
extern int input_avail();

int opt_report_conflicts;
int prod_lhs[64];
int prod_rhs[1024];   // 64 x 16
int prod_len[64];
int nprods;
int nullable[26];
int first_set[26];
int text[128];
int textlen;

int is_upper(int c) { return c >= 'A' && c <= 'Z'; }

int is_lower(int c) { return c >= 'a' && c <= 'z'; }

int rhs_at(int p, int i) { return prod_rhs[p * 16 + i]; }

int add_production(int lhs, int *rhs, int len) {
  int i;
  if (nprods >= 64) return -1;
  if (len > 15) len = 15;
  prod_lhs[nprods] = lhs;
  for (i = 0; i < len; i++) prod_rhs[nprods * 16 + i] = rhs[i];
  prod_len[nprods] = len;
  nprods = nprods + 1;
  return nprods - 1;
}

int read_grammar() {
  int c;
  int lhs;
  int len;
  int rhs[16];
  c = getchar();
  while (c != -1 && c != '@') {
    while (c == '\n' || c == ' ') c = getchar();
    if (c == '@' || c == -1) break;
    lhs = c - 'A';
    c = getchar();
    c = getchar();
    len = 0;
    while (c != ';' && c != -1) {
      if (len < 15) { rhs[len] = c; len = len + 1; }
      c = getchar();
    }
    add_production(lhs, &rhs[0], len);
    c = getchar();
  }
  while (c != -1 && c != '\n') c = getchar();
  return nprods;
}

int seq_nullable(int p, int from) {
  int i;
  int s;
  for (i = from; i < prod_len[p]; i++) {
    s = rhs_at(p, i);
    if (is_lower(s)) return 0;
    if (nullable[s - 'A'] == 0) return 0;
  }
  return 1;
}

int compute_nullable() {
  int changed;
  int p;
  int total;
  total = 0;
  changed = 1;
  while (changed) {
    changed = 0;
    for (p = 0; p < nprods; p++) {
      if (nullable[prod_lhs[p]] == 0 && seq_nullable(p, 0)) {
        nullable[prod_lhs[p]] = 1;
        changed = 1;
        total = total + 1;
      }
    }
  }
  return total;
}

int first_of_seq(int p) {
  int i;
  int mask;
  int s;
  mask = 0;
  for (i = 0; i < prod_len[p]; i++) {
    s = rhs_at(p, i);
    if (is_lower(s)) {
      return mask | (1 << (s - 'a'));
    }
    mask = mask | first_set[s - 'A'];
    if (nullable[s - 'A'] == 0) return mask;
  }
  return mask;
}

int compute_first() {
  int changed;
  int p;
  int nm;
  changed = 1;
  while (changed) {
    changed = 0;
    for (p = 0; p < nprods; p++) {
      nm = first_set[prod_lhs[p]] | first_of_seq(p);
      if (nm != first_set[prod_lhs[p]]) {
        first_set[prod_lhs[p]] = nm;
        changed = 1;
      }
    }
  }
  return 0;
}

int parse_symbol(int s, int pos) {
  int p;
  int r;
  if (is_lower(s)) {
    if (pos < textlen && text[pos] == s) return pos + 1;
    return -1;
  }
  for (p = 0; p < nprods; p++) {
    if (prod_lhs[p] == s - 'A') {
      r = parse_seq(p, 0, pos);
      if (r >= 0) return r;
    }
  }
  return -1;
}

int parse_seq(int p, int i, int pos) {
  int r;
  if (i >= prod_len[p]) return pos;
  r = parse_symbol(rhs_at(p, i), pos);
  if (r < 0) return -1;
  return parse_seq(p, i + 1, r);
}

int emit_sets() {
  int i;
  for (i = 0; i < 26; i++) {
    if (first_set[i] != 0) {
      putchar('A' + i);
      putchar('=');
      print_int(first_set[i]);
      putchar(' ');
    }
  }
  putchar('\n');
  return 0;
}

int emit_str(int *s) {
  int i;
  i = 0;
  while (s[i] != 0) {
    putchar(s[i]);
    i = i + 1;
  }
  return i;
}

int usage() {
  emit_str("usage: yacc < grammar @ samples");
  putchar('\n');
  return 2;
}

int emit_production(int p) {
  int i;
  putchar('A' + prod_lhs[p]);
  putchar('=');
  for (i = 0; i < prod_len[p]; i++) putchar(rhs_at(p, i));
  putchar('\n');
  return p;
}

int report_conflict(int p, int q) {
  emit_str("yacc: first/first conflict:");
  putchar('\n');
  emit_production(p);
  emit_production(q);
  return 1;
}

int find_conflicts() {
  int p;
  int q;
  int n;
  n = 0;
  for (p = 0; p < nprods; p++) {
    for (q = p + 1; q < nprods; q++) {
      if (prod_lhs[p] == prod_lhs[q] &&
          (first_of_seq(p) & first_of_seq(q)) != 0) {
        report_conflict(p, q);
        n = n + 1;
      }
    }
  }
  return n;
}

int main() {
  int i;
  int r;
  int c;
  nprods = 0;
  opt_report_conflicts = 0;
  for (i = 0; i < 26; i++) {
    nullable[i] = 0;
    first_set[i] = 0;
  }
  if (input_avail() == 0) return usage();
  read_grammar();
  compute_nullable();
  compute_first();
  emit_sets();
  if (opt_report_conflicts) find_conflicts();
  c = getchar();
  while (c != -1) {
    textlen = 0;
    while (c != -1 && c != '\n') {
      if (textlen < 127) { text[textlen] = c; textlen = textlen + 1; }
      c = getchar();
    }
    if (textlen > 0) {
      r = parse_symbol('S', 0);
      if (r == textlen) putchar('Y');
      else putchar('N');
    }
    if (c == '\n') c = getchar();
  }
  putchar('\n');
  return 0;
}
)MC";

std::vector<RunInput> makeYaccInputs(unsigned Runs) {
  std::vector<RunInput> Inputs;
  for (unsigned I = 0; I != Runs; ++I) {
    Rng R(0x9ACC + I * 271);
    RunInput In;
    In.Input = generateGrammar(R, 2 + static_cast<unsigned>(R.nextBelow(4)));
    Inputs.push_back(std::move(In));
  }
  return Inputs;
}

} // namespace

BenchmarkSpec impact::makeTarBenchmark() {
  BenchmarkSpec B;
  B.Name = "tar";
  B.InputDescription = "archive of 12-32 synthetic files";
  B.Source = TarSource;
  B.DefaultRuns = 14;
  B.MakeInputs = makeTarInputs;
  return B;
}

BenchmarkSpec impact::makeTeeBenchmark() {
  BenchmarkSpec B;
  B.Name = "tee";
  B.InputDescription = "word text copied to two outputs";
  B.Source = TeeSource;
  B.DefaultRuns = 20;
  B.MakeInputs = makeTeeInputs;
  return B;
}

BenchmarkSpec impact::makeWcBenchmark() {
  BenchmarkSpec B;
  B.Name = "wc";
  B.InputDescription = "C-like sources (same family as cccp)";
  B.Source = WcSource;
  B.DefaultRuns = 20;
  B.MakeInputs = makeWcInputs;
  return B;
}

BenchmarkSpec impact::makeYaccBenchmark() {
  BenchmarkSpec B;
  B.Name = "yacc";
  B.InputDescription = "toy grammars plus sample strings to recognize";
  B.Source = YaccSource;
  B.DefaultRuns = 8;
  B.MakeInputs = makeYaccInputs;
  return B;
}
