//===- analysis/Analyzer.cpp ---------------------------------------------------===//
//
// Part of the impact-inline project, distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/Analyzer.h"

#include "analysis/RangeAnalysis.h"
#include "core/WeightRedistribution.h"
#include "support/StringUtils.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <tuple>

using namespace impact;

const char *impact::getSeverityName(Severity S) {
  return S == Severity::Warn ? "warn" : "error";
}

std::string Finding::render() const {
  std::string Out = getSeverityName(Sev);
  Out += "[";
  Out += Rule;
  Out += "] ";
  Out += Function.empty() ? "<module>" : Function;
  if (Block >= 0) {
    Out += " bb" + std::to_string(Block);
    if (Instr >= 0)
      Out += "#" + std::to_string(Instr);
  }
  Out += ": ";
  Out += Message;
  return Out;
}

namespace {

/// The one rule table: spec names, option flags, severities, and the
/// one-line descriptions the help listing prints. parseAnalysisRules and
/// renderAnalysisRuleTable must never disagree, so both read this.
struct RuleDesc {
  const char *Name;
  bool AnalysisOptions::*Flag;
  Severity Sev;
  const char *Desc;
};

constexpr RuleDesc kRuleTable[] = {
    {kRuleUninitRead, &AnalysisOptions::UninitRead, Severity::Warn,
     "register read that no definition reaches (the engines see 0)"},
    {kRuleUnreachableBlock, &AnalysisOptions::UnreachableBlock, Severity::Warn,
     "basic block unreachable from the function entry"},
    {kRuleDeadStore, &AnalysisOptions::DeadStore, Severity::Warn,
     "pure value written to a register that is never read"},
    {kRuleAuditSafeExpansion, &AnalysisOptions::AuditSafeExpansion,
     Severity::Error,
     "an expanded site was not classified safe / planned for expansion"},
    {kRuleAuditCallGraph, &AnalysisOptions::AuditCallGraph, Severity::Error,
     "post-expansion call-graph inconsistency (dangling site ids, arity)"},
    {kRuleAuditWeightConservation, &AnalysisOptions::AuditWeightConservation,
     Severity::Error,
     "redistributed profile weights do not conserve call volume"},
    {kRuleAuditLinearization, &AnalysisOptions::AuditLinearization,
     Severity::Error, "expansion sequence violated the linear order"},
    {kRuleGuaranteedTrap, &AnalysisOptions::GuaranteedTrap, Severity::Error,
     "instruction in a range-reachable block traps on every execution"},
    {kRuleRangeContradiction, &AnalysisOptions::RangeContradiction,
     Severity::Warn,
     "CFG-reachable block that range propagation proves never executes"},
};

/// Levenshtein distance, two-row formulation; powers the did-you-mean
/// suggestion for misspelled rule names.
size_t editDistance(std::string_view A, std::string_view B) {
  std::vector<size_t> Prev(B.size() + 1), Cur(B.size() + 1);
  for (size_t J = 0; J <= B.size(); ++J)
    Prev[J] = J;
  for (size_t I = 0; I != A.size(); ++I) {
    Cur[0] = I + 1;
    for (size_t J = 0; J != B.size(); ++J)
      Cur[J + 1] = std::min({Prev[J + 1] + 1, Cur[J] + 1,
                             Prev[J] + (A[I] == B[J] ? 0 : 1)});
    std::swap(Prev, Cur);
  }
  return Prev[B.size()];
}

} // namespace

std::string impact::renderAnalysisRuleTable() {
  std::string Out =
      "analysis rules (--analyze=<spec> / IMPACT_ANALYZE=<spec>; a spec is "
      "a comma list of\nrule names, \"all\", or \"-name\" to disable; "
      "\"help\" prints this table):\n";
  size_t Width = 0;
  for (const RuleDesc &R : kRuleTable)
    Width = std::max(Width, std::string_view(R.Name).size());
  for (const RuleDesc &R : kRuleTable) {
    std::string_view Name = R.Name;
    Out += "  ";
    Out += Name;
    Out.append(Width - Name.size() + 2, ' ');
    std::string_view Sev = getSeverityName(R.Sev);
    Out += Sev;
    Out.append(6 - Sev.size() + 2, ' ');
    Out += R.Desc;
    Out += '\n';
  }
  return Out;
}

bool impact::parseAnalysisRules(std::string_view Spec, AnalysisOptions &Out,
                                std::string *Error) {
  auto SetAll = [&](bool Value) {
    for (const RuleDesc &R : kRuleTable)
      Out.*(R.Flag) = Value;
  };

  std::string_view Trimmed = trimString(Spec);
  if (Trimmed.empty() || Trimmed == "all" || Trimmed == "1" ||
      Trimmed == "on") {
    SetAll(true);
    return true;
  }

  // A spec that names rules positively starts from nothing enabled;
  // "all,-x" style specs start from everything.
  bool SawPositive = false;
  for (std::string_view Token : splitString(Trimmed, ',')) {
    std::string_view T = trimString(Token);
    if (!T.empty() && T != "all" && T[0] != '-')
      SawPositive = true;
  }
  SetAll(!SawPositive);

  for (std::string_view Token : splitString(Trimmed, ',')) {
    std::string_view T = trimString(Token);
    if (T.empty())
      continue;
    if (T == "all") {
      SetAll(true);
      continue;
    }
    bool Enable = true;
    if (T[0] == '-') {
      Enable = false;
      T = T.substr(1);
    }
    bool Known = false;
    for (const RuleDesc &R : kRuleTable)
      if (T == R.Name) {
        Out.*(R.Flag) = Enable;
        Known = true;
        break;
      }
    if (!Known) {
      if (Error) {
        *Error = "unknown analysis rule '" + std::string(T) + "'";
        const char *Best = nullptr;
        size_t BestDist = 0;
        for (const RuleDesc &R : kRuleTable) {
          size_t D = editDistance(T, R.Name);
          if (!Best || D < BestDist) {
            Best = R.Name;
            BestDist = D;
          }
        }
        if (Best && BestDist <= std::max<size_t>(2, T.size() / 3))
          *Error += "; did you mean '" + std::string(Best) + "'?";
        *Error += " valid: all";
        for (const RuleDesc &R : kRuleTable)
          *Error += std::string(", ") + R.Name;
        *Error += ", help";
      }
      return false;
    }
  }
  return true;
}

size_t AnalysisReport::countSeverity(Severity S) const {
  size_t N = 0;
  for (const Finding &F : Findings)
    N += F.Sev == S;
  return N;
}

std::vector<std::pair<std::string, size_t>> AnalysisReport::countByRule()
    const {
  std::map<std::string, size_t> Counts;
  for (const Finding &F : Findings)
    ++Counts[F.Rule];
  return {Counts.begin(), Counts.end()};
}

void AnalysisReport::sortFindings() {
  std::stable_sort(Findings.begin(), Findings.end(),
                   [](const Finding &A, const Finding &B) {
                     return std::tie(A.Function, A.Block, A.Instr, A.Rule,
                                     A.Message) <
                            std::tie(B.Function, B.Block, B.Instr, B.Rule,
                                     B.Message);
                   });
}

std::string AnalysisReport::renderText() const {
  std::string Out;
  for (const Finding &F : Findings) {
    Out += F.render();
    Out += '\n';
  }
  return Out;
}

std::string AnalysisReport::renderJsonl(std::string_view Program) const {
  std::string Out;
  for (const Finding &F : Findings) {
    Out += "{";
    if (!Program.empty())
      Out += "\"program\":\"" + jsonEscape(Program) + "\",";
    Out += "\"severity\":\"" + std::string(getSeverityName(F.Sev)) + "\"";
    Out += ",\"rule\":\"" + jsonEscape(F.Rule) + "\"";
    Out += ",\"function\":\"" + jsonEscape(F.Function) + "\"";
    Out += ",\"block\":" + std::to_string(F.Block);
    Out += ",\"instr\":" + std::to_string(F.Instr);
    Out += ",\"message\":\"" + jsonEscape(F.Message) + "\"}\n";
  }
  return Out;
}

namespace {

/// "register r3" or "register r3 ('sum')" when the function names it.
std::string describeReg(const Function &F, Reg R) {
  std::string Out = "register r" + std::to_string(R);
  size_t Index = static_cast<size_t>(R);
  if (Index < F.RegNames.size() && !F.RegNames[Index].empty())
    Out += " ('" + F.RegNames[Index] + "')";
  return Out;
}

void addFinding(AnalysisReport &Report, std::string Function, BlockId Block,
                int Instr, Severity Sev, const char *Rule,
                std::string Message) {
  Finding F;
  F.Function = std::move(Function);
  F.Block = Block;
  F.Instr = Instr;
  F.Sev = Sev;
  F.Rule = Rule;
  F.Message = std::move(Message);
  Report.Findings.push_back(std::move(F));
}

/// True for instructions whose only effect is the register they write;
/// a dead destination makes the whole instruction dead. Calls are
/// excluded (the call happens regardless of whether its result is read),
/// as is Load, whose address check is an observable trap.
bool isPureValueProducer(Opcode Op) {
  switch (Op) {
  case Opcode::Load:
  case Opcode::Call:
  case Opcode::CallPtr:
  case Opcode::Store:
  case Opcode::Jump:
  case Opcode::CondBr:
  case Opcode::Ret:
    return false;
  case Opcode::Div:
  case Opcode::Rem:
    return false; // may trap on zero divisor
  default:
    return true;
  }
}

void checkUninitReads(const Function &F, const Cfg &G,
                      const ReachingDefsAnalysis &Reach,
                      AnalysisReport &Report) {
  std::vector<Reg> Uses;
  std::vector<bool> Defined(F.NumRegs);
  for (size_t B = 0; B != F.Blocks.size(); ++B) {
    // Facts in unreachable blocks have no boundary feeding them; the
    // unreachable-block rule reports those blocks instead.
    if (!G.isReachable(static_cast<BlockId>(B)))
      continue;
    for (uint32_t R = 0; R != F.NumRegs; ++R)
      Defined[R] = Reach.anyDefReaches(Reach.ReachIn[B], static_cast<Reg>(R));
    const BasicBlock &Block = F.Blocks[B];
    for (size_t Idx = 0; Idx != Block.Instrs.size(); ++Idx) {
      const Instr &I = Block.Instrs[Idx];
      Uses.clear();
      collectUses(I, Uses);
      for (Reg U : Uses) {
        if (static_cast<uint32_t>(U) >= F.NumRegs)
          continue; // out-of-range registers are the verifier's finding
        if (!Defined[static_cast<size_t>(U)])
          addFinding(Report, F.Name, static_cast<BlockId>(B),
                     static_cast<int>(Idx), Severity::Warn, kRuleUninitRead,
                     describeReg(F, U) +
                         " is read but no definition reaches this use "
                         "(the interpreter will see 0)");
      }
      Reg D = instrDef(I);
      if (D != kNoReg && static_cast<uint32_t>(D) < F.NumRegs)
        Defined[static_cast<size_t>(D)] = true;
    }
  }
}

void checkUnreachableBlocks(const Function &F, const Cfg &G,
                            AnalysisReport &Report) {
  for (size_t B = 1; B < F.Blocks.size(); ++B)
    if (!G.isReachable(static_cast<BlockId>(B)))
      addFinding(Report, F.Name, static_cast<BlockId>(B), -1, Severity::Warn,
                 kRuleUnreachableBlock,
                 "block is unreachable from the entry (" +
                     std::to_string(F.Blocks[B].size()) + " instruction(s))");
}

void checkDeadStores(const Function &F, const Cfg &G,
                     const LivenessAnalysis &Live, AnalysisReport &Report) {
  std::vector<Reg> Uses;
  for (size_t B = 0; B != F.Blocks.size(); ++B) {
    if (!G.isReachable(static_cast<BlockId>(B)))
      continue;
    BitVector LiveNow = Live.LiveOut[B];
    const BasicBlock &Block = F.Blocks[B];
    for (size_t Idx = Block.Instrs.size(); Idx-- != 0;) {
      const Instr &I = Block.Instrs[Idx];
      Reg D = instrDef(I);
      if (D != kNoReg && static_cast<uint32_t>(D) < F.NumRegs) {
        if (!LiveNow.test(static_cast<size_t>(D)) &&
            isPureValueProducer(I.Op))
          addFinding(Report, F.Name, static_cast<BlockId>(B),
                     static_cast<int>(Idx), Severity::Warn, kRuleDeadStore,
                     "value written to " + describeReg(F, D) +
                         " is never read (dead store)");
        LiveNow.reset(static_cast<size_t>(D));
      }
      Uses.clear();
      collectUses(I, Uses);
      for (Reg U : Uses)
        if (static_cast<uint32_t>(U) < F.NumRegs)
          LiveNow.set(static_cast<size_t>(U));
    }
  }
}

/// An instruction whose operand intervals prove it traps on every
/// execution of a range-reachable block: a divisor exactly zero, the one
/// INT64_MIN / -1 overflow, or an address provably outside every mapped
/// segment. The engines make all three observable as traps, so an error
/// here means the program cannot execute this instruction and survive.
void checkGuaranteedTraps(const Function &F, const RangeAnalysis &RA,
                          const ModuleRangeFacts &Facts,
                          AnalysisReport &Report) {
  for (size_t B = 0; B != F.Blocks.size(); ++B) {
    BlockId Id = static_cast<BlockId>(B);
    if (!RA.isReachable(Id))
      continue;
    RangeAnalysis::Env E = RA.blockIn(Id);
    const BasicBlock &Block = F.Blocks[B];
    for (size_t Idx = 0; Idx != Block.Instrs.size(); ++Idx) {
      const Instr &I = Block.Instrs[Idx];
      switch (I.Op) {
      case Opcode::Div:
      case Opcode::Rem: {
        const char *What = I.Op == Opcode::Div ? "division" : "remainder";
        Interval Dividend = RangeAnalysis::get(E, I.Src1);
        Interval Divisor = RangeAnalysis::get(E, I.Src2);
        if (Divisor == Interval::constant(0))
          addFinding(Report, F.Name, Id, static_cast<int>(Idx),
                     Severity::Error, kRuleGuaranteedTrap,
                     std::string(What) + " by " + describeReg(F, I.Src2) +
                         " which is provably zero; this instruction traps "
                         "on every execution");
        else if (Dividend ==
                     Interval::constant(std::numeric_limits<int64_t>::min()) &&
                 Divisor == Interval::constant(-1))
          addFinding(Report, F.Name, Id, static_cast<int>(Idx),
                     Severity::Error, kRuleGuaranteedTrap,
                     std::string(What) +
                         " provably overflows (INT64_MIN / -1); this "
                         "instruction traps on every execution");
        break;
      }
      case Opcode::Load:
      case Opcode::Store: {
        Interval Addr = RangeAnalysis::get(E, I.Src1);
        bool BelowGlobals = !Addr.isBottom() && Addr.Hi < Facts.GlobalLo;
        bool InHole = !Addr.isBottom() && Addr.Lo >= Facts.GlobalHi &&
                      Addr.Hi < kStackBase;
        if (BelowGlobals || InHole)
          addFinding(Report, F.Name, Id, static_cast<int>(Idx),
                     Severity::Error, kRuleGuaranteedTrap,
                     std::string(I.Op == Opcode::Load ? "load" : "store") +
                         " address " + renderInterval(Addr) +
                         " is provably outside every mapped segment; this "
                         "instruction traps on every execution");
        break;
      }
      default:
        break;
      }
      RA.step(I, E);
    }
  }
}

/// Blocks the CFG can reach but range propagation proves never execute.
/// One finding per contradicted block — except a never-entered function,
/// which gets a single finding at its entry instead of one per block.
void checkRangeContradictions(const Function &F, const Cfg &G,
                              const RangeAnalysis &RA,
                              AnalysisReport &Report) {
  if (!F.Blocks.empty() && !RA.isReachable(0)) {
    addFinding(Report, F.Name, 0, -1, Severity::Warn, kRuleRangeContradiction,
               "function is never entered (its interprocedural formal "
               "summary is empty); the whole body is dynamically dead");
    return;
  }
  for (size_t B = 1; B < F.Blocks.size(); ++B) {
    BlockId Id = static_cast<BlockId>(B);
    if (G.isReachable(Id) && !RA.isReachable(Id))
      addFinding(Report, F.Name, Id, -1, Severity::Warn,
                 kRuleRangeContradiction,
                 "block is CFG-reachable but range propagation proves it "
                 "never executes (contradictory branch conditions)");
  }
}

} // namespace

AnalysisReport impact::analyzeModule(const Module &M,
                                     const AnalysisOptions &Options) {
  AnalysisReport Report;
  const bool NeedRanges = Options.GuaranteedTrap || Options.RangeContradiction;
  ModuleRangeFacts Facts;
  RangeContext RangeCtx;
  if (NeedRanges) {
    Facts = computeModuleRangeFacts(M);
    RangeCtx.M = &M;
    RangeCtx.Facts = &Facts;
  }
  for (const Function &F : M.Funcs) {
    if (F.IsExternal || F.Eliminated || F.Blocks.empty())
      continue;
    Cfg G(F);
    if (Options.UnreachableBlock)
      checkUnreachableBlocks(F, G, Report);
    if (Options.UninitRead) {
      ReachingDefsAnalysis Reach = computeReachingDefs(F, G);
      checkUninitReads(F, G, Reach, Report);
    }
    if (Options.DeadStore) {
      LivenessAnalysis Live = computeLiveness(F, G);
      checkDeadStores(F, G, Live, Report);
    }
    if (NeedRanges) {
      RangeAnalysis RA(F, G, RangeCtx);
      if (Options.GuaranteedTrap)
        checkGuaranteedTraps(F, RA, Facts, Report);
      if (Options.RangeContradiction)
        checkRangeContradictions(F, G, RA, Report);
    }
  }
  Report.sortFindings();
  return Report;
}

namespace {

std::string auditFuncName(const Module &M, FuncId Id) {
  if (Id < 0 || static_cast<size_t>(Id) >= M.Funcs.size())
    return "<func#" + std::to_string(Id) + ">";
  return M.Funcs[static_cast<size_t>(Id)].Name;
}

/// (a) Every physically expanded site must have been classified safe and
/// planned ToBeExpanded (marked Expanded by the expander).
void auditSafeExpansion(const Module &M, const InlineResult &Inline,
                        AnalysisReport &Report) {
  for (const ExpansionRecord &Rec : Inline.Expansions) {
    std::string Caller = auditFuncName(M, Rec.Caller);
    const SiteInfo *Info = Inline.Classes.findSite(Rec.SiteId);
    if (!Info) {
      addFinding(Report, Caller, -1, -1, Severity::Error,
                 kRuleAuditSafeExpansion,
                 "expanded site " + std::to_string(Rec.SiteId) +
                     " does not appear in the call-site classification");
    } else if (Info->Class != SiteClass::Safe) {
      addFinding(Report, Caller, -1, -1, Severity::Error,
                 kRuleAuditSafeExpansion,
                 "expanded site " + std::to_string(Rec.SiteId) + " ('" +
                     Caller + "' -> '" + auditFuncName(M, Rec.Callee) +
                     "') was classified " +
                     getSiteClassName(Info->Class) + ", not safe");
    }
    const PlannedSite *P = Inline.Plan.findSite(Rec.SiteId);
    if (!P) {
      addFinding(Report, Caller, -1, -1, Severity::Error,
                 kRuleAuditSafeExpansion,
                 "expanded site " + std::to_string(Rec.SiteId) +
                     " does not appear in the inline plan");
    } else if (P->Status != ArcStatus::Expanded) {
      addFinding(Report, Caller, -1, -1, Severity::Error,
                 kRuleAuditSafeExpansion,
                 "expanded site " + std::to_string(Rec.SiteId) +
                     " has plan status " + getArcStatusName(P->Status) +
                     ", expected expanded");
    }
  }
}

/// (b) Post-expansion call-graph arc consistency: remaining sites carry
/// valid, unique, in-range ids; direct arcs point at live functions with
/// matching arity; expanded arcs are gone; every planned expansion has a
/// record.
void auditCallGraph(const Module &M, const InlineResult &Inline,
                    AnalysisReport &Report) {
  std::vector<bool> Seen(M.NextSiteId, false);
  for (const Function &F : M.Funcs) {
    for (size_t B = 0; B != F.Blocks.size(); ++B) {
      const BasicBlock &Block = F.Blocks[B];
      for (size_t Idx = 0; Idx != Block.Instrs.size(); ++Idx) {
        const Instr &I = Block.Instrs[Idx];
        if (!I.isCall())
          continue;
        BlockId Bl = static_cast<BlockId>(B);
        int In = static_cast<int>(Idx);
        if (I.SiteId == 0 || I.SiteId >= M.NextSiteId) {
          addFinding(Report, F.Name, Bl, In, Severity::Error,
                     kRuleAuditCallGraph,
                     "call carries dangling site id " +
                         std::to_string(I.SiteId) + " (module NextSiteId " +
                         std::to_string(M.NextSiteId) + ")");
          continue;
        }
        if (Seen[I.SiteId])
          addFinding(Report, F.Name, Bl, In, Severity::Error,
                     kRuleAuditCallGraph,
                     "site id " + std::to_string(I.SiteId) +
                         " appears on more than one call");
        Seen[I.SiteId] = true;
        if (const PlannedSite *P = Inline.Plan.findSite(I.SiteId);
            P && P->Status == ArcStatus::Expanded)
          addFinding(Report, F.Name, Bl, In, Severity::Error,
                     kRuleAuditCallGraph,
                     "site " + std::to_string(I.SiteId) +
                         " is marked expanded but the call is still present");
        if (I.Op != Opcode::Call)
          continue;
        if (I.Callee < 0 || static_cast<size_t>(I.Callee) >= M.Funcs.size()) {
          addFinding(Report, F.Name, Bl, In, Severity::Error,
                     kRuleAuditCallGraph,
                     "direct call at site " + std::to_string(I.SiteId) +
                         " names nonexistent function #" +
                         std::to_string(I.Callee));
          continue;
        }
        const Function &Callee = M.Funcs[static_cast<size_t>(I.Callee)];
        if (Callee.Eliminated)
          addFinding(Report, F.Name, Bl, In, Severity::Error,
                     kRuleAuditCallGraph,
                     "direct call at site " + std::to_string(I.SiteId) +
                         " targets eliminated function '" + Callee.Name +
                         "'");
        if (I.Args.size() != Callee.NumParams)
          addFinding(Report, F.Name, Bl, In, Severity::Error,
                     kRuleAuditCallGraph,
                     "arity mismatch at site " + std::to_string(I.SiteId) +
                         ": passes " + std::to_string(I.Args.size()) +
                         " argument(s) to '" + Callee.Name +
                         "' which takes " +
                         std::to_string(Callee.NumParams));
      }
    }
  }
  // Every planned expansion must have actually happened.
  std::vector<bool> Recorded(M.NextSiteId, false);
  for (const ExpansionRecord &Rec : Inline.Expansions)
    if (Rec.SiteId < Recorded.size())
      Recorded[Rec.SiteId] = true;
  for (const PlannedSite &P : Inline.Plan.Sites)
    if (P.Status == ArcStatus::Expanded &&
        (P.SiteId >= Recorded.size() || !Recorded[P.SiteId]))
      addFinding(Report, auditFuncName(M, P.Caller), -1, -1, Severity::Error,
                 kRuleAuditCallGraph,
                 "site " + std::to_string(P.SiteId) +
                     " is marked expanded but has no expansion record");
}

/// (c) Weight conservation. Entries to a function come only from its
/// incoming arcs (main's initial activation, address-taken targets, and
/// externals aside), and redistribution moves arc weight around without
/// creating or destroying call volume: for every auditable function H,
///
///   NodeWeight(H)  ==  sum of ArcWeight over all sites whose callee is H
///
/// must survive redistribution — the expanded arc's weight leaves both
/// sides, and the re-entry credit of a self-recursive clone enters both
/// sides. The site->callee map is taken from the classification and
/// extended through the records' clone pairs, so the audit is immune to
/// post-inline cleanup deleting specialized (constant-folded) clones.
void auditWeightConservation(const Module &M, const InlineResult &Inline,
                             const ProfileData &PreProfile, double Tolerance,
                             AnalysisReport &Report) {
  RedistributedWeights R =
      redistributeWeights(M, PreProfile, Inline.Expansions);

  for (size_t F = 0; F != R.NodeWeight.size(); ++F)
    if (R.NodeWeight[F] < -Tolerance)
      addFinding(Report, auditFuncName(M, static_cast<FuncId>(F)), -1, -1,
                 Severity::Error, kRuleAuditWeightConservation,
                 "redistributed node weight is negative (" +
                     formatDouble(R.NodeWeight[F], 6) + ")");
  for (size_t S = 0; S != R.ArcWeight.size(); ++S)
    if (R.ArcWeight[S] < -Tolerance)
      addFinding(Report, "", -1, -1, Severity::Error,
                 kRuleAuditWeightConservation,
                 "redistributed arc weight of site " + std::to_string(S) +
                     " is negative (" + formatDouble(R.ArcWeight[S], 6) +
                     ")");

  std::vector<FuncId> SiteCallee(R.ArcWeight.size(), kNoFunc);
  for (const SiteInfo &S : Inline.Classes.Sites)
    if (S.SiteId < SiteCallee.size())
      SiteCallee[S.SiteId] = S.Callee;
  for (const ExpansionRecord &Rec : Inline.Expansions)
    for (const auto &[Orig, Fresh] : Rec.ClonedSites)
      if (Fresh < SiteCallee.size() && Orig < SiteCallee.size())
        SiteCallee[Fresh] = SiteCallee[Orig];

  std::vector<double> Incoming(M.Funcs.size(), 0.0);
  for (size_t S = 0; S != SiteCallee.size(); ++S)
    if (SiteCallee[S] != kNoFunc &&
        static_cast<size_t>(SiteCallee[S]) < Incoming.size())
      Incoming[static_cast<size_t>(SiteCallee[S])] += R.ArcWeight[S];

  for (const Function &F : M.Funcs) {
    // Main is entered once without an arc; address-taken functions can be
    // entered through pointer arcs whose targets the profile cannot
    // attribute; externals have no audited body.
    if (F.Id == M.MainId || F.IsExternal || F.AddressTaken)
      continue;
    double Node = R.NodeWeight[static_cast<size_t>(F.Id)];
    double In = Incoming[static_cast<size_t>(F.Id)];
    double Bound = Tolerance * std::max({1.0, Node, In});
    if (std::abs(Node - In) > Bound)
      addFinding(Report, F.Name, -1, -1, Severity::Error,
                 kRuleAuditWeightConservation,
                 "node weight " + formatDouble(Node, 6) +
                     " does not match incoming arc weight " +
                     formatDouble(In, 6) +
                     " after redistribution (difference " +
                     formatDouble(Node - In, 6) + " entries/run)");
  }
}

/// (d) The expansion sequence must respect the linear order: each
/// expanded callee precedes its caller, and callers are visited in
/// non-decreasing sequence position (callees fully expanded before any
/// of their callers).
void auditLinearization(const Module &M, const InlineResult &Inline,
                        AnalysisReport &Report) {
  const Linearization &L = Inline.Linear;
  size_t LastPos = 0;
  bool First = true;
  for (const ExpansionRecord &Rec : Inline.Expansions) {
    if (Rec.Caller < 0 ||
        static_cast<size_t>(Rec.Caller) >= L.Position.size() ||
        Rec.Callee < 0 ||
        static_cast<size_t>(Rec.Callee) >= L.Position.size()) {
      addFinding(Report, auditFuncName(M, Rec.Caller), -1, -1,
                 Severity::Error, kRuleAuditLinearization,
                 "expansion record for site " + std::to_string(Rec.SiteId) +
                     " names a function outside the linear sequence");
      continue;
    }
    if (!L.precedes(Rec.Callee, Rec.Caller))
      addFinding(Report, auditFuncName(M, Rec.Caller), -1, -1,
                 Severity::Error, kRuleAuditLinearization,
                 "expansion of site " + std::to_string(Rec.SiteId) +
                     ": callee '" + auditFuncName(M, Rec.Callee) +
                     "' (position " +
                     std::to_string(L.Position[static_cast<size_t>(
                         Rec.Callee)]) +
                     ") does not precede caller '" +
                     auditFuncName(M, Rec.Caller) + "' (position " +
                     std::to_string(
                         L.Position[static_cast<size_t>(Rec.Caller)]) +
                     ")");
    size_t Pos = L.Position[static_cast<size_t>(Rec.Caller)];
    if (!First && Pos < LastPos)
      addFinding(Report, auditFuncName(M, Rec.Caller), -1, -1,
                 Severity::Error, kRuleAuditLinearization,
                 "expansion order regressed: caller '" +
                     auditFuncName(M, Rec.Caller) + "' (position " +
                     std::to_string(Pos) +
                     ") was expanded into after a caller at position " +
                     std::to_string(LastPos));
    LastPos = std::max(LastPos, Pos);
    First = false;
  }
}

} // namespace

void impact::analyzeInlineInvariants(const Module &M,
                                     const InlineResult &Inline,
                                     const ProfileData &PreProfile,
                                     const AnalysisOptions &Options,
                                     AnalysisReport &Report) {
  if (Options.AuditSafeExpansion)
    auditSafeExpansion(M, Inline, Report);
  if (Options.AuditCallGraph)
    auditCallGraph(M, Inline, Report);
  if (Options.AuditWeightConservation)
    auditWeightConservation(M, Inline, PreProfile, Options.WeightTolerance,
                            Report);
  if (Options.AuditLinearization)
    auditLinearization(M, Inline, Report);
  Report.sortFindings();
}
