//===- analysis/RangeAnalysis.cpp - Interprocedural value ranges ------------===//
//
// Part of the impact-inline project, distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/RangeAnalysis.h"

#include "analysis/Dataflow.h"
#include "analysis/DataflowSolver.h"
#include "analysis/LoopInfo.h"
#include "callgraph/Scc.h"

#include <algorithm>
#include <cassert>

using namespace impact;

//===----------------------------------------------------------------------===//
// Interval lattice
//===----------------------------------------------------------------------===//

static constexpr int64_t kIntMin = std::numeric_limits<int64_t>::min();
static constexpr int64_t kIntMax = std::numeric_limits<int64_t>::max();

Interval impact::join(Interval A, Interval B) {
  if (A.isBottom())
    return B;
  if (B.isBottom())
    return A;
  return Interval{std::min(A.Lo, B.Lo), std::max(A.Hi, B.Hi)};
}

Interval impact::meet(Interval A, Interval B) {
  if (A.isBottom() || B.isBottom())
    return Interval::bottom();
  return Interval::make(std::max(A.Lo, B.Lo), std::min(A.Hi, B.Hi));
}

Interval impact::widen(Interval Old, Interval New) {
  if (Old.isBottom())
    return New;
  if (New.isBottom())
    return Old;
  return Interval{New.Lo < Old.Lo ? kIntMin : Old.Lo,
                  New.Hi > Old.Hi ? kIntMax : Old.Hi};
}

std::string impact::renderInterval(Interval I) {
  if (I.isBottom())
    return "bot";
  std::string Lo = I.Lo == kIntMin ? "-inf" : std::to_string(I.Lo);
  std::string Hi = I.Hi == kIntMax ? "+inf" : std::to_string(I.Hi);
  return "[" + Lo + "," + Hi + "]";
}

Interval impact::rangeAdd(Interval A, Interval B) {
  if (A.isBottom() || B.isBottom())
    return Interval::bottom();
  int64_t Lo, Hi;
  if (__builtin_add_overflow(A.Lo, B.Lo, &Lo) ||
      __builtin_add_overflow(A.Hi, B.Hi, &Hi))
    return Interval::top();
  return Interval{Lo, Hi};
}

Interval impact::rangeSub(Interval A, Interval B) {
  if (A.isBottom() || B.isBottom())
    return Interval::bottom();
  int64_t Lo, Hi;
  if (__builtin_sub_overflow(A.Lo, B.Hi, &Lo) ||
      __builtin_sub_overflow(A.Hi, B.Lo, &Hi))
    return Interval::top();
  return Interval{Lo, Hi};
}

Interval impact::rangeMul(Interval A, Interval B) {
  if (A.isBottom() || B.isBottom())
    return Interval::bottom();
  int64_t Lo = kIntMax, Hi = kIntMin;
  for (int64_t X : {A.Lo, A.Hi})
    for (int64_t Y : {B.Lo, B.Hi}) {
      int64_t P;
      if (__builtin_mul_overflow(X, Y, &P))
        return Interval::top();
      Lo = std::min(Lo, P);
      Hi = std::max(Hi, P);
    }
  return Interval{Lo, Hi};
}

bool impact::divMayTrap(Interval Dividend, Interval Divisor) {
  if (Dividend.isBottom() || Divisor.isBottom())
    return false; // the operation never executes
  if (Divisor.contains(0))
    return true;
  return Dividend.contains(kIntMin) && Divisor.contains(-1);
}

Interval impact::rangeDiv(Interval A, Interval B) {
  if (A.isBottom() || B.isBottom())
    return Interval::bottom();
  // The transfer may assume the division did not trap — a trapping
  // instance produces no value — but corner evaluation itself must not
  // hit INT64_MIN / -1, so any hazard sends us to top.
  if (B.contains(0) || (A.contains(kIntMin) && B.contains(-1)))
    return Interval::top();
  int64_t Lo = kIntMax, Hi = kIntMin;
  for (int64_t X : {A.Lo, A.Hi})
    for (int64_t Y : {B.Lo, B.Hi}) {
      int64_t Q = X / Y;
      Lo = std::min(Lo, Q);
      Hi = std::max(Hi, Q);
    }
  return Interval{Lo, Hi};
}

Interval impact::rangeRem(Interval A, Interval B) {
  if (A.isBottom() || B.isBottom())
    return Interval::bottom();
  if (B.contains(0) || B.Lo == kIntMin ||
      (A.contains(kIntMin) && B.contains(-1)))
    return Interval::top();
  if (A.isConstant() && B.isConstant())
    return Interval::constant(A.Lo % B.Lo); // hazards excluded above
  // |r| < max|divisor|, and r keeps the dividend's sign (C semantics).
  int64_t MagLo = B.Lo < 0 ? -B.Lo : B.Lo;
  int64_t MagHi = B.Hi < 0 ? -B.Hi : B.Hi;
  int64_t D = std::max(MagLo, MagHi) - 1;
  int64_t Lo = std::max(-D, std::min(A.Lo, int64_t(0)));
  int64_t Hi = std::min(D, std::max(A.Hi, int64_t(0)));
  return Interval::make(Lo, Hi);
}

Interval impact::rangeShl(Interval A, Interval B) {
  if (A.isBottom() || B.isBottom())
    return Interval::bottom();
  // Only a constant in-range shift amount is handled exactly; the engines
  // mask the amount with 63, so a non-constant amount could select any of
  // 64 different scalings.
  if (!B.isConstant() || B.Lo < 0 || B.Lo > 62)
    return Interval::top();
  int64_t Scale = int64_t(1) << B.Lo;
  return rangeMul(A, Interval::constant(Scale));
}

Interval impact::rangeShr(Interval A, Interval B) {
  if (A.isBottom() || B.isBottom())
    return Interval::bottom();
  if (B.Lo < 0 || B.Hi > 63)
    return Interval::top(); // the &63 mask can pick any amount
  int64_t Lo = kIntMax, Hi = kIntMin;
  for (int64_t X : {A.Lo, A.Hi})
    for (int64_t Y : {B.Lo, B.Hi}) {
      int64_t S = X >> Y;
      Lo = std::min(Lo, S);
      Hi = std::max(Hi, S);
    }
  return Interval{Lo, Hi};
}

/// Smallest all-ones mask covering \p V (V >= 0): 5 -> 7, 8 -> 15, 0 -> 0.
static int64_t onesMask(int64_t V) {
  int64_t M = V;
  M |= M >> 1;
  M |= M >> 2;
  M |= M >> 4;
  M |= M >> 8;
  M |= M >> 16;
  M |= M >> 32;
  return M;
}

Interval impact::rangeAnd(Interval A, Interval B) {
  if (A.isBottom() || B.isBottom())
    return Interval::bottom();
  // x & y with y in [0, H] has only bits of y, so it lies in [0, H]
  // regardless of x's sign; symmetric in the other operand.
  if (B.isNonNegative())
    return Interval{0, B.Hi};
  if (A.isNonNegative())
    return Interval{0, A.Hi};
  return Interval::top();
}

Interval impact::rangeOr(Interval A, Interval B) {
  if (A.isBottom() || B.isBottom())
    return Interval::bottom();
  if (A.isNonNegative() && B.isNonNegative()) {
    // a|b >= max(a,b) and a|b fits in the union of both bit masks.
    int64_t Lo = std::max(A.Lo, B.Lo);
    int64_t Hi = onesMask(A.Hi) | onesMask(B.Hi);
    return Interval{Lo, Hi};
  }
  return Interval::top();
}

Interval impact::rangeXor(Interval A, Interval B) {
  if (A.isBottom() || B.isBottom())
    return Interval::bottom();
  if (A.isNonNegative() && B.isNonNegative())
    return Interval{0, onesMask(A.Hi) | onesMask(B.Hi)};
  return Interval::top();
}

Interval impact::rangeNeg(Interval A) {
  if (A.isBottom())
    return Interval::bottom();
  if (A.Lo == kIntMin)
    return Interval::top(); // -INT64_MIN wraps
  return Interval{-A.Hi, -A.Lo};
}

Interval impact::rangeNot(Interval A) {
  if (A.isBottom())
    return Interval::bottom();
  return Interval{~A.Hi, ~A.Lo};
}

Interval impact::rangeCmp(Opcode Op, Interval A, Interval B) {
  if (A.isBottom() || B.isBottom())
    return Interval::bottom();
  auto Decide = [](int MustHold) {
    // 1 = provably true, 0 = provably false, -1 = unknown.
    if (MustHold == 1)
      return Interval::constant(1);
    if (MustHold == 0)
      return Interval::constant(0);
    return Interval{0, 1};
  };
  bool Disjoint = A.Hi < B.Lo || B.Hi < A.Lo;
  switch (Op) {
  case Opcode::CmpEq:
    if (A.isConstant() && B.isConstant())
      return Decide(A.Lo == B.Lo);
    return Decide(Disjoint ? 0 : -1);
  case Opcode::CmpNe:
    if (A.isConstant() && B.isConstant())
      return Decide(A.Lo != B.Lo);
    return Decide(Disjoint ? 1 : -1);
  case Opcode::CmpLt:
    return Decide(A.Hi < B.Lo ? 1 : (A.Lo >= B.Hi ? 0 : -1));
  case Opcode::CmpLe:
    return Decide(A.Hi <= B.Lo ? 1 : (A.Lo > B.Hi ? 0 : -1));
  case Opcode::CmpGt:
    return Decide(A.Lo > B.Hi ? 1 : (A.Hi <= B.Lo ? 0 : -1));
  case Opcode::CmpGe:
    return Decide(A.Lo >= B.Hi ? 1 : (A.Hi < B.Lo ? 0 : -1));
  default:
    return Interval{0, 1};
  }
}

//===----------------------------------------------------------------------===//
// Branch refinement
//===----------------------------------------------------------------------===//

/// Refines \p A and \p B under the assumption that "A pred B" holds.
/// Either may collapse to bottom, proving the assumption (and hence the
/// refined edge) infeasible.
static void refineByCmp(Opcode Pred, Interval &A, Interval &B) {
  switch (Pred) {
  case Opcode::CmpEq: {
    Interval M = meet(A, B);
    A = M;
    B = M;
    return;
  }
  case Opcode::CmpNe:
    // Only boundary exclusion against a constant is representable.
    if (B.isConstant() && !A.isBottom()) {
      if (A.Lo == B.Lo && A.Lo != kIntMax)
        A.Lo += 1;
      else if (A.Hi == B.Lo && A.Hi != kIntMin)
        A.Hi -= 1;
      if (A.isConstant() && A.Lo == B.Lo)
        A = Interval::bottom();
    }
    if (A.isConstant() && !B.isBottom()) {
      if (B.Lo == A.Lo && B.Lo != kIntMax)
        B.Lo += 1;
      else if (B.Hi == A.Lo && B.Hi != kIntMin)
        B.Hi -= 1;
      if (B.isConstant() && B.Lo == A.Lo)
        B = Interval::bottom();
    }
    return;
  case Opcode::CmpLt:
    // A < B: A <= B.Hi - 1, B >= A.Lo + 1.
    A = meet(A, B.Hi == kIntMin ? Interval::bottom()
                                : Interval{kIntMin, B.Hi - 1});
    B = meet(B, A.isBottom() || A.Lo == kIntMax
                    ? Interval::bottom()
                    : Interval{A.Lo + 1, kIntMax});
    return;
  case Opcode::CmpLe:
    A = meet(A, Interval{kIntMin, B.Hi});
    B = meet(B, A.isBottom() ? Interval::bottom() : Interval{A.Lo, kIntMax});
    return;
  case Opcode::CmpGt:
    A = meet(A, B.Lo == kIntMax ? Interval::bottom()
                                : Interval{B.Lo + 1, kIntMax});
    B = meet(B, A.isBottom() || A.Hi == kIntMin
                    ? Interval::bottom()
                    : Interval{kIntMin, A.Hi - 1});
    return;
  case Opcode::CmpGe:
    A = meet(A, Interval{B.Lo, kIntMax});
    B = meet(B, A.isBottom() ? Interval::bottom() : Interval{kIntMin, A.Hi});
    return;
  default:
    return;
  }
}

/// The comparison asserting the *opposite* of \p Pred.
static Opcode negateCmp(Opcode Pred) {
  switch (Pred) {
  case Opcode::CmpEq:
    return Opcode::CmpNe;
  case Opcode::CmpNe:
    return Opcode::CmpEq;
  case Opcode::CmpLt:
    return Opcode::CmpGe;
  case Opcode::CmpLe:
    return Opcode::CmpGt;
  case Opcode::CmpGt:
    return Opcode::CmpLe;
  case Opcode::CmpGe:
    return Opcode::CmpLt;
  default:
    return Pred;
  }
}

static bool isCmp(Opcode Op) {
  return Op >= Opcode::CmpEq && Op <= Opcode::CmpGe;
}

//===----------------------------------------------------------------------===//
// RangeAnalysis
//===----------------------------------------------------------------------===//

namespace impact {

/// Adapter between RangeAnalysis and the generic forward solver. Widening
/// fires after a short delay — 2 changed joins at loop headers (one plain
/// join lets small constant-step loops converge exactly before blow-up),
/// 8 anywhere else (a backstop for irreducible or pathological shapes).
struct RangeDomain {
  using State = RangeAnalysis::Env;

  const RangeAnalysis &RA;
  std::vector<uint32_t> JoinCounts;

  explicit RangeDomain(const RangeAnalysis &RA)
      : RA(RA), JoinCounts(RA.G.getNumBlocks(), 0) {}

  State entryState() {
    State E(RA.F.NumRegs, Interval::constant(0));
    for (uint32_t P = 0; P != RA.F.NumParams; ++P) {
      Interval PI = Interval::top();
      if (RA.Ctx.Facts && RA.F.Id >= 0 &&
          static_cast<size_t>(RA.F.Id) < RA.Ctx.Facts->Funcs.size()) {
        const FunctionRangeSummary &S =
            RA.Ctx.Facts->Funcs[static_cast<size_t>(RA.F.Id)];
        if (S.Params.size() == RA.F.NumParams)
          PI = S.Params[P];
      }
      E[P] = PI;
    }
    return E;
  }

  void transferBlock(BlockId B, State &E) {
    for (const Instr &I : RA.F.Blocks[static_cast<size_t>(B)].Instrs)
      RA.step(I, E);
  }

  bool refineEdge(BlockId From, BlockId To, State &E) {
    return RA.refineEdge(From, To, E);
  }

  bool joinInto(BlockId To, State &Dest, const State &Src) {
    bool Changed = false;
    uint32_t Delay = RA.IsHeader[static_cast<size_t>(To)] ? 2 : 8;
    bool Widen = JoinCounts[static_cast<size_t>(To)] >= Delay;
    size_t N = std::min(Dest.size(), Src.size());
    for (size_t I = 0; I != N; ++I) {
      Interval J = join(Dest[I], Src[I]);
      if (Widen)
        J = widen(Dest[I], J);
      if (J != Dest[I]) {
        Dest[I] = J;
        Changed = true;
      }
    }
    if (Changed)
      ++JoinCounts[static_cast<size_t>(To)];
    return Changed;
  }
};

} // namespace impact

RangeAnalysis::RangeAnalysis(const Function &F, const Cfg &G,
                             const RangeContext &Ctx)
    : F(F), G(G), Ctx(Ctx) {
  size_t N = G.getNumBlocks();
  Reached.assign(N, 0);
  In.assign(N, Env(F.NumRegs, Interval::bottom()));
  IsHeader.assign(N, 0);
  if (N == 0)
    return;

  LoopInfo LI = computeLoopInfo(F);
  for (const Loop &L : LI.Loops)
    if (L.Header >= 0 && static_cast<size_t>(L.Header) < N)
      IsHeader[static_cast<size_t>(L.Header)] = 1;

  // A bottom formal proves the function is never entered; nothing inside
  // it is reachable and every fact about it is vacuous.
  if (Ctx.Facts && F.Id >= 0 &&
      static_cast<size_t>(F.Id) < Ctx.Facts->Funcs.size()) {
    const FunctionRangeSummary &S = Ctx.Facts->Funcs[static_cast<size_t>(F.Id)];
    if (S.Params.size() == F.NumParams)
      for (const Interval &P : S.Params)
        if (P.isBottom())
          return;
  }
  solve();
}

void RangeAnalysis::solve() {
  RangeDomain D(*this);
  Reached = solveForwardDataflow(G, D, In);

  // Two narrowing sweeps: recompute each reached join in reverse post-order
  // without widening. The solved state is a post-fixpoint of the monotone
  // transfer system, so every recomputation stays above the least fixpoint
  // — each sweep only tightens. An edge (or a whole block) can be proven
  // infeasible here that widening had kept alive.
  for (int Sweep = 0; Sweep != 2; ++Sweep) {
    for (BlockId B : G.getReversePostOrder()) {
      if (B == 0 || !Reached[static_cast<size_t>(B)])
        continue;
      Env NewIn(F.NumRegs, Interval::bottom());
      bool AnyEdge = false;
      for (BlockId P : G.getPredecessors(B)) {
        if (!Reached[static_cast<size_t>(P)])
          continue;
        Env Out = In[static_cast<size_t>(P)];
        for (const Instr &I : F.Blocks[static_cast<size_t>(P)].Instrs)
          step(I, Out);
        if (!refineEdge(P, B, Out))
          continue;
        AnyEdge = true;
        for (size_t R = 0; R != NewIn.size() && R < Out.size(); ++R)
          NewIn[R] = join(NewIn[R], Out[R]);
      }
      if (!AnyEdge) {
        Reached[static_cast<size_t>(B)] = 0;
        In[static_cast<size_t>(B)].assign(F.NumRegs, Interval::bottom());
      } else {
        In[static_cast<size_t>(B)] = std::move(NewIn);
      }
    }
  }
}

RangeAnalysis::Env RangeAnalysis::blockOut(BlockId B) const {
  Env E = In[static_cast<size_t>(B)];
  for (const Instr &I : F.Blocks[static_cast<size_t>(B)].Instrs)
    step(I, E);
  return E;
}

Interval RangeAnalysis::eval(const Instr &I, const Env &E) const {
  Interval A = get(E, I.Src1);
  Interval B = get(E, I.Src2);
  switch (I.Op) {
  case Opcode::Mov:
    return A;
  case Opcode::LdImm:
    return Interval::constant(I.Imm);
  case Opcode::Add:
    return rangeAdd(A, B);
  case Opcode::Sub:
    return rangeSub(A, B);
  case Opcode::Mul:
    return rangeMul(A, B);
  case Opcode::Div:
    return rangeDiv(A, B);
  case Opcode::Rem:
    return rangeRem(A, B);
  case Opcode::Shl:
    return rangeShl(A, B);
  case Opcode::Shr:
    return rangeShr(A, B);
  case Opcode::And:
    return rangeAnd(A, B);
  case Opcode::Or:
    return rangeOr(A, B);
  case Opcode::Xor:
    return rangeXor(A, B);
  case Opcode::Neg:
    return rangeNeg(A);
  case Opcode::Not:
    return rangeNot(A);
  case Opcode::CmpEq:
  case Opcode::CmpNe:
  case Opcode::CmpLt:
  case Opcode::CmpLe:
  case Opcode::CmpGt:
  case Opcode::CmpGe:
    return rangeCmp(I.Op, A, B);
  case Opcode::Load:
    return Interval::top();
  case Opcode::FrameAddr:
    // FP >= kStackBase and frames grow upward; the offset is non-negative.
    return Interval{kStackBase, kIntMax};
  case Opcode::GlobalAddr:
    if (Ctx.M)
      return Interval::constant(Ctx.M->getGlobalAddress(I.Imm));
    return Interval{kGlobalBase, kStackBase - 1};
  case Opcode::FuncAddr:
    return Interval::constant(encodeFuncAddr(I.Callee));
  case Opcode::Call:
    if (Ctx.Facts && I.Callee >= 0 &&
        static_cast<size_t>(I.Callee) < Ctx.Facts->Funcs.size()) {
      const FunctionRangeSummary &S =
          Ctx.Facts->Funcs[static_cast<size_t>(I.Callee)];
      if (S.HasSummary)
        return S.Ret;
    }
    return Interval::top();
  case Opcode::CallPtr:
    return Interval::top();
  default:
    return Interval::top();
  }
}

void RangeAnalysis::step(const Instr &I, Env &E) const {
  Reg D = instrDef(I);
  if (D == kNoReg || static_cast<size_t>(D) >= E.size())
    return;
  E[static_cast<size_t>(D)] = eval(I, E);
}

bool RangeAnalysis::refineEdge(BlockId From, BlockId To, Env &E) const {
  const BasicBlock &B = F.Blocks[static_cast<size_t>(From)];
  if (B.Instrs.empty())
    return true;
  const Instr &T = B.Instrs.back();
  if (T.Op != Opcode::CondBr || T.Target == T.Target2)
    return true;
  bool Taken = To == T.Target;

  // The condition register itself: != 0 on the taken edge, == 0 otherwise.
  Reg C = T.Src1;
  Interval CI = get(E, C);
  if (CI.isBottom())
    return false;
  if (Taken) {
    if (CI.isConstant() && CI.Lo == 0)
      return false;
    if (CI.Lo == 0)
      CI.Lo = 1;
    else if (CI.Hi == 0)
      CI.Hi = -1;
  } else {
    if (!CI.contains(0))
      return false;
    CI = Interval::constant(0);
  }
  if (C >= 0 && static_cast<size_t>(C) < E.size())
    E[static_cast<size_t>(C)] = CI;

  // If the condition is a comparison computed in this block whose operands
  // survive to the branch, push the predicate into the operands.
  int DefIdx = -1;
  for (int I = static_cast<int>(B.Instrs.size()) - 2; I >= 0; --I)
    if (instrDef(B.Instrs[static_cast<size_t>(I)]) == C) {
      DefIdx = I;
      break;
    }
  if (DefIdx < 0)
    return true;
  const Instr &D = B.Instrs[static_cast<size_t>(DefIdx)];
  if (!isCmp(D.Op))
    return true;
  Reg RA = D.Src1, RB = D.Src2;
  if (RA == C || RB == C || RA == kNoReg || RB == kNoReg)
    return true;
  for (size_t I = static_cast<size_t>(DefIdx) + 1; I + 1 < B.Instrs.size();
       ++I) {
    Reg Redef = instrDef(B.Instrs[I]);
    if (Redef == RA || Redef == RB)
      return true; // an operand changed between the compare and the branch
  }

  Opcode Pred = Taken ? D.Op : negateCmp(D.Op);
  Interval IA = get(E, RA), IB = get(E, RB);
  refineByCmp(Pred, IA, IB);
  if (IA.isBottom() || IB.isBottom())
    return false;
  if (static_cast<size_t>(RA) < E.size())
    E[static_cast<size_t>(RA)] = IA;
  if (static_cast<size_t>(RB) < E.size())
    E[static_cast<size_t>(RB)] = IB;
  return true;
}

//===----------------------------------------------------------------------===//
// Interprocedural summaries
//===----------------------------------------------------------------------===//

namespace {

bool isDefined(const Function &F) {
  return !F.IsExternal && !F.Eliminated && !F.Blocks.empty();
}

/// One bottom-up evaluation of a function against the facts accumulated so
/// far: return range, purity bits, and (optionally) per-site argument
/// intervals. \p SameScc marks callees in the function's own SCC — a call
/// to one makes Terminates false (recursion).
struct BottomUpResult {
  Interval Ret = Interval::bottom();
  bool ReadsGlobals = false;
  bool WritesGlobals = false;
  bool MayTrap = false;
  bool Terminates = true;
};

BottomUpResult evaluateFunction(const Function &F, const Module &M,
                                ModuleRangeFacts &Facts,
                                const std::vector<int> &ComponentIds,
                                bool RecordSites) {
  BottomUpResult R;
  Cfg G(F);
  RangeContext Ctx{&M, &Facts};
  RangeAnalysis Ranges(F, G, Ctx);

  LoopInfo LI = computeLoopInfo(F);
  if (!LI.Loops.empty())
    R.Terminates = false;

  int MyComponent =
      F.Id >= 0 && static_cast<size_t>(F.Id) < ComponentIds.size()
          ? ComponentIds[static_cast<size_t>(F.Id)]
          : -1;

  for (size_t B = 0; B != F.Blocks.size(); ++B) {
    if (!Ranges.isReachable(static_cast<BlockId>(B)))
      continue;
    RangeAnalysis::Env E = Ranges.blockIn(static_cast<BlockId>(B));
    for (const Instr &I : F.Blocks[B].Instrs) {
      switch (I.Op) {
      case Opcode::Load:
      case Opcode::Store: {
        Interval Addr = RangeAnalysis::get(E, I.Src1);
        bool InGlobals = !Addr.isBottom() && Addr.Lo >= Facts.GlobalLo &&
                         Addr.Hi < Facts.GlobalHi;
        bool OutsideGlobals = !Addr.isBottom() && (Addr.Hi < Facts.GlobalLo ||
                                                   Addr.Lo >= Facts.GlobalHi);
        if (I.Op == Opcode::Load) {
          if (!OutsideGlobals)
            R.ReadsGlobals = true;
        } else if (!OutsideGlobals) {
          R.WritesGlobals = true;
        }
        if (!InGlobals)
          R.MayTrap = true; // only a proven global word can never trap
        break;
      }
      case Opcode::Div:
      case Opcode::Rem:
        if (divMayTrap(RangeAnalysis::get(E, I.Src1),
                       RangeAnalysis::get(E, I.Src2)))
          R.MayTrap = true;
        break;
      case Opcode::Call: {
        // Any call can die of control-stack explosion at entry, so MayTrap
        // is unconditional; the other bits merge transitively.
        R.MayTrap = true;
        bool Known = false;
        if (I.Callee >= 0 &&
            static_cast<size_t>(I.Callee) < Facts.Funcs.size()) {
          const FunctionRangeSummary &S =
              Facts.Funcs[static_cast<size_t>(I.Callee)];
          if (S.HasSummary) {
            Known = true;
            R.ReadsGlobals |= S.ReadsGlobals;
            R.WritesGlobals |= S.WritesGlobals;
            R.Terminates &= S.Terminates;
          }
        }
        if (!Known) {
          // External or unresolvable callee: intrinsics can touch memory
          // behind the IL's back, and unknown externals trap outright.
          R.ReadsGlobals = true;
          R.WritesGlobals = true;
          if (!(I.Callee >= 0 &&
                static_cast<size_t>(I.Callee) < M.Funcs.size() &&
                M.Funcs[static_cast<size_t>(I.Callee)].IsExternal))
            R.Terminates = false;
        }
        if (MyComponent >= 0 && I.Callee >= 0 &&
            static_cast<size_t>(I.Callee) < ComponentIds.size() &&
            ComponentIds[static_cast<size_t>(I.Callee)] == MyComponent)
          R.Terminates = false; // recursion (possibly mutual)
        if (RecordSites && I.SiteId != 0 &&
            I.SiteId < Facts.SiteArgs.size()) {
          std::vector<Interval> Args;
          Args.reserve(I.Args.size());
          for (Reg A : I.Args)
            Args.push_back(RangeAnalysis::get(E, A));
          Facts.SiteArgs[I.SiteId] = std::move(Args);
          Facts.SiteHasFact[I.SiteId] = 1;
        }
        break;
      }
      case Opcode::CallPtr: {
        R.ReadsGlobals = true;
        R.WritesGlobals = true;
        R.MayTrap = true;
        R.Terminates = false;
        if (RecordSites && I.SiteId != 0 &&
            I.SiteId < Facts.SiteArgs.size()) {
          std::vector<Interval> Args;
          Args.reserve(I.Args.size());
          for (Reg A : I.Args)
            Args.push_back(RangeAnalysis::get(E, A));
          Facts.SiteArgs[I.SiteId] = std::move(Args);
          Facts.SiteHasFact[I.SiteId] = 1;
        }
        break;
      }
      case Opcode::Ret: {
        Interval V = I.Src1 == kNoReg ? Interval::constant(0)
                                      : RangeAnalysis::get(E, I.Src1);
        R.Ret = join(R.Ret, V);
        break;
      }
      default:
        break;
      }
      Ranges.step(I, E);
    }
  }
  return R;
}

/// Iterates one SCC's members to a fixpoint of the bottom-up equations,
/// starting from the optimistic initial state (Ret bottom, all-pure).
/// Purity bits only move one way and Ret is widened against its previous
/// round, so convergence is fast; a generous round cap backstops it, after
/// which everything collapses to the conservative answer.
void solveComponent(const std::vector<int> &Members, const Module &M,
                    ModuleRangeFacts &Facts,
                    const std::vector<int> &ComponentIds) {
  for (int FI : Members) {
    FunctionRangeSummary &S = Facts.Funcs[static_cast<size_t>(FI)];
    S.Ret = Interval::bottom();
    S.ReadsGlobals = false;
    S.WritesGlobals = false;
    S.MayTrap = false;
    S.Terminates = true;
  }
  const int MaxRounds = 8;
  for (int Round = 0; Round != MaxRounds; ++Round) {
    bool Changed = false;
    for (int FI : Members) {
      const Function &F = M.Funcs[static_cast<size_t>(FI)];
      BottomUpResult R =
          evaluateFunction(F, M, Facts, ComponentIds, /*RecordSites=*/false);
      FunctionRangeSummary &S = Facts.Funcs[static_cast<size_t>(FI)];
      Interval NewRet = Round >= 2 ? widen(S.Ret, join(S.Ret, R.Ret))
                                   : join(S.Ret, R.Ret);
      if (NewRet != S.Ret || R.ReadsGlobals != S.ReadsGlobals ||
          R.WritesGlobals != S.WritesGlobals || R.MayTrap != S.MayTrap ||
          R.Terminates != S.Terminates) {
        S.Ret = NewRet;
        S.ReadsGlobals |= R.ReadsGlobals;
        S.WritesGlobals |= R.WritesGlobals;
        S.MayTrap |= R.MayTrap;
        S.Terminates &= R.Terminates;
        Changed = true;
      }
    }
    if (!Changed)
      return;
  }
  // Round cap hit (pathological mutual recursion): go conservative.
  for (int FI : Members) {
    FunctionRangeSummary &S = Facts.Funcs[static_cast<size_t>(FI)];
    S.Ret = Interval::top();
    S.ReadsGlobals = true;
    S.WritesGlobals = true;
    S.MayTrap = true;
    S.Terminates = false;
  }
}

} // namespace

ModuleRangeFacts impact::computeModuleRangeFacts(const Module &M) {
  ModuleRangeFacts Facts;
  size_t N = M.Funcs.size();
  Facts.Funcs.resize(N);
  Facts.GlobalLo = kGlobalBase;
  Facts.GlobalHi = kGlobalBase + M.getGlobalSegmentSize();
  Facts.SiteArgs.resize(M.NextSiteId);
  Facts.SiteHasFact.assign(M.NextSiteId, 0);

  std::vector<std::vector<int>> Succ(N);
  for (size_t FI = 0; FI != N; ++FI) {
    const Function &F = M.Funcs[FI];
    if (!isDefined(F))
      continue;
    Facts.Funcs[FI].HasSummary = true;
    for (const BasicBlock &B : F.Blocks)
      for (const Instr &I : B.Instrs) {
        if (I.Op == Opcode::CallPtr)
          Facts.HasCallPtr = true;
        if (I.Op == Opcode::Call && I.Callee >= 0 &&
            static_cast<size_t>(I.Callee) < N)
          Succ[FI].push_back(I.Callee);
      }
  }

  SccResult Scc = computeScc(Succ);
  std::vector<std::vector<int>> Members(
      static_cast<size_t>(Scc.NumComponents));
  for (size_t FI = 0; FI != N; ++FI)
    if (isDefined(M.Funcs[FI]))
      Members[static_cast<size_t>(Scc.ComponentIds[FI])].push_back(
          static_cast<int>(FI));

  // Phase A: bottom-up return + purity with formals at top. Component ids
  // come out of Tarjan in reverse topological order of the condensation,
  // so ascending id order visits callees before callers.
  for (const std::vector<int> &C : Members)
    if (!C.empty())
      solveComponent(C, M, Facts, Scc.ComponentIds);

  // Phase B: top-down formal propagation from main over direct sites. A
  // single CallPtr anywhere defeats it: a forged pointer can enter any
  // function with any arguments, so every formal fact would be unsound.
  if (Facts.HasCallPtr) {
    for (size_t FI = 0; FI != N; ++FI)
      if (Facts.Funcs[FI].HasSummary)
        Facts.Funcs[FI].Params.assign(M.Funcs[FI].NumParams, Interval::top());
  } else {
    std::vector<std::vector<Interval>> Formals(N);
    std::vector<uint32_t> Updates(N, 0);
    for (size_t FI = 0; FI != N; ++FI)
      if (Facts.Funcs[FI].HasSummary)
        Formals[FI].assign(M.Funcs[FI].NumParams, Interval::bottom());
    if (M.MainId >= 0 && static_cast<size_t>(M.MainId) < N &&
        Facts.Funcs[static_cast<size_t>(M.MainId)].HasSummary)
      Formals[static_cast<size_t>(M.MainId)].assign(
          M.Funcs[static_cast<size_t>(M.MainId)].NumParams, Interval::top());

    std::vector<FuncId> Work;
    std::vector<char> Queued(N, 0);
    // Reached is distinct from "formals changed": a zero-parameter callee
    // (or one whose joined args are already subsumed) never changes its
    // formal vector, but it must still be analyzed once so the calls in
    // its own body propagate onward.
    std::vector<char> Reached(N, 0);
    if (M.MainId >= 0 && static_cast<size_t>(M.MainId) < N) {
      Work.push_back(M.MainId);
      Queued[static_cast<size_t>(M.MainId)] = 1;
      Reached[static_cast<size_t>(M.MainId)] = 1;
    }
    while (!Work.empty()) {
      FuncId FI = Work.back();
      Work.pop_back();
      Queued[static_cast<size_t>(FI)] = 0;
      if (!Facts.Funcs[static_cast<size_t>(FI)].HasSummary)
        continue;
      const Function &F = M.Funcs[static_cast<size_t>(FI)];
      // Analyze under the caller's current formals.
      Facts.Funcs[static_cast<size_t>(FI)].Params =
          Formals[static_cast<size_t>(FI)];
      Cfg G(F);
      RangeContext Ctx{&M, &Facts};
      RangeAnalysis Ranges(F, G, Ctx);
      for (size_t B = 0; B != F.Blocks.size(); ++B) {
        if (!Ranges.isReachable(static_cast<BlockId>(B)))
          continue;
        RangeAnalysis::Env E = Ranges.blockIn(static_cast<BlockId>(B));
        for (const Instr &I : F.Blocks[B].Instrs) {
          if (I.Op == Opcode::Call && I.Callee >= 0 &&
              static_cast<size_t>(I.Callee) < N &&
              Facts.Funcs[static_cast<size_t>(I.Callee)].HasSummary) {
            std::vector<Interval> &Dest =
                Formals[static_cast<size_t>(I.Callee)];
            bool ArgChanged = false;
            for (size_t A = 0; A != Dest.size() && A < I.Args.size(); ++A) {
              Interval J = join(Dest[A], RangeAnalysis::get(E, I.Args[A]));
              if (Updates[static_cast<size_t>(I.Callee)] >= 3)
                J = widen(Dest[A], J);
              if (J != Dest[A]) {
                Dest[A] = J;
                ArgChanged = true;
              }
            }
            bool FirstVisit = !Reached[static_cast<size_t>(I.Callee)];
            Reached[static_cast<size_t>(I.Callee)] = 1;
            if (ArgChanged)
              ++Updates[static_cast<size_t>(I.Callee)];
            if ((ArgChanged || FirstVisit) &&
                !Queued[static_cast<size_t>(I.Callee)]) {
              Queued[static_cast<size_t>(I.Callee)] = 1;
              Work.push_back(I.Callee);
            }
          }
          Ranges.step(I, E);
        }
      }
    }
    for (size_t FI = 0; FI != N; ++FI)
      if (Facts.Funcs[FI].HasSummary)
        Facts.Funcs[FI].Params = std::move(Formals[FI]);
  }

  // Phase C: final bottom-up pass with the formals in place — returns and
  // purity tighten, and per-site argument facts are recorded against the
  // final state.
  for (const std::vector<int> &C : Members)
    if (!C.empty())
      solveComponent(C, M, Facts, Scc.ComponentIds);
  for (size_t FI = 0; FI != N; ++FI)
    if (Facts.Funcs[FI].HasSummary)
      (void)evaluateFunction(M.Funcs[FI], M, Facts, Scc.ComponentIds,
                             /*RecordSites=*/true);

  return Facts;
}

//===----------------------------------------------------------------------===//
// RangeFactChecker
//===----------------------------------------------------------------------===//

RangeFactChecker::RangeFactChecker(const Module &M, ModuleRangeFacts Facts)
    : Facts(std::move(Facts)) {
  FuncNames.reserve(M.Funcs.size());
  for (const Function &F : M.Funcs)
    FuncNames.push_back(F.Name);
}

void RangeFactChecker::violate(std::string Message) {
  if (!Seen.insert(Message).second)
    return;
  if (Violations.size() < 64)
    Violations.push_back(std::move(Message));
}

void RangeFactChecker::onEnter(FuncId F, const int64_t *Args, size_t N) {
  const FunctionRangeSummary *S =
      F >= 0 && static_cast<size_t>(F) < Facts.Funcs.size()
          ? &Facts.Funcs[static_cast<size_t>(F)]
          : nullptr;
  ShadowFrame Frame{F, false, false, false};
  if (S && S->HasSummary) {
    Frame.NoRead = !S->ReadsGlobals;
    Frame.NoWrite = !S->WritesGlobals;
    Frame.NoTrap = !S->MayTrap;
    if (S->Params.size() == N)
      for (size_t I = 0; I != N; ++I) {
        ++Checks;
        if (!S->Params[I].contains(Args[I]))
          violate("param " + std::to_string(I) + " of '" +
                  FuncNames[static_cast<size_t>(F)] + "' = " +
                  std::to_string(Args[I]) + " outside proven " +
                  renderInterval(S->Params[I]));
      }
  }
  NoReadDepth += Frame.NoRead;
  NoWriteDepth += Frame.NoWrite;
  NoTrapDepth += Frame.NoTrap;
  Stack.push_back(Frame);
}

void RangeFactChecker::onSiteArg(uint32_t Site, size_t Idx, int64_t V) {
  if (Site >= Facts.SiteArgs.size() || !Facts.SiteHasFact[Site])
    return;
  const std::vector<Interval> &Args = Facts.SiteArgs[Site];
  if (Idx >= Args.size())
    return;
  ++Checks;
  if (!Args[Idx].contains(V))
    violate("site " + std::to_string(Site) + " arg " + std::to_string(Idx) +
            " = " + std::to_string(V) + " outside proven " +
            renderInterval(Args[Idx]));
}

void RangeFactChecker::onRet(FuncId F, int64_t V) {
  const FunctionRangeSummary *S =
      F >= 0 && static_cast<size_t>(F) < Facts.Funcs.size()
          ? &Facts.Funcs[static_cast<size_t>(F)]
          : nullptr;
  if (S && S->HasSummary && !S->Ret.isTop()) {
    ++Checks;
    if (!S->Ret.contains(V))
      violate("'" + FuncNames[static_cast<size_t>(F)] + "' returned " +
              std::to_string(V) + " outside proven " + renderInterval(S->Ret));
  }
  if (Stack.empty()) {
    violate("return from '" +
            (F >= 0 && static_cast<size_t>(F) < FuncNames.size()
                 ? FuncNames[static_cast<size_t>(F)]
                 : std::string("?")) +
            "' with an empty shadow stack");
    return;
  }
  ShadowFrame Top = Stack.back();
  Stack.pop_back();
  NoReadDepth -= Top.NoRead;
  NoWriteDepth -= Top.NoWrite;
  NoTrapDepth -= Top.NoTrap;
  if (Top.Func != F)
    violate("shadow stack mismatch: returned from '" +
            (F >= 0 && static_cast<size_t>(F) < FuncNames.size()
                 ? FuncNames[static_cast<size_t>(F)]
                 : std::string("?")) +
            "' but entered '" +
            (Top.Func >= 0 && static_cast<size_t>(Top.Func) < FuncNames.size()
                 ? FuncNames[static_cast<size_t>(Top.Func)]
                 : std::string("?")) +
            "'");
}

void RangeFactChecker::onLoad(int64_t Addr) {
  if (NoReadDepth == 0 || !inGlobals(Addr))
    return;
  ++Checks;
  for (const ShadowFrame &Fr : Stack)
    if (Fr.NoRead)
      violate("global load at " + std::to_string(Addr) +
              " under '" + FuncNames[static_cast<size_t>(Fr.Func)] +
              "' proven to read no globals");
}

void RangeFactChecker::onStore(int64_t Addr) {
  if (NoWriteDepth == 0 || !inGlobals(Addr))
    return;
  ++Checks;
  for (const ShadowFrame &Fr : Stack)
    if (Fr.NoWrite)
      violate("global store at " + std::to_string(Addr) +
              " under '" + FuncNames[static_cast<size_t>(Fr.Func)] +
              "' proven to write no globals");
}

void RangeFactChecker::onTrap(const std::string &Message) {
  if (NoTrapDepth == 0)
    return;
  ++Checks;
  for (const ShadowFrame &Fr : Stack)
    if (Fr.NoTrap)
      violate("trap '" + Message + "' under '" +
              FuncNames[static_cast<size_t>(Fr.Func)] +
              "' proven to never trap");
}

void RangeFactChecker::onRunEnd() {
  Stack.clear();
  NoReadDepth = NoWriteDepth = NoTrapDepth = 0;
}
