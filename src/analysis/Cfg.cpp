//===- analysis/Cfg.cpp --------------------------------------------------------===//
//
// Part of the impact-inline project, distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/Cfg.h"

#include <algorithm>
#include <cassert>

using namespace impact;

Cfg::Cfg(const Function &F) {
  size_t N = F.Blocks.size();
  Succs.resize(N);
  Preds.resize(N);
  Reachable.assign(N, false);
  if (N == 0)
    return;

  for (size_t B = 0; B != N; ++B) {
    const BasicBlock &Block = F.Blocks[B];
    if (Block.empty())
      continue; // malformed; verifier reports it, graph stays edge-free
    const Instr &Term = Block.getTerminator();
    auto AddEdge = [&](BlockId To) {
      if (To < 0 || static_cast<size_t>(To) >= N)
        return; // out-of-range target: verifier's problem, not an edge
      std::vector<BlockId> &S = Succs[B];
      if (std::find(S.begin(), S.end(), To) != S.end())
        return; // dedupe cond_br with equal targets
      S.push_back(To);
      Preds[static_cast<size_t>(To)].push_back(static_cast<BlockId>(B));
    };
    switch (Term.Op) {
    case Opcode::Jump:
      AddEdge(Term.Target);
      break;
    case Opcode::CondBr:
      AddEdge(Term.Target);
      AddEdge(Term.Target2);
      break;
    default:
      break; // Ret (or malformed non-terminator): no successors
    }
  }

  // Iterative DFS from the entry; post-order collected on unwind, then
  // reversed. The explicit stack keeps deep single-chain CFGs (long
  // straight-line programs) off the call stack.
  std::vector<uint8_t> State(N, 0); // 0 unvisited, 1 on stack, 2 done
  std::vector<std::pair<BlockId, size_t>> Stack;
  std::vector<BlockId> Post;
  Post.reserve(N);
  Stack.emplace_back(0, 0);
  State[0] = 1;
  Reachable[0] = true;
  while (!Stack.empty()) {
    auto &[Block, NextSucc] = Stack.back();
    const std::vector<BlockId> &S = Succs[static_cast<size_t>(Block)];
    if (NextSucc < S.size()) {
      BlockId To = S[NextSucc++];
      if (State[static_cast<size_t>(To)] == 0) {
        State[static_cast<size_t>(To)] = 1;
        Reachable[static_cast<size_t>(To)] = true;
        Stack.emplace_back(To, 0);
      }
    } else {
      State[static_cast<size_t>(Block)] = 2;
      Post.push_back(Block);
      Stack.pop_back();
    }
  }
  Rpo.assign(Post.rbegin(), Post.rend());
}

std::vector<BlockId> Cfg::getPostOrder() const {
  return std::vector<BlockId>(Rpo.rbegin(), Rpo.rend());
}
