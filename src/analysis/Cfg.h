//===- analysis/Cfg.h - Explicit control-flow graph over the IL ----------------===//
//
// Part of the impact-inline project, distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An explicit per-function control-flow graph derived from block
/// terminators: successor and predecessor lists, entry reachability, and a
/// reverse post-order for fast dataflow convergence. The IL guarantees one
/// terminator per block (ir/IrVerifier.h), so edges come only from the
/// last instruction: Jump contributes one successor, CondBr two (possibly
/// the same block twice in degenerate input; the edge list is deduplicated
/// so dataflow confluence never double-counts a predecessor), Ret none.
///
/// The graph is a value type over a snapshot of the function — it does not
/// observe later mutation. Analyses (analysis/Dataflow.h) and the rule
/// engine (analysis/Analyzer.h) build one per function.
///
//===----------------------------------------------------------------------===//

#ifndef IMPACT_ANALYSIS_CFG_H
#define IMPACT_ANALYSIS_CFG_H

#include "ir/Ir.h"

#include <vector>

namespace impact {

class Cfg {
public:
  /// Builds the graph for \p F. The function must be well formed (every
  /// block non-empty with a trailing terminator and in-range targets);
  /// run the IrVerifier first on untrusted modules.
  explicit Cfg(const Function &F);

  size_t getNumBlocks() const { return Succs.size(); }

  const std::vector<BlockId> &getSuccessors(BlockId B) const {
    return Succs[static_cast<size_t>(B)];
  }
  const std::vector<BlockId> &getPredecessors(BlockId B) const {
    return Preds[static_cast<size_t>(B)];
  }

  /// True when \p B is reachable from the entry block (block 0).
  bool isReachable(BlockId B) const {
    return Reachable[static_cast<size_t>(B)];
  }

  /// Reachable blocks in reverse post-order of a depth-first walk from the
  /// entry — the iteration order that makes forward dataflow converge in
  /// few passes. Unreachable blocks are absent.
  const std::vector<BlockId> &getReversePostOrder() const { return Rpo; }

  /// getReversePostOrder() reversed, for backward analyses.
  std::vector<BlockId> getPostOrder() const;

private:
  std::vector<std::vector<BlockId>> Succs;
  std::vector<std::vector<BlockId>> Preds;
  std::vector<bool> Reachable;
  std::vector<BlockId> Rpo;
};

} // namespace impact

#endif // IMPACT_ANALYSIS_CFG_H
