//===- analysis/LoopInfo.cpp ---------------------------------------------------===//
//
// Part of the impact-inline project, distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/LoopInfo.h"

#include "callgraph/Scc.h"

#include <algorithm>

using namespace impact;

namespace {

/// Successor block ids of \p B (none for Ret or a degenerate empty block).
void appendSuccessors(const BasicBlock &B, std::vector<int> &Out) {
  if (B.Instrs.empty())
    return;
  const Instr &Term = B.Instrs.back();
  if (Term.Op == Opcode::Jump) {
    Out.push_back(Term.Target);
  } else if (Term.Op == Opcode::CondBr) {
    Out.push_back(Term.Target);
    Out.push_back(Term.Target2);
  }
}

/// One SCC-peeling round: within the subgraph induced by \p Alive, every
/// nontrivial SCC becomes a loop at depth Level+1; the subgraph then
/// recurses into each such SCC minus its smallest-id block (the usual
/// header surrogate) to find inner nests. Termination needs no depth cap:
/// each level strictly shrinks the subgraph by at least the header.
void peelLoops(const Function &F, std::vector<bool> Alive, unsigned Level,
               int ParentIdx, LoopInfo &Info) {
  // Build the induced subgraph with dense ids.
  std::vector<int> DenseToBlock;
  std::vector<int> BlockToDense(F.Blocks.size(), -1);
  for (size_t B = 0; B != F.Blocks.size(); ++B) {
    if (!Alive[B])
      continue;
    BlockToDense[B] = static_cast<int>(DenseToBlock.size());
    DenseToBlock.push_back(static_cast<int>(B));
  }
  if (DenseToBlock.empty())
    return;
  std::vector<std::vector<int>> Succ(DenseToBlock.size());
  std::vector<int> Tmp;
  for (size_t D = 0; D != DenseToBlock.size(); ++D) {
    Tmp.clear();
    appendSuccessors(F.Blocks[static_cast<size_t>(DenseToBlock[D])], Tmp);
    for (int T : Tmp)
      if (static_cast<size_t>(T) < Alive.size() &&
          Alive[static_cast<size_t>(T)])
        Succ[D].push_back(BlockToDense[static_cast<size_t>(T)]);
  }

  SccResult Scc = computeScc(Succ);

  // Group members per nontrivial component (self loops count too).
  std::vector<std::vector<int>> Members(
      static_cast<size_t>(Scc.NumComponents));
  for (size_t D = 0; D != DenseToBlock.size(); ++D)
    Members[static_cast<size_t>(Scc.ComponentIds[D])].push_back(
        static_cast<int>(D));
  std::vector<bool> SelfLoop(DenseToBlock.size(), false);
  for (size_t D = 0; D != Succ.size(); ++D)
    for (int T : Succ[D])
      if (T == static_cast<int>(D))
        SelfLoop[D] = true;

  for (const std::vector<int> &Component : Members) {
    bool Nontrivial =
        Component.size() > 1 ||
        (Component.size() == 1 && SelfLoop[static_cast<size_t>(
                                      Component[0])]);
    if (!Nontrivial)
      continue;

    int LoopIdx = static_cast<int>(Info.Loops.size());
    Info.Loops.emplace_back();
    Loop &L = Info.Loops.back();
    L.Parent = ParentIdx;
    L.Depth = Level + 1;
    int Header = *std::min_element(Component.begin(), Component.end());
    L.Header = DenseToBlock[static_cast<size_t>(Header)];

    std::vector<bool> Inner(F.Blocks.size(), false);
    for (int D : Component) {
      int Block = DenseToBlock[static_cast<size_t>(D)];
      L.Blocks.push_back(Block);
      Info.Depths[static_cast<size_t>(Block)] += 1;
      Info.InnermostLoop[static_cast<size_t>(Block)] = LoopIdx;
      if (D != Header)
        Inner[static_cast<size_t>(Block)] = true;
    }
    std::sort(L.Blocks.begin(), L.Blocks.end());

    // Inner loops overwrite InnermostLoop for their members (they recurse
    // after the parent is recorded), so the innermost index wins. Note
    // Info.Loops may reallocate during the recursion — re-index, never
    // hold the Loop reference across it.
    peelLoops(F, std::move(Inner), Level + 1, LoopIdx, Info);
  }
}

} // namespace

bool Loop::contains(BlockId B) const {
  return std::binary_search(Blocks.begin(), Blocks.end(), B);
}

LoopInfo impact::computeLoopInfo(const Function &F) {
  LoopInfo Info;
  Info.Depths.assign(F.Blocks.size(), 0);
  Info.InnermostLoop.assign(F.Blocks.size(), -1);
  if (F.Blocks.empty())
    return Info;
  std::vector<bool> Alive(F.Blocks.size(), true);
  peelLoops(F, std::move(Alive), 0, -1, Info);

  // Reducibility: a loop is only enterable through its header when every
  // edge from a non-member targets the header, and the function entry
  // (which has no explicit edge) is not a non-header member.
  std::vector<int> Tmp;
  for (Loop &L : Info.Loops)
    L.Reducible = true;
  for (size_t B = 0; B != F.Blocks.size(); ++B) {
    Tmp.clear();
    appendSuccessors(F.Blocks[B], Tmp);
    for (int T : Tmp) {
      if (static_cast<size_t>(T) >= F.Blocks.size())
        continue;
      // Walk the loop nest of the target: any containing loop the source
      // is outside of must be entered at that loop's header.
      for (int LI = Info.InnermostLoop[static_cast<size_t>(T)]; LI != -1;
           LI = Info.Loops[static_cast<size_t>(LI)].Parent) {
        Loop &L = Info.Loops[static_cast<size_t>(LI)];
        if (!L.contains(static_cast<BlockId>(B)) &&
            static_cast<BlockId>(T) != L.Header)
          L.Reducible = false;
      }
    }
  }
  for (int LI = Info.InnermostLoop.empty() ? -1 : Info.InnermostLoop[0];
       LI != -1; LI = Info.Loops[static_cast<size_t>(LI)].Parent) {
    Loop &L = Info.Loops[static_cast<size_t>(LI)];
    if (L.Header != 0)
      L.Reducible = false;
  }
  return Info;
}

std::vector<unsigned> impact::computeLoopDepths(const Function &F) {
  return computeLoopInfo(F).Depths;
}
