//===- analysis/DataflowSolver.h - Iterative worklist dataflow -----------------===//
//
// Part of the impact-inline project, distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small reusable engine for intraprocedural dataflow over bitset
/// lattices: a dense BitVector (one bit per register, definition, or
/// block) and an iterative worklist solver parameterized on direction
/// (forward = facts flow along CFG edges, backward = against them),
/// confluence (union for may-analyses, intersection for must-analyses),
/// and a per-block transfer function Out = gen ∪ (In \ kill).
///
/// The solver seeds the worklist in reverse post-order (post-order for
/// backward problems) so typical reducible CFGs converge in two to three
/// sweeps, and re-queues only the affected neighbours on change, which
/// bounds work at O(edges × lattice-height). Unreachable blocks are
/// solved too (their In stays the initializer), letting clients report on
/// them rather than crash.
///
/// Concrete analyses built on this: dominators, liveness, and reaching
/// definitions (analysis/Dataflow.h).
///
//===----------------------------------------------------------------------===//

#ifndef IMPACT_ANALYSIS_DATAFLOWSOLVER_H
#define IMPACT_ANALYSIS_DATAFLOWSOLVER_H

#include "analysis/Cfg.h"

#include <cstdint>
#include <vector>

namespace impact {

/// Dense bit vector; the lattice element of every analysis here.
class BitVector {
public:
  BitVector() = default;
  explicit BitVector(size_t Size, bool Value = false)
      : NumBits(Size),
        Words((Size + 63) / 64, Value ? ~uint64_t(0) : uint64_t(0)) {
    clearPadding();
  }

  size_t size() const { return NumBits; }

  bool test(size_t Bit) const {
    return (Words[Bit / 64] >> (Bit % 64)) & 1;
  }
  void set(size_t Bit) { Words[Bit / 64] |= uint64_t(1) << (Bit % 64); }
  void reset(size_t Bit) { Words[Bit / 64] &= ~(uint64_t(1) << (Bit % 64)); }

  void setAll() {
    for (uint64_t &W : Words)
      W = ~uint64_t(0);
    clearPadding();
  }
  void resetAll() {
    for (uint64_t &W : Words)
      W = 0;
  }

  /// this |= Other. Returns true when any bit changed.
  bool unionWith(const BitVector &Other) {
    bool Changed = false;
    for (size_t I = 0; I != Words.size(); ++I) {
      uint64_t New = Words[I] | Other.Words[I];
      Changed |= New != Words[I];
      Words[I] = New;
    }
    return Changed;
  }

  /// this &= Other. Returns true when any bit changed.
  bool intersectWith(const BitVector &Other) {
    bool Changed = false;
    for (size_t I = 0; I != Words.size(); ++I) {
      uint64_t New = Words[I] & Other.Words[I];
      Changed |= New != Words[I];
      Words[I] = New;
    }
    return Changed;
  }

  /// this = (this \ Kill) ∪ Gen — the canonical transfer function.
  void transfer(const BitVector &Gen, const BitVector &Kill) {
    for (size_t I = 0; I != Words.size(); ++I)
      Words[I] = (Words[I] & ~Kill.Words[I]) | Gen.Words[I];
  }

  size_t count() const {
    size_t N = 0;
    for (uint64_t W : Words)
      N += static_cast<size_t>(__builtin_popcountll(W));
    return N;
  }

  friend bool operator==(const BitVector &, const BitVector &) = default;

private:
  /// Keeps bits past NumBits zero so count()/== stay exact after setAll().
  void clearPadding() {
    if (NumBits % 64 != 0 && !Words.empty())
      Words.back() &= (uint64_t(1) << (NumBits % 64)) - 1;
  }

  size_t NumBits = 0;
  std::vector<uint64_t> Words;
};

enum class DataflowDirection { Forward, Backward };
enum class DataflowConfluence { Union, Intersection };

/// One block's equation inputs and solved facts.
struct DataflowBlockState {
  BitVector Gen;
  BitVector Kill;
  BitVector In;
  BitVector Out;
};

/// Solves the classic gen/kill system over \p Cfg.
///
/// \p States must carry one entry per block with Gen/Kill filled in; In and
/// Out are overwritten. \p Boundary initializes the entry block's In
/// (forward) or every exit block's Out (backward); \p Interior initializes
/// everything else (all-ones for intersection problems, all-zeros for
/// union problems — pass it explicitly, the solver does not guess).
inline void solveDataflow(const Cfg &G, DataflowDirection Direction,
                          DataflowConfluence Confluence,
                          const BitVector &Boundary,
                          const BitVector &Interior,
                          std::vector<DataflowBlockState> &States) {
  size_t N = G.getNumBlocks();
  if (N == 0 || States.size() != N)
    return;

  bool Forward = Direction == DataflowDirection::Forward;
  for (size_t B = 0; B != N; ++B) {
    States[B].In = Interior;
    States[B].Out = Interior;
  }

  // Boundary conditions: entry In for forward, exit Outs for backward.
  // (A backward "exit" is any block without successors — Ret blocks.)
  if (Forward) {
    States[0].In = Boundary;
  } else {
    for (size_t B = 0; B != N; ++B)
      if (G.getSuccessors(static_cast<BlockId>(B)).empty())
        States[B].Out = Boundary;
  }

  // Seed the worklist in an order that visits producers before consumers;
  // unreachable blocks go last so their (boundary-less) facts settle too.
  std::vector<BlockId> Seed =
      Forward ? G.getReversePostOrder() : G.getPostOrder();
  std::vector<bool> Seeded(N, false);
  for (BlockId B : Seed)
    Seeded[static_cast<size_t>(B)] = true;
  for (size_t B = 0; B != N; ++B)
    if (!Seeded[B])
      Seed.push_back(static_cast<BlockId>(B));

  std::vector<BlockId> Worklist(Seed.rbegin(), Seed.rend());
  std::vector<bool> OnList(N, true);
  while (!Worklist.empty()) {
    BlockId B = Worklist.back();
    Worklist.pop_back();
    OnList[static_cast<size_t>(B)] = false;
    DataflowBlockState &S = States[static_cast<size_t>(B)];

    // Confluence over the incoming facts. The entry (forward) / exits
    // (backward) keep their boundary term folded in by re-applying it.
    const std::vector<BlockId> &Inputs =
        Forward ? G.getPredecessors(B) : G.getSuccessors(B);
    BitVector &Meet = Forward ? S.In : S.Out;
    if (!Inputs.empty()) {
      Meet = Forward ? States[static_cast<size_t>(Inputs[0])].Out
                     : States[static_cast<size_t>(Inputs[0])].In;
      for (size_t I = 1; I < Inputs.size(); ++I) {
        const DataflowBlockState &Other =
            States[static_cast<size_t>(Inputs[I])];
        if (Confluence == DataflowConfluence::Union)
          Meet.unionWith(Forward ? Other.Out : Other.In);
        else
          Meet.intersectWith(Forward ? Other.Out : Other.In);
      }
      if (Forward && B == 0) {
        // The entry also receives the boundary fact (parameters, etc.).
        if (Confluence == DataflowConfluence::Union)
          Meet.unionWith(Boundary);
        else
          Meet.intersectWith(Boundary);
      }
    }

    BitVector NewOut = Meet;
    NewOut.transfer(S.Gen, S.Kill);
    BitVector &Result = Forward ? S.Out : S.In;
    if (NewOut == Result)
      continue;
    Result = std::move(NewOut);
    for (BlockId Next : Forward ? G.getSuccessors(B) : G.getPredecessors(B))
      if (!OnList[static_cast<size_t>(Next)]) {
        OnList[static_cast<size_t>(Next)] = true;
        Worklist.push_back(Next);
      }
  }
}

/// Generic forward worklist solver over an arbitrary join-semilattice —
/// the second engine in this file, for analyses whose lattice is not a
/// bitset (the interval domain of analysis/RangeAnalysis.h is the first
/// client). The \p Domain supplies:
///
///   using State = ...;                 copyable lattice element
///   State entryState();                boundary fact at block 0
///   void transferBlock(BlockId, State &);   apply the whole block body
///   bool refineEdge(BlockId From, BlockId To, State &);
///       sharpen a block-exit fact along one CFG edge; returning false
///       marks the edge statically infeasible (nothing flows across it)
///   bool joinInto(BlockId To, State &Dest, const State &Src);
///       Dest ⊔= Src, widening however the domain chooses so ascending
///       chains stay finite; returns true when Dest changed
///
/// Unlike solveDataflow above, blocks are reached optimistically: a block
/// no feasible edge ever joins into keeps no state at all (its bit in the
/// returned vector stays 0), which is how range analysis proves blocks
/// dead through contradictory branch conditions. \p In receives the entry
/// fact of every reached block.
template <typename Domain>
std::vector<char> solveForwardDataflow(const Cfg &G, Domain &D,
                                       std::vector<typename Domain::State> &In) {
  size_t N = G.getNumBlocks();
  std::vector<char> Reached(N, 0);
  In.assign(N, typename Domain::State());
  if (N == 0)
    return Reached;

  Reached[0] = 1;
  In[0] = D.entryState();
  std::vector<char> Queued(N, 0);
  std::vector<BlockId> Worklist;
  Worklist.push_back(0);
  Queued[0] = 1;

  while (!Worklist.empty()) {
    BlockId B = Worklist.back();
    Worklist.pop_back();
    Queued[static_cast<size_t>(B)] = 0;

    typename Domain::State Out = In[static_cast<size_t>(B)];
    D.transferBlock(B, Out);
    for (BlockId S : G.getSuccessors(B)) {
      typename Domain::State Edge = Out;
      if (!D.refineEdge(B, S, Edge))
        continue;
      bool Changed;
      if (!Reached[static_cast<size_t>(S)]) {
        Reached[static_cast<size_t>(S)] = 1;
        In[static_cast<size_t>(S)] = std::move(Edge);
        Changed = true;
      } else {
        Changed = D.joinInto(S, In[static_cast<size_t>(S)], Edge);
      }
      if (Changed && !Queued[static_cast<size_t>(S)]) {
        Queued[static_cast<size_t>(S)] = 1;
        Worklist.push_back(S);
      }
    }
  }
  return Reached;
}

} // namespace impact

#endif // IMPACT_ANALYSIS_DATAFLOWSOLVER_H
