//===- analysis/RangeAnalysis.h - Interprocedural value ranges --------------===//
//
// Part of the impact-inline project, distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Interval range analysis over the IL, plus bottom-up interprocedural
/// summaries computed in call-graph SCC order.
///
/// The lattice element is a closed signed-64 interval [Lo, Hi]; bottom is
/// any Lo > Hi (canonically [INT64_MAX, INT64_MIN]) and means "no value
/// reaches here". Transfer functions are overflow-aware: any arithmetic
/// whose exact bound leaves int64 goes to top rather than wrapping, so a
/// proven interval is a true superset of the wrapping semantics' result
/// set only when the operation provably does not wrap — which is exactly
/// what the transfer checks. Per-function fixpoints run on the generic
/// forward solver in DataflowSolver.h with widening at LoopInfo headers
/// (after a short delay so small loops converge exactly) followed by two
/// narrowing sweeps in reverse post-order.
///
/// Interprocedural facts (computeModuleRangeFacts) are three monotone
/// phases over Tarjan SCCs of the direct call graph:
///   A. bottom-up return-range + purity summaries with formals at top;
///   B. top-down formal-argument propagation from main over direct sites
///      (defeated wholesale when the module contains any CallPtr — a
///      forged function pointer can enter anything with anything);
///   C. a final bottom-up pass that recomputes returns, purity, and
///      per-call-site argument ranges with the phase-B formals in place.
///
/// Every emitted fact is a first-class artifact: RangeFactChecker hooks
/// into both execution engines (interp/Interpreter.cpp and vm/Vm.cpp via
/// RunOptions::FactCheck) and asserts at runtime that no proven fact is
/// ever violated. The differential test tier treats any violation as a
/// hard failure, making dynamic execution the ground truth for the
/// static analysis exactly as the walker is for the VM.
///
//===----------------------------------------------------------------------===//

#ifndef IMPACT_ANALYSIS_RANGEANALYSIS_H
#define IMPACT_ANALYSIS_RANGEANALYSIS_H

#include "analysis/Cfg.h"
#include "ir/Ir.h"

#include <cstdint>
#include <limits>
#include <set>
#include <string>
#include <vector>

namespace impact {

//===----------------------------------------------------------------------===//
// Interval lattice
//===----------------------------------------------------------------------===//

/// A closed interval of signed 64-bit values. Lo > Hi encodes bottom.
struct Interval {
  int64_t Lo = std::numeric_limits<int64_t>::min();
  int64_t Hi = std::numeric_limits<int64_t>::max();

  static Interval top() { return Interval(); }
  static Interval bottom() {
    return Interval{std::numeric_limits<int64_t>::max(),
                    std::numeric_limits<int64_t>::min()};
  }
  static Interval constant(int64_t V) { return Interval{V, V}; }
  /// Canonicalizes: any empty range collapses to the canonical bottom.
  static Interval make(int64_t L, int64_t H) {
    return L <= H ? Interval{L, H} : bottom();
  }

  bool isBottom() const { return Lo > Hi; }
  bool isTop() const {
    return Lo == std::numeric_limits<int64_t>::min() &&
           Hi == std::numeric_limits<int64_t>::max();
  }
  bool isConstant() const { return Lo == Hi; }
  bool contains(int64_t V) const { return Lo <= V && V <= Hi; }
  bool isNonNegative() const { return !isBottom() && Lo >= 0; }
  bool excludesZero() const { return !isBottom() && (Lo > 0 || Hi < 0); }

  friend bool operator==(const Interval &A, const Interval &B) {
    if (A.isBottom() && B.isBottom())
      return true;
    return A.Lo == B.Lo && A.Hi == B.Hi;
  }
  friend bool operator!=(const Interval &A, const Interval &B) {
    return !(A == B);
  }
};

/// Least upper bound (interval hull).
Interval join(Interval A, Interval B);
/// Greatest lower bound (intersection).
Interval meet(Interval A, Interval B);
/// Classic interval widening: any bound that grew jumps to infinity.
Interval widen(Interval Old, Interval New);

/// Renders "[lo,hi]" with "-inf"/"+inf" at the extremes, "bot" for bottom.
std::string renderInterval(Interval I);

// Transfer functions. All are sound for the engines' semantics: wrapping
// Add/Sub/Mul/Neg go to top when the exact bound would leave int64; Div and
// Rem assume the operation did not trap (a trapping instance produces no
// value, so the result interval need not cover it).
Interval rangeAdd(Interval A, Interval B);
Interval rangeSub(Interval A, Interval B);
Interval rangeMul(Interval A, Interval B);
Interval rangeDiv(Interval A, Interval B);
Interval rangeRem(Interval A, Interval B);
Interval rangeShl(Interval A, Interval B);
Interval rangeShr(Interval A, Interval B);
Interval rangeAnd(Interval A, Interval B);
Interval rangeOr(Interval A, Interval B);
Interval rangeXor(Interval A, Interval B);
Interval rangeNeg(Interval A);
Interval rangeNot(Interval A);
/// Comparison result: [1,1]/[0,0] when provable, else [0,1].
Interval rangeCmp(Opcode Op, Interval A, Interval B);

/// True when a Div/Rem with these operand intervals might trap (divisor may
/// be zero, or INT64_MIN / -1 overflow is possible).
bool divMayTrap(Interval Dividend, Interval Divisor);

//===----------------------------------------------------------------------===//
// Interprocedural summaries
//===----------------------------------------------------------------------===//

/// Facts proven about one function, valid for the exact module they were
/// computed on.
struct FunctionRangeSummary {
  /// Proven formal-parameter ranges (size NumParams), the join over every
  /// way the function can be entered. Empty means no fact (externals, or a
  /// module with forged function pointers). A bottom entry proves the
  /// function is never entered at all.
  std::vector<Interval> Params;
  /// Proven return-value range. Bottom proves the function never returns.
  Interval Ret = Interval::top();
  /// True for defined (non-external, non-eliminated, non-empty) functions;
  /// the purity bits below are only claims when this is set.
  bool HasSummary = false;
  /// May read a global-segment word (directly or transitively).
  bool ReadsGlobals = true;
  /// May write a global-segment word (directly or transitively).
  bool WritesGlobals = true;
  /// May trap (division hazard, unproven memory access, any call — a call
  /// can always die of control-stack explosion or reach code that traps).
  bool MayTrap = true;
  /// Provably finishes: loop-free, non-recursive, no indirect calls, all
  /// callees terminate. Advisory (not dynamically falsifiable: a run that
  /// has not finished *yet* violates nothing).
  bool Terminates = false;
};

/// The complete fact artifact for one module.
struct ModuleRangeFacts {
  /// Indexed by FuncId.
  std::vector<FunctionRangeSummary> Funcs;
  /// Indexed by SiteId: proven argument ranges at each direct or indirect
  /// call site (parallel to the site's Args). Only meaningful where
  /// SiteHasFact is set.
  std::vector<std::vector<Interval>> SiteArgs;
  std::vector<char> SiteHasFact;
  /// The module contains at least one CallPtr; formal-parameter facts are
  /// then suppressed (a forged pointer can call anything with anything).
  bool HasCallPtr = false;
  /// Global segment [GlobalLo, GlobalHi) — every address in it is a valid
  /// word; addresses below kGlobalBase or in [GlobalHi, kStackBase) trap.
  int64_t GlobalLo = 0;
  int64_t GlobalHi = 0;
};

/// Computes the full interprocedural fact set for \p M (phases A/B/C above).
ModuleRangeFacts computeModuleRangeFacts(const Module &M);

/// What a range-consuming pass gets to see. Both pointers may be null: a
/// null Facts runs the per-function analysis purely intraprocedurally
/// (formals at top, calls opaque), which is the only sound option for
/// cache-keyed pre-opt pipelines; a null M loses exact GlobalAddr facts.
struct RangeContext {
  const Module *M = nullptr;
  const ModuleRangeFacts *Facts = nullptr;
};

//===----------------------------------------------------------------------===//
// Per-function analysis
//===----------------------------------------------------------------------===//

/// Fixpoint interval analysis of one function. Construction runs the solve;
/// queries are cheap afterwards. The register environment is a plain vector
/// indexed by register (entry state: formals from the summary or top,
/// every other register exactly 0 — activations zero-initialize).
class RangeAnalysis {
public:
  using Env = std::vector<Interval>;

  RangeAnalysis(const Function &F, const Cfg &G, const RangeContext &Ctx);

  /// False when range propagation proves the block can never execute
  /// (stronger than CFG reachability: contradictory branch conditions and
  /// never-entered functions also unreach blocks).
  bool isReachable(BlockId B) const {
    return B >= 0 && static_cast<size_t>(B) < Reached.size() &&
           Reached[static_cast<size_t>(B)];
  }

  /// Register state on entry to \p B (bottom-filled when unreachable).
  const Env &blockIn(BlockId B) const { return In[static_cast<size_t>(B)]; }

  /// Register state after \p B's body (blockIn stepped through every
  /// instruction).
  Env blockOut(BlockId B) const;

  /// Interval a register holds in \p E (top for out-of-range registers,
  /// e.g. ones allocated by a rewriting pass after this analysis ran).
  static Interval get(const Env &E, Reg R) {
    if (R < 0 || static_cast<size_t>(R) >= E.size())
      return Interval::top();
    return E[static_cast<size_t>(R)];
  }

  /// Interval \p I's destination will hold given pre-instruction state
  /// \p E. Top for instructions without a destination.
  Interval eval(const Instr &I, const Env &E) const;

  /// Advances \p E across \p I. Callers that rewrite instructions must
  /// step the *original* instruction so the environment stays aligned
  /// with what later instructions were analyzed against.
  void step(const Instr &I, Env &E) const;

  /// Edge refinement: sharpens \p E along the From->To branch using the
  /// terminator (and its defining comparison). Returns false when the
  /// edge is provably never taken. Used by the solver and by SCCP.
  bool refineEdge(BlockId From, BlockId To, Env &E) const;

private:
  friend struct RangeDomain;
  void solve();

  const Function &F;
  const Cfg &G;
  RangeContext Ctx;
  std::vector<Env> In;
  std::vector<char> Reached;
  std::vector<char> IsHeader;
};

//===----------------------------------------------------------------------===//
// Dynamic cross-check
//===----------------------------------------------------------------------===//

/// Asserts every emitted static fact against a real execution. Installed
/// via RunOptions::FactCheck; both engines drive the same hook set, so a
/// fact that holds in the walker but not the VM (or vice versa) still
/// surfaces. The checker never alters execution — it only records.
///
/// Checked facts: formal ranges at entry, argument ranges at each call
/// site, return ranges at each return, no-global-read / no-global-write /
/// no-trap purity bits for every activation on the shadow stack.
/// Terminates is advisory and not checked (see FunctionRangeSummary).
class RangeFactChecker {
public:
  RangeFactChecker(const Module &M, ModuleRangeFacts Facts);

  // --- engine hooks -------------------------------------------------------
  /// A user function activation began; \p Args are its first \p N registers.
  void onEnter(FuncId F, const int64_t *Args, size_t N);
  /// Argument \p Idx of call site \p Site is about to be passed as \p V.
  void onSiteArg(uint32_t Site, size_t Idx, int64_t V);
  /// The current activation of \p F returns \p V.
  void onRet(FuncId F, int64_t V);
  /// A successful (non-trapping) IL Load / Store touched \p Addr.
  void onLoad(int64_t Addr);
  void onStore(int64_t Addr);
  /// The run ended in a trap (step-limit halts are not traps).
  void onTrap(const std::string &Message);
  /// The run finished; resets per-run state so the checker can be reused.
  void onRunEnd();

  // --- results ------------------------------------------------------------
  bool ok() const { return Violations.empty(); }
  uint64_t getChecksPerformed() const { return Checks; }
  const std::vector<std::string> &getViolations() const { return Violations; }

private:
  struct ShadowFrame {
    FuncId Func;
    bool NoRead;
    bool NoWrite;
    bool NoTrap;
  };

  void violate(std::string Message);
  bool inGlobals(int64_t Addr) const {
    return Addr >= Facts.GlobalLo && Addr < Facts.GlobalHi;
  }

  ModuleRangeFacts Facts;
  std::vector<std::string> FuncNames;
  std::vector<ShadowFrame> Stack;
  size_t NoReadDepth = 0;
  size_t NoWriteDepth = 0;
  size_t NoTrapDepth = 0;
  uint64_t Checks = 0;
  std::vector<std::string> Violations;
  std::set<std::string> Seen;
};

} // namespace impact

#endif // IMPACT_ANALYSIS_RANGEANALYSIS_H
